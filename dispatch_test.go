package versaslot_test

import (
	"bytes"
	"testing"

	"versaslot"
	"versaslot/internal/sim"
)

// dispatcherScenarios builds one rebalancing farm scenario per
// registered dispatcher: the determinism and parallel-equivalence bars
// below must hold for every dispatcher, including the RNG-driven
// power-of-two.
func dispatcherScenarios() []versaslot.Scenario {
	var out []versaslot.Scenario
	for _, name := range versaslot.Dispatchers() {
		out = append(out, versaslot.Scenario{
			Name:           name,
			Topology:       versaslot.TopologyFarm,
			Pairs:          3,
			Condition:      "stress",
			Apps:           24,
			Seed:           23,
			Dispatcher:     name,
			RebalanceEvery: 2 * sim.Second,
		})
	}
	return out
}

// TestDispatcherDeterminism: every registered dispatcher must be
// byte-identical across repeated sequential runs.
func TestDispatcherDeterminism(t *testing.T) {
	for _, sc := range dispatcherScenarios() {
		sc := sc
		t.Run(sc.Dispatcher, func(t *testing.T) {
			first, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			a, b := resultJSON(t, first), resultJSON(t, second)
			if !bytes.Equal(a, b) {
				t.Errorf("dispatcher %q results differ between identical runs:\n%s\n%s", sc.Dispatcher, a, b)
			}
			if first.Dispatcher != sc.Dispatcher {
				t.Errorf("Result.Dispatcher = %q, want %q", first.Dispatcher, sc.Dispatcher)
			}
			if first.Summary.Apps != sc.Apps {
				t.Errorf("completed %d apps, want %d", first.Summary.Apps, sc.Apps)
			}
		})
	}
}

// TestDispatcherParallelMatchesSequential: RunMany on a worker pool
// must reproduce sequential execution byte for byte for every
// dispatcher (each run owns its kernel; nothing may leak through
// shared state). CI runs this under -race.
func TestDispatcherParallelMatchesSequential(t *testing.T) {
	scenarios := dispatcherScenarios()
	sequential := make([][]byte, len(scenarios))
	for i, sc := range scenarios {
		res, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("sequential %s: %v", sc.Name, err)
		}
		sequential[i] = resultJSON(t, res)
	}
	parallel, err := versaslot.RunMany(scenarios, 4)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i, res := range parallel {
		if got := resultJSON(t, res); !bytes.Equal(sequential[i], got) {
			t.Errorf("dispatcher %q: parallel result differs from sequential:\n%s\n%s",
				scenarios[i].Dispatcher, sequential[i], got)
		}
	}
}

// TestFarmRebalanceReportsCrossMigrations drives the facade end to
// end on a skewed workload: round-robin dispatch plus the rebalancer
// must report at least one cross-pair migration in the Result.
func TestFarmRebalanceReportsCrossMigrations(t *testing.T) {
	res, err := versaslot.Run(versaslot.Scenario{
		Topology:       versaslot.TopologyFarm,
		Pairs:          3,
		Condition:      "stress",
		Apps:           60,
		Seed:           23,
		Dispatcher:     "round-robin",
		RebalanceEvery: 2 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossMigrations < 1 {
		t.Fatalf("CrossMigrations = %d, want >= 1 on a skewed workload", res.CrossMigrations)
	}
	if res.CrossMigratedApps < res.CrossMigrations {
		t.Errorf("CrossMigratedApps = %d < CrossMigrations = %d", res.CrossMigratedApps, res.CrossMigrations)
	}
	if len(res.PairStats) != 3 {
		t.Fatalf("PairStats has %d entries, want 3", len(res.PairStats))
	}
	if res.Summary.Apps != 60 {
		t.Errorf("completed %d apps, want 60", res.Summary.Apps)
	}
}
