package versaslot_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"versaslot"
	"versaslot/internal/cluster"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// heteroFarmScenario mixes ZCU216 Big.Little, U250 quad and PYNQ dual
// pairs in one farm with rebalancing — the heterogeneous-fleet shape
// the platform model exists for.
func heteroFarmScenario(dispatcher string) versaslot.Scenario {
	return versaslot.Scenario{
		Name:      "hetero-" + dispatcher,
		Topology:  versaslot.TopologyFarm,
		Pairs:     3,
		Condition: "stress",
		Apps:      24,
		Seed:      31,
		PairPlatforms: []cluster.PairPlatforms{
			{},
			{Base: fabric.U250Quad, Boost: fabric.U250Quad},
			{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
		},
		Dispatcher:     dispatcher,
		RebalanceEvery: 2 * sim.Second,
	}
}

// TestHeterogeneousFarmDeterminism: a mixed-platform farm must be
// byte-identical across repeated sequential runs, and RunMany on a
// worker pool must reproduce sequential execution byte for byte, for
// every registered dispatcher. CI runs this under -race.
func TestHeterogeneousFarmDeterminism(t *testing.T) {
	var scenarios []versaslot.Scenario
	for _, d := range versaslot.Dispatchers() {
		scenarios = append(scenarios, heteroFarmScenario(d))
	}
	sequential := make([][]byte, len(scenarios))
	for i, sc := range scenarios {
		res, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("sequential %s: %v", sc.Name, err)
		}
		sequential[i] = resultJSON(t, res)
		again, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("repeat %s: %v", sc.Name, err)
		}
		if !bytes.Equal(sequential[i], resultJSON(t, again)) {
			t.Fatalf("%s: heterogeneous farm not deterministic across runs", sc.Name)
		}
		if res.Summary.Apps != sc.Apps {
			t.Fatalf("%s: finished %d apps, want %d", sc.Name, res.Summary.Apps, sc.Apps)
		}
	}
	parallel, err := versaslot.RunMany(scenarios, 4)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i, res := range parallel {
		if got := resultJSON(t, res); !bytes.Equal(sequential[i], got) {
			t.Errorf("%s: parallel result differs from sequential", scenarios[i].Name)
		}
	}
}

// TestHeterogeneousFarmRoutesAroundSmallPair: the PYNQ pair only ever
// receives applications whose circuits fit its Small slots, and at
// least one arriving application had to be steered away from it.
func TestHeterogeneousFarmRoutesAroundSmallPair(t *testing.T) {
	res, err := versaslot.Run(heteroFarmScenario("least-loaded"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routed) != 3 {
		t.Fatalf("routed vector %v", res.Routed)
	}
	// The stress workload draws from the full suite; LeNet/AN/3DR
	// tasks exceed a Small slot, so the PYNQ pair cannot take its
	// proportional share — some apps must have routed elsewhere.
	if res.Routed[2] >= res.Summary.Apps/3 {
		t.Fatalf("PYNQ pair took a full share of arrivals (%v) — capacity-aware dispatch not engaged", res.Routed)
	}
	if res.Routed[0]+res.Routed[1]+res.Routed[2] != res.Summary.Apps {
		t.Fatalf("routed apps %v do not sum to %d", res.Routed, res.Summary.Apps)
	}
	if len(res.PairPlatforms) != 3 || res.PairPlatforms[2].Base != fabric.PYNQDual {
		t.Fatalf("pair platform assignment not reported: %+v", res.PairPlatforms)
	}
}

// TestScenarioPlatformRoundTrip: the platform block (ref and inline)
// survives a JSON round trip unchanged.
func TestScenarioPlatformRoundTrip(t *testing.T) {
	scenarios := []versaslot.Scenario{
		{
			Name:     "ref",
			Platform: &fabric.PlatformSpec{Ref: fabric.U250Quad},
			Apps:     4,
		},
		{
			Name: "inline",
			Platform: &fabric.PlatformSpec{
				Name:       "tri-slot",
				AreaBudget: 4,
				Classes: []fabric.ClassSpec{
					{Name: "Big", Count: 1, Cap: fabric.BigSlotCap, Area: 2},
					{Name: "Little", Count: 2, Cap: fabric.LittleSlotCap, Area: 1},
				},
			},
			Apps: 4,
		},
		{
			Name:     "farm",
			Topology: versaslot.TopologyFarm,
			Pairs:    2,
			PairPlatforms: []cluster.PairPlatforms{
				{}, {Base: fabric.U250Quad, Boost: fabric.U250Quad},
			},
			Apps: 4,
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := sc.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := versaslot.ReadScenario(&buf)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(sc)
			b, _ := json.Marshal(back)
			if !bytes.Equal(a, b) {
				t.Fatalf("round trip changed the scenario:\n%s\n%s", a, b)
			}
		})
	}
}

// TestScenarioPlatformValidation: the platform block's misuse modes
// fail Validate with clear errors.
func TestScenarioPlatformValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   versaslot.Scenario
	}{
		{"platform-on-farm", versaslot.Scenario{
			Topology: versaslot.TopologyFarm,
			Platform: &fabric.PlatformSpec{Ref: fabric.U250Quad},
		}},
		{"unknown-ref", versaslot.Scenario{
			Platform: &fabric.PlatformSpec{Ref: "no-such-board"},
		}},
		{"platform-plus-custom-mix", versaslot.Scenario{
			Platform: &fabric.PlatformSpec{Ref: fabric.U250Quad},
			BigSlots: 1, LittleSlots: 2,
		}},
		{"bl-policy-on-uniform-platform", versaslot.Scenario{
			Policy:   "versaslot-bl",
			Platform: &fabric.PlatformSpec{Ref: fabric.U250Quad},
		}},
		{"dpr-policy-on-virtual-platform", versaslot.Scenario{
			Policy:   "nimblock",
			Platform: &fabric.PlatformSpec{Ref: fabric.ZCU216Monolithic},
		}},
		{"over-tiled-inline", versaslot.Scenario{
			Platform: &fabric.PlatformSpec{
				Name:       "too-big",
				AreaBudget: 2,
				Classes: []fabric.ClassSpec{
					{Name: "Little", Count: 3, Cap: fabric.LittleSlotCap, Area: 1},
				},
			},
		}},
		{"pair-platforms-on-single", versaslot.Scenario{
			PairPlatforms: []cluster.PairPlatforms{{Base: fabric.U250Quad}},
		}},
		{"virtual-pair-platform", versaslot.Scenario{
			Topology:      versaslot.TopologyCluster,
			PairPlatforms: []cluster.PairPlatforms{{Boost: fabric.ZCU216Monolithic}},
		}},
		{"too-many-pair-entries", versaslot.Scenario{
			Topology: versaslot.TopologyFarm,
			Pairs:    2,
			PairPlatforms: []cluster.PairPlatforms{
				{}, {}, {Base: fabric.U250Quad},
			},
		}},
	}
	for _, c := range cases {
		if err := c.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", c.name)
		}
	}
}

// TestPlatformSelectsMatchingPolicy: with no policy named, the
// platform shape picks the matching VersaSlot variant (or the
// baseline on a virtual platform), and the run completes.
func TestPlatformSelectsMatchingPolicy(t *testing.T) {
	cases := []struct {
		ref    string
		policy string
	}{
		{fabric.U250Quad, "versaslot-ol"},
		{fabric.ZCU216OnlyBig, "versaslot-ol"},
		{fabric.ZCU216BigLittle, "versaslot-bl"},
		{fabric.ZCU216Monolithic, "baseline"},
	}
	for _, c := range cases {
		res, err := versaslot.Run(versaslot.Scenario{
			Platform:  &fabric.PlatformSpec{Ref: c.ref},
			Condition: "loose",
			Apps:      4,
			Seed:      5,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.ref, err)
		}
		if res.Policy != c.policy {
			t.Errorf("%s: ran policy %q, want %q", c.ref, res.Policy, c.policy)
		}
		if res.Platform != c.ref {
			t.Errorf("%s: Result.Platform = %q", c.ref, res.Platform)
		}
		if res.Summary.Apps != 4 {
			t.Errorf("%s: finished %d apps, want 4", c.ref, res.Summary.Apps)
		}
	}
}

// TestSinglePlatformRejectsUnhostableWorkload: a PYNQ-class board
// cannot run the full suite (LeNet exceeds a Small slot) and must say
// so instead of deadlocking.
func TestSinglePlatformRejectsUnhostableWorkload(t *testing.T) {
	_, err := versaslot.Run(versaslot.Scenario{
		Platform:  &fabric.PlatformSpec{Ref: fabric.PYNQDual},
		Condition: "standard",
		Apps:      12,
		Seed:      3,
	})
	if err == nil {
		t.Fatal("unhostable workload ran on pynq-dual")
	}
}
