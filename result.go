package versaslot

import (
	"sort"

	"versaslot/internal/cluster"
	"versaslot/internal/fabric"
	"versaslot/internal/metrics"
	"versaslot/internal/orchestrator"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
)

// Result is the unified outcome of any scenario: the single-board
// summary metrics and the cluster/farm switching metrics merged into
// one type. Fields that do not apply to a topology are zero. Results
// marshal to JSON deterministically: the same Scenario and seed always
// produce byte-identical output.
type Result struct {
	// Scenario echoes the scenario name.
	Scenario string `json:"scenario,omitempty"`
	// Topology the run executed on.
	Topology Topology `json:"topology"`
	// Policy is the canonical registry name ("versaslot-bl"); for
	// cluster/farm runs it reports "versaslot-switching".
	Policy string `json:"policy"`
	// PolicyTitle is the display name ("VersaSlot Big.Little").
	PolicyTitle string `json:"policy_title"`
	// Platform is the board platform's registry name (single topology).
	Platform string `json:"platform,omitempty"`
	// PairPlatforms reports each switching pair's resolved platform
	// assignment (cluster/farm).
	PairPlatforms []cluster.PairPlatforms `json:"pair_platforms,omitempty"`
	// Condition is the workload's congestion label.
	Condition string `json:"condition"`
	// Seed is the run's kernel seed.
	Seed uint64 `json:"seed"`

	// Summary carries the response-time, utilization and PR-contention
	// statistics; for cluster/farm it is merged across all boards
	// (counters summed, distributions pooled over every board's
	// samples, utilizations weighted by per-board completed apps).
	Summary metrics.Summary `json:"summary"`
	// Samples are the per-application response samples (pooled and
	// sorted by application ID for multi-board runs).
	Samples []metrics.ResponseSample `json:"samples,omitempty"`
	// BySpec breaks response times down per application type.
	BySpec []metrics.SpecBreakdown `json:"by_spec,omitempty"`
	// CacheHits/CacheMisses report bitstream cache behaviour.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// LaunchWait is the cumulative time item launches waited on the
	// scheduler CPU (the execution-blocking effect of single-core
	// control planes, Fig. 2).
	LaunchWait sim.Duration `json:"launch_wait"`
	// Makespan is when the last application finished.
	Makespan sim.Time `json:"makespan"`

	// Switches counts cross-board live migrations (cluster/farm).
	Switches int `json:"switches,omitempty"`
	// MeanSwitchTime is the average migration overhead.
	MeanSwitchTime sim.Duration `json:"mean_switch_time,omitempty"`
	// MigratedApps counts applications moved across boards.
	MigratedApps int `json:"migrated_apps,omitempty"`
	// SwitchTrace is the D_switch evaluation trace (Fig. 8 left).
	SwitchTrace []cluster.TracePoint `json:"switch_trace,omitempty"`
	// Routed reports arrivals dispatched per pair (farm only).
	Routed []int `json:"routed,omitempty"`
	// Dispatcher is the canonical name of the farm's arrival
	// dispatcher (farm only).
	Dispatcher string `json:"dispatcher,omitempty"`
	// PairStats breaks the farm run down per switching pair: routing,
	// response times, utilization, and rebalancer traffic.
	PairStats []cluster.PairStat `json:"pair_stats,omitempty"`
	// CrossMigrations counts rebalancer-driven pair-to-pair transfers;
	// CrossMigratedApps and MeanCrossTime price them (farm only).
	CrossMigrations   int          `json:"cross_migrations,omitempty"`
	CrossMigratedApps int          `json:"cross_migrated_apps,omitempty"`
	MeanCrossTime     sim.Duration `json:"mean_cross_time,omitempty"`

	// Tenants is the per-tenant admission ledger and response/SLO
	// breakdown (farm runs with a tenants block). Each entry always
	// reconciles: submitted == admitted + rejected + queued and
	// admitted == finished + in_flight.
	Tenants []orchestrator.TenantStat `json:"tenants,omitempty"`
	// Autoscale summarizes the autoscaler's activity (farm runs with
	// an autoscale block): scale-up/drain counts, migrated apps, peak
	// and final online pair counts, and the timestamped event log.
	Autoscale *orchestrator.AutoscaleStats `json:"autoscale,omitempty"`

	// MetricsMode records the metrics pipeline the run used: empty for
	// the exact default, "stream" for the bounded-memory sketch mode.
	MetricsMode string `json:"metrics_mode,omitempty"`
	// TimeSeries is the streaming windowed time-series (stream mode
	// only): per-window mean RT, P50/P99, utilization, and migration/
	// fault-event counts over the most recent max_windows windows,
	// merged across every board of the run.
	TimeSeries []metrics.WindowStat `json:"time_series,omitempty"`
}

// MeanRT is a convenience accessor for Summary.MeanRT.
func (r *Result) MeanRT() sim.Duration { return r.Summary.MeanRT }

// Percentile computes a response-time percentile over the result's
// samples (the paper's tails pool each condition's sequences).
func (r *Result) Percentile(p float64) sim.Duration {
	return pooledPercentile(r.Samples, p)
}

// PooledSamples concatenates response samples across results.
func PooledSamples(results []*Result) []metrics.ResponseSample {
	var out []metrics.ResponseSample
	for _, r := range results {
		out = append(out, r.Samples...)
	}
	return out
}

// PooledPercentile computes a percentile over all results' samples.
func PooledPercentile(results []*Result, p float64) sim.Duration {
	return pooledPercentile(PooledSamples(results), p)
}

// MeanRT averages the per-result mean response times.
func MeanRT(results []*Result) sim.Duration {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += float64(r.Summary.MeanRT)
	}
	return sim.Duration(sum / float64(len(results)))
}

func pooledPercentile(samples []metrics.ResponseSample, p float64) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s.Response)
	}
	return sim.Duration(metrics.PercentileOf(vals, p))
}

// fillFromEngines merges the per-board collectors of a multi-board run
// into the result: counters summed, distributions recomputed over the
// pooled samples, utilizations weighted by per-board completed apps.
// Engines must be passed in a fixed order so output is deterministic.
func (r *Result) fillFromEngines(engines []*sched.Engine) {
	if len(engines) > 0 && engines[0].Col.Streaming() {
		r.fillFromStream(engines)
		return
	}
	var pooled []metrics.ResponseSample
	var utilLUT, utilFF, utilDSP, utilBRAM, weight float64
	var downSum sim.Duration
	var slotSpan float64
	faultsOn := false
	for _, e := range engines {
		s := e.Col.Summarize()
		r.Summary.PRLoads += s.PRLoads
		r.Summary.PRBlocked += s.PRBlocked
		r.Summary.PRRetries += s.PRRetries
		r.Summary.PRWait += s.PRWait
		r.Summary.Preemptions += s.Preemptions
		r.Summary.Migrations += s.Migrations
		if down, span, events, failed, retried, on := e.Col.FaultStats(); on {
			faultsOn = true
			downSum += down
			slotSpan += span
			r.Summary.FaultEvents += events
			r.Summary.FailedApps += failed
			// Per-board distinct counts: an app whose PRs were retried
			// on two boards (it migrated between them) counts on each.
			r.Summary.RetriedApps += retried
		}
		utilLUT += s.UtilLUT * float64(s.Apps)
		utilFF += s.UtilFF * float64(s.Apps)
		utilDSP += s.UtilDSP * float64(s.Apps)
		utilBRAM += s.UtilBRAM * float64(s.Apps)
		weight += float64(s.Apps)
		pooled = append(pooled, e.Col.Responses...)
		hits, misses := e.Cache.Stats()
		r.CacheHits += hits
		r.CacheMisses += misses
		r.LaunchWait += e.Cores.Sched.Stats().WaitByName["launch"]
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].AppID < pooled[j].AppID })
	r.Samples = pooled
	r.Summary.Apps = len(pooled)
	if weight > 0 {
		r.Summary.UtilLUT = utilLUT / weight
		r.Summary.UtilFF = utilFF / weight
		r.Summary.UtilDSP = utilDSP / weight
		r.Summary.UtilBRAM = utilBRAM / weight
	}
	if faultsOn {
		r.Summary.Downtime = downSum
		r.Summary.Availability = 1
		if slotSpan > 0 {
			a := 1 - downSum.Seconds()/slotSpan
			if a < 0 {
				a = 0
			}
			r.Summary.Availability = a
		}
	}
	if len(pooled) > 0 {
		r.Summary.MeanRT = metrics.MeanResponse(pooled)
		r.Summary.P50 = pooledPercentile(pooled, 50)
		r.Summary.P95 = pooledPercentile(pooled, 95)
		r.Summary.P99 = pooledPercentile(pooled, 99)
		var queue float64
		minRT, maxRT := pooled[0].Response, pooled[0].Response
		for _, s := range pooled {
			queue += float64(s.QueueDelay)
			if s.Response < minRT {
				minRT = s.Response
			}
			if s.Response > maxRT {
				maxRT = s.Response
			}
			if s.Finish > r.Makespan {
				r.Makespan = s.Finish
			}
		}
		r.Summary.MeanQueue = sim.Duration(queue / float64(len(pooled)))
		r.Summary.MinRT = minRT
		r.Summary.MaxRT = maxRT
	}
	agg := metrics.NewCollector(fabric.ResVec{})
	agg.Responses = pooled
	r.BySpec = agg.BySpec()
}

// fillFromStream is fillFromEngines' stream-mode twin: no sample ever
// leaves its engine. Counters and the fault axis merge exactly as in
// exact mode; the response-time distribution, per-spec aggregates and
// windowed time-series come from folding every engine's sketches into
// one aggregate collector (bucket counts add exactly, so the merged
// percentiles are independent of engine grouping); fleet utilization
// is the summed resource-time integrals over the summed capacities.
func (r *Result) fillFromStream(engines []*sched.Engine) {
	agg := metrics.NewCollector(fabric.ResVec{})
	var downSum sim.Duration
	var slotSpan float64
	faultsOn := false
	for _, e := range engines {
		s := e.Col.Summarize()
		r.Summary.PRLoads += s.PRLoads
		r.Summary.PRBlocked += s.PRBlocked
		r.Summary.PRRetries += s.PRRetries
		r.Summary.PRWait += s.PRWait
		r.Summary.Preemptions += s.Preemptions
		r.Summary.Migrations += s.Migrations
		if down, span, events, failed, retried, on := e.Col.FaultStats(); on {
			faultsOn = true
			downSum += down
			slotSpan += span
			r.Summary.FaultEvents += events
			r.Summary.FailedApps += failed
			r.Summary.RetriedApps += retried
		}
		agg.AbsorbStream(e.Col)
		hits, misses := e.Cache.Stats()
		r.CacheHits += hits
		r.CacheMisses += misses
		r.LaunchWait += e.Cores.Sched.Stats().WaitByName["launch"]
	}
	s := agg.Summarize()
	r.Summary.Apps = s.Apps
	r.Summary.MeanRT = s.MeanRT
	r.Summary.P50 = s.P50
	r.Summary.P95 = s.P95
	r.Summary.P99 = s.P99
	r.Summary.MinRT = s.MinRT
	r.Summary.MaxRT = s.MaxRT
	r.Summary.MeanQueue = s.MeanQueue
	r.Summary.UtilLUT = s.UtilLUT
	r.Summary.UtilFF = s.UtilFF
	r.Summary.UtilDSP = s.UtilDSP
	r.Summary.UtilBRAM = s.UtilBRAM
	if faultsOn {
		r.Summary.Downtime = downSum
		r.Summary.Availability = 1
		if slotSpan > 0 {
			a := 1 - downSum.Seconds()/slotSpan
			if a < 0 {
				a = 0
			}
			r.Summary.Availability = a
		}
	}
	if end := agg.EndTime(); end > r.Makespan {
		r.Makespan = end
	}
	r.TimeSeries = agg.Windows()
	r.BySpec = agg.BySpec()
}
