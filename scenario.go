package versaslot

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"versaslot/internal/cluster"
	"versaslot/internal/fabric"
	"versaslot/internal/fault"
	"versaslot/internal/metrics"
	"versaslot/internal/orchestrator"
	"versaslot/internal/rng"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Topology selects the system shape a scenario runs on.
type Topology string

const (
	// TopologySingle is one board driven by one policy.
	TopologySingle Topology = "single"
	// TopologyCluster is the paper's two-board switching pair with
	// D_switch-triggered live migration.
	TopologyCluster Topology = "cluster"
	// TopologyFarm is K switching pairs behind a least-loaded
	// dispatcher.
	TopologyFarm Topology = "farm"
)

// Scenario declaratively describes one run: topology, policy (by
// registered name), workload (by congestion condition, inline
// sequence, or file), parameter overrides, and seed. The zero value
// plus defaults reproduces the paper's standard-condition Big.Little
// run. Scenarios marshal to/from JSON unchanged, so a run is fully
// reproducible from the serialized artifact.
type Scenario struct {
	// Name labels the scenario in results and sweep output.
	Name string `json:"name,omitempty"`
	// Topology is single (default), cluster, or farm.
	Topology Topology `json:"topology,omitempty"`
	// Policy is a registered policy name (default "versaslot-bl");
	// single topology only — cluster boards run the VersaSlot pair.
	Policy string `json:"policy,omitempty"`
	// Condition names the congestion regime used to generate the
	// workload (default "standard"); ignored when Workload or
	// WorkloadFile is set.
	Condition string `json:"condition,omitempty"`
	// Apps sizes the generated sequence (default 20).
	Apps int `json:"apps,omitempty"`
	// Seed seeds both workload generation and the simulation kernel
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Arrival selects a registered arrival process (uniform, poisson,
	// mmpp, diurnal, phased, closed-loop, trace, or a third-party
	// registration) with its parameters; zero-valued rate parameters
	// are filled from Condition, so {"process": "mmpp"} inherits the
	// regime. Nil keeps the paper's classic uniform/Poisson generator.
	// Mutually exclusive with the legacy Poisson flag and the
	// IntervalLo/IntervalHi overrides.
	Arrival *workload.ArrivalSpec `json:"arrival,omitempty"`
	// Workload inlines an explicit arrival sequence, overriding
	// Condition/Apps generation.
	Workload *workload.Sequence `json:"workload,omitempty"`
	// WorkloadFile loads the sequence from a JSON file at run time.
	WorkloadFile string `json:"workload_file,omitempty"`
	// IntervalLo/IntervalHi (nanoseconds) override the condition's
	// inter-arrival bounds (the Fig. 8 long workloads use this).
	IntervalLo sim.Duration `json:"interval_lo,omitempty"`
	IntervalHi sim.Duration `json:"interval_hi,omitempty"`
	// Poisson draws exponential inter-arrival times instead of the
	// paper's uniform intervals.
	Poisson bool `json:"poisson,omitempty"`
	// Params overrides hardware/control-plane constants; nil means
	// sched.DefaultParams().
	Params *sched.Params `json:"params,omitempty"`
	// Platform selects the single board's platform: a registry
	// reference ({"ref": "u250-quad"}) or an inline custom platform
	// (name, area budget, ordered class mix). Nil means the policy's
	// declared platform. Single topology only; for cluster/farm
	// platforms use PairPlatforms.
	Platform *fabric.PlatformSpec `json:"platform,omitempty"`
	// BigSlots/LittleSlots select a custom single-board slot mix (the
	// paper's "any Big/Little configuration" extension); both zero
	// means the policy's declared floorplan.
	BigSlots    int `json:"big_slots,omitempty"`
	LittleSlots int `json:"little_slots,omitempty"`
	// Pairs is the farm size (default 2; farm topology only).
	Pairs int `json:"pairs,omitempty"`
	// PairPlatforms assigns registered platforms to switching pairs
	// (cluster: the single pair; farm: entry i configures pair i,
	// missing entries keep the paper's Only.Little/Big.Little pair).
	// A farm can therefore mix board types; dispatch then routes each
	// application only to pairs whose slot classes can hold it.
	PairPlatforms []cluster.PairPlatforms `json:"pair_platforms,omitempty"`
	// Dispatcher selects the farm's arrival dispatcher by registered
	// name (default "least-loaded"; farm topology only). See
	// Dispatchers() for the registry.
	Dispatcher string `json:"dispatcher,omitempty"`
	// RebalanceEvery (nanoseconds), when positive, runs the farm's
	// cross-pair rebalancer on that virtual-time cadence: sustained
	// load imbalance live-migrates queued applications between pairs
	// over the rack link. Zero disables rebalancing (farm only).
	RebalanceEvery sim.Duration `json:"rebalance_every,omitempty"`
	// RebalanceGap is the minimum unfinished-app gap between the most-
	// and least-loaded pairs that triggers a cross-pair migration.
	// Zero means the default of 2; a gap of 1 is honored but can
	// ping-pong a single queued app (farm only).
	RebalanceGap int `json:"rebalance_gap,omitempty"`
	// Shards controls the farm's sharded executor. Greater than one
	// runs the pairs on that many persistent worker goroutines under
	// conservative lookahead: each pair advances its own event stream up
	// to the next farm-control instant, workers synchronize only when a
	// control event can actually reach their pairs, and results are
	// byte-identical to the sequential run at any width. One forces the
	// sequential executor. Zero (the default) picks automatically from
	// the online pair count and GOMAXPROCS — small farms and single-CPU
	// hosts resolve to sequential. Farm topology only; traces and event
	// recording are disabled like in parallel sweeps. An explicit count
	// above one is incompatible with a non-zero params.pr_failure_rate
	// (auto quietly falls back to sequential instead).
	Shards int `json:"shards,omitempty"`
	// ThresholdUp/ThresholdDown override the Schmitt-trigger levels
	// (cluster/farm; zero means the paper's defaults).
	ThresholdUp   float64 `json:"threshold_up,omitempty"`
	ThresholdDown float64 `json:"threshold_down,omitempty"`
	// WindowUpdates is the D_switch re-evaluation cadence (default 4).
	WindowUpdates int `json:"window_updates,omitempty"`
	// Smoothing is the EWMA factor on raw D_switch samples.
	Smoothing float64 `json:"smoothing,omitempty"`
	// Faults configures the chaos subsystem: a fault-axis seed plus a
	// list of registered injectors (slot-fail, board-fail, pr-flaky,
	// straggler, checkpoint, or third-party registrations). Nil or an
	// empty injector list disables fault injection entirely and the run
	// stays byte-identical to a fault-free build. See FaultInjectors()
	// for the registry.
	Faults *fault.Spec `json:"faults,omitempty"`
	// Tenants declares a multi-tenant workload (farm topology only):
	// each tenant brings its own arrival process (seeded from the
	// scenario seed plus the tenant name), quota, release priority,
	// over-quota policy (throttle or reject), and SLO. Arrivals then
	// pass through the orchestrator's admission controller instead of
	// being injected directly, and the result gains a per-tenant
	// ledger and SLO-attainment breakdown. Mutually exclusive with
	// Workload/WorkloadFile/Arrival and the legacy poisson/interval
	// overrides (each tenant carries its own arrival block).
	Tenants []orchestrator.TenantSpec `json:"tenants,omitempty"`
	// Autoscale enables the deterministic autoscaler (farm topology
	// only): the farm is built with Max pairs of which Pairs start
	// online and Max - Pairs start standby, and windowed load
	// commissions or drains pairs inside [Min, Max]. Requires
	// Min <= Pairs <= Max after defaulting.
	Autoscale *orchestrator.AutoscaleSpec `json:"autoscale,omitempty"`
	// Metrics selects the metrics pipeline. Nil (or mode "exact")
	// retains every per-app sample — the historic default, byte-
	// identical output. Mode "stream" folds samples into bounded-memory
	// percentile sketches on arrival and adds a windowed time-series to
	// the result, so memory stays flat over arbitrarily long horizons.
	Metrics *MetricsSpec `json:"metrics,omitempty"`
}

// MetricsSpec configures the streaming metrics mode.
type MetricsSpec struct {
	// Mode is "exact" (default) or "stream".
	Mode string `json:"mode"`
	// Window is the time-series bucket width in nanoseconds (stream
	// mode; default 10 simulated seconds).
	Window sim.Duration `json:"window,omitempty"`
	// MaxWindows bounds the retained time-series ring (stream mode;
	// default 64). Older windows roll off; their samples remain in the
	// run-level sketch.
	MaxWindows int `json:"max_windows,omitempty"`
}

// withDefaults fills unset fields with the paper's defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Topology == "" {
		s.Topology = TopologySingle
	}
	if s.Policy == "" && s.BigSlots == 0 && s.LittleSlots == 0 {
		if s.Platform != nil {
			// The platform shape picks the matching VersaSlot variant
			// (or the exclusive baseline on a virtual platform).
			if p, err := s.Platform.Resolve(); err == nil {
				switch {
				case p.Virtual:
					s.Policy = "baseline"
				case p.Heterogeneous():
					s.Policy = "versaslot-bl"
				default:
					s.Policy = "versaslot-ol"
				}
			}
		} else {
			s.Policy = "versaslot-bl"
		}
	}
	if s.Condition == "" {
		s.Condition = "standard"
	}
	if s.Apps == 0 {
		s.Apps = 20
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Pairs == 0 {
		s.Pairs = 2
	}
	return s
}

// Validate checks the scenario against the policy registry and the
// condition table without running it.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	switch s.Topology {
	case TopologySingle, TopologyCluster, TopologyFarm:
	default:
		return fmt.Errorf("versaslot: unknown topology %q (want single|cluster|farm)", s.Topology)
	}
	if s.BigSlots < 0 || s.LittleSlots < 0 {
		return fmt.Errorf("versaslot: negative slot counts %d/%d", s.BigSlots, s.LittleSlots)
	}
	custom := s.BigSlots > 0 || s.LittleSlots > 0
	if custom && s.Topology != TopologySingle {
		return fmt.Errorf("versaslot: custom slot mix is single-topology only")
	}
	if custom && s.Policy != "" {
		return fmt.Errorf("versaslot: policy %q conflicts with a custom slot mix (the mix implies the VersaSlot policy)", s.Policy)
	}
	if s.Platform != nil {
		if s.Topology != TopologySingle {
			return fmt.Errorf("versaslot: the platform block is single-topology only (use pair_platforms for cluster/farm)")
		}
		if custom {
			return fmt.Errorf("versaslot: platform block conflicts with the legacy big_slots/little_slots mix (pick one)")
		}
		p, err := s.Platform.Resolve()
		if err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
		reg, ok := sched.Lookup(s.Policy)
		if !ok {
			return fmt.Errorf("versaslot: unknown policy %q (registered: %v)", s.Policy, sched.Names())
		}
		if err := sched.CompatiblePlatform(reg, p); err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
	}
	if len(s.PairPlatforms) > 0 {
		switch s.Topology {
		case TopologyCluster:
			if len(s.PairPlatforms) > 1 {
				return fmt.Errorf("versaslot: cluster topology has one pair; got %d pair_platforms entries", len(s.PairPlatforms))
			}
		case TopologyFarm:
			// With autoscaling the farm is built out to the autoscale
			// max (standby pairs included), so platform assignments may
			// cover the full fleet.
			built := s.Pairs
			if s.Autoscale != nil && s.Autoscale.Defaulted().Max > built {
				built = s.Autoscale.Defaulted().Max
			}
			if len(s.PairPlatforms) > built {
				return fmt.Errorf("versaslot: %d pair_platforms entries for %d pairs", len(s.PairPlatforms), built)
			}
		default:
			return fmt.Errorf("versaslot: pair_platforms is cluster/farm-topology only (topology %q)", s.Topology)
		}
		for i, pp := range s.PairPlatforms {
			for _, name := range []string{pp.Base, pp.Boost} {
				if name == "" {
					continue
				}
				p, ok := fabric.LookupPlatform(name)
				if !ok {
					return fmt.Errorf("versaslot: pair %d: unknown platform %q (registered: %v)",
						i, name, fabric.PlatformNames())
				}
				if p.Virtual {
					return fmt.Errorf("versaslot: pair %d: platform %q is the monolithic baseline template; switching pairs need DPR slots", i, name)
				}
			}
		}
	}
	if custom {
		if area := 2*s.BigSlots + s.LittleSlots; area > 8 {
			return fmt.Errorf("versaslot: slot mix %dB+%dL needs %d Little-equivalents; the fabric holds 8",
				s.BigSlots, s.LittleSlots, area)
		}
		if s.LittleSlots == 0 {
			return fmt.Errorf("versaslot: slot mix %dB+0L has no Little slots; non-bundleable applications (e.g. LeNet) could never execute",
				s.BigSlots)
		}
	}
	if !custom && s.Topology == TopologySingle {
		if _, ok := sched.Lookup(s.Policy); !ok {
			return fmt.Errorf("versaslot: unknown policy %q (registered: %v)", s.Policy, sched.Names())
		}
	}
	if s.Workload == nil && s.WorkloadFile == "" {
		if _, err := workload.ParseCondition(s.Condition); err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
		if s.Apps < 0 {
			return fmt.Errorf("versaslot: negative app count %d", s.Apps)
		}
	}
	if (s.IntervalLo != 0 || s.IntervalHi != 0) &&
		!(s.IntervalLo > 0 && s.IntervalHi >= s.IntervalLo) {
		return fmt.Errorf("versaslot: invalid interval override [%v, %v] (need 0 < lo <= hi)",
			s.IntervalLo, s.IntervalHi)
	}
	if s.Arrival != nil {
		if s.Workload != nil || s.WorkloadFile != "" {
			return fmt.Errorf("versaslot: arrival process conflicts with an explicit workload (pick one)")
		}
		if s.Poisson || s.IntervalLo != 0 || s.IntervalHi != 0 {
			return fmt.Errorf("versaslot: arrival process conflicts with the legacy poisson/interval overrides (put the rates in the arrival block)")
		}
		cond, err := workload.ParseCondition(s.Condition)
		if err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
		if err := s.Arrival.WithCondition(cond).Validate(); err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
	}
	if s.Pairs < 0 {
		return fmt.Errorf("versaslot: negative pair count %d", s.Pairs)
	}
	farmOnly := s.Dispatcher != "" || s.RebalanceEvery != 0 || s.RebalanceGap != 0 || s.Shards != 0
	if farmOnly && s.Topology != TopologyFarm {
		return fmt.Errorf("versaslot: dispatcher/rebalance/shards knobs are farm-topology only (topology %q)", s.Topology)
	}
	if s.Shards < 0 {
		return fmt.Errorf("versaslot: negative shard count %d", s.Shards)
	}
	if s.Shards > 1 && s.Params != nil && s.Params.PRFailureRate > 0 {
		return fmt.Errorf("versaslot: sharded farm execution is incompatible with pr_failure_rate > 0 (CRC re-stream draws would leave the shared kernel stream)")
	}
	if s.Dispatcher != "" {
		if _, ok := cluster.LookupDispatcher(s.Dispatcher); !ok {
			return fmt.Errorf("versaslot: unknown dispatcher %q (registered: %v)",
				s.Dispatcher, cluster.DispatcherNames())
		}
	}
	if s.RebalanceEvery < 0 {
		return fmt.Errorf("versaslot: negative rebalance interval %v", s.RebalanceEvery)
	}
	if s.RebalanceGap < 0 {
		return fmt.Errorf("versaslot: negative rebalance gap %d", s.RebalanceGap)
	}
	if (len(s.Tenants) > 0 || s.Autoscale != nil) && s.Topology != TopologyFarm {
		return fmt.Errorf("versaslot: tenants/autoscale blocks are farm-topology only (topology %q)", s.Topology)
	}
	if len(s.Tenants) > 0 {
		if s.Workload != nil || s.WorkloadFile != "" || s.Arrival != nil {
			return fmt.Errorf("versaslot: tenants conflict with a scenario-level workload/arrival block (each tenant carries its own)")
		}
		if s.Poisson || s.IntervalLo != 0 || s.IntervalHi != 0 {
			return fmt.Errorf("versaslot: tenants conflict with the legacy poisson/interval overrides (put the rates in the tenant arrival blocks)")
		}
		names := make(map[string]bool, len(s.Tenants))
		for _, t := range s.Tenants {
			if err := t.Validate(); err != nil {
				return fmt.Errorf("versaslot: %w", err)
			}
			if names[t.Name] {
				return fmt.Errorf("versaslot: duplicate tenant name %q", t.Name)
			}
			names[t.Name] = true
			condName := s.Condition
			if t.Condition != "" {
				condName = t.Condition
			}
			cond, err := workload.ParseCondition(condName)
			if err != nil {
				return fmt.Errorf("versaslot: tenant %q: %w", t.Name, err)
			}
			if t.Arrival != nil {
				if err := t.Arrival.WithCondition(cond).Validate(); err != nil {
					return fmt.Errorf("versaslot: tenant %q: %w", t.Name, err)
				}
			}
		}
	}
	if s.Autoscale != nil {
		a := s.Autoscale.Defaulted()
		if err := a.Validate(); err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
		if s.Pairs > a.Max || s.Pairs < a.Min {
			return fmt.Errorf("versaslot: %d initial pairs outside the autoscale range [%d, %d] (pairs is the initial online count; the farm is built out to max)",
				s.Pairs, a.Min, a.Max)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("versaslot: %w", err)
		}
	}
	if s.Metrics != nil {
		switch s.Metrics.Mode {
		case "", "exact":
			if s.Metrics.Window != 0 || s.Metrics.MaxWindows != 0 {
				return fmt.Errorf("versaslot: metrics window/max_windows require mode \"stream\"")
			}
		case "stream":
			if s.Metrics.Window < 0 {
				return fmt.Errorf("versaslot: negative metrics window %v", s.Metrics.Window)
			}
			if s.Metrics.MaxWindows < 0 {
				return fmt.Errorf("versaslot: negative metrics max_windows %d", s.Metrics.MaxWindows)
			}
			if s.Metrics.MaxWindows > 1<<16 {
				return fmt.Errorf("versaslot: metrics max_windows %d exceeds the %d ring cap", s.Metrics.MaxWindows, 1<<16)
			}
		default:
			return fmt.Errorf("versaslot: unknown metrics mode %q (want exact|stream)", s.Metrics.Mode)
		}
	}
	return nil
}

// streamConfig returns the stream-sink configuration and whether
// stream mode is enabled.
func (s Scenario) streamConfig() (metrics.StreamConfig, bool) {
	if s.Metrics == nil || s.Metrics.Mode != "stream" {
		return metrics.StreamConfig{}, false
	}
	return metrics.StreamConfig{
		Window:     s.Metrics.Window,
		MaxWindows: s.Metrics.MaxWindows,
	}, true
}

// workloadKey identifies scenarios whose generated sequences are
// identical: workload generation is a pure function of these fields.
// The paper's sweep grid varies the policy axis most — six policies
// share each (condition, seed) sequence, so a sweep generates each
// sequence once instead of six times.
type workloadKey struct {
	condition string
	seed      uint64
	apps      int
	lo, hi    sim.Duration
	poisson   bool
	// arrival is the canonical serialized arrival spec (empty for the
	// classic generator): scenarios that differ only in their arrival
	// process must never share a cached sequence.
	arrival string
}

// workloadKey returns the cache key for a defaulted scenario, or
// ok=false when the workload is inline or file-based (not generated).
func (s Scenario) workloadKey() (workloadKey, bool) {
	if s.Workload != nil || s.WorkloadFile != "" || len(s.Tenants) > 0 {
		return workloadKey{}, false
	}
	key := workloadKey{
		condition: s.Condition,
		seed:      s.Seed,
		apps:      s.Apps,
		lo:        s.IntervalLo,
		hi:        s.IntervalHi,
		poisson:   s.Poisson,
	}
	if s.Arrival != nil {
		key.arrival = s.Arrival.Key()
	}
	return key, true
}

// sequence resolves the scenario's workload: inline sequence, file, or
// condition-driven generation.
func (s Scenario) sequence() (*workload.Sequence, error) {
	if s.Workload != nil {
		return s.Workload, nil
	}
	if s.WorkloadFile != "" {
		f, err := os.Open(s.WorkloadFile)
		if err != nil {
			return nil, fmt.Errorf("versaslot: workload file: %w", err)
		}
		defer f.Close()
		return workload.ReadJSON(f)
	}
	cond, err := workload.ParseCondition(s.Condition)
	if err != nil {
		return nil, fmt.Errorf("versaslot: %w", err)
	}
	p := workload.DefaultGenParams(cond)
	p.Apps = s.Apps
	if s.Arrival != nil {
		seq, err := workload.GenerateArrival(p, s.Arrival.WithCondition(cond), s.Seed)
		if err != nil {
			return nil, fmt.Errorf("versaslot: %w", err)
		}
		return seq, nil
	}
	if s.IntervalLo > 0 && s.IntervalHi >= s.IntervalLo {
		p.IntervalLo, p.IntervalHi = s.IntervalLo, s.IntervalHi
	}
	p.Poisson = s.Poisson
	return workload.Generate(p, s.Seed), nil
}

// tenantSequences generates one workload sequence per tenant (same
// order as Tenants). Each tenant's seed derives from the scenario
// seed plus the tenant name, so adding, removing, or renaming one
// tenant never perturbs another's arrivals. Call on a defaulted
// scenario.
func (s Scenario) tenantSequences() ([]*workload.Sequence, error) {
	seqs := make([]*workload.Sequence, len(s.Tenants))
	for i, t := range s.Tenants {
		condName := s.Condition
		if t.Condition != "" {
			condName = t.Condition
		}
		cond, err := workload.ParseCondition(condName)
		if err != nil {
			return nil, fmt.Errorf("versaslot: tenant %q: %w", t.Name, err)
		}
		p := workload.DefaultGenParams(cond)
		p.Apps = t.Apps
		if p.Apps == 0 {
			p.Apps = s.Apps
		}
		seed := rng.Derive(s.Seed, "tenant/"+t.Name)
		var seq *workload.Sequence
		if t.Arrival != nil {
			seq, err = workload.GenerateArrival(p, t.Arrival.WithCondition(cond), seed)
			if err != nil {
				return nil, fmt.Errorf("versaslot: tenant %q: %w", t.Name, err)
			}
		} else {
			seq = workload.Generate(p, seed)
		}
		seq.Name = t.Name
		seqs[i] = seq
	}
	return seqs, nil
}

// clusterConfig maps the scenario's cluster knobs onto a cluster
// configuration.
func (s Scenario) clusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = s.Seed
	if s.Params != nil {
		cfg.Params = *s.Params
	}
	if len(s.PairPlatforms) > 0 {
		cfg.BasePlatform = s.PairPlatforms[0].Base
		cfg.BoostPlatform = s.PairPlatforms[0].Boost
	}
	if s.ThresholdUp > 0 {
		cfg.ThresholdUp = s.ThresholdUp
	}
	if s.ThresholdDown > 0 {
		cfg.ThresholdDown = s.ThresholdDown
	}
	if s.WindowUpdates > 0 {
		cfg.WindowUpdates = s.WindowUpdates
	}
	if s.Smoothing > 0 {
		cfg.Smoothing = s.Smoothing
	}
	return cfg
}

// farmConfig maps the scenario's farm knobs onto a farm configuration.
func (s Scenario) farmConfig() cluster.FarmConfig {
	pair := s.clusterConfig()
	// Per-pair assignments go through FarmConfig.PairPlatforms; the
	// shared pair config keeps the defaults.
	pair.BasePlatform, pair.BoostPlatform = "", ""
	cfg := cluster.FarmConfig{
		Pair:           pair,
		Pairs:          s.Pairs,
		PairPlatforms:  s.PairPlatforms,
		Dispatcher:     s.Dispatcher,
		RebalanceEvery: s.RebalanceEvery,
		RebalanceGap:   s.RebalanceGap,
		Shards:         s.Shards,
	}
	if s.Autoscale != nil {
		// The farm is built out to the autoscale max: Pairs is the
		// initial online count, the rest start standby and wait for the
		// autoscaler to commission them.
		a := s.Autoscale.Defaulted()
		cfg.Pairs = a.Max
		cfg.Standby = a.Max - s.Pairs
	}
	return cfg
}

// WriteJSON serializes the scenario as an indented config artifact.
func (s Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadScenario deserializes a scenario, rejecting unknown fields so
// config-artifact typos fail loudly.
func ReadScenario(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("versaslot: decode scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads and validates a scenario JSON file. Relative
// WorkloadFile and arrival-trace paths inside the scenario are
// resolved against the scenario file's directory — to absolute paths,
// so a catalog entry can name its trace as "traces/ramp.jsonl", run
// from any working directory, and still round-trip through
// SaveScenario into an artifact that runs from anywhere on this
// machine.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("versaslot: %w", err)
	}
	defer f.Close()
	s, err := ReadScenario(f)
	if err != nil {
		return Scenario{}, err
	}
	dir := filepath.Dir(path)
	resolve := func(p string) string {
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		if abs, err := filepath.Abs(p); err == nil {
			return abs
		}
		return p
	}
	if s.WorkloadFile != "" {
		s.WorkloadFile = resolve(s.WorkloadFile)
	}
	if s.Arrival != nil {
		spec := s.Arrival.ResolvePaths(resolve)
		s.Arrival = &spec
	}
	return s, nil
}

// SaveScenario writes the scenario to a JSON file.
func SaveScenario(path string, s Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("versaslot: %w", err)
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Policies lists registered policy names in the paper's presentation
// order (built-ins first, then third-party registrations).
func Policies() []string { return sched.Names() }

// PolicyTitle returns the display title of a registered policy name.
func PolicyTitle(name string) string {
	if r, ok := sched.Lookup(name); ok {
		return r.Title
	}
	return name
}

// Conditions lists the congestion-condition names in the paper's
// order.
func Conditions() []string { return workload.ConditionKeys() }

// ArrivalProcesses lists registered arrival-process names (built-ins
// first, then third-party registrations via
// workload.RegisterArrival).
func ArrivalProcesses() []string { return workload.ArrivalNames() }

// ArrivalProcessTitle returns the display title of a registered
// arrival-process name.
func ArrivalProcessTitle(name string) string {
	if r, ok := workload.LookupArrival(name); ok {
		return r.Title
	}
	return name
}

// Platforms lists registered platform names (built-ins first, then
// third-party registrations via fabric.RegisterPlatform).
func Platforms() []string { return fabric.PlatformNames() }

// PlatformTitle returns the display title of a registered platform
// name.
func PlatformTitle(name string) string {
	if p, ok := fabric.LookupPlatform(name); ok {
		return p.Title
	}
	return name
}

// Dispatchers lists registered farm-dispatcher names (built-ins
// first, then third-party registrations via
// cluster.RegisterDispatcher).
func Dispatchers() []string { return cluster.DispatcherNames() }

// DispatcherTitle returns the display title of a registered
// dispatcher name.
func DispatcherTitle(name string) string {
	if r, ok := cluster.LookupDispatcher(name); ok {
		return r.Title
	}
	return name
}

// FaultInjectors lists registered fault-injector names (built-ins
// first, then third-party registrations via fault.Register).
func FaultInjectors() []string { return fault.Names() }

// FaultInjectorTitle returns the display title of a registered
// fault-injector name.
func FaultInjectorTitle(name string) string {
	if r, ok := fault.Lookup(name); ok {
		return r.Title
	}
	return name
}
