// Scenario: reproduce a run from a JSON config artifact — the file
// fully determines the topology, policy, workload and seed, so anyone
// holding the artifact gets byte-identical results. This is the
// `versaslot -scenario file.json` path as a library call.
//
//	go run ./examples/scenario [scenario.json]
package main

import (
	"fmt"
	"log"
	"os"

	"versaslot"
	"versaslot/internal/sim"
)

func main() {
	path := "examples/scenario/scenario.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	sc, err := versaslot.LoadScenario(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded scenario %q: %s topology, condition %s, %d apps, seed %d\n\n",
		sc.Name, sc.Topology, sc.Condition, sc.Apps, sc.Seed)

	// Run it twice: a scenario plus its seed is a complete description
	// of the run, so the results match byte for byte.
	first, err := versaslot.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	second, err := versaslot.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	s := first.Summary
	fmt.Printf("Completed %d applications\n", s.Apps)
	fmt.Printf("  mean response time : %.3f s\n", sim.Time(s.MeanRT).Seconds())
	fmt.Printf("  P95 / P99          : %.3f / %.3f s\n",
		sim.Time(s.P95).Seconds(), sim.Time(s.P99).Seconds())
	fmt.Printf("  cross-board switches: %d (mean overhead %v)\n",
		first.Switches, first.MeanSwitchTime)

	if first.Summary == second.Summary && first.Switches == second.Switches {
		fmt.Println("\nReproducibility check: second run matches the first.")
	} else {
		fmt.Println("\nReproducibility check FAILED: runs differ!")
		os.Exit(1)
	}
}
