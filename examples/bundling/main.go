// Bundling: explore the 3-in-1 task machinery of Section III-B — which
// applications can bundle, the serial-vs-parallel selection criterion
// of Fig. 3, and the resource-utilization gains of Fig. 7.
//
//	go run ./examples/bundling
package main

import (
	"fmt"
	"os"

	"versaslot/internal/appmodel"
	"versaslot/internal/bundle"
	"versaslot/internal/report"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	// Which benchmark apps can execute in Big slots?
	t := report.NewTable("Bundling feasibility (Big slot = 2x Little capacity)",
		"App", "Tasks", "Bundles", "Can bundle?")
	for _, spec := range workload.Suite() {
		t.AddRow(spec.Name, spec.TaskCount(), bundle.Count(spec),
			fmt.Sprintf("%v", bundle.CanBundle(spec)))
	}
	t.Render(os.Stdout)
	fmt.Println("LeNet's partitions nearly fill Little slots, so no triple")
	fmt.Println("fits a Big slot — exactly why LeNet is absent from Fig. 7.")

	// Serial vs parallel: the criterion Tmax*(N+2) vs (T1+T2+T3)*N.
	fmt.Println()
	mt := report.NewTable("Mode selection for IC's first bundle (DCT+Quantize+BDQ)",
		"Batch", "Parallel total", "Serial total", "Selected")
	spec := workload.IC
	for _, batch := range []int{1, 2, 3, 5, 10, 30} {
		pF, pR := appmodel.BundleTiming(spec, bundle.Size, 0, appmodel.BundleParallel)
		sF, sR := appmodel.BundleTiming(spec, bundle.Size, 0, appmodel.BundleSerial)
		par := pF + sim.Duration(batch-1)*pR
		ser := sF + sim.Duration(batch-1)*sR
		mt.AddRow(batch, par.String(), ser.String(), bundle.SelectMode(spec, 0, batch).String())
	}
	mt.Render(os.Stdout)
	fmt.Println("Small batches cannot amortize the parallel pipeline's fill,")
	fmt.Println("so the serial 3-in-1 bitstream is selected (Fig. 3).")

	// Utilization gains (Fig. 7).
	fmt.Println()
	ut := report.NewTable("3-in-1 utilization gains (Fig. 7)",
		"App", "LUT +%", "FF +%")
	for _, spec := range workload.Suite() {
		if gain, ok := bundle.MeasureUtilGain(spec); ok {
			ut.AddRow(gain.App, gain.LUTPct, gain.FFPct)
		}
	}
	ut.Render(os.Stdout)
}
