// Migration: drive a two-board cluster through the D_switch loop — the
// workload first saturates the Only.Little board, the Schmitt trigger
// crosses its upper threshold, and live migration moves the ready
// applications to the pre-warmed Big.Little board (Section III-D).
// A streaming Observer reports each switch as it happens.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"versaslot"
	"versaslot/internal/sim"
)

func main() {
	// A dense 60-app workload that drives the Only.Little board into
	// PR contention, on the two-board switching topology.
	sc := versaslot.Scenario{
		Topology:   versaslot.TopologyCluster,
		Condition:  "standard",
		Apps:       60,
		Seed:       11,
		IntervalLo: 400 * sim.Millisecond,
		IntervalHi: 600 * sim.Millisecond,
	}

	runner := versaslot.NewRunner(versaslot.WithObserver(func(ev versaslot.Event) {
		if ev.Kind == "switch" {
			fmt.Printf("[t=%.2fs] live switch: %s -> %s\n",
				ev.At.Seconds(), ev.From, ev.To)
		}
	}))
	res, err := runner.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nCluster run: %d apps, mean response %.3f s\n",
		res.Summary.Apps, sim.Time(res.Summary.MeanRT).Seconds())
	fmt.Printf("Cross-board switches: %d (mean overhead %v, %d apps migrated)\n",
		res.Switches, res.MeanSwitchTime, res.MigratedApps)

	fmt.Println("\nD_switch trace (every evaluation; thresholds 0.1 / 0.0125):")
	for _, p := range res.SwitchTrace {
		bar := ""
		n := int(p.D * 200)
		if n > 60 {
			n = 60
		}
		for i := 0; i < n; i++ {
			bar += "#"
		}
		marker := ""
		if p.Decision.String() == "switch" {
			target := "Big.Little"
			if p.Mode.String() == "Big.Little" {
				target = "Only.Little"
			}
			marker = "  <== SWITCH to " + target
		}
		fmt.Printf("  done=%3d  D=%.4f  %-12s %s%s\n",
			p.Completed, p.D, "["+p.Mode.String()+"]", bar, marker)
	}
}
