// Migration: drive a two-board cluster through the D_switch loop — the
// workload first saturates the Only.Little board, the Schmitt trigger
// crosses its upper threshold, and live migration moves the ready
// applications to the pre-warmed Big.Little board (Section III-D).
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"versaslot/internal/cluster"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	// A dense 60-app workload that drives the Only.Little board into
	// PR contention.
	params := workload.DefaultGenParams(workload.Standard)
	params.Apps = 60
	params.IntervalLo = 400 * sim.Millisecond
	params.IntervalHi = 600 * sim.Millisecond
	seq := workload.Generate(params, 11)

	cfg := cluster.DefaultConfig()
	cl := cluster.New(cfg)
	if err := cl.Inject(seq); err != nil {
		log.Fatal(err)
	}
	sum := cl.Run()

	fmt.Printf("Cluster run: %d apps, mean response %.3f s\n",
		sum.Apps, sim.Time(sum.MeanRT).Seconds())
	fmt.Printf("Cross-board switches: %d (mean overhead %v, %d apps migrated)\n",
		sum.Switches, sum.MeanSwitchTime, sum.MigratedApps)

	fmt.Println("\nD_switch trace (every evaluation; thresholds 0.1 / 0.0125):")
	for _, p := range sum.Trace {
		bar := ""
		n := int(p.D * 200)
		if n > 60 {
			n = 60
		}
		for i := 0; i < n; i++ {
			bar += "#"
		}
		marker := ""
		if p.Decision.String() == "switch" {
			target := "Big.Little"
			if p.Mode.String() == "Big.Little" {
				target = "Only.Little"
			}
			marker = "  <== SWITCH to " + target
		}
		fmt.Printf("  done=%3d  D=%.4f  %-12s %s%s\n",
			p.Completed, p.D, "["+p.Mode.String()+"]", bar, marker)
	}
}
