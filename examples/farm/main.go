// Farm: scale the paper's two-board switching unit to a rack — three
// Only.Little/Big.Little pairs behind a least-loaded dispatcher, each
// running its own D_switch loop.
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"log"

	"versaslot/internal/cluster"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 60
	seq := workload.Generate(p, 23)

	// One switching pair, saturated.
	single := cluster.New(cluster.DefaultConfig())
	if err := single.Inject(seq); err != nil {
		log.Fatal(err)
	}
	singleSum := single.Run()

	// Three pairs behind the dispatcher.
	farm := cluster.NewFarm(cluster.DefaultConfig(), 3)
	if err := farm.Inject(seq); err != nil {
		log.Fatal(err)
	}
	farmSum := farm.Run()

	fmt.Printf("60 stress-condition applications:\n\n")
	fmt.Printf("  one switching pair : mean RT %6.2f s   P99 %6.2f s   switches %d\n",
		sim.Time(singleSum.MeanRT).Seconds(), sim.Time(singleSum.P99).Seconds(), singleSum.Switches)
	fmt.Printf("  3-pair farm        : mean RT %6.2f s   P99 %6.2f s   switches %d\n",
		sim.Time(farmSum.MeanRT).Seconds(), sim.Time(farmSum.P99).Seconds(), farmSum.Switches)
	fmt.Printf("\n  dispatcher routing : %v arrivals per pair\n", farm.Routed())
	fmt.Printf("  speedup            : %.2fx\n",
		float64(singleSum.MeanRT)/float64(farmSum.MeanRT))
}
