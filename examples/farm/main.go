// Farm: scale the paper's two-board switching unit to a rack — three
// Only.Little/Big.Little pairs behind a least-loaded dispatcher, each
// running its own D_switch loop — and compare against one saturated
// pair via RunMany.
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"log"

	"versaslot"
	"versaslot/internal/sim"
)

func main() {
	// The same 60-app stress workload on both topologies (the shared
	// seed pins the arrival stream); RunMany executes them in
	// parallel.
	base := versaslot.Scenario{Condition: "stress", Apps: 60, Seed: 23}
	single := base
	single.Topology = versaslot.TopologyCluster
	farm := base
	farm.Topology = versaslot.TopologyFarm
	farm.Pairs = 3

	results, err := versaslot.RunMany([]versaslot.Scenario{single, farm}, 0)
	if err != nil {
		log.Fatal(err)
	}
	singleRes, farmRes := results[0], results[1]

	fmt.Printf("60 stress-condition applications:\n\n")
	fmt.Printf("  one switching pair : mean RT %6.2f s   P99 %6.2f s   switches %d\n",
		sim.Time(singleRes.Summary.MeanRT).Seconds(),
		sim.Time(singleRes.Summary.P99).Seconds(), singleRes.Switches)
	fmt.Printf("  3-pair farm        : mean RT %6.2f s   P99 %6.2f s   switches %d\n",
		sim.Time(farmRes.Summary.MeanRT).Seconds(),
		sim.Time(farmRes.Summary.P99).Seconds(), farmRes.Switches)
	fmt.Printf("\n  dispatcher routing : %v arrivals per pair\n", farmRes.Routed)
	fmt.Printf("  speedup            : %.2fx\n",
		float64(singleRes.Summary.MeanRT)/float64(farmRes.Summary.MeanRT))
}
