// Farm: scale the paper's two-board switching unit to a rack — K
// Only.Little/Big.Little pairs behind a pluggable dispatcher, each
// running its own D_switch loop. This example compares every
// registered dispatcher on one stress workload via RunMany, then
// turns on the cross-pair rebalancer and shows queued applications
// live-migrating between pairs over the rack link.
//
//	go run ./examples/farm
package main

import (
	"fmt"
	"log"

	"versaslot"
	"versaslot/internal/sim"
)

func main() {
	// The same 60-app stress workload for every dispatcher (the shared
	// seed pins the arrival stream); RunMany executes them in parallel.
	base := versaslot.Scenario{
		Topology:  versaslot.TopologyFarm,
		Pairs:     3,
		Condition: "stress",
		Apps:      60,
		Seed:      23,
	}
	var scenarios []versaslot.Scenario
	for _, name := range versaslot.Dispatchers() {
		sc := base
		sc.Name = name
		sc.Dispatcher = name
		scenarios = append(scenarios, sc)
	}
	results, err := versaslot.RunMany(scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("60 stress-condition applications on a 3-pair farm:\n\n")
	for _, res := range results {
		fmt.Printf("  %-13s mean RT %6.2f s   P99 %6.2f s   routing %v\n",
			res.Dispatcher,
			sim.Time(res.Summary.MeanRT).Seconds(),
			sim.Time(res.Summary.P99).Seconds(), res.Routed)
	}

	// Round-robin ignores load, so pair queues drift apart as service
	// times diverge — exactly the imbalance the rebalancer repairs by
	// live-migrating queued apps across pairs over the rack link.
	skew := base
	skew.Name = "rebalanced"
	skew.Dispatcher = "round-robin"
	skew.RebalanceEvery = 2 * sim.Second
	rebalanced, err := versaslot.Run(skew)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-robin + rebalancer (every 2s of virtual time):\n")
	fmt.Printf("  mean RT %6.2f s   cross-pair migrations %d (apps %d, mean overhead %v)\n",
		sim.Time(rebalanced.Summary.MeanRT).Seconds(),
		rebalanced.CrossMigrations, rebalanced.CrossMigratedApps, rebalanced.MeanCrossTime)
	for _, ps := range rebalanced.PairStats {
		fmt.Printf("  pair %d: routed %2d  finished %2d  migrated in/out %d/%d  switches %d\n",
			ps.Pair, ps.Routed, ps.Apps, ps.MigratedIn, ps.MigratedOut, ps.Switches)
	}
}
