// Quickstart: run VersaSlot Big.Little on one board with a standard
// 20-app workload and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"versaslot"
	"versaslot/internal/sim"
)

func main() {
	// 1. Declare the scenario: a Big.Little board (2 Big + 4 Little
	//    slots) driven by the VersaSlot scheduler on a dual-core
	//    hypervisor, fed the paper-style workload — 20 applications
	//    from the benchmark suite (3DR, LeNet, IC, AN, OF), random
	//    batch sizes 5-30, standard arrival intervals (1.5-2 s).
	sc := versaslot.Scenario{
		Policy:    "versaslot-bl",
		Condition: "standard",
		Apps:      20,
		Seed:      42,
	}

	// 2. Run it.
	res, err := versaslot.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the results.
	s := res.Summary
	fmt.Printf("Completed %d applications\n", s.Apps)
	fmt.Printf("  mean response time : %.3f s\n", sim.Time(s.MeanRT).Seconds())
	fmt.Printf("  P95 / P99          : %.3f / %.3f s\n",
		sim.Time(s.P95).Seconds(), sim.Time(s.P99).Seconds())
	fmt.Printf("  LUT utilization    : %.1f %%\n", s.UtilLUT*100)
	fmt.Printf("  partial reconfigs  : %d (%d queued behind another load)\n",
		s.PRLoads, s.PRBlocked)

	// 4. Per-application detail.
	fmt.Println("\nFirst five applications:")
	for _, r := range res.Samples[:5] {
		fmt.Printf("  %-6s batch=%-3d response=%.3f s\n",
			r.Spec, r.Batch, sim.Time(r.Response).Seconds())
	}
}
