// Comparison: run all six scheduling systems of the paper's evaluation
// on the same stress-condition workload and print the Fig. 5-style
// relative response-time reductions.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"

	"versaslot/internal/core"
	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	// Every system sees the identical arrival stream — the comparison
	// is pure scheduling policy.
	params := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(params, 7)

	var baseline sim.Duration
	t := report.NewTable("Six systems on one stress workload (20 apps)",
		"System", "Mean RT (s)", "P95 (s)", "vs Baseline", "PR loads")
	for _, kind := range sched.Kinds() {
		res, err := core.Run(core.SystemConfig{Policy: kind, Seed: 7}, seq)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		if kind == sched.KindBaseline {
			baseline = s.MeanRT
		}
		reduction := float64(baseline) / float64(s.MeanRT)
		t.AddRow(kind.String(),
			sim.Time(s.MeanRT).Seconds(),
			sim.Time(s.P95).Seconds(),
			fmt.Sprintf("%.2fx", reduction),
			s.PRLoads)
	}
	t.Render(os.Stdout)

	fmt.Println("\nHigher 'vs Baseline' is better. The Big.Little slot")
	fmt.Println("architecture wins by bundling 3-in-1 tasks into Big slots")
	fmt.Println("(fewer, larger reconfigurations) while the dual-core")
	fmt.Println("hypervisor keeps launches off the PCAP's critical path.")
}
