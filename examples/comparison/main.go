// Comparison: run all six scheduling systems of the paper's evaluation
// on the same stress-condition workload and print the Fig. 5-style
// relative response-time reductions. The policy set comes from the
// registry, so a third-party sched.Register shows up here unchanged.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"

	"versaslot"
	"versaslot/internal/report"
	"versaslot/internal/sim"
)

func main() {
	// Every system sees the identical arrival stream — the comparison
	// is pure scheduling policy. A sweep over the registry's policy
	// axis with a fixed seed pins the workload.
	results, err := versaslot.RunSweep(versaslot.Sweep{
		Base:     versaslot.Scenario{Condition: "stress", Apps: 20, Seed: 7},
		Policies: versaslot.Policies(),
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	var baseline sim.Duration
	t := report.NewTable("Six systems on one stress workload (20 apps)",
		"System", "Mean RT (s)", "P95 (s)", "vs Baseline", "PR loads")
	for i, res := range results {
		s := res.Summary
		if i == 0 { // registration order: baseline first
			baseline = s.MeanRT
		}
		reduction := float64(baseline) / float64(s.MeanRT)
		t.AddRow(res.PolicyTitle,
			sim.Time(s.MeanRT).Seconds(),
			sim.Time(s.P95).Seconds(),
			fmt.Sprintf("%.2fx", reduction),
			s.PRLoads)
	}
	t.Render(os.Stdout)

	fmt.Println("\nHigher 'vs Baseline' is better. The Big.Little slot")
	fmt.Println("architecture wins by bundling 3-in-1 tasks into Big slots")
	fmt.Println("(fewer, larger reconfigurations) while the dual-core")
	fmt.Println("hypervisor keeps launches off the PCAP's critical path.")
}
