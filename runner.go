package versaslot

import (
	"fmt"
	"sync"

	"versaslot/internal/appmodel"
	"versaslot/internal/bundle"
	"versaslot/internal/cluster"
	"versaslot/internal/core"
	"versaslot/internal/fabric"
	"versaslot/internal/fault"
	"versaslot/internal/migrate"
	"versaslot/internal/orchestrator"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/trace"
	"versaslot/internal/workload"
)

// Event is one streamed simulation event delivered to an Observer.
type Event struct {
	// Scenario names the run the event belongs to — under RunMany,
	// concurrent runs interleave and this is the attribution key.
	Scenario string
	// At is the virtual time of the event.
	At sim.Time
	// Kind is "arrival", "finish", or "switch".
	Kind string
	// AppID/Spec/Batch identify the application ("arrival"/"finish").
	AppID int
	Spec  string
	Batch int
	// Board is the board the event occurred on; for "switch" events,
	// the switching pair's first board.
	Board int
	// From/To are the board modes of a "switch" event.
	From, To string
}

// Observer receives per-event callbacks while a scenario runs. Under
// RunMany, callbacks from concurrent runs are serialized but may
// interleave across scenarios; Event.Scenario attributes each event
// to its run.
type Observer func(Event)

// Runner executes scenarios. The zero value (NewRunner with no
// options) is ready to use; options attach tracing, typed event
// recording, and streaming observers.
type Runner struct {
	traceFn  func(format string, args ...any)
	recorder *trace.Recorder
	observer Observer
	obsMu    sync.Mutex
}

// Option configures a Runner.
type Option func(*Runner)

// WithTrace streams one formatted line per engine event (PR
// start/completion, item launch/completion, app lifecycle) to fn.
func WithTrace(fn func(format string, args ...any)) Option {
	return func(r *Runner) { r.traceFn = fn }
}

// WithRecorder attaches a typed event recorder for timeline rendering
// and post-hoc analysis. Recorders are not attached during RunMany
// (concurrent runs would interleave their events).
func WithRecorder(rec *trace.Recorder) Option {
	return func(r *Runner) { r.recorder = rec }
}

// WithObserver streams per-event callbacks (arrivals, completions,
// cross-board switches) while scenarios run.
func WithObserver(fn Observer) Option {
	return func(r *Runner) { r.observer = fn }
}

// NewRunner builds a runner with the given options.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Run executes one scenario with the default runner.
func Run(s Scenario) (*Result, error) { return NewRunner().Run(s) }

// Run executes one scenario to completion.
func (r *Runner) Run(s Scenario) (*Result, error) { return r.run(s, false, nil) }

// sequenceCache shares generated workload sequences between the runs
// of one RunMany/Sweep call: scenarios agreeing on every
// generation-relevant field (workloadKey) reuse one immutable
// Sequence. Instantiate builds fresh App state per run, so sharing the
// arrival list across concurrent kernels is safe.
type sequenceCache struct {
	mu sync.Mutex
	m  map[workloadKey]*workload.Sequence
}

func newSequenceCache() *sequenceCache {
	return &sequenceCache{m: make(map[workloadKey]*workload.Sequence)}
}

// sequence resolves a defaulted scenario's workload through the cache;
// a nil cache or a non-generated workload falls through to the
// scenario's own resolution.
func (c *sequenceCache) sequence(s Scenario) (*workload.Sequence, error) {
	if c == nil {
		return s.sequence()
	}
	key, ok := s.workloadKey()
	if !ok {
		return s.sequence()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq, hit := c.m[key]; hit {
		return seq, nil
	}
	seq, err := s.sequence()
	if err != nil {
		return nil, err
	}
	c.m[key] = seq
	return seq, nil
}

func (r *Runner) run(s Scenario, parallel bool, cache *sequenceCache) (*Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var seq *workload.Sequence
	if len(s.Tenants) == 0 {
		// Tenant farms generate one sequence per tenant inside runFarm;
		// everything else resolves (and possibly shares) one sequence.
		var err error
		seq, err = cache.sequence(s)
		if err != nil {
			return nil, err
		}
	}
	switch s.Topology {
	case TopologySingle:
		return r.runSingle(s, seq, parallel)
	case TopologyCluster:
		return r.runCluster(s, seq, parallel)
	case TopologyFarm:
		return r.runFarm(s, seq, parallel)
	default:
		return nil, fmt.Errorf("versaslot: unknown topology %q", s.Topology)
	}
}

func (r *Runner) emit(ev Event) {
	if r.observer == nil {
		return
	}
	r.obsMu.Lock()
	r.observer(ev)
	r.obsMu.Unlock()
}

// observeEngine chains the runner's observer onto an engine's lifecycle
// hooks, preserving any hooks the topology already installed.
func (r *Runner) observeEngine(scenario string, e *sched.Engine) {
	if r.observer == nil {
		return
	}
	board := e.Board.ID
	prevArrived := e.OnAppArrived
	e.OnAppArrived = func(a *appmodel.App) {
		if prevArrived != nil {
			prevArrived(a)
		}
		r.emit(Event{Scenario: scenario, At: e.Now(), Kind: "arrival", AppID: a.ID, Spec: a.Spec.Name, Batch: a.Batch, Board: board})
	}
	prev := e.OnAppFinished
	e.OnAppFinished = func(a *appmodel.App) {
		if prev != nil {
			prev(a)
		}
		r.emit(Event{Scenario: scenario, At: e.Now(), Kind: "finish", AppID: a.ID, Spec: a.Spec.Name, Batch: a.Batch, Board: board})
	}
}

// attachFaults wires the scenario's faults block (if any) onto the
// topology. A nil/empty block attaches nothing, so fault-free runs
// stay byte-identical.
func attachFaults(s Scenario, t *fault.Target) error {
	if s.Faults == nil {
		return nil
	}
	if err := fault.Attach(t, *s.Faults, s.Seed); err != nil {
		return fmt.Errorf("versaslot: %w", err)
	}
	return nil
}

func (r *Runner) attachDiagnostics(scenario string, e *sched.Engine, parallel bool) {
	if r.traceFn != nil && !parallel {
		e.Trace = r.traceFn
	}
	if r.recorder != nil && !parallel {
		e.Recorder = r.recorder
	}
	r.observeEngine(scenario, e)
}

func (r *Runner) runSingle(s Scenario, seq *workload.Sequence, parallel bool) (*Result, error) {
	var sys *core.System
	policyName := s.Policy
	if s.BigSlots > 0 || s.LittleSlots > 0 {
		sys = core.NewCustomSystem(s.BigSlots, s.LittleSlots, s.Seed, s.Params)
		policyName = "versaslot-ol"
		if s.BigSlots > 0 {
			policyName = "versaslot-bl"
		}
	} else {
		var platform *fabric.Platform
		if s.Platform != nil {
			var err error
			platform, err = s.Platform.Resolve()
			if err != nil {
				return nil, fmt.Errorf("versaslot: %w", err)
			}
		}
		var err error
		sys, err = core.NewPlatformSystem(s.Policy, platform, s.Seed, s.Params)
		if err != nil {
			return nil, err
		}
	}
	if cfg, on := s.streamConfig(); on {
		sys.Engine.Col.EnableStreaming(cfg)
	}
	r.attachDiagnostics(s.Name, sys.Engine, parallel)
	apps, err := seq.Instantiate(0)
	if err != nil {
		return nil, err
	}
	boardPlatform := sys.Engine.Board.Platform
	if !boardPlatform.Virtual {
		for _, a := range apps {
			if !bundle.Hostable(a.Spec, boardPlatform) {
				return nil, fmt.Errorf("versaslot: app %v (%s) fits no slot class of platform %q",
					a, a.Spec.Name, boardPlatform.Name)
			}
		}
	}
	if err := attachFaults(s, &fault.Target{
		K:       sys.Kernel,
		Engines: []*sched.Engine{sys.Engine},
	}); err != nil {
		return nil, err
	}
	res, err := sys.Execute(seq.Condition, apps)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Scenario:    s.Name,
		Topology:    TopologySingle,
		Policy:      canonicalName(policyName),
		PolicyTitle: PolicyTitle(policyName),
		Platform:    boardPlatform.Name,
		Condition:   seq.Condition,
		Seed:        s.Seed,
		Summary:     res.Summary,
		Samples:     res.Samples,
		BySpec:      res.BySpec,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
		LaunchWait:  sys.Engine.Cores.Sched.Stats().WaitByName["launch"],
	}
	for _, sample := range res.Samples {
		if sample.Finish > out.Makespan {
			out.Makespan = sample.Finish
		}
	}
	if sys.Engine.Col.Streaming() {
		out.MetricsMode = "stream"
		out.TimeSeries = sys.Engine.Col.Windows()
		if end := sys.Engine.Col.EndTime(); end > out.Makespan {
			out.Makespan = end
		}
	}
	return out, nil
}

// clusterModes is the fixed pair-mode iteration order that keeps
// multi-board metric merging deterministic.
var clusterModes = []migrate.Mode{migrate.Base, migrate.Boost}

// pairPlatformsOf reports the resolved platform assignment of a pair.
func pairPlatformsOf(cl *cluster.Cluster) cluster.PairPlatforms {
	return cluster.PairPlatforms{
		Base:  cl.Platform(migrate.Base).Name,
		Boost: cl.Platform(migrate.Boost).Name,
	}
}

func (r *Runner) runCluster(s Scenario, seq *workload.Sequence, parallel bool) (*Result, error) {
	cl, err := cluster.NewCluster(s.clusterConfig())
	if err != nil {
		return nil, fmt.Errorf("versaslot: %w", err)
	}
	if cfg, on := s.streamConfig(); on {
		for _, mode := range clusterModes {
			cl.Engine(mode).Col.EnableStreaming(cfg)
		}
	}
	for _, mode := range clusterModes {
		r.attachDiagnostics(s.Name, cl.Engine(mode), parallel)
	}
	r.observeSwitches(s.Name, cl)
	if err := cl.Inject(seq); err != nil {
		return nil, err
	}
	clEngines := make([]*sched.Engine, 0, len(clusterModes))
	for _, mode := range clusterModes {
		clEngines = append(clEngines, cl.Engine(mode))
	}
	if err := attachFaults(s, &fault.Target{
		K:         cl.K,
		Engines:   clEngines,
		Pairs:     []*cluster.Cluster{cl},
		Quiescent: cl.Quiescent,
	}); err != nil {
		return nil, err
	}
	sum := cl.Run()
	out := &Result{
		Scenario:       s.Name,
		Topology:       TopologyCluster,
		Policy:         "versaslot-switching",
		PolicyTitle:    "VersaSlot Switching",
		Condition:      seq.Condition,
		Seed:           s.Seed,
		PairPlatforms:  []cluster.PairPlatforms{pairPlatformsOf(cl)},
		Switches:       sum.Switches,
		MeanSwitchTime: sum.MeanSwitchTime,
		MigratedApps:   sum.MigratedApps,
		SwitchTrace:    sum.Trace,
	}
	if cl.Streaming() {
		out.MetricsMode = "stream"
	}
	out.fillFromEngines(clEngines)
	return out, nil
}

func (r *Runner) runFarm(s Scenario, seq *workload.Sequence, parallel bool) (*Result, error) {
	f, err := cluster.NewFarm(s.farmConfig())
	if err != nil {
		return nil, fmt.Errorf("versaslot: %w", err)
	}
	var engines []*sched.Engine
	var pairPlatforms []cluster.PairPlatforms
	// Sharded runs advance pairs on worker goroutines: the single-writer
	// trace/recorder sinks are disabled exactly as in parallel sweeps
	// (observers stay attached — they serialize behind a mutex). The
	// farm's resolved count decides, not s.Shards: zero auto-selects
	// from the fleet size and GOMAXPROCS.
	diagParallel := parallel || f.ShardCount() > 1
	streamCfg, streaming := s.streamConfig()
	for _, pair := range f.Pairs {
		for _, mode := range clusterModes {
			if streaming {
				pair.Engine(mode).Col.EnableStreaming(streamCfg)
			}
			r.attachDiagnostics(s.Name, pair.Engine(mode), diagParallel)
			engines = append(engines, pair.Engine(mode))
		}
		pairPlatforms = append(pairPlatforms, pairPlatformsOf(pair))
		r.observeSwitches(s.Name, pair)
	}
	// The orchestrator (multi-tenant admission and/or autoscaling)
	// chains its per-pair accounting hooks after the diagnostics
	// hooks, then owns injection for tenant workloads.
	var orch *orchestrator.Orchestrator
	if len(s.Tenants) > 0 || s.Autoscale != nil {
		orch, err = orchestrator.New(f, orchestrator.Config{
			Tenants:   s.Tenants,
			Autoscale: s.Autoscale,
		})
		if err != nil {
			return nil, fmt.Errorf("versaslot: %w", err)
		}
	}
	condition := ""
	if len(s.Tenants) > 0 {
		seqs, err := s.tenantSequences()
		if err != nil {
			return nil, err
		}
		if err := orch.InjectTenants(seqs); err != nil {
			return nil, fmt.Errorf("versaslot: %w", err)
		}
		condition = s.Condition
	} else {
		if err := f.Inject(seq); err != nil {
			return nil, err
		}
		condition = seq.Condition
	}
	if err := attachFaults(s, &fault.Target{
		K:         f.K,
		Engines:   engines,
		Pairs:     f.Pairs,
		Farm:      f,
		Quiescent: f.Quiescent,
		// Fault chains are part of the farm's control plane: at their
		// priority they land between the same pair events in sharded
		// and sequential runs, and every strike stamps its pair's
		// lazily-advanced clock first.
		Pri:   sim.PriFarmControl,
		Touch: f.TouchPair,
	}); err != nil {
		return nil, err
	}
	if orch != nil {
		orch.Start()
	}
	sum := f.Run()
	out := &Result{
		Scenario:          s.Name,
		Topology:          TopologyFarm,
		Policy:            "versaslot-switching",
		PolicyTitle:       "VersaSlot Switching Farm",
		Condition:         condition,
		Seed:              s.Seed,
		PairPlatforms:     pairPlatforms,
		Dispatcher:        f.Dispatcher(),
		Switches:          sum.Switches,
		MeanSwitchTime:    sum.MeanSwitchTime,
		MigratedApps:      sum.MigratedApps,
		SwitchTrace:       sum.Trace,
		Routed:            f.Routed(),
		PairStats:         sum.PairStats,
		CrossMigrations:   sum.CrossSwitches,
		CrossMigratedApps: sum.CrossMigratedApps,
		MeanCrossTime:     sum.MeanCrossTime,
	}
	if streaming {
		out.MetricsMode = "stream"
	}
	if orch != nil {
		out.Tenants = orch.TenantStats()
		out.Autoscale = orch.AutoscaleStats()
	}
	out.fillFromEngines(engines)
	return out, nil
}

func (r *Runner) observeSwitches(scenario string, cl *cluster.Cluster) {
	if r.observer == nil {
		return
	}
	board := cl.Engine(migrate.Base).Board.ID
	cl.OnSwitch = func(from, to migrate.Mode) {
		r.emit(Event{Scenario: scenario, At: cl.K.Now(), Kind: "switch", Board: board,
			From: cl.Platform(from).Title, To: cl.Platform(to).Title})
	}
}

func canonicalName(name string) string {
	if reg, ok := sched.Lookup(name); ok {
		return reg.Name
	}
	return name
}
