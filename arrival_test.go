package versaslot_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"versaslot"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// TestScenarioArrivalRoundTrip: a scenario with an arrival block
// survives Save/Load unchanged, including nested phases.
func TestScenarioArrivalRoundTrip(t *testing.T) {
	sc := versaslot.Scenario{
		Name:      "round-trip",
		Policy:    "versaslot-bl",
		Condition: "stress",
		Apps:      12,
		Seed:      4,
		Arrival: &workload.ArrivalSpec{
			Process: "phased",
			Phases: []workload.ArrivalPhase{
				{ArrivalSpec: workload.ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: 2 * sim.Second}, Duration: 10 * sim.Second},
				{ArrivalSpec: workload.ArrivalSpec{Process: "mmpp",
					BurstMean: 50 * sim.Millisecond, CalmMean: sim.Second,
					BurstDwell: sim.Second, CalmDwell: 4 * sim.Second}},
			},
		},
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := versaslot.SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	got, err := versaslot.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("round-trip changed the scenario:\n got %+v\nwant %+v", got, sc)
	}
}

// TestScenarioArrivalValidation: conflicts with the legacy workload
// knobs and bad specs are rejected; a bare process name with a
// condition validates.
func TestScenarioArrivalValidation(t *testing.T) {
	base := versaslot.Scenario{Policy: "versaslot-bl", Condition: "standard", Apps: 8, Seed: 1}

	ok := base
	ok.Arrival = &workload.ArrivalSpec{Process: "diurnal"}
	if err := ok.Validate(); err != nil {
		t.Errorf("bare diurnal arrival rejected: %v", err)
	}

	bad := base
	bad.Arrival = &workload.ArrivalSpec{Process: "no-such"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown arrival process validated")
	}

	conflict := base
	conflict.Arrival = &workload.ArrivalSpec{Process: "poisson"}
	conflict.Poisson = true
	if err := conflict.Validate(); err == nil {
		t.Error("arrival block plus legacy Poisson flag validated")
	}

	conflict = base
	conflict.Arrival = &workload.ArrivalSpec{Process: "poisson"}
	conflict.IntervalLo, conflict.IntervalHi = sim.Second, sim.Second
	if err := conflict.Validate(); err == nil {
		t.Error("arrival block plus interval override validated")
	}

	conflict = base
	conflict.Arrival = &workload.ArrivalSpec{Process: "poisson"}
	conflict.WorkloadFile = "x.json"
	if err := conflict.Validate(); err == nil {
		t.Error("arrival block plus workload file validated")
	}
}

// TestSequenceCacheArrivalKey: the RunMany sequence cache must key on
// the arrival spec — scenarios agreeing on (condition, seed, apps)
// but differing in arrival process get different workloads, and each
// cached result is byte-identical to its solo (uncached) run.
func TestSequenceCacheArrivalKey(t *testing.T) {
	base := versaslot.Scenario{Policy: "versaslot-bl", Condition: "stress", Apps: 8, Seed: 7}
	mmpp, poisson, classic := base, base, base
	mmpp.Name, mmpp.Arrival = "mmpp", &workload.ArrivalSpec{Process: "mmpp"}
	poisson.Name, poisson.Arrival = "poisson", &workload.ArrivalSpec{Process: "poisson"}
	classic.Name = "classic"
	grid := []versaslot.Scenario{mmpp, poisson, classic, mmpp, poisson, classic}

	cached, err := versaslot.RunMany(grid, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range grid {
		solo, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !bytes.Equal(resultJSON(t, cached[i]), resultJSON(t, solo)) {
			t.Errorf("%s: cached result differs from solo run (cache key collision?)", sc.Name)
		}
	}
	if bytes.Equal(resultJSON(t, cached[0]), resultJSON(t, cached[1])) {
		t.Error("mmpp and poisson runs identical: arrival spec not in the cache key")
	}
	if bytes.Equal(resultJSON(t, cached[0]), resultJSON(t, cached[2])) {
		t.Error("mmpp and classic runs identical: arrival spec not in the cache key")
	}
}

// TestLoadScenarioResolvesTracePath: a relative trace path inside a
// scenario file resolves against the scenario's directory, so the
// catalog runs from any working directory.
func TestLoadScenarioResolvesTracePath(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "traces"), 0o755); err != nil {
		t.Fatal(err)
	}
	var times []sim.Duration
	for i := 0; i < 10; i++ {
		times = append(times, sim.Duration(i)*sim.Second)
	}
	tf, err := os.Create(filepath.Join(dir, "traces", "t.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteArrivalTrace(tf, times); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	sc := versaslot.Scenario{
		Policy: "versaslot-bl", Condition: "standard", Apps: 10, Seed: 1,
		Arrival: &workload.ArrivalSpec{Process: "trace", File: "traces/t.jsonl"},
	}
	path := filepath.Join(dir, "sc.json")
	if err := versaslot.SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := versaslot.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := versaslot.Run(loaded); err != nil {
		t.Errorf("trace scenario loaded from %s did not run: %v", dir, err)
	}

	// The same resolution must reach a trace nested inside a phased
	// schedule.
	sc.Arrival = &workload.ArrivalSpec{Process: "phased", Phases: []workload.ArrivalPhase{
		{ArrivalSpec: workload.ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 2 * sim.Second},
		{ArrivalSpec: workload.ArrivalSpec{Process: "trace", File: "traces/t.jsonl"}},
	}}
	if err := versaslot.SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err = versaslot.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := versaslot.Run(loaded); err != nil {
		t.Errorf("phased-nested trace scenario did not run: %v", err)
	}

	// A loaded scenario dumped elsewhere must still run: load-time
	// resolution produces absolute paths, so the artifact does not
	// re-anchor against its new directory.
	dumped := filepath.Join(t.TempDir(), "dumped.json")
	if err := versaslot.SaveScenario(dumped, loaded); err != nil {
		t.Fatal(err)
	}
	reloaded, err := versaslot.LoadScenario(dumped)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := versaslot.Run(reloaded); err != nil {
		t.Errorf("dumped artifact of a loaded trace scenario did not run: %v", err)
	}
}
