module versaslot

go 1.24
