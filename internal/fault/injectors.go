package fault

import (
	"fmt"

	"versaslot/internal/fabric"
	"versaslot/internal/migrate"
	"versaslot/internal/rng"
	"versaslot/internal/sim"
)

// Built-in injector kinds.
const (
	// KindSlotFail fails and recovers individual slots on exponential
	// MTBF/MTTR chains, one independent chain per slot.
	KindSlotFail = "slot-fail"
	// KindBoardFail takes whole boards down and back up; on a farm the
	// board's pair is marked degraded for dispatch and rebalancing.
	KindBoardFail = "board-fail"
	// KindPRFlaky makes PCAP bitstream streaming fail with a
	// per-attempt probability, retried with bounded exponential
	// backoff; exhaustion crash-restarts the application.
	KindPRFlaky = "pr-flaky"
	// KindStraggler degrades slots' service rates in episodes: items
	// launched during an episode take Factor times as long.
	KindStraggler = "straggler"
	// KindCheckpoint switches the topology to checkpoint/restore
	// semantics: crash restarts resume from per-stage progress, and
	// migrations pay for checkpoint state and restore time.
	KindCheckpoint = "checkpoint"
)

func init() {
	MustRegister(Registration{
		Name: KindSlotFail, Aliases: []string{"slot"}, Title: "Slot fail/recover",
		Build: func(s InjectorSpec) (Injector, error) {
			if s.MTBF <= 0 || s.MTTR <= 0 {
				return nil, fmt.Errorf("%s: mtbf and mttr must be positive (got %v/%v)", KindSlotFail, s.MTBF, s.MTTR)
			}
			return &slotFail{mtbf: s.MTBF, mttr: s.MTTR}, nil
		},
	})
	MustRegister(Registration{
		Name: KindBoardFail, Aliases: []string{"board"}, Title: "Board outage",
		Build: func(s InjectorSpec) (Injector, error) {
			if s.MTBF <= 0 || s.MTTR <= 0 {
				return nil, fmt.Errorf("%s: mtbf and mttr must be positive (got %v/%v)", KindBoardFail, s.MTBF, s.MTTR)
			}
			for _, b := range s.Boards {
				if b < 0 {
					return nil, fmt.Errorf("%s: negative board index %d", KindBoardFail, b)
				}
			}
			return &boardFail{mtbf: s.MTBF, mttr: s.MTTR, boards: s.Boards}, nil
		},
	})
	MustRegister(Registration{
		Name: KindPRFlaky, Aliases: []string{"pr", "flaky-pr"}, Title: "Flaky reconfiguration",
		Build: func(s InjectorSpec) (Injector, error) {
			if s.Rate <= 0 || s.Rate >= 1 {
				return nil, fmt.Errorf("%s: rate must be in (0,1) (got %g)", KindPRFlaky, s.Rate)
			}
			if s.MaxRetries < 0 {
				return nil, fmt.Errorf("%s: max_retries must be >= 0 (got %d)", KindPRFlaky, s.MaxRetries)
			}
			if s.Backoff < 0 {
				return nil, fmt.Errorf("%s: backoff must be >= 0 (got %v)", KindPRFlaky, s.Backoff)
			}
			if s.BackoffFactor < 0 || (s.BackoffFactor > 0 && s.BackoffFactor < 1) {
				return nil, fmt.Errorf("%s: backoff_factor must be >= 1 (got %g)", KindPRFlaky, s.BackoffFactor)
			}
			inj := &prFlaky{rate: s.Rate, maxRetries: s.MaxRetries, backoff: s.Backoff, factor: s.BackoffFactor}
			if inj.maxRetries == 0 {
				inj.maxRetries = 3
			}
			if inj.backoff == 0 {
				inj.backoff = sim.Millisecond
			}
			if inj.factor == 0 {
				inj.factor = 2
			}
			return inj, nil
		},
	})
	MustRegister(Registration{
		Name: KindStraggler, Aliases: []string{"slow"}, Title: "Straggling slots",
		Build: func(s InjectorSpec) (Injector, error) {
			if s.MTBF <= 0 || s.MTTR <= 0 {
				return nil, fmt.Errorf("%s: mtbf and mttr must be positive (got %v/%v)", KindStraggler, s.MTBF, s.MTTR)
			}
			if s.Factor <= 1 {
				return nil, fmt.Errorf("%s: factor must be > 1 (got %g)", KindStraggler, s.Factor)
			}
			return &straggler{mtbf: s.MTBF, mttr: s.MTTR, factor: s.Factor}, nil
		},
	})
	MustRegister(Registration{
		Name: KindCheckpoint, Aliases: []string{"ckpt"}, Title: "Checkpoint/restore",
		Build: func(s InjectorSpec) (Injector, error) {
			if s.CheckpointBytes < 0 {
				return nil, fmt.Errorf("%s: checkpoint_bytes must be >= 0 (got %d)", KindCheckpoint, s.CheckpointBytes)
			}
			if s.RestoreDelay < 0 {
				return nil, fmt.Errorf("%s: restore_delay must be >= 0 (got %v)", KindCheckpoint, s.RestoreDelay)
			}
			return &checkpoint{bytesPerItem: s.CheckpointBytes, restore: s.RestoreDelay}, nil
		},
	})
}

// Attach wires a whole Spec onto a target: fault accounting is enabled
// on every engine's collector, then each injector is built and
// attached with its private stream rng.Stream(seed, "fault/<i>/<kind>")
// — keyed by position and canonical kind, so adding or removing one
// injector never reshuffles another's schedule. An empty spec attaches
// nothing and leaves the run byte-identical. seed should be the
// scenario seed; a non-zero Spec.Seed overrides it to re-roll the
// fault axis alone.
func Attach(t *Target, s Spec, seed uint64) error {
	if !s.Enabled() {
		return nil
	}
	if s.Seed != 0 {
		seed = s.Seed
	}
	for _, e := range t.Engines {
		e.EnableFaultMetrics()
	}
	for i, spec := range s.Injectors {
		inj, err := spec.Build()
		if err != nil {
			return fmt.Errorf("fault: injector %d: %w", i, err)
		}
		reg, _ := Lookup(spec.Kind)
		inj.Attach(t, rng.Stream(seed, fmt.Sprintf("fault/%d/%s", i, reg.Name)))
	}
	return nil
}

// slotFail drives one exponential fail/recover chain per slot. The
// next failure is gated on Done() at fire time; the recovery following
// a failure is always scheduled, so no slot stays dead at drain and
// every downtime interval closes.
type slotFail struct {
	mtbf, mttr sim.Duration
}

func (inj *slotFail) Attach(t *Target, r *sim.RNG) {
	// boards() iterates engines in attachment order, so the fork
	// sequence is identical to iterating t.Engines — it additionally
	// carries each engine's pair index for the sharded-clock touch.
	for _, b := range t.boards() {
		for _, s := range b.engine.Board.Slots {
			// One forked stream per slot: slot 3's chain is independent
			// of how often slot 2 failed.
			inj.chain(t, b, s, r.Fork())
		}
	}
}

func (inj *slotFail) chain(t *Target, b board, s *fabric.Slot, r *sim.RNG) {
	var fail func()
	fail = func() {
		if t.Done() {
			return
		}
		t.touch(b.pair)
		b.engine.FailSlot(s)
		t.K.ScheduleP(r.Exp(inj.mttr), t.Pri, func() {
			t.touch(b.pair)
			b.engine.RecoverSlot(s)
			t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, fail)
		})
	}
	t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, fail)
}

// boardFail takes a whole board out: every slot fails at once and
// recovers together. On a farm the board's pair is additionally marked
// degraded (PairOutage), steering the dispatcher and the rebalancer
// around it until recovery.
type boardFail struct {
	mtbf, mttr sim.Duration
	boards     []int
}

func (inj *boardFail) Attach(t *Target, r *sim.RNG) {
	all := t.boards()
	targets := all
	if len(inj.boards) > 0 {
		targets = targets[:0:0]
		for _, i := range inj.boards {
			if i < len(all) {
				targets = append(targets, all[i])
			}
		}
	}
	for _, b := range targets {
		inj.chain(t, b, r.Fork())
	}
}

func (inj *boardFail) chain(t *Target, b board, r *sim.RNG) {
	var fail func()
	fail = func() {
		if t.Done() {
			return
		}
		t.touch(b.pair)
		for _, s := range b.engine.Board.Slots {
			b.engine.FailSlot(s)
		}
		if t.Farm != nil && b.pair >= 0 {
			t.Farm.PairOutage(b.pair)
		}
		t.K.ScheduleP(r.Exp(inj.mttr), t.Pri, func() {
			t.touch(b.pair)
			for _, s := range b.engine.Board.Slots {
				b.engine.RecoverSlot(s)
			}
			if t.Farm != nil && b.pair >= 0 {
				t.Farm.PairRestored(b.pair)
			}
			t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, fail)
		})
	}
	t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, fail)
}

// prFlaky installs the engines' bounded retry+backoff reconfiguration
// fault model; it schedules nothing itself — failures materialize at
// PCAP completion times, drawn from a per-engine forked stream.
type prFlaky struct {
	rate       float64
	maxRetries int
	backoff    sim.Duration
	factor     float64
}

func (inj *prFlaky) Attach(t *Target, r *sim.RNG) {
	for _, e := range t.Engines {
		e.SetPRFault(inj.rate, inj.maxRetries, inj.backoff, inj.factor, r.Fork())
	}
}

// straggler runs one episode chain per slot: after ~MTBF the slot's
// service rate degrades by factor for ~MTTR, then restores. Episode
// starts are gated on Done(); the restore is always scheduled.
type straggler struct {
	mtbf, mttr sim.Duration
	factor     float64
}

func (inj *straggler) Attach(t *Target, r *sim.RNG) {
	// boards() preserves the t.Engines fork order; see slotFail.Attach.
	for _, b := range t.boards() {
		for _, s := range b.engine.Board.Slots {
			inj.chain(t, b, s, r.Fork())
		}
	}
}

func (inj *straggler) chain(t *Target, b board, s *fabric.Slot, r *sim.RNG) {
	var slow func()
	slow = func() {
		if t.Done() {
			return
		}
		t.touch(b.pair)
		b.engine.SetSlotSlowdown(s, inj.factor)
		t.K.ScheduleP(r.Exp(inj.mttr), t.Pri, func() {
			t.touch(b.pair)
			b.engine.ClearSlotSlowdown(s)
			t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, slow)
		})
	}
	t.K.ScheduleP(r.Exp(inj.mtbf), t.Pri, slow)
}

// checkpoint flips the topology to checkpoint/restore semantics; it
// draws nothing and schedules nothing.
type checkpoint struct {
	bytesPerItem int64
	restore      sim.Duration
}

func (inj *checkpoint) Attach(t *Target, _ *sim.RNG) {
	for _, e := range t.Engines {
		e.SetCheckpointed(true)
	}
	model := &migrate.CostModel{BytesPerItem: inj.bytesPerItem, RestoreDelay: inj.restore}
	switch {
	case t.Farm != nil:
		t.Farm.SetMigrationCost(model)
	default:
		for _, p := range t.Pairs {
			p.SetMigrationCost(model)
		}
	}
}
