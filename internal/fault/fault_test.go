package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"versaslot/internal/rng"
	"versaslot/internal/sim"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{KindSlotFail, KindBoardFail, KindPRFlaky, KindStraggler, KindCheckpoint}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for alias, canonical := range map[string]string{
		"slot": KindSlotFail, "board": KindBoardFail,
		"pr": KindPRFlaky, "flaky-pr": KindPRFlaky,
		"slow": KindStraggler, "ckpt": KindCheckpoint,
		"SLOT-FAIL": KindSlotFail,
	} {
		reg, ok := Lookup(alias)
		if !ok || reg.Name != canonical {
			t.Errorf("Lookup(%q) = %v, want %s", alias, reg, canonical)
		}
	}
	if _, ok := Lookup("no-such-injector"); ok {
		t.Error("Lookup of unknown kind succeeded")
	}
	for _, reg := range Registrations() {
		if reg.Title == "" {
			t.Errorf("%s: empty title", reg.Name)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Registration{Name: "", Build: func(InjectorSpec) (Injector, error) { return nil, nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Registration{Name: "nil-build"}); err == nil {
		t.Error("nil Build accepted")
	}
	if err := Register(Registration{Name: KindSlotFail, Build: func(InjectorSpec) (Injector, error) { return nil, nil }}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []InjectorSpec{
		{},                                      // no kind
		{Kind: "unknown"},                       // unregistered
		{Kind: KindSlotFail},                    // missing MTBF/MTTR
		{Kind: KindSlotFail, MTBF: sim.Second},  // missing MTTR
		{Kind: KindBoardFail, MTBF: sim.Second}, // missing MTTR
		{Kind: KindBoardFail, MTBF: sim.Second, MTTR: sim.Second, Boards: []int{-1}},
		{Kind: KindPRFlaky},             // rate unset
		{Kind: KindPRFlaky, Rate: 1.0},  // rate out of range
		{Kind: KindPRFlaky, Rate: -0.1}, // rate out of range
		{Kind: KindPRFlaky, Rate: 0.2, MaxRetries: -1},
		{Kind: KindPRFlaky, Rate: 0.2, Backoff: -1},
		{Kind: KindPRFlaky, Rate: 0.2, BackoffFactor: 0.5},
		{Kind: KindStraggler, MTBF: sim.Second, MTTR: sim.Second},              // factor unset
		{Kind: KindStraggler, MTBF: sim.Second, MTTR: sim.Second, Factor: 0.9}, // factor <= 1
		{Kind: KindCheckpoint, CheckpointBytes: -1},
		{Kind: KindCheckpoint, RestoreDelay: -1},
	}
	for i, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Errorf("bad spec %d (%+v) built without error", i, spec)
		}
		s := Spec{Injectors: []InjectorSpec{spec}}
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed Spec.Validate", i)
		}
	}
	good := []InjectorSpec{
		{Kind: KindSlotFail, MTBF: 30 * sim.Second, MTTR: 2 * sim.Second},
		{Kind: "slot", MTBF: 30 * sim.Second, MTTR: 2 * sim.Second},
		{Kind: KindBoardFail, MTBF: 60 * sim.Second, MTTR: 3 * sim.Second, Boards: []int{0, 2}},
		{Kind: KindPRFlaky, Rate: 0.25},
		{Kind: KindPRFlaky, Rate: 0.25, MaxRetries: 5, Backoff: sim.Millisecond, BackoffFactor: 1.5},
		{Kind: KindStraggler, MTBF: 20 * sim.Second, MTTR: 2 * sim.Second, Factor: 2.5},
		{Kind: KindCheckpoint},
		{Kind: KindCheckpoint, CheckpointBytes: 64, RestoreDelay: sim.Millisecond},
	}
	for i, spec := range good {
		if _, err := spec.Build(); err != nil {
			t.Errorf("good spec %d: %v", i, err)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := Spec{Seed: 42, Injectors: []InjectorSpec{
		{Kind: KindSlotFail, MTBF: 25 * sim.Second, MTTR: 2 * sim.Second},
		{Kind: KindPRFlaky, Rate: 0.25, MaxRetries: 3, Backoff: sim.Millisecond, BackoffFactor: 2},
		{Kind: KindBoardFail, MTBF: 60 * sim.Second, MTTR: 3 * sim.Second, Boards: []int{1}},
		{Kind: KindCheckpoint, CheckpointBytes: 64, RestoreDelay: sim.Millisecond},
	}}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed spec:\n  in  %+v\n  out %+v", spec, back)
	}
	if _, err := ParseSpec(`{"injectors":[{"kind":"slot-fail","mtbf":1,"mttr":1,"bogus":3}]}`); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec(`not json`); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestInjectorStreamsIndependent checks the stream-keying contract:
// each injector's stream depends on its index and kind, not on which
// other injectors exist, so toggling one never re-rolls another.
func TestInjectorStreamsIndependent(t *testing.T) {
	const seed = 7
	a := rng.Stream(seed, "fault/0/slot-fail")
	b := rng.Stream(seed, "fault/1/slot-fail")
	c := rng.Stream(seed, "fault/0/board-fail")
	ref := rng.Stream(seed, "fault/0/slot-fail")
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv || av == cv || bv == cv {
		t.Errorf("streams collide: %x %x %x", av, bv, cv)
	}
	if av != ref.Uint64() {
		t.Error("same label does not reproduce the same stream")
	}
}

func TestAttachEmptySpec(t *testing.T) {
	// An empty spec must attach nothing — no engines touched, no
	// events scheduled — even on a nil-kernel target.
	if err := Attach(&Target{}, Spec{}, 1); err != nil {
		t.Fatal(err)
	}
	if err := Attach(&Target{}, Spec{Seed: 99}, 1); err != nil {
		t.Fatal(err)
	}
	// A spec with an invalid injector must error out before touching
	// the kernel.
	k := sim.NewKernel(1)
	err := Attach(&Target{K: k}, Spec{Injectors: []InjectorSpec{{Kind: "bogus"}}}, 1)
	if err == nil {
		t.Fatal("invalid injector attached")
	}
	if k.Pending() != 0 {
		t.Fatalf("failed attach left %d events scheduled", k.Pending())
	}
}

func TestTargetDoneQuiescent(t *testing.T) {
	done := false
	tgt := &Target{Quiescent: func() bool { return done }}
	if tgt.Done() {
		t.Error("Done() true before quiescence")
	}
	done = true
	if !tgt.Done() {
		t.Error("Done() false after quiescence")
	}
	// Without engines or a quiescence probe there is nothing left to
	// finish.
	if !(&Target{}).Done() {
		t.Error("empty target not done")
	}
}
