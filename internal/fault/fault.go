package fault

import (
	"encoding/json"
	"fmt"
	"strings"

	"versaslot/internal/cluster"
	"versaslot/internal/migrate"
	"versaslot/internal/registry"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
)

// Target is the topology an injector perturbs: every engine in
// attachment order, the switching pairs (when the topology has them),
// and the farm (when it is one). Engines is always populated; Pairs is
// empty for a single board; Farm is nil outside the farm topology.
type Target struct {
	K       *sim.Kernel
	Engines []*sched.Engine
	Pairs   []*cluster.Cluster
	Farm    *cluster.Farm

	// Quiescent, when set, reports whether every injected application
	// has finished; topologies that deliver arrivals lazily (cluster,
	// farm) must set it because their engines cannot see pending
	// arrivals. Nil falls back to summing engine UnfinishedCounts,
	// which is exact for the single board (apps register at inject).
	Quiescent func() bool

	// Pri is the event priority of the injector timer chains. The farm
	// runner sets sim.PriFarmControl so fault strikes sort with the
	// rest of the control plane (and thus land identically in sharded
	// and sequential runs); single-board and cluster topologies leave
	// it zero.
	Pri int32

	// Touch, when set, stamps a pair's clock to the current control
	// instant before an injector acts on its engines. Sharded farms
	// advance pair clocks lazily under conservative lookahead, so every
	// fault strike and recovery must touch its pair first — a slot
	// failure scheduled against a stale pair clock would land in the
	// pair's past. The farm runner sets it to Farm.TouchPair; it is a
	// no-op on sequential runs and nil for single-board and cluster
	// topologies, whose engines share the injector kernel.
	Touch func(pair int)
}

// touch stamps pair's clock to the current control instant (see
// Touch); safe to call with no hook installed or no pair (-1).
func (t *Target) touch(pair int) {
	if t.Touch != nil && pair >= 0 {
		t.Touch(pair)
	}
}

// Done reports whether the workload has drained. Injector timer chains
// gate re-arming on it so fault streams wind down with the workload
// instead of keeping the kernel alive forever.
func (t *Target) Done() bool {
	if t.Quiescent != nil {
		return t.Quiescent()
	}
	for _, e := range t.Engines {
		if e.UnfinishedCount() > 0 {
			return false
		}
	}
	return true
}

// board is one engine with its pair index (-1 for a single board).
type board struct {
	engine *sched.Engine
	pair   int
}

// pairModes mirrors the cluster's fixed board order within a pair.
var pairModes = []migrate.Mode{migrate.Base, migrate.Boost}

// boards flattens the topology into per-board attachment order: pair
// by pair (base board then boost board), or the bare engine list for a
// single board.
func (t *Target) boards() []board {
	if len(t.Pairs) == 0 {
		out := make([]board, len(t.Engines))
		for i, e := range t.Engines {
			out[i] = board{engine: e, pair: -1}
		}
		return out
	}
	out := make([]board, 0, 2*len(t.Pairs))
	for i, p := range t.Pairs {
		for _, mode := range pairModes {
			out = append(out, board{engine: p.Engine(mode), pair: i})
		}
	}
	return out
}

// Injector is one attached fault source. Attach installs the
// injector's models and schedules its timer chains on the target's
// kernel; rng is the injector's private stream (see package doc) and
// every draw the injector ever makes must come from it or its forks.
type Injector interface {
	Attach(t *Target, rng *sim.RNG)
}

// InjectorSpec is the JSON-round-trippable description of one
// injector: a registered kind plus the union of every built-in's
// parameters (unused fields stay zero and are omitted from JSON).
// Durations are nanoseconds in JSON, like every other Scenario
// duration.
type InjectorSpec struct {
	// Kind is the registered injector name (see Names).
	Kind string `json:"kind"`

	// MTBF/MTTR are the mean time between failures and mean time to
	// repair of the exponential fail/recover chains ("slot-fail",
	// "board-fail") and of straggle episodes ("straggler": MTBF is the
	// mean time between episodes, MTTR the mean episode length).
	MTBF sim.Duration `json:"mtbf,omitempty"`
	MTTR sim.Duration `json:"mttr,omitempty"`

	// Rate is the per-attempt reconfiguration failure probability of
	// "pr-flaky"; MaxRetries bounds its re-streams (default 3), and
	// Backoff/BackoffFactor shape the exponential retry delays
	// (defaults 1ms and 2.0).
	Rate          float64      `json:"rate,omitempty"`
	MaxRetries    int          `json:"max_retries,omitempty"`
	Backoff       sim.Duration `json:"backoff,omitempty"`
	BackoffFactor float64      `json:"backoff_factor,omitempty"`

	// Factor is the "straggler" service-time multiplier (> 1).
	Factor float64 `json:"factor,omitempty"`

	// CheckpointBytes/RestoreDelay configure "checkpoint": each
	// completed batch item adds CheckpointBytes to every migration's
	// transfer, the destination pays RestoreDelay per transfer, and
	// crash restarts resume from checkpointed per-stage progress
	// instead of item zero.
	CheckpointBytes int64        `json:"checkpoint_bytes,omitempty"`
	RestoreDelay    sim.Duration `json:"restore_delay,omitempty"`

	// Boards restricts "board-fail" to these board indices in the
	// topology's board order (pair by pair, base then boost); empty
	// targets every board.
	Boards []int `json:"boards,omitempty"`
}

// Spec is a scenario's fault configuration: a seed isolating the fault
// axis plus the injector list. The zero Spec (or an absent "faults"
// block) disables the subsystem entirely.
type Spec struct {
	// Seed seeds the fault axis's RNG streams; zero inherits the
	// scenario seed. Changing it re-rolls every fault schedule while
	// arrivals and service times stay fixed.
	Seed uint64 `json:"seed,omitempty"`
	// Injectors are attached in order; index and kind key each one's
	// private stream.
	Injectors []InjectorSpec `json:"injectors,omitempty"`
}

// Enabled reports whether the spec attaches anything.
func (s Spec) Enabled() bool { return len(s.Injectors) > 0 }

// Validate builds every injector and discards the results, reporting
// parameter errors without attaching anything.
func (s Spec) Validate() error {
	for i, inj := range s.Injectors {
		if _, err := inj.Build(); err != nil {
			return fmt.Errorf("fault: injector %d: %w", i, err)
		}
	}
	return nil
}

// Build resolves the spec's kind from the registry and constructs the
// injector, validating all parameters.
func (s InjectorSpec) Build() (Injector, error) {
	if s.Kind == "" {
		return nil, fmt.Errorf("fault: injector spec has no kind (registered: %v)", Names())
	}
	reg, ok := Lookup(s.Kind)
	if !ok {
		return nil, fmt.Errorf("fault: unknown injector %q (registered: %v)", s.Kind, Names())
	}
	return reg.Build(s)
}

// ParseSpec decodes a fault spec from strict JSON (unknown fields
// rejected, matching scenario decoding) — the shared parser behind the
// -fault-json CLI flag.
func ParseSpec(js string) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(strings.NewReader(js))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("fault: decode spec: %w", err)
	}
	return spec, nil
}

// Registration declares one injector kind: canonical name, aliases,
// display title, and a builder that validates a spec and returns a
// ready injector.
type Registration struct {
	// Name is the canonical lower-case lookup key ("slot-fail").
	Name string
	// Aliases are alternate lookup keys ("slot").
	Aliases []string
	// Title is the display name ("Slot fail/recover").
	Title string
	// Build validates spec's parameters and constructs the injector.
	Build func(spec InjectorSpec) (Injector, error)
}

// injectors is the kind registry; like the policy, dispatcher,
// arrival, and platform registries it is backed by the shared
// internal/registry helper.
var injectors = registry.New[*Registration]("fault")

// Register adds an injector kind to the registry. The name (and every
// alias) must be non-empty and not already taken; Build must be
// non-nil.
func Register(r Registration) error {
	if r.Name == "" {
		return fmt.Errorf("fault: register: empty injector name")
	}
	if r.Build == nil {
		return fmt.Errorf("fault: register %q: nil Build", r.Name)
	}
	if r.Title == "" {
		r.Title = r.Name
	}
	reg := r
	return injectors.Register(r.Name, &reg, r.Aliases...)
}

// MustRegister is Register, panicking on error; for init-time use.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Lookup resolves an injector kind by name or alias (case-insensitive).
func Lookup(name string) (*Registration, bool) { return injectors.Lookup(name) }

// Names lists canonical injector names in registration order
// (built-ins first).
func Names() []string { return injectors.Names() }

// Registrations returns every registration in registration order.
func Registrations() []*Registration { return injectors.Values() }
