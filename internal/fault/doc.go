// Package fault is the simulator's chaos subsystem: pluggable fault
// injectors that perturb a running topology — slot and board failures,
// flaky partial reconfiguration, straggling regions, checkpointed
// crash recovery — through the same registry pattern as scheduling
// policies, dispatchers, arrival processes, and platforms.
//
// A Spec (the scenario's "faults" block) names a seed and a list of
// injectors; each injector is built from a validated, JSON-round-
// trippable InjectorSpec and attached to a Target describing the
// topology under test. Injectors own *when* faults strike; the
// reaction mechanics (crash-restart, retry/backoff, re-routing,
// downtime accounting) live in the layers they strike — sched.Engine's
// fault surface, the cluster pair's crash re-homing hook, and the
// farm's pair-health tracking.
//
// # Determinism invariants
//
// The subsystem preserves the simulator's byte-identical reproducibility
// guarantees:
//
//   - Faults off means bytes unchanged. An empty Spec attaches
//     nothing, draws nothing, and schedules nothing; every metric,
//     trace, and golden result is byte-identical to a build without
//     the subsystem. Fault fields in summaries are omitted unless
//     fault accounting was enabled.
//
//   - The fault axis has its own RNG lineage. Each injector draws from
//     rng.Stream(seed, "fault/<index>/<kind>") — a label-keyed stream
//     forked per injector, never from the kernel or workload RNGs — so
//     enabling, removing, or re-ordering injectors cannot reshuffle
//     arrivals, service times, or dispatch decisions, and toggling one
//     injector never shifts another's schedule.
//
//   - Per-slot chains are forked, not shared. Timer chains fork one
//     child stream per slot (in engine, then slot order), so the chain
//     on slot 3 is independent of how often slot 2 failed.
//
//   - Chains gate on quiescence, never on wall progress. A fail/
//     straggle event re-arms only while injected-but-unfinished
//     applications remain (Target.Done), so runs terminate; a recovery
//     event is always scheduled once its failure fired, so no slot
//     stays dead forever and availability integrals close.
//
//   - Same seed, same bytes, any schedule. Injector state is confined
//     to the topology's kernel; parallel RunMany sweeps with faults
//     enabled reproduce sequential runs byte for byte.
//
// # Convergence
//
// A crash restart without checkpointing loses all batch progress, so a
// fail/recover chain whose MTBF is much shorter than an application's
// clean runtime can starve the workload forever — the run never
// terminates, exactly like an unstable queueing system. Chaos
// scenarios must keep MTBF comfortably above the per-application
// service time, or enable the checkpoint injector so restarts resume
// from completed progress.
package fault
