package fault

import (
	"reflect"
	"testing"

	"versaslot/internal/cluster"
	"versaslot/internal/migrate"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// chaosSpec exercises every coordinator-driven injector: slot and
// board fail/recover chains, straggler episodes, flaky reconfiguration
// (whose draws come from forked streams, so it is shard-safe), and
// checkpointed restarts with a restore delay on the rack link's tail.
func chaosSpec() Spec {
	return Spec{Injectors: []InjectorSpec{
		{Kind: KindSlotFail, MTBF: 4 * sim.Second, MTTR: 200 * sim.Millisecond},
		{Kind: KindBoardFail, MTBF: 9 * sim.Second, MTTR: 400 * sim.Millisecond},
		{Kind: KindStraggler, MTBF: 5 * sim.Second, MTTR: 300 * sim.Millisecond, Factor: 2.5},
		{Kind: KindPRFlaky, Rate: 0.05, MaxRetries: 3, Backoff: sim.Millisecond, BackoffFactor: 2},
		{Kind: KindCheckpoint, CheckpointBytes: 512, RestoreDelay: 200 * sim.Microsecond},
	}}
}

func runChaosFarm(t *testing.T, shards int) cluster.Summary {
	t.Helper()
	cfg := cluster.DefaultFarmConfig(4)
	cfg.RebalanceEvery = 2 * sim.Second
	cfg.Shards = shards
	f := cluster.MustNewFarm(cfg)
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 32
	if err := f.Inject(workload.Generate(p, 777)); err != nil {
		t.Fatal(err)
	}
	var engines []*sched.Engine
	for _, pair := range f.Pairs {
		for _, mode := range []migrate.Mode{migrate.Base, migrate.Boost} {
			engines = append(engines, pair.Engine(mode))
		}
	}
	tgt := &Target{
		K:         f.K,
		Engines:   engines,
		Pairs:     f.Pairs,
		Farm:      f,
		Quiescent: f.Quiescent,
		Pri:       sim.PriFarmControl,
		Touch:     f.TouchPair,
	}
	if err := Attach(tgt, chaosSpec(), 777); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if sum.Apps != p.Apps {
		t.Fatalf("finished %d of %d apps under faults", sum.Apps, p.Apps)
	}
	return sum
}

// TestShardedMatchesSequentialUnderFaults extends the sharded
// executor's byte-identity bar to chaos runs: fault chains live on the
// coordinator kernel at farm-control priority, so strikes land at the
// same instants — between the same pair events — in both modes.
func TestShardedMatchesSequentialUnderFaults(t *testing.T) {
	seq := runChaosFarm(t, 1)
	sh := runChaosFarm(t, 4)
	if !reflect.DeepEqual(seq, sh) {
		t.Errorf("sharded chaos run diverged from sequential:\nsequential: apps=%d meanRT=%v p99=%v cross=%d switches=%d\nsharded:    apps=%d meanRT=%v p99=%v cross=%d switches=%d",
			seq.Apps, seq.MeanRT, seq.P99, seq.CrossSwitches, seq.Switches,
			sh.Apps, sh.MeanRT, sh.P99, sh.CrossSwitches, sh.Switches)
	}
}
