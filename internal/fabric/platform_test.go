package fabric

import (
	"strings"
	"testing"
)

func TestPlatformRegistryBuiltins(t *testing.T) {
	for _, name := range []string{ZCU216BigLittle, ZCU216OnlyLittle, ZCU216OnlyBig, ZCU216Monolithic, U250Quad, PYNQDual} {
		p, ok := LookupPlatform(name)
		if !ok {
			t.Fatalf("built-in platform %q not registered", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", name, err)
		}
	}
	// Aliases resolve case-insensitively.
	if p, ok := LookupPlatform("Big-Little"); !ok || p.Name != ZCU216BigLittle {
		t.Fatal("big-little alias broken")
	}
}

func TestPlatformRegistryRejectsDuplicates(t *testing.T) {
	dup := &Platform{
		Name: ZCU216BigLittle, Title: "imposter",
		AreaBudget: 8, Classes: []SlotClass{LittleClass}, Counts: []int{1},
	}
	if err := RegisterPlatform(dup); err == nil {
		t.Fatal("duplicate platform name registered")
	}
	alias := &Platform{
		Name:       "fresh-name-for-dup-test",
		AreaBudget: 8, Classes: []SlotClass{LittleClass}, Counts: []int{1},
	}
	if err := RegisterPlatform(alias, "only-little"); err == nil {
		t.Fatal("duplicate alias registered")
	}
	if _, ok := LookupPlatform("fresh-name-for-dup-test"); ok {
		t.Fatal("failed registration leaked into the registry")
	}
}

func TestPlatformRegistryRejectsClassCapacityConflict(t *testing.T) {
	conflicting := &Platform{
		Name: "conflict-test-platform", AreaBudget: 8,
		Classes: []SlotClass{{Name: "Little", Cap: ResVec{LUT: 1, FF: 1}, Area: 1}},
		Counts:  []int{1},
	}
	err := RegisterPlatform(conflicting)
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting class capacity accepted: %v", err)
	}
}

func TestPlatformValidateAreaInvariant(t *testing.T) {
	over := &Platform{
		Name: "over-tiled", AreaBudget: 8,
		Classes: []SlotClass{BigClass, LittleClass}, Counts: []int{3, 3}, // 9 tiles
	}
	if err := over.Validate(); err == nil {
		t.Fatal("over-tiled platform validated")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustValidate on over-tiled platform did not panic")
		}
	}()
	over.MustValidate()
}

func TestPlatformValidateCapacityOrdering(t *testing.T) {
	misordered := &Platform{
		Name: "misordered", AreaBudget: 8,
		Classes: []SlotClass{LittleClass, BigClass}, Counts: []int{2, 2},
	}
	if err := misordered.Validate(); err == nil {
		t.Fatal("ascending class capacities validated (largest must come first)")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := MustPlatform(ZCU216BigLittle)
	if p.Largest().Name != "Big" || p.Smallest().Name != "Little" {
		t.Fatal("Largest/Smallest ranking broken")
	}
	if !p.Heterogeneous() {
		t.Fatal("big-little not heterogeneous")
	}
	if p.SlotCount() != 6 {
		t.Fatalf("slot count %d, want 6", p.SlotCount())
	}
	if MustPlatform(ZCU216OnlyLittle).Heterogeneous() {
		t.Fatal("only-little reported heterogeneous")
	}
	if MustPlatform(ZCU216Monolithic).Heterogeneous() {
		t.Fatal("virtual platform reported heterogeneous")
	}
	if c, ok := p.ClassByName("Big"); !ok || c.Cap != BigSlotCap {
		t.Fatal("ClassByName broken")
	}
	small := MustPlatform(PYNQDual)
	if small.FitsAnyClass(ResVec{LUT: BigSlotCap.LUT}) {
		t.Fatal("oversized circuit fits a PYNQ slot")
	}
	if !small.FitsAnyClass(ResVec{LUT: 10_000}) {
		t.Fatal("small circuit rejected by PYNQ")
	}
}

func TestRegisteredClassesDeduplicated(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range RegisteredClasses() {
		if seen[c.Name] {
			t.Fatalf("class %q listed twice", c.Name)
		}
		seen[c.Name] = true
	}
	for _, want := range []string{"Little", "Big", "Large", "Small"} {
		if !seen[want] {
			t.Fatalf("class %q missing from RegisteredClasses", want)
		}
	}
}

func TestPlatformSpecResolveRef(t *testing.T) {
	p, err := (&PlatformSpec{Ref: U250Quad}).Resolve()
	if err != nil || p.Name != U250Quad {
		t.Fatalf("ref resolve: %v %v", p, err)
	}
	if _, err := (&PlatformSpec{Ref: "no-such-board"}).Resolve(); err == nil {
		t.Fatal("unknown ref resolved")
	}
	if _, err := (&PlatformSpec{Ref: U250Quad, Name: "also-inline"}).Resolve(); err == nil {
		t.Fatal("ref+inline spec resolved")
	}
	if _, err := (&PlatformSpec{}).Resolve(); err == nil {
		t.Fatal("empty spec resolved")
	}
}

func TestPlatformSpecResolveInline(t *testing.T) {
	spec := &PlatformSpec{
		Name:       "inline-tri",
		AreaBudget: 4,
		Classes: []ClassSpec{
			{Name: "Big", Count: 1, Cap: BigSlotCap, Area: 2},
			{Name: "Little", Count: 2, Cap: LittleSlotCap, Area: 1},
		},
	}
	p, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() || p.SlotCount() != 3 {
		t.Fatalf("inline platform shape wrong: %+v", p)
	}
	// Over-tiled inline platforms fail the area invariant.
	spec.Classes[1].Count = 3 // 2 + 3 = 5 tiles > 4
	if _, err := spec.Resolve(); err == nil {
		t.Fatal("over-tiled inline platform resolved")
	}
	// A known class name with a different capacity is rejected: the
	// shared bitstream repository keys partials by class name.
	bad := &PlatformSpec{
		Name: "inline-bad", AreaBudget: 4,
		Classes: []ClassSpec{{Name: "Little", Count: 1, Cap: ResVec{LUT: 7, FF: 7}, Area: 1}},
	}
	if _, err := bad.Resolve(); err == nil {
		t.Fatal("class capacity conflict resolved")
	}
}
