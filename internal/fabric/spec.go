package fabric

import "fmt"

// ClassSpec is the JSON form of one slot class in an inline platform
// definition.
type ClassSpec struct {
	// Name keys bitstreams and compatibility checks. A name already
	// registered by another platform must declare the same capacity.
	Name string `json:"name"`
	// Count is how many slots of this class the platform lays out.
	Count int `json:"count"`
	// Cap is the region's resource capacity.
	Cap ResVec `json:"cap"`
	// Area is the number of fabric tiles the region occupies.
	Area int `json:"area"`
	// Bytes optionally overrides the partial-bitstream size estimate
	// (the class's reconfiguration-cost parameter).
	Bytes int64 `json:"bytes,omitempty"`
}

// PlatformSpec is the JSON `platform` block of a scenario: either a
// registry reference ({"ref": "u250-quad"}) or an inline custom
// platform (name, area budget, and an ordered class mix). Inline
// platforms are validated like built-ins — area tiling, capacity
// ordering, class-name/capacity consistency with the registry.
type PlatformSpec struct {
	// Ref names a registered platform; when set, every other field
	// must be empty.
	Ref string `json:"ref,omitempty"`

	// Name labels an inline custom platform.
	Name string `json:"name,omitempty"`
	// Title is the inline platform's display name.
	Title string `json:"title,omitempty"`
	// Device is the whole-fabric resource total (informational).
	Device ResVec `json:"device,omitzero"`
	// AreaBudget bounds the class tiling; zero skips the area check.
	AreaBudget int `json:"area_budget,omitempty"`
	// Classes is the ordered slot-class mix, largest capacity first.
	Classes []ClassSpec `json:"classes,omitempty"`
}

// inline reports whether the spec defines an inline platform (rather
// than a registry reference).
func (s *PlatformSpec) inline() bool {
	return s.Name != "" || s.Title != "" || s.AreaBudget != 0 || len(s.Classes) > 0 || s.Device != (ResVec{})
}

// Resolve returns the platform the spec denotes: the registry entry
// for a ref, or a validated inline platform.
func (s *PlatformSpec) Resolve() (*Platform, error) {
	if s == nil {
		return nil, nil
	}
	if s.Ref != "" {
		if s.inline() {
			return nil, fmt.Errorf("fabric: platform spec: ref %q conflicts with inline fields (pick one)", s.Ref)
		}
		p, ok := LookupPlatform(s.Ref)
		if !ok {
			return nil, fmt.Errorf("fabric: unknown platform %q (registered: %v)", s.Ref, PlatformNames())
		}
		return p, nil
	}
	if !s.inline() {
		return nil, fmt.Errorf("fabric: empty platform spec (want a ref or an inline definition)")
	}
	p := &Platform{
		Name:       s.Name,
		Title:      s.Title,
		Device:     s.Device,
		AreaBudget: s.AreaBudget,
	}
	for _, c := range s.Classes {
		if cap, ok := registeredClassCap(c.Name); ok && cap != c.Cap {
			return nil, fmt.Errorf("fabric: platform spec %q: class %q capacity %v conflicts with registered capacity %v",
				s.Name, c.Name, c.Cap, cap)
		}
		p.Classes = append(p.Classes, SlotClass{Name: c.Name, Cap: c.Cap, Area: c.Area, Bytes: c.Bytes})
		p.Counts = append(p.Counts, c.Count)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
