package fabric

import (
	"fmt"
	"sync"

	"versaslot/internal/registry"
)

// SlotClass describes one reconfigurable-region size class of a
// platform: its name (the bitstream-repository key suffix), its
// resource capacity, and its reconfiguration-cost parameters. Classes
// are value types; a Platform holds an ordered mix of them.
type SlotClass struct {
	// Name keys bitstreams ("IC/DCT@Little") and slot compatibility
	// checks. Across the platform registry a name maps to exactly one
	// capacity, so a class name is globally meaningful.
	Name string `json:"name"`
	// Cap is the region's resource capacity.
	Cap ResVec `json:"cap"`
	// Area is the number of fabric tiles the region occupies; the
	// platform's AreaBudget bounds the total tiling.
	Area int `json:"area"`
	// Bytes, when nonzero, overrides the size-model estimate of the
	// region's partial bitstream (the dominant reconfiguration cost:
	// PCAP load time is Bytes/bandwidth, and a cross-board switch
	// re-streams the destination's partials on a miss).
	Bytes int64 `json:"bytes,omitempty"`
}

// Platform is a named board template: an ordered slot-class mix plus
// the static-region floorplan it tiles into. Platforms replace the old
// two-value SlotKind / three-value BoardConfig enums: board shape is
// data, selected per scenario, not code.
type Platform struct {
	// Name is the registry key ("zcu216-big-little").
	Name string `json:"name"`
	// Title is the display name ("Big.Little").
	Title string `json:"title,omitempty"`
	// Device is the whole-fabric resource total of the part.
	Device ResVec `json:"device,omitempty"`
	// AreaBudget is the number of reconfigurable fabric tiles left
	// after the static region (AXI interconnect, slot interfaces, DFX
	// decouplers, switching module) is floorplanned.
	AreaBudget int `json:"area_budget"`
	// Classes is the slot-class mix in slot-ID order, largest capacity
	// first; Counts[i] slots of Classes[i] are laid out consecutively.
	Classes []SlotClass `json:"classes"`
	Counts  []int       `json:"counts"`
	// Virtual marks the monolithic baseline template: the "slots" are
	// virtual stage regions of one resident full-fabric design, not DPR
	// regions, so the area invariant does not apply.
	Virtual bool `json:"virtual,omitempty"`
}

// Validate checks the platform invariants: aligned non-empty class and
// count vectors, unique class names, positive capacities and counts,
// capacity ordering (LUT capacity non-increasing in declaration order),
// and — for DPR platforms — the area tiling against the budget.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("fabric: platform with empty name")
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("fabric: platform %q has no slot classes", p.Name)
	}
	if len(p.Counts) != len(p.Classes) {
		return fmt.Errorf("fabric: platform %q: %d classes but %d counts", p.Name, len(p.Classes), len(p.Counts))
	}
	seen := make(map[string]bool, len(p.Classes))
	area := 0
	for i, c := range p.Classes {
		if c.Name == "" {
			return fmt.Errorf("fabric: platform %q: class %d has no name", p.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("fabric: platform %q: duplicate class %q", p.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Cap.LUT <= 0 || c.Cap.FF <= 0 {
			return fmt.Errorf("fabric: platform %q: class %q has non-positive LUT/FF capacity", p.Name, c.Name)
		}
		if p.Counts[i] <= 0 {
			return fmt.Errorf("fabric: platform %q: class %q count %d", p.Name, c.Name, p.Counts[i])
		}
		if i > 0 && c.Cap.LUT > p.Classes[i-1].Cap.LUT {
			return fmt.Errorf("fabric: platform %q: classes must be declared largest-capacity first (%q exceeds %q)",
				p.Name, c.Name, p.Classes[i-1].Name)
		}
		if !p.Virtual {
			if c.Area <= 0 {
				return fmt.Errorf("fabric: platform %q: class %q has no area", p.Name, c.Name)
			}
			area += c.Area * p.Counts[i]
		}
	}
	if !p.Virtual && p.AreaBudget > 0 && area > p.AreaBudget {
		return fmt.Errorf("fabric: platform %q over-tiled: classes need %d tiles, the fabric holds %d",
			p.Name, area, p.AreaBudget)
	}
	return nil
}

// MustValidate panics on an invalid platform (init-time built-ins and
// custom platforms constructed from checked scenario specs).
func (p *Platform) MustValidate() *Platform {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// SlotCount returns the total number of slots the platform lays out.
func (p *Platform) SlotCount() int {
	n := 0
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// Heterogeneous reports whether the platform mixes more than one DPR
// slot class (the precondition for the Big.Little-style policies).
func (p *Platform) Heterogeneous() bool { return !p.Virtual && len(p.Classes) > 1 }

// Largest returns the largest-capacity class (declaration order is
// largest first).
func (p *Platform) Largest() SlotClass { return p.Classes[0] }

// Smallest returns the smallest-capacity class — the "base" class the
// uniform-slot policies schedule on.
func (p *Platform) Smallest() SlotClass { return p.Classes[len(p.Classes)-1] }

// ClassByName resolves a class of this platform.
func (p *Platform) ClassByName(name string) (SlotClass, bool) {
	for _, c := range p.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return SlotClass{}, false
}

// FitsAnyClass reports whether a circuit of the given footprint fits at
// least one slot class of the platform — the capacity-awareness test
// heterogeneous-farm dispatchers apply before routing an application to
// a pair.
func (p *Platform) FitsAnyClass(res ResVec) bool {
	for _, c := range p.Classes {
		if res.FitsIn(c.Cap) {
			return true
		}
	}
	return false
}

// platforms is the process-wide platform registry, mirroring the
// policy/dispatcher/arrival registries: string-keyed, third parties
// register at init time. It additionally enforces that a slot-class
// name resolves to one capacity across every registered platform, so
// class-keyed bitstream repositories stay unambiguous.
var (
	platforms      = registry.New[*Platform]("fabric")
	classMu        sync.RWMutex
	classCapByName = map[string]ResVec{}
)

// registeredClassCap returns the capacity a class name carries across
// the registry, if any platform declares it.
func registeredClassCap(name string) (ResVec, bool) {
	classMu.RLock()
	defer classMu.RUnlock()
	cap, ok := classCapByName[name]
	return cap, ok
}

// RegisterPlatform adds a platform (validated) to the registry. Every
// slot-class name must either be new or agree with the capacity it has
// on already-registered platforms.
func RegisterPlatform(p *Platform, aliases ...string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Title == "" {
		p.Title = p.Name
	}
	classMu.Lock()
	defer classMu.Unlock()
	for _, c := range p.Classes {
		if cap, ok := classCapByName[c.Name]; ok && cap != c.Cap {
			return fmt.Errorf("fabric: register %q: class %q capacity %v conflicts with registered capacity %v",
				p.Name, c.Name, c.Cap, cap)
		}
	}
	if err := platforms.Register(p.Name, p, aliases...); err != nil {
		return err
	}
	for _, c := range p.Classes {
		classCapByName[c.Name] = c.Cap
	}
	return nil
}

// MustRegisterPlatform is RegisterPlatform, panicking on error.
func MustRegisterPlatform(p *Platform, aliases ...string) {
	if err := RegisterPlatform(p, aliases...); err != nil {
		panic(err)
	}
}

// LookupPlatform resolves a platform by name or alias.
func LookupPlatform(name string) (*Platform, bool) { return platforms.Lookup(name) }

// MustPlatform is LookupPlatform for names the caller guarantees are
// registered (built-ins).
func MustPlatform(name string) *Platform {
	p, ok := platforms.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("fabric: unknown platform %q (registered: %v)", name, PlatformNames()))
	}
	return p
}

// PlatformNames lists canonical platform names in registration order
// (built-ins first).
func PlatformNames() []string { return platforms.Names() }

// Platforms returns every registered platform in registration order.
func Platforms() []*Platform { return platforms.Values() }

// RegisteredClasses returns the distinct slot classes across every
// registered platform, in first-registration order — the class set the
// shared bitstream repository generates partials for.
func RegisteredClasses() []SlotClass {
	var out []SlotClass
	seen := make(map[string]bool)
	for _, p := range platforms.Values() {
		for _, c := range p.Classes {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Built-in platform names.
const (
	// ZCU216BigLittle is the paper's heterogeneous floorplan: 2 Big + 4
	// Little slots on a ZCU216.
	ZCU216BigLittle = "zcu216-big-little"
	// ZCU216OnlyLittle is the paper's uniform floorplan: 8 Little slots.
	ZCU216OnlyLittle = "zcu216-only-little"
	// ZCU216OnlyBig tiles the same fabric into 4 Big slots.
	ZCU216OnlyBig = "zcu216-only-big"
	// ZCU216Monolithic is the exclusive temporal-multiplexing baseline:
	// no DPR slots, one resident full-fabric design modeled as virtual
	// stage regions.
	ZCU216Monolithic = "zcu216-monolithic"
	// U250Quad is an Alveo U250-style datacenter card tiled into 4
	// equal large slots (FOS/Coyote-style uniform shells).
	U250Quad = "u250-quad"
	// PYNQDual is a PYNQ-class edge board with 2 small slots; large
	// circuits do not fit and must route to bigger boards.
	PYNQDual = "pynq-dual"
)

// MonolithicStageRegions is how many concurrently-resident pipeline
// stages the monolithic baseline platform models. These are not DPR
// slots: they stand for the stages of the single resident full-fabric
// design (the longest benchmark pipeline has 9 tasks).
const MonolithicStageRegions = 9

// Little and Big are the ZCU216 slot classes; Little slots tile one
// fabric unit each, a Big slot exactly two (twice the capacity, per the
// paper).
var (
	LittleClass = SlotClass{Name: "Little", Cap: LittleSlotCap, Area: 1}
	BigClass    = SlotClass{Name: "Big", Cap: BigSlotCap, Area: 2}
)

// U250 device totals (XCU250), rounded to the datasheet scale.
var U250Total = ResVec{LUT: 1_728_000, FF: 3_456_000, DSP: 12_288, BRAM: 2688}

// LargeClass is the U250 shell slot: an order of magnitude beyond a
// ZCU216 Little slot, with an explicit partial-bitstream size (the
// reconfiguration-cost parameter) since the default ZCU216 size model
// does not apply.
var LargeClass = SlotClass{Name: "Large", Cap: ResVec{LUT: 320_000, FF: 640_000, DSP: 2400, BRAM: 520}, Area: 2, Bytes: 28 << 20}

// PYNQTotal approximates a PYNQ-class Zynq-7020 part.
var PYNQTotal = ResVec{LUT: 53_200, FF: 106_400, DSP: 220, BRAM: 140}

// SmallClass is the PYNQ slot: roughly 60% of a Little slot, so the
// suite's heaviest tasks (LUT utilization above 0.60 of a Little slot)
// do not fit and must be dispatched to larger boards.
var SmallClass = SlotClass{Name: "Small", Cap: ResVec{LUT: 25_200, FF: 50_400, DSP: 100, BRAM: 60}, Area: 1, Bytes: 3 << 20}

func init() {
	MustRegisterPlatform(&Platform{
		Name: ZCU216BigLittle, Title: "Big.Little",
		Device: ZCU216Total, AreaBudget: 8,
		Classes: []SlotClass{BigClass, LittleClass}, Counts: []int{2, 4},
	}, "big-little")
	MustRegisterPlatform(&Platform{
		Name: ZCU216OnlyLittle, Title: "Only.Little",
		Device: ZCU216Total, AreaBudget: 8,
		Classes: []SlotClass{LittleClass}, Counts: []int{8},
	}, "only-little")
	MustRegisterPlatform(&Platform{
		Name: ZCU216OnlyBig, Title: "Only.Big",
		Device: ZCU216Total, AreaBudget: 8,
		Classes: []SlotClass{BigClass}, Counts: []int{4},
	}, "only-big")
	MustRegisterPlatform(&Platform{
		Name: ZCU216Monolithic, Title: "Monolithic",
		Device: ZCU216Total, AreaBudget: 8, Virtual: true,
		Classes: []SlotClass{LittleClass}, Counts: []int{MonolithicStageRegions},
	}, "monolithic")
	MustRegisterPlatform(&Platform{
		Name: U250Quad, Title: "U250 Quad",
		Device: U250Total, AreaBudget: 8,
		Classes: []SlotClass{LargeClass}, Counts: []int{4},
	})
	MustRegisterPlatform(&Platform{
		Name: PYNQDual, Title: "PYNQ Dual",
		Device: PYNQTotal, AreaBudget: 2,
		Classes: []SlotClass{SmallClass}, Counts: []int{2},
	})
}

// CustomBigLittle builds an unregistered ZCU216 platform with an
// arbitrary Big/Little slot mix — the paper's "any Big/Little
// configuration" extension. It panics on negative counts or when the
// mix over-tiles the 8-Little-equivalent fabric.
func CustomBigLittle(big, little int) *Platform {
	if big < 0 || little < 0 {
		panic("fabric: negative slot count")
	}
	if area := 2*big + little; area > 8 {
		panic(fmt.Sprintf("fabric: %dB+%dL needs %d Little-equivalents; the fabric holds 8", big, little, area))
	}
	p := &Platform{
		Name:   fmt.Sprintf("zcu216-custom-%db%dl", big, little),
		Device: ZCU216Total, AreaBudget: 8,
	}
	if big > 0 {
		p.Title = "Big.Little"
		p.Classes = append(p.Classes, BigClass)
		p.Counts = append(p.Counts, big)
	} else {
		p.Title = "Only.Little"
	}
	if little > 0 {
		p.Classes = append(p.Classes, LittleClass)
		p.Counts = append(p.Counts, little)
	}
	return p.MustValidate()
}
