// Package fabric models the programmable-logic side of an FPGA board
// as data: resource vectors, slot classes, reconfigurable slots, and
// declarative board platforms with a process-wide registry.
//
// A SlotClass is a named region size (capacity vector, fabric-tile
// area, partial-bitstream size — its reconfiguration-cost parameter).
// A Platform is a named board template: an ordered slot-class mix plus
// the static-region floorplan it tiles into. Boards materialize
// platforms; everything above (policies, bitstream repositories,
// clusters, farms) consumes platforms instead of hard-coded enums, so
// new board shapes are registered, not coded.
//
// Built-ins cover the paper's ZCU216 templates (zcu216-big-little,
// zcu216-only-little, zcu216-only-big, and the virtual
// zcu216-monolithic baseline) plus a datacenter u250-quad and an edge
// pynq-dual profile. Third parties add platforms with RegisterPlatform
// at init time (before the shared bitstream repository freezes);
// scenarios reference them by name or define inline customs via
// PlatformSpec.
//
// Invariants, enforced by Platform.Validate and the registry:
//
//   - Area tiling: sum over classes of count*Area must not exceed the
//     platform's AreaBudget (the reconfigurable tiles left after the
//     static region). Virtual platforms — monolithic stage regions,
//     not DPR slots — skip this check.
//   - Capacity ordering: classes are declared largest LUT capacity
//     first, so Largest()/Smallest() (the Big/Little roles policies
//     rank by) are positional, and slot IDs group by class in
//     declaration order.
//   - Class-name consistency: across the registry a class name maps to
//     exactly one capacity. Bitstream repositories key partials by
//     class name ("IC/DCT@Little"), so a name must mean the same
//     region everywhere.
//
// The paper's scale anchors the built-ins: a ZCU216 divides into a
// static region plus 8 Little-equivalents, with a Big slot holding
// exactly twice a Little slot's resources.
package fabric
