// Package fabric models the programmable-logic side of an FPGA board:
// resource vectors, reconfigurable slots (Big and Little), the static
// region, and board/cluster topology.
//
// The model follows the paper's platform: a Xilinx UltraScale+ ZCU216
// whose fabric is divided into a static region plus either 8 Little
// slots (Only.Little) or 2 Big + 4 Little slots (Big.Little), with a
// Big slot holding exactly twice the resources of a Little slot.
package fabric
