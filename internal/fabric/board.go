package fabric

// Board is the PL side of one FPGA: its platform template materialized
// into slots. Slot IDs follow the platform's class declaration order
// (Counts[0] slots of Classes[0] first, and so on).
type Board struct {
	ID       int
	Platform *Platform
	Slots    []*Slot
}

// NewBoard materializes a platform into a board. The platform must be
// valid (registered platforms are; custom ones validate on build).
func NewBoard(id int, p *Platform) *Board {
	b := &Board{ID: id, Platform: p}
	slotID := 0
	for i, class := range p.Classes {
		for n := 0; n < p.Counts[i]; n++ {
			b.Slots = append(b.Slots, &Slot{ID: slotID, Class: class})
			slotID++
		}
	}
	return b
}

// NewCustomBoard builds a ZCU216 board with an arbitrary Big/Little
// slot mix — the extension the paper notes ("can be extended to any
// Big/Little configuration"). A Big slot occupies the fabric area of
// two Little slots; the mix must fit the 8-Little-equivalent
// reconfigurable area of the ZCU216 floorplan.
func NewCustomBoard(id, big, little int) *Board {
	return NewBoard(id, CustomBigLittle(big, little))
}

// SlotsOf returns the board's slots of the given class, in ID order.
func (b *Board) SlotsOf(class string) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Class.Name == class {
			out = append(out, s)
		}
	}
	return out
}

// FreeSlots returns the free slots of the given class, in ID order.
func (b *Board) FreeSlots(class string) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Class.Name == class && s.Free() {
			out = append(out, s)
		}
	}
	return out
}

// CountFree returns the number of free slots of the given class.
func (b *Board) CountFree(class string) int {
	n := 0
	for _, s := range b.Slots {
		if s.Class.Name == class && s.Free() {
			n++
		}
	}
	return n
}

// EmptySlots returns the slots of the given class with no resident or
// loading circuit, in ID order. Allocation must draw from these: a
// Loaded slot is free to *reconfigure* but still belongs to the app
// whose stage is resident. Failed (fault-injected) slots are never
// allocatable, whatever their lifecycle state.
func (b *Board) EmptySlots(class string) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Class.Name == class && s.State() == SlotEmpty && !s.Failed() {
			out = append(out, s)
		}
	}
	return out
}

// FirstEmpty returns the lowest-ID empty, unfailed slot of the given
// class, or nil. Placement loops use it instead of EmptySlots to avoid
// materializing a slice per scheduling pass.
func (b *Board) FirstEmpty(class string) *Slot {
	for _, s := range b.Slots {
		if s.Class.Name == class && s.State() == SlotEmpty && !s.Failed() {
			return s
		}
	}
	return nil
}

// CountEmpty returns the number of empty slots of the given class.
func (b *Board) CountEmpty(class string) int {
	n := 0
	for _, s := range b.Slots {
		if s.Class.Name == class && s.State() == SlotEmpty && !s.Failed() {
			n++
		}
	}
	return n
}

// Count returns the total number of slots of the given class.
func (b *Board) Count(class string) int {
	n := 0
	for _, s := range b.Slots {
		if s.Class.Name == class {
			n++
		}
	}
	return n
}

// SlotCapacityTotal returns the summed capacity of all slots — the
// denominator for board-level utilization metrics.
func (b *Board) SlotCapacityTotal() ResVec {
	var total ResVec
	for _, s := range b.Slots {
		total = total.Add(s.Class.Cap)
	}
	return total
}
