package fabric

import "fmt"

// BoardConfig names the static-region floorplan of a board. The static
// region fixes slot sizes and interfaces and can only be programmed at
// system start-up; changing it at runtime is what cross-board switching
// avoids.
type BoardConfig int

const (
	// OnlyLittle is the uniform floorplan: 8 Little slots.
	OnlyLittle BoardConfig = iota
	// BigLittle is the heterogeneous floorplan: 2 Big + 4 Little slots.
	BigLittle
	// Monolithic means no DPR slots: the whole fabric is one region
	// (the traditional exclusive temporal-multiplexing baseline).
	Monolithic
)

func (c BoardConfig) String() string {
	switch c {
	case OnlyLittle:
		return "Only.Little"
	case BigLittle:
		return "Big.Little"
	case Monolithic:
		return "Monolithic"
	default:
		return fmt.Sprintf("BoardConfig(%d)", int(c))
	}
}

// MonolithicStageRegions is how many concurrently-resident pipeline
// stages a Monolithic board models. These are not DPR slots: they stand
// for the stages of the single resident full-fabric design (the longest
// benchmark pipeline has 9 tasks).
const MonolithicStageRegions = 9

// SlotCounts returns the number of Big and Little slots for the config.
// For Monolithic the "slots" are virtual stage regions (see
// MonolithicStageRegions), not reconfigurable regions.
func (c BoardConfig) SlotCounts() (big, little int) {
	switch c {
	case OnlyLittle:
		return 0, 8
	case BigLittle:
		return 2, 4
	case Monolithic:
		return 0, MonolithicStageRegions
	default:
		return 0, 0
	}
}

// Board is the PL side of one FPGA: its floorplan and slots.
type Board struct {
	ID     int
	Config BoardConfig
	Slots  []*Slot
}

// NewBoard builds a board with the slot set implied by config.
func NewBoard(id int, config BoardConfig) *Board {
	b := &Board{ID: id, Config: config}
	big, little := config.SlotCounts()
	slotID := 0
	for i := 0; i < big; i++ {
		b.Slots = append(b.Slots, &Slot{ID: slotID, Kind: Big})
		slotID++
	}
	for i := 0; i < little; i++ {
		b.Slots = append(b.Slots, &Slot{ID: slotID, Kind: Little})
		slotID++
	}
	return b
}

// NewCustomBoard builds a board with an arbitrary Big/Little slot mix —
// the extension the paper notes ("can be extended to any Big/Little
// configuration"). A Big slot occupies the fabric area of two Little
// slots; the mix must fit the 8-Little-equivalent reconfigurable area
// of the ZCU216 floorplan. The Config is reported as BigLittle when any
// Big slot exists, OnlyLittle otherwise, so policies behave uniformly.
func NewCustomBoard(id, big, little int) *Board {
	if big < 0 || little < 0 {
		panic("fabric: negative slot count")
	}
	if area := 2*big + little; area > 8 {
		panic(fmt.Sprintf("fabric: %dB+%dL needs %d Little-equivalents; the fabric holds 8", big, little, area))
	}
	cfg := OnlyLittle
	if big > 0 {
		cfg = BigLittle
	}
	b := &Board{ID: id, Config: cfg}
	slotID := 0
	for i := 0; i < big; i++ {
		b.Slots = append(b.Slots, &Slot{ID: slotID, Kind: Big})
		slotID++
	}
	for i := 0; i < little; i++ {
		b.Slots = append(b.Slots, &Slot{ID: slotID, Kind: Little})
		slotID++
	}
	return b
}

// SlotsOf returns the board's slots of the given kind, in ID order.
func (b *Board) SlotsOf(kind SlotKind) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// FreeSlots returns the free slots of the given kind, in ID order.
func (b *Board) FreeSlots(kind SlotKind) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Kind == kind && s.Free() {
			out = append(out, s)
		}
	}
	return out
}

// CountFree returns the number of free slots of the given kind.
func (b *Board) CountFree(kind SlotKind) int {
	n := 0
	for _, s := range b.Slots {
		if s.Kind == kind && s.Free() {
			n++
		}
	}
	return n
}

// EmptySlots returns the slots of the given kind with no resident or
// loading circuit, in ID order. Allocation must draw from these: a
// Loaded slot is free to *reconfigure* but still belongs to the app
// whose stage is resident.
func (b *Board) EmptySlots(kind SlotKind) []*Slot {
	var out []*Slot
	for _, s := range b.Slots {
		if s.Kind == kind && s.State() == SlotEmpty {
			out = append(out, s)
		}
	}
	return out
}

// CountEmpty returns the number of empty slots of the given kind.
func (b *Board) CountEmpty(kind SlotKind) int {
	n := 0
	for _, s := range b.Slots {
		if s.Kind == kind && s.State() == SlotEmpty {
			n++
		}
	}
	return n
}

// Count returns the total number of slots of the given kind.
func (b *Board) Count(kind SlotKind) int {
	n := 0
	for _, s := range b.Slots {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

// SlotCapacityTotal returns the summed capacity of all slots — the
// denominator for board-level utilization metrics.
func (b *Board) SlotCapacityTotal() ResVec {
	var total ResVec
	for _, s := range b.Slots {
		total = total.Add(s.Kind.Capacity())
	}
	return total
}
