package fabric

import (
	"testing"
	"testing/quick"
)

func TestResVecArithmetic(t *testing.T) {
	a := ResVec{LUT: 100, FF: 200, DSP: 10, BRAM: 5}
	b := ResVec{LUT: 50, FF: 100, DSP: 5, BRAM: 2}
	sum := a.Add(b)
	if sum != (ResVec{150, 300, 15, 7}) {
		t.Fatalf("Add: %v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub not inverse of Add: %v", diff)
	}
	if !diff.NonNegative() {
		t.Fatal("NonNegative false for positive vec")
	}
	if !(ResVec{}).IsZero() {
		t.Fatal("zero vec not zero")
	}
	neg := b.Sub(a)
	if neg.NonNegative() {
		t.Fatal("NonNegative true for negative vec")
	}
}

// Property: Add is commutative and Sub undoes Add.
func TestResVecAddProperties(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 int16) bool {
		a := ResVec{int(a1), int(a2), int(a3), int(a4)}
		b := ResVec{int(b1), int(b2), int(b3), int(b4)}
		return a.Add(b) == b.Add(a) && a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResVecScale(t *testing.T) {
	a := ResVec{LUT: 100, FF: 200, DSP: 10, BRAM: 4}
	half := a.Scale(0.5)
	if half != (ResVec{50, 100, 5, 2}) {
		t.Fatalf("Scale(0.5): %v", half)
	}
	// Scale rounds to nearest.
	odd := ResVec{LUT: 3}.Scale(0.5)
	if odd.LUT != 2 {
		t.Fatalf("rounding: got %d", odd.LUT)
	}
}

// Negative components round with math.Round semantics (toward the
// nearest integer, halves away from zero) — the old int(x*f+0.5)
// truncation rounded negatives toward +infinity (e.g. -3 * 0.5 -> -1).
func TestResVecScaleNegativeRounding(t *testing.T) {
	neg := ResVec{LUT: -3, FF: -100, DSP: -10, BRAM: -5}
	got := neg.Scale(0.5)
	want := ResVec{LUT: -2, FF: -50, DSP: -5, BRAM: -3}
	if got != want {
		t.Fatalf("Scale(0.5) on negatives: got %v, want %v", got, want)
	}
	if r := (ResVec{LUT: -1}).Scale(0.4); r.LUT != 0 {
		t.Fatalf("-1 * 0.4 rounded to %d, want 0", r.LUT)
	}
	if r := (ResVec{LUT: -7}).Scale(0.1); r.LUT != -1 {
		t.Fatalf("-7 * 0.1 rounded to %d, want -1", r.LUT)
	}
}

func TestFitsIn(t *testing.T) {
	cap := LittleSlotCap
	if !(ResVec{LUT: cap.LUT, FF: cap.FF, DSP: cap.DSP, BRAM: cap.BRAM}).FitsIn(cap) {
		t.Fatal("exact fit rejected")
	}
	over := cap
	over.LUT++
	if over.FitsIn(cap) {
		t.Fatal("oversubscribed LUT accepted")
	}
}

func TestUtilization(t *testing.T) {
	half := ResVec{LUT: LittleSlotCap.LUT / 2, FF: LittleSlotCap.FF / 4}
	lut, ff := half.Utilization(LittleSlotCap)
	if lut < 0.49 || lut > 0.51 {
		t.Fatalf("LUT util %v", lut)
	}
	if ff < 0.24 || ff > 0.26 {
		t.Fatalf("FF util %v", ff)
	}
	// Zero capacity yields zero, not a division panic.
	l, f := half.Utilization(ResVec{})
	if l != 0 || f != 0 {
		t.Fatal("zero-capacity utilization not zero")
	}
}

func TestMaxRatio(t *testing.T) {
	use := ResVec{LUT: 10, FF: 80, DSP: 0, BRAM: 0}
	cap := ResVec{LUT: 100, FF: 100, DSP: 10, BRAM: 10}
	if r := use.MaxRatio(cap); r != 0.8 {
		t.Fatalf("MaxRatio %v, want 0.8 (FF bound)", r)
	}
}

func TestBigSlotIsTwiceLittle(t *testing.T) {
	if BigSlotCap.LUT != 2*LittleSlotCap.LUT || BigSlotCap.FF != 2*LittleSlotCap.FF ||
		BigSlotCap.DSP != 2*LittleSlotCap.DSP || BigSlotCap.BRAM != 2*LittleSlotCap.BRAM {
		t.Fatal("Big slot capacity is not exactly twice Little (paper requirement)")
	}
}

func TestSlotsFitDevice(t *testing.T) {
	// 8 Little slots (or 2 Big + 4 Little) plus a static region must
	// fit the ZCU216 fabric.
	var eight ResVec
	for i := 0; i < 8; i++ {
		eight = eight.Add(LittleSlotCap)
	}
	if !eight.FitsIn(ZCU216Total) {
		t.Fatal("Only.Little floorplan exceeds the device")
	}
	share := float64(eight.LUT) / float64(ZCU216Total.LUT)
	if share > 0.85 {
		t.Fatalf("no room left for the static region: slots use %.0f%%", share*100)
	}
}

func TestSlotStateMachine(t *testing.T) {
	s := &Slot{ID: 0, Class: LittleClass}
	if s.State() != SlotEmpty || !s.Free() {
		t.Fatal("new slot not empty/free")
	}
	if err := s.BeginLoad("bits"); err != nil {
		t.Fatal(err)
	}
	if s.State() != SlotLoading || s.Free() {
		t.Fatal("loading slot must not be free")
	}
	// Double-load and exec-while-loading are illegal.
	if err := s.BeginLoad("other"); err == nil {
		t.Fatal("double BeginLoad allowed")
	}
	if err := s.BeginExec(); err == nil {
		t.Fatal("exec during load allowed")
	}
	if err := s.CompleteLoad(); err != nil {
		t.Fatal(err)
	}
	if s.State() != SlotLoaded || s.Resident != "bits" {
		t.Fatalf("after load: %v resident=%v", s.State(), s.Resident)
	}
	if err := s.BeginExec(); err != nil {
		t.Fatal(err)
	}
	if s.State() != SlotBusy || s.Free() {
		t.Fatal("busy slot must not be free")
	}
	// Reconfiguring a busy slot is illegal (DFX cannot interrupt).
	if err := s.BeginLoad("x"); err == nil {
		t.Fatal("BeginLoad on busy slot allowed")
	}
	if err := s.CompleteExec(); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.State() != SlotEmpty || s.Resident != nil {
		t.Fatal("Clear did not empty slot")
	}
}

func TestSlotIllegalTransitions(t *testing.T) {
	s := &Slot{}
	if err := s.CompleteLoad(); err == nil {
		t.Fatal("CompleteLoad on empty slot allowed")
	}
	if err := s.BeginExec(); err == nil {
		t.Fatal("BeginExec on empty slot allowed")
	}
	if err := s.CompleteExec(); err == nil {
		t.Fatal("CompleteExec on empty slot allowed")
	}
}

func TestBuiltinPlatformBoards(t *testing.T) {
	cases := []struct {
		platform string
		big      int
		little   int
	}{
		{ZCU216OnlyLittle, 0, 8},
		{ZCU216BigLittle, 2, 4},
		{ZCU216Monolithic, 0, MonolithicStageRegions},
		{ZCU216OnlyBig, 4, 0},
	}
	for _, c := range cases {
		b := NewBoard(0, MustPlatform(c.platform))
		if got := b.Count("Big"); got != c.big {
			t.Errorf("%v: %d big slots, want %d", c.platform, got, c.big)
		}
		if got := b.Count("Little"); got != c.little {
			t.Errorf("%v: %d little slots, want %d", c.platform, got, c.little)
		}
		// Slot IDs are unique and ordered.
		for i, s := range b.Slots {
			if s.ID != i {
				t.Errorf("%v: slot %d has ID %d", c.platform, i, s.ID)
			}
		}
	}
}

func TestBoardFreeVsEmpty(t *testing.T) {
	b := NewBoard(0, MustPlatform(ZCU216OnlyLittle))
	s := b.Slots[0]
	if err := s.BeginLoad("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteLoad(); err != nil {
		t.Fatal(err)
	}
	// Loaded slot: free to reconfigure, but NOT empty (it belongs to
	// the app whose circuit is resident).
	if b.CountFree("Little") != 8 {
		t.Fatalf("CountFree %d, want 8", b.CountFree("Little"))
	}
	if b.CountEmpty("Little") != 7 {
		t.Fatalf("CountEmpty %d, want 7", b.CountEmpty("Little"))
	}
	if len(b.EmptySlots("Little")) != 7 {
		t.Fatal("EmptySlots mismatch")
	}
	if len(b.FreeSlots("Little")) != 8 {
		t.Fatal("FreeSlots mismatch")
	}
}

func TestBoardCapacityTotal(t *testing.T) {
	b := NewBoard(0, MustPlatform(ZCU216BigLittle))
	total := b.SlotCapacityTotal()
	want := BigSlotCap.Scale(2).Add(LittleSlotCap.Scale(4))
	if total != want {
		t.Fatalf("capacity total %v, want %v", total, want)
	}
}

func TestStringers(t *testing.T) {
	if LittleClass.Name != "Little" || BigClass.Name != "Big" {
		t.Fatal("slot class names")
	}
	if MustPlatform(ZCU216OnlyLittle).Title != "Only.Little" ||
		MustPlatform(ZCU216BigLittle).Title != "Big.Little" {
		t.Fatal("platform titles")
	}
	for _, s := range []SlotState{SlotEmpty, SlotLoading, SlotLoaded, SlotBusy} {
		if s.String() == "" {
			t.Fatal("empty SlotState string")
		}
	}
}
