package fabric

import "fmt"

// SlotState is the lifecycle of a reconfigurable slot.
type SlotState int

const (
	// SlotEmpty means no bitstream is resident.
	SlotEmpty SlotState = iota
	// SlotLoading means a partial reconfiguration is in flight.
	SlotLoading
	// SlotLoaded means a bitstream is resident and the slot is idle.
	SlotLoaded
	// SlotBusy means the resident circuit is executing a batch item.
	SlotBusy
)

func (s SlotState) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotLoading:
		return "loading"
	case SlotLoaded:
		return "loaded"
	case SlotBusy:
		return "busy"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Slot is one reconfigurable region on a board. The scheduler owns all
// transitions; Slot only validates them.
type Slot struct {
	ID int
	// Class is the slot's size class from the board's platform.
	Class SlotClass
	state SlotState

	// Resident identifies the loaded bitstream (opaque to fabric);
	// nil when empty or loading.
	Resident any
	// Pending identifies the bitstream being loaded during SlotLoading.
	Pending any
}

// ClassName returns the slot's class name ("Little").
func (s *Slot) ClassName() string { return s.Class.Name }

// Capacity returns the slot's resource capacity.
func (s *Slot) Capacity() ResVec { return s.Class.Cap }

// State returns the current lifecycle state.
func (s *Slot) State() SlotState { return s.state }

// Free reports whether the slot is neither loading nor executing.
func (s *Slot) Free() bool { return s.state == SlotEmpty || s.state == SlotLoaded }

// BeginLoad transitions the slot into SlotLoading. The previous resident
// circuit is evicted immediately (the DFX decoupler isolates the region
// for the whole load).
func (s *Slot) BeginLoad(pending any) error {
	if s.state == SlotLoading {
		return fmt.Errorf("fabric: slot %d already loading", s.ID)
	}
	if s.state == SlotBusy {
		return fmt.Errorf("fabric: slot %d busy; cannot reconfigure mid-item", s.ID)
	}
	s.state = SlotLoading
	s.Resident = nil
	s.Pending = pending
	return nil
}

// CompleteLoad transitions SlotLoading -> SlotLoaded.
func (s *Slot) CompleteLoad() error {
	if s.state != SlotLoading {
		return fmt.Errorf("fabric: slot %d not loading (state %v)", s.ID, s.state)
	}
	s.state = SlotLoaded
	s.Resident = s.Pending
	s.Pending = nil
	return nil
}

// BeginExec transitions SlotLoaded -> SlotBusy.
func (s *Slot) BeginExec() error {
	if s.state != SlotLoaded {
		return fmt.Errorf("fabric: slot %d cannot execute (state %v)", s.ID, s.state)
	}
	s.state = SlotBusy
	return nil
}

// CompleteExec transitions SlotBusy -> SlotLoaded.
func (s *Slot) CompleteExec() error {
	if s.state != SlotBusy {
		return fmt.Errorf("fabric: slot %d not executing (state %v)", s.ID, s.state)
	}
	s.state = SlotLoaded
	return nil
}

// Clear evicts any resident bitstream, returning the slot to SlotEmpty.
// Only legal when the slot is free.
func (s *Slot) Clear() error {
	if !s.Free() {
		return fmt.Errorf("fabric: slot %d cannot clear (state %v)", s.ID, s.state)
	}
	s.state = SlotEmpty
	s.Resident = nil
	s.Pending = nil
	return nil
}
