package fabric

import "fmt"

// SlotState is the lifecycle of a reconfigurable slot.
type SlotState int

const (
	// SlotEmpty means no bitstream is resident.
	SlotEmpty SlotState = iota
	// SlotLoading means a partial reconfiguration is in flight.
	SlotLoading
	// SlotLoaded means a bitstream is resident and the slot is idle.
	SlotLoaded
	// SlotBusy means the resident circuit is executing a batch item.
	SlotBusy
)

func (s SlotState) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotLoading:
		return "loading"
	case SlotLoaded:
		return "loaded"
	case SlotBusy:
		return "busy"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Slot is one reconfigurable region on a board. The scheduler owns all
// transitions; Slot only validates them.
type Slot struct {
	ID int
	// Class is the slot's size class from the board's platform.
	Class SlotClass
	state SlotState

	// failed marks a fault-injected region: the slot keeps its
	// lifecycle state (an in-flight load still completes its PCAP
	// transfer) but is unusable until Recover.
	failed bool

	// Resident identifies the loaded bitstream (opaque to fabric);
	// nil when empty or loading.
	Resident any
	// Pending identifies the bitstream being loaded during SlotLoading.
	Pending any
}

// ClassName returns the slot's class name ("Little").
func (s *Slot) ClassName() string { return s.Class.Name }

// Capacity returns the slot's resource capacity.
func (s *Slot) Capacity() ResVec { return s.Class.Cap }

// State returns the current lifecycle state.
func (s *Slot) State() SlotState { return s.state }

// Free reports whether the slot is neither loading nor executing.
// Failed slots are never free: allocation and eviction paths skip
// them until Recover.
func (s *Slot) Free() bool {
	return !s.failed && (s.state == SlotEmpty || s.state == SlotLoaded)
}

// Failed reports whether the slot is fault-injected out of service.
func (s *Slot) Failed() bool { return s.failed }

// Fail marks the slot out of service. The caller (the engine) owns
// the teardown of any occupant: executing/loaded stages are evicted
// synchronously; an in-flight load keeps the slot in SlotLoading and
// the PR completion callback finishes the teardown via AbortLoad.
func (s *Slot) Fail() { s.failed = true }

// Recover returns a failed slot to service. Occupancy teardown has
// already happened at Fail time (or is pending on an in-flight load's
// completion), so the region comes back empty and allocatable.
func (s *Slot) Recover() { s.failed = false }

// AbortLoad cancels an in-flight partial reconfiguration:
// SlotLoading -> SlotEmpty with nothing resident. Legal regardless of
// the failed flag — it is exactly how a load into a region that died
// mid-transfer (or whose app crashed during a retry backoff) is torn
// down when its PCAP job completes.
func (s *Slot) AbortLoad() error {
	if s.state != SlotLoading {
		return fmt.Errorf("fabric: slot %d not loading (state %v); cannot abort", s.ID, s.state)
	}
	s.state = SlotEmpty
	s.Resident = nil
	s.Pending = nil
	return nil
}

// Scrub force-evicts a dead region's occupant: SlotLoaded/SlotBusy ->
// SlotEmpty regardless of the failed flag. The engine uses it when
// tearing down the victim of a slot failure — Clear is gated on
// Free(), which a failed slot never satisfies, and skipping the
// teardown would leave a stale resident that the allocator can never
// reclaim. An in-flight load cannot be scrubbed; it finishes its PCAP
// transfer and tears down via AbortLoad.
func (s *Slot) Scrub() error {
	if s.state == SlotLoading {
		return fmt.Errorf("fabric: slot %d loading; teardown must wait for AbortLoad", s.ID)
	}
	s.state = SlotEmpty
	s.Resident = nil
	s.Pending = nil
	return nil
}

// BeginLoad transitions the slot into SlotLoading. The previous resident
// circuit is evicted immediately (the DFX decoupler isolates the region
// for the whole load).
func (s *Slot) BeginLoad(pending any) error {
	if s.state == SlotLoading {
		return fmt.Errorf("fabric: slot %d already loading", s.ID)
	}
	if s.state == SlotBusy {
		return fmt.Errorf("fabric: slot %d busy; cannot reconfigure mid-item", s.ID)
	}
	s.state = SlotLoading
	s.Resident = nil
	s.Pending = pending
	return nil
}

// CompleteLoad transitions SlotLoading -> SlotLoaded.
func (s *Slot) CompleteLoad() error {
	if s.state != SlotLoading {
		return fmt.Errorf("fabric: slot %d not loading (state %v)", s.ID, s.state)
	}
	s.state = SlotLoaded
	s.Resident = s.Pending
	s.Pending = nil
	return nil
}

// BeginExec transitions SlotLoaded -> SlotBusy.
func (s *Slot) BeginExec() error {
	if s.state != SlotLoaded {
		return fmt.Errorf("fabric: slot %d cannot execute (state %v)", s.ID, s.state)
	}
	s.state = SlotBusy
	return nil
}

// CompleteExec transitions SlotBusy -> SlotLoaded.
func (s *Slot) CompleteExec() error {
	if s.state != SlotBusy {
		return fmt.Errorf("fabric: slot %d not executing (state %v)", s.ID, s.state)
	}
	s.state = SlotLoaded
	return nil
}

// Clear evicts any resident bitstream, returning the slot to SlotEmpty.
// Only legal when the slot is free.
func (s *Slot) Clear() error {
	if !s.Free() {
		return fmt.Errorf("fabric: slot %d cannot clear (state %v)", s.ID, s.state)
	}
	s.state = SlotEmpty
	s.Resident = nil
	s.Pending = nil
	return nil
}
