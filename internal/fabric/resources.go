package fabric

import (
	"fmt"
	"math"
)

// ResVec is a vector of FPGA resource counts. All slot capacities and
// task footprints are expressed as ResVecs.
type ResVec struct {
	LUT  int // look-up tables
	FF   int // flip-flops
	DSP  int // DSP48 blocks
	BRAM int // block-RAM tiles (36Kb)
}

// Add returns r + o componentwise.
func (r ResVec) Add(o ResVec) ResVec {
	return ResVec{r.LUT + o.LUT, r.FF + o.FF, r.DSP + o.DSP, r.BRAM + o.BRAM}
}

// Sub returns r - o componentwise.
func (r ResVec) Sub(o ResVec) ResVec {
	return ResVec{r.LUT - o.LUT, r.FF - o.FF, r.DSP - o.DSP, r.BRAM - o.BRAM}
}

// Scale returns r scaled by f, rounding to nearest (math.Round
// semantics: halves away from zero, negatives round toward zero
// magnitude — the old int(x+0.5) truncation rounded negative products
// toward +infinity).
func (r ResVec) Scale(f float64) ResVec {
	round := func(x int) int { return int(math.Round(float64(x) * f)) }
	return ResVec{round(r.LUT), round(r.FF), round(r.DSP), round(r.BRAM)}
}

// FitsIn reports whether every component of r is <= the corresponding
// component of capacity.
func (r ResVec) FitsIn(capacity ResVec) bool {
	return r.LUT <= capacity.LUT && r.FF <= capacity.FF &&
		r.DSP <= capacity.DSP && r.BRAM <= capacity.BRAM
}

// NonNegative reports whether all components are >= 0.
func (r ResVec) NonNegative() bool {
	return r.LUT >= 0 && r.FF >= 0 && r.DSP >= 0 && r.BRAM >= 0
}

// IsZero reports whether all components are zero.
func (r ResVec) IsZero() bool { return r == ResVec{} }

// Utilization returns the componentwise ratio used/capacity for LUT and
// FF, the two resources the paper reports. Zero-capacity components
// yield zero utilization.
func (r ResVec) Utilization(capacity ResVec) (lut, ff float64) {
	if capacity.LUT > 0 {
		lut = float64(r.LUT) / float64(capacity.LUT)
	}
	if capacity.FF > 0 {
		ff = float64(r.FF) / float64(capacity.FF)
	}
	return lut, ff
}

// UtilRatios is the componentwise used/capacity breakdown across all
// four tracked resources. The paper reports only LUT/FF; heterogeneous
// platforms make DSP- and BRAM-bound circuits visible, so summaries can
// optionally carry the full vector.
type UtilRatios struct {
	LUT, FF, DSP, BRAM float64
}

// Ratios returns the componentwise used/capacity ratios for every
// resource. Zero-capacity components yield zero utilization.
func (r ResVec) Ratios(capacity ResVec) UtilRatios {
	ratio := func(u, c int) float64 {
		if c <= 0 {
			return 0
		}
		return float64(u) / float64(c)
	}
	return UtilRatios{
		LUT:  ratio(r.LUT, capacity.LUT),
		FF:   ratio(r.FF, capacity.FF),
		DSP:  ratio(r.DSP, capacity.DSP),
		BRAM: ratio(r.BRAM, capacity.BRAM),
	}
}

// MaxRatio returns the largest used/capacity ratio over all nonzero
// capacity components — the binding constraint when packing.
func (r ResVec) MaxRatio(capacity ResVec) float64 {
	max := 0.0
	ratio := func(u, c int) float64 {
		if c <= 0 {
			return 0
		}
		return float64(u) / float64(c)
	}
	for _, v := range []float64{
		ratio(r.LUT, capacity.LUT),
		ratio(r.FF, capacity.FF),
		ratio(r.DSP, capacity.DSP),
		ratio(r.BRAM, capacity.BRAM),
	} {
		if v > max {
			max = v
		}
	}
	return max
}

func (r ResVec) String() string {
	return fmt.Sprintf("LUT=%d FF=%d DSP=%d BRAM=%d", r.LUT, r.FF, r.DSP, r.BRAM)
}

// ZCU216 device totals (XCZU49DR RFSoC), rounded to the datasheet scale.
// Only the PL fabric matters to the scheduler.
var ZCU216Total = ResVec{LUT: 425_280, FF: 850_560, DSP: 4272, BRAM: 1080}

// LittleSlotCap is the resource capacity of one Little slot. Eight
// Little slots plus the static region tile the ZCU216 fabric; the
// static region keeps roughly 20% for AXI interconnect, slot
// interfaces, DFX decouplers and the cross-board switching module.
var LittleSlotCap = ResVec{LUT: 42_000, FF: 84_000, DSP: 420, BRAM: 104}

// BigSlotCap is exactly twice LittleSlotCap, per the paper ("the
// resource capacity of each Big slot is twice that of a Little slot").
var BigSlotCap = ResVec{
	LUT:  2 * LittleSlotCap.LUT,
	FF:   2 * LittleSlotCap.FF,
	DSP:  2 * LittleSlotCap.DSP,
	BRAM: 2 * LittleSlotCap.BRAM,
}
