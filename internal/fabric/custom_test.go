package fabric

import "testing"

func TestNewCustomBoard(t *testing.T) {
	b := NewCustomBoard(0, 1, 6)
	if b.Count("Big") != 1 || b.Count("Little") != 6 {
		t.Fatalf("1B+6L board has %dB+%dL", b.Count("Big"), b.Count("Little"))
	}
	if b.Platform.Title != "Big.Little" {
		t.Fatal("mixed board not reported as Big.Little")
	}
	if NewCustomBoard(0, 0, 8).Platform.Title != "Only.Little" {
		t.Fatal("all-little board not reported as Only.Little")
	}
	// IDs remain unique and ordered.
	for i, s := range b.Slots {
		if s.ID != i {
			t.Fatal("custom board slot IDs broken")
		}
	}
}

func TestNewCustomBoardRejectsOversizedMix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3B+3L (9 Little-equivalents) did not panic")
		}
	}()
	NewCustomBoard(0, 3, 3)
}

func TestNewCustomBoardRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count did not panic")
		}
	}()
	NewCustomBoard(0, -1, 4)
}

func TestCustomBoardAreaEquivalence(t *testing.T) {
	// Every legal mix tiles at most the same fabric area as 8 Little.
	eight := NewBoard(0, MustPlatform(ZCU216OnlyLittle)).SlotCapacityTotal()
	for _, mix := range [][2]int{{0, 8}, {1, 6}, {2, 4}, {3, 2}, {4, 0}} {
		b := NewCustomBoard(0, mix[0], mix[1])
		if !b.SlotCapacityTotal().FitsIn(eight) {
			t.Errorf("%dB+%dL exceeds the Only.Little area", mix[0], mix[1])
		}
	}
}
