package migrate

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/interlink"
	"versaslot/internal/sim"
)

// Payload prices a live migration: application descriptors plus the
// pending input buffers of every migrating app travel over the Aurora
// link via DMA.
type Payload struct {
	Apps  int
	Bytes int64
}

// DescriptorBytes is the control-state size per application: task
// table, batch progress, allocation record, buffer descriptors.
const DescriptorBytes = 4 << 10

// BuildPayload sums the transfer volume for apps: per app one
// descriptor block plus the input buffers of items not yet through the
// first stage (completed items' outputs have already been drained to
// the host; in-flight work stays on the source board by design).
func BuildPayload(apps []*appmodel.App) Payload {
	p := Payload{Apps: len(apps)}
	for _, a := range apps {
		remaining := a.Batch
		if len(a.Stages) > 0 {
			done := a.Stages[0].Done
			if done > remaining {
				done = remaining
			}
			remaining -= done
		}
		p.Bytes += DescriptorBytes + int64(remaining)*a.Spec.ItemBytes
	}
	return p
}

// Migration is one completed live migration's record.
type Migration struct {
	At       sim.Time
	Apps     int
	Bytes    int64
	Duration sim.Duration
}

// CostModel extends a migration's price with checkpoint/restore
// semantics (the fault subsystem's checkpoint injector installs one):
// each completed batch item adds BytesPerItem of checkpointed
// intermediate state to the transfer, and the destination pays
// RestoreDelay to rehydrate it before the apps re-enter scheduling.
// A nil model is the classic descriptor+input-buffer payload.
type CostModel struct {
	BytesPerItem int64
	RestoreDelay sim.Duration
}

// checkpointBytes sums the extra transfer volume for apps' completed
// per-stage progress.
func (m *CostModel) checkpointBytes(apps []*appmodel.App) int64 {
	var bytes int64
	for _, a := range apps {
		for _, st := range a.Stages {
			bytes += int64(st.Done) * m.BytesPerItem
		}
	}
	return bytes
}

// Execute transfers apps over link and delivers them via deliver. The
// returned record carries the switching overhead the paper reports
// (1.13 ms average on their cluster).
func Execute(k *sim.Kernel, link *interlink.Link, apps []*appmodel.App, deliver func([]*appmodel.App), record func(Migration)) {
	ExecuteModel(k, link, apps, nil, deliver, record)
}

// ExecuteModel is Execute with an optional checkpoint/restore cost
// model applied to the payload and delivery.
func ExecuteModel(k *sim.Kernel, link *interlink.Link, apps []*appmodel.App, model *CostModel, deliver func([]*appmodel.App), record func(Migration)) {
	payload := BuildPayload(apps)
	if model != nil {
		payload.Bytes += model.checkpointBytes(apps)
	}
	start := k.Now()
	for _, a := range apps {
		a.State = appmodel.StateMigrating
		a.Migrated++
		appmodel.ResetStages(a)
	}
	link.Transfer("live-migration", payload.Bytes, func() {
		finish := func() {
			for _, a := range apps {
				a.State = appmodel.StateWaiting
			}
			m := Migration{
				At:       k.Now(),
				Apps:     payload.Apps,
				Bytes:    payload.Bytes,
				Duration: k.Now().Sub(start),
			}
			deliver(apps)
			if record != nil {
				record(m)
			}
		}
		if model != nil && model.RestoreDelay > 0 {
			// The restore completes at the link's priority: it is the
			// tail of the transfer, not a board-local event.
			k.ScheduleP(model.RestoreDelay, link.Priority(), finish)
			return
		}
		finish()
	})
}
