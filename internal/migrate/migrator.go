package migrate

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/interlink"
	"versaslot/internal/sim"
)

// Payload prices a live migration: application descriptors plus the
// pending input buffers of every migrating app travel over the Aurora
// link via DMA.
type Payload struct {
	Apps  int
	Bytes int64
}

// DescriptorBytes is the control-state size per application: task
// table, batch progress, allocation record, buffer descriptors.
const DescriptorBytes = 4 << 10

// BuildPayload sums the transfer volume for apps: per app one
// descriptor block plus the input buffers of items not yet through the
// first stage (completed items' outputs have already been drained to
// the host; in-flight work stays on the source board by design).
func BuildPayload(apps []*appmodel.App) Payload {
	p := Payload{Apps: len(apps)}
	for _, a := range apps {
		remaining := a.Batch
		if len(a.Stages) > 0 {
			done := a.Stages[0].Done
			if done > remaining {
				done = remaining
			}
			remaining -= done
		}
		p.Bytes += DescriptorBytes + int64(remaining)*a.Spec.ItemBytes
	}
	return p
}

// Migration is one completed live migration's record.
type Migration struct {
	At       sim.Time
	Apps     int
	Bytes    int64
	Duration sim.Duration
}

// Execute transfers apps over link and delivers them via deliver. The
// returned record carries the switching overhead the paper reports
// (1.13 ms average on their cluster).
func Execute(k *sim.Kernel, link *interlink.Link, apps []*appmodel.App, deliver func([]*appmodel.App), record func(Migration)) {
	payload := BuildPayload(apps)
	start := k.Now()
	for _, a := range apps {
		a.State = appmodel.StateMigrating
		a.Migrated++
		appmodel.ResetStages(a)
	}
	link.Transfer("live-migration", payload.Bytes, func() {
		for _, a := range apps {
			a.State = appmodel.StateWaiting
		}
		m := Migration{
			At:       k.Now(),
			Apps:     payload.Apps,
			Bytes:    payload.Bytes,
			Duration: k.Now().Sub(start),
		}
		deliver(apps)
		if record != nil {
			record(m)
		}
	})
}
