package migrate

import (
	"versaslot/internal/appmodel"
)

// DSwitchInputs are the quantities Eq. 1 consumes, gathered over one
// evaluation window (n updates of the application candidate queue).
type DSwitchInputs struct {
	// BlockedTasks is N_blocked_tasks: tasks whose PR waited behind
	// another load during the window.
	BlockedTasks uint64
	// PRTasks is N_PR: PR loads issued by completed and running apps.
	PRTasks uint64
	// Apps is N_apps: applications in the candidate queue.
	Apps int
	// TotalBatch is N_batch: summed batch sizes of those candidates.
	TotalBatch int
}

// DSwitch evaluates Eq. 1:
//
//	D_switch = (N_blocked_tasks / N_PR) * (N_apps / N_batch)
//
// clamped to [0, 1]. Empty windows (no PRs or no candidates) yield 0 —
// an idle system has nothing to switch for.
func DSwitch(in DSwitchInputs) float64 {
	if in.PRTasks == 0 || in.TotalBatch == 0 || in.Apps == 0 {
		return 0
	}
	d := (float64(in.BlockedTasks) / float64(in.PRTasks)) *
		(float64(in.Apps) / float64(in.TotalBatch))
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// GatherCandidates sums N_apps and N_batch over the candidate queue
// (waiting + ready + running apps).
func GatherCandidates(apps []*appmodel.App) (n, totalBatch int) {
	for _, a := range apps {
		if a.State == appmodel.StateFinished || a.State == appmodel.StatePending {
			continue
		}
		n++
		totalBatch += a.Batch
	}
	return n, totalBatch
}
