// Package migrate implements the cluster-level machinery of Section
// III-D: the performance-degradation metric D_switch (Eq. 1), the
// Schmitt-trigger switching loop with its buffer zone and pre-warming
// (Fig. 4), and the live migration engine that moves ready
// applications between boards over the interlink.
package migrate
