package migrate

import (
	"testing"
	"testing/quick"

	"versaslot/internal/appmodel"
	"versaslot/internal/interlink"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func TestDSwitchFormula(t *testing.T) {
	// (blocked/PR) * (apps/batch), from Eq. 1.
	d := DSwitch(DSwitchInputs{BlockedTasks: 10, PRTasks: 20, Apps: 4, TotalBatch: 40})
	if d != 0.05 {
		t.Fatalf("D=%v, want 0.5*0.1=0.05", d)
	}
}

func TestDSwitchClampsToUnitInterval(t *testing.T) {
	d := DSwitch(DSwitchInputs{BlockedTasks: 1000, PRTasks: 1, Apps: 10, TotalBatch: 10})
	if d != 1 {
		t.Fatalf("D=%v, want clamp at 1", d)
	}
}

func TestDSwitchZeroGuards(t *testing.T) {
	cases := []DSwitchInputs{
		{BlockedTasks: 5, PRTasks: 0, Apps: 3, TotalBatch: 30},
		{BlockedTasks: 5, PRTasks: 10, Apps: 0, TotalBatch: 30},
		{BlockedTasks: 5, PRTasks: 10, Apps: 3, TotalBatch: 0},
	}
	for i, in := range cases {
		if d := DSwitch(in); d != 0 {
			t.Errorf("case %d: D=%v, want 0", i, d)
		}
	}
}

// Property: D_switch is always within [0, 1].
func TestDSwitchBounded(t *testing.T) {
	f := func(blocked, prs uint32, apps, batch uint16) bool {
		d := DSwitch(DSwitchInputs{
			BlockedTasks: uint64(blocked),
			PRTasks:      uint64(prs),
			Apps:         int(apps),
			TotalBatch:   int(batch),
		})
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherCandidates(t *testing.T) {
	apps := []*appmodel.App{
		appmodel.NewApp(0, workload.IC, 10, 0),
		appmodel.NewApp(1, workload.AN, 20, 0),
		appmodel.NewApp(2, workload.OF, 30, 0),
	}
	apps[0].State = appmodel.StateWaiting
	apps[1].State = appmodel.StateRunning
	apps[2].State = appmodel.StateFinished // excluded
	n, batch := GatherCandidates(apps)
	if n != 2 || batch != 30 {
		t.Fatalf("candidates %d/%d, want 2/30", n, batch)
	}
}

func TestTriggerHysteresis(t *testing.T) {
	tr := NewTrigger(Base, 0.1, 0.0125)
	// Below both thresholds: stay.
	if d := tr.Observe(0.005); d == Switch {
		t.Fatal("switched below thresholds")
	}
	// Rising through the buffer zone: prewarm, not switch.
	if d := tr.Observe(0.05); d != Prewarm {
		t.Fatalf("rising in buffer zone: %v, want prewarm", d)
	}
	// Crossing T1: switch to Big.Little.
	if d := tr.Observe(0.12); d != Switch {
		t.Fatal("did not switch at T1")
	}
	if tr.Mode() != Boost {
		t.Fatal("mode did not flip")
	}
	// Still above T2: no switch back (hysteresis).
	if d := tr.Observe(0.05); d == Switch {
		t.Fatal("chattered inside the band")
	}
	// Falling to T2: switch back.
	if d := tr.Observe(0.01); d != Switch {
		t.Fatal("did not switch back at T2")
	}
	if tr.Mode() != Base {
		t.Fatal("mode did not flip back")
	}
}

func TestTriggerPrewarmDirection(t *testing.T) {
	tr := NewTrigger(Boost, 0.1, 0.0125)
	if tr.Target() != Base {
		t.Fatal("target of Boost must be Base")
	}
	// Falling inside the band: anticipate Only.Little.
	tr.Observe(0.09)
	if d := tr.Observe(0.05); d != Prewarm {
		t.Fatalf("falling in band: %v", d)
	}
}

// Property: feeding any sample sequence never produces two consecutive
// Switch decisions without the value crossing the opposite threshold.
func TestTriggerNoChatter(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := NewTrigger(Base, 0.1, 0.0125)
		lastSwitch := -1
		for i, v := range raw {
			d := float64(v) / 255.0
			if tr.Observe(d) == Switch {
				if lastSwitch >= 0 && i == lastSwitch {
					return false
				}
				lastSwitch = i
			}
		}
		// Hysteresis invariant: at most one switch per crossing; since
		// observations alternate regimes only via thresholds, mode and
		// last observation must be consistent.
		if tr.Mode() == Boost && tr.Last() <= 0.0125 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTriggerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted thresholds did not panic")
		}
	}()
	NewTrigger(Base, 0.01, 0.1)
}

func TestTriggerRejectsUnknownMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range trigger mode did not panic")
		}
	}()
	NewTrigger(Mode(7), 0.1, 0.0125)
}

func TestBuildPayload(t *testing.T) {
	a := appmodel.NewApp(0, workload.IC, 10, 0)
	appmodel.TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	p := BuildPayload([]*appmodel.App{a})
	want := int64(DescriptorBytes) + 10*workload.IC.ItemBytes
	if p.Bytes != want {
		t.Fatalf("payload %d, want %d", p.Bytes, want)
	}
	// Items already through the first stage do not travel.
	a.Stages[0].Done = 4
	p = BuildPayload([]*appmodel.App{a})
	want = int64(DescriptorBytes) + 6*workload.IC.ItemBytes
	if p.Bytes != want {
		t.Fatalf("payload after progress %d, want %d", p.Bytes, want)
	}
}

func TestExecuteDeliversAndRecords(t *testing.T) {
	k := sim.NewKernel(1)
	link := interlink.NewDefault(k, "test")
	a := appmodel.NewApp(0, workload.ThreeDR, 8, 0)
	appmodel.TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	a.Stages[0].Done = 3 // progress must survive
	a.State = appmodel.StateWaiting

	var delivered []*appmodel.App
	var rec Migration
	Execute(k, link, []*appmodel.App{a}, func(apps []*appmodel.App) {
		delivered = apps
	}, func(m Migration) { rec = m })

	if a.State != appmodel.StateMigrating {
		t.Fatal("app not marked migrating during transfer")
	}
	k.Run()
	if len(delivered) != 1 || delivered[0] != a {
		t.Fatal("app not delivered")
	}
	if a.State != appmodel.StateWaiting {
		t.Fatal("app state not restored")
	}
	if a.Stages[0].Done != 3 {
		t.Fatal("migration lost completed work")
	}
	if a.Migrated != 1 {
		t.Fatal("migration count not incremented")
	}
	if rec.Apps != 1 || rec.Bytes <= 0 || rec.Duration <= 0 {
		t.Fatalf("bad migration record: %+v", rec)
	}
	// The paper's overhead scale: ~1 ms for a small payload.
	if rec.Duration > 20*sim.Millisecond {
		t.Fatalf("switching overhead %v far above the paper's ~1.13ms scale", rec.Duration)
	}
}
