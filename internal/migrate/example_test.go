package migrate_test

import (
	"fmt"

	"versaslot/internal/migrate"
)

// The Schmitt-trigger loop of Fig. 4: rising contention flips to
// Big.Little at T1; the system switches back at T2 only after the
// congestion fully drains — the band in between never chatters.
func ExampleTrigger() {
	tr := migrate.NewTrigger(migrate.Base,
		migrate.DefaultThresholdUp, migrate.DefaultThresholdDown)
	for _, d := range []float64{0.02, 0.06, 0.12, 0.05, 0.02, 0.01} {
		fmt.Printf("D=%.2f -> %s (mode %s)\n", d, tr.Observe(d), tr.Mode())
	}
	// Output:
	// D=0.02 -> prewarm (mode base)
	// D=0.06 -> prewarm (mode base)
	// D=0.12 -> switch (mode boost)
	// D=0.05 -> prewarm (mode boost)
	// D=0.02 -> prewarm (mode boost)
	// D=0.01 -> switch (mode base)
}

// Eq. 1 in isolation.
func ExampleDSwitch() {
	d := migrate.DSwitch(migrate.DSwitchInputs{
		BlockedTasks: 30,
		PRTasks:      60,
		Apps:         8,
		TotalBatch:   140,
	})
	fmt.Printf("%.4f\n", d)
	// Output:
	// 0.0286
}
