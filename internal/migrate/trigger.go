package migrate

import "fmt"

// Mode indexes the two platforms of a switching pair: Base is the
// start configuration (the paper's Only.Little board), Boost the
// configuration the trigger switches to under sustained contention
// (the Big.Little board). The indices are stable across platform
// assignments, so traces serialize identically whatever platforms a
// pair runs.
type Mode int

const (
	// Base is the pair's start platform.
	Base Mode = iota
	// Boost is the pair's contention platform.
	Boost
)

func (m Mode) String() string {
	switch m {
	case Base:
		return "base"
	case Boost:
		return "boost"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Other returns the opposite mode.
func (m Mode) Other() Mode {
	if m == Base {
		return Boost
	}
	return Base
}

// Decision is what the switching loop asks for after an update.
type Decision int

const (
	// Stay: no action.
	Stay Decision = iota
	// Prewarm: D_switch entered the buffer zone moving toward a
	// threshold; pre-configure the anticipated target board.
	Prewarm
	// Switch: a threshold was crossed; migrate live workload.
	Switch
)

func (d Decision) String() string {
	switch d {
	case Stay:
		return "stay"
	case Prewarm:
		return "prewarm"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Trigger is the Schmitt-trigger switching loop of Fig. 4: rising
// D_switch past T1 (ThresholdUp) flips Base -> Boost (the paper's
// Only.Little -> Big.Little); falling past T2 (ThresholdDown) flips
// back. The [T2, T1] band is the buffer zone that prevents
// oscillation; entering it pre-warms the anticipated configuration.
type Trigger struct {
	// ThresholdUp is T_{Base -> Boost} (paper: 0.1).
	ThresholdUp float64
	// ThresholdDown is T_{Boost -> Base} (paper: 0.0125).
	ThresholdDown float64

	mode Mode
	last float64
}

// NewTrigger returns a trigger starting in mode with the paper's
// thresholds unless overridden.
func NewTrigger(mode Mode, up, down float64) *Trigger {
	if up <= down {
		panic("migrate: ThresholdUp must exceed ThresholdDown")
	}
	if mode != Base && mode != Boost {
		panic("migrate: trigger mode must be Base or Boost")
	}
	return &Trigger{ThresholdUp: up, ThresholdDown: down, mode: mode}
}

// DefaultThresholdUp and DefaultThresholdDown are the values of Fig. 8.
const (
	DefaultThresholdUp   = 0.1
	DefaultThresholdDown = 0.0125
)

// Mode returns the configuration the trigger currently calls for.
func (t *Trigger) Mode() Mode { return t.mode }

// Last returns the most recent D_switch observation.
func (t *Trigger) Last() float64 { return t.last }

// Target returns the configuration a Switch (or Prewarm) decision aims
// at: the opposite of the current mode.
func (t *Trigger) Target() Mode { return t.mode.Other() }

// Observe feeds one D_switch sample and returns the decision. On
// Switch, the trigger's mode flips to Target's value.
func (t *Trigger) Observe(d float64) Decision {
	prev := t.last
	t.last = d
	switch t.mode {
	case Base:
		if d >= t.ThresholdUp {
			t.mode = Boost
			return Switch
		}
		// Buffer zone, rising toward T1: anticipate the boost platform.
		if d > t.ThresholdDown && d > prev {
			return Prewarm
		}
	case Boost:
		if d <= t.ThresholdDown {
			t.mode = Base
			return Switch
		}
		// Buffer zone, falling toward T2: anticipate the base platform.
		if d < t.ThresholdUp && d < prev {
			return Prewarm
		}
	}
	return Stay
}
