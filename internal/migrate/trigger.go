package migrate

import (
	"fmt"

	"versaslot/internal/fabric"
)

// Decision is what the switching loop asks for after an update.
type Decision int

const (
	// Stay: no action.
	Stay Decision = iota
	// Prewarm: D_switch entered the buffer zone moving toward a
	// threshold; pre-configure the anticipated target board.
	Prewarm
	// Switch: a threshold was crossed; migrate live workload.
	Switch
)

func (d Decision) String() string {
	switch d {
	case Stay:
		return "stay"
	case Prewarm:
		return "prewarm"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Trigger is the Schmitt-trigger switching loop of Fig. 4: rising
// D_switch past T1 (ThresholdUp) flips Only.Little -> Big.Little;
// falling past T2 (ThresholdDown) flips back. The [T2, T1] band is the
// buffer zone that prevents oscillation; entering it pre-warms the
// anticipated configuration.
type Trigger struct {
	// ThresholdUp is T_{Only.Little -> Big.Little} (paper: 0.1).
	ThresholdUp float64
	// ThresholdDown is T_{Big.Little -> Only.Little} (paper: 0.0125).
	ThresholdDown float64

	mode fabric.BoardConfig
	last float64
}

// NewTrigger returns a trigger starting in mode with the paper's
// thresholds unless overridden.
func NewTrigger(mode fabric.BoardConfig, up, down float64) *Trigger {
	if up <= down {
		panic("migrate: ThresholdUp must exceed ThresholdDown")
	}
	if mode != fabric.OnlyLittle && mode != fabric.BigLittle {
		panic("migrate: trigger mode must be Only.Little or Big.Little")
	}
	return &Trigger{ThresholdUp: up, ThresholdDown: down, mode: mode}
}

// DefaultThresholdUp and DefaultThresholdDown are the values of Fig. 8.
const (
	DefaultThresholdUp   = 0.1
	DefaultThresholdDown = 0.0125
)

// Mode returns the configuration the trigger currently calls for.
func (t *Trigger) Mode() fabric.BoardConfig { return t.mode }

// Last returns the most recent D_switch observation.
func (t *Trigger) Last() float64 { return t.last }

// Target returns the configuration a Switch (or Prewarm) decision aims
// at: the opposite of the current mode.
func (t *Trigger) Target() fabric.BoardConfig {
	if t.mode == fabric.OnlyLittle {
		return fabric.BigLittle
	}
	return fabric.OnlyLittle
}

// Observe feeds one D_switch sample and returns the decision. On
// Switch, the trigger's mode flips to Target's value.
func (t *Trigger) Observe(d float64) Decision {
	prev := t.last
	t.last = d
	switch t.mode {
	case fabric.OnlyLittle:
		if d >= t.ThresholdUp {
			t.mode = fabric.BigLittle
			return Switch
		}
		// Buffer zone, rising toward T1: anticipate Big.Little.
		if d > t.ThresholdDown && d > prev {
			return Prewarm
		}
	case fabric.BigLittle:
		if d <= t.ThresholdDown {
			t.mode = fabric.OnlyLittle
			return Switch
		}
		// Buffer zone, falling toward T2: anticipate Only.Little.
		if d < t.ThresholdUp && d < prev {
			return Prewarm
		}
	}
	return Stay
}
