package sched

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sim"
)

// bundleOnlySpec has one task too large for a Little slot while its
// triple still consolidates into a Big slot — so the app is hostable
// only through bundling. The generator emits no Little partial for the
// oversized task; the policy must not build (or plan) a little-class
// pipeline for such an app.
func bundleOnlySpec() *appmodel.AppSpec {
	return &appmodel.AppSpec{
		Name: "BundleOnly", EtaLUT: 1, EtaFF: 1, MonoFactor: 0.8, ItemBytes: 1024,
		Tasks: []appmodel.TaskSpec{
			{Name: "wide", Time: 20 * sim.Millisecond, Impl: fabric.ResVec{LUT: 50_000, FF: 100_000}},
			{Name: "a", Time: 10 * sim.Millisecond, Impl: fabric.ResVec{LUT: 10_000, FF: 20_000}},
			{Name: "b", Time: 10 * sim.Millisecond, Impl: fabric.ResVec{LUT: 10_000, FF: 20_000}},
		},
	}
}

// TestVersaSlotBLBundleOnlyApp: an app admitted via the bundle-only
// escape of the hostability check must execute in big-class slots to
// completion instead of panicking on the missing little-class partial.
func TestVersaSlotBLBundleOnlyApp(t *testing.T) {
	spec := bundleOnlySpec()
	if spec.Tasks[0].Impl.FitsIn(fabric.LittleSlotCap) {
		t.Fatal("test spec's wide task unexpectedly fits a Little slot")
	}
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateApp(repo, spec)
	k := sim.NewKernel(1)
	e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216BigLittle)), hypervisor.DualCore, repo)
	p := NewVersaSlotBL()
	e.SetPolicy(p)
	a := mkApp(0, spec, 4, 0)
	e.InjectNow(a)
	k.Run()
	e.FlushResidency()
	if n := e.UnfinishedCount(); n != 0 {
		t.Fatalf("%d apps unfinished", n)
	}
	for _, st := range a.Stages {
		if st.Class != "Big" {
			t.Fatalf("stage %v ran in class %q, want Big", st, st.Class)
		}
	}
}
