package sched

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// testRig builds a ready-to-use engine without a policy driving it.
type testRig struct {
	k      *sim.Kernel
	engine *Engine
}

// nullPolicy satisfies Policy but makes no decisions; tests drive the
// engine directly.
type nullPolicy struct{ scheduled int }

func (n *nullPolicy) Name() string                        { return "null" }
func (n *nullPolicy) Init(*Engine)                        {}
func (n *nullPolicy) AppArrived(*appmodel.App)            {}
func (n *nullPolicy) Schedule()                           { n.scheduled++ }
func (n *nullPolicy) AppFinished(*appmodel.App)           {}
func (n *nullPolicy) ExtractMigratable() []*appmodel.App  { return nil }
func (n *nullPolicy) AcceptMigrated(apps []*appmodel.App) {}

func newRig(t *testing.T, platform string, model hypervisor.CoreModel) *testRig {
	t.Helper()
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	board := fabric.NewBoard(0, fabric.MustPlatform(platform))
	e := NewEngine(k, DefaultParams(), board, model, repo)
	e.SetPolicy(&nullPolicy{})
	return &testRig{k: k, engine: e}
}

func littleApp(id int, spec *appmodel.AppSpec, batch int) *appmodel.App {
	a := appmodel.NewApp(id, spec, batch, 0)
	appmodel.TaskStages(a, "Little", 1.0, func(i int) string {
		return bitstream.TaskName(spec.Name, spec.Tasks[i].Name, "Little")
	})
	a.State = appmodel.StateReady
	return a
}

func TestRequestPRLoadsStage(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 3)
	r.engine.Apps = append(r.engine.Apps, a)
	st := a.Stages[0]
	slot := r.engine.Board.Slots[0]
	r.engine.RequestPR(st, slot)
	if !st.Loading || st.Slot != slot {
		t.Fatal("stage not marked loading")
	}
	if slot.State() != fabric.SlotLoading {
		t.Fatal("slot not loading")
	}
	r.k.Run()
	if st.Loading || !st.Resident() {
		t.Fatal("stage not resident after load")
	}
	if slot.State() != fabric.SlotLoaded {
		t.Fatal("slot not loaded")
	}
	if r.engine.Col.PRLoads != 1 {
		t.Fatal("PR not counted")
	}
}

func TestRequestPRKindMismatchPanics(t *testing.T) {
	r := newRig(t, fabric.ZCU216BigLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 3)
	bigSlot := r.engine.Board.SlotsOf("Big")[0]
	defer func() {
		if recover() == nil {
			t.Error("little stage into big slot did not panic")
		}
	}()
	r.engine.RequestPR(a.Stages[0], bigSlot)
}

// TestSingleCorePRBlocksLaunch reproduces the paper's Fig. 2 blocking:
// a PCAP load on the scheduler core delays a pending item launch by the
// full load duration.
func TestSingleCorePRBlocksLaunch(t *testing.T) {
	delays := map[hypervisor.CoreModel]sim.Duration{}
	for _, model := range []hypervisor.CoreModel{hypervisor.SingleCore, hypervisor.DualCore} {
		r := newRig(t, fabric.ZCU216OnlyLittle, model)
		a := littleApp(1, workload.IC, 2)
		r.engine.Apps = append(r.engine.Apps, a)
		st0 := a.Stages[0]
		// Make stage 0 resident instantly, then start a long PR for
		// stage 1 and immediately try to launch stage 0's first item.
		r.engine.PlaceResident(st0, r.engine.Board.Slots[0])
		r.engine.RequestPR(a.Stages[1], r.engine.Board.Slots[1])
		var started sim.Time
		launched := r.engine.LaunchItem(st0)
		if !launched {
			t.Fatal("launch rejected")
		}
		r.k.Run()
		// Done==1 first item executed; compute when it completed.
		started = a.Finish // not used; compute from stage instead
		_ = started
		delays[model] = sim.Duration(0)
		// The slot completed its first item at ItemTime + launch delay;
		// infer the delay from PCAP wait statistics instead: use the
		// scheduler core stats.
		stats := r.engine.Cores.Sched.Stats()
		delays[model] = stats.WaitByName["launch"]
	}
	if delays[hypervisor.SingleCore] <= delays[hypervisor.DualCore] {
		t.Fatalf("single-core launch wait (%v) not above dual-core (%v)",
			delays[hypervisor.SingleCore], delays[hypervisor.DualCore])
	}
	if delays[hypervisor.DualCore] > sim.Millisecond {
		t.Fatalf("dual-core launch waited %v behind PR", delays[hypervisor.DualCore])
	}
}

func TestLaunchItemGuards(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 2)
	st := a.Stages[1] // no input available yet
	r.engine.PlaceResident(st, r.engine.Board.Slots[0])
	if r.engine.LaunchItem(st) {
		t.Fatal("launched a stage with no upstream input")
	}
	st0 := a.Stages[0]
	if r.engine.LaunchItem(st0) {
		t.Fatal("launched a non-resident stage")
	}
}

func TestPumpRunsWholeApp(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.ThreeDR, 4)
	r.engine.Apps = append(r.engine.Apps, a)
	r.engine.Active = append(r.engine.Active, a)
	for i, st := range a.Stages {
		r.engine.PlaceResident(st, r.engine.Board.Slots[i])
	}
	// Re-pump on every activation via a driving policy.
	p := &pumpPolicy{e: r.engine, app: a}
	r.engine.policy = p
	r.engine.Activate()
	r.k.Run()
	if !a.Done() {
		t.Fatalf("app not finished: remaining %d", a.RemainingItems())
	}
	if a.State != appmodel.StateFinished {
		t.Fatal("state not finished")
	}
	if len(r.engine.Col.Responses) != 1 {
		t.Fatal("response not recorded")
	}
}

type pumpPolicy struct {
	nullPolicy
	e   *Engine
	app *appmodel.App
}

func (p *pumpPolicy) Schedule() { p.e.Pump(p.app) }

func TestEvictionAccounting(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 5)
	st := a.Stages[0]
	r.engine.PlaceResident(st, r.engine.Board.Slots[0])
	a.Started = true
	r.engine.EvictStage(st)
	if r.engine.Col.Preemptions != 1 {
		t.Fatal("unfinished eviction not counted as preemption")
	}
	if st.Slot != nil {
		t.Fatal("stage still placed")
	}
	if r.engine.Board.Slots[0].State() != fabric.SlotEmpty {
		t.Fatal("slot not emptied")
	}
}

func TestFullReconfigCost(t *testing.T) {
	r := newRig(t, fabric.ZCU216Monolithic, hypervisor.SingleCore)
	full := r.engine.Repo.MustGet(bitstream.FullName("IC"))
	cost := r.engine.FullReconfigCost(full)
	pcapOnly := r.engine.PCAP.LoadDuration(full)
	if cost < pcapOnly+r.engine.Params.FullReconfigInit {
		t.Fatalf("full reconfig %v below PCAP+init floor", cost)
	}
	// With caching disabled the SD stream is added.
	p2 := DefaultParams()
	p2.FullBitstreamCached = false
	r2 := newRig(t, fabric.ZCU216Monolithic, hypervisor.SingleCore)
	r2.engine.Params = p2
	if r2.engine.FullReconfigCost(full) <= cost {
		t.Fatal("uncached full reconfig not more expensive")
	}
}

func TestWindowCounters(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 2)
	// Two PRs back to back: the second sees one pending load.
	r.engine.RequestPR(a.Stages[0], r.engine.Board.Slots[0])
	r.engine.RequestPR(a.Stages[1], r.engine.Board.Slots[1])
	if r.engine.WindowPR != 2 {
		t.Fatalf("window PR %d", r.engine.WindowPR)
	}
	if r.engine.WindowBlocked != 1 {
		t.Fatalf("window blocked %d, want 1 (second behind first)", r.engine.WindowBlocked)
	}
	b, p := r.engine.ResetWindow()
	if b != 1 || p != 2 {
		t.Fatal("ResetWindow returned wrong counts")
	}
	if r.engine.WindowBlocked != 0 || r.engine.WindowPR != 0 {
		t.Fatal("window not reset")
	}
}

func TestUtilizationIntegrals(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.ThreeDR, 2)
	r.engine.Apps = append(r.engine.Apps, a)
	r.engine.Active = append(r.engine.Active, a)
	for i, st := range a.Stages {
		r.engine.PlaceResident(st, r.engine.Board.Slots[i])
	}
	p := &pumpPolicy{e: r.engine, app: a}
	r.engine.policy = p
	r.engine.Activate()
	r.k.Run()
	r.engine.FlushResidency()
	lut, ff := r.engine.Col.BusyUtilization()
	if lut <= 0 || ff <= 0 {
		t.Fatalf("no busy utilization recorded (lut=%v ff=%v)", lut, ff)
	}
	rlut, rff := r.engine.Col.Utilization()
	if rlut <= 0 || rff <= 0 {
		t.Fatal("no resident utilization recorded")
	}
	// Resident time covers at least the busy time.
	if rlut < lut*0.99 {
		t.Fatalf("resident integral %v below busy %v", rlut, lut)
	}
}

func TestCheckQuiescentPanicsOnDeadlock(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 2)
	r.engine.Apps = append(r.engine.Apps, a) // never scheduled
	defer func() {
		if recover() == nil {
			t.Error("CheckQuiescent did not panic with unfinished apps")
		}
	}()
	r.engine.CheckQuiescent()
}

func TestFrozenFlag(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	if r.engine.Frozen() {
		t.Fatal("new engine frozen")
	}
	r.engine.SetFrozen(true)
	if !r.engine.Frozen() {
		t.Fatal("freeze did not stick")
	}
}

func TestRemoveActiveRejectsSlotHolders(t *testing.T) {
	r := newRig(t, fabric.ZCU216OnlyLittle, hypervisor.DualCore)
	a := littleApp(1, workload.IC, 2)
	r.engine.Active = append(r.engine.Active, a)
	r.engine.PlaceResident(a.Stages[0], r.engine.Board.Slots[0])
	defer func() {
		if recover() == nil {
			t.Error("RemoveActive with held slots did not panic")
		}
	}()
	r.engine.RemoveActive(a)
}
