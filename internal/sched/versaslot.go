package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/pipeline"
	"versaslot/internal/sim"
)

// VersaSlotBL is the paper's headline system: the Big.Little slot
// architecture driven by Algorithm 1 (slot allocation with primary
// allocation, redistribution, binding and rebinding) and Algorithm 2
// (dual-core scheduling with online 3-in-1 bundling and asynchronous
// PR). It ranks the board's slot classes by capacity: the largest
// class plays the Big (bundle) role, the smallest the Little (task)
// role — so any heterogeneous platform works, with "Big"/"Little"
// meaning capacity rank, not hard-coded names. Pair it with a
// heterogeneous platform and hypervisor.DualCore.
type VersaSlotBL struct {
	e      *Engine
	big    fabric.SlotClass // largest-capacity class (bundle role)
	little fabric.SlotClass // smallest-capacity class (task role)

	cwait   []*appmodel.App // C_wait: apps awaiting slot allocation
	sBig    []*appmodel.App // S_Big: apps bound to big-class slots
	sLittle []*appmodel.App // S_Little: apps bound to little-class slots

	rBig    map[*appmodel.App]int // R^B_Ai
	rLittle map[*appmodel.App]int // R^L_Ai
	optB    map[*appmodel.App]int // O^B_Ai
	optL    map[*appmodel.App]int // O^L_Ai
	maxUseL map[*appmodel.App]int // redistribution ceiling

	lastPreempt sim.Time

	// Per-arrival planning scratch (plans are consumed synchronously)
	// and a rebind-iteration scratch (unbind mutates the bound lists).
	ev        pipeline.Eval
	planTimes []sim.Duration
	planExtra []sim.Duration
	scratch   []*appmodel.App
}

var _ Policy = (*VersaSlotBL)(nil)

// NewVersaSlotBL returns the Big.Little policy.
func NewVersaSlotBL() *VersaSlotBL { return &VersaSlotBL{} }

// Name implements Policy.
func (v *VersaSlotBL) Name() string { return KindVersaSlotBL.String() }

// Init implements Policy.
func (v *VersaSlotBL) Init(e *Engine) {
	if !e.Board.Platform.Heterogeneous() {
		panic("sched: VersaSlotBL requires a heterogeneous (multi-class) platform")
	}
	v.e = e
	v.big = e.Board.Platform.Largest()
	v.little = e.Board.Platform.Smallest()
	v.rBig = make(map[*appmodel.App]int)
	v.rLittle = make(map[*appmodel.App]int)
	v.optB = make(map[*appmodel.App]int)
	v.optL = make(map[*appmodel.App]int)
	v.maxUseL = make(map[*appmodel.App]int)
}

// AppArrived implements Policy: compute both pipeline optima (O^B, O^L)
// and join the waiting list.
func (v *VersaSlotBL) AppArrived(a *appmodel.App) {
	e := v.e
	// Apps whose every task fits the little class get a task-pipeline
	// plan; bundle-only apps (a task exceeds the little class but the
	// triples consolidate into the big class) keep optL at zero and
	// wait for big-class slots — their little-class partials were never
	// generated.
	if v.fitsLittle(a.Spec) {
		maxL := e.Board.Count(v.little.Name)
		if maxL > e.Params.MaxSlotsPerApp {
			maxL = e.Params.MaxSlotsPerApp
		}
		lp := v.littlePlan(a)
		v.optL[a] = lp.OptimalSlotsIn(&v.ev, maxL)
		v.maxUseL[a] = lp.MaxUsefulSlotsIn(&v.ev, maxL)
	}
	if bundle.CanBundleIn(a.Spec, v.big.Cap) {
		// Big slots are scarce and already contention-optimal, so the
		// bundle pipeline is sized for throughput: the smallest count
		// reaching the best makespan the board allows.
		bp := v.bigPlan(a)
		v.optB[a] = bp.MaxUsefulSlotsIn(&v.ev, e.Board.Count(v.big.Name))
	}
	v.cwait = append(v.cwait, a)
}

func (v *VersaSlotBL) fitsLittle(spec *appmodel.AppSpec) bool {
	for _, t := range spec.Tasks {
		if !t.Impl.FitsIn(v.little.Cap) {
			return false
		}
	}
	return true
}

func (v *VersaSlotBL) littlePlan(a *appmodel.App) pipeline.Plan {
	if cap(v.planTimes) < len(a.Spec.Tasks) {
		v.planTimes = make([]sim.Duration, len(a.Spec.Tasks))
	}
	times := v.planTimes[:len(a.Spec.Tasks)]
	for i, t := range a.Spec.Tasks {
		times[i] = t.Time
	}
	load := v.e.PCAP.LoadDuration(v.e.Repo.MustGet(
		bitstream.TaskName(a.Spec.Name, a.Spec.Tasks[0].Name, v.little.Name)))
	return pipeline.Plan{StageTimes: times, Batch: a.Batch, LoadTime: load}
}

func (v *VersaSlotBL) bigPlan(a *appmodel.App) pipeline.Plan {
	modes := bundle.Modes(a.Spec, a.Batch)
	n := len(modes)
	if cap(v.planTimes) < n {
		v.planTimes = make([]sim.Duration, n)
	}
	if cap(v.planExtra) < n {
		v.planExtra = make([]sim.Duration, n)
	}
	times := v.planTimes[:n]
	extra := v.planExtra[:n]
	for b := 0; b < n; b++ {
		first, rest := appmodel.BundleTiming(a.Spec, bundle.Size, b, modes[b])
		times[b] = rest
		extra[b] = first - rest
	}
	load := v.e.PCAP.LoadDuration(v.e.Repo.MustGet(bitstream.BundleName(a.Spec.Name, 0, "par", v.big.Name)))
	return pipeline.Plan{StageTimes: times, FirstItemExtra: extra, Batch: a.Batch, LoadTime: load}
}

// AppFinished implements Policy.
func (v *VersaSlotBL) AppFinished(a *appmodel.App) {
	v.unbind(a)
}

func (v *VersaSlotBL) unbind(a *appmodel.App) {
	v.sBig = removeApp(v.sBig, a)
	v.sLittle = removeApp(v.sLittle, a)
	delete(v.rBig, a)
	delete(v.rLittle, a)
}

// Schedule implements Policy — Algorithm 2, with Algorithm 1 embedded
// as the allocation step.
func (v *VersaSlotBL) Schedule() {
	e := v.e
	v.releaseAndReuse()
	if !e.Frozen() {
		v.allocate()
		v.preemptLittle()
	}
	v.place()
	for _, a := range v.sBig {
		ensureProgress(e, a)
		e.Pump(a)
	}
	for _, a := range v.sLittle {
		ensureProgress(e, a)
		e.Pump(a)
	}
	// Apps still waiting for slots are blocked tasks in the D_switch
	// sense: their PR cannot even be issued.
	e.WindowBlocked += uint64(len(v.cwait))
}

// allocate is Algorithm 1.
func (v *VersaSlotBL) allocate() {
	e := v.e
	bAvail := e.Board.CountEmpty(v.big.Name) - v.slack(v.sBig, v.rBig)
	lAvail := e.Board.CountEmpty(v.little.Name) - v.slack(v.sLittle, v.rLittle)
	if bAvail <= 0 && lAvail <= 0 {
		return
	}
	// Rebinding: free Big capacity pulls not-yet-started Little-bound
	// apps back to the waiting list so they can bind to Big slots.
	if bAvail > 0 {
		v.scratch = append(v.scratch[:0], v.sLittle...)
		for _, a := range v.scratch {
			if a.Started || v.optB[a] == 0 {
				continue
			}
			if !v.canUnbind(a) {
				continue
			}
			v.evictAll(a)
			v.unbind(a)
			a.State = appmodel.StateWaiting
			v.cwait = append(v.cwait, a)
		}
		lAvail = e.Board.CountEmpty(v.little.Name) - v.slack(v.sLittle, v.rLittle)
	}
	// Primary allocation: Big first for bundleable apps, then Little.
	lLeft := lAvail
	kept := v.cwait[:0]
	for _, a := range v.cwait {
		if bAvail > 0 && v.optB[a] > 0 {
			r := v.optB[a]
			if r > bAvail {
				r = bAvail
			}
			v.bindBig(a, r)
			bAvail -= r
			continue
		}
		if lLeft > 0 {
			r := v.optL[a]
			if r > lLeft {
				r = lLeft
			}
			if r >= 1 {
				v.bindLittle(a, r)
				lLeft -= r
				continue
			}
		}
		kept = append(kept, a)
	}
	v.cwait = kept
	// Redistribution: leftover Little slots top up bound apps (front of
	// the runnable queue first) toward their maximum useful counts.
	for _, a := range v.sLittle {
		if lLeft <= 0 {
			break
		}
		ceil := v.maxUseL[a]
		if rem := unplacedCount(a) + heldSlots(a); ceil > rem {
			ceil = rem
		}
		delta := ceil - v.rLittle[a]
		if delta <= 0 {
			continue
		}
		if delta > lLeft {
			delta = lLeft
		}
		v.rLittle[a] += delta
		lLeft -= delta
	}
}

func (v *VersaSlotBL) bindBig(a *appmodel.App, r int) {
	bundle.Build(a, v.big.Name)
	v.sBig = append(v.sBig, a)
	v.rBig[a] = r
	a.State = appmodel.StateReady
}

func (v *VersaSlotBL) bindLittle(a *appmodel.App, r int) {
	bundle.BuildTasks(a, v.little.Name)
	v.sLittle = append(v.sLittle, a)
	v.rLittle[a] = r
	a.State = appmodel.StateReady
}

// canUnbind: rebinding is only legal before execution starts and while
// no PR for the app is in flight (a PCAP load cannot be aborted).
func (v *VersaSlotBL) canUnbind(a *appmodel.App) bool {
	if a.Started {
		return false
	}
	for _, st := range a.Stages {
		if st.Loading || st.InFlight {
			return false
		}
	}
	return true
}

func (v *VersaSlotBL) evictAll(a *appmodel.App) {
	for _, st := range a.Stages {
		if st.Slot != nil && st.Slot.Free() {
			v.e.EvictStage(st)
		}
	}
}

// slack counts slots promised but not yet held (placement in flight).
func (v *VersaSlotBL) slack(apps []*appmodel.App, r map[*appmodel.App]int) int {
	total := 0
	for _, a := range apps {
		short := r[a] - heldSlots(a)
		if rem := unplacedCount(a); short > rem {
			short = rem
		}
		if short > 0 {
			total += short
		}
	}
	return total
}

// releaseAndReuse recycles finished stages' slots within each app, then
// returns surplus to the pool; it also enforces shrunken allocations.
func (v *VersaSlotBL) releaseAndReuse() {
	e := v.e
	for _, list := range [][]*appmodel.App{v.sBig, v.sLittle} {
		for _, a := range list {
			reuseForUnplaced(e, a)
			if unplacedCount(a) == 0 {
				for _, st := range a.Stages {
					if st.Finished() && st.Slot != nil && st.Slot.Free() {
						e.EvictStage(st)
					}
				}
			}
		}
	}
	for _, a := range v.sLittle {
		for heldSlots(a) > v.rLittle[a] {
			victim := shrinkVictim(a)
			if victim == nil {
				break
			}
			e.EvictStage(victim)
		}
	}
}

// preemptLittle is the aging preemption, restricted to Little slots:
// Big-bound apps run to completion ("applications bound to the big
// slots can only complete all their tasks in the Big slots").
func (v *VersaSlotBL) preemptLittle() {
	e := v.e
	if len(v.cwait) == 0 {
		return
	}
	if e.Board.CountEmpty(v.little.Name)-v.slack(v.sLittle, v.rLittle) > 0 {
		return
	}
	now := e.Now()
	starved := false
	for _, a := range v.cwait {
		if now.Sub(a.Arrival) >= e.Params.PreemptAge {
			starved = true
			break
		}
	}
	if !starved || now.Sub(v.lastPreempt) < e.Params.PreemptAge/4 {
		return
	}
	var victim *appmodel.App
	most := e.Params.PreemptMinRemaining
	for _, a := range v.sLittle {
		if v.rLittle[a] <= 1 {
			continue
		}
		if rem := a.RemainingItems(); rem >= most {
			most = rem
			victim = a
		}
	}
	if victim == nil {
		return
	}
	v.rLittle[victim]--
	v.lastPreempt = now
}

// place loads stages into idle slots up to each app's allocation
// (Algorithm 2 lines 13-19), asynchronously via the PR server.
func (v *VersaSlotBL) place() {
	e := v.e
	for _, a := range v.sBig {
		for heldSlots(a) < v.rBig[a] {
			st := nextUnplaced(a)
			if st == nil {
				break
			}
			slot := e.Board.FirstEmpty(v.big.Name)
			if slot == nil {
				break
			}
			e.RequestPR(st, slot)
		}
	}
	for _, a := range v.sLittle {
		for heldSlots(a) < v.rLittle[a] {
			st := nextUnplaced(a)
			if st == nil {
				break
			}
			slot := e.Board.FirstEmpty(v.little.Name)
			if slot == nil {
				break
			}
			e.RequestPR(st, slot)
		}
	}
}

// ExtractMigratable implements Policy: waiting apps plus bound-but-not-
// started apps (their binding is dissolved; PR work already spent is
// the rebinding cost live migration accepts).
func (v *VersaSlotBL) ExtractMigratable() []*appmodel.App {
	out := v.cwait
	v.cwait = nil
	for _, a := range append([]*appmodel.App(nil), v.sLittle...) {
		if v.canUnbind(a) {
			v.evictAll(a)
			v.unbind(a)
			a.State = appmodel.StateWaiting
			out = append(out, a)
		}
	}
	return out
}

// ExtractMigratableUpTo implements MigrationLimiter: the most recently
// arrived waiting apps move first (zero sunk PR work, furthest from
// being scheduled locally); bound-but-not-started apps are unbound
// only when the waiting list alone cannot fill the request, so a
// partial extraction never churns the bindings of apps that stay.
func (v *VersaSlotBL) ExtractMigratableUpTo(n int) []*appmodel.App {
	var out []*appmodel.App
	for n > len(out) && len(v.cwait) > 0 {
		last := len(v.cwait) - 1
		out = append(out, v.cwait[last])
		v.cwait = v.cwait[:last]
	}
	for _, a := range append([]*appmodel.App(nil), v.sLittle...) {
		if n <= len(out) {
			break
		}
		if v.canUnbind(a) {
			v.evictAll(a)
			v.unbind(a)
			a.State = appmodel.StateWaiting
			out = append(out, a)
		}
	}
	return out
}

var _ MigrationLimiter = (*VersaSlotBL)(nil)

// AcceptMigrated implements Policy.
func (v *VersaSlotBL) AcceptMigrated(apps []*appmodel.App) {
	for _, a := range apps {
		v.AppArrived(a)
	}
	v.e.Activate()
}

func removeApp(list []*appmodel.App, a *appmodel.App) []*appmodel.App {
	for i, x := range list {
		if x == a {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
