package sched

import "versaslot/internal/sim"

// Params collects every timing constant of the hardware and control
// plane models. Defaults are documented with their provenance: device
// datasheet scale, values the paper reports, or calibration targets
// that reproduce the paper's figure shapes.
type Params struct {
	// PCAPBandwidth is the sustained PCAP configuration throughput in
	// bytes/s. Zynq UltraScale+ sustains ~128 MB/s through PCAP.
	PCAPBandwidth int64
	// PCAPOverhead is the fixed per-load cost: DFX decouple, PCAP init,
	// completion check.
	PCAPOverhead sim.Duration
	// SDBandwidth is the SD-card streaming rate in bytes/s for
	// bitstreams missing the DDR cache (~25 MB/s for a class-10 card
	// through the PS SDIO controller).
	SDBandwidth int64
	// CacheEntries bounds the PR server's DDR bitstream cache.
	CacheEntries int
	// PRFailureRate is the probability a partial reconfiguration fails
	// the PCAP's CRC verification and must be re-streamed (transient
	// configuration upsets; the PR server retries). 0 disables
	// injection; the failure draw uses the simulation RNG, so runs
	// stay deterministic per seed.
	PRFailureRate float64
	// FullReconfigInit is the extra cost of a full-fabric swap beyond
	// the bitstream transfer: PS-PL bridge re-init, clock/DDR
	// recalibration, and shell driver re-probe. Full-FPGA platforms
	// (e.g. AWS F1 AFI swaps) pay on the order of seconds.
	FullReconfigInit sim.Duration
	// FullBitstreamCached: full-fabric bitstreams are far larger than
	// the DDR staging area, so by default they re-stream from storage
	// on every swap.
	FullBitstreamCached bool

	// SchedPassCost is the CPU time of one scheduler pass.
	SchedPassCost sim.Duration
	// LaunchCost is the CPU time to launch one batch item: buffer
	// allocation, DMA descriptor setup, control-register writes.
	LaunchCost sim.Duration
	// HostControl models boards without a dedicated CPU: "the
	// hypervisor can run on the host CPU and control the FPGA via the
	// PCIe interface" (Section III-A). Every control operation (pass,
	// launch, PR command) then pays a PCIe round trip.
	HostControl bool
	// PCIeRoundTrip is that control-path latency (MMIO write + read
	// back over Gen3 x8, ~1-2 us each way plus driver overhead).
	PCIeRoundTrip sim.Duration

	// BaselineQuantum is the exclusive baseline's time slice: how long
	// one application owns the whole fabric before a full-reconfig
	// context switch hands it to the next queued app.
	BaselineQuantum sim.Duration
	// BaselineRunset bounds how many queued applications the baseline
	// round-robins among; arrivals beyond it wait FCFS.
	BaselineRunset int
	// RRQuantum is the Coyote-style round-robin time slice.
	RRQuantum sim.Duration
	// GangMaxSlots caps FCFS/RR gang allocations: naive systems
	// partition the fabric into at most this many regions per app.
	GangMaxSlots int
	// TenantTeardown is the cleanup FCFS/RR perform after a tenant
	// finishes (buffer scrubbing, DMA/shell reset for isolation) before
	// its slots are reusable. Invisible to a lone application, pure
	// added service time under congestion.
	TenantTeardown sim.Duration
	// PreemptAge is how long an allocation-starved app must wait before
	// the Nimblock-style preemption fires.
	PreemptAge sim.Duration
	// PreemptMinRemaining stops preemption from thrashing apps that are
	// nearly done: victims must still owe at least this many items.
	PreemptMinRemaining int

	// MaxSlotsPerApp caps any single allocation (the ILP never needs
	// more slots than stages anyway).
	MaxSlotsPerApp int
}

// DefaultParams returns the calibrated configuration used by every
// experiment in EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{
		PCAPBandwidth:       200 << 20,
		PCAPOverhead:        80 * sim.Microsecond,
		SDBandwidth:         80 << 20,
		CacheEntries:        64,
		PRFailureRate:       0,
		FullReconfigInit:    400 * sim.Millisecond,
		FullBitstreamCached: true,

		SchedPassCost: 20 * sim.Microsecond,
		LaunchCost:    120 * sim.Microsecond,
		HostControl:   false,
		PCIeRoundTrip: 12 * sim.Microsecond,

		BaselineQuantum:     420 * sim.Millisecond,
		BaselineRunset:      4,
		RRQuantum:           2 * sim.Second,
		GangMaxSlots:        8,
		TenantTeardown:      500 * sim.Millisecond,
		PreemptAge:          2 * sim.Second,
		PreemptMinRemaining: 8,

		MaxSlotsPerApp: 8,
	}
}

// EffectiveSchedPass returns the scheduler-pass cost including the
// PCIe control path when the hypervisor runs on the host CPU.
func (p Params) EffectiveSchedPass() sim.Duration {
	if p.HostControl {
		return p.SchedPassCost + p.PCIeRoundTrip
	}
	return p.SchedPassCost
}

// EffectiveLaunch returns the per-item launch cost including the PCIe
// control path when the hypervisor runs on the host CPU.
func (p Params) EffectiveLaunch() sim.Duration {
	if p.HostControl {
		return p.LaunchCost + p.PCIeRoundTrip
	}
	return p.LaunchCost
}
