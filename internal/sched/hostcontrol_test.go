package sched

import (
	"testing"

	"versaslot/internal/sim"
)

func TestEffectiveCostsEmbedded(t *testing.T) {
	p := DefaultParams()
	if p.EffectiveSchedPass() != p.SchedPassCost {
		t.Fatal("embedded sched pass cost altered")
	}
	if p.EffectiveLaunch() != p.LaunchCost {
		t.Fatal("embedded launch cost altered")
	}
}

func TestEffectiveCostsHostControl(t *testing.T) {
	p := DefaultParams()
	p.HostControl = true
	if p.EffectiveSchedPass() != p.SchedPassCost+p.PCIeRoundTrip {
		t.Fatal("host sched pass missing PCIe round trip")
	}
	if p.EffectiveLaunch() != p.LaunchCost+p.PCIeRoundTrip {
		t.Fatal("host launch missing PCIe round trip")
	}
}

func TestHostControlSlowsControlPlane(t *testing.T) {
	// Same workload, same policy; PCIe control must not speed things
	// up, and the total launch time spent must grow by the round trip.
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.HostControl = true
	p2.PCIeRoundTrip = 500 * sim.Microsecond // exaggerate to make it visible
	if p2.EffectiveLaunch() <= p1.EffectiveLaunch() {
		t.Fatal("host launch not slower")
	}
}
