package sched

import (
	"strings"
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	want := []string{"baseline", "fcfs", "rr", "nimblock", "versaslot-ol", "versaslot-bl"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Errorf("Names()[%d] = %q, want %q (paper presentation order)", i, names[i], name)
		}
	}
	for _, k := range Kinds() {
		r, ok := ByKind(k)
		if !ok {
			t.Fatalf("ByKind(%v) not found", k)
		}
		if r.Title != k.String() {
			t.Errorf("ByKind(%v).Title = %q, want %q", k, r.Title, k.String())
		}
		if r.Factory == nil {
			t.Errorf("ByKind(%v) has nil factory", k)
		}
		if got := New(k); got.Name() != k.String() {
			t.Errorf("New(%v).Name() = %q, want %q", k, got.Name(), k.String())
		}
	}
}

func TestRegistryLookupAliases(t *testing.T) {
	for _, name := range []string{"versaslot", "VERSASLOT-BL", "versaslot-big-little"} {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if r.Kind != KindVersaSlotBL {
			t.Errorf("Lookup(%q).Kind = %v, want KindVersaSlotBL", name, r.Kind)
		}
	}
	if _, ok := Lookup("no-such-policy"); ok {
		t.Error("Lookup of unknown policy succeeded")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Registration{Name: "", Factory: func() Policy { return &FCFS{} }}); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := Register(Registration{Name: "nil-factory"}); err == nil {
		t.Error("Register with nil factory succeeded")
	}
	// Duplicate canonical name.
	err := Register(Registration{Name: "fcfs", Factory: func() Policy { return &FCFS{} }})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate Register error = %v, want 'already registered'", err)
	}
	// Duplicate via alias.
	err = Register(Registration{Name: "fresh-name", Aliases: []string{"versaslot"},
		Factory: func() Policy { return &FCFS{} }})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("alias-duplicate Register error = %v, want 'already registered'", err)
	}
	if _, ok := Lookup("fresh-name"); ok {
		t.Error("failed registration leaked its canonical name into the registry")
	}
}

func TestRegisterExternalPolicy(t *testing.T) {
	err := Register(Registration{
		Name:     "test-external",
		Title:    "Test External",
		Kind:     KindExternal,
		Platform: fabric.ZCU216OnlyLittle,
		Core:     hypervisor.DualCore,
		Factory:  func() Policy { return NewVersaSlotOL() },
	})
	if err != nil {
		t.Fatalf("Register external: %v", err)
	}
	r, ok := Lookup("test-external")
	if !ok {
		t.Fatal("Lookup of external policy failed")
	}
	if _, found := ByKind(KindExternal); found {
		t.Error("ByKind(KindExternal) resolved; external policies must be name-addressed only")
	}
	if p := r.Factory(); p == nil {
		t.Error("external factory returned nil policy")
	}
}
