package sched

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// runWithFailureRate executes a small workload under the given PR CRC
// failure rate and returns the engine.
func runWithFailureRate(t *testing.T, rate float64, kind Kind) *Engine {
	t.Helper()
	k := sim.NewKernel(7)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	params := DefaultParams()
	params.PRFailureRate = rate
	cfg := fabric.ZCU216OnlyLittle
	model := hypervisor.SingleCore
	if kind == KindVersaSlotBL {
		cfg, model = fabric.ZCU216BigLittle, hypervisor.DualCore
	}
	if kind == KindVersaSlotOL {
		model = hypervisor.DualCore
	}
	e := NewEngine(k, params, fabric.NewBoard(0, fabric.MustPlatform(cfg)), model, repo)
	e.SetPolicy(New(kind))
	apps := []*appmodel.App{
		appmodel.NewApp(0, workload.IC, 8, 0),
		appmodel.NewApp(1, workload.OF, 8, sim.Time(50*sim.Millisecond)),
		appmodel.NewApp(2, workload.AN, 8, sim.Time(100*sim.Millisecond)),
	}
	e.InjectSequence(apps)
	k.Run()
	e.CheckQuiescent()
	return e
}

func TestPRFailureInjectionRetriesAndCompletes(t *testing.T) {
	for _, kind := range []Kind{KindNimblock, KindVersaSlotOL, KindVersaSlotBL} {
		e := runWithFailureRate(t, 0.4, kind)
		if e.Col.PRRetries == 0 {
			t.Errorf("%v: 40%% CRC failure rate produced no retries", kind)
		}
		if len(e.Col.Responses) != 3 {
			t.Errorf("%v: %d of 3 apps finished under failure injection", kind, len(e.Col.Responses))
		}
	}
}

func TestNoFailuresWithoutInjection(t *testing.T) {
	e := runWithFailureRate(t, 0, KindVersaSlotBL)
	if e.Col.PRRetries != 0 {
		t.Fatalf("retries recorded with rate 0: %d", e.Col.PRRetries)
	}
}

func TestFailureInjectionSlowsResponse(t *testing.T) {
	clean := runWithFailureRate(t, 0, KindNimblock)
	faulty := runWithFailureRate(t, 0.6, KindNimblock)
	var cleanSum, faultySum sim.Duration
	for i := range clean.Col.Responses {
		cleanSum += clean.Col.Responses[i].Response
		faultySum += faulty.Col.Responses[i].Response
	}
	if faultySum <= cleanSum {
		t.Fatalf("CRC retries did not slow the run: %v vs %v", faultySum, cleanSum)
	}
}

func TestFailureRateCapKeepsRetriesFinite(t *testing.T) {
	// A rate above the cap must still terminate.
	e := runWithFailureRate(t, 0.99, KindVersaSlotBL)
	if len(e.Col.Responses) != 3 {
		t.Fatal("run with capped failure rate did not complete")
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	a := runWithFailureRate(t, 0.4, KindVersaSlotOL)
	b := runWithFailureRate(t, 0.4, KindVersaSlotOL)
	if a.Col.PRRetries != b.Col.PRRetries {
		t.Fatalf("retry counts differ across identical runs: %d vs %d",
			a.Col.PRRetries, b.Col.PRRetries)
	}
	for i := range a.Col.Responses {
		if a.Col.Responses[i].Response != b.Col.Responses[i].Response {
			t.Fatal("responses differ across identical seeded runs")
		}
	}
}
