// Package sched contains the execution engine shared by every policy
// (slots, PCAP, CPU cores, launches, metrics) and the six scheduling
// policies the paper evaluates: the exclusive temporal-multiplexing
// Baseline, FCFS, RR (Coyote-style), Nimblock, VersaSlot Only.Little
// and VersaSlot Big.Little (Algorithms 1 and 2).
//
// Policies are pluggable: each Registration names a policy, declares
// the board floorplan and control-plane model it runs on, and
// supplies a fresh-instance factory. Third-party schedulers register
// with Kind = KindExternal and are selected by name through the
// versaslot facade, exactly like the built-ins.
package sched
