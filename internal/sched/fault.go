package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
	"versaslot/internal/trace"
)

// This file is the engine's fault surface: everything the
// internal/fault injectors drive. The mechanics live here — next to
// the slot/PR/launch state machines they must stay consistent with —
// while the injectors own *when* faults strike. None of these paths
// execute unless an injector calls them, so fault-free runs stay
// byte-identical to the pre-fault engine.

// prFaultModel is the bounded retry+backoff model a pr-flaky injector
// installs: each PCAP streaming attempt fails with rate, retried after
// an exponentially growing backoff up to maxRetries times; exhaustion
// crash-restarts the application (the reconfiguration error was
// persistent, so its placement is abandoned). Draws come from the
// injector's own forked stream, never the kernel RNG, so enabling the
// model does not shift any other random axis.
type prFaultModel struct {
	rate       float64
	maxRetries int
	backoff    sim.Duration
	factor     float64
	rng        *sim.RNG
}

func (m *prFaultModel) delay(attempt int) sim.Duration {
	d := m.backoff
	for i := 0; i < attempt; i++ {
		d = sim.Duration(float64(d) * m.factor)
	}
	return d
}

// EnableFaultMetrics switches the board's collector into fault
// accounting (availability, downtime, crash/retry counts). The runner
// calls it once per engine when a scenario's faults block is non-empty.
func (e *Engine) EnableFaultMetrics() {
	e.Col.EnableFaults(len(e.Board.Slots))
}

// SetPRFault installs the reconfiguration-error model. rate is the
// per-attempt failure probability, maxRetries bounds re-streams,
// backoff/factor shape the retry delays, and rng is the injector's
// forked stream.
func (e *Engine) SetPRFault(rate float64, maxRetries int, backoff sim.Duration, factor float64, rng *sim.RNG) {
	e.prFault = &prFaultModel{rate: rate, maxRetries: maxRetries, backoff: backoff, factor: factor, rng: rng}
}

// SetCheckpointed toggles checkpoint/restore semantics for crash
// restarts: with checkpointing, a crashed application resumes from its
// per-stage progress (like a live migration); without, the batch
// restarts from item zero — the board's in-memory state died with it.
func (e *Engine) SetCheckpointed(v bool) { e.checkpointed = v }

// SetSlotSlowdown degrades a slot's service rate: subsequent batch
// items on it take factor times as long (an in-flight item finishes at
// its original speed — the degradation is observed at launch time).
func (e *Engine) SetSlotSlowdown(slot *fabric.Slot, factor float64) {
	e.rt(slot).slowFactor = factor
	e.Col.RecordFaultEventAt(e.K.Now())
	e.trace("%v slot %d straggling (x%.2f)", e.K.Now(), slot.ID, factor)
}

// ClearSlotSlowdown restores the slot's nominal service rate.
func (e *Engine) ClearSlotSlowdown(slot *fabric.Slot) {
	e.rt(slot).slowFactor = 0
	e.trace("%v slot %d service rate restored", e.K.Now(), slot.ID)
}

// FailSlot takes one reconfigurable region out of service: whatever
// application occupies it (resident, executing, or mid-load) is
// crash-restarted, and the slot stays unallocatable until RecoverSlot.
// Failing an already-failed slot is a no-op, so injector chains cannot
// double-count.
func (e *Engine) FailSlot(slot *fabric.Slot) {
	if slot.Failed() {
		return
	}
	e.Col.RecordFaultEventAt(e.K.Now())
	// The victim is the app whose stage still claims the slot. The
	// attachment check matters: a crash earlier in the same board
	// outage may have detached the stage (ResetStages) while leaving it
	// as Pending/Resident — its load aborts at the PR callback, its
	// region was scrubbed — and crashing the app again through that
	// stale reference would double-deliver it to the re-homing hook.
	var victim *appmodel.App
	switch slot.State() {
	case fabric.SlotLoading:
		if st, ok := slot.Pending.(*appmodel.Stage); ok && st.Loading && st.Slot == slot {
			victim = st.App
		}
	case fabric.SlotLoaded, fabric.SlotBusy:
		if st, ok := slot.Resident.(*appmodel.Stage); ok && st.Slot == slot {
			victim = st.App
		}
	}
	slot.Fail()
	rt := e.rt(slot)
	rt.down = true
	rt.downSince = e.K.Now()
	e.trace("%v slot %d FAILED", e.K.Now(), slot.ID)
	e.record(trace.Event{Kind: trace.PRRequest, Slot: slot.ID, App: "slot-fail", Stage: -1, Item: -1})
	if victim != nil && victim.State != appmodel.StateFinished {
		e.crashApp(victim)
	}
	e.Activate()
}

// RecoverSlot returns a failed slot to service and closes its
// downtime interval. The scheduler is re-activated so queued work can
// claim the region immediately.
func (e *Engine) RecoverSlot(slot *fabric.Slot) {
	if !slot.Failed() {
		return
	}
	slot.Recover()
	if rt := e.rt(slot); rt.down {
		e.Col.AccumulateDowntime(e.K.Now().Sub(rt.downSince))
		rt.down = false
	}
	e.trace("%v slot %d recovered", e.K.Now(), slot.ID)
	e.Activate()
}

// crashApp restarts an application after a fault killed part of its
// state: every slot it holds is torn down (cancelling the in-flight
// item, if any), its stages reset — losing batch progress unless
// checkpointing is on — and it re-enters the waiting queue through the
// same AcceptMigrated path a live migration uses. The OnAppCrashed
// hook lets the cluster layer re-home apps crashed on a frozen
// (draining) board, which could otherwise never restart them.
func (e *Engine) crashApp(a *appmodel.App) {
	e.Col.RecordAppFailureAt(e.K.Now())
	e.trace("%v app %v crash-restart", e.K.Now(), a)
	e.record(trace.Event{Kind: trace.AppArrive, Slot: -1, App: a.String() + " crash-restart", Stage: -1, Item: -1})
	for _, st := range a.Stages {
		slot := st.Slot
		if slot == nil {
			continue
		}
		if st.Loading {
			// A PCAP transfer (or a retry backoff) is in flight; the
			// slot must stay SlotLoading until its callback observes
			// the detached stage and finishes the teardown via
			// AbortLoad. ResetStages below detaches the stage.
			continue
		}
		if slot.State() == fabric.SlotBusy {
			rt := e.rt(slot)
			if rt.execEv != sim.NoEvent {
				e.K.Cancel(rt.execEv)
				rt.execEv = sim.NoEvent
			}
			// The item's launch may still be queued on the scheduler
			// core; disarming makes its callback a no-op.
			rt.armed = false
			if err := slot.CompleteExec(); err != nil {
				panic(err)
			}
			st.InFlight = false
		}
		e.evictResident(slot)
		if slot.Failed() {
			// Clear is gated on Free(), which a failed slot never
			// satisfies; Scrub force-empties the dead region so it
			// comes back clean and allocatable at Recover.
			if err := slot.Scrub(); err != nil {
				panic(err)
			}
			continue
		}
		if err := slot.Clear(); err != nil {
			panic(err)
		}
	}
	if !e.checkpointed {
		for _, st := range a.Stages {
			st.Done = 0
		}
	}
	appmodel.ResetStages(a)
	a.State = appmodel.StateWaiting
	e.policy.AppFinished(a)
	if e.OnAppCrashed == nil || !e.OnAppCrashed(a) {
		e.policy.AcceptMigrated([]*appmodel.App{a})
	}
	if e.OnQueueUpdate != nil {
		e.OnQueueUpdate()
	}
	e.Activate()
}

// abortLoad tears down a load whose stage crashed (or whose slot
// failed) while the PCAP transfer or a retry backoff was in flight.
// Called from the PR callbacks when they observe the detachment.
func (e *Engine) abortLoad(slot *fabric.Slot) {
	if err := slot.AbortLoad(); err != nil {
		panic(err)
	}
	e.trace("%v PR aborted on slot %d", e.K.Now(), slot.ID)
	e.Activate()
}

// failPRPermanently abandons a placement whose reconfiguration
// exhausted its fault-injected retries and crash-restarts the app.
func (e *Engine) failPRPermanently(st *appmodel.Stage, slot *fabric.Slot) {
	e.trace("%v PR retries exhausted for %v on slot %d", e.K.Now(), st, slot.ID)
	st.Loading = false
	st.Slot = nil
	if err := slot.AbortLoad(); err != nil {
		panic(err)
	}
	if st.App.State != appmodel.StateFinished {
		e.crashApp(st.App)
	} else {
		e.Activate()
	}
}

// FlushFaults closes open downtime intervals (end of run) so
// availability integrals are complete; folded into FlushResidency.
func (e *Engine) flushFaults() {
	for i := range e.slots {
		if rt := &e.slots[i]; rt.down {
			e.Col.AccumulateDowntime(e.K.Now().Sub(rt.downSince))
			rt.downSince = e.K.Now()
		}
	}
}
