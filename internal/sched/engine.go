package sched

import (
	"fmt"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/metrics"
	"versaslot/internal/pcap"
	"versaslot/internal/sim"
	"versaslot/internal/trace"
)

// Engine is the per-board execution machinery every policy drives: it
// owns the fabric slots, the PCAP, the CPU cores, the bitstream store,
// and the mechanics of partial reconfiguration and batch-item launches.
// Policies make decisions; the engine charges their true costs.
type Engine struct {
	K      *sim.Kernel
	Params Params
	Board  *fabric.Board
	Cores  *hypervisor.Cores
	PCAP   *pcap.Device
	Repo   *bitstream.Repository
	Cache  *bitstream.Cache
	Col    *metrics.Collector

	policy Policy

	// Apps are all injected applications in arrival order.
	Apps []*appmodel.App
	// Active are arrived, unfinished apps in arrival order.
	Active []*appmodel.App

	pendingSched bool
	frozen       bool

	// Arrival cursor: InjectSequence walks a sorted sequence with one
	// chained event instead of a closure per app.
	arrQ   []*appmodel.App
	arrPos int
	arrFn  func()

	// slots holds the per-slot hot-path runtime state, indexed by
	// fabric.Slot.ID. Pre-bound launch/exec/PR closures and plain
	// struct fields replace the per-launch closures and per-slot maps
	// of the original engine: at most one launch, one executing item,
	// and one PCAP load can be in flight per slot at a time, so the
	// state of each is a slot-indexed record, not an allocation.
	slots []slotRT
	// schedPassFn is the one pre-bound scheduler-pass body Activate
	// submits (coalesced, so one is enough).
	schedPassFn func()

	// prFault, when set, injects bounded-retry reconfiguration errors.
	prFault *prFaultModel
	// checkpointed makes crash restarts keep per-stage batch progress.
	checkpointed bool

	// OnAppCrashed, when set, may re-home a crash-restarted app (e.g.
	// the cluster moves apps crashed on a frozen, draining board to the
	// active one). Returning true means the hook re-queued the app.
	OnAppCrashed func(*appmodel.App) bool

	// OnAppArrived fires when an app joins the candidate queue
	// (streaming-observer hook; migrated apps do not re-fire it).
	OnAppArrived func(*appmodel.App)
	// OnAppFinished fires after an app completes (cluster/migration hook).
	OnAppFinished func(*appmodel.App)
	// OnQueueUpdate fires on every candidate-queue change: an arrival
	// or a completion. The D_switch controller recomputes on a cadence
	// of these.
	OnQueueUpdate func()

	// WindowBlocked and WindowPR count, since the last external reset,
	// tasks whose PR waited behind another load, and PR loads issued —
	// the numerator and denominator history feeding D_switch.
	WindowBlocked uint64
	WindowPR      uint64

	// Trace, when non-nil, receives one line per engine event (PR
	// start/completion, item launch/completion, app lifecycle). Used by
	// the vstrace tool; nil in normal runs.
	Trace func(format string, args ...any)

	// Recorder, when non-nil, receives typed events for timeline
	// rendering and post-hoc analysis.
	Recorder *trace.Recorder
}

func (e *Engine) record(ev trace.Event) {
	if e.Recorder != nil {
		ev.At = e.K.Now()
		e.Recorder.Record(ev)
	}
}

func (e *Engine) trace(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(format, args...)
	}
}

// slotRT is the per-slot runtime record backing the engine's hot paths.
// The fabric guarantees at most one launch, one executing item, and one
// PCAP load in flight per slot (a slot is Busy from BeginExec to
// CompleteExec and Loading from BeginLoad to CompleteLoad/abort), so
// each activity's state lives in plain fields written at submission and
// read by a closure bound once at engine construction.
type slotRT struct {
	e    *Engine
	slot *fabric.Slot

	// Residency-interval tracking for utilization integrals.
	resStage *appmodel.Stage
	resSince sim.Time

	// In-flight launch/exec state. armed invalidates a launch still
	// queued on the scheduler core when a fault tears its slot down: the
	// FIFO core drains the stale launch before any re-placement of the
	// slot can queue a new one, so a bool (not a token) suffices.
	st     *appmodel.Stage
	idx    int
	dur    sim.Duration
	start  sim.Time
	armed  bool
	execEv sim.EventID

	// Fault state (see fault.go).
	down       bool
	downSince  sim.Time
	slowFactor float64 // > 1 degrades service (straggler); else nominal

	// PR-attempt state for the pre-bound PCAP callbacks, stable from
	// submission to completion.
	prStage   *appmodel.Stage
	prBits    *bitstream.Bitstream
	prCost    sim.Duration
	prAttempt int
	prWaited  sim.Duration

	launchFn  func()
	execFn    func()
	prStartFn func(sim.Duration)
	prDoneFn  func()
}

// rt returns the runtime record of a slot. Slot IDs are indices into the
// board's slot list (see fabric.NewBoard), so this is a direct index.
func (e *Engine) rt(s *fabric.Slot) *slotRT { return &e.slots[s.ID] }

// NewEngine wires a board's execution machinery together.
func NewEngine(k *sim.Kernel, p Params, board *fabric.Board, model hypervisor.CoreModel, repo *bitstream.Repository) *Engine {
	capTotal := board.SlotCapacityTotal()
	e := &Engine{
		K:      k,
		Params: p,
		Board:  board,
		Cores:  hypervisor.NewCores(k, model, board.ID),
		PCAP:   pcap.New(p.PCAPBandwidth, p.PCAPOverhead),
		Repo:   repo,
		Cache:  bitstream.NewCache(p.CacheEntries),
		Col:    metrics.NewCollector(capTotal),
	}
	e.slots = make([]slotRT, len(board.Slots))
	for i, s := range board.Slots {
		rt := &e.slots[i]
		rt.e = e
		rt.slot = s
		rt.launchFn = rt.runLaunch
		rt.execFn = rt.runExec
		rt.prStartFn = rt.prStart
		rt.prDoneFn = rt.prDone
	}
	e.schedPassFn = func() {
		e.pendingSched = false
		e.policy.Schedule()
	}
	return e
}

// DisableBitstreamCache models control planes without a DDR bitstream
// store (pre-Nimblock systems like the FCFS/RR comparators): every
// partial reconfiguration re-streams its bitstream from the SD card.
func (e *Engine) DisableBitstreamCache() {
	e.Cache = bitstream.NewCache(0)
}

// SetPolicy installs the scheduling policy; must happen before any
// arrivals.
func (e *Engine) SetPolicy(p Policy) {
	e.policy = p
	p.Init(e)
}

// Policy returns the installed policy.
func (e *Engine) Policy() Policy { return e.policy }

// Now returns the kernel clock.
func (e *Engine) Now() sim.Time { return e.K.Now() }

// Frozen reports whether the engine is draining for migration.
func (e *Engine) Frozen() bool { return e.frozen }

// SetFrozen toggles migration-drain mode. Policies must not start new
// applications while frozen (apps already executing run to completion).
func (e *Engine) SetFrozen(v bool) {
	e.frozen = v
	e.Activate()
}

// InjectSequence schedules arrival events for apps (Arrival fields are
// absolute virtual times). When the sequence is sorted by arrival time —
// generators emit them that way — a single chained cursor event walks it
// instead of one pre-allocated closure per app; arrivals carry
// sim.PriArrival so they keep firing ahead of same-instant simulation
// events despite their now-late sequence numbers.
func (e *Engine) InjectSequence(apps []*appmodel.App) {
	if len(apps) == 0 {
		return
	}
	e.Apps = append(e.Apps, apps...)
	sorted := true
	for i := 1; i < len(apps); i++ {
		if apps[i].Arrival < apps[i-1].Arrival {
			sorted = false
			break
		}
	}
	if !sorted || e.arrPos < len(e.arrQ) {
		// Unsorted, or a previous cursor is still walking: fall back to
		// one event per app.
		for _, a := range apps {
			a := a
			e.K.AtP(a.Arrival, sim.PriArrival, func() { e.arrive(a) })
		}
		return
	}
	e.arrQ, e.arrPos = apps, 0
	if e.arrFn == nil {
		e.arrFn = func() {
			a := e.arrQ[e.arrPos]
			e.arrPos++
			if e.arrPos < len(e.arrQ) {
				e.K.AtP(e.arrQ[e.arrPos].Arrival, sim.PriArrival, e.arrFn)
			}
			e.arrive(a)
		}
	}
	e.K.AtP(apps[0].Arrival, sim.PriArrival, e.arrFn)
}

// InjectNow delivers an app immediately (used by live migration and by
// tests). The app keeps its original arrival time for response-time
// accounting.
func (e *Engine) InjectNow(a *appmodel.App) {
	e.Apps = append(e.Apps, a)
	e.arrive(a)
}

// InjectMigrated delivers an app transferred from another board: it
// joins this engine's bookkeeping and the policy's waiting structures.
// The app keeps its original arrival time, so migration latency counts
// against its response time.
func (e *Engine) InjectMigrated(a *appmodel.App) {
	e.Col.RecordMigrationWindow(e.K.Now(), 1)
	e.Apps = append(e.Apps, a)
	e.Active = append(e.Active, a)
	e.policy.AcceptMigrated([]*appmodel.App{a})
	if e.OnQueueUpdate != nil {
		e.OnQueueUpdate()
	}
	e.Activate()
}

func (e *Engine) arrive(a *appmodel.App) {
	if a.State == appmodel.StatePending {
		a.State = appmodel.StateWaiting
	}
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.AppArrive, Slot: -1, App: a.String(), Stage: -1, Item: -1})
	}
	e.Active = append(e.Active, a)
	if e.OnAppArrived != nil {
		e.OnAppArrived(a)
	}
	e.policy.AppArrived(a)
	if e.OnQueueUpdate != nil {
		e.OnQueueUpdate()
	}
	e.Activate()
}

// Activate coalesces scheduler invocations: the next pass runs as a job
// on the scheduler core (charging SchedPassCost) unless one is already
// queued.
func (e *Engine) Activate() {
	if e.pendingSched || e.policy == nil {
		return
	}
	e.pendingSched = true
	e.Cores.Sched.SubmitFunc("sched-pass", "sched", e.Params.EffectiveSchedPass(), e.schedPassFn)
}

// RequestPR starts a partial reconfiguration of st into slot. The load
// job runs on the PR core (the scheduler core itself in single-core
// mode — which is exactly how PR blocks launches there). async tags
// the OCM round-trip of the dual-core path.
func (e *Engine) RequestPR(st *appmodel.Stage, slot *fabric.Slot) {
	if st.Class != slot.Class.Name {
		panic(fmt.Sprintf("sched: stage %v class %q into slot class %q", st, st.Class, slot.Class.Name))
	}
	bits := e.Repo.MustGet(st.BitstreamName)
	e.evictResident(slot)
	if err := slot.BeginLoad(st); err != nil {
		panic(err)
	}
	st.Slot = slot
	st.Loading = true
	if e.Trace != nil {
		e.trace("%v PR request %v -> slot %d", e.K.Now(), st, slot.ID)
	}
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.PRRequest, Slot: slot.ID, App: st.App.String(), Stage: st.Index, Item: -1})
	}
	cost := e.PCAP.LoadDuration(bits)
	if !e.Cache.Lookup(bits.Name) {
		cost += e.sdTime(bits.Bytes)
	}
	if e.Cores.Model == hypervisor.DualCore {
		e.Cores.PostPRRequest()
	}
	e.WindowPR++
	// Contention pressure for D_switch: this request is blocked by
	// every load already pending on the serial PCAP path, so the
	// blocked-task count grows by the current depth (a task stuck
	// behind three loads is blocked three times over — matching the
	// paper's N_blocked/N_PR ratios above 1 under heavy sharing).
	e.WindowBlocked += uint64(e.Cores.PR.PendingByClass("pr"))
	e.Col.PRLoads++
	e.Col.PRBytes += bits.Bytes
	e.submitPRJob(st, slot, bits, cost, 0)
}

// submitPRJob queues one PCAP streaming attempt; a CRC failure (per
// Params.PRFailureRate) re-streams the bitstream, keeping the slot in
// its loading state — exactly the PR server's retry path on hardware.
// attempt counts fault-injected retries (see prFaultModel): a
// fault-model failure backs off and re-submits up to its retry bound,
// then abandons the placement and crash-restarts the app.
func (e *Engine) submitPRJob(st *appmodel.Stage, slot *fabric.Slot, bits *bitstream.Bitstream, cost sim.Duration, attempt int) {
	rt := e.rt(slot)
	rt.prStage, rt.prBits, rt.prCost, rt.prAttempt = st, bits, cost, attempt
	rt.prWaited = 0
	e.Cores.PR.SubmitPooled(bits.Name, "pr", cost, rt.prStartFn, rt.prDoneFn)
}

// prCRCRate is the per-attempt CRC failure probability, clamped so
// retries stay finite.
func (e *Engine) prCRCRate() float64 {
	rate := e.Params.PRFailureRate
	if rate > 0.95 {
		rate = 0.95
	}
	return rate
}

func (rt *slotRT) prStart(wait sim.Duration) {
	rt.prWaited = wait
	if wait > 0 {
		rt.e.Col.PRBlocked++
	}
	rt.e.Col.PRWait += wait
}

func (rt *slotRT) prDone() {
	e := rt.e
	st, slot, bits := rt.prStage, rt.slot, rt.prBits
	cost, attempt, waited := rt.prCost, rt.prAttempt, rt.prWaited
	if slot.Failed() || st.Slot != slot || !st.Loading {
		// The slot died or the app crashed mid-load: the transfer's
		// result is discarded and the region torn down (staying failed
		// if the fault persists).
		e.abortLoad(slot)
		return
	}
	if f := e.prFault; f != nil && f.rate > 0 && f.rng.Float64() < f.rate {
		// Injected reconfiguration error (bad flash sector, PCAP
		// hiccup): bounded retry with backoff.
		if attempt < f.maxRetries {
			e.Col.RecordFaultRetry(st.App.ID)
			e.Col.PRRetries++
			delay := f.delay(attempt)
			e.trace("%v PR fault retry %d/%d for %v -> slot %d (backoff %v)",
				e.K.Now(), attempt+1, f.maxRetries, st, slot.ID, delay)
			e.K.Schedule(delay, func() {
				if slot.Failed() || st.Slot != slot || !st.Loading {
					// Crashed or failed during the backoff.
					if slot.State() == fabric.SlotLoading {
						e.abortLoad(slot)
					}
					return
				}
				e.submitPRJob(st, slot, bits, cost, attempt+1)
			})
			return
		}
		e.failPRPermanently(st, slot)
		return
	}
	if rate := e.prCRCRate(); rate > 0 && e.K.RNG().Float64() < rate {
		// CRC verification failed: the partial is re-streamed.
		e.Col.PRRetries++
		e.trace("%v PR CRC retry %v -> slot %d", e.K.Now(), st, slot.ID)
		e.submitPRJob(st, slot, bits, cost, attempt)
		return
	}
	e.PCAP.RecordLoad(bits, cost, waited)
	if err := slot.CompleteLoad(); err != nil {
		panic(err)
	}
	st.Loading = false
	st.LoadedAt = e.K.Now()
	if e.Trace != nil {
		e.trace("%v PR done %v -> slot %d (wait %v)", e.K.Now(), st, slot.ID, waited)
	}
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.PRDone, Slot: slot.ID, App: st.App.String(), Stage: st.Index, Item: -1, Wait: waited})
	}
	e.beginResident(slot, st)
	if e.Cores.Model == hypervisor.DualCore {
		e.Cores.PostPRStatus()
	}
	e.Activate()
}

// PlaceResident makes st resident in slot instantly, bypassing the
// PCAP. The exclusive baseline uses it after its single full-fabric
// reconfiguration placed all stages at once.
func (e *Engine) PlaceResident(st *appmodel.Stage, slot *fabric.Slot) {
	e.evictResident(slot)
	if err := slot.BeginLoad(st); err != nil {
		panic(err)
	}
	if err := slot.CompleteLoad(); err != nil {
		panic(err)
	}
	st.Slot = slot
	st.Loading = false
	st.LoadedAt = e.K.Now()
	e.beginResident(slot, st)
}

// EvictStage removes st from its (free) slot, e.g. on preemption or
// slot reuse. Evicting an unfinished stage counts as a preemption.
func (e *Engine) EvictStage(st *appmodel.Stage) {
	slot := st.Slot
	if slot == nil {
		return
	}
	if !slot.Free() {
		panic(fmt.Sprintf("sched: evicting stage %v from non-free slot %d", st, slot.ID))
	}
	if !st.Finished() && st.Done > 0 || !st.Finished() && st.App.Started {
		e.Col.Preemptions++
	}
	e.closeResident(slot)
	e.rt(slot).resStage = nil
	st.Evict()
	if err := slot.Clear(); err != nil {
		panic(err)
	}
}

// LaunchItem reserves slot occupancy for st's next item and queues the
// launch on the scheduler core. The slot turns Busy immediately (it is
// committed), but execution begins only when the core gets to the
// launch — queueing behind a PR on single-core systems is the paper's
// task-execution-blocking effect.
func (e *Engine) LaunchItem(st *appmodel.Stage) bool {
	if st.InFlight || st.Finished() || !st.Resident() || !st.NextItemReady() {
		return false
	}
	slot := st.Slot
	if slot.State() != fabric.SlotLoaded {
		return false
	}
	if err := slot.BeginExec(); err != nil {
		panic(err)
	}
	st.InFlight = true
	rt := e.rt(slot)
	idx := st.Done
	dur := st.ItemTime(idx)
	if f := rt.slowFactor; f > 1 {
		// Straggler injection: the region's service rate is degraded.
		dur = sim.Duration(float64(dur) * f)
	}
	rt.st, rt.idx, rt.dur = st, idx, dur
	rt.armed = true
	e.Cores.Sched.SubmitFunc("launch", "launch", e.Params.EffectiveLaunch(), rt.launchFn)
	return true
}

// runLaunch is the scheduler-core body of a launch job: the item enters
// service on the slot's fabric region.
func (rt *slotRT) runLaunch() {
	if !rt.armed {
		// The slot was fault-torn-down (and possibly re-used) while
		// this launch waited on the scheduler core.
		return
	}
	rt.armed = false
	e := rt.e
	st, idx := rt.st, rt.idx
	rt.start = e.K.Now()
	if !st.App.Started {
		st.App.FirstStart = rt.start
	}
	if e.Trace != nil {
		e.trace("%v exec %v item %d on slot %d (%v)", rt.start, st, idx, rt.slot.ID, rt.dur)
	}
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.ExecStart, Slot: rt.slot.ID, App: st.App.String(), Stage: st.Index, Item: idx})
	}
	rt.execEv = e.K.Schedule(rt.dur, rt.execFn)
}

// runExec fires at item completion.
func (rt *slotRT) runExec() {
	e := rt.e
	st, idx, slot := rt.st, rt.idx, rt.slot
	rt.execEv = sim.NoEvent
	if err := slot.CompleteExec(); err != nil {
		panic(err)
	}
	e.Col.AccumulateBusy(st.ImplRes(), e.K.Now().Sub(rt.start))
	st.InFlight = false
	st.Done++
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.ExecDone, Slot: slot.ID, App: st.App.String(), Stage: st.Index, Item: idx})
	}
	if !st.App.Started {
		st.App.Started = true
	}
	if st.App.State == appmodel.StateReady || st.App.State == appmodel.StateWaiting {
		st.App.State = appmodel.StateRunning
	}
	e.itemDone(st)
}

// Pump launches every launchable item of the app. It returns the number
// of launches issued.
func (e *Engine) Pump(a *appmodel.App) int {
	n := 0
	for _, st := range a.Stages {
		if e.LaunchItem(st) {
			n++
		}
	}
	return n
}

// PumpSequential is Pump for policies without inter-slot pipelining
// (FCFS/RR): stage i+1 starts only after stage i finished the batch.
func (e *Engine) PumpSequential(a *appmodel.App) int {
	for _, st := range a.Stages {
		if !st.Finished() {
			if e.LaunchItem(st) {
				return 1
			}
			return 0
		}
	}
	return 0
}

func (e *Engine) itemDone(st *appmodel.Stage) {
	a := st.App
	if a.Done() && a.State != appmodel.StateFinished {
		e.finishApp(a)
	}
	e.Activate()
}

func (e *Engine) finishApp(a *appmodel.App) {
	a.State = appmodel.StateFinished
	a.Finish = e.K.Now()
	if e.Trace != nil {
		e.trace("%v app %v finished (response %v)", e.K.Now(), a, a.Finish.Sub(a.Arrival))
	}
	if e.Recorder != nil {
		e.record(trace.Event{Kind: trace.AppFinish, Slot: -1, App: a.String(), Stage: -1, Item: -1})
	}
	// Release any slots still holding the app's stages.
	for _, st := range a.Stages {
		if st.Slot != nil && st.Slot.Free() {
			e.closeResident(st.Slot)
			e.rt(st.Slot).resStage = nil
			slot := st.Slot
			st.Evict()
			if err := slot.Clear(); err != nil {
				panic(err)
			}
		}
	}
	for i, x := range e.Active {
		if x == a {
			e.Active = append(e.Active[:i], e.Active[i+1:]...)
			break
		}
	}
	e.Col.RecordResponse(metrics.ResponseSample{
		AppID:      a.ID,
		Spec:       a.Spec.Name,
		Batch:      a.Batch,
		Arrival:    a.Arrival,
		Finish:     a.Finish,
		Response:   a.ResponseTime(),
		QueueDelay: a.QueueDelay(),
	})
	e.policy.AppFinished(a)
	if e.OnAppFinished != nil {
		e.OnAppFinished(a)
	}
	if e.OnQueueUpdate != nil {
		e.OnQueueUpdate()
	}
}

// RemoveActive detaches an app from the engine without finishing it
// (live migration). The caller must have ensured the app holds no slots.
func (e *Engine) RemoveActive(a *appmodel.App) {
	for _, st := range a.Stages {
		if st.Slot != nil {
			panic(fmt.Sprintf("sched: migrating app %v still holds slot %d", a, st.Slot.ID))
		}
	}
	for i, x := range e.Active {
		if x == a {
			e.Active = append(e.Active[:i], e.Active[i+1:]...)
			break
		}
	}
}

// Forget removes an app from the engine's bookkeeping entirely
// (Active and every Apps occurrence — intra-pair switching can list
// an app in a board's Apps more than once after a there-and-back
// migration) — for migrations that hand the app to a different
// system, whose metrics and D_switch accounting own it from then on.
// Within a switching pair, migrated apps stay in the old board's Apps
// (both boards belong to the same D_switch controller); across pairs
// they must not.
func (e *Engine) Forget(a *appmodel.App) {
	e.RemoveActive(a)
	kept := e.Apps[:0]
	for _, x := range e.Apps {
		if x != a {
			kept = append(kept, x)
		}
	}
	e.Apps = kept
}

func (e *Engine) sdTime(bytes int64) sim.Duration {
	return sim.Duration(float64(bytes) / float64(e.Params.SDBandwidth) * float64(sim.Second))
}

// FullReconfigCost prices the exclusive baseline's whole-fabric swap:
// storage streaming (full bitstreams exceed the DDR staging cache),
// the PCAP transfer, and PS-PL re-initialization.
func (e *Engine) FullReconfigCost(bits *bitstream.Bitstream) sim.Duration {
	cost := e.PCAP.LoadDuration(bits)
	if !e.Params.FullBitstreamCached {
		cost += e.sdTime(bits.Bytes)
	}
	return cost + e.Params.FullReconfigInit
}

func (e *Engine) beginResident(slot *fabric.Slot, st *appmodel.Stage) {
	rt := e.rt(slot)
	rt.resStage = st
	rt.resSince = e.K.Now()
}

// closeResident accumulates the slot's open residency interval and
// re-opens it at now; the caller clears resStage when the stage actually
// leaves the slot.
func (e *Engine) closeResident(slot *fabric.Slot) {
	rt := e.rt(slot)
	if rt.resStage == nil {
		return
	}
	e.Col.AccumulateResidentSpan(rt.resStage.ImplRes(), rt.resSince, e.K.Now())
	rt.resSince = e.K.Now()
}

func (e *Engine) evictResident(slot *fabric.Slot) {
	rt := e.rt(slot)
	if prev := rt.resStage; prev != nil {
		e.closeResident(slot)
		rt.resStage = nil
		prev.Evict()
	}
}

// FlushResidency closes all open residency intervals (end of run) so
// utilization integrals are complete.
func (e *Engine) FlushResidency() {
	for i := range e.slots {
		if e.slots[i].resStage != nil {
			e.closeResident(e.slots[i].slot)
		}
	}
	e.flushFaults()
}

// ResetWindow clears the D_switch counting window and returns the
// counts it held.
func (e *Engine) ResetWindow() (blocked, prs uint64) {
	blocked, prs = e.WindowBlocked, e.WindowPR
	e.WindowBlocked, e.WindowPR = 0, 0
	return blocked, prs
}

// UnfinishedCount returns the number of injected-but-unfinished apps.
func (e *Engine) UnfinishedCount() int {
	n := 0
	for _, a := range e.Apps {
		if a.State != appmodel.StateFinished {
			n++
		}
	}
	return n
}

// CheckQuiescent panics with diagnostics if the kernel ran dry while
// apps remain unfinished — a scheduling deadlock, always a bug.
func (e *Engine) CheckQuiescent() {
	if e.UnfinishedCount() == 0 {
		return
	}
	msg := fmt.Sprintf("sched: %s deadlock at %v: %d apps unfinished:",
		e.policy.Name(), e.K.Now(), e.UnfinishedCount())
	for _, a := range e.Apps {
		if a.State != appmodel.StateFinished {
			msg += fmt.Sprintf("\n  %v state=%v started=%v remaining=%d", a, a.State, a.Started, a.RemainingItems())
			for _, st := range a.Stages {
				msg += fmt.Sprintf("\n    stage %d done=%d/%d inflight=%v loading=%v slot=%v",
					st.Index, st.Done, a.Batch, st.InFlight, st.Loading, st.Slot != nil)
			}
		}
	}
	panic(msg)
}
