package sched

import (
	"fmt"

	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/registry"
)

// Registration declares one schedulable policy: its canonical
// config/CLI name, display title, the platform it runs on (each policy
// declares its own board floorplan and control-plane model, mirroring
// the paper's evaluation setup), and a factory producing fresh policy
// instances. Third-party policies register with Kind = KindExternal.
type Registration struct {
	// Name is the canonical lower-case lookup key ("versaslot-bl").
	Name string
	// Aliases are alternate lookup keys ("versaslot").
	Aliases []string
	// Title is the display name ("VersaSlot Big.Little").
	Title string
	// Platform is the registered platform the policy runs on by
	// default; scenarios may override it with any platform Supports
	// accepts.
	Platform string
	// Core is the control-plane topology the policy assumes.
	Core hypervisor.CoreModel
	// Factory builds a fresh policy instance per run.
	Factory func() Policy
	// Supports, when non-nil, vets a platform override beyond the
	// structural virtual/DPR check (e.g. the Big.Little policy requires
	// a heterogeneous class mix).
	Supports func(p *fabric.Platform) error
	// Kind is the built-in enum value used by the paper-figure tables;
	// KindExternal for policies registered outside this package.
	Kind Kind
}

// CompatiblePlatform reports whether a policy registration can drive a
// platform: virtual (monolithic) platforms pair only with policies
// whose declared platform is virtual, DPR platforms only with DPR
// policies, and any policy-specific Supports check must pass.
func CompatiblePlatform(r *Registration, p *fabric.Platform) error {
	declared, ok := fabric.LookupPlatform(r.Platform)
	if !ok {
		return fmt.Errorf("sched: policy %q declares unknown platform %q", r.Name, r.Platform)
	}
	if declared.Virtual != p.Virtual {
		if p.Virtual {
			return fmt.Errorf("sched: policy %q drives DPR slots; platform %q is the monolithic baseline", r.Name, p.Name)
		}
		return fmt.Errorf("sched: policy %q multiplexes a monolithic fabric; platform %q has DPR slots", r.Name, p.Name)
	}
	if r.Supports != nil {
		return r.Supports(p)
	}
	return nil
}

// KindExternal marks registrations that are not one of the paper's six
// built-in systems.
const KindExternal Kind = -1

// policies is the shared string-keyed table; the farm's dispatcher
// registry (internal/cluster) uses the same generic helper.
var policies = registry.New[*Registration]("sched")

// Register adds a policy to the registry. The name (and every alias)
// must be non-empty, lower-case-unique, and not already taken; the
// factory must be non-nil.
func Register(r Registration) error {
	if r.Name == "" {
		return fmt.Errorf("sched: register: empty policy name")
	}
	if r.Factory == nil {
		return fmt.Errorf("sched: register %q: nil factory", r.Name)
	}
	if r.Title == "" {
		r.Title = r.Name
	}
	reg := r
	return policies.Register(r.Name, &reg, r.Aliases...)
}

// MustRegister is Register, panicking on error; for init-time use.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Lookup resolves a policy by name or alias (case-insensitive).
func Lookup(name string) (*Registration, bool) {
	return policies.Lookup(name)
}

// Names lists canonical policy names in registration order (built-ins
// first, in the paper's presentation order).
func Names() []string { return policies.Names() }

// Registrations returns every registration in registration order.
func Registrations() []*Registration { return policies.Values() }

// ByKind resolves a built-in registration from its enum value.
func ByKind(k Kind) (*Registration, bool) {
	if k == KindExternal {
		return nil, false
	}
	for _, r := range policies.Values() {
		if r.Kind == k {
			return r, true
		}
	}
	return nil, false
}

// NameOf returns the canonical registry name of a built-in kind.
func NameOf(k Kind) string {
	if r, ok := ByKind(k); ok {
		return r.Name
	}
	return fmt.Sprintf("kind-%d", int(k))
}

func init() {
	MustRegister(Registration{
		Name: "baseline", Title: KindBaseline.String(), Kind: KindBaseline,
		Platform: fabric.ZCU216Monolithic, Core: hypervisor.SingleCore,
		Factory: func() Policy { return &Exclusive{} },
	})
	MustRegister(Registration{
		Name: "fcfs", Title: KindFCFS.String(), Kind: KindFCFS,
		Platform: fabric.ZCU216OnlyLittle, Core: hypervisor.SingleCore,
		Factory: func() Policy { return &FCFS{} },
	})
	MustRegister(Registration{
		Name: "rr", Title: KindRR.String(), Kind: KindRR,
		Platform: fabric.ZCU216OnlyLittle, Core: hypervisor.SingleCore,
		Factory: func() Policy { return &RR{} },
	})
	MustRegister(Registration{
		Name: "nimblock", Title: KindNimblock.String(), Kind: KindNimblock,
		Platform: fabric.ZCU216OnlyLittle, Core: hypervisor.SingleCore,
		Factory: func() Policy { return &Nimblock{} },
	})
	MustRegister(Registration{
		Name: "versaslot-ol", Aliases: []string{"versaslot-only-little"},
		Title: KindVersaSlotOL.String(), Kind: KindVersaSlotOL,
		Platform: fabric.ZCU216OnlyLittle, Core: hypervisor.DualCore,
		Factory: func() Policy { return NewVersaSlotOL() },
	})
	MustRegister(Registration{
		Name: "versaslot-bl", Aliases: []string{"versaslot", "versaslot-big-little"},
		Title: KindVersaSlotBL.String(), Kind: KindVersaSlotBL,
		Platform: fabric.ZCU216BigLittle, Core: hypervisor.DualCore,
		Factory: func() Policy { return NewVersaSlotBL() },
		Supports: func(p *fabric.Platform) error {
			if !p.Heterogeneous() {
				return fmt.Errorf("sched: versaslot-bl needs a heterogeneous slot-class mix; platform %q is uniform", p.Name)
			}
			return nil
		},
	})
}
