package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/sim"
)

// Exclusive is the traditional temporal-multiplexing baseline ([7],
// [16]: AWS-F1-style whole-FPGA allocation): one application owns the
// entire fabric at a time and runs its native monolithic design (all
// stages resident, internally pipelined, no partial reconfiguration).
// Multiplexing is purely temporal: a time slice rotates among queued
// applications, and every context switch performs a full fabric
// reconfiguration — the "significant context switch overhead" the
// paper's introduction calls out. A lone application runs to
// completion unperturbed, which is why this baseline is competitive
// under Loose arrivals and collapses under congestion.
type Exclusive struct {
	e        *Engine
	queue    []*appmodel.App
	current  *appmodel.App
	loading  bool
	draining bool
	sliceEnd sim.Time
}

var _ Policy = (*Exclusive)(nil)

// Name implements Policy.
func (x *Exclusive) Name() string { return KindBaseline.String() }

// Init implements Policy. The board's platform must be virtual
// (monolithic stage regions, no DPR).
func (x *Exclusive) Init(e *Engine) {
	if !e.Board.Platform.Virtual {
		panic("sched: Exclusive requires a virtual (monolithic) platform")
	}
	x.e = e
}

// AppArrived implements Policy.
func (x *Exclusive) AppArrived(a *appmodel.App) {
	x.queue = append(x.queue, a)
	// Wake the scheduler when the running app's slice expires, now that
	// someone is waiting for the fabric.
	if x.current != nil && !x.loading {
		t := x.sliceEnd
		if t < x.e.Now() {
			t = x.e.Now()
		}
		x.e.K.At(t, x.e.Activate)
	}
}

// AppFinished implements Policy.
func (x *Exclusive) AppFinished(a *appmodel.App) {
	if x.current == a {
		x.current = nil
		x.draining = false
	}
}

// Schedule implements Policy.
func (x *Exclusive) Schedule() {
	e := x.e
	if x.loading {
		return
	}
	if x.current == nil {
		if len(x.queue) > 0 && !e.Frozen() {
			a := x.queue[0]
			x.queue = x.queue[1:]
			x.swapIn(a)
		}
		return
	}
	// Time-slice expiry: drain in-flight items, then swap the whole
	// fabric to the next queued app.
	if !x.draining && len(x.queue) > 0 && e.Now() >= x.sliceEnd {
		x.draining = true
	}
	if x.draining {
		if x.anyInFlight() {
			return // in-flight items complete, then we swap
		}
		x.swapOut()
		return
	}
	e.Pump(x.current)
}

func (x *Exclusive) anyInFlight() bool {
	for _, st := range x.current.Stages {
		if st.InFlight {
			return true
		}
	}
	return false
}

// swapOut evicts the current app (its DDR state persists; batch
// progress is kept) and re-queues it at the tail.
func (x *Exclusive) swapOut() {
	e := x.e
	a := x.current
	x.current = nil
	x.draining = false
	for _, st := range a.Stages {
		if st.Slot != nil && st.Slot.Free() {
			e.EvictStage(st)
		}
	}
	a.State = appmodel.StateWaiting
	// Rotate within the bounded run-set: the multiplexer round-robins
	// a working set of applications, FCFS beyond it.
	pos := e.Params.BaselineRunset - 1
	if pos > len(x.queue) {
		pos = len(x.queue)
	}
	if pos < 0 {
		pos = 0
	}
	x.queue = append(x.queue, nil)
	copy(x.queue[pos+1:], x.queue[pos:])
	x.queue[pos] = a
	e.Activate()
}

// swapIn performs the full fabric reconfiguration and places every
// stage of the app's monolithic design.
func (x *Exclusive) swapIn(a *appmodel.App) {
	e := x.e
	x.current = a
	x.loading = true
	a.State = appmodel.StateReady
	if len(a.Stages) == 0 {
		// The monolithic design runs all tasks with the unpartitioned
		// implementation's timing advantage; stages sit in the virtual
		// stage regions of the platform's base class.
		appmodel.TaskStages(a, e.Board.Platform.Smallest().Name, a.Spec.MonoFactor, func(int) string {
			return bitstream.FullName(a.Spec.Name)
		})
	}
	full := e.Repo.MustGet(bitstream.FullName(a.Spec.Name))
	cost := e.FullReconfigCost(full)
	e.Col.PRLoads++
	e.Col.PRBytes += full.Bytes
	e.Cores.PR.SubmitFunc("full-reconfig "+a.Spec.Name, "full-reconfig", cost, func() {
		for i, st := range a.Stages {
			e.PlaceResident(st, e.Board.Slots[i])
		}
		x.loading = false
		x.sliceEnd = e.Now().Add(e.Params.BaselineQuantum)
		if len(x.queue) > 0 {
			e.K.At(x.sliceEnd, e.Activate)
		}
		e.Pump(a)
		e.Activate()
	})
}

// ExtractMigratable implements Policy: queued apps can move; the one
// being executed (or reconfigured in) stays.
func (x *Exclusive) ExtractMigratable() []*appmodel.App {
	var out, kept []*appmodel.App
	for _, a := range x.queue {
		if a.Started {
			kept = append(kept, a)
		} else {
			out = append(out, a)
		}
	}
	x.queue = kept
	return out
}

// AcceptMigrated implements Policy.
func (x *Exclusive) AcceptMigrated(apps []*appmodel.App) {
	x.queue = append(x.queue, apps...)
	x.e.Activate()
}
