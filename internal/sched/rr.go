package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// RR is Coyote-style round-robin spatio-temporal sharing [22]:
// applications are admitted in queue order with gang allocation (like
// FCFS), but a time quantum rotates oversubscribed applications — on
// expiry a running app is drained off its slots, re-queued at the tail,
// and its remaining stages reloaded on its next turn. Fairer than FCFS,
// at the price of extra PR churn. Single-core control plane.
type RR struct {
	e            *Engine
	class        fabric.SlotClass // the board's base slot class
	queue        []*appmodel.App
	running      []*appmodel.App
	placedAt     map[*appmodel.App]sim.Time
	draining     map[*appmodel.App]bool
	cleanupUntil sim.Time
}

var _ Policy = (*RR)(nil)

// Name implements Policy.
func (r *RR) Name() string { return KindRR.String() }

// Init implements Policy. Like FCFS, RR predates DDR bitstream caching.
func (r *RR) Init(e *Engine) {
	r.e = e
	r.class = e.Board.Platform.Smallest()
	e.DisableBitstreamCache()
	r.placedAt = make(map[*appmodel.App]sim.Time)
	r.draining = make(map[*appmodel.App]bool)
}

// AppArrived implements Policy.
func (r *RR) AppArrived(a *appmodel.App) {
	bundle.BuildTasks(a, r.class.Name)
	r.queue = append(r.queue, a)
}

// AppFinished implements Policy: the tenant's slots scrub before reuse.
func (r *RR) AppFinished(a *appmodel.App) {
	r.remove(a)
	r.cleanupUntil = r.e.Now().Add(r.e.Params.TenantTeardown)
	r.e.K.At(r.cleanupUntil, r.e.Activate)
}

func (r *RR) remove(a *appmodel.App) {
	for i, x := range r.running {
		if x == a {
			r.running = append(r.running[:i], r.running[i+1:]...)
			break
		}
	}
	delete(r.placedAt, a)
	delete(r.draining, a)
}

// Schedule implements Policy.
func (r *RR) Schedule() {
	e := r.e
	now := e.Now()
	q := e.Params.RRQuantum

	// Expire quanta: an app past its slice drains if anyone is waiting.
	for _, a := range r.running {
		if r.draining[a] {
			continue
		}
		if len(r.queue) > 0 && now.Sub(r.placedAt[a]) >= q {
			r.draining[a] = true
		}
	}
	// Drain: evict free slots of draining apps; when fully off the
	// fabric, rotate to the tail of the queue.
	for _, a := range append([]*appmodel.App(nil), r.running...) {
		if !r.draining[a] {
			continue
		}
		for _, st := range a.Stages {
			if st.Slot != nil && st.Slot.Free() && !st.Loading {
				e.EvictStage(st)
			}
		}
		if !holdsSlots(a) {
			r.remove(a)
			a.State = appmodel.StateWaiting
			r.queue = append(r.queue, a)
		}
	}
	// Admit in queue order (RR allows backfill past a too-big head —
	// the rotation provides the fairness FCFS lacks). No admission
	// while a finished tenant's state is still being scrubbed.
	if !e.Frozen() && now >= r.cleanupUntil {
		kept := r.queue[:0]
		for _, a := range r.queue {
			need := gangNeed(a, e.Params.GangMaxSlots)
			free := e.Board.EmptySlots(r.class.Name)
			if len(free) >= need {
				r.running = append(r.running, a)
				r.placedAt[a] = now
				a.State = appmodel.StateReady
				placeGang(e, a, free[:need])
				// Re-activate when this app's quantum will expire.
				e.K.Schedule(q, e.Activate)
			} else {
				kept = append(kept, a)
			}
		}
		r.queue = append([]*appmodel.App(nil), kept...)
	}
	// Pump resident pipelines; draining apps finish in-flight items
	// only. Like FCFS, a gang-scheduled app starts only once its whole
	// pipeline is configured.
	for _, a := range r.running {
		if r.draining[a] {
			continue
		}
		reuseForUnplaced(e, a)
		if gangStarted(a) {
			e.Pump(a)
		}
	}
}

// ExtractMigratable implements Policy.
func (r *RR) ExtractMigratable() []*appmodel.App {
	var out, kept []*appmodel.App
	for _, a := range r.queue {
		if !a.Started {
			out = append(out, a)
		} else {
			kept = append(kept, a)
		}
	}
	r.queue = kept
	return out
}

// AcceptMigrated implements Policy.
func (r *RR) AcceptMigrated(apps []*appmodel.App) {
	r.queue = append(r.queue, apps...)
	r.e.Activate()
}

func holdsSlots(a *appmodel.App) bool {
	for _, st := range a.Stages {
		if st.Slot != nil {
			return true
		}
	}
	return false
}
