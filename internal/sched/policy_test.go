package sched

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// runPolicy executes apps through a fresh engine+policy to completion
// and returns the engine.
func runPolicy(t *testing.T, kind Kind, apps []*appmodel.App) *Engine {
	t.Helper()
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	var cfg string
	var model hypervisor.CoreModel
	switch kind {
	case KindBaseline:
		cfg, model = fabric.ZCU216Monolithic, hypervisor.SingleCore
	case KindFCFS, KindRR, KindNimblock:
		cfg, model = fabric.ZCU216OnlyLittle, hypervisor.SingleCore
	case KindVersaSlotOL:
		cfg, model = fabric.ZCU216OnlyLittle, hypervisor.DualCore
	case KindVersaSlotBL:
		cfg, model = fabric.ZCU216BigLittle, hypervisor.DualCore
	}
	board := fabric.NewBoard(0, fabric.MustPlatform(cfg))
	e := NewEngine(k, DefaultParams(), board, model, repo)
	e.SetPolicy(New(kind))
	e.InjectSequence(apps)
	k.Run()
	e.FlushResidency()
	e.CheckQuiescent()
	return e
}

func mkApp(id int, spec *appmodel.AppSpec, batch int, at sim.Duration) *appmodel.App {
	return appmodel.NewApp(id, spec, batch, sim.Time(at))
}

func TestKindsAndNames(t *testing.T) {
	if len(Kinds()) != 6 {
		t.Fatal("six systems expected")
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		p := New(k)
		if p.Name() != k.String() {
			t.Errorf("policy name %q != kind %q", p.Name(), k)
		}
		if seen[p.Name()] {
			t.Errorf("duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	New(Kind(99))
}

// TestVersaSlotBLExtractMigratableUpTo pins the bounded extraction the
// farm rebalancer uses: most recently arrived waiting apps move first,
// the request is never exceeded, and unextracted apps stay queued.
func TestVersaSlotBLExtractMigratableUpTo(t *testing.T) {
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216BigLittle)), hypervisor.DualCore, repo)
	p := NewVersaSlotBL()
	e.SetPolicy(p)
	apps := []*appmodel.App{
		mkApp(0, workload.AN, 3, 0),
		mkApp(1, workload.AN, 3, 0),
		mkApp(2, workload.AN, 3, 0),
	}
	// Inject without running the kernel: the scheduling pass has not
	// fired, so all three sit in the waiting list unbound.
	for _, a := range apps {
		e.InjectNow(a)
	}
	got := p.ExtractMigratableUpTo(2)
	if len(got) != 2 {
		t.Fatalf("extracted %d apps, want 2", len(got))
	}
	if got[0] != apps[2] || got[1] != apps[1] {
		t.Errorf("extraction order = [%v %v], want most recent first [%v %v]",
			got[0], got[1], apps[2], apps[1])
	}
	if len(p.cwait) != 1 || p.cwait[0] != apps[0] {
		t.Errorf("waiting list after extraction = %v, want only %v", p.cwait, apps[0])
	}
	rest := p.ExtractMigratableUpTo(5)
	if len(rest) != 1 || rest[0] != apps[0] {
		t.Errorf("second extraction = %v, want the one remaining app", rest)
	}
}

// TestEngineForget: a cross-pair migration must erase the app from
// the source engine's bookkeeping entirely, or the source pair's
// D_switch stock would keep counting an app another pair now hosts.
func TestEngineForget(t *testing.T) {
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216BigLittle)), hypervisor.DualCore, repo)
	p := NewVersaSlotBL()
	e.SetPolicy(p)
	a := mkApp(0, workload.AN, 3, 0)
	e.InjectNow(a)
	if len(e.Apps) != 1 || len(e.Active) != 1 {
		t.Fatalf("after inject: %d apps, %d active", len(e.Apps), len(e.Active))
	}
	p.ExtractMigratableUpTo(1)
	e.Forget(a)
	if len(e.Apps) != 0 || len(e.Active) != 0 {
		t.Errorf("after Forget: %d apps, %d active, want 0/0", len(e.Apps), len(e.Active))
	}
	if e.UnfinishedCount() != 0 {
		t.Errorf("UnfinishedCount = %d after Forget, want 0", e.UnfinishedCount())
	}
}

func TestExclusiveRunsToCompletionSolo(t *testing.T) {
	apps := []*appmodel.App{mkApp(0, workload.AN, 10, 0)}
	e := runPolicy(t, KindBaseline, apps)
	if apps[0].State != appmodel.StateFinished {
		t.Fatal("app unfinished")
	}
	// A lone app performs exactly one full reconfiguration: temporal
	// multiplexing only swaps when someone is waiting.
	if e.Col.PRLoads != 1 {
		t.Fatalf("solo app did %d reconfigs, want 1", e.Col.PRLoads)
	}
}

func TestExclusiveTimeSlicesUnderContention(t *testing.T) {
	// Two long apps arriving together: the quantum forces swaps, so
	// reconfigurations well exceed one per app.
	apps := []*appmodel.App{
		mkApp(0, workload.AN, 30, 0),
		mkApp(1, workload.OF, 30, 10*sim.Millisecond),
	}
	e := runPolicy(t, KindBaseline, apps)
	if e.Col.PRLoads <= 2 {
		t.Fatalf("no time-slicing: %d reconfigs for 2 contending apps", e.Col.PRLoads)
	}
	for _, a := range apps {
		if a.State != appmodel.StateFinished {
			t.Fatal("app unfinished")
		}
	}
}

func TestExclusiveSoloFasterThanContended(t *testing.T) {
	solo := runPolicy(t, KindBaseline, []*appmodel.App{mkApp(0, workload.IC, 10, 0)})
	soloRT := solo.Col.Responses[0].Response
	pair := runPolicy(t, KindBaseline, []*appmodel.App{
		mkApp(0, workload.IC, 10, 0),
		mkApp(1, workload.IC, 10, 0),
	})
	var worst sim.Duration
	for _, r := range pair.Col.Responses {
		if r.Response > worst {
			worst = r.Response
		}
	}
	if worst <= soloRT {
		t.Fatal("contention did not degrade the exclusive baseline")
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// A 9-task OF occupies 8 slots; a later tiny 3DR must NOT overtake
	// it even though slots for 3DR would free earlier — strict FCFS.
	apps := []*appmodel.App{
		mkApp(0, workload.OF, 30, 0),
		mkApp(1, workload.OF, 30, 10*sim.Millisecond),
		mkApp(2, workload.ThreeDR, 5, 20*sim.Millisecond),
	}
	e := runPolicy(t, KindFCFS, apps)
	_ = e
	// Strict order: app 1 finishes before app 2 can even start, so
	// finish times are ordered by arrival.
	if !(apps[0].Finish < apps[1].Finish && apps[1].Finish < apps[2].Finish) {
		t.Fatalf("FCFS violated arrival order: %v %v %v",
			apps[0].Finish, apps[1].Finish, apps[2].Finish)
	}
}

func TestRRRotatesLongApps(t *testing.T) {
	// Two long apps: RR's quantum must force at least one drain/reload
	// cycle (visible as preemptions / extra PR loads vs FCFS).
	mk := func() []*appmodel.App {
		return []*appmodel.App{
			mkApp(0, workload.AN, 30, 0),
			mkApp(1, workload.AN, 30, 10*sim.Millisecond),
			mkApp(2, workload.AN, 30, 20*sim.Millisecond),
		}
	}
	fcfs := runPolicy(t, KindFCFS, mk())
	rr := runPolicy(t, KindRR, mk())
	if rr.Col.PRLoads <= fcfs.Col.PRLoads {
		t.Fatalf("RR (%d loads) did not reload more than FCFS (%d)",
			rr.Col.PRLoads, fcfs.Col.PRLoads)
	}
}

func TestNimblockBackfills(t *testing.T) {
	// Unlike FCFS, Nimblock admits a small later app when the head
	// cannot use all slots: the tiny 3DR finishes before the second
	// big OF.
	apps := []*appmodel.App{
		mkApp(0, workload.OF, 30, 0),
		mkApp(1, workload.OF, 30, 10*sim.Millisecond),
		mkApp(2, workload.ThreeDR, 5, 20*sim.Millisecond),
	}
	runPolicy(t, KindNimblock, apps)
	if apps[2].Finish >= apps[1].Finish {
		t.Fatal("Nimblock failed to backfill the small app")
	}
}

func TestNimblockSingleCoreSlowerThanVersaSlotOL(t *testing.T) {
	// Identical allocation logic; the dual-core PR server is the only
	// difference — it must not be slower.
	mk := func() []*appmodel.App {
		var out []*appmodel.App
		specs := []*appmodel.AppSpec{workload.IC, workload.AN, workload.OF, workload.LeNet}
		for i, s := range specs {
			out = append(out, mkApp(i, s, 15, sim.Duration(i)*100*sim.Millisecond))
		}
		return out
	}
	nim := runPolicy(t, KindNimblock, mk())
	ol := runPolicy(t, KindVersaSlotOL, mk())
	var nimSum, olSum sim.Duration
	for i := range nim.Col.Responses {
		nimSum += nim.Col.Responses[i].Response
		olSum += ol.Col.Responses[i].Response
	}
	if olSum >= nimSum {
		t.Fatalf("dual-core OL (%v) not faster than single-core Nimblock (%v)", olSum, nimSum)
	}
}

func TestVersaSlotBLBindsBundleableToBig(t *testing.T) {
	apps := []*appmodel.App{mkApp(0, workload.AN, 15, 0)}
	runPolicy(t, KindVersaSlotBL, apps)
	a := apps[0]
	if len(a.Stages) != 2 {
		t.Fatalf("AN should run as 2 bundles, got %d stages", len(a.Stages))
	}
	for _, st := range a.Stages {
		if st.Class != "Big" {
			t.Fatal("bundleable app not bound to Big slots")
		}
	}
}

func TestVersaSlotBLSendsLeNetToLittle(t *testing.T) {
	apps := []*appmodel.App{mkApp(0, workload.LeNet, 15, 0)}
	runPolicy(t, KindVersaSlotBL, apps)
	a := apps[0]
	if len(a.Stages) != 6 {
		t.Fatalf("LeNet should run as 6 task stages, got %d", len(a.Stages))
	}
	for _, st := range a.Stages {
		if st.Class != "Little" {
			t.Fatal("non-bundleable app placed in Big slots")
		}
	}
}

func TestVersaSlotBLRebinding(t *testing.T) {
	// First an app that takes the Big slots, then an IC that lands on
	// Little; when the Big apps leave, later arrivals bind Big again.
	// Rebinding itself is observed via a bundleable app first bound to
	// Little (Big busy) that has NOT started when Big frees.
	apps := []*appmodel.App{
		mkApp(0, workload.AN, 8, 0),                        // takes Big slots
		mkApp(1, workload.IC, 25, 20*sim.Millisecond),      // Big full -> Little
		mkApp(2, workload.OF, 25, 40*sim.Millisecond),      // Little or waits
		mkApp(3, workload.LeNet, 10, 60*sim.Millisecond),   // Little only
		mkApp(4, workload.ThreeDR, 20, 80*sim.Millisecond), // anywhere
	}
	e := runPolicy(t, KindVersaSlotBL, apps)
	for _, a := range apps {
		if a.State != appmodel.StateFinished {
			t.Fatalf("app %v unfinished", a)
		}
	}
	// The run must have used both slot kinds.
	bigUsed, littleUsed := false, false
	for _, a := range apps {
		for _, st := range a.Stages {
			if st.Class == "Big" {
				bigUsed = true
			} else {
				littleUsed = true
			}
		}
	}
	if !bigUsed || !littleUsed {
		t.Fatalf("slot kinds unused: big=%v little=%v", bigUsed, littleUsed)
	}
	_ = e
}

func TestVersaSlotBLFewerPRLoadsThanOL(t *testing.T) {
	// Bundling's whole point: 3 tasks -> 1 load. For the same
	// workload, BL must issue fewer PR loads than OL.
	mk := func() []*appmodel.App {
		var out []*appmodel.App
		for i := 0; i < 6; i++ {
			spec := []*appmodel.AppSpec{workload.IC, workload.AN, workload.OF}[i%3]
			out = append(out, mkApp(i, spec, 15, sim.Duration(i)*200*sim.Millisecond))
		}
		return out
	}
	ol := runPolicy(t, KindVersaSlotOL, mk())
	bl := runPolicy(t, KindVersaSlotBL, mk())
	if bl.Col.PRLoads >= ol.Col.PRLoads {
		t.Fatalf("BL loads (%d) not below OL loads (%d)", bl.Col.PRLoads, ol.Col.PRLoads)
	}
}

func TestPoliciesCompleteEverything(t *testing.T) {
	// Cross-policy liveness on a mixed congested workload.
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 12
	seq := workload.Generate(p, 31)
	for _, kind := range Kinds() {
		apps, err := seq.Instantiate(0)
		if err != nil {
			t.Fatal(err)
		}
		e := runPolicy(t, kind, apps)
		if got := len(e.Col.Responses); got != 12 {
			t.Errorf("%v finished %d of 12", kind, got)
		}
	}
}

func TestExtractMigratableOnlyUnstarted(t *testing.T) {
	for _, kind := range Kinds() {
		k := sim.NewKernel(1)
		repo := bitstream.NewRepository()
		bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
		var cfg string
		model := hypervisor.SingleCore
		switch kind {
		case KindBaseline:
			cfg = fabric.ZCU216Monolithic
		case KindVersaSlotBL:
			cfg, model = fabric.ZCU216BigLittle, hypervisor.DualCore
		case KindVersaSlotOL:
			cfg, model = fabric.ZCU216OnlyLittle, hypervisor.DualCore
		default:
			cfg = fabric.ZCU216OnlyLittle
		}
		e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(cfg)), model, repo)
		e.SetPolicy(New(kind))
		// Saturate, then inject stragglers that cannot start.
		var apps []*appmodel.App
		for i := 0; i < 8; i++ {
			apps = append(apps, mkApp(i, workload.OF, 30, sim.Duration(i)*sim.Millisecond))
		}
		e.InjectSequence(apps)
		k.RunUntil(sim.Time(500 * sim.Millisecond))
		moved := e.Policy().ExtractMigratable()
		for _, a := range moved {
			if a.Started {
				t.Errorf("%v migrated a started app", kind)
			}
			for _, st := range a.Stages {
				if st.Slot != nil {
					t.Errorf("%v migrated an app holding a slot", kind)
				}
			}
		}
	}
}
