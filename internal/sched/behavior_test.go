package sched

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// --- Exclusive baseline specifics ------------------------------------

func TestExclusiveQuantumGranularity(t *testing.T) {
	// With a huge quantum the baseline degenerates to run-to-completion:
	// exactly one reconfiguration per app even under contention.
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	params := DefaultParams()
	params.BaselineQuantum = 3600 * sim.Second
	e := NewEngine(k, params, fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216Monolithic)), hypervisor.SingleCore, repo)
	e.SetPolicy(New(KindBaseline))
	apps := []*appmodel.App{
		appmodel.NewApp(0, workload.IC, 20, 0),
		appmodel.NewApp(1, workload.AN, 20, sim.Time(10*sim.Millisecond)),
	}
	e.InjectSequence(apps)
	k.Run()
	e.CheckQuiescent()
	if e.Col.PRLoads != 2 {
		t.Fatalf("run-to-completion baseline did %d reconfigs, want 2", e.Col.PRLoads)
	}
}

// --- VersaSlot BL rebinding --------------------------------------------

// TestBLRebindingMovesWaitingAppToBig drives the rebinding branch of
// Algorithm 1 deterministically: a bundleable app is bound to Little
// while the Big slots are busy; when the Big app finishes before the
// Little-bound app starts, the policy unbinds and rebinds it to Big.
func TestBLRebindingMovesWaitingAppToBig(t *testing.T) {
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216BigLittle)), hypervisor.DualCore, repo)
	pol := NewVersaSlotBL()
	e.SetPolicy(pol)

	// App 0: tiny bundleable app that takes the Big slots briefly.
	// Apps 1-4: LeNet floods the Little slots so app 5 (bundleable)
	// ends up queued; when app 0 leaves the Big slots, rebinding gives
	// them to a not-yet-started bundleable app.
	apps := []*appmodel.App{
		appmodel.NewApp(0, workload.ThreeDR, 2, 0),
		appmodel.NewApp(1, workload.LeNet, 30, sim.Time(sim.Millisecond)),
		appmodel.NewApp(2, workload.LeNet, 30, sim.Time(2*sim.Millisecond)),
		appmodel.NewApp(3, workload.IC, 25, sim.Time(3*sim.Millisecond)),
		appmodel.NewApp(4, workload.IC, 25, sim.Time(4*sim.Millisecond)),
	}
	e.InjectSequence(apps)
	k.Run()
	e.CheckQuiescent()

	// At least one of the bundleable apps (3, 4) must have executed in
	// Big slots even though the Big slots were taken on its arrival.
	rebound := false
	for _, a := range apps[3:] {
		if len(a.Stages) > 0 && a.Stages[0].Class == "Big" {
			rebound = true
		}
	}
	if !rebound {
		t.Fatal("no bundleable app reached the Big slots after they freed")
	}
}

// --- ensureProgress ----------------------------------------------------

func TestEnsureProgressSwapsStarvedPipeline(t *testing.T) {
	k := sim.NewKernel(1)
	repo := bitstream.NewRepository()
	bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
	e := NewEngine(k, DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216OnlyLittle)), hypervisor.DualCore, repo)
	e.SetPolicy(&nullPolicy{})
	a := littleApp(1, workload.ThreeDR, 5)
	e.Apps = append(e.Apps, a)
	e.Active = append(e.Active, a)

	// Simulate a pathological shrink: stage 1 resident, stage 0 (the
	// earliest unfinished) evicted, nothing runnable.
	e.PlaceResident(a.Stages[1], e.Board.Slots[0])
	if a.Stages[1].NextItemReady() {
		t.Fatal("setup: stage 1 should be starved")
	}
	ensureProgress(e, a)
	if !a.Stages[0].Loading && a.Stages[0].Slot == nil {
		t.Fatal("ensureProgress did not reload the earliest unfinished stage")
	}
	k.Run()
	if !a.Stages[0].Resident() {
		t.Fatal("stage 0 not resident after swap")
	}
}

// --- Gang helpers ------------------------------------------------------

func TestGangNeedClamps(t *testing.T) {
	a := littleApp(1, workload.OF, 5) // 9 stages
	if got := gangNeed(a, 8); got != 8 {
		t.Fatalf("gangNeed %d, want 8 (board cap)", got)
	}
	// Finished stages reduce the need.
	for _, st := range a.Stages[:5] {
		st.Done = 5
	}
	if got := gangNeed(a, 8); got != 4 {
		t.Fatalf("gangNeed %d after progress, want 4", got)
	}
	for _, st := range a.Stages {
		st.Done = 5
	}
	if got := gangNeed(a, 8); got != 1 {
		t.Fatalf("gangNeed floor %d, want 1", got)
	}
}

func TestShrinkVictimSparesEarliestUnfinished(t *testing.T) {
	a := littleApp(1, workload.IC, 5)
	slots := []*fabric.Slot{
		{ID: 0, Class: fabric.LittleClass}, {ID: 1, Class: fabric.LittleClass},
	}
	// Stage 0 (earliest unfinished) and stage 3 both resident and idle.
	mustResident(t, a.Stages[0], slots[0])
	mustResident(t, a.Stages[3], slots[1])
	v := shrinkVictim(a)
	if v != a.Stages[3] {
		t.Fatalf("victim %v, want the downstream stage", v)
	}
	// Only the earliest unfinished resident: no victim.
	a.Stages[3].Evict()
	if shrinkVictim(a) != nil {
		t.Fatal("earliest unfinished stage chosen as victim")
	}
}

func mustResident(t *testing.T, st *appmodel.Stage, slot *fabric.Slot) {
	t.Helper()
	if err := slot.BeginLoad(st); err != nil {
		t.Fatal(err)
	}
	if err := slot.CompleteLoad(); err != nil {
		t.Fatal(err)
	}
	st.Slot = slot
	st.Loading = false
}

// --- Teardown gate ------------------------------------------------------

func TestFCFSTeardownDelaysAdmission(t *testing.T) {
	mk := func(teardown sim.Duration) sim.Time {
		k := sim.NewKernel(1)
		repo := bitstream.NewRepository()
		bitstream.NewGenerator().GenerateAll(repo, workload.Suite())
		params := DefaultParams()
		params.TenantTeardown = teardown
		e := NewEngine(k, params, fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216OnlyLittle)), hypervisor.SingleCore, repo)
		e.SetPolicy(New(KindFCFS))
		// Two 9-task apps: each gang needs all 8 slots, so the second
		// admission must wait for the first tenant's teardown.
		apps := []*appmodel.App{
			appmodel.NewApp(0, workload.OF, 3, 0),
			appmodel.NewApp(1, workload.OF, 3, sim.Time(sim.Millisecond)),
		}
		e.InjectSequence(apps)
		k.Run()
		e.CheckQuiescent()
		return apps[1].Finish
	}
	fast := mk(0)
	slow := mk(2 * sim.Second)
	if slow < fast.Add(1900*sim.Millisecond) {
		t.Fatalf("teardown not respected: %v vs %v", fast, slow)
	}
}
