package sched

import (
	"fmt"

	"versaslot/internal/appmodel"
)

// Policy is a scheduling algorithm driven by the engine: the engine
// invokes Schedule as a CPU job whenever something happened (arrival,
// PR completion, item completion); the policy inspects state and issues
// PRs, launches, evictions.
type Policy interface {
	// Name identifies the policy in reports ("VersaSlot Big.Little").
	Name() string
	// Init binds the policy to its engine before any arrivals.
	Init(e *Engine)
	// AppArrived registers a new candidate application.
	AppArrived(a *appmodel.App)
	// Schedule performs one scheduling pass.
	Schedule()
	// AppFinished tells the policy an app completed (slots already
	// released by the engine).
	AppFinished(a *appmodel.App)
	// ExtractMigratable removes and returns apps eligible for live
	// migration: arrived but not yet executing ("applications and tasks
	// in the ready list"; ongoing tasks continue on the old board).
	ExtractMigratable() []*appmodel.App
	// AcceptMigrated enqueues apps transferred from another board.
	AcceptMigrated(apps []*appmodel.App)
}

// MigrationLimiter is an optional Policy extension for callers that
// migrate only part of the queue (the farm rebalancer): it extracts at
// most n migratable apps, preferring the cheapest to move, without
// dissolving scheduling state for apps that stay. Policies whose
// ExtractMigratable is a lossless queue drain don't need it — callers
// can extract everything and re-accept the remainder.
type MigrationLimiter interface {
	ExtractMigratableUpTo(n int) []*appmodel.App
}

// Kind enumerates the built-in policies.
type Kind int

const (
	// KindBaseline is exclusive temporal multiplexing with full-fabric
	// reconfiguration.
	KindBaseline Kind = iota
	// KindFCFS is first-come-first-served spatio-temporal sharing.
	KindFCFS
	// KindRR is Coyote-style round-robin sharing.
	KindRR
	// KindNimblock is the state-of-the-art single-core slot scheduler.
	KindNimblock
	// KindVersaSlotOL is VersaSlot on an Only.Little board.
	KindVersaSlotOL
	// KindVersaSlotBL is VersaSlot on a Big.Little board.
	KindVersaSlotBL
)

// Kinds lists all policies in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{KindBaseline, KindFCFS, KindRR, KindNimblock, KindVersaSlotOL, KindVersaSlotBL}
}

func (k Kind) String() string {
	switch k {
	case KindBaseline:
		return "Baseline"
	case KindFCFS:
		return "FCFS"
	case KindRR:
		return "RR"
	case KindNimblock:
		return "Nimblock"
	case KindVersaSlotOL:
		return "VersaSlot Only.Little"
	case KindVersaSlotBL:
		return "VersaSlot Big.Little"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New constructs a policy instance of the given built-in kind via the
// registry.
func New(k Kind) Policy {
	r, ok := ByKind(k)
	if !ok {
		panic(fmt.Sprintf("sched: unknown policy kind %d", int(k)))
	}
	return r.Factory()
}
