package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/pipeline"
	"versaslot/internal/sim"
)

// littleSched is the shared machinery of the two uniform-slot pipeline
// schedulers:
//
//   - Nimblock [15]: ILP-optimal slot counts, inter-slot item
//     pipelining, aging-based preemption — but a single-core control
//     plane, so every PCAP load blocks scheduling and launches, and
//     leftover slots are not redistributed.
//   - VersaSlot Only.Little: the same allocation discipline with the
//     dual-core PR server (chosen by the runner's CoreModel) plus
//     redistribution of leftover slots to running applications.
type littleSched struct {
	kind         Kind
	redistribute bool

	e *Engine
	// class is the slot class the scheduler operates on: the board's
	// base (smallest-capacity) class, so uniform platforms of any size
	// class — Little, Big, Large, Small — run the same discipline.
	class       fabric.SlotClass
	waiting     []*appmodel.App
	running     []*appmodel.App
	alloc       map[*appmodel.App]int
	opt         map[*appmodel.App]int // O_L: ILP-optimal slot count
	maxUse      map[*appmodel.App]int // top-up ceiling for redistribution
	lastPreempt sim.Time

	// Per-arrival planning scratch (the plan is consumed synchronously).
	ev        pipeline.Eval
	planTimes []sim.Duration
}

// Nimblock is the state-of-the-art single-core comparator.
type Nimblock struct{ littleSched }

var _ Policy = (*Nimblock)(nil)

// Init implements Policy.
func (n *Nimblock) Init(e *Engine) { n.littleSched.init(KindNimblock, false, e) }

// Name implements Policy.
func (n *Nimblock) Name() string { return KindNimblock.String() }

// NewVersaSlotOL returns VersaSlot on an Only.Little board. Pair it with
// hypervisor.DualCore in the runner: the async PR server is the system's
// point (Section III-B, Fig. 2 middle).
func NewVersaSlotOL() Policy { return &versaSlotOL{} }

type versaSlotOL struct{ littleSched }

var _ Policy = (*versaSlotOL)(nil)

// Init implements Policy.
func (v *versaSlotOL) Init(e *Engine) { v.littleSched.init(KindVersaSlotOL, true, e) }

// Name implements Policy.
func (v *versaSlotOL) Name() string { return KindVersaSlotOL.String() }

func (l *littleSched) init(kind Kind, redistribute bool, e *Engine) {
	l.kind = kind
	l.redistribute = redistribute
	l.e = e
	l.class = e.Board.Platform.Smallest()
	l.alloc = make(map[*appmodel.App]int)
	l.opt = make(map[*appmodel.App]int)
	l.maxUse = make(map[*appmodel.App]int)
}

// Name implements Policy.
func (l *littleSched) Name() string { return l.kind.String() }

// AppArrived implements Policy.
func (l *littleSched) AppArrived(a *appmodel.App) {
	bundle.BuildTasks(a, l.class.Name)
	plan := l.planFor(a)
	max := l.e.Board.Count(l.class.Name)
	if max > l.e.Params.MaxSlotsPerApp {
		max = l.e.Params.MaxSlotsPerApp
	}
	l.opt[a] = plan.OptimalSlotsIn(&l.ev, max)
	l.maxUse[a] = plan.MaxUsefulSlotsIn(&l.ev, max)
	l.waiting = append(l.waiting, a)
}

func (l *littleSched) planFor(a *appmodel.App) pipeline.Plan {
	if cap(l.planTimes) < len(a.Stages) {
		l.planTimes = make([]sim.Duration, len(a.Stages))
	}
	times := l.planTimes[:len(a.Stages)]
	for i, st := range a.Stages {
		times[i] = st.SteadyItemTime()
	}
	load := l.e.PCAP.LoadDuration(l.e.Repo.MustGet(a.Stages[0].BitstreamName))
	return pipeline.Plan{StageTimes: times, Batch: a.Batch, LoadTime: load}
}

// AppFinished implements Policy.
func (l *littleSched) AppFinished(a *appmodel.App) {
	l.drop(a)
}

func (l *littleSched) drop(a *appmodel.App) {
	for i, x := range l.running {
		if x == a {
			l.running = append(l.running[:i], l.running[i+1:]...)
			break
		}
	}
	delete(l.alloc, a)
}

// Schedule implements Policy.
func (l *littleSched) Schedule() {
	e := l.e
	l.releaseAndReuse()
	if !e.Frozen() {
		l.admit()
		if l.redistribute {
			l.topUp()
		}
		l.preemptIfStarved()
	}
	l.place()
	for _, a := range l.running {
		ensureProgress(e, a)
		e.Pump(a)
	}
	// Apps still waiting for slots are blocked tasks in the D_switch
	// sense: their PR cannot even be issued.
	e.WindowBlocked += uint64(len(l.waiting))
}

// releaseAndReuse recycles finished stages' slots: within the same app
// when it still has unplaced work, otherwise back to the free pool.
func (l *littleSched) releaseAndReuse() {
	e := l.e
	for _, a := range l.running {
		reuseForUnplaced(e, a)
		if unplacedCount(a) == 0 {
			for _, st := range a.Stages {
				if st.Finished() && st.Slot != nil && st.Slot.Free() {
					e.EvictStage(st)
				}
			}
		}
		// Enforce shrunken allocations (preemption): evict idle stages
		// until the app holds no more slots than allocated.
		for heldSlots(a) > l.alloc[a] {
			victim := shrinkVictim(a)
			if victim == nil {
				break // all busy; retry at next item boundary
			}
			e.EvictStage(victim)
		}
	}
}

// admit gives waiting apps their ILP-optimal count, greedily in arrival
// order with backfill (no head-of-line blocking).
func (l *littleSched) admit() {
	e := l.e
	kept := l.waiting[:0]
	for _, a := range l.waiting {
		free := e.Board.CountEmpty(l.class.Name) - l.reservedSlack()
		if free <= 0 {
			kept = append(kept, a)
			continue
		}
		want := l.opt[a]
		if want > free {
			want = free
		}
		if want < 1 {
			kept = append(kept, a)
			continue
		}
		l.alloc[a] = want
		a.State = appmodel.StateReady
		l.running = append(l.running, a)
	}
	l.waiting = kept
}

// reservedSlack counts slots already promised to running apps but not
// yet physically held (placement is asynchronous).
func (l *littleSched) reservedSlack() int {
	slack := 0
	for _, a := range l.running {
		short := l.alloc[a] - heldSlots(a)
		rem := unplacedCount(a)
		if short > rem {
			short = rem
		}
		if short > 0 {
			slack += short
		}
	}
	return slack
}

// topUp is VersaSlot's redistribution: leftover slots go to running
// apps (front of the runnable queue first) up to their maximum useful
// count, avoiding slot idling.
func (l *littleSched) topUp() {
	e := l.e
	for _, a := range l.running {
		free := e.Board.CountEmpty(l.class.Name) - l.reservedSlack()
		if free <= 0 {
			return
		}
		ceil := l.maxUse[a]
		if rem := unplacedCount(a) + heldSlots(a); ceil > rem {
			ceil = rem
		}
		extra := ceil - l.alloc[a]
		if extra <= 0 {
			continue
		}
		if extra > free {
			extra = free
		}
		l.alloc[a] += extra
	}
}

// preemptIfStarved implements the aging preemption of [15]: when an app
// has waited past PreemptAge with nothing free, the running app with
// the most remaining work cedes one slot.
func (l *littleSched) preemptIfStarved() {
	e := l.e
	if len(l.waiting) == 0 {
		return
	}
	if e.Board.CountEmpty(l.class.Name)-l.reservedSlack() > 0 {
		return
	}
	now := e.Now()
	starved := false
	for _, a := range l.waiting {
		if now.Sub(a.Arrival) >= e.Params.PreemptAge {
			starved = true
			break
		}
	}
	if !starved || now.Sub(l.lastPreempt) < e.Params.PreemptAge/4 {
		return
	}
	var victim *appmodel.App
	most := l.e.Params.PreemptMinRemaining
	for _, a := range l.running {
		if l.alloc[a] <= 1 {
			continue
		}
		if rem := a.RemainingItems(); rem >= most {
			most = rem
			victim = a
		}
	}
	if victim == nil {
		return
	}
	l.alloc[victim]--
	l.lastPreempt = now
	// releaseAndReuse enforces the shrink at the next item boundary.
}

// place physically loads stages until each app holds its allocation.
func (l *littleSched) place() {
	e := l.e
	for _, a := range l.running {
		for heldSlots(a) < l.alloc[a] {
			st := nextUnplaced(a)
			if st == nil {
				break
			}
			slot := e.Board.FirstEmpty(l.class.Name)
			if slot == nil {
				break
			}
			e.RequestPR(st, slot)
		}
	}
}

// ExtractMigratable implements Policy.
func (l *littleSched) ExtractMigratable() []*appmodel.App {
	out := l.waiting
	l.waiting = nil
	return out
}

// AcceptMigrated implements Policy.
func (l *littleSched) AcceptMigrated(apps []*appmodel.App) {
	for _, a := range apps {
		// Rebuild plans against this board's parameters.
		if len(a.Stages) == 0 || a.Stages[0].Class != l.class.Name {
			appmodel.ResetStages(a)
		}
		l.AppArrived(a)
	}
	l.e.Activate()
}

func heldSlots(a *appmodel.App) int {
	n := 0
	for _, st := range a.Stages {
		if st.Slot != nil {
			n++
		}
	}
	return n
}

func unplacedCount(a *appmodel.App) int {
	n := 0
	for _, st := range a.Stages {
		if !st.Finished() && st.Slot == nil {
			n++
		}
	}
	return n
}

func nextUnplaced(a *appmodel.App) *appmodel.Stage {
	for _, st := range a.Stages {
		if !st.Finished() && st.Slot == nil {
			return st
		}
	}
	return nil
}

func earliestUnfinished(a *appmodel.App) *appmodel.Stage {
	for _, st := range a.Stages {
		if !st.Finished() {
			return st
		}
	}
	return nil
}

// shrinkVictim picks the stage to evict when an app must give a slot
// back: the most downstream idle stage that is not the earliest
// unfinished one — evicting that one would starve the whole pipeline.
func shrinkVictim(a *appmodel.App) *appmodel.Stage {
	first := earliestUnfinished(a)
	for i := len(a.Stages) - 1; i >= 0; i-- {
		st := a.Stages[i]
		if st == first {
			continue
		}
		if st.Slot != nil && !st.Loading && !st.InFlight && st.Slot.Free() && !st.Finished() {
			return st
		}
	}
	return nil
}

// ensureProgress is the liveness safety net for under-allocated apps:
// if the earliest unfinished stage has no slot and nothing the app
// holds can execute, the most downstream idle stage cedes its slot.
func ensureProgress(e *Engine, a *appmodel.App) {
	first := earliestUnfinished(a)
	if first == nil || first.Slot != nil {
		return
	}
	for _, st := range a.Stages {
		if st.Slot == nil {
			continue
		}
		if st.InFlight || st.Loading || (st.Resident() && st.NextItemReady()) {
			return // something is (or can get) running
		}
	}
	victim := shrinkVictim(a)
	if victim == nil {
		return
	}
	slot := victim.Slot
	e.EvictStage(victim)
	if slot.Class.Name == first.Class {
		e.RequestPR(first, slot)
	}
}
