package sched

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// FCFS is first-come-first-served spatio-temporal sharing: applications
// are admitted strictly in arrival order (head-of-line blocking), and
// each gets one Little slot per task (gang allocation: the whole
// pipeline must be resident before the app is admitted, so a big app
// behind a busy fabric blocks everyone behind it). No ILP sizing, no
// backfill, no preemption. Single-core control plane.
type FCFS struct {
	e            *Engine
	class        fabric.SlotClass // the board's base slot class
	queue        []*appmodel.App  // waiting, strict arrival order
	running      []*appmodel.App
	cleanupUntil sim.Time
}

var _ Policy = (*FCFS)(nil)

// Name implements Policy.
func (f *FCFS) Name() string { return KindFCFS.String() }

// Init implements Policy. FCFS predates DDR bitstream caching: every
// PR re-streams from storage.
func (f *FCFS) Init(e *Engine) {
	f.e = e
	f.class = e.Board.Platform.Smallest()
	e.DisableBitstreamCache()
}

// AppArrived implements Policy.
func (f *FCFS) AppArrived(a *appmodel.App) {
	bundle.BuildTasks(a, f.class.Name)
	f.queue = append(f.queue, a)
}

// AppFinished implements Policy: the tenant's slots scrub before reuse.
func (f *FCFS) AppFinished(a *appmodel.App) {
	for i, x := range f.running {
		if x == a {
			f.running = append(f.running[:i], f.running[i+1:]...)
			break
		}
	}
	f.cleanupUntil = f.e.Now().Add(f.e.Params.TenantTeardown)
	f.e.K.At(f.cleanupUntil, f.e.Activate)
}

// Schedule implements Policy.
func (f *FCFS) Schedule() {
	e := f.e
	// Admit from the head only: strict FCFS. No admission while a
	// finished tenant's state is still being scrubbed.
	for len(f.queue) > 0 && !e.Frozen() && e.Now() >= f.cleanupUntil {
		head := f.queue[0]
		need := gangNeed(head, e.Params.GangMaxSlots)
		free := e.Board.EmptySlots(f.class.Name)
		if len(free) < need {
			break
		}
		f.queue = f.queue[1:]
		f.running = append(f.running, head)
		head.State = appmodel.StateReady
		placeGang(e, head, free[:need])
	}
	// Reuse slots of finished stages for still-unplaced stages, then
	// pump the resident pipelines. A gang-scheduled app starts only
	// once its whole pipeline is configured (naive systems stream data
	// after the fabric is set up, not stage by stage).
	for _, a := range f.running {
		reuseForUnplaced(e, a)
		if gangStarted(a) {
			e.Pump(a)
		}
	}
}

// ExtractMigratable implements Policy.
func (f *FCFS) ExtractMigratable() []*appmodel.App {
	out := f.queue
	f.queue = nil
	return out
}

// AcceptMigrated implements Policy.
func (f *FCFS) AcceptMigrated(apps []*appmodel.App) {
	f.queue = append(f.queue, apps...)
	f.e.Activate()
}

// gangNeed returns how many slots a gang allocation wants: one per
// unfinished stage, capped by the board.
func gangNeed(a *appmodel.App, boardSlots int) int {
	n := a.UnfinishedStages()
	if n > boardSlots {
		n = boardSlots
	}
	if n < 1 {
		n = 1
	}
	return n
}

// placeGang loads the app's first len(slots) unfinished stages.
func placeGang(e *Engine, a *appmodel.App, slots []*fabric.Slot) {
	i := 0
	for _, st := range a.Stages {
		if i >= len(slots) {
			break
		}
		if st.Finished() || st.Slot != nil {
			continue
		}
		e.RequestPR(st, slots[i])
		i++
	}
}

// gangStarted reports whether a gang-scheduled app may begin execution:
// every configuration it is waiting on has completed (or it already ran,
// in which case mid-run reloads do not re-gate it).
func gangStarted(a *appmodel.App) bool {
	if a.Started {
		return true
	}
	for _, st := range a.Stages {
		if st.Loading {
			return false
		}
	}
	return true
}

// reuseForUnplaced recycles slots of finished stages into the app's
// not-yet-placed stages (needed when task count exceeds board slots).
// The pairing walks both sequences in stage order with a cursor —
// placing a stage cannot un-finish an earlier one, so no intermediate
// list is needed.
func reuseForUnplaced(e *Engine, a *appmodel.App) {
	u := nextUnplacedIdx(a, 0)
	if u < 0 {
		return
	}
	for _, st := range a.Stages {
		if st.Finished() && st.Slot != nil && st.Slot.Free() {
			slot := st.Slot
			e.EvictStage(st)
			e.RequestPR(a.Stages[u], slot)
			u = nextUnplacedIdx(a, u+1)
			if u < 0 {
				return
			}
		}
	}
}

func nextUnplacedIdx(a *appmodel.App, from int) int {
	for i := from; i < len(a.Stages); i++ {
		st := a.Stages[i]
		if !st.Finished() && st.Slot == nil {
			return i
		}
	}
	return -1
}
