package interlink

import (
	"testing"

	"versaslot/internal/sim"
)

func TestTransferTime(t *testing.T) {
	k := sim.NewKernel(1)
	l := New(k, "test", 1<<30, 100*sim.Microsecond) // 1 GiB/s
	got := l.TransferTime(1 << 30)
	want := sim.Second + 100*sim.Microsecond
	if got != want {
		t.Fatalf("transfer time %v, want %v", got, want)
	}
}

func TestTransfersSerialize(t *testing.T) {
	k := sim.NewKernel(1)
	l := New(k, "test", 1<<20, 0) // 1 MiB/s
	var done []sim.Time
	l.Transfer("a", 1<<20, func() { done = append(done, k.Now()) })
	l.Transfer("b", 1<<20, func() { done = append(done, k.Now()) })
	k.Run()
	if len(done) != 2 {
		t.Fatal("transfers lost")
	}
	if done[0] != sim.Time(sim.Second) || done[1] != sim.Time(2*sim.Second) {
		t.Fatalf("transfers overlapped: %v", done)
	}
}

func TestStats(t *testing.T) {
	k := sim.NewKernel(1)
	l := NewDefault(k, "aurora")
	l.Transfer("x", 1<<20, nil)
	k.Run()
	s := l.Stats()
	if s.Transfers != 1 || s.Bytes != 1<<20 || s.BusyTime <= 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDefaultBandwidthIsAuroraScale(t *testing.T) {
	// One 64B66B lane: ~1.2 GB/s payload. A ~1 MB migration payload
	// must land near the paper's ~1 ms switching overhead.
	k := sim.NewKernel(1)
	l := NewDefault(k, "aurora")
	d := l.TransferTime(1 << 20)
	if d < 500*sim.Microsecond || d > 2*sim.Millisecond {
		t.Fatalf("1MB transfer takes %v; expected ~1ms", d)
	}
}

func TestNewValidatesBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	New(sim.NewKernel(1), "bad", 0, 0)
}
