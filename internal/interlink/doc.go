// Package interlink models the board-to-board transport of the
// cross-board switching module: Aurora 64B66B framing over the zSFP+
// GT transceivers, driven by DMA ("to transfer tasks, application
// information, and data directly via DMA to another FPGA unit").
//
// What scheduling observes is latency: per-transfer setup (descriptor
// programming, channel bring-up) plus bytes over the effective
// bandwidth. Aurora on a single GT lane sustains ~10 Gb/s; 64B66B
// framing keeps efficiency near 97%.
package interlink
