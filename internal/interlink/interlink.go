package interlink

import (
	"versaslot/internal/sim"
)

// Link is a point-to-point Aurora channel between two boards.
type Link struct {
	// BandwidthBytes is the effective payload bandwidth in bytes/s.
	BandwidthBytes int64
	// Setup is the fixed per-transfer cost.
	Setup sim.Duration

	srv *sim.Server
	pri int32

	stats Stats
}

// Stats aggregates link activity.
type Stats struct {
	Transfers uint64
	Bytes     int64
	BusyTime  sim.Duration
}

// DefaultBandwidth is one GT lane of Aurora 64B66B: 10.3125 Gb/s line
// rate * ~0.97 framing efficiency / 8 bits.
const DefaultBandwidth = int64(1.25e9 * 0.97)

// DefaultSetup covers DMA descriptor programming and channel handshake.
const DefaultSetup = 60 * sim.Microsecond

// New returns a link served by kernel k.
func New(k *sim.Kernel, name string, bandwidthBytes int64, setup sim.Duration) *Link {
	if bandwidthBytes <= 0 {
		panic("interlink: non-positive bandwidth")
	}
	return &Link{
		BandwidthBytes: bandwidthBytes,
		Setup:          setup,
		srv:            sim.NewServer(k, name),
	}
}

// NewDefault returns a link with the Aurora defaults.
func NewDefault(k *sim.Kernel, name string) *Link {
	return New(k, name, DefaultBandwidth, DefaultSetup)
}

// SetPriority assigns the event priority of the link's completions:
// transfers landing at the same instant as other events order by it.
// The farm sets its rack link to sim.PriFarmControl so deliveries
// sort with the rest of the control plane in sharded runs.
func (l *Link) SetPriority(p int32) {
	l.pri = p
	l.srv.SetPriority(p)
}

// Priority returns the link's completion priority.
func (l *Link) Priority() int32 { return l.pri }

// TransferTime returns the service time for a payload.
func (l *Link) TransferTime(bytes int64) sim.Duration {
	return l.Setup + sim.Duration(float64(bytes)/float64(l.BandwidthBytes)*float64(sim.Second))
}

// Transfer queues a DMA transfer of bytes and calls done at delivery.
// Transfers serialize on the link (one DMA stream per direction pair).
func (l *Link) Transfer(name string, bytes int64, done func()) {
	cost := l.TransferTime(bytes)
	l.stats.Transfers++
	l.stats.Bytes += bytes
	l.stats.BusyTime += cost
	l.srv.SubmitFunc(name, "dma", cost, done)
}

// Stats returns a copy of the accumulated statistics.
func (l *Link) Stats() Stats { return l.stats }
