package experiments

import (
	"strings"
	"testing"

	"versaslot/internal/sched"
)

// TestFig2Mechanism asserts the paper's Fig. 2 story quantitatively.
func TestFig2Mechanism(t *testing.T) {
	r := Fig2()
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	byName := map[string]Fig2Row{}
	for _, row := range r.Rows {
		byName[row.System] = row
	}
	nim := byName[sched.KindNimblock.String()]
	ol := byName[sched.KindVersaSlotOL.String()]
	bl := byName[sched.KindVersaSlotBL.String()]

	// Single-core Nimblock suffers launch blocking; dual-core VersaSlot
	// all but eliminates it (the paper's task-execution-blocking claim).
	if nim.LaunchWaitMS <= 10*ol.LaunchWaitMS && nim.LaunchWaitMS < 1 {
		t.Errorf("no single-core launch blocking visible: nim=%.2fms ol=%.2fms",
			nim.LaunchWaitMS, ol.LaunchWaitMS)
	}
	if ol.LaunchWaitMS > 1 {
		t.Errorf("dual-core OL still shows launch blocking: %.2fms", ol.LaunchWaitMS)
	}
	// Bundling collapses the PR count (two 3-task apps: 6 loads -> 2).
	if bl.PRLoads >= nim.PRLoads {
		t.Errorf("BL loads %d not below Nimblock's %d", bl.PRLoads, nim.PRLoads)
	}
	// And the makespan ordering follows.
	if !(bl.MakespanMS < ol.MakespanMS && ol.MakespanMS < nim.MakespanMS) {
		t.Errorf("makespan ordering broken: nim=%.1f ol=%.1f bl=%.1f",
			nim.MakespanMS, ol.MakespanMS, bl.MakespanMS)
	}
	// Timelines render.
	var b strings.Builder
	r.Write(&b)
	if !strings.Contains(b.String(), "timeline:") {
		t.Fatal("timelines missing from output")
	}
}
