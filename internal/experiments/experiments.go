// Package experiments regenerates every table and figure of the
// paper's evaluation (Section IV). Each Fig* function runs the same
// workloads the paper describes, returns structured results, and
// carries the paper's reported numbers alongside for comparison in
// EXPERIMENTS.md and the benchmark harness.
package experiments

import (
	"runtime"
	"sync"

	"versaslot/internal/core"
	"versaslot/internal/metrics"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Config sizes the evaluation; the zero value is replaced by Default.
type Config struct {
	// Sequences per condition (paper: 10).
	Sequences int
	// Apps per sequence (paper: 20).
	Apps int
	// BaseSeed derives per-sequence seeds.
	BaseSeed uint64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
}

// Default returns the paper's evaluation scale.
func Default() Config {
	return Config{Sequences: 10, Apps: 20, BaseSeed: 1000}
}

// Quick returns a reduced scale for smoke tests and -short mode.
func Quick() Config {
	return Config{Sequences: 3, Apps: 10, BaseSeed: 1000}
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// runGrid executes every (condition, policy, sequence) cell and returns
// results indexed [condition][policy][sequence].
func runGrid(cfg Config, conditions []workload.Condition, kinds []sched.Kind) [][][]*core.Result {
	grid := make([][][]*core.Result, len(conditions))
	type job struct{ ci, ki, si int }
	var jobs []job
	for ci := range conditions {
		grid[ci] = make([][]*core.Result, len(kinds))
		for ki := range kinds {
			grid[ci][ki] = make([]*core.Result, cfg.Sequences)
			for si := 0; si < cfg.Sequences; si++ {
				jobs = append(jobs, job{ci, ki, si})
			}
		}
	}
	// Workload sequences are shared across policies within a condition:
	// every system sees the identical arrival stream (paper setup).
	seqs := make([][]*workload.Sequence, len(conditions))
	for ci, cond := range conditions {
		p := workload.DefaultGenParams(cond)
		p.Apps = cfg.Apps
		seqs[ci] = make([]*workload.Sequence, cfg.Sequences)
		for si := 0; si < cfg.Sequences; si++ {
			seqs[ci][si] = workload.Generate(p, cfg.BaseSeed+uint64(100*ci+si))
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := core.Run(core.SystemConfig{
				Policy: kinds[j.ki],
				Seed:   cfg.BaseSeed + uint64(j.si),
			}, seqs[j.ci][j.si])
			if err != nil {
				panic(err)
			}
			grid[j.ci][j.ki][j.si] = res
		}()
	}
	wg.Wait()
	return grid
}

// meanOver averages per-sequence mean response times.
func meanOver(results []*core.Result) sim.Duration {
	return core.MeanRT(results)
}

// pooledPct computes a percentile over all sequences' samples.
func pooledPct(results []*core.Result, p float64) sim.Duration {
	samples := core.PooledSamples(results)
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s.Response)
	}
	if len(vals) == 0 {
		return 0
	}
	return sim.Duration(metrics.PercentileOf(vals, p))
}
