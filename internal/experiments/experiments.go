package experiments

import (
	"fmt"
	"runtime"

	"versaslot"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Config sizes the evaluation; the zero value is replaced by Default.
type Config struct {
	// Sequences per condition (paper: 10).
	Sequences int
	// Apps per sequence (paper: 20).
	Apps int
	// BaseSeed derives per-sequence seeds.
	BaseSeed uint64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
}

// Default returns the paper's evaluation scale.
func Default() Config {
	return Config{Sequences: 10, Apps: 20, BaseSeed: 1000}
}

// Quick returns a reduced scale for smoke tests and -short mode.
func Quick() Config {
	return Config{Sequences: 3, Apps: 10, BaseSeed: 1000}
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// conditionSequences pre-generates each condition's workload set:
// sequences are shared across policies within a condition, so every
// system sees the identical arrival stream (paper setup).
func conditionSequences(cfg Config, conditions []workload.Condition) [][]*workload.Sequence {
	seqs := make([][]*workload.Sequence, len(conditions))
	for ci, cond := range conditions {
		p := workload.DefaultGenParams(cond)
		p.Apps = cfg.Apps
		seqs[ci] = make([]*workload.Sequence, cfg.Sequences)
		for si := 0; si < cfg.Sequences; si++ {
			seqs[ci][si] = workload.Generate(p, cfg.BaseSeed+uint64(100*ci+si))
		}
	}
	return seqs
}

// runGrid executes every (condition, policy, sequence) cell through
// versaslot.RunMany and returns results indexed
// [condition][policy][sequence].
func runGrid(cfg Config, conditions []workload.Condition, kinds []sched.Kind) [][][]*versaslot.Result {
	seqs := conditionSequences(cfg, conditions)
	grid := make([][][]*versaslot.Result, len(conditions))
	type cell struct{ ci, ki, si int }
	var cells []cell
	var scenarios []versaslot.Scenario
	for ci := range conditions {
		grid[ci] = make([][]*versaslot.Result, len(kinds))
		for ki, kind := range kinds {
			grid[ci][ki] = make([]*versaslot.Result, cfg.Sequences)
			for si := 0; si < cfg.Sequences; si++ {
				cells = append(cells, cell{ci, ki, si})
				scenarios = append(scenarios, versaslot.Scenario{
					Name:     fmt.Sprintf("%s/%s/seq%d", sched.NameOf(kind), conditions[ci], si),
					Policy:   sched.NameOf(kind),
					Workload: seqs[ci][si],
					Seed:     cfg.BaseSeed + uint64(si),
				})
			}
		}
	}
	results, err := versaslot.RunMany(scenarios, cfg.workers())
	if err != nil {
		panic(err)
	}
	for n, c := range cells {
		grid[c.ci][c.ki][c.si] = results[n]
	}
	return grid
}

// meanOver averages per-sequence mean response times.
func meanOver(results []*versaslot.Result) sim.Duration {
	return versaslot.MeanRT(results)
}

// pooledPct computes a percentile over all sequences' samples.
func pooledPct(results []*versaslot.Result, p float64) sim.Duration {
	return versaslot.PooledPercentile(results, p)
}
