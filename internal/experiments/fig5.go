package experiments

import (
	"fmt"
	"io"

	"versaslot/internal/metrics"
	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Fig5Paper holds the paper's reported relative response-time
// reductions (normalized to Baseline = 1.0), Fig. 5.
var Fig5Paper = map[workload.Condition]map[sched.Kind]float64{
	workload.Loose: {
		sched.KindFCFS: 0.81, sched.KindRR: 0.79, sched.KindNimblock: 1.06,
		sched.KindVersaSlotOL: 1.08, sched.KindVersaSlotBL: 1.49,
	},
	workload.Standard: {
		sched.KindFCFS: 1.57, sched.KindRR: 1.80, sched.KindNimblock: 6.23,
		sched.KindVersaSlotOL: 8.39, sched.KindVersaSlotBL: 13.66,
	},
	workload.Stress: {
		sched.KindFCFS: 1.47, sched.KindRR: 1.47, sched.KindNimblock: 3.04,
		sched.KindVersaSlotOL: 4.13, sched.KindVersaSlotBL: 5.23,
	},
	workload.Realtime: {
		sched.KindFCFS: 1.45, sched.KindRR: 1.46, sched.KindNimblock: 2.91,
		sched.KindVersaSlotOL: 3.84, sched.KindVersaSlotBL: 4.76,
	},
}

// Fig5Cell is one bar of Fig. 5.
type Fig5Cell struct {
	Condition workload.Condition
	Policy    sched.Kind
	// MeanRT is this system's average response time across sequences;
	// RTStd is the cross-sequence standard deviation.
	MeanRT sim.Duration
	RTStd  sim.Duration
	// Reduction is baselineMeanRT / MeanRT (higher is better).
	Reduction float64
	// Paper is the value reported in the paper (0 for Baseline).
	Paper float64
}

// Fig5Result is the full grid.
type Fig5Result struct {
	Cells []Fig5Cell
	// BaselineRT per condition, the normalization denominator.
	BaselineRT map[workload.Condition]sim.Duration
}

// Fig5 reproduces "Relative response time reduction under different
// congestion conditions, normalized to the baseline".
func Fig5(cfg Config) *Fig5Result {
	conditions := workload.Conditions()
	kinds := sched.Kinds()
	grid := runGrid(cfg, conditions, kinds)
	out := &Fig5Result{BaselineRT: make(map[workload.Condition]sim.Duration)}
	for ci, cond := range conditions {
		var baseRT sim.Duration
		for ki, kind := range kinds {
			if kind == sched.KindBaseline {
				baseRT = meanOver(grid[ci][ki])
			}
		}
		out.BaselineRT[cond] = baseRT
		for ki, kind := range kinds {
			perSeq := make([]float64, 0, len(grid[ci][ki]))
			for _, res := range grid[ci][ki] {
				perSeq = append(perSeq, float64(res.Summary.MeanRT))
			}
			mean, std := metrics.MeanStd(perSeq)
			red := 0.0
			if mean > 0 {
				red = float64(baseRT) / mean
			}
			out.Cells = append(out.Cells, Fig5Cell{
				Condition: cond,
				Policy:    kind,
				MeanRT:    sim.Duration(mean),
				RTStd:     sim.Duration(std),
				Reduction: red,
				Paper:     Fig5Paper[cond][kind],
			})
		}
	}
	return out
}

// Lookup returns the cell for (condition, policy).
func (r *Fig5Result) Lookup(c workload.Condition, k sched.Kind) Fig5Cell {
	for _, cell := range r.Cells {
		if cell.Condition == c && cell.Policy == k {
			return cell
		}
	}
	return Fig5Cell{}
}

// Table renders the paper-style grid.
func (r *Fig5Result) Table() *report.Table {
	t := report.NewTable(
		"Fig. 5 — Average relative response time reduction (normalized to Baseline; higher is better)",
		"System", "Loose", "Standard", "Stress", "Real-time", "Paper(L/S/St/RT)")
	for _, k := range sched.Kinds() {
		var vals []any
		vals = append(vals, k.String())
		var paper string
		for _, c := range workload.Conditions() {
			cell := r.Lookup(c, k)
			vals = append(vals, cell.Reduction)
			if paper != "" {
				paper += "/"
			}
			if k == sched.KindBaseline {
				paper += "1.00"
			} else {
				paper += trim2(Fig5Paper[c][k])
			}
		}
		vals = append(vals, paper)
		t.AddRow(vals...)
	}
	return t
}

// RTTable renders the absolute mean response times behind the ratios.
func (r *Fig5Result) RTTable() *report.Table {
	t := report.NewTable(
		"Mean response times, seconds (mean +/- cross-sequence std dev)",
		"System", "Loose", "Standard", "Stress", "Real-time")
	for _, k := range sched.Kinds() {
		vals := []any{k.String()}
		for _, c := range workload.Conditions() {
			cell := r.Lookup(c, k)
			vals = append(vals, fmt.Sprintf("%.2f +/- %.2f",
				sim.Time(cell.MeanRT).Seconds(), sim.Time(cell.RTStd).Seconds()))
		}
		t.AddRow(vals...)
	}
	return t
}

// Write renders the tables to w.
func (r *Fig5Result) Write(w io.Writer) {
	r.Table().Render(w)
	r.RTTable().Render(w)
}

func trim2(v float64) string { return fmt.Sprintf("%.2f", v) }
