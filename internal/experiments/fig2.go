package experiments

import (
	"io"

	"versaslot"
	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/trace"
	"versaslot/internal/workload"
)

// Fig2Result quantifies the mechanism schematic of the paper's Fig. 2:
// two applications sharing one FPGA, comparing how much PR contention
// and execution blocking each control-plane design suffers.
type Fig2Result struct {
	Rows []Fig2Row
	// Recorders hold the per-system event recordings for timeline
	// rendering (keyed by system name).
	Recorders map[string]*trace.Recorder
}

// Fig2Row is one system's measurement.
type Fig2Row struct {
	System string
	// MakespanMS: when the last of the two apps finished.
	MakespanMS float64
	// PRLoads and PRBlocked: total loads and loads queued behind another.
	PRLoads, PRBlocked uint64
	// PRWaitMS: cumulative time PR requests waited on the serial PCAP.
	PRWaitMS float64
	// LaunchWaitMS: cumulative time item launches waited on the CPU —
	// the task-execution-blocking effect of single-core designs.
	LaunchWaitMS float64
}

// Fig2 reproduces the paper's Fig. 2 scenario quantitatively: App-1
// (3 tasks, batch 3) and App-2 (3 tasks, batch 2) arrive back to back
// and share one board under Nimblock (single core), VersaSlot
// Only.Little (dual core) and VersaSlot Big.Little. The single-core
// system shows PR contention and launch blocking; the dual-core one
// eliminates launch blocking; Big.Little also collapses the PR count.
func Fig2() *Fig2Result {
	// The paper's Fig. 2 apps: two 3-task applications with batch
	// sizes 3 and 2. 3DR is the suite's 3-task app.
	seq := &workload.Sequence{
		Name:      "fig2",
		Condition: "Fig2",
		Arrivals: []workload.Arrival{
			{Spec: workload.ThreeDR.Name, Batch: 3, At: 0},
			{Spec: workload.ThreeDR.Name, Batch: 2, At: 5 * sim.Millisecond},
		},
	}
	out := &Fig2Result{Recorders: make(map[string]*trace.Recorder)}
	for _, kind := range []sched.Kind{sched.KindNimblock, sched.KindVersaSlotOL, sched.KindVersaSlotBL} {
		rec := trace.NewRecorder(0)
		res, err := versaslot.NewRunner(versaslot.WithRecorder(rec)).Run(versaslot.Scenario{
			Policy:   sched.NameOf(kind),
			Workload: seq,
			Seed:     1,
		})
		if err != nil {
			panic(err)
		}
		out.Rows = append(out.Rows, Fig2Row{
			System:       kind.String(),
			MakespanMS:   res.Makespan.Milliseconds(),
			PRLoads:      res.Summary.PRLoads,
			PRBlocked:    res.Summary.PRBlocked,
			PRWaitMS:     res.Summary.PRWait.Seconds() * 1000,
			LaunchWaitMS: res.LaunchWait.Seconds() * 1000,
		})
		out.Recorders[kind.String()] = rec
	}
	return out
}

// Table renders the mechanism comparison.
func (r *Fig2Result) Table() *report.Table {
	t := report.NewTable(
		"Fig. 2 (mechanism) — two 3-task apps sharing one FPGA",
		"System", "Makespan (ms)", "PR loads", "PR blocked", "PR wait (ms)", "Launch wait (ms)")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.MakespanMS, row.PRLoads, row.PRBlocked,
			row.PRWaitMS, row.LaunchWaitMS)
	}
	return t
}

// Write renders the table and per-system timelines.
func (r *Fig2Result) Write(w io.Writer) {
	r.Table().Render(w)
	for _, row := range r.Rows {
		if rec := r.Recorders[row.System]; rec != nil {
			io.WriteString(w, "\n"+row.System+":\n")
			trace.Timeline{Buckets: 100}.Render(w, rec)
		}
	}
}
