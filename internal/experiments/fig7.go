package experiments

import (
	"io"

	"versaslot/internal/bundle"
	"versaslot/internal/report"
	"versaslot/internal/workload"
)

// Fig7Paper holds the paper's reported utilization increases (percent)
// of 3-in-1 tasks per application, and the IC Bundle1 detail.
var Fig7Paper = struct {
	LUT, FF map[string]float64
	// IC Bundle1 members' Little-slot LUT utilization and the bundled value.
	ICMembers []float64
	ICAvg     float64
	ICBundle  float64
}{
	LUT:       map[string]float64{"IC": 42.2, "AN": 36.4, "3DR": 9.9, "OF": 9.6},
	FF:        map[string]float64{"IC": 48.0, "AN": 41.4, "3DR": 17.7, "OF": 14.1},
	ICMembers: []float64{0.57, 0.38, 0.28},
	ICAvg:     0.41,
	ICBundle:  0.60,
}

// Fig7Result carries the measured utilization gains.
type Fig7Result struct {
	Gains []bundle.UtilGain
	// NotBundleable lists apps whose triples exceed Big-slot capacity
	// (LeNet in the paper — absent from Fig. 7).
	NotBundleable []string
	// AvgLUTPct and AvgFFPct are the headline averages ("enhances the
	// LUT and FF resource utilization by 35% and 29% on average").
	AvgLUTPct, AvgFFPct float64
}

// Fig7 reproduces "Resource utilization improvement by 3-in-1 tasks":
// for every benchmark app, the LUT/FF utilization increase of bundled
// execution in Big slots versus the same tasks in Little slots, plus
// the per-task detail of IC's first bundle.
//
// This is a property of the implemented bitstreams (the paper measures
// post-implementation utilization), so it is computed from the
// synthesis/implementation model rather than from a scheduling run.
func Fig7() *Fig7Result {
	out := &Fig7Result{}
	order := []string{"IC", "AN", "3DR", "OF", "LeNet"}
	var lutSum, ffSum float64
	n := 0
	for _, name := range order {
		spec := workload.SpecByName(name)
		gain, ok := bundle.MeasureUtilGain(spec)
		if !ok {
			out.NotBundleable = append(out.NotBundleable, name)
			continue
		}
		out.Gains = append(out.Gains, gain)
		lutSum += gain.LUTPct
		ffSum += gain.FFPct
		n++
	}
	if n > 0 {
		out.AvgLUTPct = lutSum / float64(n)
		out.AvgFFPct = ffSum / float64(n)
	}
	return out
}

// Table renders the per-app grid (Fig. 7 left).
func (r *Fig7Result) Table() *report.Table {
	t := report.NewTable(
		"Fig. 7 (left) — Resource utilization increase of 3-in-1 tasks (%)",
		"App", "LUT %", "FF %", "Paper LUT %", "Paper FF %")
	for _, g := range r.Gains {
		t.AddRow(g.App, g.LUTPct, g.FFPct, Fig7Paper.LUT[g.App], Fig7Paper.FF[g.App])
	}
	return t
}

// DetailTable renders IC Bundle1 (Fig. 7 right).
func (r *Fig7Result) DetailTable() *report.Table {
	t := report.NewTable(
		"Fig. 7 (right) — IC Bundle1 LUT utilization (DCT, Quantize, BDQ -> 3-in-1)",
		"Task", "LUT util", "Paper")
	for _, g := range r.Gains {
		if g.App != "IC" || len(g.Bundles) == 0 {
			continue
		}
		b := g.Bundles[0]
		names := []string{"DCT", "Quantize", "BDQ"}
		for i, u := range b.MemberLUT {
			t.AddRow(names[i], u, Fig7Paper.ICMembers[i])
		}
		t.AddRow("average", b.AvgLUT, Fig7Paper.ICAvg)
		t.AddRow("BDQ (3-in-1)", b.BundleLUT, Fig7Paper.ICBundle)
	}
	return t
}

// Write renders both tables to w.
func (r *Fig7Result) Write(w io.Writer) {
	r.Table().Render(w)
	r.DetailTable().Render(w)
}
