package experiments

import (
	"io"

	"versaslot"
	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/workload"
)

// UtilizationResult complements Fig. 7's static (implementation-level)
// measurement with a dynamic one: the time-averaged LUT/FF utilization
// of the boards' slot area during actual scheduling runs. The paper's
// headline "enhances the LUT and FF resource utilization" is ultimately
// about this quantity — resident circuits doing useful work instead of
// slots idling through PR contention.
type UtilizationResult struct {
	// Per-system time-averaged utilization, pooled over sequences.
	Rows []UtilizationRow
}

// UtilizationRow is one scheduling system's dynamic utilization.
type UtilizationRow struct {
	Policy  sched.Kind
	LUT, FF float64 // resident time-averaged utilization
	BusyLUT float64 // actively-executing share
	PRLoads uint64
}

// MeasureUtilization runs the sharing systems on a stress workload set
// and reports dynamic utilization. The Baseline is excluded: its
// monolithic virtual regions have no meaningful slot-area denominator.
func MeasureUtilization(cfg Config) *UtilizationResult {
	kinds := []sched.Kind{
		sched.KindFCFS, sched.KindRR, sched.KindNimblock,
		sched.KindVersaSlotOL, sched.KindVersaSlotBL,
	}
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = cfg.Apps
	seqs := make([]*workload.Sequence, cfg.Sequences)
	for i := range seqs {
		seqs[i] = workload.Generate(p, cfg.BaseSeed+uint64(i))
	}

	var scenarios []versaslot.Scenario
	for _, kind := range kinds {
		for si := range seqs {
			scenarios = append(scenarios, versaslot.Scenario{
				Policy:   sched.NameOf(kind),
				Workload: seqs[si],
				Seed:     cfg.BaseSeed + uint64(si),
			})
		}
	}
	results, err := versaslot.RunMany(scenarios, cfg.workers())
	if err != nil {
		panic(err)
	}

	rows := make([]UtilizationRow, len(kinds))
	for ki, kind := range kinds {
		row := UtilizationRow{Policy: kind}
		for si := range seqs {
			res := results[ki*len(seqs)+si]
			row.LUT += res.Summary.UtilLUT
			row.FF += res.Summary.UtilFF
			row.PRLoads += res.Summary.PRLoads
		}
		n := float64(len(seqs))
		row.LUT /= n
		row.FF /= n
		row.PRLoads /= uint64(len(seqs))
		rows[ki] = row
	}
	return &UtilizationResult{Rows: rows}
}

// Table renders the dynamic utilization comparison.
func (r *UtilizationResult) Table() *report.Table {
	t := report.NewTable(
		"Dynamic slot-area utilization during stress runs (time-averaged)",
		"System", "LUT util", "FF util", "PR loads/seq")
	for _, row := range r.Rows {
		t.AddRow(row.Policy.String(), row.LUT, row.FF, row.PRLoads)
	}
	return t
}

// Write renders the table.
func (r *UtilizationResult) Write(w io.Writer) { r.Table().Render(w) }

// Gain returns BL's relative LUT and FF utilization gain over OL —
// the dynamic counterpart of the paper's +35%/+29% claim.
func (r *UtilizationResult) Gain() (lutPct, ffPct float64) {
	var ol, bl UtilizationRow
	for _, row := range r.Rows {
		if row.Policy == sched.KindVersaSlotOL {
			ol = row
		}
		if row.Policy == sched.KindVersaSlotBL {
			bl = row
		}
	}
	if ol.LUT > 0 {
		lutPct = (bl.LUT/ol.LUT - 1) * 100
	}
	if ol.FF > 0 {
		ffPct = (bl.FF/ol.FF - 1) * 100
	}
	return lutPct, ffPct
}
