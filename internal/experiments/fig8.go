package experiments

import (
	"io"

	"versaslot"
	"versaslot/internal/cluster"
	"versaslot/internal/report"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Fig8Paper holds the paper's switching results: relative response-time
// reduction versus running solely on Only.Little, and the average
// switching overhead.
var Fig8Paper = struct {
	SwitchingReduction float64
	BigLittleReduction float64
	SwitchOverhead     sim.Duration
}{
	SwitchingReduction: 2.98,
	BigLittleReduction: 6.65,
	SwitchOverhead:     1130 * sim.Microsecond,
}

// Fig8Config sizes the switching experiment (paper: 3 long workloads,
// 80 apps each, standard arrivals). The paper's long workloads drive
// its Only.Little board deep into PR contention (D_switch up to ~0.18,
// Only.Little 6.65x slower than Big.Little); with this reproduction's
// calibrated task set the plain standard interval leaves Only.Little
// unsaturated, so the long workloads default to a proportionally
// denser arrival that lands in the same D_switch regime. Documented in
// EXPERIMENTS.md.
type Fig8Config struct {
	Workloads  int
	Apps       int
	BaseSeed   uint64
	IntervalLo sim.Duration
	IntervalHi sim.Duration
}

// DefaultFig8 returns the reproduction's setup for the paper's
// three-workload experiment.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Workloads:  3,
		Apps:       80,
		BaseSeed:   5000,
		IntervalLo: 400 * sim.Millisecond,
		IntervalHi: 600 * sim.Millisecond,
	}
}

// QuickFig8 is a reduced variant for -short tests.
func QuickFig8() Fig8Config {
	cfg := DefaultFig8()
	cfg.Workloads = 1
	cfg.Apps = 30
	return cfg
}

// Fig8Result carries the measured switching evaluation.
type Fig8Result struct {
	// Mean response times per mode, averaged over workloads.
	OnlyLittleRT, BigLittleRT, SwitchingRT sim.Duration
	// Reductions normalized to Only.Little (higher is better).
	SwitchingReduction, BigLittleReduction float64
	// Switches and mean overhead across all switching runs.
	Switches       int
	MeanSwitchTime sim.Duration
	// Trace of the first workload's D_switch evaluations (Fig. 8 left).
	Trace []cluster.TracePoint
}

// Fig8 reproduces the cross-board switching evaluation: three long
// standard-arrival workloads executed (a) solely on Only.Little, (b)
// solely on Big.Little, (c) with D_switch-triggered live migration
// between the two boards.
func Fig8(cfg Fig8Config) *Fig8Result {
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = cfg.Apps
	p.IntervalLo, p.IntervalHi = cfg.IntervalLo, cfg.IntervalHi
	seqs := make([]*workload.Sequence, cfg.Workloads)
	for i := range seqs {
		seqs[i] = workload.Generate(p, cfg.BaseSeed+uint64(i))
	}

	// Three scenarios per workload: solely Only.Little, solely
	// Big.Little, and the switching cluster — all parallelized on one
	// worker pool.
	var scenarios []versaslot.Scenario
	for i, seq := range seqs {
		seed := cfg.BaseSeed + uint64(i)
		scenarios = append(scenarios,
			versaslot.Scenario{Policy: "versaslot-ol", Workload: seq, Seed: seed},
			versaslot.Scenario{Policy: "versaslot-bl", Workload: seq, Seed: seed},
			versaslot.Scenario{Topology: versaslot.TopologyCluster, Workload: seq, Seed: seed},
		)
	}
	results, err := versaslot.RunMany(scenarios, 0)
	if err != nil {
		panic(err)
	}

	var olRT, blRT, swRT float64
	var switches int
	var switchTime float64
	var trace []cluster.TracePoint
	for i := range seqs {
		ol, bl, sw := results[3*i], results[3*i+1], results[3*i+2]
		olRT += float64(ol.Summary.MeanRT)
		blRT += float64(bl.Summary.MeanRT)
		swRT += float64(sw.Summary.MeanRT)
		switches += sw.Switches
		switchTime += float64(sw.MeanSwitchTime) * float64(sw.Switches)
		if i == 0 {
			trace = sw.SwitchTrace
		}
	}

	n := float64(cfg.Workloads)
	out := &Fig8Result{
		OnlyLittleRT: sim.Duration(olRT / n),
		BigLittleRT:  sim.Duration(blRT / n),
		SwitchingRT:  sim.Duration(swRT / n),
		Switches:     switches,
		Trace:        trace,
	}
	if out.SwitchingRT > 0 {
		out.SwitchingReduction = float64(out.OnlyLittleRT) / float64(out.SwitchingRT)
	}
	if out.BigLittleRT > 0 {
		out.BigLittleReduction = float64(out.OnlyLittleRT) / float64(out.BigLittleRT)
	}
	if switches > 0 {
		out.MeanSwitchTime = sim.Duration(switchTime / float64(switches))
	}
	return out
}

// Table renders Fig. 8 (right) plus the overhead line.
func (r *Fig8Result) Table() *report.Table {
	t := report.NewTable(
		"Fig. 8 (right) — Relative response time reduction vs Only.Little (higher is better)",
		"Running mode", "Measured", "Paper")
	t.AddRow("Only.Little", 1.0, 1.0)
	t.AddRow("Switching", r.SwitchingReduction, Fig8Paper.SwitchingReduction)
	t.AddRow("Only Big.Little", r.BigLittleReduction, Fig8Paper.BigLittleReduction)
	return t
}

// TraceTable renders the D_switch trace (Fig. 8 left).
func (r *Fig8Result) TraceTable() *report.Table {
	t := report.NewTable(
		"Fig. 8 (left) — D_switch trace (first workload)",
		"Completed", "D_switch", "Mode", "Decision")
	for _, p := range r.Trace {
		t.AddRow(p.Completed, p.D, p.Mode.String(), p.Decision.String())
	}
	return t
}

// Write renders both tables and the overhead line.
func (r *Fig8Result) Write(w io.Writer) {
	r.Table().Render(w)
	t := report.NewTable("Switching overhead", "Switches", "Mean overhead", "Paper")
	t.AddRow(r.Switches, r.MeanSwitchTime.String(), Fig8Paper.SwitchOverhead.String())
	t.Render(w)
}
