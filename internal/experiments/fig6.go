package experiments

import (
	"io"

	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Fig6Paper holds the paper's relative tail response times (normalized
// to Baseline; LOWER is better), Fig. 6. Values read from the figure:
// Big.Little beats Nimblock on P95/P99 everywhere; its P99 sits
// slightly above Baseline's.
var Fig6Paper = map[string]map[sched.Kind]float64{
	"Std-95":    {sched.KindNimblock: 0.65, sched.KindVersaSlotOL: 0.45, sched.KindVersaSlotBL: 0.30},
	"Std-99":    {sched.KindNimblock: 0.90, sched.KindVersaSlotOL: 0.70, sched.KindVersaSlotBL: 0.55},
	"Stress-95": {sched.KindNimblock: 0.60, sched.KindVersaSlotOL: 0.45, sched.KindVersaSlotBL: 0.33},
	"Stress-99": {sched.KindNimblock: 0.75, sched.KindVersaSlotOL: 0.60, sched.KindVersaSlotBL: 0.51},
	"RT-95":     {sched.KindNimblock: 0.70, sched.KindVersaSlotOL: 0.52, sched.KindVersaSlotBL: 0.45},
	"RT-99":     {sched.KindNimblock: 0.85, sched.KindVersaSlotOL: 0.65, sched.KindVersaSlotBL: 0.57},
}

// Fig6Cell is one bar: a policy's P95 or P99 relative to Baseline's.
type Fig6Cell struct {
	Group    string // "Std-95", "Stress-99", ...
	Policy   sched.Kind
	Absolute sim.Duration
	Relative float64 // policy tail / baseline tail (lower is better)
}

// Fig6Result is the tail-latency grid.
type Fig6Result struct {
	Cells []Fig6Cell
}

// Fig6 reproduces "Tail response time normalized to the baseline":
// P95/P99 across Standard, Stress and Real-time conditions, pooled
// over the condition's sequences.
func Fig6(cfg Config) *Fig6Result {
	conditions := []workload.Condition{workload.Standard, workload.Stress, workload.Realtime}
	names := map[workload.Condition]string{
		workload.Standard: "Std", workload.Stress: "Stress", workload.Realtime: "RT",
	}
	kinds := sched.Kinds()
	grid := runGrid(cfg, conditions, kinds)
	out := &Fig6Result{}
	for ci, cond := range conditions {
		for _, pct := range []float64{95, 99} {
			var baseTail sim.Duration
			for ki, kind := range kinds {
				if kind == sched.KindBaseline {
					baseTail = pooledPct(grid[ci][ki], pct)
				}
			}
			group := names[cond] + "-" + itoa(int(pct))
			for ki, kind := range kinds {
				tail := pooledPct(grid[ci][ki], pct)
				rel := 0.0
				if baseTail > 0 {
					rel = float64(tail) / float64(baseTail)
				}
				out.Cells = append(out.Cells, Fig6Cell{
					Group:    group,
					Policy:   kind,
					Absolute: tail,
					Relative: rel,
				})
			}
		}
	}
	return out
}

// Lookup returns the cell for (group, policy).
func (r *Fig6Result) Lookup(group string, k sched.Kind) Fig6Cell {
	for _, c := range r.Cells {
		if c.Group == group && c.Policy == k {
			return c
		}
	}
	return Fig6Cell{}
}

// Groups lists the six bar groups in the paper's order.
func Fig6Groups() []string {
	return []string{"Std-95", "Std-99", "Stress-95", "Stress-99", "RT-95", "RT-99"}
}

// Table renders the grid.
func (r *Fig6Result) Table() *report.Table {
	headers := append([]string{"System"}, Fig6Groups()...)
	t := report.NewTable(
		"Fig. 6 — Relative tail response time (normalized to Baseline; lower is better)",
		headers...)
	for _, k := range sched.Kinds() {
		vals := []any{k.String()}
		for _, g := range Fig6Groups() {
			vals = append(vals, r.Lookup(g, k).Relative)
		}
		t.AddRow(vals...)
	}
	return t
}

// Write renders the table to w.
func (r *Fig6Result) Write(w io.Writer) { r.Table().Render(w) }

func itoa(v int) string {
	if v == 95 {
		return "95"
	}
	if v == 99 {
		return "99"
	}
	// Only the two tails are used; keep a safe fallback.
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	if len(digits) == 0 {
		return "0"
	}
	return string(digits)
}
