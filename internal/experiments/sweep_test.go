package experiments

import (
	"testing"

	"versaslot/internal/workload"
)

func TestSlotSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Sequences = 2
	cfg.Apps = 10
	results := SlotSweep(cfg, workload.Stress)
	if len(results) != 4 {
		t.Fatalf("sweep returned %d mixes", len(results))
	}
	for _, r := range results {
		if r.MeanRT <= 0 {
			t.Fatalf("%v: non-positive mean RT", r.Mix)
		}
		if r.PRLoads == 0 {
			t.Fatalf("%v: no PR loads", r.Mix)
		}
	}
	// More Big slots -> fewer PR loads (bundling's direct effect).
	if results[0].PRLoads <= results[2].PRLoads {
		t.Errorf("0B+8L loads (%d) not above 2B+4L loads (%d)",
			results[0].PRLoads, results[2].PRLoads)
	}
	if SweepTable(results, workload.Stress).String() == "" {
		t.Fatal("sweep table empty")
	}
}

func TestMeasureUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Sequences = 2
	cfg.Apps = 12
	r := MeasureUtilization(cfg)
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	byKind := map[string]UtilizationRow{}
	for _, row := range r.Rows {
		if row.LUT <= 0 || row.LUT > 1 || row.FF <= 0 || row.FF > 1 {
			t.Fatalf("%v utilization out of range: %+v", row.Policy, row)
		}
		byKind[row.Policy.String()] = row
	}
	// Pipelined ILP-sized systems keep circuits resident far more than
	// gang-scheduled naive systems.
	if byKind["VersaSlot Only.Little"].LUT <= byKind["FCFS"].LUT {
		t.Error("VersaSlot utilization not above FCFS's")
	}
	// Bundling cuts PR loads.
	if byKind["VersaSlot Big.Little"].PRLoads >= byKind["VersaSlot Only.Little"].PRLoads {
		t.Error("BL PR loads not below OL's")
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}
