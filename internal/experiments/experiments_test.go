package experiments

import (
	"testing"

	"versaslot/internal/sched"
	"versaslot/internal/workload"
)

// TestFig5Shape is the headline integration test: at reduced scale the
// evaluation must reproduce the paper's orderings and crossovers.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Apps = 20
	r := Fig5(cfg)

	get := func(c workload.Condition, k sched.Kind) float64 {
		return r.Lookup(c, k).Reduction
	}

	// Standard and beyond: the paper's ranking
	// BL > OL > Nimblock > FCFS/RR > Baseline.
	for _, c := range []workload.Condition{workload.Standard, workload.Stress, workload.Realtime} {
		bl := get(c, sched.KindVersaSlotBL)
		ol := get(c, sched.KindVersaSlotOL)
		nim := get(c, sched.KindNimblock)
		fcfs := get(c, sched.KindFCFS)
		if !(bl > ol && ol > nim && nim > fcfs && fcfs > 1.0) {
			t.Errorf("%v ordering broken: BL=%.2f OL=%.2f Nim=%.2f FCFS=%.2f",
				c, bl, ol, nim, fcfs)
		}
	}

	// Loose: FCFS/RR below baseline (the crossover), VersaSlot near or
	// above parity.
	if get(workload.Loose, sched.KindFCFS) >= 1.0 {
		t.Errorf("Loose FCFS %.2f, expected < 1 (paper: 0.81)",
			get(workload.Loose, sched.KindFCFS))
	}
	if get(workload.Loose, sched.KindVersaSlotBL) < 0.9 {
		t.Errorf("Loose BL %.2f, expected near/above parity (paper: 1.49)",
			get(workload.Loose, sched.KindVersaSlotBL))
	}

	// Standard is where sharing wins biggest (paper: 13.66x).
	if bl := get(workload.Standard, sched.KindVersaSlotBL); bl < 5 {
		t.Errorf("Standard BL reduction %.2f, expected the large-multiple regime", bl)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Apps = 20
	r := Fig6(cfg)
	for _, g := range Fig6Groups() {
		bl := r.Lookup(g, sched.KindVersaSlotBL).Relative
		nim := r.Lookup(g, sched.KindNimblock).Relative
		if bl <= 0 || nim <= 0 {
			t.Fatalf("%s: missing tails", g)
		}
		// The paper's claim: BL consistently beats Nimblock on tails.
		if bl >= nim {
			t.Errorf("%s: BL tail %.2f not below Nimblock %.2f", g, bl, nim)
		}
	}
}

func TestFig7MatchesPaper(t *testing.T) {
	r := Fig7()
	if len(r.Gains) != 4 {
		t.Fatalf("expected 4 bundleable apps, got %d", len(r.Gains))
	}
	if len(r.NotBundleable) != 1 || r.NotBundleable[0] != "LeNet" {
		t.Fatalf("not-bundleable list %v, want [LeNet]", r.NotBundleable)
	}
	for _, g := range r.Gains {
		wantLUT := Fig7Paper.LUT[g.App]
		wantFF := Fig7Paper.FF[g.App]
		if d := g.LUTPct - wantLUT; d > 0.5 || d < -0.5 {
			t.Errorf("%s LUT %.1f vs paper %.1f", g.App, g.LUTPct, wantLUT)
		}
		if d := g.FFPct - wantFF; d > 0.5 || d < -0.5 {
			t.Errorf("%s FF %.1f vs paper %.1f", g.App, g.FFPct, wantFF)
		}
	}
	if r.AvgFFPct < 25 || r.AvgFFPct > 35 {
		t.Errorf("average FF gain %.1f%%, paper reports ~29%%", r.AvgFFPct)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFig8()
	cfg.Workloads = 1
	cfg.Apps = 60
	r := Fig8(cfg)
	// Ordering: Big.Little-only best, switching in between, Only.Little
	// the baseline (paper: 6.65 / 2.98 / 1.0).
	if !(r.BigLittleReduction > r.SwitchingReduction && r.SwitchingReduction > 1.0) {
		t.Errorf("Fig8 ordering broken: BL=%.2f switching=%.2f",
			r.BigLittleReduction, r.SwitchingReduction)
	}
	if r.Switches == 0 {
		t.Error("no cross-board switch occurred")
	}
	if len(r.Trace) == 0 {
		t.Error("empty D_switch trace")
	}
	// Overhead at the paper's millisecond scale.
	if r.MeanSwitchTime <= 0 || r.MeanSwitchTime > 50*1e6 {
		t.Errorf("switch overhead %v outside the ms scale", r.MeanSwitchTime)
	}
}

func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Sequences = 2
	cfg.Apps = 8
	f5 := Fig5(cfg)
	if f5.Table().String() == "" || f5.RTTable().String() == "" {
		t.Fatal("fig5 tables empty")
	}
	f7 := Fig7()
	if f7.Table().String() == "" || f7.DetailTable().String() == "" {
		t.Fatal("fig7 tables empty")
	}
}
