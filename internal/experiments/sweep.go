package experiments

import (
	"fmt"
	"io"

	"versaslot"
	"versaslot/internal/report"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// SlotMix is one Big/Little configuration of the sweep.
type SlotMix struct {
	Big, Little int
}

func (m SlotMix) String() string {
	return fmt.Sprintf("%dB+%dL", m.Big, m.Little)
}

// SweepResult is one configuration's measurement.
type SweepResult struct {
	Mix     SlotMix
	MeanRT  sim.Duration
	P95     sim.Duration
	PRLoads uint64
	UtilLUT float64
}

// SlotSweep ablates the paper's 2 Big + 4 Little design choice: it runs
// the VersaSlot scheduler on every Big/Little mix that tiles the
// 8-Little-equivalent fabric and reports response times. The paper
// fixes 2B+4L; the sweep shows where that sits in the design space for
// the benchmark workload mix.
func SlotSweep(cfg Config, cond workload.Condition) []SweepResult {
	mixes := []SlotMix{
		{Big: 0, Little: 8},
		{Big: 1, Little: 6},
		{Big: 2, Little: 4},
		{Big: 3, Little: 2},
	}
	p := workload.DefaultGenParams(cond)
	p.Apps = cfg.Apps
	seqs := make([]*workload.Sequence, cfg.Sequences)
	for i := range seqs {
		seqs[i] = workload.Generate(p, cfg.BaseSeed+uint64(i))
	}

	var scenarios []versaslot.Scenario
	for _, mix := range mixes {
		for si := range seqs {
			scenarios = append(scenarios, versaslot.Scenario{
				Name:        mix.String(),
				BigSlots:    mix.Big,
				LittleSlots: mix.Little,
				Workload:    seqs[si],
				Seed:        cfg.BaseSeed + uint64(si),
			})
		}
	}
	results, err := versaslot.RunMany(scenarios, cfg.workers())
	if err != nil {
		panic(err)
	}

	out := make([]SweepResult, len(mixes))
	for mi, mix := range mixes {
		var rtSum, p95Sum float64
		var loads uint64
		var util float64
		for si := range seqs {
			res := results[mi*len(seqs)+si]
			rtSum += float64(res.Summary.MeanRT)
			p95Sum += float64(res.Summary.P95)
			loads += res.Summary.PRLoads
			util += res.Summary.UtilLUT
		}
		n := float64(len(seqs))
		out[mi] = SweepResult{
			Mix:     mix,
			MeanRT:  sim.Duration(rtSum / n),
			P95:     sim.Duration(p95Sum / n),
			PRLoads: loads / uint64(len(seqs)),
			UtilLUT: util / n,
		}
	}
	return out
}

// SweepTable renders the sweep.
func SweepTable(results []SweepResult, cond workload.Condition) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Slot-configuration sweep (%s arrivals) — the paper fixes 2B+4L", cond),
		"Config", "Mean RT (s)", "P95 (s)", "PR loads/seq", "LUT util")
	for _, r := range results {
		t.AddRow(r.Mix.String(),
			sim.Time(r.MeanRT).Seconds(),
			sim.Time(r.P95).Seconds(),
			r.PRLoads,
			r.UtilLUT)
	}
	return t
}

// WriteSweep renders the sweep table to w.
func WriteSweep(w io.Writer, results []SweepResult, cond workload.Condition) {
	SweepTable(results, cond).Render(w)
}
