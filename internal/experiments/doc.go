// Package experiments regenerates every table and figure of the
// paper's evaluation (Section IV). Each Fig* function runs the same
// workloads the paper describes through the public versaslot
// Scenario/Runner API, returns structured results, and carries the
// paper's reported numbers alongside for comparison in EXPERIMENTS.md
// and the benchmark harness.
package experiments
