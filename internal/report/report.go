package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV emits the table as CSV (RFC-4180 quoting for cells that
// need it).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvQuote(c)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
