// Package report renders experiment results as aligned ASCII tables
// and CSV, the two formats the benchmark harness emits.
package report
