package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "Name", "Value")
	tbl.AddRow("short", 1.5)
	tbl.AddRow("a-much-longer-name", 22)
	out := tbl.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	// All data lines align to the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatal("header and separator widths differ")
	}
	if !strings.Contains(out, "1.50") {
		t.Fatal("floats not rendered with 2 decimals")
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Fatal("empty title rendered a blank line")
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("plain", `quote"inside`)
	tbl.AddRow("comma,here", "new\nline")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"quote""inside"`) {
		t.Fatalf("quote escaping: %q", out)
	}
	if !strings.Contains(out, `"comma,here"`) {
		t.Fatal("comma quoting")
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatal("header row")
	}
}
