package sim

import (
	"container/heap"
	"testing"
)

// refEvent / refHeap reimplement the kernel's previous event queue — a
// container/heap binary heap of per-event pointers — as the reference
// the indexed 4-ary kernel is differentially tested against.
type refEvent struct {
	at       Time
	priority int32
	seq      uint64
	label    int
	canceled bool
	index    int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// refKernel replays the same trace through the reference binary heap.
type refKernel struct {
	now   Time
	queue refHeap
	seq   uint64
}

func (r *refKernel) schedule(d Duration, priority int32, label int) *refEvent {
	e := &refEvent{at: r.now.Add(d), priority: priority, seq: r.seq, label: label, index: -1}
	r.seq++
	heap.Push(&r.queue, e)
	return e
}

func (r *refKernel) cancel(e *refEvent) {
	if e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	heap.Remove(&r.queue, e.index)
}

func (r *refKernel) run(onFire func(label int)) {
	for len(r.queue) > 0 {
		e := heap.Pop(&r.queue).(*refEvent)
		if e.canceled {
			continue
		}
		r.now = e.at
		onFire(e.label)
	}
}

// traceOp is one operation of a generated event trace.
type traceOp struct {
	delay    Duration
	priority int32
	// cancelOf, when >= 0, cancels the event scheduled by op cancelOf
	// at this op's own schedule time (modelled as an immediate cancel
	// during trace construction — both kernels see the identical
	// sequence of schedule/cancel calls).
	cancelOf int
}

// genTrace builds a deterministic pseudo-random trace: bursts of
// same-instant events, priority ties, wide delay spread, and cancels of
// live, fired, and already-canceled events.
func genTrace(seed uint64, n int) []traceOp {
	rng := NewRNG(seed)
	ops := make([]traceOp, 0, n)
	for i := 0; i < n; i++ {
		op := traceOp{cancelOf: -1}
		switch rng.Intn(10) {
		case 0: // same-instant burst member
			op.delay = 5 * Millisecond
		case 1: // priority tie at a shared instant
			op.delay = 7 * Millisecond
			op.priority = int32(rng.Intn(5)) - 2
		case 2: // cancel a previously scheduled event
			if i > 0 {
				op.cancelOf = rng.Intn(i)
			}
			op.delay = Duration(rng.IntRange(1, 1000)) * Microsecond
		default:
			op.delay = Duration(rng.IntRange(1, 20000)) * Microsecond
			if rng.Intn(4) == 0 {
				op.priority = int32(rng.Intn(7)) - 3
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// TestKernelDifferentialOrder replays random event traces through the
// indexed 4-ary kernel and the reference binary heap and asserts both
// fire the surviving events in the identical order.
func TestKernelDifferentialOrder(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		ops := genTrace(seed, 400)

		// Reference replay.
		ref := &refKernel{}
		refEvents := make([]*refEvent, len(ops))
		for i, op := range ops {
			refEvents[i] = ref.schedule(op.delay, op.priority, i)
			if op.cancelOf >= 0 {
				ref.cancel(refEvents[op.cancelOf])
			}
		}
		var want []int
		ref.run(func(label int) { want = append(want, label) })

		// Indexed-kernel replay: identical schedule/cancel sequence.
		k := NewKernel(seed)
		var got []int
		ids := make([]EventID, len(ops))
		for i, op := range ops {
			i := i
			ids[i] = k.ScheduleP(op.delay, op.priority, func() { got = append(got, i) })
			if op.cancelOf >= 0 {
				k.Cancel(ids[op.cancelOf])
			}
		}
		k.Run()

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at position %d: got event %d, reference %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestKernelDifferentialNested extends the differential check to
// run-time behaviour: callbacks schedule follow-up events and cancel
// pending ones mid-run, driven by the same RNG stream on both sides.
func TestKernelDifferentialNested(t *testing.T) {
	type plan struct {
		d        Duration
		chain    int // follow-ups each event schedules
		chainGap Duration
	}
	for seed := uint64(100); seed < 110; seed++ {
		rng := NewRNG(seed)
		plans := make([]plan, 120)
		for i := range plans {
			plans[i] = plan{
				d:        Duration(rng.IntRange(1, 5000)) * Microsecond,
				chain:    rng.Intn(3),
				chainGap: Duration(rng.IntRange(1, 300)) * Microsecond,
			}
		}

		// Reference replay: each fire schedules its chain followers,
		// with follower labels allocated in fire order.
		ref := &refKernel{}
		var want []int
		byLabel := map[int]plan{}
		for i, p := range plans {
			ref.schedule(p.d, 0, i)
			byLabel[i] = p
		}
		nextLabel := len(plans)
		for len(ref.queue) > 0 {
			e := heap.Pop(&ref.queue).(*refEvent)
			if e.canceled {
				continue
			}
			ref.now = e.at
			want = append(want, e.label)
			p := byLabel[e.label]
			for c := 0; c < p.chain; c++ {
				child := plan{d: p.chainGap, chain: 0}
				ce := ref.schedule(child.d, 0, nextLabel)
				byLabel[ce.label] = child
				nextLabel++
			}
		}

		// Indexed kernel with real nested callbacks.
		k := NewKernel(seed)
		var got []int
		next := len(plans)
		var fire func(label int, p plan) func()
		fire = func(label int, p plan) func() {
			return func() {
				got = append(got, label)
				for c := 0; c < p.chain; c++ {
					child := plan{d: p.chainGap}
					k.Schedule(child.d, fire(next, child))
					next++
				}
			}
		}
		for i, p := range plans {
			k.Schedule(p.d, fire(i, p))
		}
		k.Run()

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d, reference %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: nested divergence at %d: got %d want %d", seed, i, got[i], want[i])
			}
		}
	}
}
