package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelExecutesInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30*Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if k.Now() != Time(30*Millisecond) {
		t.Fatalf("clock at %v, want 30ms", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelPriorityOrdersSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.ScheduleP(time10ms(), 5, func() { order = append(order, "low") })
	k.ScheduleP(time10ms(), -5, func() { order = append(order, "high") })
	k.Run()
	if order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority ignored: %v", order)
	}
}

func time10ms() Duration { return 10 * Millisecond }

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10*Millisecond, func() { fired = true })
	if !k.Scheduled(e) {
		t.Fatal("fresh event not scheduled")
	}
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if k.Scheduled(e) {
		t.Fatal("event still scheduled after cancel")
	}
	// Double-cancel and canceling the zero handle are no-ops.
	k.Cancel(e)
	k.Cancel(NoEvent)
}

func TestKernelCancelDuringRun(t *testing.T) {
	k := NewKernel(1)
	var e2 EventID
	fired := false
	k.Schedule(5*Millisecond, func() { k.Cancel(e2) })
	e2 = k.Schedule(10*Millisecond, func() { fired = true })
	k.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	n := 0
	e := k.Schedule(Millisecond, func() { n++ })
	k.Run()
	if n != 1 {
		t.Fatalf("event fired %d times", n)
	}
	// Canceling after the fire is a no-op...
	k.Cancel(e)
	if k.Scheduled(e) {
		t.Fatal("fired event reports scheduled")
	}
	// ...and the stale handle must not touch the recycled slot: the
	// next Schedule reuses the arena entry the fired event vacated.
	fired := false
	e2 := k.Schedule(Millisecond, func() { fired = true })
	k.Cancel(e) // stale: generation mismatch, must not cancel e2
	if !k.Scheduled(e2) {
		t.Fatal("stale cancel hit the recycled slot")
	}
	k.Run()
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

func TestKernelCancelTwice(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(Millisecond, func() { fired = true })
	other := k.Schedule(2*Millisecond, func() {})
	k.Cancel(e)
	if k.Pending() != 1 {
		t.Fatalf("pending %d after cancel, want 1", k.Pending())
	}
	k.Cancel(e) // second cancel must not double-decrement live count
	if k.Pending() != 1 {
		t.Fatalf("pending %d after double cancel, want 1", k.Pending())
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	_ = other
}

func TestKernelEventTime(t *testing.T) {
	k := NewKernel(1)
	e := k.Schedule(7*Millisecond, func() {})
	at, ok := k.EventTime(e)
	if !ok || at != Time(7*Millisecond) {
		t.Fatalf("EventTime = %v,%v", at, ok)
	}
	k.Run()
	if _, ok := k.EventTime(e); ok {
		t.Fatal("EventTime true for fired event")
	}
	if _, ok := k.EventTime(NoEvent); ok {
		t.Fatal("EventTime true for zero handle")
	}
}

// TestKernelSameInstantFIFOAcrossRebalancing forces many heap
// rebalance operations (interleaved earlier/later events, cancels, and
// free-list recycling) and asserts same-instant events still fire in
// submission order.
func TestKernelSameInstantFIFOAcrossRebalancing(t *testing.T) {
	k := NewKernel(1)
	var order []int
	// A batch of same-instant events, interleaved with earlier fillers
	// that force sift operations, some of which are canceled.
	var fillers []EventID
	for i := 0; i < 64; i++ {
		i := i
		k.Schedule(50*Millisecond, func() { order = append(order, i) })
		d := Duration(i%7+1) * Millisecond
		fillers = append(fillers, k.Schedule(d, func() {}))
	}
	for i, e := range fillers {
		if i%3 == 0 {
			k.Cancel(e)
		}
	}
	// Drain the fillers so their slots recycle, then add more
	// same-instant events into recycled slots.
	k.RunUntil(Time(10 * Millisecond))
	for i := 64; i < 96; i++ {
		i := i
		k.At(Time(50*Millisecond), func() { order = append(order, i) })
	}
	k.Run()
	if len(order) != 96 {
		t.Fatalf("fired %d of 96 same-instant events", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order at %d: %v", i, order[:i+1])
		}
	}
}

// TestKernelHorizonDrop: events past the horizon are dropped silently —
// never executed, never advancing the clock.
func TestKernelHorizonDrop(t *testing.T) {
	k := NewKernel(1)
	k.SetHorizon(Time(10 * Millisecond))
	var fired []int
	k.Schedule(5*Millisecond, func() { fired = append(fired, 1) })
	k.Schedule(20*Millisecond, func() { fired = append(fired, 2) })
	k.Schedule(10*Millisecond, func() { fired = append(fired, 3) })
	k.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
	if k.Now() != Time(10*Millisecond) {
		t.Fatalf("clock advanced to %v past horizon", k.Now())
	}
	if k.Executed() != 2 {
		t.Fatalf("executed %d, want 2", k.Executed())
	}
	if k.Pending() != 0 {
		t.Fatalf("pending %d after drop, want 0", k.Pending())
	}
}

// TestKernelFreeListRecycling: steady-state schedule/fire cycles must
// not grow the arena past the peak concurrency.
func TestKernelFreeListRecycling(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 10000; i++ {
		k.Schedule(Microsecond, func() {})
		k.Step()
	}
	if n := len(k.arena); n != 1 {
		t.Fatalf("arena grew to %d slots for 1 concurrent event", n)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Time(5*Millisecond), func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.Schedule(-1, func() {})
}

func TestKernelNilCallbackPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	k.Schedule(0, nil)
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.Schedule(10*Millisecond, func() { fired = append(fired, 1) })
	k.Schedule(30*Millisecond, func() { fired = append(fired, 2) })
	k.RunUntil(Time(20 * Millisecond))
	if len(fired) != 1 {
		t.Fatalf("RunUntil executed %d events, want 1", len(fired))
	}
	if k.Now() != Time(20*Millisecond) {
		t.Fatalf("clock %v, want 20ms", k.Now())
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event not run")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(Millisecond, rec)
		}
	}
	k.Schedule(Millisecond, rec)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth %d, want 100", depth)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed %d, want 100", k.Executed())
	}
}

func TestKernelStep(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Schedule(Millisecond, func() { n++ })
	k.Schedule(2*Millisecond, func() { n++ })
	if !k.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if n != 1 {
		t.Fatalf("n=%d after one step", n)
	}
	if !k.Step() || k.Step() {
		t.Fatal("Step miscounted events")
	}
}

// TestKernelDeterminism: two kernels fed the same program execute the
// same number of events and end at the same time.
func TestKernelDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, Time) {
		k := NewKernel(seed)
		for i := 0; i < 50; i++ {
			d := Duration(k.RNG().IntRange(1, 1000)) * Microsecond
			k.Schedule(d, func() {
				if k.RNG().Float64() < 0.5 {
					k.Schedule(Millisecond, func() {})
				}
			})
		}
		k.Run()
		return k.Executed(), k.Now()
	}
	e1, t1 := run(99)
	e2, t2 := run(99)
	if e1 != e2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}

// Property: the kernel clock never goes backwards across any schedule
// of events.
func TestKernelClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(7)
		last := Time(0)
		ok := true
		for _, d := range delays {
			k.Schedule(Duration(d)*Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	base := Time(1500 * Millisecond)
	if base.Add(500*Millisecond) != Time(2*Second) {
		t.Fatal("Add wrong")
	}
	if base.Sub(Time(Second)) != 500*Millisecond {
		t.Fatal("Sub wrong")
	}
	if !base.Before(Time(2 * Second)) {
		t.Fatal("Before wrong")
	}
	if !base.After(Time(Second)) {
		t.Fatal("After wrong")
	}
	if base.Seconds() != 1.5 {
		t.Fatalf("Seconds %v", base.Seconds())
	}
	if base.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds %v", base.Milliseconds())
	}
}
