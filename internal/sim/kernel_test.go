package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelExecutesInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30*Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if k.Now() != Time(30*Millisecond) {
		t.Fatalf("clock at %v, want 30ms", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelPriorityOrdersSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.ScheduleP(time10ms(), 5, func() { order = append(order, "low") })
	k.ScheduleP(time10ms(), -5, func() { order = append(order, "high") })
	k.Run()
	if order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority ignored: %v", order)
	}
}

func time10ms() Duration { return 10 * Millisecond }

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10*Millisecond, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double-cancel and canceling fired events are no-ops.
	k.Cancel(e)
	k.Cancel(nil)
}

func TestKernelCancelDuringRun(t *testing.T) {
	k := NewKernel(1)
	var e2 *Event
	fired := false
	k.Schedule(5*Millisecond, func() { k.Cancel(e2) })
	e2 = k.Schedule(10*Millisecond, func() { fired = true })
	k.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Time(5*Millisecond), func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.Schedule(-1, func() {})
}

func TestKernelNilCallbackPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	k.Schedule(0, nil)
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.Schedule(10*Millisecond, func() { fired = append(fired, 1) })
	k.Schedule(30*Millisecond, func() { fired = append(fired, 2) })
	k.RunUntil(Time(20 * Millisecond))
	if len(fired) != 1 {
		t.Fatalf("RunUntil executed %d events, want 1", len(fired))
	}
	if k.Now() != Time(20*Millisecond) {
		t.Fatalf("clock %v, want 20ms", k.Now())
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event not run")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(Millisecond, rec)
		}
	}
	k.Schedule(Millisecond, rec)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth %d, want 100", depth)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed %d, want 100", k.Executed())
	}
}

func TestKernelStep(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Schedule(Millisecond, func() { n++ })
	k.Schedule(2*Millisecond, func() { n++ })
	if !k.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if n != 1 {
		t.Fatalf("n=%d after one step", n)
	}
	if !k.Step() || k.Step() {
		t.Fatal("Step miscounted events")
	}
}

// TestKernelDeterminism: two kernels fed the same program execute the
// same number of events and end at the same time.
func TestKernelDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, Time) {
		k := NewKernel(seed)
		for i := 0; i < 50; i++ {
			d := Duration(k.RNG().IntRange(1, 1000)) * Microsecond
			k.Schedule(d, func() {
				if k.RNG().Float64() < 0.5 {
					k.Schedule(Millisecond, func() {})
				}
			})
		}
		k.Run()
		return k.Executed(), k.Now()
	}
	e1, t1 := run(99)
	e2, t2 := run(99)
	if e1 != e2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}

// Property: the kernel clock never goes backwards across any schedule
// of events.
func TestKernelClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(7)
		last := Time(0)
		ok := true
		for _, d := range delays {
			k.Schedule(Duration(d)*Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	base := Time(1500 * Millisecond)
	if base.Add(500*Millisecond) != Time(2*Second) {
		t.Fatal("Add wrong")
	}
	if base.Sub(Time(Second)) != 500*Millisecond {
		t.Fatal("Sub wrong")
	}
	if !base.Before(Time(2 * Second)) {
		t.Fatal("Before wrong")
	}
	if !base.After(Time(Second)) {
		t.Fatal("After wrong")
	}
	if base.Seconds() != 1.5 {
		t.Fatalf("Seconds %v", base.Seconds())
	}
	if base.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds %v", base.Milliseconds())
	}
}
