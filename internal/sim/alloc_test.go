package sim

import "testing"

// TestKernelScheduleStepZeroAlloc: the steady-state Schedule/Step cycle
// must be allocation-free — the arena and free list recycle event
// slots, and the heap of indices never reallocates once warm.
func TestKernelScheduleStepZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	// Warm up: grow the arena, free list, and heap to steady state.
	for i := 0; i < 100; i++ {
		k.Schedule(Microsecond, fn)
		k.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(Microsecond, fn)
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("Schedule/Step allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestKernelCancelZeroAlloc: lazy-deletion cancels must not allocate.
func TestKernelCancelZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 100; i++ {
		k.Cancel(k.Schedule(Microsecond, fn))
		k.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Cancel(k.Schedule(Microsecond, fn))
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("Schedule/Cancel allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestServerCompletionAllocs: a server completion cycle costs at most
// the caller's Job allocation — the completion event itself reuses the
// server's pre-bound finish callback.
func TestServerCompletionAllocs(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "alloc")
	for i := 0; i < 100; i++ {
		s.Submit(&Job{Name: "warm", Class: "bench", Cost: Microsecond})
		for k.Step() {
		}
	}
	job := &Job{Name: "steady", Class: "bench", Cost: Microsecond}
	allocs := testing.AllocsPerRun(1000, func() {
		j := *job
		s.Submit(&j)
		for k.Step() {
		}
	})
	// One alloc for the Job copy escaping to Submit; nothing else.
	if allocs > 1 {
		t.Fatalf("server completion cycle allocates %.2f allocs/op, want <= 1", allocs)
	}
}
