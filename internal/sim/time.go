package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration = time.Duration

// Common duration constructors, re-exported for brevity at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders t as a duration since simulation start.
func (t Time) String() string { return fmt.Sprintf("t=%s", Duration(t)) }

// MaxTime is the largest representable simulation time.
const MaxTime = Time(1<<63 - 1)
