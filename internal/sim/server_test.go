package sim

import (
	"testing"
)

func TestServerFIFO(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core0")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.SubmitFunc("job", "test", 10*Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs out of order: %v", order)
		}
	}
	if k.Now() != Time(50*Millisecond) {
		t.Fatalf("five 10ms jobs ended at %v", k.Now())
	}
}

func TestServerWaitAccounting(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "pcap")
	var waits []Duration
	for i := 0; i < 3; i++ {
		s.Submit(&Job{
			Name: "load", Class: "pr", Cost: 20 * Millisecond,
			Start: func(w Duration) { waits = append(waits, w) },
		})
	}
	k.Run()
	want := []Duration{0, 20 * Millisecond, 40 * Millisecond}
	for i, w := range waits {
		if w != want[i] {
			t.Fatalf("wait[%d]=%v want %v", i, w, want[i])
		}
	}
	st := s.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed %d", st.Completed)
	}
	if st.Waited != 2 {
		t.Fatalf("waited %d, want 2", st.Waited)
	}
	if st.WaitTime != 60*Millisecond {
		t.Fatalf("wait time %v, want 60ms", st.WaitTime)
	}
	if st.BusyTime != 60*Millisecond {
		t.Fatalf("busy time %v", st.BusyTime)
	}
	if st.ByClass["pr"] != 3 {
		t.Fatalf("class accounting %v", st.ByClass)
	}
}

func TestServerIdleThenBusy(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	if s.Busy() {
		t.Fatal("new server busy")
	}
	s.SubmitFunc("a", "x", 5*Millisecond, nil)
	if !s.Busy() {
		t.Fatal("server not busy after submit")
	}
	k.Run()
	if s.Busy() {
		t.Fatal("server busy after drain")
	}
}

func TestServerCancelQueuedJob(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	ran := false
	s.SubmitFunc("first", "x", 10*Millisecond, nil)
	j := &Job{Name: "second", Class: "x", Cost: 10 * Millisecond, Done: func() { ran = true }}
	s.Submit(j)
	j.Cancel()
	k.Run()
	if ran {
		t.Fatal("canceled job ran")
	}
	if k.Now() != Time(10*Millisecond) {
		t.Fatalf("clock %v, want 10ms", k.Now())
	}
}

func TestServerQueueLenAndPendingByClass(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	s.SubmitFunc("running", "pr", 10*Millisecond, nil)
	s.SubmitFunc("q1", "pr", 10*Millisecond, nil)
	s.SubmitFunc("q2", "launch", 10*Millisecond, nil)
	if s.QueueLen() != 2 {
		t.Fatalf("queue len %d, want 2", s.QueueLen())
	}
	if got := s.PendingByClass("pr"); got != 2 {
		t.Fatalf("pending pr %d, want 2 (one running, one queued)", got)
	}
	if got := s.PendingByClass("launch"); got != 1 {
		t.Fatalf("pending launch %d, want 1", got)
	}
	k.Run()
	if s.PendingByClass("pr") != 0 {
		t.Fatal("pending after drain")
	}
}

func TestServerDoneMaySubmitMore(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	var order []string
	s.SubmitFunc("a", "x", 5*Millisecond, func() {
		order = append(order, "a")
		s.SubmitFunc("b", "x", 5*Millisecond, func() { order = append(order, "b") })
	})
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("chained submission broken: %v", order)
	}
}

func TestServerIdleHook(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	idles := 0
	s.IdleHook = func() { idles++ }
	s.SubmitFunc("a", "x", 5*Millisecond, nil)
	s.SubmitFunc("b", "x", 5*Millisecond, nil)
	k.Run()
	if idles != 1 {
		t.Fatalf("idle hook fired %d times, want 1 (after the queue drained)", idles)
	}
}

func TestServerNegativeCostPanics(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	defer func() {
		if recover() == nil {
			t.Error("negative cost did not panic")
		}
	}()
	s.SubmitFunc("bad", "x", -1, nil)
}

func TestServerZeroCostJob(t *testing.T) {
	k := NewKernel(1)
	s := NewServer(k, "core")
	ran := false
	s.SubmitFunc("instant", "x", 0, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("zero-cost job never completed")
	}
}
