package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in virtual time. Events are ordered by
// (time, priority, sequence); sequence preserves FIFO order among events
// scheduled for the same instant, which keeps runs deterministic.
type Event struct {
	at       Time
	priority int32
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
}

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation core: a clock and an event queue.
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now      Time
	queue    eventHeap
	seq      uint64
	rng      *RNG
	executed uint64
	tracer   Tracer
	maxTime  Time
}

// NewKernel returns a kernel with its clock at zero and an RNG seeded
// with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed), maxTime: MaxTime}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// SetTracer installs a tracer that observes every executed event.
// A nil tracer disables tracing.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would violate causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	return k.at(t, 0, fn)
}

// Schedule schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.at(k.now.Add(d), 0, fn)
}

// ScheduleP schedules fn with an explicit priority: lower priorities run
// first among events at the same instant. Use sparingly — the default
// FIFO ordering is almost always right.
func (k *Kernel) ScheduleP(d Duration, priority int32, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.at(k.now.Add(d), priority, fn)
}

func (k *Kernel) at(t Time, priority int32, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e := &Event{at: t, priority: priority, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
}

// Step executes the single next event, advancing the clock to it.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at > k.maxTime {
			// Past the horizon: drop silently.
			continue
		}
		k.now = e.at
		k.executed++
		if k.tracer != nil {
			k.tracer.Event(k.now)
		}
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the horizon is reached.
// It returns the final clock value.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if the clock is behind it).
func (k *Kernel) RunUntil(t Time) Time {
	for len(k.queue) > 0 {
		next := k.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

func (k *Kernel) peek() *Event {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			heap.Pop(&k.queue)
			continue
		}
		return e
	}
	return nil
}

// Tracer observes kernel activity. Implementations must not mutate
// simulation state.
type Tracer interface {
	Event(at Time)
}
