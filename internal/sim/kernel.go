package sim

import (
	"fmt"
)

// EventID is a stable handle to a scheduled event: an index into the
// kernel's event arena plus a generation counter. Handles stay valid
// (as no-ops) after the event fires or is canceled — the generation
// check makes a stale handle harmless even after its arena slot has
// been recycled for a newer event. The zero EventID refers to no event.
type EventID uint64

// NoEvent is the zero EventID; it never refers to a live event.
const NoEvent EventID = 0

// Event priority classes. Among events at the same instant, lower
// priorities run first; within a class, sequence order (FIFO) decides.
// The classes exist so that equal-instant ordering is identical whether
// a farm runs on one kernel or sharded across per-pair kernels: workload
// arrivals fire first, then farm-coordinator control (rebalance ticks,
// rack-link deliveries, cross-pair fault chains), then board-local work.
const (
	PriArrival     int32 = -2
	PriFarmControl int32 = -1
)

// Valid reports whether the handle could refer to an event (it may
// still be stale; ask the kernel's Scheduled for liveness).
func (id EventID) Valid() bool { return id != 0 }

func makeEventID(idx int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(uint32(idx+1)))
}

// split returns the arena index and generation; idx is -1 for NoEvent.
func (id EventID) split() (idx int32, gen uint32) {
	return int32(uint32(id)) - 1, uint32(id >> 32)
}

// Slot lifecycle states of an arena entry.
const (
	slotFree     uint8 = iota // on the free list, gen already bumped
	slotQueued                // live in the heap
	slotCanceled              // canceled but still in the heap (lazy deletion)
)

// eventSlot is one arena entry. Events are plain structs addressed by
// index — no per-event heap allocation, no interface boxing.
type eventSlot struct {
	at       Time
	seq      uint64
	fn       func()
	priority int32
	gen      uint32
	state    uint8
}

// Kernel is the discrete-event simulation core: a clock and an event
// queue. The queue is an inline 4-ary min-heap of arena indices ordered
// by (time, priority, sequence); sequence preserves FIFO order among
// events scheduled for the same instant, which keeps runs deterministic.
// The arena plus a free list give zero steady-state allocation: a fired
// or canceled event's slot is recycled for the next Schedule.
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now      Time
	arena    []eventSlot
	heap     []int32 // arena indices, 4-ary min-heap order
	free     []int32 // recycled arena indices
	live     int     // queued, not-canceled events
	seq      uint64
	rng      *RNG
	executed uint64
	tracer   Tracer
	maxTime  Time
}

// NewKernel returns a kernel with its clock at zero and an RNG seeded
// with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed), maxTime: MaxTime}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently queued (canceled
// events awaiting lazy removal are not counted).
func (k *Kernel) Pending() int { return k.live }

// SetTracer installs a tracer that observes every executed event.
// A nil tracer disables tracing.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// SetHorizon sets the simulation horizon: events scheduled past t are
// silently dropped when they reach the head of the queue. The default
// horizon is MaxTime (no dropping).
func (k *Kernel) SetHorizon(t Time) { k.maxTime = t }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would violate causality.
func (k *Kernel) At(t Time, fn func()) EventID {
	return k.at(t, 0, fn)
}

// AtP schedules fn at absolute time t with an explicit priority: lower
// priorities run first among events at the same instant. The farm's
// sharded executor relies on priority classes (arrivals before farm
// control before board-local events) so that equal-instant ordering is
// reproducible across independently advancing kernels.
func (k *Kernel) AtP(t Time, priority int32, fn func()) EventID {
	return k.at(t, priority, fn)
}

// Schedule schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.at(k.now.Add(d), 0, fn)
}

// ScheduleP schedules fn with an explicit priority: lower priorities run
// first among events at the same instant. Use sparingly — the default
// FIFO ordering is almost always right.
func (k *Kernel) ScheduleP(d Duration, priority int32, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.at(k.now.Add(d), priority, fn)
}

func (k *Kernel) at(t Time, priority int32, fn func()) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.arena = append(k.arena, eventSlot{})
		idx = int32(len(k.arena) - 1)
	}
	s := &k.arena[idx]
	s.at = t
	s.priority = priority
	s.seq = k.seq
	s.fn = fn
	s.state = slotQueued
	k.seq++
	k.live++
	k.push(idx)
	return makeEventID(idx, s.gen)
}

// Cancel removes a pending event by handle. Canceling an already-fired,
// already-canceled, or zero handle is a no-op, as is a stale handle
// whose slot now hosts a newer event. Cancels are lazy: the entry stays
// in the heap and is discarded when it reaches the head.
func (k *Kernel) Cancel(id EventID) {
	idx, gen := id.split()
	if idx < 0 || int(idx) >= len(k.arena) {
		return
	}
	s := &k.arena[idx]
	if s.gen != gen || s.state != slotQueued {
		return
	}
	s.state = slotCanceled
	s.fn = nil
	k.live--
}

// Scheduled reports whether the handle refers to an event that is still
// queued (not fired, not canceled, not stale).
func (k *Kernel) Scheduled(id EventID) bool {
	idx, gen := id.split()
	if idx < 0 || int(idx) >= len(k.arena) {
		return false
	}
	s := &k.arena[idx]
	return s.gen == gen && s.state == slotQueued
}

// EventTime returns the firing time of a still-queued event.
func (k *Kernel) EventTime(id EventID) (Time, bool) {
	idx, gen := id.split()
	if idx < 0 || int(idx) >= len(k.arena) {
		return 0, false
	}
	s := &k.arena[idx]
	if s.gen != gen || s.state != slotQueued {
		return 0, false
	}
	return s.at, true
}

// release recycles an arena slot: the generation bump invalidates every
// outstanding handle to the old occupant.
func (k *Kernel) release(idx int32) {
	s := &k.arena[idx]
	s.fn = nil
	s.gen++
	s.state = slotFree
	k.free = append(k.free, idx)
}

// Step executes the single next event, advancing the clock to it.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		idx := k.popRoot()
		s := &k.arena[idx]
		if s.state == slotCanceled {
			k.release(idx)
			continue
		}
		if s.at > k.maxTime {
			// Past the horizon: drop silently.
			k.live--
			k.release(idx)
			continue
		}
		k.now = s.at
		k.executed++
		k.live--
		fn := s.fn
		k.release(idx)
		if k.tracer != nil {
			k.tracer.Event(k.now)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the horizon is reached.
// It returns the final clock value.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if the clock is behind it).
func (k *Kernel) RunUntil(t Time) Time {
	for {
		at, ok := k.peek()
		if !ok || at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// RunBefore executes every event with a timestamp strictly before t and
// returns the number executed. Events at exactly t stay queued — the
// sharded farm executor uses this to advance board-local streams up to
// (but not through) the next global coordination instant, whose events
// carry lower priorities and must run first.
func (k *Kernel) RunBefore(t Time) int {
	n := 0
	for {
		at, ok := k.peek()
		if !ok || at >= t {
			return n
		}
		k.Step()
		n++
	}
}

// RunTo executes every event strictly before bound and returns the
// firing time of the earliest remaining event (MaxTime when the queue
// is empty). It is the conservative-lookahead primitive of sharded
// farm execution: a shard granted the bound runs ahead to it in one
// call, and the returned horizon tells the coordinator the earliest
// instant the kernel could next act — no further synchronization with
// this shard is needed until a cross-shard event at or past that
// horizon arrives.
func (k *Kernel) RunTo(bound Time) Time {
	for {
		at, ok := k.peek()
		if !ok {
			return MaxTime
		}
		if at >= bound {
			return at
		}
		k.Step()
	}
}

// AdvanceTo bumps the clock forward to t without executing anything.
// It panics if an event earlier than t is still pending (that would
// skip it, violating causality); events at exactly t may remain queued.
// A t at or behind the current clock is a no-op.
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if at, ok := k.peek(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) past pending event at %v", t, at))
	}
	k.now = t
}

// NextAt returns the firing time of the earliest pending event.
func (k *Kernel) NextAt() (Time, bool) { return k.peek() }

// peek returns the firing time of the next live event, discarding
// canceled entries off the heap head.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		idx := k.heap[0]
		s := &k.arena[idx]
		if s.state == slotCanceled {
			k.popRoot()
			k.release(idx)
			continue
		}
		return s.at, true
	}
	return 0, false
}

// less orders arena entries by (time, priority, sequence) — a strict
// total order (sequence numbers are unique), so the pop order is
// independent of the heap's internal arrangement and byte-identical
// to the previous container/heap implementation.
func (k *Kernel) less(a, b int32) bool {
	x, y := &k.arena[a], &k.arena[b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.priority != y.priority {
		return x.priority < y.priority
	}
	return x.seq < y.seq
}

// push appends an arena index and sifts it up the 4-ary heap.
func (k *Kernel) push(idx int32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !k.less(idx, k.heap[p]) {
			break
		}
		k.heap[i] = k.heap[p]
		i = p
	}
	k.heap[i] = idx
}

// popRoot removes and returns the minimum arena index.
func (k *Kernel) popRoot() int32 {
	root := k.heap[0]
	n := len(k.heap) - 1
	last := k.heap[n]
	k.heap = k.heap[:n]
	if n == 0 {
		return root
	}
	// Sift last down from the root. A 4-ary layout halves the tree
	// height versus binary and keeps the four children of a node in one
	// or two cache lines of the index slice.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if k.less(k.heap[j], k.heap[best]) {
				best = j
			}
		}
		if !k.less(k.heap[best], last) {
			break
		}
		k.heap[i] = k.heap[best]
		i = best
	}
	k.heap[i] = last
	return root
}

// Tracer observes kernel activity. Implementations must not mutate
// simulation state.
type Tracer interface {
	Event(at Time)
}
