package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256**).
// It is not safe for concurrent use; each simulation owns one.
//
// The standard library's math/rand is avoided so that the generator's
// sequence is pinned by this package rather than by the Go release.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed nonzero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill;
	// simple rejection keeps the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// DurationRange returns a uniform duration in [lo, hi] inclusive.
func (r *RNG) DurationRange(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: DurationRange with hi < lo")
	}
	if hi == lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + Duration(r.Uint64()%span)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-float64(mean) * math.Log(u))
	if d < 0 {
		d = 0
	}
	return d
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG whose stream is independent of r's future
// output, derived from r's current state. Useful for giving each
// workload sequence its own stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
