// Package sim provides the deterministic discrete-event simulation
// kernel, virtual clock, random source, and server primitive that
// every VersaSlot hardware model (PCAP, CPU cores, slots, links) is
// built on.
//
// # Determinism
//
// A simulation is single-goroutine: every state change happens inside
// an event callback, so a run is bit-for-bit reproducible for a given
// seed and input. Events fire in the strict total order (time,
// priority, sequence); sequence numbers are unique per kernel, so the
// pop order is independent of the event queue's internal arrangement.
// The RNG is a pinned xoshiro256** implementation — sequences do not
// drift across Go releases.
//
// # EventID generations
//
// Schedule returns a generation-counted EventID handle rather than a
// pointer. The kernel stores events in an arena whose slots are
// recycled through a free list; the generation counter makes a stale
// handle (one whose event already fired or was canceled) harmless —
// Cancel and EventTime on it are no-ops, never a hit on whatever
// event now occupies the recycled slot. Steady-state Schedule/Step
// performs zero heap allocations.
package sim
