package sim

// Job is a unit of work submitted to a Server: it occupies the server
// for Cost, then Done runs (still inside the kernel, at completion time).
type Job struct {
	// Name identifies the job in traces and statistics.
	Name string
	// Cost is the service time the job occupies the server for.
	Cost Duration
	// Start runs when the job enters service (after any queueing delay),
	// with the queueing wait as argument. May be nil.
	Start func(wait Duration)
	// Done runs at completion. May be nil.
	Done func()
	// Class tags the job for statistics (e.g. "pr", "launch", "sched").
	Class string

	enqueuedAt Time
	canceled   bool
	// pooled marks jobs built by SubmitFunc: the server recycles them
	// once they complete (or are skipped after a Cancel), so steady-state
	// submission allocates nothing. Pooled handles must not be canceled
	// after their job completed — the object may already serve a newer
	// submission.
	pooled bool
}

// Cancel marks a queued job so the server skips it. Canceling the job
// currently in service has no effect (hardware can't abort a PCAP load).
func (j *Job) Cancel() { j.canceled = true }

// ServerStats aggregates what a Server has processed.
type ServerStats struct {
	Completed  uint64            // jobs finished
	BusyTime   Duration          // total time in service
	WaitTime   Duration          // total time jobs spent queued
	Waited     uint64            // jobs that had to queue (wait > 0)
	ByClass    map[string]uint64 // completions per class
	WaitByName map[string]Duration
}

// Server is a non-preemptive FIFO single server in virtual time: CPU
// cores, the PCAP port, and the cross-board link are all Servers.
type Server struct {
	k     *Kernel
	name  string
	busy  bool
	cur   *Job
	queue []*Job
	head  int // index of the next queued job; queue[:head] is spent
	stats ServerStats
	pri   int32  // event priority of completion events (see SetPriority)
	pool  []*Job // recycled SubmitFunc jobs

	// finishFn is the completion callback scheduled for the job in
	// service. It is bound once at construction: the server is
	// non-preemptive, so the job finishing is always s.cur — which
	// makes every completion event closure-allocation free.
	finishFn func()

	// IdleHook, if set, runs whenever the server transitions to idle.
	IdleHook func()
}

// NewServer returns an idle server attached to kernel k.
func NewServer(k *Kernel, name string) *Server {
	s := &Server{
		k:    k,
		name: name,
		stats: ServerStats{
			ByClass:    make(map[string]uint64),
			WaitByName: make(map[string]Duration),
		},
	}
	s.finishFn = func() { s.finish(s.cur) }
	return s
}

// Name returns the server's identifier.
func (s *Server) Name() string { return s.name }

// SetPriority sets the kernel priority of the server's completion
// events: lower priorities run first among events at the same instant.
// The farm's rack link uses a negative priority so its deliveries order
// ahead of board-local events in both sequential and sharded execution.
func (s *Server) SetPriority(p int32) { s.pri = p }

// Busy reports whether the server is currently in service.
func (s *Server) Busy() bool { return s.busy }

// QueueLen returns the number of jobs waiting (excluding the one in service).
func (s *Server) QueueLen() int {
	n := 0
	for _, j := range s.queue[s.head:] {
		if !j.canceled {
			n++
		}
	}
	return n
}

// PendingByClass returns how many jobs of the class are pending: queued
// plus the one in service if it matches.
func (s *Server) PendingByClass(class string) int {
	n := 0
	if s.cur != nil && s.cur.Class == class {
		n++
	}
	for _, j := range s.queue[s.head:] {
		if !j.canceled && j.Class == class {
			n++
		}
	}
	return n
}

// Current returns the job in service, or nil when idle.
func (s *Server) Current() *Job { return s.cur }

// Stats returns a copy of the server's accumulated statistics.
func (s *Server) Stats() ServerStats {
	out := s.stats
	out.ByClass = make(map[string]uint64, len(s.stats.ByClass))
	for k, v := range s.stats.ByClass {
		out.ByClass[k] = v
	}
	out.WaitByName = make(map[string]Duration, len(s.stats.WaitByName))
	for k, v := range s.stats.WaitByName {
		out.WaitByName[k] = v
	}
	return out
}

// Submit enqueues the job; it starts immediately if the server is idle.
func (s *Server) Submit(j *Job) {
	if j.Cost < 0 {
		panic("sim: negative job cost")
	}
	j.enqueuedAt = s.k.Now()
	if s.busy {
		s.queue = append(s.queue, j)
		return
	}
	s.start(j)
}

// SubmitFunc is a convenience wrapper building a Job from its parts.
// The job object is drawn from the server's recycling pool and returns
// to it at completion, so steady-state submission allocates nothing;
// the returned handle is only valid until the job completes.
func (s *Server) SubmitFunc(name, class string, cost Duration, done func()) *Job {
	j := s.getJob()
	j.Name, j.Class, j.Cost, j.Done = name, class, cost, done
	s.Submit(j)
	return j
}

// SubmitPooled is SubmitFunc with a Start hook, for hot paths that need
// queueing-wait observation without a per-submission Job allocation.
func (s *Server) SubmitPooled(name, class string, cost Duration, start func(Duration), done func()) *Job {
	j := s.getJob()
	j.Name, j.Class, j.Cost, j.Start, j.Done = name, class, cost, start, done
	s.Submit(j)
	return j
}

func (s *Server) getJob() *Job {
	if n := len(s.pool); n > 0 {
		j := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return j
	}
	return &Job{pooled: true}
}

func (s *Server) putJob(j *Job) {
	if !j.pooled {
		return
	}
	*j = Job{pooled: true}
	s.pool = append(s.pool, j)
}

func (s *Server) start(j *Job) {
	s.busy = true
	s.cur = j
	wait := s.k.Now().Sub(j.enqueuedAt)
	if wait > 0 {
		s.stats.WaitTime += wait
		s.stats.Waited++
		s.stats.WaitByName[j.Class] += wait
	}
	if j.Start != nil {
		j.Start(wait)
	}
	s.k.ScheduleP(j.Cost, s.pri, s.finishFn)
}

func (s *Server) finish(j *Job) {
	s.stats.Completed++
	s.stats.BusyTime += j.Cost
	s.stats.ByClass[j.Class]++
	s.cur = nil
	s.busy = false
	done := j.Done
	s.putJob(j)
	if done != nil {
		done()
	}
	// The Done callback may have submitted new work already.
	if !s.busy {
		s.dispatchNext()
	}
}

func (s *Server) dispatchNext() {
	for s.head < len(s.queue) {
		j := s.queue[s.head]
		s.queue[s.head] = nil // release the reference
		s.head++
		if s.head == len(s.queue) {
			// Queue drained: rewind so the backing array is reused
			// instead of growing forever.
			s.queue = s.queue[:0]
			s.head = 0
		}
		if j.canceled {
			s.putJob(j)
			continue
		}
		s.start(j)
		return
	}
	if s.IdleHook != nil {
		s.IdleHook()
	}
}
