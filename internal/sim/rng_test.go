package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("seed 0 produced a degenerate stream (%d zeros)", zero)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnCoversRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never drawn in 1000 samples", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := NewRNG(5)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := r.IntRange(5, 30)
		if v < 5 || v > 30 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == 5 {
			sawLo = true
		}
		if v == 30 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("IntRange endpoints never drawn")
	}
	if r.IntRange(7, 7) != 7 {
		t.Fatal("degenerate range wrong")
	}
}

func TestDurationRange(t *testing.T) {
	r := NewRNG(6)
	lo, hi := 150*Millisecond, 200*Millisecond
	for i := 0; i < 500; i++ {
		d := r.DurationRange(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("DurationRange out of bounds: %v", d)
		}
	}
	if r.DurationRange(Second, Second) != Second {
		t.Fatal("degenerate duration range wrong")
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	r := NewRNG(7)
	mean := 100 * Millisecond
	var sum Duration
	n := 20000
	for i := 0; i < n; i++ {
		d := r.Exp(mean)
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	avg := float64(sum) / float64(n)
	if avg < 0.9*float64(mean) || avg > 1.1*float64(mean) {
		t.Fatalf("Exp mean %.2fms, want ~100ms", avg/1e6)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(9)
	child := r.Fork()
	// The child stream must not be a suffix of the parent's.
	a := make([]uint64, 10)
	for i := range a {
		a[i] = child.Uint64()
	}
	b := make([]uint64, 10)
	for i := range b {
		b[i] = r.Uint64()
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatal("fork correlates with parent")
	}
}
