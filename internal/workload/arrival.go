package workload

import (
	"encoding/json"
	"fmt"
	"strings"

	"versaslot/internal/registry"
	"versaslot/internal/sim"
)

// ArrivalProcess generates the arrival instants of a workload
// sequence. Times returns the first n arrival offsets from sequence
// start, in non-decreasing order, drawn deterministically from rng:
// the same rng state and n always yield the same offsets. A process
// holds only configuration, never draw state, so one built process may
// generate many sequences.
type ArrivalProcess interface {
	Times(rng *sim.RNG, n int) ([]sim.Duration, error)
}

// ArrivalSpec is the JSON-round-trippable description of an arrival
// process: a registered process name plus the union of every built-in
// process's parameters (unused fields stay zero and are omitted from
// JSON). Durations are nanoseconds in JSON, like every other duration
// in a Scenario.
//
// Zero-valued core parameters (Lo/Hi, Mean, think bounds, MMPP and
// diurnal shape) are filled from a congestion Condition by
// WithCondition, so a bare {"process": "mmpp"} inherits the
// scenario's regime.
type ArrivalSpec struct {
	// Process is the registered process name (see ArrivalNames).
	Process string `json:"process"`

	// Lo/Hi bound the uniform inter-arrival draw ("uniform").
	Lo sim.Duration `json:"lo,omitempty"`
	Hi sim.Duration `json:"hi,omitempty"`

	// Mean is the mean inter-arrival time ("poisson", "diurnal").
	Mean sim.Duration `json:"mean,omitempty"`

	// BurstMean/CalmMean are the per-state mean inter-arrival times of
	// the 2-state MMPP; BurstDwell/CalmDwell are the mean state
	// holding times ("mmpp").
	BurstMean  sim.Duration `json:"burst_mean,omitempty"`
	CalmMean   sim.Duration `json:"calm_mean,omitempty"`
	BurstDwell sim.Duration `json:"burst_dwell,omitempty"`
	CalmDwell  sim.Duration `json:"calm_dwell,omitempty"`

	// Period and Amplitude shape the sinusoidal rate of "diurnal":
	// rate(t) = (1/Mean) * (1 + Amplitude*sin(2*pi*t/Period)),
	// 0 < Amplitude < 1 (a flat rate is the poisson process).
	Period    sim.Duration `json:"period,omitempty"`
	Amplitude float64      `json:"amplitude,omitempty"`

	// Phases is the piecewise schedule of "phased": each phase runs
	// its own process for Duration of virtual time; the final phase
	// may be unbounded (Duration 0).
	Phases []ArrivalPhase `json:"phases,omitempty"`

	// Clients and ThinkLo/ThinkHi configure "closed-loop": Clients
	// concurrent tenants each submit, think for a uniform
	// [ThinkLo, ThinkHi] spell, and submit again.
	Clients int          `json:"clients,omitempty"`
	ThinkLo sim.Duration `json:"think_lo,omitempty"`
	ThinkHi sim.Duration `json:"think_hi,omitempty"`

	// File is the arrival-trace path of "trace": JSONL or CSV,
	// resolved relative to the working directory (the suite command
	// resolves it relative to the scenario file).
	File string `json:"file,omitempty"`
}

// ArrivalPhase is one segment of a phased schedule: an embedded spec
// plus the virtual-time span it covers. A phase begins with its
// process's first arrival exactly at the phase start; arrivals at or
// past the phase end belong to the next phase (the span is
// half-open, [start, start+Duration)). Duration 0 marks the final,
// unbounded phase.
type ArrivalPhase struct {
	ArrivalSpec
	Duration sim.Duration `json:"duration,omitempty"`
}

// ArrivalReg declares one registered arrival process: its canonical
// name, aliases, display title, and a builder that validates a spec
// and returns a ready process.
type ArrivalReg struct {
	// Name is the canonical lower-case lookup key ("mmpp").
	Name string
	// Aliases are alternate lookup keys ("burst").
	Aliases []string
	// Title is the display name ("2-state MMPP bursts").
	Title string
	// Build validates spec's parameters and constructs the process.
	Build func(spec ArrivalSpec) (ArrivalProcess, error)
}

// arrivals is the process registry; like the policy and dispatcher
// registries it is backed by the shared internal/registry helper.
var arrivals = registry.New[*ArrivalReg]("workload")

// RegisterArrival adds an arrival process to the registry. The name
// (and every alias) must be non-empty and not already taken; Build
// must be non-nil.
func RegisterArrival(r ArrivalReg) error {
	if r.Name == "" {
		return fmt.Errorf("workload: register arrival: empty name")
	}
	if r.Build == nil {
		return fmt.Errorf("workload: register arrival %q: nil Build", r.Name)
	}
	if r.Title == "" {
		r.Title = r.Name
	}
	reg := r
	return arrivals.Register(r.Name, &reg, r.Aliases...)
}

// MustRegisterArrival is RegisterArrival, panicking on error; for
// init-time use.
func MustRegisterArrival(r ArrivalReg) {
	if err := RegisterArrival(r); err != nil {
		panic(err)
	}
}

// LookupArrival resolves an arrival process by name or alias
// (case-insensitive).
func LookupArrival(name string) (*ArrivalReg, bool) { return arrivals.Lookup(name) }

// ArrivalNames lists canonical arrival-process names in registration
// order (built-ins first).
func ArrivalNames() []string { return arrivals.Names() }

// ArrivalRegistrations returns every registration in registration
// order.
func ArrivalRegistrations() []*ArrivalReg { return arrivals.Values() }

// Build resolves the spec's process from the registry and constructs
// it, validating all parameters. Trace files are opened lazily at
// generation time, so Build succeeds for a trace spec whose file does
// not exist yet.
func (s ArrivalSpec) Build() (ArrivalProcess, error) {
	if s.Process == "" {
		return nil, fmt.Errorf("workload: arrival spec has no process name (registered: %v)", ArrivalNames())
	}
	reg, ok := LookupArrival(s.Process)
	if !ok {
		return nil, fmt.Errorf("workload: unknown arrival process %q (registered: %v)", s.Process, ArrivalNames())
	}
	return reg.Build(s)
}

// Validate builds the spec and discards the result, reporting
// parameter errors without generating anything.
func (s ArrivalSpec) Validate() error {
	_, err := s.Build()
	return err
}

// Key returns the canonical serialized form of the spec, used to key
// the Runner's shared-sequence cache: two specs with equal keys
// generate identical arrival streams for the same seed.
func (s ArrivalSpec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec fields are plain values; Marshal cannot fail.
		panic(fmt.Sprintf("workload: marshal arrival spec: %v", err))
	}
	return string(b)
}

// ParseArrivalSpec decodes an arrival spec from strict JSON (unknown
// fields rejected, matching scenario decoding) — the shared parser
// behind the -arrival-json CLI flags.
func ParseArrivalSpec(js string) (ArrivalSpec, error) {
	var spec ArrivalSpec
	dec := json.NewDecoder(strings.NewReader(js))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return ArrivalSpec{}, fmt.Errorf("workload: decode arrival spec: %w", err)
	}
	return spec, nil
}

// ResolvePaths returns a copy of the spec with every relative trace
// path — the top-level File and any phase's — joined onto dir.
// LoadScenario uses it so catalog entries resolve against the
// scenario file's directory.
func (s ArrivalSpec) ResolvePaths(join func(string) string) ArrivalSpec {
	if s.File != "" {
		s.File = join(s.File)
	}
	if len(s.Phases) > 0 {
		phases := make([]ArrivalPhase, len(s.Phases))
		copy(phases, s.Phases)
		for i := range phases {
			phases[i].ArrivalSpec = phases[i].ArrivalSpec.ResolvePaths(join)
		}
		s.Phases = phases
	}
	return s
}

// WithCondition fills the spec's zero-valued rate parameters from a
// congestion condition, so a spec naming only a process inherits the
// scenario's regime: Lo/Hi default to the condition's interval, Mean
// and the think bounds to its midpoint-derived values, and the MMPP
// states to a burst 4x faster and a calm 2x slower than the regime,
// dwelling ~8 arrivals per visit. Phased sub-specs are filled
// recursively.
func (s ArrivalSpec) WithCondition(c Condition) ArrivalSpec {
	lo, hi := c.Interval()
	mean := (lo + hi) / 2
	if s.Lo == 0 && s.Hi == 0 {
		s.Lo, s.Hi = lo, hi
	}
	if s.Mean == 0 {
		s.Mean = mean
	}
	if s.BurstMean == 0 {
		s.BurstMean = mean / 4
	}
	if s.CalmMean == 0 {
		s.CalmMean = 2 * mean
	}
	if s.BurstDwell == 0 {
		s.BurstDwell = 8 * s.BurstMean
	}
	if s.CalmDwell == 0 {
		s.CalmDwell = 8 * s.CalmMean
	}
	if s.Period == 0 {
		s.Period = 50 * mean
	}
	if s.Amplitude == 0 {
		s.Amplitude = 0.8
	}
	if s.Clients == 0 {
		s.Clients = 4
	}
	if s.ThinkLo == 0 && s.ThinkHi == 0 {
		s.ThinkLo, s.ThinkHi = lo, hi
	}
	if len(s.Phases) > 0 {
		// Copy before filling: the receiver is a value, but the slice
		// shares its backing array with the caller's spec.
		phases := make([]ArrivalPhase, len(s.Phases))
		copy(phases, s.Phases)
		for i := range phases {
			phases[i].ArrivalSpec = phases[i].ArrivalSpec.WithCondition(c)
		}
		s.Phases = phases
	}
	return s
}
