package workload

import (
	"bytes"
	"strings"
	"testing"

	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

func TestSuiteShape(t *testing.T) {
	// The paper's benchmark: 3DR (3 tasks), LeNet (6), IC (6), AN (6),
	// OF (9).
	want := map[string]int{"3DR": 3, "LeNet": 6, "IC": 6, "AN": 6, "OF": 9}
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d apps", len(suite))
	}
	for _, spec := range suite {
		if want[spec.Name] != spec.TaskCount() {
			t.Errorf("%s has %d tasks, want %d", spec.Name, spec.TaskCount(), want[spec.Name])
		}
	}
}

func TestEveryTaskFitsALittleSlot(t *testing.T) {
	for _, spec := range Suite() {
		for _, task := range spec.Tasks {
			if !task.Impl.FitsIn(fabric.LittleSlotCap) {
				t.Errorf("%s/%s does not fit a Little slot: %v", spec.Name, task.Name, task.Impl)
			}
			if task.Time <= 0 {
				t.Errorf("%s/%s has non-positive time", spec.Name, task.Name)
			}
			if task.Synth.LUT <= task.Impl.LUT {
				t.Errorf("%s/%s synthesis estimate not above implementation", spec.Name, task.Name)
			}
		}
	}
}

func TestLeNetCannotBundle(t *testing.T) {
	// LeNet's absence from Fig. 7 is a workload property: its triples
	// exceed Big-slot capacity.
	if bundle.CanBundle(LeNet) {
		t.Fatal("LeNet bundles; the paper says it cannot")
	}
	for _, name := range []string{"3DR", "IC", "AN", "OF"} {
		if !bundle.CanBundle(SpecByName(name)) {
			t.Errorf("%s should bundle", name)
		}
	}
}

func TestICFig7RightValues(t *testing.T) {
	// Fig. 7 (right): DCT 0.57, Quantize 0.38, BDQ 0.28 in Little slots.
	want := []float64{0.57, 0.38, 0.28}
	for i, task := range IC.Tasks[:3] {
		lut, _ := task.Impl.Utilization(fabric.LittleSlotCap)
		if diff := lut - want[i]; diff > 0.005 || diff < -0.005 {
			t.Errorf("IC task %d LUT util %.3f, want %.2f", i, lut, want[i])
		}
	}
}

func TestSpecByName(t *testing.T) {
	if SpecByName("IC") != IC {
		t.Fatal("SpecByName(IC)")
	}
	if SpecByName("nope") != nil {
		t.Fatal("unknown name returned a spec")
	}
}

func TestConditionIntervals(t *testing.T) {
	cases := []struct {
		c      Condition
		lo, hi sim.Duration
	}{
		{Loose, 5000 * sim.Millisecond, 5000 * sim.Millisecond},
		{Standard, 1500 * sim.Millisecond, 2000 * sim.Millisecond},
		{Stress, 150 * sim.Millisecond, 200 * sim.Millisecond},
		{Realtime, 50 * sim.Millisecond, 50 * sim.Millisecond},
	}
	for _, cs := range cases {
		lo, hi := cs.c.Interval()
		if lo != cs.lo || hi != cs.hi {
			t.Errorf("%v interval [%v,%v], want [%v,%v]", cs.c, lo, hi, cs.lo, cs.hi)
		}
	}
	if len(Conditions()) != 4 {
		t.Fatal("conditions list")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultGenParams(Standard)
	a := Generate(p, 42)
	b := Generate(p, 42)
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("lengths differ")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := Generate(p, 43)
	same := 0
	for i := range a.Arrivals {
		if a.Arrivals[i] == c.Arrivals[i] {
			same++
		}
	}
	if same == len(a.Arrivals) {
		t.Fatal("different seeds generated identical sequences")
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	p := DefaultGenParams(Stress)
	p.Apps = 50
	seq := Generate(p, 9)
	if len(seq.Arrivals) != 50 {
		t.Fatalf("apps %d", len(seq.Arrivals))
	}
	var prev sim.Duration
	for i, a := range seq.Arrivals {
		if a.Batch < 5 || a.Batch > 30 {
			t.Fatalf("batch %d out of [5,30]", a.Batch)
		}
		if SpecByName(a.Spec) == nil {
			t.Fatalf("unknown spec %q", a.Spec)
		}
		if i > 0 {
			gap := a.At - prev
			if gap < 150*sim.Millisecond || gap > 200*sim.Millisecond {
				t.Fatalf("stress gap %v out of [150,200]ms", gap)
			}
		}
		prev = a.At
	}
}

func TestGenerateIntervalOverride(t *testing.T) {
	p := DefaultGenParams(Standard)
	p.Apps = 10
	p.IntervalLo, p.IntervalHi = 400*sim.Millisecond, 600*sim.Millisecond
	seq := Generate(p, 1)
	var prev sim.Duration
	for i, a := range seq.Arrivals {
		if i > 0 {
			gap := a.At - prev
			if gap < 400*sim.Millisecond || gap > 600*sim.Millisecond {
				t.Fatalf("override gap %v", gap)
			}
		}
		prev = a.At
	}
}

func TestGenerateSet(t *testing.T) {
	seqs := GenerateSet(Loose, 100, 10)
	if len(seqs) != 10 {
		t.Fatal("set size")
	}
	if seqs[0].Seed == seqs[1].Seed {
		t.Fatal("sequences share seeds")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := DefaultGenParams(Standard)
	seq := Generate(p, 77)
	var buf bytes.Buffer
	if err := seq.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != seq.Name || back.Seed != seq.Seed || len(back.Arrivals) != len(seq.Arrivals) {
		t.Fatal("round trip lost data")
	}
	for i := range seq.Arrivals {
		if back.Arrivals[i] != seq.Arrivals[i] {
			t.Fatalf("arrival %d differs after round trip", i)
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	bad := `{"name":"x","arrivals":[{"spec":"NoSuchApp","batch":5,"at":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown spec accepted")
	}
	bad2 := `{"name":"x","arrivals":[{"spec":"IC","batch":0,"at":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad2)); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestInstantiate(t *testing.T) {
	p := DefaultGenParams(Standard)
	p.Apps = 5
	seq := Generate(p, 3)
	apps, err := seq.Instantiate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 5 {
		t.Fatal("app count")
	}
	for i, a := range apps {
		if a.ID != 100+i {
			t.Fatalf("app %d has ID %d", i, a.ID)
		}
		if a.Arrival != sim.Time(seq.Arrivals[i].At) {
			t.Fatal("arrival time mismatch")
		}
	}
}

func TestEtaReproducesFig7(t *testing.T) {
	// The utilization increase of a 3-in-1 bundle is (1.5*eta - 1);
	// the workload's eta values are calibrated to Fig. 7.
	cases := []struct {
		name       string
		wantLUTPct float64
		wantFFPct  float64
	}{
		{"IC", 42.2, 48.0},
		{"AN", 36.4, 41.4},
		{"3DR", 9.9, 17.7},
		{"OF", 9.6, 14.1},
	}
	for _, c := range cases {
		spec := SpecByName(c.name)
		lut := (1.5*spec.EtaLUT - 1) * 100
		ff := (1.5*spec.EtaFF - 1) * 100
		if d := lut - c.wantLUTPct; d > 0.3 || d < -0.3 {
			t.Errorf("%s LUT increase %.1f%%, paper %.1f%%", c.name, lut, c.wantLUTPct)
		}
		if d := ff - c.wantFFPct; d > 0.3 || d < -0.3 {
			t.Errorf("%s FF increase %.1f%%, paper %.1f%%", c.name, ff, c.wantFFPct)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := DefaultGenParams(Standard)
	p.Apps = 2000
	p.Poisson = true
	seq := Generate(p, 55)
	var sum sim.Duration
	var prev sim.Duration
	for i, a := range seq.Arrivals {
		if i > 0 {
			sum += a.At - prev
		}
		prev = a.At
	}
	mean := float64(sum) / float64(len(seq.Arrivals)-1)
	want := float64(1750 * sim.Millisecond)
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("Poisson mean interval %.0fms, want ~1750ms", mean/1e6)
	}
	// Exponential arrivals must include gaps well below the uniform
	// lower bound (burstiness).
	short := 0
	prev = 0
	for i, a := range seq.Arrivals {
		if i > 0 && a.At-prev < 500*sim.Millisecond {
			short++
		}
		prev = a.At
	}
	if short == 0 {
		t.Fatal("no bursty gaps; arrivals do not look exponential")
	}
}
