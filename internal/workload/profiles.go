// Package workload provides the paper's benchmark applications and the
// random workload generator used throughout the evaluation (Section IV:
// 10 sequences x 20 apps, batch sizes 5-30, four arrival regimes).
//
// The five applications follow the Rosetta-style suite the paper (and
// Nimblock before it) uses: 3D Rendering (3 tasks), LeNet (6), Image
// Compression (6), AlexNet (6), Optical Flow (9). Per-task latencies and
// resource footprints are synthetic but calibrated: LUT/FF utilizations
// reproduce the implementation results of Fig. 7 (e.g. IC's DCT at 0.57
// LUT utilization in a Little slot, 0.98 at synthesis), and latencies
// put PCAP partial-reconfiguration time in the same ratio to task
// execution the paper's contention analysis requires.
package workload

import (
	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// lutFF builds a ResVec from Little-slot LUT/FF utilizations.
func lutFF(lutUtil, ffUtil float64, dsp, bram int) fabric.ResVec {
	return fabric.ResVec{
		LUT:  int(lutUtil*float64(fabric.LittleSlotCap.LUT) + 0.5),
		FF:   int(ffUtil*float64(fabric.LittleSlotCap.FF) + 0.5),
		DSP:  dsp,
		BRAM: bram,
	}
}

// synthFactor is the typical ratio of synthesis estimates to
// implementation results; Fig. 7 (right) shows IC's DCT at 0.98 in
// synthesis vs 0.57 after implementation.
const synthFactor = 1.72

func task(name string, ms int, lutUtil, ffUtil float64, dsp, bram int) appmodel.TaskSpec {
	impl := lutFF(lutUtil, ffUtil, dsp, bram)
	return appmodel.TaskSpec{
		Name:  name,
		Time:  sim.Duration(ms) * sim.Millisecond,
		Impl:  impl,
		Synth: impl.Scale(synthFactor),
	}
}

// The cross-task resource-sharing factors (eta) are calibrated so the
// measured 3-in-1 utilization increases reproduce Fig. 7 (left): the
// increase equals (1.5*eta - 1) since a Big slot has twice a Little
// slot's capacity.
//
//	IC : LUT +42.2%  FF +48.0%   ->  eta 0.948 / 0.987
//	AN : LUT +36.4%  FF +41.4%   ->  eta 0.909 / 0.943
//	3DR: LUT  +9.9%  FF +17.7%   ->  eta 0.733 / 0.785
//	OF : LUT  +9.6%  FF +14.1%   ->  eta 0.731 / 0.761

// ThreeDR is the 3D Rendering application (3 tasks).
var ThreeDR = &appmodel.AppSpec{
	Name: "3DR",
	Tasks: []appmodel.TaskSpec{
		task("projection", 67, 0.62, 0.50, 110, 16),
		task("rasterization", 56, 0.55, 0.46, 70, 22),
		task("fragment", 42, 0.50, 0.41, 54, 18),
	},
	EtaLUT:     0.733,
	EtaFF:      0.785,
	MonoFactor: 0.80,
	ItemBytes:  96 << 10,
}

// LeNet is the LeNet CNN (6 tasks). Its partitioning targets nearly
// full Little slots, so no task triple fits a Big slot: LeNet never
// bundles — which is why it is absent from Fig. 7.
var LeNet = &appmodel.AppSpec{
	Name: "LeNet",
	Tasks: []appmodel.TaskSpec{
		task("conv1", 50, 0.78, 0.62, 160, 24),
		task("pool1", 25, 0.70, 0.55, 20, 12),
		task("conv2", 59, 0.80, 0.64, 180, 28),
		task("pool2", 22, 0.68, 0.54, 20, 12),
		task("fc1", 42, 0.78, 0.62, 140, 30),
		task("fc2", 17, 0.66, 0.52, 60, 16),
	},
	EtaLUT:     0.95,
	EtaFF:      0.95,
	MonoFactor: 0.80,
	ItemBytes:  8 << 10,
}

// IC is the Image Compression application (6 tasks). Its first bundle
// (DCT+Quantize+BDQ) is the Fig. 7 (right) example: Little-slot LUT
// utilizations 0.57/0.38/0.28 (average 0.41) versus ~0.6 bundled.
var IC = &appmodel.AppSpec{
	Name: "IC",
	Tasks: []appmodel.TaskSpec{
		task("DCT", 56, 0.57, 0.47, 96, 18),
		task("Quantize", 31, 0.38, 0.31, 48, 8),
		task("BDQ", 25, 0.28, 0.24, 24, 6),
		task("ZigZag", 22, 0.33, 0.28, 8, 10),
		task("RLE", 36, 0.41, 0.35, 6, 12),
		task("Huffman", 45, 0.52, 0.44, 4, 20),
	},
	EtaLUT:     0.948,
	EtaFF:      0.987,
	MonoFactor: 0.80,
	ItemBytes:  64 << 10,
}

// AN is the AlexNet CNN (6 tasks).
var AN = &appmodel.AppSpec{
	Name: "AN",
	Tasks: []appmodel.TaskSpec{
		task("conv1", 78, 0.66, 0.52, 220, 30),
		task("conv2", 62, 0.58, 0.47, 180, 26),
		task("conv3", 50, 0.52, 0.42, 160, 22),
		task("conv4", 45, 0.49, 0.40, 150, 20),
		task("conv5", 45, 0.47, 0.38, 140, 20),
		task("fc", 56, 0.55, 0.45, 120, 34),
	},
	EtaLUT:     0.909,
	EtaFF:      0.943,
	MonoFactor: 0.80,
	ItemBytes:  16 << 10,
}

// OF is the Optical Flow application (9 tasks).
var OF = &appmodel.AppSpec{
	Name: "OF",
	Tasks: []appmodel.TaskSpec{
		task("gradXY", 31, 0.46, 0.38, 60, 12),
		task("gradZ", 28, 0.40, 0.33, 48, 10),
		task("gradWeight", 36, 0.44, 0.36, 56, 12),
		task("outerProduct", 42, 0.52, 0.43, 88, 16),
		task("tensorY", 36, 0.48, 0.40, 72, 14),
		task("tensorX", 31, 0.46, 0.38, 68, 14),
		task("flowCalc", 42, 0.55, 0.46, 96, 18),
		task("smooth", 36, 0.42, 0.35, 40, 12),
		task("output", 48, 0.38, 0.31, 24, 20),
	},
	EtaLUT:     0.731,
	EtaFF:      0.761,
	MonoFactor: 0.80,
	ItemBytes:  128 << 10,
}

// Suite returns the benchmark applications in the paper's order.
func Suite() []*appmodel.AppSpec {
	return []*appmodel.AppSpec{ThreeDR, LeNet, IC, AN, OF}
}

// SpecByName returns the named spec from the suite, or nil.
func SpecByName(name string) *appmodel.AppSpec {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
