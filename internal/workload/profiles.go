package workload

import (
	"versaslot/internal/appmodel"
)

// The paper's five benchmark applications (see appmodel for the
// calibration notes).
var (
	// ThreeDR is the 3D Rendering application (3 tasks).
	ThreeDR = appmodel.ThreeDR
	// LeNet is the LeNet CNN (6 tasks); it never bundles.
	LeNet = appmodel.LeNet
	// IC is the Image Compression application (6 tasks).
	IC = appmodel.IC
	// AN is the AlexNet CNN (6 tasks).
	AN = appmodel.AN
	// OF is the Optical Flow application (9 tasks).
	OF = appmodel.OF
)

// Suite returns the benchmark applications in the paper's order.
func Suite() []*appmodel.AppSpec { return appmodel.Suite() }

// SpecByName returns the named spec from the suite, or nil.
func SpecByName(name string) *appmodel.AppSpec { return appmodel.SpecByName(name) }
