package workload

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"versaslot/internal/sim"
)

// testSpecs returns one valid spec per built-in process (trace gets a
// real file under dir).
func testSpecs(t *testing.T) map[string]ArrivalSpec {
	t.Helper()
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var times []sim.Duration
	for i := 0; i < 200; i++ {
		times = append(times, sim.Duration(i)*137*sim.Millisecond)
	}
	writeTraceFile(t, tracePath, times)
	return map[string]ArrivalSpec{
		"uniform": {Process: "uniform", Lo: 100 * sim.Millisecond, Hi: 300 * sim.Millisecond},
		"poisson": {Process: "poisson", Mean: 200 * sim.Millisecond},
		"mmpp": {Process: "mmpp",
			BurstMean: 20 * sim.Millisecond, CalmMean: 500 * sim.Millisecond,
			BurstDwell: 200 * sim.Millisecond, CalmDwell: 2 * sim.Second},
		"diurnal": {Process: "diurnal",
			Mean: 200 * sim.Millisecond, Amplitude: 0.8, Period: 10 * sim.Second},
		"phased": {Process: "phased", Phases: []ArrivalPhase{
			{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 5 * sim.Second},
			{ArrivalSpec: ArrivalSpec{Process: "poisson", Mean: 100 * sim.Millisecond}},
		}},
		"closed-loop": {Process: "closed-loop",
			Clients: 5, ThinkLo: 500 * sim.Millisecond, ThinkHi: 1500 * sim.Millisecond},
		"trace": {Process: "trace", File: tracePath},
	}
}

func writeTraceFile(t *testing.T, path string, times []sim.Duration) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArrivalTrace(f, times); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestArrivalDeterminism: same seed => byte-identical sequence, for
// every built-in process; different seeds diverge (except trace,
// which ignores the rng by design).
func TestArrivalDeterminism(t *testing.T) {
	for name, spec := range testSpecs(t) {
		t.Run(name, func(t *testing.T) {
			p := DefaultGenParams(Standard)
			p.Apps = 50
			gen := func(seed uint64) []byte {
				seq, err := GenerateArrival(p, spec, seed)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := seq.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if !bytes.Equal(gen(42), gen(42)) {
				t.Error("same seed produced different sequences")
			}
			if name != "trace" && bytes.Equal(gen(42), gen(43)) {
				t.Error("different seeds produced identical sequences")
			}
		})
	}
}

// TestArrivalMonotoneNonNegative: every process emits exactly n
// non-decreasing, non-negative offsets starting at 0.
func TestArrivalMonotoneNonNegative(t *testing.T) {
	for name, spec := range testSpecs(t) {
		t.Run(name, func(t *testing.T) {
			proc, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			const n = 150
			times, err := proc.Times(sim.NewRNG(7), n)
			if err != nil {
				t.Fatal(err)
			}
			if len(times) != n {
				t.Fatalf("got %d offsets, want %d", len(times), n)
			}
			if times[0] != 0 {
				t.Errorf("first arrival at %v, want 0", times[0])
			}
			for i := 1; i < n; i++ {
				if times[i] < times[i-1] {
					t.Fatalf("offsets decrease at %d: %v -> %v", i, times[i-1], times[i])
				}
			}
		})
	}
}

// TestMMPPBurstStatistics: an MMPP with widely separated state rates
// must be visibly burstier than Poisson — its gap distribution has a
// squared coefficient of variation well above 1 — while the overall
// mean gap stays between the two state means.
func TestMMPPBurstStatistics(t *testing.T) {
	spec := ArrivalSpec{Process: "mmpp",
		BurstMean: 20 * sim.Millisecond, CalmMean: sim.Second,
		BurstDwell: 400 * sim.Millisecond, CalmDwell: 4 * sim.Second}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	times, err := proc.Times(sim.NewRNG(1), n)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for i := 1; i < n; i++ {
		g := float64(times[i] - times[i-1])
		sum += g
		sumSq += g * g
	}
	mean := sum / float64(n-1)
	variance := sumSq/float64(n-1) - mean*mean
	cv2 := variance / (mean * mean)
	if mean <= float64(20*sim.Millisecond) || mean >= float64(sim.Second) {
		t.Errorf("mean gap %.1f ms outside (burst, calm) state means", mean/1e6)
	}
	// A Poisson process has CV^2 = 1; this MMPP mixes 50x-separated
	// rates, so even loose bounds sit far above that.
	if cv2 < 1.5 {
		t.Errorf("squared CV %.2f, want > 1.5 (bursty)", cv2)
	}
	// The burst state must actually be visited: a healthy share of
	// gaps should be burst-scale (well under the calm mean).
	short := 0
	for i := 1; i < n; i++ {
		if times[i]-times[i-1] < 100*sim.Millisecond {
			short++
		}
	}
	if frac := float64(short) / float64(n-1); frac < 0.2 {
		t.Errorf("only %.1f%% of gaps are burst-scale, want >= 20%%", frac*100)
	}
}

// TestPhasedBoundaries: phases cover half-open windows, each phase
// restarts with an arrival exactly at its start, and no bounded
// phase's arrival crosses its end.
func TestPhasedBoundaries(t *testing.T) {
	// Fixed 1 s gaps for 5.5 s, then fixed 100 ms gaps: analytically
	// the arrivals are 0,1s,...,5s then 5.5s, 5.6s, ...
	spec := ArrivalSpec{Process: "phased", Phases: []ArrivalPhase{
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 5500 * sim.Millisecond},
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: 100 * sim.Millisecond, Hi: 100 * sim.Millisecond}},
	}}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times, err := proc.Times(sim.NewRNG(3), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Duration{
		0, sim.Second, 2 * sim.Second, 3 * sim.Second, 4 * sim.Second, 5 * sim.Second,
		5500 * sim.Millisecond, 5600 * sim.Millisecond, 5700 * sim.Millisecond, 5800 * sim.Millisecond,
	}
	if !reflect.DeepEqual(times, want) {
		t.Errorf("phased schedule:\n got %v\nwant %v", times, want)
	}

	// An arrival landing exactly on the boundary belongs to the next
	// phase: with 1 s gaps and a 3 s window, t=3s is excluded from
	// phase 1 and re-anchored as phase 2's start.
	spec.Phases[0].Duration = 3 * sim.Second
	proc, err = spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times, err = proc.Times(sim.NewRNG(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	want = []sim.Duration{
		0, sim.Second, 2 * sim.Second,
		3 * sim.Second, 3100 * sim.Millisecond,
	}
	if !reflect.DeepEqual(times, want) {
		t.Errorf("boundary arrival:\n got %v\nwant %v", times, want)
	}
}

// TestPhasedExhaustedSchedule: when every phase is bounded and too
// short for the requested count, the final phase continues past its
// window so the sequence still reaches n.
func TestPhasedExhaustedSchedule(t *testing.T) {
	spec := ArrivalSpec{Process: "phased", Phases: []ArrivalPhase{
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 2 * sim.Second},
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 2 * sim.Second},
	}}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times, err := proc.Times(sim.NewRNG(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 8 {
		t.Fatalf("got %d offsets, want 8", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("offsets not increasing at %d: %v", i, times)
		}
	}
}

// TestPhasedValidation rejects malformed schedules.
func TestPhasedValidation(t *testing.T) {
	cases := []ArrivalSpec{
		{Process: "phased"}, // no phases
		{Process: "phased", Phases: []ArrivalPhase{ // unbounded non-final phase
			{ArrivalSpec: ArrivalSpec{Process: "poisson", Mean: sim.Second}},
			{ArrivalSpec: ArrivalSpec{Process: "poisson", Mean: sim.Second}, Duration: sim.Second},
		}},
		{Process: "phased", Phases: []ArrivalPhase{ // nested phased
			{ArrivalSpec: ArrivalSpec{Process: "phased"}, Duration: sim.Second},
		}},
		{Process: "phased", Phases: []ArrivalPhase{ // nested via alias/case
			{ArrivalSpec: ArrivalSpec{Process: "Schedule"}, Duration: sim.Second},
		}},
		{Process: "phased", Phases: []ArrivalPhase{ // invalid sub-spec
			{ArrivalSpec: ArrivalSpec{Process: "uniform"}, Duration: sim.Second},
		}},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid phased spec validated", i)
		}
	}
}

// TestPhasedBoundedTracePhase: a finite trace inside a bounded phase
// contributes only what fits its window — it must not demand the full
// sequence count the way a standalone (or final-phase) trace does.
func TestPhasedBoundedTracePhase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warmup.jsonl")
	writeTraceFile(t, path, []sim.Duration{0, sim.Second, 2 * sim.Second})
	spec := ArrivalSpec{Process: "phased", Phases: []ArrivalPhase{
		{ArrivalSpec: ArrivalSpec{Process: "trace", File: path}, Duration: 10 * sim.Second},
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}},
	}}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times, err := proc.Times(sim.NewRNG(1), 6)
	if err != nil {
		t.Fatalf("3-arrival trace in a bounded phase of a 6-app sequence: %v", err)
	}
	want := []sim.Duration{
		0, sim.Second, 2 * sim.Second, // the trace, clipped by supply
		10 * sim.Second, 11 * sim.Second, 12 * sim.Second, // next phase from its boundary
	}
	if !reflect.DeepEqual(times, want) {
		t.Errorf("got %v\nwant %v", times, want)
	}

	// Unbounded final-phase traces still demand the full count.
	short := ArrivalSpec{Process: "phased", Phases: []ArrivalPhase{
		{ArrivalSpec: ArrivalSpec{Process: "uniform", Lo: sim.Second, Hi: sim.Second}, Duration: 2 * sim.Second},
		{ArrivalSpec: ArrivalSpec{Process: "trace", File: path}},
	}}
	proc, err = short.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Times(sim.NewRNG(1), 20); err == nil {
		t.Error("short trace as the unbounded final phase did not error")
	}
}

// TestClosedLoopThinkFloor: with N clients and a think floor, no
// window of N+1 consecutive arrivals can be shorter than the floor
// (each client needs at least think_lo between its own submissions).
func TestClosedLoopThinkFloor(t *testing.T) {
	const clients = 4
	lo := 500 * sim.Millisecond
	spec := ArrivalSpec{Process: "closed-loop", Clients: clients, ThinkLo: lo, ThinkHi: 2 * lo}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times, err := proc.Times(sim.NewRNG(11), 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := clients; i < len(times); i++ {
		if gap := times[i] - times[i-clients]; gap < lo {
			t.Fatalf("arrivals %d..%d span %v < think floor %v: more than %d in-flight clients",
				i-clients, i, gap, lo, clients)
		}
	}
}

// TestTraceRoundTrip: write offsets with WriteArrivalTrace, replay
// them through the trace process, and get the same offsets back
// (shifted to start at 0); CSV and bare-number JSONL forms parse to
// the same stream.
func TestTraceRoundTrip(t *testing.T) {
	times := []sim.Duration{0, 10 * sim.Millisecond, 250 * sim.Millisecond, sim.Second, 7 * sim.Second}
	dir := t.TempDir()

	jsonl := filepath.Join(dir, "t.jsonl")
	writeTraceFile(t, jsonl, times)
	proc, err := ArrivalSpec{Process: "trace", File: jsonl}.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := proc.Times(sim.NewRNG(1), len(times))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, times) {
		t.Errorf("jsonl round-trip:\n got %v\nwant %v", got, times)
	}

	csv := filepath.Join(dir, "t.csv")
	var buf bytes.Buffer
	buf.WriteString("at_ns,comment\n")
	for _, at := range times {
		fmt.Fprintf(&buf, "%d,x\n", int64(at))
	}
	if err := os.WriteFile(csv, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	proc, err = ArrivalSpec{Process: "trace", File: csv}.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err = proc.Times(sim.NewRNG(1), len(times))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, times) {
		t.Errorf("csv round-trip:\n got %v\nwant %v", got, times)
	}
}

// TestTraceHeaderAndNegatives: a CSV header is tolerated after
// comments and blank lines, and a negative JSONL offset fails loudly
// like its CSV/bare counterparts.
func TestTraceHeaderAndNegatives(t *testing.T) {
	got, err := ReadArrivalTrace(bytes.NewBufferString("# generated\n\nat_ns,comment\n100,x\n200,y\n"), ".csv")
	if err != nil {
		t.Fatalf("commented CSV header: %v", err)
	}
	if want := []sim.Duration{100, 200}; !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Only one header row: a second non-numeric record is an error.
	if _, err := ReadArrivalTrace(bytes.NewBufferString("at_ns\noops\n100\n"), ".csv"); err == nil {
		t.Error("second non-numeric CSV record accepted")
	}
	if _, err := ReadArrivalTrace(bytes.NewBufferString(`{"at": -5}`+"\n"), ".jsonl"); err == nil {
		t.Error("negative JSONL offset accepted")
	}
}

// TestTraceErrors: a short trace errors instead of wrapping; a
// missing file errors at generation, not Build.
func TestTraceErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.jsonl")
	writeTraceFile(t, path, []sim.Duration{0, sim.Second})
	proc, err := ArrivalSpec{Process: "trace", File: path}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Times(sim.NewRNG(1), 3); err == nil {
		t.Error("short trace did not error")
	}

	proc, err = ArrivalSpec{Process: "trace", File: filepath.Join(t.TempDir(), "missing.jsonl")}.Build()
	if err != nil {
		t.Fatalf("Build must not open the file: %v", err)
	}
	if _, err := proc.Times(sim.NewRNG(1), 1); err == nil {
		t.Error("missing trace file did not error at generation")
	}
}

// TestDiurnalRateModulation: the sinusoidal process keeps its overall
// mean near the configured mean while concentrating arrivals in the
// high-rate half of the period.
func TestDiurnalRateModulation(t *testing.T) {
	mean := 100 * sim.Millisecond
	period := 20 * sim.Second
	spec := ArrivalSpec{Process: "diurnal", Mean: mean, Amplitude: 0.9, Period: period}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	times, err := proc.Times(sim.NewRNG(5), n)
	if err != nil {
		t.Fatal(err)
	}
	avgGap := float64(times[n-1]) / float64(n-1)
	if avgGap < 0.5*float64(mean) || avgGap > 2*float64(mean) {
		t.Errorf("average gap %.1f ms, want within 2x of mean %v", avgGap/1e6, mean)
	}
	// sin > 0 on the first half of each period: that half must hold
	// well over half the arrivals.
	high := 0
	for _, at := range times {
		if phase := math.Mod(float64(at), float64(period)); phase < float64(period)/2 {
			high++
		}
	}
	if frac := float64(high) / float64(n); frac < 0.6 {
		t.Errorf("high-rate half-period holds %.1f%% of arrivals, want >= 60%%", frac*100)
	}
}

// TestArrivalRegistry: unknown names and duplicate registrations are
// rejected; aliases resolve to the canonical registration.
func TestArrivalRegistry(t *testing.T) {
	if _, ok := LookupArrival("no-such-process"); ok {
		t.Error("unknown process resolved")
	}
	if err := (ArrivalSpec{Process: "no-such-process"}).Validate(); err == nil {
		t.Error("spec naming an unknown process validated")
	}
	if err := RegisterArrival(ArrivalReg{Name: "mmpp", Build: buildMMPP}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterArrival(ArrivalReg{Name: "x-unique", Build: nil}); err == nil {
		t.Error("nil Build accepted")
	}
	for alias, canonical := range map[string]string{
		"burst": "mmpp", "exp": "poisson", "replay": "trace", "closed": "closed-loop",
	} {
		reg, ok := LookupArrival(alias)
		if !ok || reg.Name != canonical {
			t.Errorf("alias %q: got %v, want %s", alias, reg, canonical)
		}
	}
}

// TestWithConditionDefaults: a bare named spec inherits the regime's
// rates, and explicit values are never overwritten.
func TestWithConditionDefaults(t *testing.T) {
	s := ArrivalSpec{Process: "mmpp"}.WithCondition(Stress)
	lo, hi := Stress.Interval()
	mean := (lo + hi) / 2
	if s.BurstMean != mean/4 || s.CalmMean != 2*mean {
		t.Errorf("mmpp state means %v/%v, want %v/%v", s.BurstMean, s.CalmMean, mean/4, 2*mean)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("condition-filled mmpp spec invalid: %v", err)
	}

	explicit := ArrivalSpec{Process: "poisson", Mean: 42 * sim.Millisecond}.WithCondition(Loose)
	if explicit.Mean != 42*sim.Millisecond {
		t.Errorf("explicit mean overwritten: %v", explicit.Mean)
	}

	// Every built-in except trace must validate from a bare name plus
	// condition defaults.
	for _, name := range ArrivalNames() {
		if name == "trace" || name == "phased" {
			continue // need a file / a schedule
		}
		if err := (ArrivalSpec{Process: name}).WithCondition(Standard).Validate(); err != nil {
			t.Errorf("%s: condition defaults insufficient: %v", name, err)
		}
	}
}

// TestGenerateArrivalIndependentAxes: two processes over the same
// seed schedule the same applications (spec/batch stream) at
// different instants — only the arrival axis varies.
func TestGenerateArrivalIndependentAxes(t *testing.T) {
	p := DefaultGenParams(Standard)
	p.Apps = 30
	specs := testSpecs(t)
	a, err := GenerateArrival(p, specs["poisson"], 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArrival(p, specs["mmpp"], 9)
	if err != nil {
		t.Fatal(err)
	}
	sameAt := true
	for i := range a.Arrivals {
		if a.Arrivals[i].Spec != b.Arrivals[i].Spec || a.Arrivals[i].Batch != b.Arrivals[i].Batch {
			t.Fatalf("arrival %d: app stream differs across processes (%s/%d vs %s/%d)",
				i, a.Arrivals[i].Spec, a.Arrivals[i].Batch, b.Arrivals[i].Spec, b.Arrivals[i].Batch)
		}
		if a.Arrivals[i].At != b.Arrivals[i].At {
			sameAt = false
		}
	}
	if sameAt {
		t.Error("poisson and mmpp produced identical arrival instants")
	}
}
