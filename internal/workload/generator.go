package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"versaslot/internal/appmodel"
	streams "versaslot/internal/rng"
	"versaslot/internal/sim"
)

// Condition is an arrival-congestion regime from Section IV.
type Condition int

const (
	// Loose: fixed 5000 ms inter-arrival.
	Loose Condition = iota
	// Standard: uniform 1500-2000 ms inter-arrival.
	Standard
	// Stress: uniform 150-200 ms inter-arrival.
	Stress
	// Realtime: fixed 50 ms inter-arrival.
	Realtime
)

// Conditions lists all regimes in the paper's order.
func Conditions() []Condition { return []Condition{Loose, Standard, Stress, Realtime} }

func (c Condition) String() string {
	switch c {
	case Loose:
		return "Loose"
	case Standard:
		return "Standard"
	case Stress:
		return "Stress"
	case Realtime:
		return "Real-time"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Key returns the canonical config/CLI key of the condition.
func (c Condition) Key() string {
	switch c {
	case Loose:
		return "loose"
	case Standard:
		return "standard"
	case Stress:
		return "stress"
	case Realtime:
		return "real-time"
	default:
		return fmt.Sprintf("condition-%d", int(c))
	}
}

// ConditionKeys lists the canonical condition keys in the paper's
// order.
func ConditionKeys() []string {
	keys := make([]string, 0, len(Conditions()))
	for _, c := range Conditions() {
		keys = append(keys, c.Key())
	}
	return keys
}

// ParseCondition resolves a condition from its config/CLI name; it is
// the single source of truth for condition naming ("real-time" and
// "realtime" are both accepted, as are the display names).
func ParseCondition(name string) (Condition, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "loose":
		return Loose, nil
	case "standard":
		return Standard, nil
	case "stress":
		return Stress, nil
	case "real-time", "realtime":
		return Realtime, nil
	default:
		return 0, fmt.Errorf("workload: unknown condition %q (want one of %v)", name, ConditionKeys())
	}
}

// Interval returns the inter-arrival bounds of the regime.
func (c Condition) Interval() (lo, hi sim.Duration) {
	switch c {
	case Loose:
		return 5000 * sim.Millisecond, 5000 * sim.Millisecond
	case Standard:
		return 1500 * sim.Millisecond, 2000 * sim.Millisecond
	case Stress:
		return 150 * sim.Millisecond, 200 * sim.Millisecond
	case Realtime:
		return 50 * sim.Millisecond, 50 * sim.Millisecond
	default:
		panic("workload: unknown condition")
	}
}

// Arrival is one application instance in a sequence.
type Arrival struct {
	Spec  string       `json:"spec"`
	Batch int          `json:"batch"`
	At    sim.Duration `json:"at"` // offset from sequence start
}

// Sequence is a generated workload: a stream of application arrivals.
type Sequence struct {
	Name      string    `json:"name"`
	Condition string    `json:"condition"`
	Seed      uint64    `json:"seed"`
	Arrivals  []Arrival `json:"arrivals"`
}

// GenParams controls the generator; defaults follow the paper.
type GenParams struct {
	Apps     int // applications per sequence (paper: 20)
	BatchLo  int // minimum batch size (paper: 5)
	BatchHi  int // maximum batch size (paper: 30)
	FirstAt  sim.Duration
	Specs    []*appmodel.AppSpec
	Condtion Condition
	// IntervalLo/IntervalHi, when nonzero, override the condition's
	// inter-arrival bounds (the Fig. 8 long workloads use this).
	IntervalLo, IntervalHi sim.Duration
	// Poisson, when true, draws exponential inter-arrival times with
	// the condition's mean instead of the paper's uniform intervals —
	// useful for sensitivity studies against burstier traffic.
	Poisson bool
}

// DefaultGenParams returns the paper's configuration for a condition.
func DefaultGenParams(c Condition) GenParams {
	return GenParams{
		Apps:     20,
		BatchLo:  5,
		BatchHi:  30,
		Specs:    Suite(),
		Condtion: c,
	}
}

// Generate builds one random sequence from the params and seed.
func Generate(p GenParams, seed uint64) *Sequence {
	rng := sim.NewRNG(seed)
	lo, hi := p.Condtion.Interval()
	if p.IntervalLo > 0 && p.IntervalHi >= p.IntervalLo {
		lo, hi = p.IntervalLo, p.IntervalHi
	}
	seq := &Sequence{
		Name:      fmt.Sprintf("%s-seed%d", p.Condtion, seed),
		Condition: p.Condtion.String(),
		Seed:      seed,
	}
	at := p.FirstAt
	mean := (lo + hi) / 2
	for i := 0; i < p.Apps; i++ {
		spec := p.Specs[rng.Intn(len(p.Specs))]
		batch := rng.IntRange(p.BatchLo, p.BatchHi)
		seq.Arrivals = append(seq.Arrivals, Arrival{Spec: spec.Name, Batch: batch, At: at})
		if p.Poisson {
			at += rng.Exp(mean)
		} else {
			at += rng.DurationRange(lo, hi)
		}
	}
	return seq
}

// GenerateArrival builds a sequence whose arrival instants come from
// the spec's registered arrival process. The arrival stream and the
// spec/batch picks draw from independent forks of the seed's RNG, so
// two processes over the same seed schedule the same applications at
// different times — only the arrival axis varies. The classic
// Generate path (uniform/Poisson interleaved draws) is untouched for
// byte-compatibility with the paper's sequences.
func GenerateArrival(p GenParams, spec ArrivalSpec, seed uint64) (*Sequence, error) {
	if p.Apps < 0 {
		return nil, fmt.Errorf("workload: negative app count %d", p.Apps)
	}
	proc, err := spec.Build()
	if err != nil {
		return nil, err
	}
	rng, arrivalRNG := streams.Pair(seed)
	times, err := proc.Times(arrivalRNG, p.Apps)
	if err != nil {
		return nil, err
	}
	if len(times) < p.Apps {
		return nil, fmt.Errorf("workload: arrival process %q produced %d offsets, want %d", spec.Process, len(times), p.Apps)
	}
	reg, _ := LookupArrival(spec.Process)
	seq := &Sequence{
		Name:      fmt.Sprintf("%s-%s-seed%d", reg.Name, p.Condtion, seed),
		Condition: p.Condtion.String(),
		Seed:      seed,
	}
	for i := 0; i < p.Apps; i++ {
		appSpec := p.Specs[rng.Intn(len(p.Specs))]
		batch := rng.IntRange(p.BatchLo, p.BatchHi)
		seq.Arrivals = append(seq.Arrivals, Arrival{
			Spec:  appSpec.Name,
			Batch: batch,
			At:    p.FirstAt + times[i],
		})
	}
	return seq, nil
}

// GenerateSet builds the paper's 10-sequence workload set for a
// condition: sequence i uses seed base+i.
func GenerateSet(c Condition, baseSeed uint64, n int) []*Sequence {
	out := make([]*Sequence, n)
	p := DefaultGenParams(c)
	for i := 0; i < n; i++ {
		out[i] = Generate(p, baseSeed+uint64(i))
	}
	return out
}

// Instantiate materializes the sequence into App instances (IDs are
// assigned in arrival order starting at firstID).
func (s *Sequence) Instantiate(firstID int) ([]*appmodel.App, error) {
	apps := make([]*appmodel.App, 0, len(s.Arrivals))
	for i, a := range s.Arrivals {
		spec := SpecByName(a.Spec)
		if spec == nil {
			return nil, fmt.Errorf("workload: unknown spec %q", a.Spec)
		}
		apps = append(apps, appmodel.NewApp(firstID+i, spec, a.Batch, sim.Time(a.At)))
	}
	return apps, nil
}

// WriteJSON serializes the sequence.
func (s *Sequence) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON deserializes a sequence.
func ReadJSON(r io.Reader) (*Sequence, error) {
	var s Sequence
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: decode sequence: %w", err)
	}
	for _, a := range s.Arrivals {
		if SpecByName(a.Spec) == nil {
			return nil, fmt.Errorf("workload: unknown spec %q", a.Spec)
		}
		if a.Batch <= 0 {
			return nil, fmt.Errorf("workload: non-positive batch %d", a.Batch)
		}
	}
	return &s, nil
}
