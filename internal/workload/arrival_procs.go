package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"versaslot/internal/sim"
)

func init() {
	MustRegisterArrival(ArrivalReg{
		Name: "uniform", Aliases: []string{"fixed"},
		Title: "Uniform intervals (the paper's Section IV regimes)",
		Build: buildUniform,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "poisson", Aliases: []string{"exp", "exponential"},
		Title: "Poisson process (exponential inter-arrivals)",
		Build: buildPoisson,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "mmpp", Aliases: []string{"burst"},
		Title: "2-state Markov-modulated Poisson bursts",
		Build: buildMMPP,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "diurnal", Aliases: []string{"sinusoidal"},
		Title: "Sinusoidal rate over a configurable period",
		Build: buildDiurnal,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "phased", Aliases: []string{"schedule"},
		Title: "Piecewise schedule of regimes",
		Build: buildPhased,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "closed-loop", Aliases: []string{"closed", "think-time"},
		Title: "N concurrent clients with think time",
		Build: buildClosedLoop,
	})
	MustRegisterArrival(ArrivalReg{
		Name: "trace", Aliases: []string{"replay"},
		Title: "Replay arrival offsets from a JSONL/CSV file",
		Build: buildTrace,
	})
}

// uniformProc draws inter-arrival gaps uniformly from [lo, hi]; the
// first arrival is at offset 0, matching the classic generator.
type uniformProc struct{ lo, hi sim.Duration }

func buildUniform(s ArrivalSpec) (ArrivalProcess, error) {
	if !(s.Lo > 0 && s.Hi >= s.Lo) {
		return nil, fmt.Errorf("workload: uniform arrival needs 0 < lo <= hi (got [%v, %v])", s.Lo, s.Hi)
	}
	return uniformProc{s.Lo, s.Hi}, nil
}

func (u uniformProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]sim.Duration, n)
	var at sim.Duration
	for i := 0; i < n; i++ {
		out[i] = at
		at += rng.DurationRange(u.lo, u.hi)
	}
	return out, nil
}

// poissonProc draws exponential gaps with the given mean.
type poissonProc struct{ mean sim.Duration }

func buildPoisson(s ArrivalSpec) (ArrivalProcess, error) {
	if s.Mean <= 0 {
		return nil, fmt.Errorf("workload: poisson arrival needs mean > 0 (got %v)", s.Mean)
	}
	return poissonProc{s.Mean}, nil
}

func (p poissonProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]sim.Duration, n)
	var at sim.Duration
	for i := 0; i < n; i++ {
		out[i] = at
		at += rng.Exp(p.mean)
	}
	return out, nil
}

// mmppProc is a 2-state Markov-modulated Poisson process: arrivals
// are Poisson at the current state's rate, and the state (burst or
// calm) flips after an exponential dwell. The walk starts calm, so
// the first burst onset is itself random. Both the per-arrival draws
// and the flips are memoryless, which makes the generation loop exact:
// when a candidate gap crosses the next flip, time advances to the
// flip and the residual is redrawn at the new rate.
type mmppProc struct {
	burstMean, calmMean   sim.Duration
	burstDwell, calmDwell sim.Duration
}

func buildMMPP(s ArrivalSpec) (ArrivalProcess, error) {
	if s.BurstMean <= 0 || s.CalmMean <= 0 {
		return nil, fmt.Errorf("workload: mmpp arrival needs burst_mean > 0 and calm_mean > 0 (got %v, %v)",
			s.BurstMean, s.CalmMean)
	}
	if s.BurstMean >= s.CalmMean {
		return nil, fmt.Errorf("workload: mmpp burst_mean %v must be shorter than calm_mean %v (bursts arrive faster)",
			s.BurstMean, s.CalmMean)
	}
	if s.BurstDwell <= 0 || s.CalmDwell <= 0 {
		return nil, fmt.Errorf("workload: mmpp arrival needs burst_dwell > 0 and calm_dwell > 0 (got %v, %v)",
			s.BurstDwell, s.CalmDwell)
	}
	return mmppProc{s.BurstMean, s.CalmMean, s.BurstDwell, s.CalmDwell}, nil
}

func (m mmppProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]sim.Duration, 0, n)
	var at sim.Duration
	burst := false
	flipAt := rng.Exp(m.calmDwell)
	mean := func() sim.Duration {
		if burst {
			return m.burstMean
		}
		return m.calmMean
	}
	dwell := func() sim.Duration {
		if burst {
			return m.burstDwell
		}
		return m.calmDwell
	}
	for len(out) < n {
		next := at + rng.Exp(mean())
		for next >= flipAt {
			at = flipAt
			burst = !burst
			flipAt = at + rng.Exp(dwell())
			next = at + rng.Exp(mean())
		}
		at = next
		out = append(out, at)
	}
	// The classic generators anchor the first arrival at offset 0;
	// shift so every process shares that convention.
	first := out[0]
	for i := range out {
		out[i] -= first
	}
	return out, nil
}

// diurnalProc is a non-homogeneous Poisson process whose rate follows
// a sinusoid: rate(t) = (1/mean) * (1 + amplitude*sin(2*pi*t/period)).
// Generation uses Lewis-Shedler thinning against the peak rate, which
// is exact and deterministic for a fixed rng.
type diurnalProc struct {
	mean      sim.Duration
	amplitude float64
	period    sim.Duration
}

func buildDiurnal(s ArrivalSpec) (ArrivalProcess, error) {
	if s.Mean <= 0 {
		return nil, fmt.Errorf("workload: diurnal arrival needs mean > 0 (got %v)", s.Mean)
	}
	if s.Amplitude <= 0 || s.Amplitude >= 1 {
		return nil, fmt.Errorf("workload: diurnal amplitude must be in (0, 1) (got %v; a flat rate is the poisson process)", s.Amplitude)
	}
	if s.Period <= 0 {
		return nil, fmt.Errorf("workload: diurnal arrival needs period > 0 (got %v)", s.Period)
	}
	return diurnalProc{s.Mean, s.Amplitude, s.Period}, nil
}

func (d diurnalProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]sim.Duration, 0, n)
	peakRate := (1 + d.amplitude) / float64(d.mean)
	peakGap := sim.Duration(1 / peakRate)
	var at sim.Duration
	for len(out) < n {
		at += rng.Exp(peakGap)
		rate := (1 + d.amplitude*math.Sin(2*math.Pi*float64(at)/float64(d.period))) / float64(d.mean)
		if rng.Float64() < rate/peakRate {
			out = append(out, at)
		}
	}
	first := out[0]
	for i := range out {
		out[i] -= first
	}
	return out, nil
}

// phasedProc runs a schedule of sub-processes, each over a half-open
// [start, start+duration) window. Every phase restarts its process at
// the phase start (so a phase's first arrival lands exactly on the
// boundary); sub-arrivals at or past the window end are discarded. A
// final phase with duration 0 is unbounded; if the schedule's bounded
// phases end before n arrivals are produced, the last phase continues
// past its boundary so the sequence always reaches n.
type phasedProc struct {
	procs     []ArrivalProcess
	durations []sim.Duration
}

func buildPhased(s ArrivalSpec) (ArrivalProcess, error) {
	if len(s.Phases) == 0 {
		return nil, fmt.Errorf("workload: phased arrival needs at least one phase")
	}
	p := phasedProc{}
	for i, ph := range s.Phases {
		if ph.Duration < 0 {
			return nil, fmt.Errorf("workload: phase %d has negative duration %v", i, ph.Duration)
		}
		if ph.Duration == 0 && i != len(s.Phases)-1 {
			return nil, fmt.Errorf("workload: phase %d has no duration; only the final phase may be unbounded", i)
		}
		if reg, ok := LookupArrival(ph.Process); ok && reg.Name == "phased" {
			return nil, fmt.Errorf("workload: phase %d: phases cannot nest phased schedules", i)
		}
		sub, err := ph.ArrivalSpec.Build()
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		if tp, ok := sub.(traceProc); ok && ph.Duration > 0 {
			// A bounded phase is clipped to its window, so a finite
			// trace shorter than the whole sequence is fine here; only
			// an unbounded (final) trace must cover the full count.
			tp.allowShort = true
			sub = tp
		}
		p.procs = append(p.procs, sub)
		p.durations = append(p.durations, ph.Duration)
	}
	return p, nil
}

func (p phasedProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	out := make([]sim.Duration, 0, n)
	var start sim.Duration
	for i, sub := range p.procs {
		remaining := n - len(out)
		if remaining <= 0 {
			break
		}
		times, err := sub.Times(rng, remaining)
		if err != nil {
			return nil, err
		}
		end := start + p.durations[i]
		last := i == len(p.procs)-1
		for _, t := range times {
			at := start + t
			if !last && p.durations[i] > 0 && at >= end {
				break
			}
			out = append(out, at)
		}
		if p.durations[i] == 0 {
			break
		}
		start = end
	}
	// The final phase keeps every sub-arrival (the !last guard above),
	// so a well-behaved sub-process always fills the count; a
	// third-party process returning fewer offsets than asked is a
	// contract violation, not something to paper over.
	if len(out) < n {
		return nil, fmt.Errorf("workload: phased arrival produced %d offsets, want %d (final phase's process under-delivered)", len(out), n)
	}
	return out, nil
}

// closedLoopProc models N concurrent clients: each client submits an
// application, thinks for a uniform [thinkLo, thinkHi] spell, and
// submits again. Service feedback is not modelled at generation time
// (the simulator prices queueing downstream); what the process
// captures is the closed population — the aggregate rate scales with
// the client count and arrivals never cluster tighter than the think
// floor allows. Client streams draw from forked, per-client RNGs and
// merge with a (time, client, turn) tie-break, so the merged stream
// is deterministic.
type closedLoopProc struct {
	clients          int
	thinkLo, thinkHi sim.Duration
}

func buildClosedLoop(s ArrivalSpec) (ArrivalProcess, error) {
	if s.Clients <= 0 {
		return nil, fmt.Errorf("workload: closed-loop arrival needs clients > 0 (got %d)", s.Clients)
	}
	if !(s.ThinkLo > 0 && s.ThinkHi >= s.ThinkLo) {
		return nil, fmt.Errorf("workload: closed-loop arrival needs 0 < think_lo <= think_hi (got [%v, %v])",
			s.ThinkLo, s.ThinkHi)
	}
	return closedLoopProc{s.Clients, s.ThinkLo, s.ThinkHi}, nil
}

func (c closedLoopProc) Times(rng *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	type arrival struct {
		at           sim.Duration
		client, turn int
	}
	all := make([]arrival, 0, c.clients*n)
	for client := 0; client < c.clients; client++ {
		crng := rng.Fork()
		// The first submission is staggered by an initial think draw,
		// so clients do not arrive in lockstep at t=0.
		at := crng.DurationRange(c.thinkLo, c.thinkHi)
		for turn := 0; turn < n; turn++ {
			all = append(all, arrival{at, client, turn})
			at += crng.DurationRange(c.thinkLo, c.thinkHi)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].client != all[j].client {
			return all[i].client < all[j].client
		}
		return all[i].turn < all[j].turn
	})
	out := make([]sim.Duration, n)
	first := all[0].at
	for i := 0; i < n; i++ {
		out[i] = all[i].at - first
	}
	return out, nil
}

// traceProc replays arrival offsets from a file. The file is read at
// generation time (not at Build), so a scenario referencing a trace
// validates without the file present. Offsets are sorted ascending
// and shifted so the first arrival is at 0. A trace shorter than the
// requested sequence is an error rather than a silent wrap — except
// inside a bounded phased window (allowShort), where the window, not
// the count, limits how much of the trace is used.
type traceProc struct {
	path       string
	allowShort bool
}

func buildTrace(s ArrivalSpec) (ArrivalProcess, error) {
	if s.File == "" {
		return nil, fmt.Errorf("workload: trace arrival needs a file")
	}
	return traceProc{path: s.File}, nil
}

func (t traceProc) Times(_ *sim.RNG, n int) ([]sim.Duration, error) {
	if n <= 0 {
		return nil, nil
	}
	f, err := os.Open(t.path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace arrival: %w", err)
	}
	defer f.Close()
	times, err := ReadArrivalTrace(f, filepath.Ext(t.path))
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", t.path, err)
	}
	if len(times) < n {
		if !t.allowShort {
			return nil, fmt.Errorf("workload: trace %s has %d arrivals, sequence needs %d", t.path, len(times), n)
		}
		n = len(times)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]sim.Duration, n)
	first := times[0]
	for i := 0; i < n; i++ {
		out[i] = times[i] - first
	}
	return out, nil
}

// traceLine is one JSONL trace record; only the offset is read.
type traceLine struct {
	At sim.Duration `json:"at"`
}

// ReadArrivalTrace parses arrival offsets from r. ext selects the
// format: ".csv" reads the first column of each record (an optional
// header row before the first data record is skipped), anything else
// is treated as JSONL where a line is either a bare integer
// nanosecond offset or an object with an "at" field. Blank lines and
// "#" comments are ignored in both formats.
func ReadArrivalTrace(r io.Reader, ext string) ([]sim.Duration, error) {
	var out []sim.Duration
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	headerAllowed := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var field string
		if strings.EqualFold(ext, ".csv") {
			field = strings.TrimSpace(strings.SplitN(line, ",", 2)[0])
			if _, err := strconv.ParseInt(field, 10, 64); err != nil && headerAllowed {
				headerAllowed = false
				continue // header row
			}
			headerAllowed = false
		} else if strings.HasPrefix(line, "{") {
			var tl traceLine
			dec := json.NewDecoder(strings.NewReader(line))
			// Strict decoding: a misspelled key would otherwise parse
			// as offset 0 and silently re-time the whole workload.
			dec.DisallowUnknownFields()
			if err := dec.Decode(&tl); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if tl.At < 0 {
				return nil, fmt.Errorf("line %d: negative offset %d", lineNo, int64(tl.At))
			}
			out = append(out, tl.At)
			continue
		} else {
			field = line
		}
		ns, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ns < 0 {
			return nil, fmt.Errorf("line %d: negative offset %d", lineNo, ns)
		}
		out = append(out, sim.Duration(ns))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return out, nil
}

// WriteArrivalTrace writes offsets in the JSONL form ReadArrivalTrace
// accepts ({"at": ns} per line), the round-trip counterpart used by
// trace tooling and tests.
func WriteArrivalTrace(w io.Writer, times []sim.Duration) error {
	bw := bufio.NewWriter(w)
	for _, t := range times {
		if _, err := fmt.Fprintf(bw, "{\"at\": %d}\n", int64(t)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
