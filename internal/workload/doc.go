// Package workload provides the paper's benchmark applications, the
// random workload generator used throughout the evaluation (Section
// IV: 10 sequences x 20 apps, batch sizes 5-30, four arrival
// regimes), and the pluggable arrival-process engine that generalizes
// those four regimes to arbitrary arrival dynamics.
//
// # Arrival processes
//
// An ArrivalProcess turns an RNG into a non-decreasing stream of
// arrival offsets. Processes register by name (RegisterArrival) in a
// registry shared with the policy and dispatcher registries; the
// built-ins are uniform, poisson, mmpp (2-state Markov-modulated
// bursts), diurnal (sinusoidal rate), phased (piecewise schedule),
// closed-loop (N clients with think time), and trace (JSONL/CSV
// replay). An ArrivalSpec is the JSON form of a process selection and
// round-trips through a Scenario's "arrival" block.
//
// # Determinism
//
// Generation is a pure function of (params, spec, seed): the same
// inputs yield a byte-identical Sequence. GenerateArrival draws the
// arrival instants and the application/batch picks from independent
// forks of the seed's RNG, so changing only the arrival process never
// changes which applications arrive — just when. The classic Generate
// path is kept bit-compatible with the paper's original sequences.
//
// The application specs themselves are defined in the model layer
// (appmodel), where both workload generation and the shared bitstream
// repository can reach them without depending on each other; this
// package re-exports them under their historical workload names.
package workload
