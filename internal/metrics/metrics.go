package metrics

import (
	"math"
	"sort"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// ResponseSample is one finished application.
type ResponseSample struct {
	AppID    int
	Spec     string
	Batch    int
	Arrival  sim.Time
	Finish   sim.Time
	Response sim.Duration
	// QueueDelay is the share of Response spent before the first item
	// executed (allocation wait + initial configuration).
	QueueDelay sim.Duration
}

// Collector accumulates one simulation run's measurements.
type Collector struct {
	Responses []ResponseSample

	// PR accounting.
	PRLoads   uint64
	PRBytes   int64
	PRWait    sim.Duration
	PRBlocked uint64 // loads that queued behind another PR
	PRRetries uint64 // loads re-streamed after CRC failure

	// Utilization time-integrals: sum over intervals of
	// (resource in use) * dt, and the busy-only variant. LUT/FF are the
	// paper's reported pair; DSP/BRAM make DSP- and BRAM-bound circuits
	// visible on heterogeneous platforms.
	lutResidentInt  float64 // LUT-seconds resident
	ffResidentInt   float64
	dspResidentInt  float64
	bramResidentInt float64
	lutBusyInt      float64 // LUT-seconds actively executing
	ffBusyInt       float64
	capLUT          float64 // board slot capacities (denominators)
	capFF           float64
	capDSP          float64
	capBRAM         float64
	start, end      sim.Time

	// Migration accounting.
	Migrations     uint64
	MigratedApps   uint64
	MigrationBytes int64
	MigrationTime  sim.Duration

	// Preemptions counts stage evictions before batch completion.
	Preemptions uint64

	// Fault-injection accounting. faultsOn latches when the chaos axis
	// attaches to the board, so fault-free runs keep reporting (and
	// marshalling) exactly what they always did.
	faultsOn   bool
	faultSlots int
	// FaultEvents counts injected slot/board failures; FailedApps
	// counts application crash-restarts they caused.
	FaultEvents uint64
	FailedApps  uint64
	// faultRetried tracks which applications hit at least one
	// fault-injected reconfiguration retry.
	faultRetried map[int]struct{}
	// downTotal integrates slot-downtime (summed across slots).
	downTotal sim.Duration

	// scratch is the reusable percentile buffer: Summarize sorts
	// response times into it instead of allocating a copy per call
	// (farm summaries recompute per pair and per board).
	scratch []float64

	// sink, when non-nil, consumes samples instead of the Responses
	// slice; stream, when non-nil, is the bounded-memory stream sink
	// installed by EnableStreaming. A nil sink is the historic exact
	// mode, byte-identical to pre-streaming output.
	sink   Sink
	stream *streamState
}

// NewCollector returns an empty collector; cap is the board's total
// slot capacity (utilization denominator).
func NewCollector(cap fabric.ResVec) *Collector {
	return &Collector{
		capLUT: float64(cap.LUT), capFF: float64(cap.FF),
		capDSP: float64(cap.DSP), capBRAM: float64(cap.BRAM),
	}
}

// EnableFaults switches the collector into fault-accounting mode:
// slots is the board's slot count (the availability denominator).
// Summarize reports the fault block only after this is called.
func (c *Collector) EnableFaults(slots int) {
	c.faultsOn = true
	c.faultSlots = slots
	if c.faultRetried == nil {
		c.faultRetried = make(map[int]struct{})
	}
}

// FaultActive reports whether fault accounting is enabled.
func (c *Collector) FaultActive() bool { return c.faultsOn }

// RecordFaultEvent counts one injected failure (a slot or board dying).
func (c *Collector) RecordFaultEvent() { c.FaultEvents++ }

// RecordAppFailure counts one fault-induced application crash-restart.
func (c *Collector) RecordAppFailure() { c.FailedApps++ }

// RecordFaultRetry notes that appID's reconfiguration hit one
// fault-injected retry; RetriedApps reports distinct applications.
func (c *Collector) RecordFaultRetry(appID int) {
	if c.faultRetried == nil {
		c.faultRetried = make(map[int]struct{})
	}
	c.faultRetried[appID] = struct{}{}
}

// AccumulateDowntime adds one slot's out-of-service interval.
func (c *Collector) AccumulateDowntime(dt sim.Duration) { c.downTotal += dt }

// FaultStats exposes the raw fault accounting for multi-board merges:
// total slot-downtime, the board's slot-seconds denominator, failure
// and crash counts, distinct retried apps, and whether the fault axis
// was enabled at all.
func (c *Collector) FaultStats() (down sim.Duration, slotSpanSec float64, events, failed uint64, retried int, on bool) {
	if !c.faultsOn {
		return 0, 0, 0, 0, 0, false
	}
	span := c.end.Sub(c.start).Seconds()
	if span < 0 {
		span = 0
	}
	return c.downTotal, float64(c.faultSlots) * span, c.FaultEvents, c.FailedApps, len(c.faultRetried), true
}

// availability is 1 minus the downtime fraction of the run's
// slot-seconds, clamped to [0, 1] (lingering recovery events can push
// downtime past the last app's finish instant).
func (c *Collector) availability() float64 {
	span := c.end.Sub(c.start).Seconds()
	if span <= 0 || c.faultSlots == 0 {
		return 1
	}
	a := 1 - c.downTotal.Seconds()/(float64(c.faultSlots)*span)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// RecordResponse adds one finished application: retained in
// Responses in exact mode (nil sink), folded into the active sink
// otherwise.
func (c *Collector) RecordResponse(s ResponseSample) {
	if s.Finish > c.end {
		c.end = s.Finish
	}
	if c.sink != nil {
		c.sink.Observe(s)
		return
	}
	c.Responses = append(c.Responses, s)
}

// AccumulateResident adds a resident-circuit interval: res held for dt.
func (c *Collector) AccumulateResident(res fabric.ResVec, dt sim.Duration) {
	sec := dt.Seconds()
	c.lutResidentInt += float64(res.LUT) * sec
	c.ffResidentInt += float64(res.FF) * sec
	c.dspResidentInt += float64(res.DSP) * sec
	c.bramResidentInt += float64(res.BRAM) * sec
}

// AccumulateBusy adds an actively-executing interval.
func (c *Collector) AccumulateBusy(res fabric.ResVec, dt sim.Duration) {
	sec := dt.Seconds()
	c.lutBusyInt += float64(res.LUT) * sec
	c.ffBusyInt += float64(res.FF) * sec
}

// Utilization returns the time-averaged LUT and FF utilization of the
// board's slot area over [start, end] for resident circuits.
func (c *Collector) Utilization() (lut, ff float64) {
	span := c.end.Sub(c.start).Seconds()
	if span <= 0 || c.capLUT == 0 {
		return 0, 0
	}
	return c.lutResidentInt / (c.capLUT * span), c.ffResidentInt / (c.capFF * span)
}

// UtilizationAll returns the time-averaged utilization across every
// tracked resource; DSP/BRAM ratios are zero when the platform declares
// no such capacity.
func (c *Collector) UtilizationAll() fabric.UtilRatios {
	span := c.end.Sub(c.start).Seconds()
	if span <= 0 {
		return fabric.UtilRatios{}
	}
	var u fabric.UtilRatios
	if c.capLUT > 0 {
		u.LUT = c.lutResidentInt / (c.capLUT * span)
	}
	if c.capFF > 0 {
		u.FF = c.ffResidentInt / (c.capFF * span)
	}
	if c.capDSP > 0 {
		u.DSP = c.dspResidentInt / (c.capDSP * span)
	}
	if c.capBRAM > 0 {
		u.BRAM = c.bramResidentInt / (c.capBRAM * span)
	}
	return u
}

// BusyUtilization returns the busy-only time-averaged utilization.
func (c *Collector) BusyUtilization() (lut, ff float64) {
	span := c.end.Sub(c.start).Seconds()
	if span <= 0 || c.capLUT == 0 {
		return 0, 0
	}
	return c.lutBusyInt / (c.capLUT * span), c.ffBusyInt / (c.capFF * span)
}

// Summary condenses the run.
type Summary struct {
	Apps       int
	MeanRT     sim.Duration
	P50, P95   sim.Duration
	P99, MaxRT sim.Duration
	MinRT      sim.Duration
	UtilLUT    float64
	UtilFF     float64
	// UtilDSP/UtilBRAM extend the paper's LUT/FF pair; DSP-bound
	// circuits surface on heterogeneous platforms.
	UtilDSP     float64
	UtilBRAM    float64
	MeanQueue   sim.Duration
	PRLoads     uint64
	PRBlocked   uint64
	PRRetries   uint64
	PRWait      sim.Duration
	Preemptions uint64
	Migrations  uint64

	// Fault axis — populated only when fault injection is enabled and
	// omitted from JSON otherwise, so fault-free results stay
	// byte-identical to the pre-fault goldens. Availability is the
	// slot-seconds in service over the run's span; Downtime the summed
	// out-of-service time; FailedApps counts crash-restarted
	// applications, RetriedApps the distinct applications whose
	// reconfigurations needed fault-injected retries.
	Availability float64      `json:"Availability,omitempty"`
	Downtime     sim.Duration `json:"Downtime,omitempty"`
	FaultEvents  uint64       `json:"FaultEvents,omitempty"`
	FailedApps   uint64       `json:"FailedApps,omitempty"`
	RetriedApps  int          `json:"RetriedApps,omitempty"`
}

// Summarize computes the run summary. It reuses the collector's
// scratch buffer, so after the first call a summary allocates nothing;
// P50/P95/P99 all come from the one sorted pass.
func (c *Collector) Summarize() Summary {
	s := Summary{Apps: len(c.Responses), PRLoads: c.PRLoads, PRBlocked: c.PRBlocked,
		PRRetries: c.PRRetries, PRWait: c.PRWait,
		Preemptions: c.Preemptions, Migrations: c.Migrations}
	if c.faultsOn {
		s.Availability = c.availability()
		s.Downtime = c.downTotal
		s.FaultEvents = c.FaultEvents
		s.FailedApps = c.FailedApps
		s.RetriedApps = len(c.faultRetried)
	}
	if c.stream != nil {
		return c.streamSummary(s)
	}
	if len(c.Responses) == 0 {
		return s
	}
	rts := c.scratch[:0]
	var sum, qsum float64
	for _, r := range c.Responses {
		rts = append(rts, float64(r.Response))
		sum += float64(r.Response)
		qsum += float64(r.QueueDelay)
	}
	c.scratch = rts
	s.MeanQueue = sim.Duration(qsum / float64(len(rts)))
	sort.Float64s(rts)
	p50, p95, p99 := TailPercentiles(rts)
	s.MeanRT = sim.Duration(sum / float64(len(rts)))
	s.P50 = sim.Duration(p50)
	s.P95 = sim.Duration(p95)
	s.P99 = sim.Duration(p99)
	s.MinRT = sim.Duration(rts[0])
	s.MaxRT = sim.Duration(rts[len(rts)-1])
	u := c.UtilizationAll()
	s.UtilLUT, s.UtilFF = u.LUT, u.FF
	s.UtilDSP, s.UtilBRAM = u.DSP, u.BRAM
	return s
}

// TailPercentiles returns the P50/P95/P99 of already-sorted values in
// one call — the three tail statistics every summary reports, off a
// single sorted pass.
func TailPercentiles(sorted []float64) (p50, p95, p99 float64) {
	return Percentile(sorted, 50), Percentile(sorted, 95), Percentile(sorted, 99)
}

// SortedResponseValues appends the samples' response times into
// buf[:0], sorts them ascending, and returns the slice — callers
// summarizing many sample sets (per-pair farm breakdowns) reuse one
// buffer across calls instead of allocating per set.
func SortedResponseValues(samples []ResponseSample, buf []float64) []float64 {
	vals := buf[:0]
	for _, r := range samples {
		vals = append(vals, float64(r.Response))
	}
	sort.Float64s(vals)
	return vals
}

// SpecBreakdown summarizes response times per application type — e.g.
// how LeNet (which cannot bundle) fares on a Big.Little board versus
// the bundleable applications.
type SpecBreakdown struct {
	Spec   string
	Count  int
	MeanRT sim.Duration
	MaxRT  sim.Duration
}

// BySpec groups the collector's responses by application spec, sorted
// by spec name. In stream mode the aggregates were folded on arrival.
func (c *Collector) BySpec() []SpecBreakdown {
	if c.stream != nil {
		return c.streamBySpec()
	}
	agg := make(map[string]*SpecBreakdown)
	for _, r := range c.Responses {
		b, ok := agg[r.Spec]
		if !ok {
			b = &SpecBreakdown{Spec: r.Spec}
			agg[r.Spec] = b
		}
		b.Count++
		b.MeanRT += r.Response
		if r.Response > b.MaxRT {
			b.MaxRT = r.Response
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SpecBreakdown, 0, len(names))
	for _, n := range names {
		b := agg[n]
		b.MeanRT /= sim.Duration(b.Count)
		out = append(out, *b)
	}
	return out
}

// MeanResponse returns the average response time across samples.
func MeanResponse(samples []ResponseSample) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, r := range samples {
		sum += float64(r.Response)
	}
	return sim.Duration(sum / float64(len(samples)))
}

// Percentile returns the p-th percentile (0-100) of sorted values,
// using linear interpolation between closest ranks (the common
// "exclusive" definition degenerates on tiny samples; we use the
// inclusive nearest-rank-with-interpolation variant).
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanStd returns the sample mean and (population) standard deviation
// of values — the cross-sequence spread the evaluation reports.
func MeanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	if len(values) == 1 {
		return mean, 0
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(values)))
}

// PercentileOf sorts a copy of values and returns the p-th percentile.
func PercentileOf(values []float64, p float64) float64 {
	cp := make([]float64, len(values))
	copy(cp, values)
	sort.Float64s(cp)
	return Percentile(cp, p)
}
