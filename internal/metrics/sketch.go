package metrics

import (
	"math"
	"math/bits"
)

// Sketch precisions: the run-level sketch uses 7 sub-bucket bits
// (128 sub-buckets per octave, relative value error <= 2^-7 ~ 0.78%,
// inside the documented 1% bound); per-window sketches trade
// precision for footprint with 5 bits (<= 2^-5 ~ 3.1%), which is
// ample for a time-series panel. Sketches of different precision
// must never be merged; Merge panics on a mismatch.
const (
	GlobalSketchBits = 7
	WindowSketchBits = 5
)

// Sketch is a mergeable HDR-histogram-style percentile sketch over
// non-negative int64 values (response times in nanoseconds). Values
// land in log-linear buckets: below 2^(bits+1) every integer has its
// own bucket (exact); above, each octave [2^k, 2^(k+1)) splits into
// 2^bits equal sub-buckets, so a bucket's width over its lower bound
// never exceeds 2^-bits. Quantile therefore returns a value within
// relative error 2^-bits of some sample at the requested rank.
//
// Bucket counts are integers, so Merge is exactly associative and
// commutative on the distribution: merging per-engine sketches in any
// grouping yields identical counts, which is what lets the sharded
// farm path aggregate without shipping samples. Memory is O(1) in the
// number of observations: the bucket range grows only with the spread
// of observed values (at most ~58 KiB at 7 bits) and ingest allocates
// nothing once the observed range is covered.
type Sketch struct {
	bits   uint
	counts []uint64 // bucket counts for indices [base, base+len(counts))
	base   int
	count  uint64
	sum    float64
	min    int64
	max    int64
}

// NewSketch returns an empty sketch with 2^bits sub-buckets per
// octave. bits must be in [1, 16].
func NewSketch(bits uint) *Sketch {
	if bits < 1 || bits > 16 {
		panic("metrics: sketch bits out of range")
	}
	return &Sketch{bits: bits, min: math.MaxInt64}
}

// bucketIndex maps a non-negative value to its bucket. Values below
// 2^(bits+1) map to themselves (the linear region); above, index =
// shift*2^bits + (v >> shift) with shift = floor(log2 v) - bits, which
// tiles the octaves contiguously.
func (s *Sketch) bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	k := 63 - bits.LeadingZeros64(uint64(v)|1)
	shift := k - int(s.bits)
	if shift <= 0 {
		return int(v)
	}
	return shift<<s.bits + int(v>>uint(shift))
}

// bucketBounds returns the lower bound and width of bucket idx.
func (s *Sketch) bucketBounds(idx int) (lo, width int64) {
	sub := 1 << s.bits
	if idx < 2*sub {
		return int64(idx), 1
	}
	shift := uint(idx/sub - 1)
	m := idx - int(shift)*sub
	return int64(m) << shift, int64(1) << shift
}

// ensure grows the bucket range to cover idx. Growth rounds out to
// 64-bucket blocks with headroom so steady-state ingest over a stable
// value range stops allocating after warm-up.
func (s *Sketch) ensure(idx int) {
	const block = 64
	if s.counts == nil {
		base := idx &^ (block - 1)
		s.counts = make([]uint64, block)
		s.base = base
		return
	}
	if idx >= s.base && idx < s.base+len(s.counts) {
		return
	}
	lo, hi := s.base, s.base+len(s.counts)
	if idx < lo {
		lo = idx &^ (block - 1)
	}
	if idx >= hi {
		hi = (idx + block) &^ (block - 1)
	}
	grown := make([]uint64, hi-lo)
	copy(grown[s.base-lo:], s.counts)
	s.counts = grown
	s.base = lo
}

// Add folds one observation into the sketch. Negative values clamp to
// zero. Warm-path cost is one bucket lookup and no allocation.
func (s *Sketch) Add(v int64) {
	if v < 0 {
		v = 0
	}
	idx := s.bucketIndex(v)
	if s.counts == nil || idx < s.base || idx >= s.base+len(s.counts) {
		s.ensure(idx)
	}
	s.counts[idx-s.base]++
	s.count++
	s.sum += float64(v)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// Merge folds o's distribution into s. Bucket counts add exactly, so
// merge order and grouping never change the resulting counts.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.bits != s.bits {
		panic("metrics: merging sketches of different precision")
	}
	s.ensure(o.base)
	s.ensure(o.base + len(o.counts) - 1)
	off := o.base - s.base
	for i, c := range o.counts {
		s.counts[off+i] += c
	}
	s.count += o.count
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Reset empties the sketch while keeping its bucket storage, so ring
// windows recycle without reallocating.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.count = 0
	s.sum = 0
	s.min = math.MaxInt64
	s.max = 0
}

// Count returns the number of observations folded in.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact sum of observations (as float64; individual
// int64 nanosecond values below 2^53 accumulate exactly until the
// total crosses 2^53).
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the mean observation, 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min and Max return the exact extreme observations (0 when empty).
func (s *Sketch) Min() int64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}
func (s *Sketch) Max() int64 { return s.max }

// Quantile returns an estimate of the p-th percentile (0-100),
// mirroring Percentile's inclusive-interpolation rank convention: the
// target rank is p/100*(count-1). The returned value lies in the
// bucket containing the sample at that rank, linearly interpolated
// within it and clamped to the exact [Min, Max], so the relative
// value error versus the exact percentile is at most 2^-bits.
func (s *Sketch) Quantile(p float64) int64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 || s.count == 1 {
		return s.max
	}
	rank := p / 100 * float64(s.count-1)
	var cum uint64
	target := uint64(rank) // index of the lower bracketing sample
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if cum+c > target {
			lo, width := s.bucketBounds(s.base + i)
			// Position of the target rank within this bucket's
			// occupants, at bucket-interval resolution.
			frac := (rank - float64(cum) + 0.5) / float64(c)
			if frac > 1 {
				frac = 1
			}
			v := lo + int64(frac*float64(width))
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
		cum += c
	}
	return s.max
}

// MemoryFootprint reports the sketch's current heap footprint in
// bytes (bucket storage only) — the flat-memory number the docs and
// the streaming benchmark cite.
func (s *Sketch) MemoryFootprint() int { return len(s.counts) * 8 }
