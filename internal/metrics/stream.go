package metrics

import (
	"sort"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// Default streaming geometry: ten simulated seconds per window, 64
// retained windows. Both are per-scenario tunables (the facade's
// metrics block); the defaults suit the catalog's second-to-minute
// horizons.
const (
	DefaultStreamWindow = 10 * sim.Second
	DefaultMaxWindows   = 64
)

// StreamConfig parameterizes the streaming sink: Window is the
// time-series bucket width, MaxWindows the ring size (retained
// history). Zero fields take the defaults above.
type StreamConfig struct {
	Window     sim.Duration
	MaxWindows int
}

// Sink consumes finished-application samples as they arrive. The
// collector routes RecordResponse through its sink: a nil sink is the
// historic exact mode (every sample retained in Responses, summaries
// computed from a terminal sort), EnableStreaming installs the
// bounded-memory stream sink, and SetSink accepts any custom
// implementation (e.g. a live exporter).
type Sink interface {
	Observe(s ResponseSample)
}

// SetSink replaces the collector's sample sink. Passing nil restores
// the exact retain-everything default.
func (c *Collector) SetSink(s Sink) { c.sink = s }

// EnableStreaming switches the collector into stream mode: samples
// fold into a run-level Sketch plus a fixed ring of per-window
// sketches on arrival and are never retained, so memory stays O(1)
// in the number of applications over arbitrarily long horizons.
// Utilization integrals, PR counters and the fault axis accumulate
// exactly as in exact mode. Must be called before the first sample.
func (c *Collector) EnableStreaming(cfg StreamConfig) {
	if cfg.Window <= 0 {
		cfg.Window = DefaultStreamWindow
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	st := &streamState{
		cfg:    cfg,
		global: NewSketch(GlobalSketchBits),
		hi:     -1,
		spec:   make(map[string]*SpecBreakdown),
		ring:   make([]window, cfg.MaxWindows),
	}
	for i := range st.ring {
		st.ring[i].index = -1
	}
	c.stream = st
	c.sink = st
}

// Streaming reports whether the stream sink is active.
func (c *Collector) Streaming() bool { return c.stream != nil }

// StreamSpec returns the active stream configuration (zero when the
// collector runs exact).
func (c *Collector) StreamSpec() StreamConfig {
	if c.stream == nil {
		return StreamConfig{}
	}
	return c.stream.cfg
}

// window is one ring slot of the streaming time-series. Slots are
// recycled in place on rollover — Reset keeps the sketch's bucket
// storage — so steady-state ingest allocates nothing.
type window struct {
	index    int64 // absolute window number (Finish / Window); -1 = unused
	sketch   *Sketch
	qsum     float64
	lutInt   float64 // LUT-seconds resident inside this window
	ffInt    float64
	migrated uint64
	faults   uint64
	failed   uint64
}

func (w *window) reset(index int64) {
	w.index = index
	if w.sketch == nil {
		w.sketch = NewSketch(WindowSketchBits)
	} else {
		w.sketch.Reset()
	}
	w.qsum = 0
	w.lutInt = 0
	w.ffInt = 0
	w.migrated = 0
	w.faults = 0
	w.failed = 0
}

// streamState is the stream sink: the run-level sketch, the window
// ring, and per-spec aggregates. It implements Sink.
type streamState struct {
	cfg    StreamConfig
	global *Sketch
	qsum   float64
	// ring holds the MaxWindows most recent windows; hi is the highest
	// absolute window index materialized so far (-1 before the first
	// touch). Older windows are evicted by recycling their slot — their
	// samples stay in the run-level sketch, only the time-series entry
	// rolls off.
	ring []window
	hi   int64
	// spec accumulates per-application-type aggregates; MeanRT holds
	// the running response-time sum until BySpec divides a copy.
	spec map[string]*SpecBreakdown
}

// Observe folds one finished application into the sketch and its
// finish-time window. Warm-path cost: two sketch adds and a map
// lookup, zero allocations.
func (st *streamState) Observe(s ResponseSample) {
	rt := int64(s.Response)
	st.global.Add(rt)
	st.qsum += float64(s.QueueDelay)
	b := st.spec[s.Spec]
	if b == nil {
		b = &SpecBreakdown{Spec: s.Spec}
		st.spec[s.Spec] = b
	}
	b.Count++
	b.MeanRT += s.Response
	if s.Response > b.MaxRT {
		b.MaxRT = s.Response
	}
	if w := st.windowAt(st.indexOf(s.Finish)); w != nil {
		w.sketch.Add(rt)
		w.qsum += float64(s.QueueDelay)
	}
}

func (st *streamState) indexOf(t sim.Time) int64 {
	if t < 0 {
		t = 0
	}
	return int64(t) / int64(st.cfg.Window)
}

// windowAt returns the ring slot for absolute window idx, advancing
// the ring when idx is ahead of the newest window. Returns nil when
// idx has already rolled off the retained range (the observation then
// contributes to run-level state only). Advancing over a gap longer
// than the ring touches at most len(ring) slots, so ingest stays
// O(1) amortized.
func (st *streamState) windowAt(idx int64) *window {
	n := int64(len(st.ring))
	if st.hi < 0 {
		st.hi = idx - 1
	}
	if idx > st.hi {
		start := st.hi + 1
		if idx-start >= n {
			start = idx - n + 1
		}
		for i := start; i <= idx; i++ {
			st.ring[i%n].reset(i)
		}
		st.hi = idx
	}
	if idx <= st.hi-n {
		return nil
	}
	slot := &st.ring[idx%n]
	if slot.index != idx {
		// The slot still holds a window that was skipped over during a
		// long gap; it is outside the retained range, so recycle it.
		slot.reset(idx)
	}
	return slot
}

// AccumulateResidentSpan adds a resident-circuit interval with its
// endpoints, so stream mode can attribute the LUT/FF-seconds to the
// windows the interval overlaps. The run-level integrals update
// exactly as AccumulateResident does; exact mode behaves identically.
func (c *Collector) AccumulateResidentSpan(res fabric.ResVec, from, to sim.Time) {
	c.AccumulateResident(res, to.Sub(from))
	if c.stream == nil || to <= from {
		return
	}
	st := c.stream
	w := sim.Time(st.cfg.Window)
	for t := from; t < to; {
		end := (t/w + 1) * w
		if end > to {
			end = to
		}
		if slot := st.windowAt(st.indexOf(t)); slot != nil {
			sec := end.Sub(t).Seconds()
			slot.lutInt += float64(res.LUT) * sec
			slot.ffInt += float64(res.FF) * sec
		}
		t = end
	}
}

// RecordFaultEventAt counts one injected failure and, in stream mode,
// attributes it to the window containing t.
func (c *Collector) RecordFaultEventAt(t sim.Time) {
	c.RecordFaultEvent()
	if st := c.stream; st != nil {
		if w := st.windowAt(st.indexOf(t)); w != nil {
			w.faults++
		}
	}
}

// RecordAppFailureAt counts one fault-induced crash-restart and, in
// stream mode, attributes it to the window containing t.
func (c *Collector) RecordAppFailureAt(t sim.Time) {
	c.RecordAppFailure()
	if st := c.stream; st != nil {
		if w := st.windowAt(st.indexOf(t)); w != nil {
			w.failed++
		}
	}
}

// RecordMigrationWindow attributes apps live-migrated at t to t's
// window. Stream-mode only; exact mode derives migration counts from
// the pair's Migration records as before.
func (c *Collector) RecordMigrationWindow(t sim.Time, apps int) {
	if st := c.stream; st != nil {
		if w := st.windowAt(st.indexOf(t)); w != nil {
			w.migrated += uint64(apps)
		}
	}
}

// WindowStat is one completed window of the streaming time-series.
type WindowStat struct {
	Index       int64        `json:"index"`
	Start       sim.Time     `json:"start"`
	End         sim.Time     `json:"end"`
	Apps        int          `json:"apps"`
	MeanRT      sim.Duration `json:"mean_rt"`
	P50         sim.Duration `json:"p50"`
	P99         sim.Duration `json:"p99"`
	MeanQueue   sim.Duration `json:"mean_queue"`
	UtilLUT     float64      `json:"util_lut"`
	UtilFF      float64      `json:"util_ff"`
	Migrated    uint64       `json:"migrated,omitempty"`
	FaultEvents uint64       `json:"fault_events,omitempty"`
	FailedApps  uint64       `json:"failed_apps,omitempty"`
}

// Windows returns the retained time-series, oldest window first — at
// most MaxWindows entries regardless of horizon length. Per-window
// P50/P99 carry the window sketch's 2^-5 relative value bound; the
// final (possibly partial) window's utilization denominator is
// clipped at the collector's end time.
func (c *Collector) Windows() []WindowStat {
	st := c.stream
	if st == nil || st.hi < 0 {
		return nil
	}
	n := int64(len(st.ring))
	lo := st.hi - n + 1
	if lo < 0 {
		lo = 0
	}
	w := sim.Time(st.cfg.Window)
	out := make([]WindowStat, 0, st.hi-lo+1)
	for i := lo; i <= st.hi; i++ {
		slot := &st.ring[i%n]
		if slot.index != i {
			continue
		}
		ws := WindowStat{
			Index: i,
			Start: sim.Time(i) * w,
			End:   sim.Time(i+1) * w,
		}
		if cnt := slot.sketch.Count(); cnt > 0 {
			ws.Apps = int(cnt)
			ws.MeanRT = sim.Duration(slot.sketch.Mean())
			ws.P50 = sim.Duration(slot.sketch.Quantile(50))
			ws.P99 = sim.Duration(slot.sketch.Quantile(99))
			ws.MeanQueue = sim.Duration(st.qsumOf(slot))
		}
		span := ws.End.Sub(ws.Start).Seconds()
		if c.end > ws.Start && c.end < ws.End {
			span = c.end.Sub(ws.Start).Seconds()
		}
		if span > 0 {
			if c.capLUT > 0 {
				ws.UtilLUT = slot.lutInt / (c.capLUT * span)
			}
			if c.capFF > 0 {
				ws.UtilFF = slot.ffInt / (c.capFF * span)
			}
		}
		ws.Migrated = slot.migrated
		ws.FaultEvents = slot.faults
		ws.FailedApps = slot.failed
		out = append(out, ws)
	}
	return out
}

func (st *streamState) qsumOf(w *window) float64 {
	return w.qsum / float64(w.sketch.Count())
}

// GlobalSketch exposes the run-level sketch (nil in exact mode) for
// per-pair merges and tests.
func (c *Collector) GlobalSketch() *Sketch {
	if c.stream == nil {
		return nil
	}
	return c.stream.global
}

// EndTime returns the latest finish instant observed — stream mode's
// makespan, since samples are not retained.
func (c *Collector) EndTime() sim.Time { return c.end }

// StreamFootprint reports the stream sink's current bucket-storage
// footprint in bytes (run-level sketch plus all ring windows) — the
// flat number the long-horizon docs cite.
func (c *Collector) StreamFootprint() int {
	st := c.stream
	if st == nil {
		return 0
	}
	b := st.global.MemoryFootprint()
	for i := range st.ring {
		if st.ring[i].sketch != nil {
			b += st.ring[i].sketch.MemoryFootprint()
		}
	}
	return b
}

// AbsorbStream folds a streaming source collector into c, the fleet
// aggregator: run-level sketches merge bucket-wise (exactly
// associative), window rings merge by absolute window index, per-spec
// aggregates, utilization integrals, capacities, PR/migration/
// preemption counters and the fault axis all add. The aggregator's
// Summarize/Windows/BySpec then report fleet-level statistics without
// any sample having been shipped.
func (c *Collector) AbsorbStream(src *Collector) {
	if src == nil || src.stream == nil {
		return
	}
	if c.stream == nil {
		c.EnableStreaming(src.stream.cfg)
	}
	st, ss := c.stream, src.stream
	st.global.Merge(ss.global)
	st.qsum += ss.qsum
	for name, b := range ss.spec {
		d := st.spec[name]
		if d == nil {
			d = &SpecBreakdown{Spec: name}
			st.spec[name] = d
		}
		d.Count += b.Count
		d.MeanRT += b.MeanRT
		if b.MaxRT > d.MaxRT {
			d.MaxRT = b.MaxRT
		}
	}
	if ss.hi >= 0 {
		n := int64(len(ss.ring))
		lo := ss.hi - n + 1
		if lo < 0 {
			lo = 0
		}
		for i := lo; i <= ss.hi; i++ {
			slot := &ss.ring[i%n]
			if slot.index != i {
				continue
			}
			dst := st.windowAt(i)
			if dst == nil {
				continue
			}
			dst.sketch.Merge(slot.sketch)
			dst.qsum += slot.qsum
			dst.lutInt += slot.lutInt
			dst.ffInt += slot.ffInt
			dst.migrated += slot.migrated
			dst.faults += slot.faults
			dst.failed += slot.failed
		}
	}

	// Exact-side accumulators: utilization integrals and capacities
	// (fleet utilization = summed integrals over summed capacity),
	// counters, span, and the fault axis.
	c.lutResidentInt += src.lutResidentInt
	c.ffResidentInt += src.ffResidentInt
	c.dspResidentInt += src.dspResidentInt
	c.bramResidentInt += src.bramResidentInt
	c.lutBusyInt += src.lutBusyInt
	c.ffBusyInt += src.ffBusyInt
	c.capLUT += src.capLUT
	c.capFF += src.capFF
	c.capDSP += src.capDSP
	c.capBRAM += src.capBRAM
	if src.end > c.end {
		c.end = src.end
	}
	c.PRLoads += src.PRLoads
	c.PRBytes += src.PRBytes
	c.PRWait += src.PRWait
	c.PRBlocked += src.PRBlocked
	c.PRRetries += src.PRRetries
	c.Preemptions += src.Preemptions
	c.Migrations += src.Migrations
	c.MigratedApps += src.MigratedApps
	c.MigrationBytes += src.MigrationBytes
	c.MigrationTime += src.MigrationTime
	if src.faultsOn {
		c.faultsOn = true
		c.faultSlots += src.faultSlots
		c.downTotal += src.downTotal
		c.FaultEvents += src.FaultEvents
		c.FailedApps += src.FailedApps
		if c.faultRetried == nil {
			c.faultRetried = make(map[int]struct{})
		}
		for id := range src.faultRetried {
			c.faultRetried[id] = struct{}{}
		}
	}
}

// streamSummary is Summarize's stream-mode branch: every statistic
// comes from the run-level sketch and the exact accumulators.
func (c *Collector) streamSummary(s Summary) Summary {
	g := c.stream.global
	if g.Count() == 0 {
		return s
	}
	s.Apps = int(g.Count())
	s.MeanRT = sim.Duration(g.Mean())
	s.P50 = sim.Duration(g.Quantile(50))
	s.P95 = sim.Duration(g.Quantile(95))
	s.P99 = sim.Duration(g.Quantile(99))
	s.MinRT = sim.Duration(g.Min())
	s.MaxRT = sim.Duration(g.Max())
	s.MeanQueue = sim.Duration(c.stream.qsum / float64(g.Count()))
	u := c.UtilizationAll()
	s.UtilLUT, s.UtilFF = u.LUT, u.FF
	s.UtilDSP, s.UtilBRAM = u.DSP, u.BRAM
	return s
}

// streamBySpec is BySpec's stream-mode branch: aggregates were folded
// on arrival; report a sorted copy (sums divided into means) so
// repeated calls stay idempotent.
func (c *Collector) streamBySpec() []SpecBreakdown {
	st := c.stream
	names := make([]string, 0, len(st.spec))
	for n := range st.spec {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SpecBreakdown, 0, len(names))
	for _, n := range names {
		b := *st.spec[n]
		b.MeanRT /= sim.Duration(b.Count)
		out = append(out, b)
	}
	return out
}
