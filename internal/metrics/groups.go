package metrics

// GroupLanes accumulates response observations in a group × lane
// matrix of sketches and counters: groups are the reporting axis (the
// orchestrator's tenants) and lanes are the writer axis (the farm's
// pairs). The layout is what makes per-tenant breakdowns safe under
// the sharded farm executor without atomics: a completion on pair p is
// always recorded in lane p, each lane has exactly one writer (the
// worker advancing that pair's kernel), and the coordinator only reads
// lane cells between synchronization phases — the same single-writer
// discipline as the farm's finishedBy slice.
//
// Merging a group's lanes (always in ascending lane order) is exact:
// sketch bucket counts add associatively, so the merged distribution
// is byte-identical whether the run was sequential, parallel-swept, or
// sharded.
type GroupLanes struct {
	groups, lanes int
	bits          uint
	// sketch is the flattened matrix, allocated lazily: most
	// (group, lane) cells never see an observation (a tenant's apps
	// usually land on a few pairs).
	sketch []*Sketch
	count  []int
	ok     []int
}

// NewGroupLanes builds an empty groups × lanes accumulator whose
// sketches use 2^bits buckets per octave (see NewSketch).
func NewGroupLanes(groups, lanes int, bits uint) *GroupLanes {
	if groups < 0 || lanes <= 0 {
		panic("metrics: GroupLanes needs groups >= 0 and lanes > 0")
	}
	return &GroupLanes{
		groups: groups,
		lanes:  lanes,
		bits:   bits,
		sketch: make([]*Sketch, groups*lanes),
		count:  make([]int, groups*lanes),
		ok:     make([]int, groups*lanes),
	}
}

// Groups returns the group-axis size.
func (g *GroupLanes) Groups() int { return g.groups }

// Observe records one response value v for (group, lane); ok flags
// whether the observation met its target (the tenant's SLO). Only
// lane's single writer may call this.
func (g *GroupLanes) Observe(group, lane int, v int64, ok bool) {
	idx := group*g.lanes + lane
	sk := g.sketch[idx]
	if sk == nil {
		sk = NewSketch(g.bits)
		g.sketch[idx] = sk
	}
	sk.Add(v)
	g.count[idx]++
	if ok {
		g.ok[idx]++
	}
}

// Count sums a group's observations across lanes (coordinator-side
// read; in a sharded run it is only consistent between phases).
func (g *GroupLanes) Count(group int) int {
	n := 0
	for l := 0; l < g.lanes; l++ {
		n += g.count[group*g.lanes+l]
	}
	return n
}

// OKCount sums a group's target-met observations across lanes.
func (g *GroupLanes) OKCount(group int) int {
	n := 0
	for l := 0; l < g.lanes; l++ {
		n += g.ok[group*g.lanes+l]
	}
	return n
}

// MergeGroup folds a group's lane sketches, in ascending lane order,
// into the reusable sketch `into` (Reset first; allocated when nil)
// and returns it. Call only after the run has completed (or between
// coordinator phases).
func (g *GroupLanes) MergeGroup(group int, into *Sketch) *Sketch {
	if into == nil {
		into = NewSketch(g.bits)
	} else {
		into.Reset()
	}
	for l := 0; l < g.lanes; l++ {
		if sk := g.sketch[group*g.lanes+l]; sk != nil {
			into.Merge(sk)
		}
	}
	return into
}
