package metrics

import (
	"math"
	"sort"
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

func fabricCap() fabric.ResVec { return fabric.ResVec{LUT: 100, FF: 200} }

// rankOf returns the fractional rank of v in sorted (the share of
// samples at or below v).
func rankOf(sorted []int64, v int64) float64 {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return float64(i) / float64(len(sorted))
}

// distributions the rank-error bound is checked against: smooth
// (uniform, exponential), multi-modal, and the paper's bursty MMPP
// regime (two Poisson rates with abrupt phase switches).
func sketchTestDistributions() map[string]func(r *sim.RNG, n int) []int64 {
	return map[string]func(r *sim.RNG, n int) []int64{
		"uniform": func(r *sim.RNG, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(1e6 + r.Float64()*9e8)
			}
			return out
		},
		"exponential": func(r *sim.RNG, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(-math.Log(1-r.Float64()) * 5e7)
			}
			return out
		},
		"bimodal": func(r *sim.RNG, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				mode := 2e7 + r.Float64()*1e7
				if r.Float64() < 0.3 {
					mode = 6e8 + r.Float64()*2e8
				}
				out[i] = int64(mode)
			}
			return out
		},
		"mmpp-bursty": func(r *sim.RNG, n int) []int64 {
			// Two-phase MMPP service proxy: calm phase draws short
			// exponential response times, burst phase 20x longer ones;
			// phases flip with probability 0.02 per draw.
			out := make([]int64, n)
			burst := false
			for i := range out {
				if r.Float64() < 0.02 {
					burst = !burst
				}
				mean := 2e7
				if burst {
					mean = 4e8
				}
				out[i] = int64(-math.Log(1-r.Float64()) * mean)
			}
			return out
		},
	}
}

// TestSketchRankError pins the documented accuracy claim: at
// P50/P95/P99 the sketch's estimate has rank error at most 1% versus
// the exact sorted sample, across qualitatively different
// distributions.
func TestSketchRankError(t *testing.T) {
	const n = 20000
	for name, gen := range sketchTestDistributions() {
		t.Run(name, func(t *testing.T) {
			vals := gen(sim.NewRNG(42), n)
			s := NewSketch(GlobalSketchBits)
			for _, v := range vals {
				s.Add(v)
			}
			sorted := append([]int64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, p := range []float64{50, 95, 99} {
				est := s.Quantile(p)
				r := rankOf(sorted, est)
				if err := math.Abs(r - p/100); err > 0.01 {
					t.Errorf("P%.0f estimate %d has rank %.4f (rank error %.4f > 0.01)", p, est, r, err)
				}
			}
			// The relative value bound holds against the exact
			// percentile too (smooth distributions, large n).
			exact := make([]float64, n)
			for i, v := range sorted {
				exact[i] = float64(v)
			}
			for _, p := range []float64{50, 95, 99} {
				want := Percentile(exact, p)
				got := float64(s.Quantile(p))
				if want > 0 {
					if rel := math.Abs(got-want) / want; rel > 0.02 {
						t.Errorf("P%.0f = %.0f, exact %.0f (relative error %.4f)", p, got, want, rel)
					}
				}
			}
		})
	}
}

// TestSketchExactExtremes pins that count, sum, min and max are exact
// regardless of bucketing.
func TestSketchExactExtremes(t *testing.T) {
	s := NewSketch(GlobalSketchBits)
	vals := []int64{5, 1e9, 37, 123456789, 5, 0}
	var sum float64
	for _, v := range vals {
		s.Add(v)
		sum += float64(v)
	}
	if s.Count() != uint64(len(vals)) {
		t.Errorf("count %d, want %d", s.Count(), len(vals))
	}
	if s.Min() != 0 || s.Max() != 1e9 {
		t.Errorf("min/max %d/%d, want 0/1000000000", s.Min(), s.Max())
	}
	if s.Sum() != sum {
		t.Errorf("sum %f, want %f", s.Sum(), sum)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("P0 = %d, want the exact min", got)
	}
	if got := s.Quantile(100); got != 1e9 {
		t.Errorf("P100 = %d, want the exact max", got)
	}
}

// TestSketchMergeAssociative pins the property the sharded farm path
// depends on: merging per-shard sketches in any grouping yields
// identical bucket counts, hence identical quantiles — (A+B)+C equals
// A+(B+C) equals one sketch fed everything.
func TestSketchMergeAssociative(t *testing.T) {
	gen := sketchTestDistributions()["mmpp-bursty"]
	parts := [][]int64{
		gen(sim.NewRNG(1), 3000),
		gen(sim.NewRNG(2), 5000),
		gen(sim.NewRNG(3), 700),
	}
	build := func(vals []int64) *Sketch {
		s := NewSketch(GlobalSketchBits)
		for _, v := range vals {
			s.Add(v)
		}
		return s
	}
	a, b, c := build(parts[0]), build(parts[1]), build(parts[2])

	left := NewSketch(GlobalSketchBits) // (A+B)+C
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := NewSketch(GlobalSketchBits) // A+(B+C)
	bc.Merge(b)
	bc.Merge(c)
	right := NewSketch(GlobalSketchBits)
	right.Merge(a)
	right.Merge(bc)

	flat := NewSketch(GlobalSketchBits) // everything into one sketch
	for _, part := range parts {
		for _, v := range part {
			flat.Add(v)
		}
	}

	for _, other := range []*Sketch{right, flat} {
		if left.Count() != other.Count() || left.Min() != other.Min() || left.Max() != other.Max() {
			t.Fatalf("merge groupings disagree on count/min/max")
		}
		for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
			if left.Quantile(p) != other.Quantile(p) {
				t.Errorf("P%.0f differs across merge groupings: %d vs %d", p, left.Quantile(p), other.Quantile(p))
			}
		}
	}
}

// TestSketchFlatMemory pins the O(1)-memory claim directly: feeding
// 100x more observations from the same value range must not grow the
// sketch's bucket storage at all.
func TestSketchFlatMemory(t *testing.T) {
	gen := sketchTestDistributions()["exponential"]
	small := NewSketch(GlobalSketchBits)
	for _, v := range gen(sim.NewRNG(7), 10000) {
		small.Add(v)
	}
	footprint := small.MemoryFootprint()
	big := NewSketch(GlobalSketchBits)
	for _, v := range gen(sim.NewRNG(7), 1000000) {
		big.Add(v)
	}
	if big.MemoryFootprint() > footprint*2 {
		t.Errorf("footprint grew from %dB to %dB over 100x more samples", footprint, big.MemoryFootprint())
	}
	if big.MemoryFootprint() > 64*1024 {
		t.Errorf("footprint %dB exceeds the documented ~58KiB worst case", big.MemoryFootprint())
	}
}

// TestStreamIngestZeroAlloc is the steady-state regression gate: once
// the sketch's range and the window ring are warm, folding a sample
// into a streaming collector must not allocate.
func TestStreamIngestZeroAlloc(t *testing.T) {
	c := NewCollector(fabricCap())
	c.EnableStreaming(StreamConfig{Window: sim.Second, MaxWindows: 16})
	r := sim.NewRNG(9)
	sample := func(i int) ResponseSample {
		rt := sim.Duration(1e6 + r.Float64()*5e8)
		fin := sim.Time(i) * sim.Time(120*sim.Millisecond)
		return ResponseSample{AppID: i, Spec: "AN", Batch: 4, Arrival: fin - sim.Time(rt), Finish: fin, Response: rt, QueueDelay: rt / 10}
	}
	// Warm-up: cover the value range and cycle the ring through
	// rollover so every slot's sketch storage exists.
	for i := 0; i < 1000; i++ {
		c.RecordResponse(sample(i))
	}
	i := 1000
	allocs := testing.AllocsPerRun(5000, func() {
		c.RecordResponse(sample(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("warm streaming ingest allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestStreamWindowsRollover pins rollover semantics: a horizon far
// longer than Window*MaxWindows retains exactly the newest MaxWindows
// windows while the run-level sketch keeps every sample.
func TestStreamWindowsRollover(t *testing.T) {
	c := NewCollector(fabricCap())
	c.EnableStreaming(StreamConfig{Window: sim.Second, MaxWindows: 8})
	const total = 100
	for i := 0; i < total; i++ {
		fin := sim.Time(i) * sim.Time(sim.Second) // one app per window
		c.RecordResponse(ResponseSample{AppID: i, Spec: "AN", Finish: fin, Response: sim.Millisecond})
	}
	ws := c.Windows()
	if len(ws) != 8 {
		t.Fatalf("retained %d windows, want 8", len(ws))
	}
	if ws[0].Index != total-8 || ws[len(ws)-1].Index != total-1 {
		t.Errorf("retained windows [%d, %d], want [%d, %d]", ws[0].Index, ws[len(ws)-1].Index, total-8, total-1)
	}
	if got := c.Summarize().Apps; got != total {
		t.Errorf("run-level sketch has %d apps after rollover, want %d", got, total)
	}
	if fp := c.StreamFootprint(); fp > 128*1024 {
		t.Errorf("stream footprint %dB after rollover, want bounded", fp)
	}
}

// TestStreamSummaryMatchesExact feeds the same samples to an exact and
// a streaming collector: mean/min/max/queue must match exactly, the
// percentiles within the sketch's documented relative bound.
func TestStreamSummaryMatchesExact(t *testing.T) {
	gen := sketchTestDistributions()["bimodal"]
	vals := gen(sim.NewRNG(11), 20000)
	exact := NewCollector(fabricCap())
	stream := NewCollector(fabricCap())
	stream.EnableStreaming(StreamConfig{Window: sim.Second, MaxWindows: 32})
	for i, v := range vals {
		s := ResponseSample{AppID: i, Spec: "AN", Finish: sim.Time(i * 1e6), Response: sim.Duration(v), QueueDelay: sim.Duration(v / 7)}
		exact.RecordResponse(s)
		stream.RecordResponse(s)
	}
	es, ss := exact.Summarize(), stream.Summarize()
	if es.Apps != ss.Apps || es.MeanRT != ss.MeanRT || es.MinRT != ss.MinRT || es.MaxRT != ss.MaxRT || es.MeanQueue != ss.MeanQueue {
		t.Errorf("exact-tracked stats diverged: exact %+v stream %+v", es, ss)
	}
	for _, q := range []struct {
		name   string
		ex, st sim.Duration
	}{{"P50", es.P50, ss.P50}, {"P95", es.P95, ss.P95}, {"P99", es.P99, ss.P99}} {
		rel := math.Abs(float64(q.st-q.ex)) / float64(q.ex)
		if rel > 0.01 {
			t.Errorf("%s: stream %v vs exact %v (relative error %.4f > 0.01)", q.name, q.st, q.ex, rel)
		}
	}
	if len(stream.BySpec()) != 1 || stream.BySpec()[0].Count != len(vals) {
		t.Errorf("stream BySpec lost samples: %+v", stream.BySpec())
	}
}
