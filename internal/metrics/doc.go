// Package metrics collects and summarizes the quantities the paper
// evaluates: per-application response times (averages and P50/P95/P99
// tail latencies, Figs. 5-6), LUT/FF utilization time-integrals
// (Fig. 7 and the headline +35%/+29% claim), PR-contention counters
// feeding the D_switch metric, and migration accounting (Fig. 8).
//
// Summarize reuses a scratch buffer per Collector, so warm summaries
// allocate nothing; multi-board runs pool per-board samples through
// the same helpers to keep merged output deterministic.
package metrics
