// Package metrics collects and summarizes the quantities the paper
// evaluates: per-application response times (averages and P50/P95/P99
// tail latencies, Figs. 5-6), LUT/FF utilization time-integrals
// (Fig. 7 and the headline +35%/+29% claim), PR-contention counters
// feeding the D_switch metric, and migration accounting (Fig. 8).
//
// Summarize reuses a scratch buffer per Collector, so warm summaries
// allocate nothing; multi-board runs pool per-board samples through
// the same helpers to keep merged output deterministic.
//
// # Metrics modes
//
// A Collector runs in one of two modes:
//
//   - exact (the default): every ResponseSample is retained in
//     Responses and percentiles are computed over the sorted samples.
//     Memory grows linearly with the horizon, output is byte-identical
//     to every release since the seed — golden files pin it.
//
//   - stream (EnableStreaming): no sample is retained. Observations
//     fold into an HDR-style log-linear Sketch plus a fixed ring of
//     per-window sketches, so memory is O(1) in the number of
//     applications and a million-app horizon costs the same few
//     hundred KiB as a ten-thousand-app one.
//
// # Streaming invariants
//
// Exactness: Count, Sum (hence MeanRT), Min, Max, MeanQueue, the
// utilization integrals, and every counter (PR, preemption, migration,
// fault) are tracked exactly in stream mode — they match the exact
// pipeline bit for bit.
//
// Accuracy: only percentiles are approximate. A value lands in a
// bucket whose width is at most 2^-bits of its magnitude, so any
// quantile estimate is within a relative value error of 2^-7 ≈ 0.78%
// for the run-level sketch (GlobalSketchBits) and 2^-5 ≈ 3.1% for the
// per-window sketches (WindowSketchBits); rank error at P50/P95/P99
// is under 1% on realistic distributions (pinned by TestSketchRankError
// across uniform, exponential, bimodal, and MMPP-bursty inputs).
//
// Determinism: bucket counts are integers and merging adds them, so
// Merge is exactly associative and commutative — per-board and
// per-shard sketches fold into a fleet sketch in any grouping with
// byte-identical results. Stream-mode runs are byte-identical
// sequential vs RunMany vs the sharded farm executor.
//
// Rollover: the window ring keeps the newest MaxWindows windows.
// When the horizon advances past the ring, the oldest slot is reset
// in place (its sketch storage is recycled, so warm ingest allocates
// nothing) and samples older than the retained span fold into the
// run-level sketch only. Windows() returns at most MaxWindows entries
// regardless of horizon length.
package metrics
