package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"versaslot/internal/fabric"

	"versaslot/internal/sim"
)

func TestPercentileBasics(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(sorted, 0); got != 1 {
		t.Fatalf("P0=%v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("P100=%v", got)
	}
	if got := Percentile(sorted, 50); got != 5.5 {
		t.Fatalf("P50=%v, want 5.5 (interpolated)", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("single sample")
	}
	if Percentile([]float64{1, 2}, 50) != 1.5 {
		t.Fatal("two-sample median")
	}
}

// Properties: percentile lies within [min,max] and is monotone in p.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		sort.Float64s(vals)
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		va := Percentile(vals, a)
		vb := Percentile(vals, b)
		return va >= vals[0] && vb <= vals[len(vals)-1] && va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileOfDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	PercentileOf(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestCollectorSummary(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 100_000, FF: 200_000})
	for i := 1; i <= 100; i++ {
		c.RecordResponse(ResponseSample{
			AppID:    i,
			Response: sim.Duration(i) * sim.Millisecond,
			Finish:   sim.Time(i) * sim.Time(sim.Millisecond),
		})
	}
	s := c.Summarize()
	if s.Apps != 100 {
		t.Fatal("app count")
	}
	if s.MeanRT != sim.Duration(50500)*sim.Microsecond {
		t.Fatalf("mean %v", s.MeanRT)
	}
	if s.MinRT != sim.Millisecond || s.MaxRT != 100*sim.Millisecond {
		t.Fatalf("min/max %v/%v", s.MinRT, s.MaxRT)
	}
	if s.P95 < 90*sim.Millisecond || s.P95 > 100*sim.Millisecond {
		t.Fatalf("P95 %v", s.P95)
	}
	if s.P99 <= s.P95 {
		t.Fatal("P99 not above P95")
	}
}

func TestCollectorEmptySummary(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 1, FF: 1})
	s := c.Summarize()
	if s.Apps != 0 || s.MeanRT != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestUtilizationIntegral(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 100, FF: 200})
	// 50 LUT / 50 FF resident for 2s on a 100-LUT/200-FF board observed
	// over 4s: LUT = (50*2)/(100*4) = 0.25, FF = (50*2)/(200*4) = 0.125.
	c.AccumulateResident(fabric.ResVec{LUT: 50, FF: 50}, 2*sim.Second)
	c.RecordResponse(ResponseSample{Finish: sim.Time(4 * sim.Second)})
	lut, ff := c.Utilization()
	if lut != 0.25 {
		t.Fatalf("LUT util %v, want 0.25", lut)
	}
	if ff != 0.125 {
		t.Fatalf("FF util %v, want 0.125", ff)
	}
}

func TestBusyUtilizationSeparate(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 100, FF: 200})
	c.AccumulateResident(fabric.ResVec{LUT: 50, FF: 100}, 4*sim.Second)
	c.AccumulateBusy(fabric.ResVec{LUT: 50, FF: 100}, 1*sim.Second)
	c.RecordResponse(ResponseSample{Finish: sim.Time(4 * sim.Second)})
	rl, _ := c.Utilization()
	bl, _ := c.BusyUtilization()
	if bl >= rl {
		t.Fatalf("busy %v not below resident %v", bl, rl)
	}
}

func TestMeanResponse(t *testing.T) {
	if MeanResponse(nil) != 0 {
		t.Fatal("empty mean")
	}
	samples := []ResponseSample{
		{Response: 10 * sim.Millisecond},
		{Response: 30 * sim.Millisecond},
	}
	if MeanResponse(samples) != 20*sim.Millisecond {
		t.Fatal("mean")
	}
}

func TestBySpec(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 1, FF: 1})
	c.RecordResponse(ResponseSample{Spec: "IC", Response: 10 * sim.Millisecond})
	c.RecordResponse(ResponseSample{Spec: "IC", Response: 30 * sim.Millisecond})
	c.RecordResponse(ResponseSample{Spec: "AN", Response: 50 * sim.Millisecond})
	by := c.BySpec()
	if len(by) != 2 {
		t.Fatalf("specs %d", len(by))
	}
	// Sorted: AN before IC.
	if by[0].Spec != "AN" || by[1].Spec != "IC" {
		t.Fatalf("order %v", by)
	}
	if by[1].Count != 2 || by[1].MeanRT != 20*sim.Millisecond || by[1].MaxRT != 30*sim.Millisecond {
		t.Fatalf("IC breakdown %+v", by[1])
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s != 2 {
		t.Fatalf("std %v, want 2", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd")
	}
	if m, s := MeanStd([]float64{7}); m != 7 || s != 0 {
		t.Fatal("single MeanStd")
	}
}

// TestSummarizeRepeatable: repeated summaries are identical (sorting
// into the scratch buffer must not disturb the recorded samples) and,
// after the first call warms the buffer, allocation-free.
func TestSummarizeRepeatable(t *testing.T) {
	c := NewCollector(fabric.ResVec{LUT: 100, FF: 100})
	for i := 0; i < 500; i++ {
		c.RecordResponse(ResponseSample{
			Spec:     "IC",
			Response: sim.Duration(500-i) * sim.Millisecond,
			Finish:   sim.Time(i+1) * sim.Time(sim.Millisecond),
		})
	}
	first := c.Summarize()
	second := c.Summarize()
	if first != second {
		t.Fatalf("summaries diverge:\n%+v\n%+v", first, second)
	}
	if first.P50 > first.P95 || first.P95 > first.P99 || first.P99 > first.MaxRT {
		t.Fatalf("tail percentiles out of order: %+v", first)
	}
	allocs := testing.AllocsPerRun(100, func() { _ = c.Summarize() })
	if allocs > 0 {
		t.Fatalf("warm Summarize allocates %.2f allocs/op, want 0", allocs)
	}
	// The recorded samples must be untouched by the in-place sort.
	if c.Responses[0].Response != 500*sim.Millisecond {
		t.Fatal("Summarize disturbed the response samples")
	}
}

// TestSortedResponseValues: the shared buffer variant sorts into the
// caller's buffer and reuses its capacity.
func TestSortedResponseValues(t *testing.T) {
	samples := []ResponseSample{
		{Response: 30 * sim.Millisecond},
		{Response: 10 * sim.Millisecond},
		{Response: 20 * sim.Millisecond},
	}
	buf := make([]float64, 0, 8)
	vals := SortedResponseValues(samples, buf)
	if len(vals) != 3 || vals[0] != float64(10*sim.Millisecond) || vals[2] != float64(30*sim.Millisecond) {
		t.Fatalf("sorted values %v", vals)
	}
	if &vals[0] != &buf[:1][0] {
		t.Fatal("buffer not reused")
	}
	p50, p95, p99 := TailPercentiles(vals)
	if p50 != float64(20*sim.Millisecond) || p95 > p99 {
		t.Fatalf("percentiles %v %v %v", p50, p95, p99)
	}
}
