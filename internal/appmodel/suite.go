package appmodel

import (
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// This file defines the paper's benchmark application suite (Section
// IV). The five applications follow the Rosetta-style suite the paper
// (and Nimblock before it) uses: 3D Rendering (3 tasks), LeNet (6),
// Image Compression (6), AlexNet (6), Optical Flow (9). Per-task
// latencies and resource footprints are synthetic but calibrated: LUT/FF
// utilizations reproduce the implementation results of Fig. 7 (e.g.
// IC's DCT at 0.57 LUT utilization in a Little slot, 0.98 at
// synthesis), and latencies put PCAP partial-reconfiguration time in
// the same ratio to task execution the paper's contention analysis
// requires.
//
// The specs live in the model layer so both workload generation and
// the bitstream repository can reference them without depending on
// each other.

// lutFF builds a ResVec from Little-slot LUT/FF utilizations.
func lutFF(lutUtil, ffUtil float64, dsp, bram int) fabric.ResVec {
	return fabric.ResVec{
		LUT:  int(lutUtil*float64(fabric.LittleSlotCap.LUT) + 0.5),
		FF:   int(ffUtil*float64(fabric.LittleSlotCap.FF) + 0.5),
		DSP:  dsp,
		BRAM: bram,
	}
}

// suiteSynthFactor is the typical ratio of synthesis estimates to
// implementation results; Fig. 7 (right) shows IC's DCT at 0.98 in
// synthesis vs 0.57 after implementation.
const suiteSynthFactor = 1.72

func suiteTask(name string, ms int, lutUtil, ffUtil float64, dsp, bram int) TaskSpec {
	impl := lutFF(lutUtil, ffUtil, dsp, bram)
	return TaskSpec{
		Name:  name,
		Time:  sim.Duration(ms) * sim.Millisecond,
		Impl:  impl,
		Synth: impl.Scale(suiteSynthFactor),
	}
}

// The cross-task resource-sharing factors (eta) are calibrated so the
// measured 3-in-1 utilization increases reproduce Fig. 7 (left): the
// increase equals (1.5*eta - 1) since a Big slot has twice a Little
// slot's capacity.
//
//	IC : LUT +42.2%  FF +48.0%   ->  eta 0.948 / 0.987
//	AN : LUT +36.4%  FF +41.4%   ->  eta 0.909 / 0.943
//	3DR: LUT  +9.9%  FF +17.7%   ->  eta 0.733 / 0.785
//	OF : LUT  +9.6%  FF +14.1%   ->  eta 0.731 / 0.761

// ThreeDR is the 3D Rendering application (3 tasks).
var ThreeDR = &AppSpec{
	Name: "3DR",
	Tasks: []TaskSpec{
		suiteTask("projection", 67, 0.62, 0.50, 110, 16),
		suiteTask("rasterization", 56, 0.55, 0.46, 70, 22),
		suiteTask("fragment", 42, 0.50, 0.41, 54, 18),
	},
	EtaLUT:     0.733,
	EtaFF:      0.785,
	MonoFactor: 0.80,
	ItemBytes:  96 << 10,
}

// LeNet is the LeNet CNN (6 tasks). Its partitioning targets nearly
// full Little slots, so no task triple fits a Big slot: LeNet never
// bundles — which is why it is absent from Fig. 7.
var LeNet = &AppSpec{
	Name: "LeNet",
	Tasks: []TaskSpec{
		suiteTask("conv1", 50, 0.78, 0.62, 160, 24),
		suiteTask("pool1", 25, 0.70, 0.55, 20, 12),
		suiteTask("conv2", 59, 0.80, 0.64, 180, 28),
		suiteTask("pool2", 22, 0.68, 0.54, 20, 12),
		suiteTask("fc1", 42, 0.78, 0.62, 140, 30),
		suiteTask("fc2", 17, 0.66, 0.52, 60, 16),
	},
	EtaLUT:     0.95,
	EtaFF:      0.95,
	MonoFactor: 0.80,
	ItemBytes:  8 << 10,
}

// IC is the Image Compression application (6 tasks). Its first bundle
// (DCT+Quantize+BDQ) is the Fig. 7 (right) example: Little-slot LUT
// utilizations 0.57/0.38/0.28 (average 0.41) versus ~0.6 bundled.
var IC = &AppSpec{
	Name: "IC",
	Tasks: []TaskSpec{
		suiteTask("DCT", 56, 0.57, 0.47, 96, 18),
		suiteTask("Quantize", 31, 0.38, 0.31, 48, 8),
		suiteTask("BDQ", 25, 0.28, 0.24, 24, 6),
		suiteTask("ZigZag", 22, 0.33, 0.28, 8, 10),
		suiteTask("RLE", 36, 0.41, 0.35, 6, 12),
		suiteTask("Huffman", 45, 0.52, 0.44, 4, 20),
	},
	EtaLUT:     0.948,
	EtaFF:      0.987,
	MonoFactor: 0.80,
	ItemBytes:  64 << 10,
}

// AN is the AlexNet CNN (6 tasks).
var AN = &AppSpec{
	Name: "AN",
	Tasks: []TaskSpec{
		suiteTask("conv1", 78, 0.66, 0.52, 220, 30),
		suiteTask("conv2", 62, 0.58, 0.47, 180, 26),
		suiteTask("conv3", 50, 0.52, 0.42, 160, 22),
		suiteTask("conv4", 45, 0.49, 0.40, 150, 20),
		suiteTask("conv5", 45, 0.47, 0.38, 140, 20),
		suiteTask("fc", 56, 0.55, 0.45, 120, 34),
	},
	EtaLUT:     0.909,
	EtaFF:      0.943,
	MonoFactor: 0.80,
	ItemBytes:  16 << 10,
}

// OF is the Optical Flow application (9 tasks).
var OF = &AppSpec{
	Name: "OF",
	Tasks: []TaskSpec{
		suiteTask("gradXY", 31, 0.46, 0.38, 60, 12),
		suiteTask("gradZ", 28, 0.40, 0.33, 48, 10),
		suiteTask("gradWeight", 36, 0.44, 0.36, 56, 12),
		suiteTask("outerProduct", 42, 0.52, 0.43, 88, 16),
		suiteTask("tensorY", 36, 0.48, 0.40, 72, 14),
		suiteTask("tensorX", 31, 0.46, 0.38, 68, 14),
		suiteTask("flowCalc", 42, 0.55, 0.46, 96, 18),
		suiteTask("smooth", 36, 0.42, 0.35, 40, 12),
		suiteTask("output", 48, 0.38, 0.31, 24, 20),
	},
	EtaLUT:     0.731,
	EtaFF:      0.761,
	MonoFactor: 0.80,
	ItemBytes:  128 << 10,
}

// Suite returns the benchmark applications in the paper's order.
func Suite() []*AppSpec {
	return []*AppSpec{ThreeDR, LeNet, IC, AN, OF}
}

// SpecByName returns the named spec from the suite, or nil.
func SpecByName(name string) *AppSpec {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
