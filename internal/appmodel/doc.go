// Package appmodel defines applications as the schedulers see them: a
// named pipeline of tasks, instantiated at a point in time with a
// batch size, and executed stage by stage inside reconfigurable
// slots. It is the dependency floor of the model layers — workload
// generation and the bitstream repository both consume these specs
// without depending on each other.
//
// Terminology follows the paper: an application is partitioned
// offline into tasks sized for Little slots; a task is the basic
// execution unit of a slot; a batch is how many items (frames,
// images) flow through the whole pipeline; a 3-in-1 bundle is three
// consecutive tasks fused into a single Big-slot circuit.
package appmodel
