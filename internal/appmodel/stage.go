package appmodel

import (
	"fmt"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// BundleMode selects how a 3-in-1 bundle executes internally (Fig. 3).
type BundleMode int

const (
	// NoBundle marks a plain single-task stage.
	NoBundle BundleMode = iota
	// BundleParallel pipelines the three member tasks inside the Big
	// slot: initiation interval = Tmax, two-stage fill latency, total
	// batch time Tmax*(N+2).
	BundleParallel
	// BundleSerial runs the three members back to back per item:
	// per-item time T1+T2+T3, total (T1+T2+T3)*N.
	BundleSerial
)

func (m BundleMode) String() string {
	switch m {
	case NoBundle:
		return "task"
	case BundleParallel:
		return "par"
	case BundleSerial:
		return "ser"
	default:
		return fmt.Sprintf("BundleMode(%d)", int(m))
	}
}

// Stage is one schedulable pipeline step of an app: either a single task
// (Little slot) or a 3-in-1 bundle (Big slot). Schedulers place stages
// into slots, launch their items, and track completion here.
type Stage struct {
	App *App
	// Index is the stage's position in the app's pipeline.
	Index int
	// FirstTask and TaskCount identify the member tasks
	// (Spec.Tasks[FirstTask : FirstTask+TaskCount]).
	FirstTask, TaskCount int
	// Class is the slot-class name the stage's bitstream targets
	// ("Little", "Big", "Large", ...).
	Class string
	// Mode is the bundle execution mode (NoBundle for task stages).
	Mode BundleMode
	// BitstreamName keys the repository entry to load.
	BitstreamName string

	// Done counts completed items.
	Done int
	// InFlight reports whether an item is currently executing.
	InFlight bool
	// Slot is where the stage is resident (or being loaded); nil if not
	// placed.
	Slot *fabric.Slot
	// Loading reports whether a PR for this stage is in flight.
	Loading bool
	// LoadedAt records when the stage last became resident (for LRU
	// style decisions and traces).
	LoadedAt sim.Time

	// timeFirst and timeRest are the per-item service times: the first
	// item of a parallel bundle pays the pipeline fill (3*Tmax), the
	// rest the initiation interval (Tmax). Plain stages have
	// timeFirst == timeRest.
	timeFirst, timeRest sim.Duration
}

// ItemTime returns the service time of item idx (0-based).
func (s *Stage) ItemTime(idx int) sim.Duration {
	if idx == 0 {
		return s.timeFirst
	}
	return s.timeRest
}

// SteadyItemTime returns the steady-state initiation interval.
func (s *Stage) SteadyItemTime() sim.Duration { return s.timeRest }

// BatchTime returns the total service time for n items back to back.
func (s *Stage) BatchTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return s.timeFirst + sim.Duration(n-1)*s.timeRest
}

// Tasks returns the member TaskSpecs.
func (s *Stage) Tasks() []TaskSpec {
	return s.App.Spec.Tasks[s.FirstTask : s.FirstTask+s.TaskCount]
}

// Finished reports whether the stage has completed the app's batch.
func (s *Stage) Finished() bool { return s.Done >= s.App.Batch }

// Resident reports whether the stage is loaded in a slot and not mid-PR.
func (s *Stage) Resident() bool { return s.Slot != nil && !s.Loading }

// NextItemReady reports whether the next item's input is available:
// item Done of stage i needs item Done completed by stage i-1.
func (s *Stage) NextItemReady() bool {
	if s.Finished() || s.InFlight {
		return false
	}
	if s.Index == 0 {
		return true
	}
	prev := s.App.Stages[s.Index-1]
	return prev.Done > s.Done
}

// Evict detaches the stage from its slot (after preemption or when the
// stage finished and the slot is reused). The caller transitions the
// slot itself.
func (s *Stage) Evict() {
	s.Slot = nil
	s.Loading = false
}

// String identifies the stage in traces.
func (s *Stage) String() string {
	return fmt.Sprintf("%s/s%d(%s)", s.App, s.Index, s.Mode)
}

// ImplRes returns the stage's post-implementation resource usage: the
// task's own footprint for plain stages, or eta-scaled member sum for
// bundles (see AppSpec.EtaLUT/EtaFF).
func (s *Stage) ImplRes() fabric.ResVec {
	if s.Mode == NoBundle {
		return s.App.Spec.Tasks[s.FirstTask].Impl
	}
	var sum fabric.ResVec
	for _, t := range s.Tasks() {
		sum = sum.Add(t.Impl)
	}
	sum.LUT = int(float64(sum.LUT)*s.App.Spec.EtaLUT + 0.5)
	sum.FF = int(float64(sum.FF)*s.App.Spec.EtaFF + 0.5)
	return sum
}

// TaskStages builds the per-task (base slot class) execution plan and
// installs it on the app. class names the slot class every stage
// targets; timeScale scales item times (1.0 for slot execution; the
// exclusive baseline passes Spec.MonoFactor).
func TaskStages(a *App, class string, timeScale float64, bitName func(task int) string) []*Stage {
	// One contiguous backing array instead of per-stage allocations:
	// stage plans are built on every arrival (and rebuilt on rebind),
	// so this path is hot at farm scale.
	backing := make([]Stage, len(a.Spec.Tasks))
	stages := make([]*Stage, len(a.Spec.Tasks))
	for i, t := range a.Spec.Tasks {
		d := sim.Duration(float64(t.Time) * timeScale)
		backing[i] = Stage{
			App:           a,
			Index:         i,
			FirstTask:     i,
			TaskCount:     1,
			Class:         class,
			Mode:          NoBundle,
			BitstreamName: bitName(i),
			timeFirst:     d,
			timeRest:      d,
		}
		stages[i] = &backing[i]
	}
	a.Stages = stages
	return stages
}

// Bundle timing factors: tasks fused into one 3-in-1 circuit stream
// through on-chip FIFOs instead of the per-item DDR round-trips that
// inter-slot pipelines pay, so the effective initiation interval of a
// parallel bundle (and, more weakly, the member-to-member hand-off of
// a serial bundle) undercuts the raw task latencies. Calibrated so the
// Big.Little advantage matches Figs. 5 and 8.
const (
	BundleParallelFactor = 0.58
	BundleSerialFactor   = 0.80
)

// BundleStages builds the 3-in-1 (big-class slot) execution plan:
// tasks are grouped in consecutive triples; modes selects serial or
// parallel per bundle; class names the slot class the bundles target.
// The task count must be divisible by the bundle size (the paper's
// benchmark apps all are).
func BundleStages(a *App, class string, size int, modes []BundleMode, bitName func(bundle int, m BundleMode) string) []*Stage {
	k := len(a.Spec.Tasks)
	if size <= 0 || k%size != 0 {
		panic(fmt.Sprintf("appmodel: %d tasks not divisible by bundle size %d", k, size))
	}
	n := k / size
	if len(modes) != n {
		panic("appmodel: modes length mismatch")
	}
	// Contiguous backing, as in TaskStages.
	backing := make([]Stage, n)
	stages := make([]*Stage, n)
	for b := 0; b < n; b++ {
		st := &backing[b]
		*st = Stage{
			App:           a,
			Index:         b,
			FirstTask:     b * size,
			TaskCount:     size,
			Class:         class,
			Mode:          modes[b],
			BitstreamName: bitName(b, modes[b]),
		}
		st.timeFirst, st.timeRest = BundleTiming(a.Spec, size, b, modes[b])
		stages[b] = st
	}
	a.Stages = stages
	return stages
}

// BundleTiming returns the first-item and steady-state per-item service
// times of bundle b (of the given size) of spec under mode.
func BundleTiming(spec *AppSpec, size, b int, mode BundleMode) (first, rest sim.Duration) {
	members := spec.Tasks[b*size : (b+1)*size]
	var sum, max sim.Duration
	for _, t := range members {
		sum += t.Time
		if t.Time > max {
			max = t.Time
		}
	}
	switch mode {
	case BundleSerial:
		eff := sim.Duration(float64(sum) * BundleSerialFactor)
		return eff, eff
	case BundleParallel:
		// The first item pays the fill of the internal pipeline:
		// (size-1) extra initiation intervals.
		ii := sim.Duration(float64(max) * BundleParallelFactor)
		return sim.Duration(size) * ii, ii
	default:
		panic("appmodel: bundle timing needs a bundle mode")
	}
}

// ResetStages clears runtime execution state so the plan can be rebuilt
// (rebinding) or resumed after migration. Completed item counts are
// preserved — live migration does not redo work.
func ResetStages(a *App) {
	for _, st := range a.Stages {
		st.Slot = nil
		st.Loading = false
		st.InFlight = false
	}
}
