package appmodel

import (
	"fmt"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// TaskSpec describes one task of an application, as produced by the
// offline partitioning flow.
type TaskSpec struct {
	// Name identifies the task (e.g. "DCT").
	Name string
	// Time is the per-batch-item latency when the task executes in a
	// Little slot.
	Time sim.Duration
	// Impl is the post-implementation resource usage in a Little slot.
	Impl fabric.ResVec
	// Synth is the synthesis-time estimate (typically much higher;
	// Fig. 7 right shows DCT dropping from 0.98 to 0.57).
	Synth fabric.ResVec
}

// AppSpec is the static description of an application.
type AppSpec struct {
	// Name identifies the application (e.g. "IC").
	Name string
	// Tasks is the pipeline, in dependency order.
	Tasks []TaskSpec
	// EtaLUT and EtaFF are the cross-task resource-sharing factors of a
	// 3-in-1 bundle implementation: the bundle's usage is eta * (sum of
	// member usage). Calibrated per app to the implementation results
	// the paper reports in Fig. 7.
	EtaLUT, EtaFF float64
	// MonoFactor scales task times for the monolithic full-fabric
	// implementation used by the exclusive baseline (< 1: the
	// unpartitioned design avoids inter-slot buffering).
	MonoFactor float64
	// ItemBytes is the data volume of one batch item's buffers; it
	// prices DMA transfers during live migration.
	ItemBytes int64
}

// TaskCount returns the number of tasks in the pipeline.
func (s *AppSpec) TaskCount() int { return len(s.Tasks) }

// TotalItemTime returns the summed per-item latency of all tasks.
func (s *AppSpec) TotalItemTime() sim.Duration {
	var sum sim.Duration
	for _, t := range s.Tasks {
		sum += t.Time
	}
	return sum
}

// BottleneckTime returns the largest per-item task latency.
func (s *AppSpec) BottleneckTime() sim.Duration {
	var max sim.Duration
	for _, t := range s.Tasks {
		if t.Time > max {
			max = t.Time
		}
	}
	return max
}

// State is an application's lifecycle.
type State int

const (
	// StatePending means the app has not yet arrived.
	StatePending State = iota
	// StateWaiting means the app is in the candidate list awaiting slots.
	StateWaiting
	// StateReady means slots are allocated and tasks are in the ready list.
	StateReady
	// StateRunning means at least one stage has started executing.
	StateRunning
	// StateMigrating means the app is in flight between boards.
	StateMigrating
	// StateFinished means every batch item has passed every task.
	StateFinished
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateWaiting:
		return "waiting"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateMigrating:
		return "migrating"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// App is one arrived instance of an AppSpec.
type App struct {
	// ID is unique within a simulation run.
	ID int
	// Spec is the application's static description.
	Spec *AppSpec
	// Batch is the number of items flowing through the pipeline.
	Batch int
	// Arrival is when the app entered the system.
	Arrival sim.Time
	// Finish is when the last item left the last stage (valid when
	// State == StateFinished).
	Finish sim.Time

	// State is the current lifecycle state; schedulers own transitions.
	State State

	// Stages is the execution plan: per-task stages for Little slots or
	// bundled stages for Big slots. Built by a scheduler at binding time
	// and may be rebuilt on rebinding (before execution starts).
	Stages []*Stage

	// Started reports whether any stage has executed an item. Rebinding
	// is only legal before this (Algorithm 1 unbinds only apps that
	// have not started).
	Started bool
	// FirstStart is when the first item began executing (valid once
	// Started): Response = queueing delay (FirstStart-Arrival) plus
	// service (Finish-FirstStart).
	FirstStart sim.Time

	// Migrated counts cross-board migrations of this app.
	Migrated int
}

// NewApp returns an app in StatePending.
func NewApp(id int, spec *AppSpec, batch int, arrival sim.Time) *App {
	if batch <= 0 {
		panic("appmodel: batch must be positive")
	}
	return &App{ID: id, Spec: spec, Batch: batch, Arrival: arrival}
}

// QueueDelay returns how long the app waited before its first item
// executed; it panics if the app never started.
func (a *App) QueueDelay() sim.Duration {
	if !a.Started {
		panic(fmt.Sprintf("appmodel: app %d never started", a.ID))
	}
	return a.FirstStart.Sub(a.Arrival)
}

// ResponseTime returns Finish-Arrival; it panics if the app is not finished.
func (a *App) ResponseTime() sim.Duration {
	if a.State != StateFinished {
		panic(fmt.Sprintf("appmodel: app %d not finished", a.ID))
	}
	return a.Finish.Sub(a.Arrival)
}

// Done reports whether every stage has completed every item.
func (a *App) Done() bool {
	if len(a.Stages) == 0 {
		return false
	}
	for _, st := range a.Stages {
		if st.Done < a.Batch {
			return false
		}
	}
	return true
}

// RemainingItems returns the total number of item executions still owed
// across all stages.
func (a *App) RemainingItems() int {
	rem := 0
	for _, st := range a.Stages {
		rem += a.Batch - st.Done
	}
	return rem
}

// UnfinishedStages returns the number of stages with work left.
func (a *App) UnfinishedStages() int {
	n := 0
	for _, st := range a.Stages {
		if st.Done < a.Batch {
			n++
		}
	}
	return n
}

// String identifies the app in traces.
func (a *App) String() string {
	return fmt.Sprintf("%s#%d(b=%d)", a.Spec.Name, a.ID, a.Batch)
}
