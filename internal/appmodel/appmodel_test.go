package appmodel

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

func testSpec(times ...int) *AppSpec {
	spec := &AppSpec{Name: "T", EtaLUT: 0.9, EtaFF: 0.9, MonoFactor: 0.8, ItemBytes: 1024}
	for i, ms := range times {
		spec.Tasks = append(spec.Tasks, TaskSpec{
			Name: string(rune('a' + i)),
			Time: sim.Duration(ms) * sim.Millisecond,
			Impl: fabric.ResVec{LUT: 10000 * (i + 1), FF: 20000 * (i + 1)},
		})
	}
	return spec
}

func TestSpecAggregates(t *testing.T) {
	spec := testSpec(10, 30, 20)
	if spec.TaskCount() != 3 {
		t.Fatal("TaskCount")
	}
	if spec.TotalItemTime() != 60*sim.Millisecond {
		t.Fatalf("TotalItemTime %v", spec.TotalItemTime())
	}
	if spec.BottleneckTime() != 30*sim.Millisecond {
		t.Fatalf("BottleneckTime %v", spec.BottleneckTime())
	}
}

func TestNewAppValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero batch did not panic")
		}
	}()
	NewApp(1, testSpec(10), 0, 0)
}

func TestAppLifecycle(t *testing.T) {
	a := NewApp(1, testSpec(10, 20), 5, sim.Time(100*sim.Millisecond))
	if a.State != StatePending {
		t.Fatal("new app not pending")
	}
	TaskStages(a, "Little", 1.0, func(i int) string { return "bits" })
	if a.Done() {
		t.Fatal("fresh app done")
	}
	if a.RemainingItems() != 10 {
		t.Fatalf("remaining %d, want 10", a.RemainingItems())
	}
	if a.UnfinishedStages() != 2 {
		t.Fatal("unfinished stages")
	}
	a.Stages[0].Done = 5
	a.Stages[1].Done = 5
	if !a.Done() {
		t.Fatal("completed app not done")
	}
	a.State = StateFinished
	a.Finish = sim.Time(600 * sim.Millisecond)
	if a.ResponseTime() != 500*sim.Millisecond {
		t.Fatalf("response %v", a.ResponseTime())
	}
}

func TestResponseTimePanicsUnfinished(t *testing.T) {
	a := NewApp(1, testSpec(10), 5, 0)
	defer func() {
		if recover() == nil {
			t.Error("ResponseTime on unfinished app did not panic")
		}
	}()
	a.ResponseTime()
}

func TestTaskStages(t *testing.T) {
	a := NewApp(1, testSpec(10, 20, 30), 4, 0)
	stages := TaskStages(a, "Little", 1.0, func(i int) string { return "b" })
	if len(stages) != 3 {
		t.Fatal("stage count")
	}
	for i, st := range stages {
		if st.Index != i || st.FirstTask != i || st.TaskCount != 1 {
			t.Fatalf("stage %d identity wrong", i)
		}
		if st.Class != "Little" || st.Mode != NoBundle {
			t.Fatalf("stage %d class/mode wrong", i)
		}
		want := a.Spec.Tasks[i].Time
		if st.ItemTime(0) != want || st.ItemTime(3) != want {
			t.Fatalf("stage %d item time", i)
		}
	}
}

func TestTaskStagesTimeScale(t *testing.T) {
	a := NewApp(1, testSpec(100), 1, 0)
	stages := TaskStages(a, "Little", 0.8, func(i int) string { return "b" })
	if stages[0].ItemTime(0) != 80*sim.Millisecond {
		t.Fatalf("mono scaling: %v", stages[0].ItemTime(0))
	}
}

func TestBundleStagesParallelTiming(t *testing.T) {
	a := NewApp(1, testSpec(10, 30, 20), 8, 0)
	stages := BundleStages(a, "Big", 3, []BundleMode{BundleParallel},
		func(b int, m BundleMode) string { return "bundle" })
	if len(stages) != 1 {
		t.Fatal("bundle count")
	}
	st := stages[0]
	ii := sim.Duration(float64(30*sim.Millisecond) * BundleParallelFactor)
	if st.SteadyItemTime() != ii {
		t.Fatalf("steady II %v, want %v", st.SteadyItemTime(), ii)
	}
	if st.ItemTime(0) != 3*ii {
		t.Fatalf("first item %v, want fill %v", st.ItemTime(0), 3*ii)
	}
	// Total batch time: the paper's Tmax*(N+2) with the effective II.
	want := st.ItemTime(0) + 7*ii
	if st.BatchTime(8) != want {
		t.Fatalf("batch time %v, want %v", st.BatchTime(8), want)
	}
}

func TestBundleStagesSerialTiming(t *testing.T) {
	a := NewApp(1, testSpec(10, 30, 20), 5, 0)
	stages := BundleStages(a, "Big", 3, []BundleMode{BundleSerial},
		func(b int, m BundleMode) string { return "bundle" })
	st := stages[0]
	want := sim.Duration(float64(60*sim.Millisecond) * BundleSerialFactor)
	if st.ItemTime(0) != want || st.SteadyItemTime() != want {
		t.Fatalf("serial per-item %v/%v, want %v", st.ItemTime(0), st.SteadyItemTime(), want)
	}
}

func TestBundleStagesValidation(t *testing.T) {
	a := NewApp(1, testSpec(10, 20), 5, 0) // 2 tasks: not divisible by 3
	defer func() {
		if recover() == nil {
			t.Error("indivisible bundle did not panic")
		}
	}()
	BundleStages(a, "Big", 3, []BundleMode{BundleParallel}, func(int, BundleMode) string { return "" })
}

func TestNextItemReadyDependencies(t *testing.T) {
	a := NewApp(1, testSpec(10, 20), 3, 0)
	TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	s0, s1 := a.Stages[0], a.Stages[1]
	if !s0.NextItemReady() {
		t.Fatal("first stage should be ready")
	}
	if s1.NextItemReady() {
		t.Fatal("second stage ready without input")
	}
	s0.Done = 1
	if !s1.NextItemReady() {
		t.Fatal("second stage not ready after upstream item")
	}
	s1.Done = 1
	if s1.NextItemReady() {
		t.Fatal("stage ready without fresh input")
	}
	s1.InFlight = true
	s0.Done = 2
	if s1.NextItemReady() {
		t.Fatal("in-flight stage reported ready")
	}
	s1.InFlight = false
	s1.Done = 3
	if s1.NextItemReady() {
		t.Fatal("finished stage reported ready")
	}
}

func TestStageImplRes(t *testing.T) {
	a := NewApp(1, testSpec(10, 20, 30), 3, 0)
	TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	if a.Stages[1].ImplRes() != a.Spec.Tasks[1].Impl {
		t.Fatal("task stage resources")
	}
	BundleStages(a, "Big", 3, []BundleMode{BundleParallel}, func(int, BundleMode) string { return "b" })
	res := a.Stages[0].ImplRes()
	rawLUT := 10000 + 20000 + 30000
	want := int(float64(rawLUT)*0.9 + 0.5)
	if res.LUT != want {
		t.Fatalf("bundle LUT %d, want %d", res.LUT, want)
	}
}

func TestResetStagesPreservesProgress(t *testing.T) {
	a := NewApp(1, testSpec(10, 20), 4, 0)
	TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	slot := &fabric.Slot{ID: 0, Class: fabric.LittleClass}
	a.Stages[0].Slot = slot
	a.Stages[0].Done = 2
	a.Stages[0].InFlight = true
	a.Stages[0].Loading = true
	ResetStages(a)
	st := a.Stages[0]
	if st.Slot != nil || st.InFlight || st.Loading {
		t.Fatal("runtime state not cleared")
	}
	if st.Done != 2 {
		t.Fatal("completed work lost — migration must not redo items")
	}
}

func TestBundleTimingMatchesPaperFormula(t *testing.T) {
	// Paper criterion quantities: parallel total = Tmax*(N+2) and
	// serial total = (T1+T2+T3)*N, in effective (factored) time.
	spec := testSpec(40, 22, 18)
	n := 13
	pF, pR := BundleTiming(spec, 3, 0, BundleParallel)
	parTotal := pF + sim.Duration(n-1)*pR
	wantPar := sim.Duration(float64(40*sim.Millisecond)*BundleParallelFactor) * sim.Duration(n+2)
	if parTotal != wantPar {
		t.Fatalf("parallel total %v, want %v", parTotal, wantPar)
	}
	sF, sR := BundleTiming(spec, 3, 0, BundleSerial)
	serTotal := sF + sim.Duration(n-1)*sR
	wantSer := sim.Duration(float64(80*sim.Millisecond)*BundleSerialFactor) * sim.Duration(n)
	if serTotal != wantSer {
		t.Fatalf("serial total %v, want %v", serTotal, wantSer)
	}
}

func TestEvict(t *testing.T) {
	a := NewApp(1, testSpec(10), 2, 0)
	TaskStages(a, "Little", 1.0, func(int) string { return "b" })
	st := a.Stages[0]
	st.Slot = &fabric.Slot{}
	st.Loading = true
	st.Evict()
	if st.Slot != nil || st.Loading {
		t.Fatal("evict incomplete")
	}
}

func TestStateStrings(t *testing.T) {
	states := []State{StatePending, StateWaiting, StateReady, StateRunning, StateMigrating, StateFinished}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "" || seen[str] {
			t.Fatalf("bad state string %q", str)
		}
		seen[str] = true
	}
}
