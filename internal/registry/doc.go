// Package registry provides the generic string-keyed, alias-aware
// lookup table that backs the project's pluggable-component
// registries: scheduling policies (internal/sched), farm dispatchers
// (internal/cluster), and arrival processes (internal/workload). One
// implementation keeps the registration semantics identical
// everywhere — case-insensitive keys, first-registration-wins
// duplicate rejection, and stable registration-order listing for
// presentation.
//
// Registration is atomic (a duplicate name or alias binds nothing)
// and all methods are safe for concurrent use.
package registry
