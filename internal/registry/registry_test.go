package registry

import (
	"strings"
	"testing"
)

func TestRegisterLookupAliases(t *testing.T) {
	r := New[int]("test")
	if err := r.Register("alpha", 1, "a", "Alef"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("beta", 2); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for _, key := range []string{"alpha", "ALPHA", "a", "alef"} {
		v, ok := r.Lookup(key)
		if !ok || v != 1 {
			t.Errorf("Lookup(%q) = %d, %v; want 1, true", key, v, ok)
		}
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	r := New[string]("test")
	if err := r.Register("x", "first", "y"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Duplicate canonical name.
	if err := r.Register("x", "second"); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate name error = %v, want 'already registered'", err)
	}
	// Duplicate via an existing alias.
	err := r.Register("z", "third", "Y")
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("alias-duplicate error = %v, want 'already registered'", err)
	}
	// The failed registration must not leak its canonical name.
	if _, ok := r.Lookup("z"); ok {
		t.Error("failed registration leaked its canonical name")
	}
	if v, _ := r.Lookup("x"); v != "first" {
		t.Errorf("original binding clobbered: %q", v)
	}
}

func TestRegisterRejectsEmptyKeys(t *testing.T) {
	r := New[int]("test")
	if err := r.Register("", 1); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := r.Register("ok", 1, ""); err == nil {
		t.Error("Register with empty alias succeeded")
	}
	if _, ok := r.Lookup("ok"); ok {
		t.Error("registration with empty alias leaked its canonical name")
	}
}

func TestNamesAndValuesOrder(t *testing.T) {
	r := New[int]("test")
	for i, name := range []string{"c", "a", "b"} {
		if err := r.Register(name, i); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	want := []string{"c", "a", "b"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (registration order)", names, want)
		}
	}
	vals := r.Values()
	for i, v := range vals {
		if v != i {
			t.Fatalf("Values() = %v, want [0 1 2]", vals)
		}
	}
}
