package registry

import (
	"fmt"
	"strings"
	"sync"
)

// Registry maps case-insensitive names (and aliases) to values of
// type T. The zero value is not usable; construct with New. All
// methods are safe for concurrent use.
type Registry[T any] struct {
	scope string

	mu    sync.RWMutex
	byKey map[string]T
	order []string // canonical names, in registration order
}

// New returns an empty registry. scope prefixes error messages
// ("sched", "dispatch").
func New[T any](scope string) *Registry[T] {
	return &Registry[T]{scope: scope, byKey: make(map[string]T)}
}

// Register binds v to name and every alias. Registration is
// atomic: if any key (name or alias) is empty or already taken, no
// key is bound and an error is returned.
func (r *Registry[T]) Register(name string, v T, aliases ...string) error {
	if name == "" {
		return fmt.Errorf("%s: register: empty name", r.scope)
	}
	keys := make([]string, 0, 1+len(aliases))
	for _, k := range append([]string{name}, aliases...) {
		if k == "" {
			return fmt.Errorf("%s: register %q: empty alias", r.scope, name)
		}
		keys = append(keys, strings.ToLower(k))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if _, dup := r.byKey[k]; dup {
			return fmt.Errorf("%s: register %q: name %q already registered", r.scope, name, k)
		}
	}
	for _, k := range keys {
		r.byKey[k] = v
	}
	r.order = append(r.order, strings.ToLower(name))
	return nil
}

// Lookup resolves a value by name or alias (case-insensitive).
func (r *Registry[T]) Lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byKey[strings.ToLower(name)]
	return v, ok
}

// Names lists canonical names in registration order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Values lists registered values in registration order (one per
// canonical name; aliases do not repeat their value).
func (r *Registry[T]) Values() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byKey[name])
	}
	return out
}
