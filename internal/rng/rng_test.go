package rng

import (
	"testing"

	"versaslot/internal/sim"
)

// TestPairMatchesManualFork pins Pair to the exact byte-level split
// the workload generator has always performed: NewRNG(seed) then one
// Fork. GenerateArrival's sequences must not change under the helper.
func TestPairMatchesManualFork(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		root, fork := Pair(seed)
		ref := sim.NewRNG(seed)
		refFork := ref.Fork()
		for i := 0; i < 64; i++ {
			if got, want := root.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d: root draw %d: got %d, want %d", seed, i, got, want)
			}
			if got, want := fork.Uint64(), refFork.Uint64(); got != want {
				t.Fatalf("seed %d: fork draw %d: got %d, want %d", seed, i, got, want)
			}
		}
	}
}

// TestPairForkIndependence: draining one stream must not change what
// the other produces.
func TestPairForkIndependence(t *testing.T) {
	rootA, forkA := Pair(7)
	rootB, forkB := Pair(7)
	// Drain the fork of A heavily before touching its root.
	for i := 0; i < 1000; i++ {
		forkA.Uint64()
	}
	for i := 0; i < 32; i++ {
		if got, want := rootA.Uint64(), rootB.Uint64(); got != want {
			t.Fatalf("root draw %d perturbed by fork usage: got %d, want %d", i, got, want)
		}
	}
	// And vice versa: B's root is now 32 draws in; its fork must still
	// match a fresh fork stream.
	_, forkC := Pair(7)
	for i := 0; i < 32; i++ {
		if got, want := forkB.Uint64(), forkC.Uint64(); got != want {
			t.Fatalf("fork draw %d perturbed by root usage: got %d, want %d", i, got, want)
		}
	}
}

// TestStreamLabelIndependence: each label is its own stream; draws
// from one never shift another, and the same (seed, label) always
// replays identically.
func TestStreamLabelIndependence(t *testing.T) {
	a1 := Stream(3, "fault/0/slot-fail")
	b1 := Stream(3, "fault/1/pr-flaky")
	for i := 0; i < 500; i++ {
		a1.Uint64() // heavy use of one label...
	}
	b2 := Stream(3, "fault/1/pr-flaky")
	for i := 0; i < 64; i++ {
		if got, want := b1.Uint64(), b2.Uint64(); got != want {
			t.Fatalf("label stream perturbed at draw %d: got %d, want %d", i, got, want)
		}
	}
}

// TestStreamDistinct: different labels and different seeds must not
// collide on their opening draws.
func TestStreamDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for _, seed := range []uint64{1, 2, 3} {
		for _, label := range []string{"a", "b", "fault/0/board-fail", "fault/1/board-fail"} {
			v := Stream(seed, label).Uint64()
			key := label + "@" + string(rune(seed))
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %q and %q collide on first draw", prev, key)
			}
			seen[v] = key
		}
	}
}
