package rng

import "versaslot/internal/sim"

// Pair splits one seed into the root/fork stream pair the workload
// generator has always used: the fork consumes exactly one draw from
// the freshly-seeded root, so the two streams are independent but the
// split is a pure function of the seed. Callers that interleave two
// random axes (arrival instants vs. spec/batch picks) give each axis
// its own stream so varying one axis never perturbs the other.
func Pair(seed uint64) (root, fork *sim.RNG) {
	root = sim.NewRNG(seed)
	return root, root.Fork()
}

// fnv64a hashes a label with FNV-1a (64-bit) — stable across Go
// releases and platforms, like everything else in the sim RNG stack.
func fnv64a(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// Derive maps a (seed, label) pair onto a derived seed — the value
// Stream feeds NewRNG — for callers that need a plain seed to hand a
// generator (e.g. per-tenant workload generation, where each tenant's
// sequence is keyed by the scenario seed plus the tenant name, so
// adding or renaming one tenant never perturbs another's arrivals).
func Derive(seed uint64, label string) uint64 {
	return seed*0x9e3779b97f4a7c15 ^ fnv64a(label)
}

// Stream derives an independent labeled stream from a seed. Distinct
// labels over one seed yield unrelated streams, and — unlike a chain
// of Fork calls — adding or removing one labeled consumer never
// shifts the draws any other label sees. The fault-injection axis
// keys every injector's stream this way so one chaos knob can change
// without re-randomizing the rest.
func Stream(seed uint64, label string) *sim.RNG {
	// Golden-ratio mixing keeps nearby seeds apart before NewRNG's
	// SplitMix expansion; the label hash separates consumers.
	return sim.NewRNG(Derive(seed, label))
}
