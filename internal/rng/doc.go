// Package rng provides the repo's seed-splitting conventions on top
// of sim.RNG: Pair for the generator's root+fork split (two
// interleaved random axes off one seed) and Stream for labeled,
// order-independent substreams (each fault injector draws from its
// own label, so toggling one never reshuffles another).
//
// Both helpers are pure functions of their inputs and build only on
// sim.NewRNG/Fork, so every stream is deterministic across platforms
// and Go releases — the property the golden tests and the twice-run
// CI suite pin.
package rng
