// Package trace provides structured event recording for simulations:
// typed events (PR, execution, lifecycle) with a bounded in-memory
// recorder, and renderers that turn a recording into a per-slot
// timeline — the textual equivalent of the paper's Fig. 2 schematics.
package trace
