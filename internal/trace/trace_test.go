package trace

import (
	"strings"
	"testing"

	"versaslot/internal/sim"
)

func TestRecorderOrder(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 30, Kind: ExecDone, Slot: 0, App: "a", Item: 0})
	r.Record(Event{At: 10, Kind: PRRequest, Slot: 0, App: "a", Item: -1})
	r.Record(Event{At: 20, Kind: ExecStart, Slot: 0, App: "a", Item: 0})
	events := r.Events()
	if len(events) != 3 {
		t.Fatal("event count")
	}
	if events[0].Kind != PRRequest || events[2].Kind != ExecDone {
		t.Fatal("events not time-ordered")
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: sim.Time(i), Kind: ExecStart})
	}
	if r.Len() != 2 {
		t.Fatalf("len %d, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
}

func TestCountByKind(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: ExecStart})
	r.Record(Event{Kind: ExecStart})
	r.Record(Event{Kind: PRDone})
	c := r.CountByKind()
	if c[ExecStart] != 2 || c[PRDone] != 1 {
		t.Fatalf("counts %v", c)
	}
}

func TestWriteLog(t *testing.T) {
	r := NewRecorder(1)
	r.Record(Event{At: sim.Time(5 * sim.Millisecond), Kind: PRDone, Slot: 3, App: "IC#1", Stage: 2, Wait: sim.Millisecond})
	r.Record(Event{At: 0, Kind: ExecStart}) // dropped
	var b strings.Builder
	r.WriteLog(&b)
	out := b.String()
	if !strings.Contains(out, "pr-done") || !strings.Contains(out, "slot=3") {
		t.Fatalf("log content: %q", out)
	}
	if !strings.Contains(out, "1 events dropped") {
		t.Fatal("drop notice missing")
	}
}

func TestTimelineRender(t *testing.T) {
	r := NewRecorder(0)
	ms := func(v int) sim.Time { return sim.Time(v) * sim.Time(sim.Millisecond) }
	r.Record(Event{At: ms(0), Kind: PRRequest, Slot: 0, App: "a", Item: -1})
	r.Record(Event{At: ms(10), Kind: PRDone, Slot: 0, App: "a", Item: -1})
	r.Record(Event{At: ms(10), Kind: ExecStart, Slot: 0, App: "a", Item: 0})
	r.Record(Event{At: ms(50), Kind: ExecDone, Slot: 0, App: "a", Item: 0})
	r.Record(Event{At: ms(100), Kind: ExecStart, Slot: 1, App: "b", Item: 0})
	r.Record(Event{At: ms(200), Kind: ExecDone, Slot: 1, App: "b", Item: 0})
	var b strings.Builder
	Timeline{Buckets: 40}.Render(&b, r)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 slots
		t.Fatalf("timeline lines: %q", out)
	}
	if !strings.Contains(lines[1], "~") || !strings.Contains(lines[1], "#") {
		t.Fatalf("slot 0 row missing load/exec marks: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#") {
		t.Fatalf("slot 1 row missing exec marks: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	var b strings.Builder
	Timeline{}.Render(&b, NewRecorder(0))
	if !strings.Contains(b.String(), "no events") {
		t.Fatal("empty timeline output")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: AppArrive})
	r.Record(Event{Kind: AppFinish})
	var b strings.Builder
	r.Summarize(&b)
	if !strings.Contains(b.String(), "arrive=1") || !strings.Contains(b.String(), "finish=1") {
		t.Fatalf("summary: %q", b.String())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{PRRequest, PRDone, ExecStart, ExecDone, AppArrive, AppFinish, Migrate}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind string %q", s)
		}
		seen[s] = true
	}
}
