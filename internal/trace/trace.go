package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"versaslot/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	// PRRequest: a partial reconfiguration was issued.
	PRRequest Kind = iota
	// PRDone: the bitstream finished loading.
	PRDone
	// ExecStart: a batch item began executing in a slot.
	ExecStart
	// ExecDone: a batch item completed.
	ExecDone
	// AppArrive: an application entered the system.
	AppArrive
	// AppFinish: an application completed its batch.
	AppFinish
	// Migrate: an application moved between boards.
	Migrate
)

func (k Kind) String() string {
	switch k {
	case PRRequest:
		return "pr-req"
	case PRDone:
		return "pr-done"
	case ExecStart:
		return "exec"
	case ExecDone:
		return "done"
	case AppArrive:
		return "arrive"
	case AppFinish:
		return "finish"
	case Migrate:
		return "migrate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	// Slot is the slot ID, or -1 when not slot-related.
	Slot int
	// App and Stage identify the subject ("IC#3", stage 2).
	App   string
	Stage int
	// Item is the batch item index for Exec* events, -1 otherwise.
	Item int
	// Wait is the queueing delay for PRDone events.
	Wait sim.Duration
}

// Recorder collects events up to a bound (0 = unbounded). The zero
// value records nothing; construct with NewRecorder.
type Recorder struct {
	events  []Event
	max     int
	dropped int
}

// NewRecorder returns a recorder holding up to max events (0 = no cap).
func NewRecorder(max int) *Recorder {
	return &Recorder{max: max}
}

// Record appends an event, dropping it if the recorder is full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.max > 0 && len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recording in time order (stable for equal times).
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dropped reports how many events exceeded the cap.
func (r *Recorder) Dropped() int { return r.dropped }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// CountByKind tallies events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// WriteLog renders the recording as one line per event.
func (r *Recorder) WriteLog(w io.Writer) {
	for _, e := range r.Events() {
		switch e.Kind {
		case PRRequest:
			fmt.Fprintf(w, "%12.3fms  %-7s slot=%d %s/s%d\n",
				e.At.Milliseconds(), e.Kind, e.Slot, e.App, e.Stage)
		case PRDone:
			fmt.Fprintf(w, "%12.3fms  %-7s slot=%d %s/s%d wait=%v\n",
				e.At.Milliseconds(), e.Kind, e.Slot, e.App, e.Stage, e.Wait)
		case ExecStart, ExecDone:
			fmt.Fprintf(w, "%12.3fms  %-7s slot=%d %s/s%d item=%d\n",
				e.At.Milliseconds(), e.Kind, e.Slot, e.App, e.Stage, e.Item)
		case Migrate:
			fmt.Fprintf(w, "%12.3fms  %-7s %s\n", e.At.Milliseconds(), e.Kind, e.App)
		default:
			fmt.Fprintf(w, "%12.3fms  %-7s %s\n", e.At.Milliseconds(), e.Kind, e.App)
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(w, "... %d events dropped (recorder cap)\n", r.dropped)
	}
}

// Timeline renders a Gantt-style per-slot view: one row per slot,
// one column per time bucket; each cell shows the app occupying the
// slot ('#' executing, '~' loading, '.' idle-resident, ' ' empty).
type Timeline struct {
	// Buckets is the number of time columns (default 100).
	Buckets int
	// Width truncates app labels in the legend.
	Width int
}

// Render draws the timeline for the recording.
func (tl Timeline) Render(w io.Writer, r *Recorder) {
	events := r.Events()
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	buckets := tl.Buckets
	if buckets <= 0 {
		buckets = 100
	}
	end := events[len(events)-1].At
	if end == 0 {
		end = 1
	}
	// Collect slot IDs.
	slotSet := map[int]bool{}
	for _, e := range events {
		if e.Slot >= 0 {
			slotSet[e.Slot] = true
		}
	}
	slots := make([]int, 0, len(slotSet))
	for s := range slotSet {
		slots = append(slots, s)
	}
	sort.Ints(slots)

	bucketOf := func(at sim.Time) int {
		b := int(int64(at) * int64(buckets) / int64(end))
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}

	// Paint per-slot state changes over buckets.
	rows := make(map[int][]byte)
	for _, s := range slots {
		row := make([]byte, buckets)
		for i := range row {
			row[i] = ' '
		}
		rows[s] = row
	}
	type slotState struct {
		ch    byte
		since sim.Time
	}
	cur := map[int]slotState{}
	paint := func(slot int, upto sim.Time) {
		st, ok := cur[slot]
		if !ok || st.ch == ' ' {
			return
		}
		from, to := bucketOf(st.since), bucketOf(upto)
		for i := from; i <= to && i < buckets; i++ {
			rows[slot][i] = st.ch
		}
	}
	for _, e := range events {
		if e.Slot < 0 {
			continue
		}
		switch e.Kind {
		case PRRequest:
			paint(e.Slot, e.At)
			cur[e.Slot] = slotState{'~', e.At}
		case PRDone:
			paint(e.Slot, e.At)
			cur[e.Slot] = slotState{'.', e.At}
		case ExecStart:
			paint(e.Slot, e.At)
			cur[e.Slot] = slotState{'#', e.At}
		case ExecDone:
			paint(e.Slot, e.At)
			cur[e.Slot] = slotState{'.', e.At}
		}
	}
	for _, s := range slots {
		paint(s, end)
	}

	fmt.Fprintf(w, "timeline: 0 .. %.1fms  (~ loading, # executing, . resident idle)\n",
		end.Milliseconds())
	for _, s := range slots {
		fmt.Fprintf(w, "slot %2d |%s|\n", s, string(rows[s]))
	}
}

// Summarize prints headline counts for a recording.
func (r *Recorder) Summarize(w io.Writer) {
	counts := r.CountByKind()
	var keys []int
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), counts[Kind(k)]))
	}
	fmt.Fprintf(w, "events: %s\n", strings.Join(parts, " "))
}
