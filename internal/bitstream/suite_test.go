package bitstream

import (
	"sync"
	"testing"

	"versaslot/internal/fabric"
)

// TestSuiteRepoShared: every caller gets the same frozen instance.
func TestSuiteRepoShared(t *testing.T) {
	a := SuiteRepo()
	b := SuiteRepo()
	if a != b {
		t.Fatal("SuiteRepo returned distinct repositories")
	}
	if !a.Frozen() {
		t.Fatal("suite repository published unfrozen")
	}
	if a.Len() == 0 {
		t.Fatal("suite repository is empty")
	}
	// The suite must cover what engines resolve at runtime: static
	// regions for every registered platform.
	for _, p := range fabric.Platforms() {
		if _, err := a.Get(StaticName(p.Name)); err != nil {
			t.Fatalf("suite repo missing %s: %v", StaticName(p.Name), err)
		}
	}
}

// TestSuiteRepoImmutable: mutation after publication panics — the
// repository is shared read-only by every board and goroutine.
func TestSuiteRepoImmutable(t *testing.T) {
	repo := SuiteRepo()
	defer func() {
		if recover() == nil {
			t.Fatal("Put into the frozen suite repository did not panic")
		}
	}()
	repo.Put(&Bitstream{Name: "rogue/full"})
}

// TestFreezeStopsPut: the publication barrier on any repository.
func TestFreezeStopsPut(t *testing.T) {
	repo := NewRepository()
	repo.Put(&Bitstream{Name: "ok"})
	repo.Freeze()
	if !repo.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put after Freeze did not panic")
		}
	}()
	repo.Put(&Bitstream{Name: "late"})
}

// TestSuiteRepoConcurrentReads: concurrent first-touch and reads race
// cleanly (run under -race).
func TestSuiteRepoConcurrentReads(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			repo := SuiteRepo()
			for _, name := range repo.Names() {
				if repo.MustGet(name) == nil {
					t.Error("nil bitstream in suite repo")
					return
				}
			}
		}()
	}
	wg.Wait()
}
