package bitstream

import (
	"fmt"

	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
)

// Generator models the paper's automated Vivado TCL flow: for every
// application it emits one partial bitstream per (task, slot class), the
// serial and parallel 3-in-1 bundle bitstreams for every feasible task
// triple on every class large enough to hold them, a monolithic
// full-fabric bitstream (for the exclusive baseline), and static-region
// bitstreams for every platform.
type Generator struct {
	Size SizeModel
	// BundleSize is the tasks-per-bundle count (the paper fixes 3).
	BundleSize int
	// Classes is the slot-class set partials are generated for; nil
	// means every class of every registered platform.
	Classes []fabric.SlotClass
}

// NewGenerator returns a generator with the default size model covering
// the registered platforms' classes.
func NewGenerator() *Generator {
	return &Generator{Size: DefaultSizeModel(), BundleSize: 3}
}

func (g *Generator) classes() []fabric.SlotClass {
	if g.Classes != nil {
		return g.Classes
	}
	return fabric.RegisteredClasses()
}

// GenerateAll populates repo for every spec plus the per-platform
// static bitstreams.
func (g *Generator) GenerateAll(repo *Repository, specs []*appmodel.AppSpec) {
	for _, s := range specs {
		g.GenerateApp(repo, s)
	}
	for _, p := range fabric.Platforms() {
		repo.Put(&Bitstream{
			Name:  StaticName(p.Name),
			Kind:  Static,
			Bytes: g.Size.FullBytes,
		})
	}
}

// GenerateApp emits every bitstream for one application.
func (g *Generator) GenerateApp(repo *Repository, spec *appmodel.AppSpec) {
	classes := g.classes()
	// Per-task partials, one per slot class the task fits. A task
	// occupies the same circuit either way; a larger-class variant just
	// configures the larger region (and so costs a longer PCAP load).
	for _, t := range spec.Tasks {
		for _, class := range classes {
			if !t.Impl.FitsIn(class.Cap) {
				continue // the circuit does not fit this region
			}
			repo.Put(&Bitstream{
				Name:  TaskName(spec.Name, t.Name, class.Name),
				Kind:  Partial,
				Slot:  class.Name,
				Bytes: g.Size.ClassBytes(class),
				Impl:  t.Impl,
				Synth: t.Synth,
			})
		}
	}
	// Bundle bitstreams for each feasible consecutive triple, per class
	// large enough to hold the consolidated implementation.
	if len(spec.Tasks)%g.BundleSize == 0 {
		n := len(spec.Tasks) / g.BundleSize
		for b := 0; b < n; b++ {
			impl, synth := g.BundleRes(spec, b)
			for _, class := range classes {
				if !impl.FitsIn(class.Cap) {
					continue // over-subscribed triple: no bundle bitstream
				}
				for _, mode := range []string{"par", "ser"} {
					repo.Put(&Bitstream{
						Name:  BundleName(spec.Name, b, mode, class.Name),
						Kind:  Partial,
						Slot:  class.Name,
						Bytes: g.Size.ClassBytes(class),
						Impl:  impl,
						Synth: synth,
					})
				}
			}
		}
	}
	// Monolithic full-fabric bitstream for the exclusive baseline.
	var implSum fabric.ResVec
	for _, t := range spec.Tasks {
		implSum = implSum.Add(t.Impl)
	}
	repo.Put(&Bitstream{
		Name:  FullName(spec.Name),
		Kind:  Full,
		Bytes: g.Size.FullBytes,
		Impl:  implSum,
		Synth: implSum.Scale(synthFactorGuess),
	})
}

// synthFactorGuess mirrors workload's synthesis/implementation ratio for
// derived bitstreams whose members already carry exact Synth values.
const synthFactorGuess = 1.72

// BundleRes returns the implementation and synthesis resource usage of
// bundle b of spec: the eta-scaled sum of its members' usage (the
// implementation consolidates shared interfaces and buffers; eta is
// calibrated per application to the paper's Fig. 7 results).
func (g *Generator) BundleRes(spec *appmodel.AppSpec, b int) (impl, synth fabric.ResVec) {
	lo := b * g.BundleSize
	hi := lo + g.BundleSize
	if lo < 0 || hi > len(spec.Tasks) {
		panic(fmt.Sprintf("bitstream: bundle %d out of range for %s", b, spec.Name))
	}
	for _, t := range spec.Tasks[lo:hi] {
		impl = impl.Add(t.Impl)
		synth = synth.Add(t.Synth)
	}
	scale := func(v fabric.ResVec) fabric.ResVec {
		v.LUT = int(float64(v.LUT)*spec.EtaLUT + 0.5)
		v.FF = int(float64(v.FF)*spec.EtaFF + 0.5)
		return v
	}
	return scale(impl), scale(synth)
}
