package bitstream

// Cache models the DDR-resident bitstream cache the PR server maintains:
// the first load of a bitstream streams it from the SD card (slow); once
// cached, later loads only pay the PCAP transfer. A bounded LRU keeps
// the model honest about DDR capacity.
type Cache struct {
	capacity int
	entries  map[string]*cacheNode
	head     *cacheNode // most recently used
	tail     *cacheNode // least recently used
	hits     uint64
	misses   uint64
}

type cacheNode struct {
	name       string
	prev, next *cacheNode
}

// NewCache returns an LRU cache holding up to capacity bitstreams.
// capacity <= 0 disables caching (every load misses).
func NewCache(capacity int) *Cache {
	return &Cache{capacity: capacity, entries: make(map[string]*cacheNode)}
}

// Lookup reports whether name is cached, inserting it (and evicting the
// LRU entry if full) when it is not. This matches the PR server's flow:
// a miss triggers the SD read that fills the cache.
func (c *Cache) Lookup(name string) (hit bool) {
	if c.capacity <= 0 {
		c.misses++
		return false
	}
	if n, ok := c.entries[name]; ok {
		c.hits++
		c.moveToFront(n)
		return true
	}
	c.misses++
	n := &cacheNode{name: name}
	c.entries[name] = n
	c.pushFront(n)
	if len(c.entries) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.name)
	}
	return false
}

// Warm inserts name without counting a miss — used by the pre-warming
// step of cross-board switching, which stages bitstreams on the target
// board ahead of migration.
func (c *Cache) Warm(name string) {
	if c.capacity <= 0 {
		return
	}
	if n, ok := c.entries[name]; ok {
		c.moveToFront(n)
		return
	}
	n := &cacheNode{name: name}
	c.entries[name] = n
	c.pushFront(n)
	if len(c.entries) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.name)
	}
}

// Contains reports whether name is cached without touching LRU order.
func (c *Cache) Contains(name string) bool {
	_, ok := c.entries[name]
	return ok
}

// Len returns the number of cached bitstreams.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

func (c *Cache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
