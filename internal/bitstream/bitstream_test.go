package bitstream

import (
	"testing"
	"testing/quick"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

func TestSizeModelProportional(t *testing.T) {
	m := DefaultSizeModel()
	little := m.PartialBytes(fabric.LittleSlotCap)
	big := m.PartialBytes(fabric.BigSlotCap)
	if little <= 0 {
		t.Fatal("non-positive partial size")
	}
	// A Big slot has exactly 2x the LUTs, so its partial is ~2x.
	ratio := float64(big) / float64(little)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("big/little partial ratio %.3f, want ~2", ratio)
	}
	if little >= m.FullBytes {
		t.Fatal("partial larger than full bitstream")
	}
}

func TestLoadTime(t *testing.T) {
	b := &Bitstream{Name: "x", Bytes: 128 << 20}
	d := LoadTime(b, 128<<20, 0)
	if d != sim.Second {
		t.Fatalf("128MB at 128MB/s took %v, want 1s", d)
	}
	d = LoadTime(b, 128<<20, 80*sim.Microsecond)
	if d != sim.Second+80*sim.Microsecond {
		t.Fatalf("fixed overhead not added: %v", d)
	}
}

func TestLoadTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	LoadTime(&Bitstream{Bytes: 1}, 0, 0)
}

func TestRepository(t *testing.T) {
	r := NewRepository()
	if r.Len() != 0 {
		t.Fatal("new repo not empty")
	}
	if _, err := r.Get("missing"); err == nil {
		t.Fatal("Get on missing name succeeded")
	}
	b := &Bitstream{Name: "a/b@Little", Bytes: 100}
	r.Put(b)
	got, err := r.Get("a/b@Little")
	if err != nil || got != b {
		t.Fatalf("Get: %v %v", got, err)
	}
	// Replacement.
	b2 := &Bitstream{Name: "a/b@Little", Bytes: 200}
	r.Put(b2)
	if r.MustGet("a/b@Little").Bytes != 200 {
		t.Fatal("Put did not replace")
	}
	if r.Len() != 1 {
		t.Fatal("replacement changed length")
	}
}

func TestRepositoryMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing name did not panic")
		}
	}()
	NewRepository().MustGet("nope")
}

func TestNameBuilders(t *testing.T) {
	if TaskName("IC", "DCT", "Little") != "IC/DCT@Little" {
		t.Fatal("TaskName format")
	}
	if BundleName("IC", 0, "par", "Big") != "IC/bundle0-par@Big" {
		t.Fatal("BundleName format")
	}
	if FullName("IC") != "IC/full" {
		t.Fatal("FullName format")
	}
	if StaticName(fabric.ZCU216BigLittle) != "static/zcu216-big-little" {
		t.Fatal("StaticName format")
	}
}

func TestRepositoryNamesSorted(t *testing.T) {
	r := NewRepository()
	r.Put(&Bitstream{Name: "c"})
	r.Put(&Bitstream{Name: "a"})
	r.Put(&Bitstream{Name: "b"})
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names not sorted: %v", names)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	if c.Lookup("a") {
		t.Fatal("cold cache hit")
	}
	if !c.Lookup("a") {
		t.Fatal("warm entry missed")
	}
	c.Lookup("b")
	c.Lookup("a") // refresh a: now b is LRU
	c.Lookup("c") // evicts b
	if c.Contains("b") {
		t.Fatal("LRU entry not evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("wrong entries evicted")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCacheWarmDoesNotCountMiss(t *testing.T) {
	c := NewCache(4)
	c.Warm("x")
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("Warm affected stats")
	}
	if !c.Lookup("x") {
		t.Fatal("warmed entry missed")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 3; i++ {
		if c.Lookup("x") {
			t.Fatal("disabled cache hit")
		}
	}
	c.Warm("x")
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// Property: the cache never holds more than its capacity.
func TestCacheBounded(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCache(4)
		for _, op := range ops {
			name := string(rune('a' + op%16))
			if op%3 == 0 {
				c.Warm(name)
			} else {
				c.Lookup(name)
			}
			if c.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
