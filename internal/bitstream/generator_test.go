package bitstream

import (
	"strings"
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// genTestSpec builds a small spec with controllable utilizations.
func genTestSpec(name string, utils []float64, eta float64) *appmodel.AppSpec {
	spec := &appmodel.AppSpec{Name: name, EtaLUT: eta, EtaFF: eta, MonoFactor: 0.8}
	for i, u := range utils {
		spec.Tasks = append(spec.Tasks, appmodel.TaskSpec{
			Name: string(rune('a' + i)),
			Time: 10 * sim.Millisecond,
			Impl: fabric.ResVec{
				LUT: int(u * float64(fabric.LittleSlotCap.LUT)),
				FF:  int(u * float64(fabric.LittleSlotCap.FF)),
			},
		})
	}
	return spec
}

func TestGenerateAppEmitsAllBitstreams(t *testing.T) {
	spec := genTestSpec("X", []float64{0.4, 0.3, 0.2, 0.5, 0.4, 0.3}, 0.9)
	repo := NewRepository()
	NewGenerator().GenerateApp(repo, spec)

	// One partial per (task, class) the task fits.
	for _, task := range spec.Tasks {
		for _, class := range []string{"Little", "Big"} {
			if _, err := repo.Get(TaskName("X", task.Name, class)); err != nil {
				t.Errorf("missing %s", TaskName("X", task.Name, class))
			}
		}
	}
	// Two bundles, each with par and ser variants, on the Big class.
	for b := 0; b < 2; b++ {
		for _, mode := range []string{"par", "ser"} {
			if _, err := repo.Get(BundleName("X", b, mode, "Big")); err != nil {
				t.Errorf("missing %s", BundleName("X", b, mode, "Big"))
			}
		}
	}
	// Monolithic full bitstream.
	if _, err := repo.Get(FullName("X")); err != nil {
		t.Error("missing full bitstream")
	}
}

func TestGenerateSkipsOversubscribedBundles(t *testing.T) {
	// Three tasks at 0.8 Little-utilization each: the triple sums to
	// 2.4 Little units > 2.0 even before eta, so no bundle exists.
	spec := genTestSpec("Fat", []float64{0.8, 0.8, 0.8}, 1.0)
	repo := NewRepository()
	NewGenerator().GenerateApp(repo, spec)
	if _, err := repo.Get(BundleName("Fat", 0, "par", "Big")); err == nil {
		t.Fatal("oversubscribed bundle generated")
	}
	// Task partials still exist.
	if _, err := repo.Get(TaskName("Fat", "a", "Little")); err != nil {
		t.Fatal("task partial missing")
	}
}

func TestGenerateAllEmitsStatics(t *testing.T) {
	repo := NewRepository()
	NewGenerator().GenerateAll(repo, []*appmodel.AppSpec{genTestSpec("Y", []float64{0.3, 0.3, 0.3}, 0.9)})
	for _, p := range fabric.Platforms() {
		if _, err := repo.Get(StaticName(p.Name)); err != nil {
			t.Errorf("missing static bitstream for %v", p.Name)
		}
	}
}

func TestBundleResEtaScaling(t *testing.T) {
	spec := genTestSpec("Z", []float64{0.5, 0.4, 0.3}, 0.9)
	g := NewGenerator()
	impl, _ := g.BundleRes(spec, 0)
	var rawSum fabric.ResVec
	for _, task := range spec.Tasks {
		rawSum = rawSum.Add(task.Impl)
	}
	wantLUT := int(float64(rawSum.LUT)*0.9 + 0.5)
	if impl.LUT != wantLUT {
		t.Fatalf("bundle LUT %d, want %d (eta-scaled)", impl.LUT, wantLUT)
	}
}

func TestBundleResOutOfRangePanics(t *testing.T) {
	spec := genTestSpec("W", []float64{0.3, 0.3, 0.3}, 0.9)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bundle did not panic")
		}
	}()
	NewGenerator().BundleRes(spec, 1)
}

func TestBigPartialLargerThanLittle(t *testing.T) {
	spec := genTestSpec("V", []float64{0.3, 0.3, 0.3}, 0.9)
	repo := NewRepository()
	NewGenerator().GenerateApp(repo, spec)
	little := repo.MustGet(TaskName("V", "a", "Little"))
	big := repo.MustGet(TaskName("V", "a", "Big"))
	if big.Bytes <= little.Bytes {
		t.Fatal("Big-slot partial not larger than Little's")
	}
	for _, n := range repo.Names() {
		b := repo.MustGet(n)
		if b.Bytes <= 0 && !strings.HasPrefix(n, "static/") {
			t.Errorf("bitstream %s has no size", n)
		}
	}
}
