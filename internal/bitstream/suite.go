package bitstream

import (
	"sync"

	"versaslot/internal/appmodel"
)

// suiteOnce guards the one-time generation of the shared suite
// repository. The bitstream set for the paper's application suite is a
// pure function of the default size model, so every board in the
// process can share a single immutable copy — a 128-pair farm
// previously rebuilt 256 identical repositories.
var (
	suiteOnce sync.Once
	suiteRepo *Repository
)

// SuiteRepo returns the process-wide immutable repository holding every
// bitstream of the paper's application suite (per-task partials for
// both slot kinds, 3-in-1 bundles, full-fabric exclusives, and static
// regions), generated once with the default generator and frozen before
// publication. Safe for concurrent use; callers must treat it as
// read-only — Put on it panics.
//
// Systems with a non-default size model or spec set still build their
// own repository via NewGenerator/GenerateAll.
func SuiteRepo() *Repository {
	suiteOnce.Do(func() {
		repo := NewRepository()
		NewGenerator().GenerateAll(repo, appmodel.Suite())
		suiteRepo = repo.Freeze()
	})
	return suiteRepo
}
