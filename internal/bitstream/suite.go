package bitstream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
)

// suiteOnce guards the one-time generation of the shared suite
// repository. The bitstream set for the paper's application suite is a
// pure function of the default size model and the platform registry, so
// every board in the process can share a single immutable copy — a
// 128-pair farm previously rebuilt 256 identical repositories.
var (
	suiteOnce    sync.Once
	suiteRepo    *Repository
	suiteClasses map[string]bool // class names the suite repo covers
)

// SuiteRepo returns the process-wide immutable repository holding every
// bitstream of the paper's application suite (per-task partials for
// every registered slot class the task fits, bundle bitstreams per
// class large enough, full-fabric exclusives, and per-platform static
// regions), generated once with the default generator and frozen before
// publication. Safe for concurrent use; callers must treat it as
// read-only — Put on it panics.
//
// Platforms registered after the first SuiteRepo call are not covered;
// register platforms at init time (the registry path) or build a
// dedicated repository via RepoFor/NewGenerator.
func SuiteRepo() *Repository {
	suiteOnce.Do(func() {
		repo := NewRepository()
		NewGenerator().GenerateAll(repo, appmodel.Suite())
		suiteRepo = repo.Freeze()
		suiteClasses = make(map[string]bool)
		for _, c := range fabric.RegisteredClasses() {
			suiteClasses[c.Name] = true
		}
	})
	return suiteRepo
}

// extraRepos caches the dedicated repositories RepoFor builds for
// platforms the frozen suite repository does not cover, keyed by the
// exact slot-class set (name, capacity, bytes) — so a K-pair farm on
// an uncovered platform generates its bitstreams once, not 2K times.
var (
	extraMu    sync.Mutex
	extraRepos = map[string]*Repository{}
)

// RepoFor returns a repository covering the platform's slot classes:
// the shared frozen suite repository when it already covers every
// class, otherwise a dedicated (cached, frozen) repository generated
// for the suite specs plus this platform's classes (inline custom
// platforms and platforms registered after the suite froze).
func RepoFor(p *fabric.Platform) *Repository {
	repo := SuiteRepo()
	covered := true
	for _, c := range p.Classes {
		if !suiteClasses[c.Name] {
			covered = false
			break
		}
	}
	if covered {
		return repo
	}
	// Deduplicate by class name (registry classes first; the registry
	// and spec resolution both enforce one capacity per name).
	classes := fabric.RegisteredClasses()
	have := make(map[string]bool, len(classes))
	for _, c := range classes {
		have[c.Name] = true
	}
	for _, c := range p.Classes {
		if !have[c.Name] {
			have[c.Name] = true
			classes = append(classes, c)
		}
	}
	keys := make([]string, 0, len(classes))
	for _, c := range classes {
		keys = append(keys, fmt.Sprintf("%s=%v/%d", c.Name, c.Cap, c.Bytes))
	}
	sort.Strings(keys)
	key := strings.Join(keys, ";")

	extraMu.Lock()
	defer extraMu.Unlock()
	if own, ok := extraRepos[key]; ok {
		return own
	}
	g := NewGenerator()
	g.Classes = classes
	own := NewRepository()
	g.GenerateAll(own, appmodel.Suite())
	own.Freeze()
	extraRepos[key] = own
	return own
}
