package bitstream

import (
	"fmt"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// Kind describes what a bitstream configures.
type Kind int

const (
	// Partial reconfigures a single slot.
	Partial Kind = iota
	// Full reconfigures the entire fabric (used by the exclusive
	// temporal-multiplexing baseline).
	Full
	// Static programs the static region at board start-up.
	Static
)

func (k Kind) String() string {
	switch k {
	case Partial:
		return "partial"
	case Full:
		return "full"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bitstream is the metadata of one generated bitstream file.
type Bitstream struct {
	// Name identifies the bitstream (e.g. "IC/DCT@Little", "IC/bundle0@Big").
	Name string
	Kind Kind
	// Slot is the target slot-class name for Partial bitstreams.
	Slot string
	// Bytes is the file size; PCAP load time is Bytes/bandwidth.
	Bytes int64
	// Impl is the post-implementation resource usage of the circuit.
	Impl fabric.ResVec
	// Synth is the synthesis-time resource estimate (the paper notes
	// implementation typically uses considerably less; Fig. 7 right).
	Synth fabric.ResVec
}

// SizeModel converts region capacity to bitstream bytes. On UltraScale+
// the configuration size of a pblock is essentially proportional to the
// frames it spans, which scales with its fabric share.
type SizeModel struct {
	// FullBytes is the size of a full-fabric bitstream.
	FullBytes int64
	// Total is the device resource total used to pro-rate partial sizes.
	Total fabric.ResVec
	// PartialOverhead multiplies partial sizes (frame-alignment padding
	// and per-bitstream headers make partials slightly super-linear).
	PartialOverhead float64
}

// DefaultSizeModel matches the ZCU216 scale: a full XCZU49DR bitstream
// is about 43 MB.
func DefaultSizeModel() SizeModel {
	return SizeModel{
		FullBytes:       43 << 20,
		Total:           fabric.ZCU216Total,
		PartialOverhead: 1.10,
	}
}

// PartialBytes returns the size of a partial bitstream for a region of
// the given capacity.
func (m SizeModel) PartialBytes(capacity fabric.ResVec) int64 {
	share := float64(capacity.LUT) / float64(m.Total.LUT)
	return int64(float64(m.FullBytes) * share * m.PartialOverhead)
}

// ClassBytes returns the partial-bitstream size for a slot class: its
// explicit Bytes reconfiguration-cost parameter when set, otherwise the
// size-model estimate from its capacity.
func (m SizeModel) ClassBytes(c fabric.SlotClass) int64 {
	if c.Bytes > 0 {
		return c.Bytes
	}
	return m.PartialBytes(c.Cap)
}

// LoadTime returns how long the PCAP needs to stream b at the given
// bandwidth (bytes/second), plus the fixed DFX decouple/settle overhead.
func LoadTime(b *Bitstream, bandwidthBytesPerSec int64, fixedOverhead sim.Duration) sim.Duration {
	if bandwidthBytesPerSec <= 0 {
		panic("bitstream: non-positive PCAP bandwidth")
	}
	ns := float64(b.Bytes) / float64(bandwidthBytesPerSec) * float64(sim.Second)
	return sim.Duration(ns) + fixedOverhead
}
