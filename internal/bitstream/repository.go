package bitstream

import (
	"fmt"
	"sort"
)

// Repository is the SD-card store of pre-generated bitstreams: for every
// task one Partial per slot kind, plus bundle bitstreams and per-app Full
// bitstreams for the exclusive baseline. The paper generates these
// offline with an automated TCL script; here Generator fills the store.
type Repository struct {
	byName map[string]*Bitstream
	frozen bool
}

// NewRepository returns an empty store.
func NewRepository() *Repository {
	return &Repository{byName: make(map[string]*Bitstream)}
}

// Put registers b, replacing any previous bitstream of the same name.
// Putting into a frozen repository panics: published repositories are
// shared read-only across boards and goroutines.
func (r *Repository) Put(b *Bitstream) {
	if r.frozen {
		panic(fmt.Sprintf("bitstream: Put(%q) into frozen repository", b.Name))
	}
	r.byName[b.Name] = b
}

// Freeze marks the repository immutable and returns it. After Freeze,
// any Put panics; reads are safe from concurrent goroutines. This is
// the publication barrier behind the process-wide suite repository.
func (r *Repository) Freeze() *Repository {
	r.frozen = true
	return r
}

// Frozen reports whether the repository has been published read-only.
func (r *Repository) Frozen() bool { return r.frozen }

// Get returns the named bitstream.
func (r *Repository) Get(name string) (*Bitstream, error) {
	b, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("bitstream: %q not in repository", name)
	}
	return b, nil
}

// MustGet is Get for names the caller guarantees exist (generator output).
func (r *Repository) MustGet(name string) *Bitstream {
	b, err := r.Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the number of stored bitstreams.
func (r *Repository) Len() int { return len(r.byName) }

// Names returns all stored names, sorted (for deterministic iteration).
func (r *Repository) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TaskName builds the repository key for a task's partial bitstream
// targeting the named slot class.
func TaskName(app, task, class string) string {
	return fmt.Sprintf("%s/%s@%s", app, task, class)
}

// BundleName builds the repository key for a 3-in-1 bundle bitstream
// targeting the named slot class. Mode is "par" or "ser".
func BundleName(app string, bundleIdx int, mode, class string) string {
	return fmt.Sprintf("%s/bundle%d-%s@%s", app, bundleIdx, mode, class)
}

// FullName builds the repository key for an app's monolithic full-fabric
// bitstream (exclusive baseline).
func FullName(app string) string {
	return fmt.Sprintf("%s/full", app)
}

// StaticName builds the repository key for a platform's static region.
func StaticName(platform string) string {
	return fmt.Sprintf("static/%s", platform)
}
