// Package bitstream models the offline bitstream-preparation flow the
// paper drives with a Vivado TCL script: application partitioning into
// per-slot tasks, synthesis resource estimates, implementation
// results, partial-bitstream generation for every (task, slot-kind)
// pair, and the SD-card store the PR server loads from.
//
// No real bitstreams exist in this reproduction; what the scheduler
// observes — sizes (hence PCAP load times) and resource footprints
// (hence utilization) — is modelled at the fidelity the paper reports.
//
// # The frozen suite repository
//
// SuiteRepo builds the benchmark suite's Repository once per process
// and freezes it; every board of every concurrently running system
// shares it read-only. Freeze makes mutation a programming error —
// Put on a frozen repository panics — which is what makes the
// unsynchronized sharing across parallel sweep runs safe.
package bitstream
