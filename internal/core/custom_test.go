package core

import (
	"testing"

	"versaslot/internal/sched"
	"versaslot/internal/workload"
)

func TestNewCustomSystemPolicySelection(t *testing.T) {
	sys := NewCustomSystem(2, 4, 1, nil)
	if sys.Policy.Name() != sched.KindVersaSlotBL.String() {
		t.Fatalf("2B+4L runs %q, want Big.Little policy", sys.Policy.Name())
	}
	if sys.Engine.Board.Count("Big") != 2 {
		t.Fatal("board shape")
	}
	sys2 := NewCustomSystem(0, 8, 1, nil)
	if sys2.Policy.Name() != sched.KindVersaSlotOL.String() {
		t.Fatalf("0B+8L runs %q, want Only.Little policy", sys2.Policy.Name())
	}
}

func TestCustomSystemExecutes(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 8
	seq := workload.Generate(p, 17)
	for _, mix := range [][2]int{{1, 6}, {3, 2}} {
		sys := NewCustomSystem(mix[0], mix[1], 1, nil)
		apps, err := seq.Instantiate(0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Execute(seq.Condition, apps)
		if err != nil {
			t.Fatalf("%dB+%dL: %v", mix[0], mix[1], err)
		}
		if res.Summary.Apps != 8 {
			t.Fatalf("%dB+%dL finished %d of 8", mix[0], mix[1], res.Summary.Apps)
		}
	}
}

func TestCustomSystemParamsOverride(t *testing.T) {
	params := sched.DefaultParams()
	params.CacheEntries = 1
	sys := NewCustomSystem(2, 4, 1, &params)
	if sys.Engine.Params.CacheEntries != 1 {
		t.Fatal("params override ignored")
	}
}
