package core

import (
	"testing"
	"testing/quick"

	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// TestRandomWorkloadsAlwaysComplete is a property test over the whole
// stack: arbitrary (seeded) workloads — random app mix, batch sizes,
// arrival spacing down to back-to-back — complete under every policy
// with consistent accounting. This is the closest thing to a fuzzer
// the deterministic simulator admits.
func TestRandomWorkloadsAlwaysComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw, burst uint8) bool {
		n := int(nRaw%8) + 2
		p := workload.GenParams{
			Apps:     n,
			BatchLo:  1,
			BatchHi:  12,
			Specs:    workload.Suite(),
			Condtion: workload.Stress,
			// Burstiness: anywhere between back-to-back and 1s apart.
			IntervalLo: sim.Duration(burst%10) * 20 * sim.Millisecond,
			IntervalHi: sim.Duration(burst%10+1) * 100 * sim.Millisecond,
		}
		if p.IntervalLo == 0 {
			p.IntervalLo = sim.Nanosecond
		}
		seq := workload.Generate(p, seed)
		for _, kind := range sched.Kinds() {
			res, err := Run(SystemConfig{Policy: kind, Seed: seed}, seq)
			if err != nil {
				t.Logf("%v seed=%d: %v", kind, seed, err)
				return false
			}
			if res.Summary.Apps != n {
				t.Logf("%v seed=%d: finished %d of %d", kind, seed, res.Summary.Apps, n)
				return false
			}
			for _, s := range res.Samples {
				if s.Response <= 0 {
					t.Logf("%v seed=%d: non-positive response", kind, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
