package core

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/fabric"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// TestRuntimeInvariants drives every policy through a congested
// workload while checking structural invariants at every kernel event:
//
//  1. no two stages ever claim the same slot;
//  2. a stage's slot always matches its kind;
//  3. per-stage completion counts are monotone and bounded by the batch;
//  4. pipeline causality: stage i never completes more items than i-1;
//  5. the kernel clock is monotone.
func TestRuntimeInvariants(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 10
	seq := workload.Generate(p, 21)

	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys := NewSystem(SystemConfig{Policy: kind, Seed: 4})
			apps, err := seq.Instantiate(0)
			if err != nil {
				t.Fatal(err)
			}
			sys.Engine.InjectSequence(apps)

			lastDone := make(map[*appmodel.Stage]int)
			var lastTime sim.Time
			check := func() {
				now := sys.Kernel.Now()
				if now < lastTime {
					t.Fatalf("clock went backwards: %v -> %v", lastTime, now)
				}
				lastTime = now
				owners := make(map[*fabric.Slot]*appmodel.Stage)
				for _, a := range apps {
					for _, st := range a.Stages {
						if st.Done < lastDone[st] {
							t.Fatalf("%v completion count regressed", st)
						}
						if st.Done > a.Batch {
							t.Fatalf("%v completed more items than the batch", st)
						}
						lastDone[st] = st.Done
						if st.Index > 0 && st.Done > a.Stages[st.Index-1].Done {
							t.Fatalf("%v ahead of its upstream stage", st)
						}
						if st.Slot != nil {
							if prev, ok := owners[st.Slot]; ok {
								t.Fatalf("slot %d double-booked by %v and %v", st.Slot.ID, prev, st)
							}
							owners[st.Slot] = st
							if st.Slot.Class.Name != st.Class {
								t.Fatalf("%v resident in wrong slot class", st)
							}
						}
					}
				}
			}
			for sys.Kernel.Step() {
				check()
			}
			sys.Engine.CheckQuiescent()
			for _, a := range apps {
				if a.State != appmodel.StateFinished {
					t.Fatalf("app %v unfinished", a)
				}
				if a.Finish < a.Arrival {
					t.Fatalf("app %v finished before arriving", a)
				}
			}
		})
	}
}

// TestResponseTimesCoverAllApps: every injected app yields exactly one
// response sample with consistent fields.
func TestResponseTimesCoverAllApps(t *testing.T) {
	p := workload.DefaultGenParams(workload.Realtime)
	p.Apps = 15
	seq := workload.Generate(p, 33)
	for _, kind := range sched.Kinds() {
		res, err := Run(SystemConfig{Policy: kind, Seed: 2}, seq)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Samples) != 15 {
			t.Fatalf("%v: %d samples", kind, len(res.Samples))
		}
		seen := map[int]bool{}
		for _, s := range res.Samples {
			if seen[s.AppID] {
				t.Fatalf("%v: duplicate sample for app %d", kind, s.AppID)
			}
			seen[s.AppID] = true
			if s.Response != sim.Duration(s.Finish-s.Arrival) {
				t.Fatalf("%v: inconsistent response for app %d", kind, s.AppID)
			}
			if s.Response <= 0 {
				t.Fatalf("%v: non-positive response", kind)
			}
		}
	}
}
