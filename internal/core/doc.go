// Package core wires one board, a scheduling policy, and a workload
// into a runnable System — the single-board entry point underneath
// the versaslot facade's "single" topology and the building block the
// experiment presets are made of.
//
// A minimal run:
//
//	seq := workload.Generate(workload.DefaultGenParams(workload.Standard), 42)
//	res, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 42}, seq)
//
// Res carries the per-app response times, tail latencies, utilization
// and PR-contention statistics the paper evaluates. Policies resolve
// through the sched registry (NewRegisteredSystem) and run on their
// declared platform by default; any registered or inline platform can
// be substituted (NewPlatformSystem), and the paper's custom
// Big/Little slot mixes remain supported (NewCustomSystem).
package core
