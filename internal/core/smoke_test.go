package core

import (
	"testing"

	"versaslot/internal/sched"
	"versaslot/internal/workload"
)

// TestAllPoliciesComplete runs every policy on a small standard
// workload and checks that every application finishes with a positive
// response time — the basic liveness invariant.
func TestAllPoliciesComplete(t *testing.T) {
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = 8
	seq := workload.Generate(p, 7)
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(SystemConfig{Policy: kind, Seed: 1}, seq)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Summary.Apps != len(seq.Arrivals) {
				t.Fatalf("finished %d of %d apps", res.Summary.Apps, len(seq.Arrivals))
			}
			if res.Summary.MeanRT <= 0 {
				t.Fatalf("non-positive mean response time %v", res.Summary.MeanRT)
			}
			t.Logf("%s: meanRT=%v p95=%v prLoads=%d blocked=%d util=%.3f",
				kind, res.Summary.MeanRT, res.Summary.P95,
				res.Summary.PRLoads, res.Summary.PRBlocked, res.Summary.UtilLUT)
		})
	}
}
