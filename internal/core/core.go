package core

import (
	"fmt"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/metrics"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// SystemConfig selects a policy and its platform.
type SystemConfig struct {
	// Policy picks the scheduling system under test.
	Policy sched.Kind
	// Params overrides hardware/control-plane constants; zero value
	// means sched.DefaultParams().
	Params *sched.Params
	// Seed seeds the simulation kernel.
	Seed uint64
}

// PlatformFor returns the platform and core model each policy runs on
// by default; the declaration lives with the policy's registry entry,
// mirroring the paper's evaluation setup.
func PlatformFor(k sched.Kind) (*fabric.Platform, hypervisor.CoreModel) {
	r, ok := sched.ByKind(k)
	if !ok {
		panic(fmt.Sprintf("core: unknown policy kind %v", k))
	}
	return fabric.MustPlatform(r.Platform), r.Core
}

// System is one configured board ready to execute workloads.
type System struct {
	Kernel *sim.Kernel
	Engine *sched.Engine
	Policy sched.Policy
	cfg    SystemConfig
}

// NewSystem builds a system for the config.
func NewSystem(cfg SystemConfig) *System {
	r, ok := sched.ByKind(cfg.Policy)
	if !ok {
		panic(fmt.Sprintf("core: unknown policy kind %v", cfg.Policy))
	}
	sys, err := newSystemFor(r, nil, cfg.Seed, cfg.Params)
	if err != nil {
		panic(err)
	}
	return sys
}

// NewRegisteredSystem builds a system for a registry policy name on
// the policy's declared platform; this is the string-keyed path the
// versaslot facade and third-party policies use.
func NewRegisteredSystem(name string, seed uint64, params *sched.Params) (*System, error) {
	return NewPlatformSystem(name, nil, seed, params)
}

// NewPlatformSystem builds a system for a registry policy name on an
// explicit platform (nil means the policy's declared platform). The
// platform may be a registry entry or an inline custom platform; the
// policy must be compatible with it (a DPR policy cannot drive the
// monolithic baseline template, the Big.Little policy needs a
// heterogeneous class mix).
func NewPlatformSystem(name string, platform *fabric.Platform, seed uint64, params *sched.Params) (*System, error) {
	r, ok := sched.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %v)", name, sched.Names())
	}
	return newSystemFor(r, platform, seed, params)
}

func newSystemFor(r *sched.Registration, platform *fabric.Platform, seed uint64, params *sched.Params) (*System, error) {
	if platform == nil {
		platform = fabric.MustPlatform(r.Platform)
	} else if err := sched.CompatiblePlatform(r, platform); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := sched.DefaultParams()
	if params != nil {
		p = *params
	}
	k := sim.NewKernel(seed)
	board := fabric.NewBoard(0, platform)
	engine := sched.NewEngine(k, p, board, r.Core, bitstream.RepoFor(platform))
	policy := r.Factory()
	engine.SetPolicy(policy)
	return &System{Kernel: k, Engine: engine, Policy: policy,
		cfg: SystemConfig{Policy: r.Kind, Params: params, Seed: seed}}, nil
}

// NewCustomSystem builds a VersaSlot system on an arbitrary Big/Little
// slot mix (a Big slot occupies two Little slots' fabric area; the mix
// must fit 8 Little-equivalents). With any Big slots present the
// Big.Little policy drives the board; otherwise Only.Little. This is
// the paper's "any Big/Little configuration" extension, used by the
// slot-configuration sweep in the benchmark harness.
func NewCustomSystem(big, little int, seed uint64, params *sched.Params) *System {
	p := sched.DefaultParams()
	if params != nil {
		p = *params
	}
	k := sim.NewKernel(seed)
	board := fabric.NewCustomBoard(0, big, little)
	engine := sched.NewEngine(k, p, board, hypervisor.DualCore, bitstream.SuiteRepo())
	var policy sched.Policy
	kind := sched.KindVersaSlotOL
	if big > 0 {
		kind = sched.KindVersaSlotBL
	}
	policy = sched.New(kind)
	engine.SetPolicy(policy)
	return &System{Kernel: k, Engine: engine, Policy: policy, cfg: SystemConfig{Policy: kind, Seed: seed}}
}

// Result is one run's outcome.
type Result struct {
	Policy    sched.Kind
	Condition string
	Summary   metrics.Summary
	Samples   []metrics.ResponseSample
	// BySpec breaks response times down per application type.
	BySpec []metrics.SpecBreakdown
	// CacheHits/CacheMisses report bitstream cache behaviour.
	CacheHits, CacheMisses uint64
}

// Run executes one workload sequence on a fresh system.
func Run(cfg SystemConfig, seq *workload.Sequence) (*Result, error) {
	sys := NewSystem(cfg)
	apps, err := seq.Instantiate(0)
	if err != nil {
		return nil, err
	}
	return sys.Execute(seq.Condition, apps)
}

// Execute injects apps and runs to completion.
func (s *System) Execute(condition string, apps []*appmodel.App) (*Result, error) {
	s.Engine.InjectSequence(apps)
	s.Kernel.Run()
	s.Engine.FlushResidency()
	if n := s.Engine.UnfinishedCount(); n > 0 {
		s.Engine.CheckQuiescent() // panics with diagnostics
		return nil, fmt.Errorf("core: %d apps unfinished", n)
	}
	hits, misses := s.Engine.Cache.Stats()
	return &Result{
		Policy:      s.cfg.Policy,
		Condition:   condition,
		Summary:     s.Engine.Col.Summarize(),
		Samples:     s.Engine.Col.Responses,
		BySpec:      s.Engine.Col.BySpec(),
		CacheHits:   hits,
		CacheMisses: misses,
	}, nil
}

// RunSet executes a whole sequence set (e.g. the paper's 10 sequences)
// and returns per-sequence results.
func RunSet(cfg SystemConfig, seqs []*workload.Sequence) ([]*Result, error) {
	out := make([]*Result, 0, len(seqs))
	for i, seq := range seqs {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r, err := Run(c, seq)
		if err != nil {
			return nil, fmt.Errorf("core: sequence %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// MeanRT averages the mean response times across results.
func MeanRT(results []*Result) sim.Duration {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += float64(r.Summary.MeanRT)
	}
	return sim.Duration(sum / float64(len(results)))
}

// PooledSamples concatenates all runs' response samples (the paper's
// tail latencies pool the 10 sequences of a condition).
func PooledSamples(results []*Result) []metrics.ResponseSample {
	var out []metrics.ResponseSample
	for _, r := range results {
		out = append(out, r.Samples...)
	}
	return out
}

// PooledPercentile computes a percentile over all runs' samples.
func PooledPercentile(results []*Result, p float64) sim.Duration {
	samples := PooledSamples(results)
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s.Response)
	}
	if len(vals) == 0 {
		return 0
	}
	return sim.Duration(metrics.PercentileOf(vals, p))
}
