package core

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/sched"
	"versaslot/internal/workload"
)

func TestPlatformMapping(t *testing.T) {
	cases := []struct {
		kind     sched.Kind
		platform string
		cores    hypervisor.CoreModel
	}{
		{sched.KindBaseline, fabric.ZCU216Monolithic, hypervisor.SingleCore},
		{sched.KindFCFS, fabric.ZCU216OnlyLittle, hypervisor.SingleCore},
		{sched.KindRR, fabric.ZCU216OnlyLittle, hypervisor.SingleCore},
		{sched.KindNimblock, fabric.ZCU216OnlyLittle, hypervisor.SingleCore},
		{sched.KindVersaSlotOL, fabric.ZCU216OnlyLittle, hypervisor.DualCore},
		{sched.KindVersaSlotBL, fabric.ZCU216BigLittle, hypervisor.DualCore},
	}
	for _, c := range cases {
		p, m := PlatformFor(c.kind)
		if p.Name != c.platform || m != c.cores {
			t.Errorf("%v -> (%v,%v), want (%v,%v)", c.kind, p.Name, m, c.platform, c.cores)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 10
	seq := workload.Generate(p, 5)
	a, err := Run(SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 3}, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 3}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.MeanRT != b.Summary.MeanRT || a.Summary.P99 != b.Summary.P99 {
		t.Fatal("identical seeds produced different results")
	}
	for i := range a.Samples {
		if a.Samples[i].Response != b.Samples[i].Response {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestRunSetUsesDistinctSeeds(t *testing.T) {
	seqs := workload.GenerateSet(workload.Standard, 100, 3)
	results, err := RunSet(SystemConfig{Policy: sched.KindNimblock, Seed: 1}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatal("result count")
	}
	if results[0].Summary.MeanRT == results[1].Summary.MeanRT &&
		results[1].Summary.MeanRT == results[2].Summary.MeanRT {
		t.Fatal("all sequences produced identical means — seeds ignored?")
	}
}

func TestPooledHelpers(t *testing.T) {
	p := workload.DefaultGenParams(workload.Loose)
	p.Apps = 4
	seqs := []*workload.Sequence{workload.Generate(p, 1), workload.Generate(p, 2)}
	results, err := RunSet(SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 9}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	samples := PooledSamples(results)
	if len(samples) != 8 {
		t.Fatalf("pooled %d samples, want 8", len(samples))
	}
	p95 := PooledPercentile(results, 95)
	if p95 <= 0 {
		t.Fatal("pooled percentile")
	}
	mean := MeanRT(results)
	if mean <= 0 {
		t.Fatal("mean")
	}
	if MeanRT(nil) != 0 {
		t.Fatal("empty mean")
	}
}

func TestRunReportsCacheStats(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 8
	seq := workload.Generate(p, 6)
	res, err := Run(SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 2}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits+res.CacheMisses == 0 {
		t.Fatal("no cache activity recorded")
	}
	// FCFS has no cache: all misses.
	res2, err := Run(SystemConfig{Policy: sched.KindFCFS, Seed: 2}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 0 {
		t.Fatalf("FCFS recorded %d cache hits; its cache is disabled", res2.CacheHits)
	}
}
