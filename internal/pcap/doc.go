// Package pcap models the Processor Configuration Access Port of the
// Zynq UltraScale+ PS: the single serial channel through which every
// partial (and full) bitstream reaches the fabric. Two properties
// drive the paper's whole problem statement and are preserved
// exactly:
//
//  1. The PCAP loads one bitstream at a time; concurrent PR requests
//     serialize (PR contention).
//  2. A load suspends the CPU core that issued it until the bitstream
//     is fully transferred (task execution blocking on single-core
//     schedulers).
//
// The device itself does not own an event queue; the hypervisor core
// executing the load provides the serialization (a core can only run
// one job). Device tracks occupancy, bytes, and contention statistics
// that feed the D_switch metric.
package pcap
