package pcap

import (
	"versaslot/internal/bitstream"
	"versaslot/internal/sim"
)

// Device is one board's PCAP.
type Device struct {
	// Bandwidth is the sustained configuration throughput in bytes/s.
	// Zynq UltraScale+ PCAP sustains roughly 128 MB/s in practice.
	Bandwidth int64
	// Overhead is the fixed per-load cost: DFX decoupler assertion,
	// PCAP init, and completion check.
	Overhead sim.Duration

	stats Stats
}

// Stats aggregates the device's activity.
type Stats struct {
	Loads        uint64       // completed bitstream loads
	Bytes        int64        // total configuration bytes streamed
	BusyTime     sim.Duration // cumulative transfer time
	WaitTime     sim.Duration // cumulative time requests spent queued
	BlockedLoads uint64       // loads that had to wait behind another PR
}

// New returns a device with the given bandwidth and per-load overhead.
func New(bandwidth int64, overhead sim.Duration) *Device {
	if bandwidth <= 0 {
		panic("pcap: non-positive bandwidth")
	}
	return &Device{Bandwidth: bandwidth, Overhead: overhead}
}

// LoadDuration returns the time to stream b through the port.
func (d *Device) LoadDuration(b *bitstream.Bitstream) sim.Duration {
	return bitstream.LoadTime(b, d.Bandwidth, d.Overhead)
}

// RecordLoad accounts one completed load and the queueing delay it saw.
func (d *Device) RecordLoad(b *bitstream.Bitstream, transfer, wait sim.Duration) {
	d.stats.Loads++
	d.stats.Bytes += b.Bytes
	d.stats.BusyTime += transfer
	d.stats.WaitTime += wait
	if wait > 0 {
		d.stats.BlockedLoads++
	}
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }
