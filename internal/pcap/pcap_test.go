package pcap

import (
	"testing"

	"versaslot/internal/bitstream"
	"versaslot/internal/sim"
)

func TestLoadDuration(t *testing.T) {
	d := New(200<<20, 80*sim.Microsecond)
	b := &bitstream.Bitstream{Name: "x", Bytes: 200 << 20}
	got := d.LoadDuration(b)
	want := sim.Second + 80*sim.Microsecond
	if got != want {
		t.Fatalf("LoadDuration %v, want %v", got, want)
	}
}

func TestNewPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	New(0, 0)
}

func TestStatsAccounting(t *testing.T) {
	d := New(128<<20, 0)
	b := &bitstream.Bitstream{Name: "x", Bytes: 4 << 20}
	d.RecordLoad(b, 30*sim.Millisecond, 0)
	d.RecordLoad(b, 30*sim.Millisecond, 12*sim.Millisecond)
	s := d.Stats()
	if s.Loads != 2 {
		t.Fatalf("loads %d", s.Loads)
	}
	if s.Bytes != 8<<20 {
		t.Fatalf("bytes %d", s.Bytes)
	}
	if s.BusyTime != 60*sim.Millisecond {
		t.Fatalf("busy %v", s.BusyTime)
	}
	if s.WaitTime != 12*sim.Millisecond {
		t.Fatalf("wait %v", s.WaitTime)
	}
	if s.BlockedLoads != 1 {
		t.Fatalf("blocked %d, want 1 (only the waiting load)", s.BlockedLoads)
	}
}
