package bundle

import (
	"testing"

	"versaslot/internal/appmodel"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func TestCanBundleSuite(t *testing.T) {
	want := map[string]bool{"3DR": true, "LeNet": false, "IC": true, "AN": true, "OF": true}
	for _, spec := range workload.Suite() {
		if got := CanBundle(spec); got != want[spec.Name] {
			t.Errorf("CanBundle(%s)=%v, want %v", spec.Name, got, want[spec.Name])
		}
	}
}

func TestCanBundleRequiresDivisibility(t *testing.T) {
	spec := &appmodel.AppSpec{
		Name:   "odd",
		EtaLUT: 0.9, EtaFF: 0.9,
		Tasks: make([]appmodel.TaskSpec, 4), // 4 % 3 != 0
	}
	if CanBundle(spec) {
		t.Fatal("4-task app bundled")
	}
	if CanBundle(&appmodel.AppSpec{Name: "empty"}) {
		t.Fatal("empty app bundled")
	}
}

func TestCount(t *testing.T) {
	if Count(workload.OF) != 3 {
		t.Fatalf("OF bundles %d, want 3", Count(workload.OF))
	}
	if Count(workload.LeNet) != 0 {
		t.Fatal("LeNet bundle count not 0")
	}
}

func TestSelectModeSmallBatchSerial(t *testing.T) {
	// With batch 1 the parallel pipeline's fill cannot amortize:
	// serial must win whenever serial-total < parallel-fill-total.
	for _, spec := range []*appmodel.AppSpec{workload.IC, workload.AN} {
		m := SelectMode(spec, 0, 1)
		pF, _ := appmodel.BundleTiming(spec, Size, 0, appmodel.BundleParallel)
		sF, _ := appmodel.BundleTiming(spec, Size, 0, appmodel.BundleSerial)
		if sF < pF && m != appmodel.BundleSerial {
			t.Errorf("%s batch=1: serial cheaper but %v selected", spec.Name, m)
		}
	}
}

func TestSelectModeLargeBatchParallel(t *testing.T) {
	// At batch 30 the initiation-interval advantage dominates.
	for _, spec := range []*appmodel.AppSpec{workload.ThreeDR, workload.IC, workload.AN, workload.OF} {
		for b := 0; b < Count(spec); b++ {
			if m := SelectMode(spec, b, 30); m != appmodel.BundleParallel {
				t.Errorf("%s bundle %d at batch 30: %v, want parallel", spec.Name, b, m)
			}
		}
	}
}

func TestSelectModeMatchesTotals(t *testing.T) {
	// The selected mode always has the smaller total batch time.
	for _, spec := range []*appmodel.AppSpec{workload.ThreeDR, workload.IC, workload.AN, workload.OF} {
		for batch := 1; batch <= 30; batch++ {
			for b := 0; b < Count(spec); b++ {
				m := SelectMode(spec, b, batch)
				pF, pR := appmodel.BundleTiming(spec, Size, b, appmodel.BundleParallel)
				sF, sR := appmodel.BundleTiming(spec, Size, b, appmodel.BundleSerial)
				par := pF + sim.Duration(batch-1)*pR
				ser := sF + sim.Duration(batch-1)*sR
				if m == appmodel.BundleParallel && par > ser {
					t.Fatalf("%s b=%d batch=%d: parallel selected but slower", spec.Name, b, batch)
				}
				if m == appmodel.BundleSerial && ser > par {
					t.Fatalf("%s b=%d batch=%d: serial selected but slower", spec.Name, b, batch)
				}
			}
		}
	}
}

func TestBuildInstallsBundleStages(t *testing.T) {
	a := appmodel.NewApp(1, workload.OF, 12, 0)
	stages := Build(a, "Big")
	if len(stages) != 3 {
		t.Fatalf("OF bundle stages %d", len(stages))
	}
	for i, st := range stages {
		if st.Class != "Big" {
			t.Fatalf("bundle stage %d not Big", i)
		}
		if st.TaskCount != 3 || st.FirstTask != i*3 {
			t.Fatalf("bundle stage %d covers wrong tasks", i)
		}
		if st.BitstreamName == "" {
			t.Fatal("bundle stage missing bitstream")
		}
	}
}

func TestBuildLittleInstallsTaskStages(t *testing.T) {
	a := appmodel.NewApp(1, workload.LeNet, 5, 0)
	stages := BuildTasks(a, "Little")
	if len(stages) != 6 {
		t.Fatalf("LeNet task stages %d", len(stages))
	}
	for _, st := range stages {
		if st.Class != "Little" || st.Mode != appmodel.NoBundle {
			t.Fatal("little stage wrong class/mode")
		}
	}
}

func TestMeasureUtilGainMatchesPaper(t *testing.T) {
	want := map[string][2]float64{
		"IC":  {42.2, 48.0},
		"AN":  {36.4, 41.4},
		"3DR": {9.9, 17.7},
		"OF":  {9.6, 14.1},
	}
	for name, w := range want {
		gain, ok := MeasureUtilGain(workload.SpecByName(name))
		if !ok {
			t.Fatalf("%s reported not bundleable", name)
		}
		if d := gain.LUTPct - w[0]; d > 0.5 || d < -0.5 {
			t.Errorf("%s LUT gain %.1f%%, paper %.1f%%", name, gain.LUTPct, w[0])
		}
		if d := gain.FFPct - w[1]; d > 0.5 || d < -0.5 {
			t.Errorf("%s FF gain %.1f%%, paper %.1f%%", name, gain.FFPct, w[1])
		}
	}
	if _, ok := MeasureUtilGain(workload.LeNet); ok {
		t.Fatal("LeNet gain measured; it cannot bundle")
	}
}

func TestMeasureUtilGainICDetail(t *testing.T) {
	gain, _ := MeasureUtilGain(workload.IC)
	b := gain.Bundles[0]
	if d := b.AvgLUT - 0.41; d > 0.01 || d < -0.01 {
		t.Errorf("IC bundle1 member average %.3f, paper 0.41", b.AvgLUT)
	}
	// Paper figure shows 0.6; the exact eta-consistent value is 0.583.
	if b.BundleLUT < 0.55 || b.BundleLUT > 0.62 {
		t.Errorf("IC bundle1 LUT util %.3f, paper ~0.6", b.BundleLUT)
	}
	if len(b.MemberLUT) != 3 {
		t.Fatal("member count")
	}
}

func TestModesLength(t *testing.T) {
	modes := Modes(workload.AN, 20)
	if len(modes) != 2 {
		t.Fatalf("AN modes %d", len(modes))
	}
	if len(Modes(workload.LeNet, 20)) != 0 {
		t.Fatal("LeNet modes not empty")
	}
}
