// Package bundle implements the 3-in-1 task bundling of the
// Big.Little architecture (Section III-B): grouping three consecutive
// tasks of an application into one Big-slot circuit, choosing between
// the serial and parallel internal organizations (Fig. 3), and
// reporting the resource-utilization effects the paper evaluates in
// Fig. 7.
package bundle
