package bundle

import (
	"sync"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/sim"
)

// Size is the paper's bundling factor: "We set the bundling size to be
// 3 based on the Big slot's resource capacity to accommodate tasks and
// its fewer idle task cycles in pipelines than a larger size."
const Size = 3

// CanBundleIn reports whether an application can execute in slots of
// the given capacity: its task count must divide by the bundle size and
// every consecutive triple must fit the capacity after eta-scaled
// consolidation. This is the canBundle(Ai) predicate of Algorithm 1,
// parameterized by the slot class the bundles would target.
func CanBundleIn(spec *appmodel.AppSpec, cap fabric.ResVec) bool {
	if len(spec.Tasks) == 0 || len(spec.Tasks)%Size != 0 {
		return false
	}
	g := bitstream.NewGenerator()
	for b := 0; b < len(spec.Tasks)/Size; b++ {
		impl, _ := g.BundleRes(spec, b)
		if !impl.FitsIn(cap) {
			return false
		}
	}
	return true
}

// CanBundle is CanBundleIn against the paper's Big slot capacity.
func CanBundle(spec *appmodel.AppSpec) bool {
	return CanBundleIn(spec, fabric.BigSlotCap)
}

// Count returns the number of bundles of an app (0 if not bundleable).
func Count(spec *appmodel.AppSpec) int {
	if !CanBundle(spec) {
		return 0
	}
	return len(spec.Tasks) / Size
}

// Hostable reports whether an application can execute at all on a
// platform: either every task fits the platform's base (smallest) slot
// class, or — on heterogeneous platforms — the app bundles into the
// largest class. Capacity-aware farm dispatchers route around pairs
// whose platforms cannot host an arriving application.
func Hostable(spec *appmodel.AppSpec, p *fabric.Platform) bool {
	base := p.Smallest().Cap
	all := true
	for _, t := range spec.Tasks {
		if !t.Impl.FitsIn(base) {
			all = false
			break
		}
	}
	if all {
		return true
	}
	return p.Heterogeneous() && CanBundleIn(spec, p.Largest().Cap)
}

// SelectMode picks the internal organization of one bundle for a given
// batch size, per the paper's criterion: serial execution is preferable
// when Tmax*(Nbatch+2) > (T1+T2+T3)*Nbatch; otherwise the parallel
// (internally pipelined) bitstream is selected. The comparison uses the
// implemented bundles' effective per-item times (BundleTiming), which
// fold in the on-chip streaming factors.
func SelectMode(spec *appmodel.AppSpec, b int, batch int) appmodel.BundleMode {
	pFirst, pRest := appmodel.BundleTiming(spec, Size, b, appmodel.BundleParallel)
	sFirst, sRest := appmodel.BundleTiming(spec, Size, b, appmodel.BundleSerial)
	parallel := pFirst + sim.Duration(int64(pRest)*int64(batch-1))
	serial := sFirst + sim.Duration(int64(sRest)*int64(batch-1))
	if parallel > serial {
		return appmodel.BundleSerial
	}
	return appmodel.BundleParallel
}

// Execution-plan interning. Stage plans are pure functions of the spec
// pointer (workload specs are shared package-level values), the target
// slot class, and — for bundles — the batch size; at farm scale the
// same handful of (spec, class) pairs recurs for every one of thousands
// of arrivals, and the fmt.Sprintf bitstream names plus the mode-select
// timing math dominated the dispatch profile. The caches below compute
// each plan once and hand out shared read-only slices. A plain map
// under RWMutex beats sync.Map here: struct keys box into interfaces on
// every sync.Map lookup, which allocates on the very path this exists
// to keep allocation-free. Growth is bounded by the (tiny) cross
// product of distinct specs, classes, and batch sizes.
type taskPlanKey struct {
	spec  *appmodel.AppSpec
	class string
}

type modesKey struct {
	spec  *appmodel.AppSpec
	batch int
}

type bundlePlanKey struct {
	spec  *appmodel.AppSpec
	class string
	batch int
}

var planCache = struct {
	mu      sync.RWMutex
	tasks   map[taskPlanKey][]string
	modes   map[modesKey][]appmodel.BundleMode
	bundles map[bundlePlanKey][]string
}{
	tasks:   make(map[taskPlanKey][]string),
	modes:   make(map[modesKey][]appmodel.BundleMode),
	bundles: make(map[bundlePlanKey][]string),
}

// taskNames returns the interned per-task bitstream names of spec in
// the given class. The slice is shared — callers must not mutate it.
func taskNames(spec *appmodel.AppSpec, class string) []string {
	key := taskPlanKey{spec, class}
	planCache.mu.RLock()
	names := planCache.tasks[key]
	planCache.mu.RUnlock()
	if names != nil {
		return names
	}
	names = make([]string, len(spec.Tasks))
	for i, t := range spec.Tasks {
		names[i] = bitstream.TaskName(spec.Name, t.Name, class)
	}
	planCache.mu.Lock()
	planCache.tasks[key] = names
	planCache.mu.Unlock()
	return names
}

// bundleNames returns the interned per-bundle bitstream names of spec
// in the given class for the given mode selection. modes must be the
// Modes(spec, batch) result for the batch in the key.
func bundleNames(spec *appmodel.AppSpec, class string, batch int, modes []appmodel.BundleMode) []string {
	key := bundlePlanKey{spec, class, batch}
	planCache.mu.RLock()
	names := planCache.bundles[key]
	planCache.mu.RUnlock()
	if names != nil {
		return names
	}
	names = make([]string, len(modes))
	for b, m := range modes {
		tag := "par"
		if m == appmodel.BundleSerial {
			tag = "ser"
		}
		names[b] = bitstream.BundleName(spec.Name, b, tag, class)
	}
	planCache.mu.Lock()
	planCache.bundles[key] = names
	planCache.mu.Unlock()
	return names
}

// Modes selects the execution mode of every bundle of spec for a batch.
// The result is interned and shared across calls — treat it as
// read-only.
func Modes(spec *appmodel.AppSpec, batch int) []appmodel.BundleMode {
	key := modesKey{spec, batch}
	planCache.mu.RLock()
	modes := planCache.modes[key]
	planCache.mu.RUnlock()
	if modes != nil {
		return modes
	}
	n := Count(spec)
	modes = make([]appmodel.BundleMode, n)
	for b := 0; b < n; b++ {
		modes[b] = SelectMode(spec, b, batch)
	}
	planCache.mu.Lock()
	planCache.modes[key] = modes
	planCache.mu.Unlock()
	return modes
}

// Build installs the bundled execution plan on app, targeting the
// named big-role slot class.
func Build(app *appmodel.App, class string) []*appmodel.Stage {
	modes := Modes(app.Spec, app.Batch)
	names := bundleNames(app.Spec, class, app.Batch, modes)
	return appmodel.BundleStages(app, class, Size, modes, func(b int, m appmodel.BundleMode) string {
		return names[b]
	})
}

// BuildTasks installs the per-task execution plan on app, targeting the
// named base slot class.
func BuildTasks(app *appmodel.App, class string) []*appmodel.Stage {
	names := taskNames(app.Spec, class)
	return appmodel.TaskStages(app, class, 1.0, func(task int) string {
		return names[task]
	})
}

// UtilGain is the Fig. 7 measurement for one application: the relative
// LUT/FF utilization increase of running its bundles in Big slots
// versus the same tasks spread over Little slots.
type UtilGain struct {
	App string
	// LUTPct and FFPct are percentage increases (e.g. 42.2 for +42.2%).
	LUTPct, FFPct float64
	// Bundles details each bundle: member Little-slot utilizations and
	// the bundled Big-slot utilization.
	Bundles []BundleUtil
}

// BundleUtil is the per-bundle detail backing Fig. 7 (right).
type BundleUtil struct {
	Index int
	// MemberLUT are the members' Little-slot LUT utilizations.
	MemberLUT []float64
	// AvgLUT is their average; BundleLUT the 3-in-1 implementation's
	// Big-slot LUT utilization.
	AvgLUT, BundleLUT float64
	AvgFF, BundleFF   float64
}

// MeasureUtilGain computes the utilization change bundling yields for
// spec. It returns ok=false for apps that cannot bundle (e.g. LeNet).
func MeasureUtilGain(spec *appmodel.AppSpec) (UtilGain, bool) {
	if !CanBundle(spec) {
		return UtilGain{App: spec.Name}, false
	}
	g := bitstream.NewGenerator()
	gain := UtilGain{App: spec.Name}
	var lutSum, ffSum float64
	n := Count(spec)
	for b := 0; b < n; b++ {
		impl, _ := g.BundleRes(spec, b)
		bLUT, bFF := impl.Utilization(fabric.BigSlotCap)
		var mLUT []float64
		var avgLUT, avgFF float64
		for _, t := range spec.Tasks[b*Size : (b+1)*Size] {
			lu, fu := t.Impl.Utilization(fabric.LittleSlotCap)
			mLUT = append(mLUT, lu)
			avgLUT += lu / Size
			avgFF += fu / Size
		}
		gain.Bundles = append(gain.Bundles, BundleUtil{
			Index:     b,
			MemberLUT: mLUT,
			AvgLUT:    avgLUT,
			BundleLUT: bLUT,
			AvgFF:     avgFF,
			BundleFF:  bFF,
		})
		lutSum += (bLUT/avgLUT - 1) * 100
		ffSum += (bFF/avgFF - 1) * 100
	}
	gain.LUTPct = lutSum / float64(n)
	gain.FFPct = ffSum / float64(n)
	return gain, true
}
