package orchestrator_test

import (
	"testing"

	"versaslot/internal/cluster"
	"versaslot/internal/orchestrator"
	"versaslot/internal/rng"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// tenantSeq generates one tenant's workload, seeded the way the
// scenario facade seeds it.
func tenantSeq(cond workload.Condition, apps int, seed uint64, name string) *workload.Sequence {
	p := workload.DefaultGenParams(cond)
	p.Apps = apps
	seq := workload.Generate(p, rng.Derive(seed, "tenant/"+name))
	seq.Name = name
	return seq
}

func mustOrchestrate(t *testing.T, f *cluster.Farm, cfg orchestrator.Config) *orchestrator.Orchestrator {
	t.Helper()
	o, err := orchestrator.New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// checkLedger asserts the admission ledger reconciles for every
// tenant, and — for a completed run — that nothing is left queued or
// in flight.
func checkLedger(t *testing.T, stats []orchestrator.TenantStat, completed bool) {
	t.Helper()
	for _, st := range stats {
		if st.Submitted != st.Admitted+st.Rejected+st.Queued {
			t.Errorf("tenant %s: submitted %d != admitted %d + rejected %d + queued %d",
				st.Tenant, st.Submitted, st.Admitted, st.Rejected, st.Queued)
		}
		if st.Admitted != st.Finished+st.InFlight {
			t.Errorf("tenant %s: admitted %d != finished %d + in-flight %d",
				st.Tenant, st.Admitted, st.Finished, st.InFlight)
		}
		if completed && (st.Queued != 0 || st.InFlight != 0) {
			t.Errorf("tenant %s: run completed with %d queued, %d in flight",
				st.Tenant, st.Queued, st.InFlight)
		}
	}
}

// TestQuotaNeverExceeded: at every admission instant, the admitting
// tenant's in-flight count stays within its quota — observed through
// the OnAdmit hook, which fires after the ledger bump, for every
// single admission of the run.
func TestQuotaNeverExceeded(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	quotas := []int{3, 2}
	o := mustOrchestrate(t, f, orchestrator.Config{
		Tenants: []orchestrator.TenantSpec{
			{Name: "batch", Quota: quotas[0]},
			{Name: "interactive", Quota: quotas[1], Priority: -1},
		},
	})
	admissions := 0
	o.OnAdmit = func(tenant, inflight int) {
		admissions++
		if q := quotas[tenant]; inflight > q {
			t.Fatalf("tenant %d at %d in flight, quota %d", tenant, inflight, q)
		}
	}
	seqs := []*workload.Sequence{
		tenantSeq(workload.Stress, 24, 7, "batch"),
		tenantSeq(workload.Stress, 16, 7, "interactive"),
	}
	if err := o.InjectTenants(seqs); err != nil {
		t.Fatal(err)
	}
	o.Start()
	sum := f.Run()
	if admissions != 40 {
		t.Fatalf("admitted %d of 40 under throttle policy", admissions)
	}
	if sum.Apps != 40 {
		t.Fatalf("finished %d of 40", sum.Apps)
	}
	stats := o.TenantStats()
	checkLedger(t, stats, true)
	for _, st := range stats {
		if st.Throttled == 0 {
			t.Errorf("tenant %s: stress arrivals against quota %d never throttled", st.Tenant, st.Quota)
		}
	}
}

// TestRejectPolicyDropsOverQuota: a reject-policy tenant sheds load at
// the door, the drops show up in the ledger, and the farm never sees
// them (its own app ledger counts only admissions).
func TestRejectPolicyDropsOverQuota(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	o := mustOrchestrate(t, f, orchestrator.Config{
		Tenants: []orchestrator.TenantSpec{
			{Name: "spiky", Quota: 1, OverQuota: orchestrator.OverQuotaReject},
		},
	})
	if err := o.InjectTenants([]*workload.Sequence{
		tenantSeq(workload.Stress, 30, 11, "spiky"),
	}); err != nil {
		t.Fatal(err)
	}
	o.Start()
	sum := f.Run()
	st := o.TenantStats()[0]
	checkLedger(t, o.TenantStats(), true)
	if st.Rejected == 0 {
		t.Fatal("stress arrivals against quota 1 never rejected")
	}
	if st.Throttled != 0 {
		t.Fatalf("reject policy throttled %d apps", st.Throttled)
	}
	if sum.Apps != st.Admitted {
		t.Fatalf("farm finished %d apps, ledger admitted %d", sum.Apps, st.Admitted)
	}
	if st.Submitted != 30 {
		t.Fatalf("submitted %d of 30", st.Submitted)
	}
}

// TestPriorityReleaseOrder: when both tenants have queued work and one
// release slot opens per pump tick, the lower-priority-value tenant
// drains first. Observed as: the high-priority tenant's last admission
// never comes after the low-priority tenant still has queued work that
// was admittable. A coarse but deterministic check: with equal queues
// and one shared quota bottleneck, the high-priority tenant finishes
// admitting no later than the low-priority one.
func TestPriorityReleaseOrder(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	o := mustOrchestrate(t, f, orchestrator.Config{
		Tenants: []orchestrator.TenantSpec{
			{Name: "bulk", Quota: 2, Priority: 5},
			{Name: "urgent", Quota: 2, Priority: 1},
		},
	})
	var order []int
	o.OnAdmit = func(tenant, _ int) { order = append(order, tenant) }
	if err := o.InjectTenants([]*workload.Sequence{
		tenantSeq(workload.Stress, 12, 3, "bulk"),
		tenantSeq(workload.Stress, 12, 3, "urgent"),
	}); err != nil {
		t.Fatal(err)
	}
	o.Start()
	f.Run()
	checkLedger(t, o.TenantStats(), true)
	if len(order) != 24 {
		t.Fatalf("admitted %d of 24", len(order))
	}
	last := make(map[int]int)
	for i, tenant := range order {
		last[tenant] = i
	}
	// Both tenants see identical arrival pressure and quotas; the
	// urgent tenant must not be the one holding the final admission.
	if last[1] > last[0] {
		t.Errorf("urgent tenant (priority 1) admitted last at %d, after bulk's last at %d", last[1], last[0])
	}
}

// TestAutoscaleGrowsAndDrains: sustained pressure commissions standby
// pairs; the post-burst lull drains them back; no application is lost
// across either transition and the farm ends back at a small online
// fleet with an empty draining set.
func TestAutoscaleGrowsAndDrains(t *testing.T) {
	cfg := cluster.DefaultFarmConfig(4)
	cfg.Standby = 3
	f := cluster.MustNewFarm(cfg)
	o := mustOrchestrate(t, f, orchestrator.Config{
		Tenants: []orchestrator.TenantSpec{{Name: "burst"}},
		Autoscale: &orchestrator.AutoscaleSpec{
			Min: 1, Max: 4,
			Every:  200 * sim.Millisecond,
			Window: 2,
			UpLoad: 4, DownLoad: 1,
		},
	})
	if err := o.InjectTenants([]*workload.Sequence{
		tenantSeq(workload.Stress, 60, 17, "burst"),
	}); err != nil {
		t.Fatal(err)
	}
	o.Start()
	sum := f.Run()
	if sum.Apps != 60 {
		t.Fatalf("finished %d of 60", sum.Apps)
	}
	checkLedger(t, o.TenantStats(), true)
	as := o.AutoscaleStats()
	if as == nil {
		t.Fatal("autoscale stats missing")
	}
	if as.ScaleUps == 0 {
		t.Fatal("stress burst on one online pair never scaled up")
	}
	if as.PeakOnline <= 1 {
		t.Fatalf("peak online %d despite %d scale-ups", as.PeakOnline, as.ScaleUps)
	}
	if as.ScaleDowns == 0 {
		t.Fatal("post-burst lull never drained a pair")
	}
	if f.DrainingCount() != 0 {
		t.Fatalf("%d pairs still draining at end of run", f.DrainingCount())
	}
	if as.FinalOnline != f.OnlineCount() {
		t.Fatalf("stats final online %d, farm reports %d", as.FinalOnline, f.OnlineCount())
	}
	for _, ev := range as.Events {
		if ev.Online < 1 || ev.Online > 4 {
			t.Fatalf("event %+v left online count outside [1, 4]", ev)
		}
	}
}

// TestAutoscaleWithoutTenants: the autoscaler runs over a plain
// injected workload too — no admission layer, pure elasticity.
func TestAutoscaleWithoutTenants(t *testing.T) {
	cfg := cluster.DefaultFarmConfig(3)
	cfg.Standby = 2
	f := cluster.MustNewFarm(cfg)
	o := mustOrchestrate(t, f, orchestrator.Config{
		Autoscale: &orchestrator.AutoscaleSpec{
			Min: 1, Max: 3,
			Every:  200 * sim.Millisecond,
			Window: 2,
			UpLoad: 4, DownLoad: 1,
		},
	})
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 40
	if err := f.Inject(workload.Generate(p, 29)); err != nil {
		t.Fatal(err)
	}
	o.Start()
	sum := f.Run()
	if sum.Apps != 40 {
		t.Fatalf("finished %d of 40", sum.Apps)
	}
	if o.TenantStats() != nil {
		t.Fatal("tenant stats for a tenant-less run")
	}
	if o.AutoscaleStats().ScaleUps == 0 {
		t.Fatal("stress load on one online pair never scaled up")
	}
}

// TestValidation: the config surface rejects the obvious misuses.
func TestValidation(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	cases := []struct {
		name string
		cfg  orchestrator.Config
	}{
		{"duplicate tenant", orchestrator.Config{Tenants: []orchestrator.TenantSpec{{Name: "a"}, {Name: "a"}}}},
		{"empty tenant name", orchestrator.Config{Tenants: []orchestrator.TenantSpec{{Name: ""}}}},
		{"bad over-quota", orchestrator.Config{Tenants: []orchestrator.TenantSpec{{Name: "a", OverQuota: "drop"}}}},
		{"negative quota", orchestrator.Config{Tenants: []orchestrator.TenantSpec{{Name: "a", Quota: -1}}}},
		{"max mismatch", orchestrator.Config{Autoscale: &orchestrator.AutoscaleSpec{Min: 1, Max: 5}}},
		{"inverted band", orchestrator.Config{Autoscale: &orchestrator.AutoscaleSpec{Min: 1, Max: 2, UpLoad: 2, DownLoad: 3}}},
	}
	for _, tc := range cases {
		if _, err := orchestrator.New(f, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
