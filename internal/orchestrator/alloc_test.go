package orchestrator

import (
	"testing"

	"versaslot/internal/cluster"
	"versaslot/internal/workload"
)

// TestAdmissionSteadyStateZeroAlloc pins the admission layer's cost on
// top of the farm's zero-alloc dispatch (TestDispatchSteadyStateZeroAlloc
// in internal/cluster): once the throttle queue's backing array and the
// kernel's event storage are warm, an over-quota throttle decision, a
// reject decision, and an empty pump sweep allocate nothing per
// arrival. The release order and pump closure are built once in New,
// so none of these paths touches the heap at steady state.
func TestAdmissionSteadyStateZeroAlloc(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 4
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	o, err := New(f, Config{Tenants: []TenantSpec{
		{Name: "throttled", Quota: 1},
		{Name: "dropped", Quota: 1, OverQuota: OverQuotaReject},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Put both tenants over quota without running the farm: admitted
	// minus finished is the in-flight count admission compares.
	o.firstID = []int{0, len(apps)}
	o.submitted = []int{len(apps), len(apps)}
	o.admitted = []int{1, 1}

	// Warm the throttle queue's backing array and the kernel's event
	// pool, then drain the queue back to zero length.
	for _, a := range apps {
		o.arrive(arrSlot{app: a, tenant: 0})
	}
	o.queues[0] = o.queues[0][:0]

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		o.arrive(arrSlot{app: apps[i%len(apps)], tenant: 0})
		o.queues[0] = o.queues[0][:0] // steady state: pump would drain it
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state throttle decision allocates %.1f objects per arrival, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		o.arrive(arrSlot{app: apps[i%len(apps)], tenant: 1})
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state reject decision allocates %.1f objects per arrival, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() { o.pump() })
	if allocs != 0 {
		t.Errorf("empty pump sweep allocates %.1f objects per tick, want 0", allocs)
	}
}
