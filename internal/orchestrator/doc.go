// Package orchestrator is the elastic control plane over a cluster
// farm: multi-tenant admission control and a deterministic,
// load-driven autoscaler.
//
// # Tenants and admission
//
// A TenantSpec declares one tenant's workload (its own arrival
// process, seeded from the scenario seed plus the tenant name), its
// quota (maximum in-flight applications), its release priority, and
// its over-quota policy — reject (drop at the door) or throttle
// (queue until headroom opens). Admission runs at every submission
// instant; throttled applications release only at admission pump
// ticks, in priority order, FIFO within a tenant.
//
// # Autoscaling
//
// The autoscaler observes windowed per-pair load (through the same
// bounded-memory sketches as the streaming metrics pipeline) on a
// fixed cadence and keeps the online pair count inside [Min, Max]
// with a hysteresis band: sustained load above UpLoad commissions a
// standby pair after a first-class scale-up latency; sustained load
// below DownLoad drains the least-loaded pair through the farm's
// cross-pair migration path and returns it to standby once idle.
//
// # Invariants
//
//   - Determinism: every orchestrator event runs on the farm's
//     coordinator kernel — arrivals at sim.PriArrival, admission pump
//     ticks, autoscale ticks, activations, and drains at
//     sim.PriFarmControl. None of them run inside pair-local
//     completion hooks, so an orchestrated run is byte-identical
//     whether the farm executes sequentially, in a parallel sweep, or
//     sharded across worker kernels.
//   - Quota: a tenant's in-flight count (admitted minus finished)
//     never exceeds its quota at any admission instant; the OnAdmit
//     hook exposes the count for property tests.
//   - Ledger: per tenant, submitted == admitted + rejected + queued
//     at every instant, and admitted == finished + in-flight; a
//     completed run ends with queued == in-flight == 0.
//   - No loss on drain: a draining pair's ready queue migrates to
//     healthy online pairs (or requeues locally when nowhere fits);
//     drained applications finish and reconcile in the same ledger.
//   - Single-writer stats: per-(tenant, pair) response sketches and
//     SLO counters live in a metrics.GroupLanes matrix where each
//     lane is written only by its pair's worker, mirroring the farm's
//     finishedBy discipline; merges are associative, so per-tenant
//     distributions are exact in every execution mode.
package orchestrator
