package orchestrator

import (
	"fmt"

	"versaslot/internal/cluster"
	"versaslot/internal/metrics"
	"versaslot/internal/sim"
)

// AutoscaleSpec parameterizes the deterministic autoscaler: a
// fixed-cadence evaluation loop over windowed load that commissions
// standby pairs under pressure (paying a first-class scale-up
// latency) and drains the least-loaded pair when the fleet runs cold.
type AutoscaleSpec struct {
	// Min and Max bound the online pair count. The farm must be built
	// with Max pairs total (Max - initial online in standby); Min
	// defaults to 1.
	Min int `json:"min,omitempty"`
	Max int `json:"max"`
	// Every is the observation cadence (default 2s of virtual time);
	// Window is the number of observations per scaling decision
	// (default 3).
	Every  sim.Duration `json:"every,omitempty"`
	Window int          `json:"window,omitempty"`
	// UpLatency models pair commissioning (power-up, bitstream
	// pre-stage): a scale-up decision takes effect this long after it
	// is made (default 500ms).
	UpLatency sim.Duration `json:"up_latency,omitempty"`
	// UpLoad and DownLoad are per-online-pair load thresholds (mean
	// unfinished apps per pair over the window): above UpLoad the
	// fleet grows, below DownLoad it shrinks (defaults 6 and 2).
	UpLoad   int `json:"up_load,omitempty"`
	DownLoad int `json:"down_load,omitempty"`
}

// Defaulted returns the spec with zero fields replaced by defaults.
func (s AutoscaleSpec) Defaulted() AutoscaleSpec {
	if s.Min == 0 {
		s.Min = 1
	}
	if s.Every == 0 {
		s.Every = 2 * sim.Second
	}
	if s.Window == 0 {
		s.Window = 3
	}
	if s.UpLatency == 0 {
		s.UpLatency = 500 * sim.Millisecond
	}
	if s.UpLoad == 0 {
		s.UpLoad = 6
	}
	if s.DownLoad == 0 {
		s.DownLoad = 2
	}
	return s
}

// Validate checks a defaulted spec.
func (s AutoscaleSpec) Validate() error {
	if s.Min < 1 {
		return fmt.Errorf("orchestrator: autoscale min %d < 1", s.Min)
	}
	if s.Max < s.Min {
		return fmt.Errorf("orchestrator: autoscale max %d < min %d", s.Max, s.Min)
	}
	if s.Every <= 0 {
		return fmt.Errorf("orchestrator: autoscale cadence %v <= 0", s.Every)
	}
	if s.Window < 1 {
		return fmt.Errorf("orchestrator: autoscale window %d < 1", s.Window)
	}
	if s.UpLatency < 0 {
		return fmt.Errorf("orchestrator: negative scale-up latency %v", s.UpLatency)
	}
	if s.UpLoad <= s.DownLoad {
		return fmt.Errorf("orchestrator: autoscale up_load %d must exceed down_load %d (hysteresis band)", s.UpLoad, s.DownLoad)
	}
	if s.DownLoad < 0 {
		return fmt.Errorf("orchestrator: negative down_load %d", s.DownLoad)
	}
	return nil
}

// ScaleEvent is one autoscaler action, timestamped in virtual time.
type ScaleEvent struct {
	// At is the kernel instant the event took effect.
	At sim.Time `json:"at"`
	// Kind is "scale-up" (a standby pair came online), "drain-start"
	// (a pair stopped accepting work and migrated its queue), or
	// "drain-done" (a drained pair returned to standby).
	Kind string `json:"kind"`
	// Pair is the pair index acted on; Online is the online count
	// after the event.
	Pair   int `json:"pair"`
	Online int `json:"online"`
}

// AutoscaleStats summarizes the autoscaler's activity over a run.
type AutoscaleStats struct {
	// ScaleUps and ScaleDowns count completed operations (a drain
	// counts when it starts; every started drain finishes before the
	// run ends).
	ScaleUps   int `json:"scale_ups"`
	ScaleDowns int `json:"scale_downs"`
	// DrainedApps counts ready-queue applications migrated off
	// draining pairs (cross-pair moves or same-pair requeues).
	DrainedApps int `json:"drained_apps,omitempty"`
	// FinalOnline and PeakOnline are the online pair count at the end
	// of the run and its maximum over the run.
	FinalOnline int `json:"final_online"`
	PeakOnline  int `json:"peak_online"`
	// Events is the full timestamped action log.
	Events []ScaleEvent `json:"events,omitempty"`
}

// autoscaler is the evaluation loop. Every tick runs on the
// coordinator kernel at sim.PriFarmControl, after the sharded
// executor's barrier, so its reads of farm-wide load are exact and
// its actions are part of the deterministic control-plane schedule.
type autoscaler struct {
	o    *Orchestrator
	spec AutoscaleSpec

	// win accumulates per-pair-load observations (millesimal, so
	// integer sketches keep sub-app resolution) between decisions.
	win       *metrics.Sketch
	ticks     int
	pendingUp int
	// reserved marks standby pairs already claimed by an in-flight
	// scale-up so back-to-back decisions never double-commission.
	reserved []bool

	scaleUps    int
	scaleDowns  int
	drainedApps int
	peak        int
	events      []ScaleEvent

	// tickID is the pending evaluation tick's handle, exposed through
	// Orchestrator.TickHorizon as part of the lookahead horizon.
	tickID sim.EventID
}

func newAutoscaler(o *Orchestrator, spec AutoscaleSpec) *autoscaler {
	return &autoscaler{
		o:        o,
		spec:     spec,
		win:      metrics.NewSketch(metrics.WindowSketchBits),
		reserved: make([]bool, len(o.f.Pairs)),
		peak:     o.f.OnlineCount(),
	}
}

// arm schedules the first tick.
func (as *autoscaler) arm() {
	as.tickID = as.o.f.K.ScheduleP(as.spec.Every, sim.PriFarmControl, as.tick)
}

// tick is one observation instant; every spec.Window ticks it becomes
// a decision instant.
func (as *autoscaler) tick() {
	o := as.o
	f := o.f

	// Finish any drain whose pair has gone idle: the pair's ready
	// queue was migrated at drain-start, so it only has to run down
	// its in-flight slots.
	as.finishDrains()

	if o.done() {
		return
	}

	// Observe load per online-or-pending pair, millesimal. Throttle-
	// queued apps count as load: a fleet whose only capacity for a
	// spec sits in standby must still see pressure, or it deadlocks
	// cold.
	total := int64(o.queuedTotal())
	for _, l := range f.LoadView() {
		total += int64(l)
	}
	capacity := int64(f.OnlineCount() + as.pendingUp)
	if capacity < 1 {
		capacity = 1
	}
	as.win.Add(total * 1000 / capacity)
	as.ticks++

	if as.ticks >= as.spec.Window {
		as.decide()
		as.ticks = 0
		as.win.Reset()
	}
	as.arm()
}

// finishDrains returns every idle draining pair to standby.
func (as *autoscaler) finishDrains() {
	f := as.o.f
	if f.DrainingCount() == 0 {
		return
	}
	loads := f.LoadView()
	for i := range f.Pairs {
		if f.PairStateOf(i) == cluster.PairDraining && loads[i] == 0 {
			if err := f.FinishDrain(i); err != nil {
				panic(err)
			}
			as.event("drain-done", i)
		}
	}
}

// decide compares the windowed mean against the hysteresis band and
// commissions or drains at most one pair.
func (as *autoscaler) decide() {
	f := as.o.f
	mean := as.win.Mean()
	online := f.OnlineCount()

	if mean > float64(as.spec.UpLoad)*1000 {
		if online+as.pendingUp >= as.spec.Max {
			return
		}
		// Lowest-index unreserved standby pair.
		for i := range f.Pairs {
			if f.PairStateOf(i) == cluster.PairStandby && !as.reserved[i] {
				as.reserved[i] = true
				as.pendingUp++
				pair := i
				f.K.ScheduleP(as.spec.UpLatency, sim.PriFarmControl, func() {
					as.activate(pair)
				})
				return
			}
		}
		return
	}

	if mean < float64(as.spec.DownLoad)*1000 {
		// One drain at a time, never below Min, never while a
		// scale-up is in flight (the fleet is visibly oscillating —
		// let the band settle), never the last online pair.
		if as.pendingUp > 0 || f.DrainingCount() > 0 || online <= as.spec.Min || online <= 1 {
			return
		}
		victim, loads := -1, f.LoadView()
		for i := range f.Pairs {
			if f.PairStateOf(i) != cluster.PairOnline {
				continue
			}
			// Min load; ties to the highest index, so the stable
			// low-index pairs stay online.
			if victim < 0 || loads[i] <= loads[victim] {
				victim = i
			}
		}
		if victim < 0 {
			return
		}
		moved, err := f.StartDrain(victim)
		if err != nil {
			panic(err)
		}
		as.drainedApps += moved
		as.scaleDowns++
		as.event("drain-start", victim)
	}
}

// activate commissions a reserved standby pair (the deferred half of
// a scale-up decision).
func (as *autoscaler) activate(pair int) {
	f := as.o.f
	as.pendingUp--
	as.reserved[pair] = false
	if err := f.ActivatePair(pair); err != nil {
		panic(err)
	}
	as.scaleUps++
	if n := f.OnlineCount(); n > as.peak {
		as.peak = n
	}
	as.event("scale-up", pair)
	// Newly commissioned capacity may unblock capacity-throttled
	// queues immediately.
	if as.o.queuedTotal() > 0 {
		as.o.armPump()
	}
}

// event appends one timestamped action to the log.
func (as *autoscaler) event(kind string, pair int) {
	as.events = append(as.events, ScaleEvent{
		At:     as.o.f.K.Now(),
		Kind:   kind,
		Pair:   pair,
		Online: as.o.f.OnlineCount(),
	})
}

// stats snapshots the run's autoscaling summary.
func (as *autoscaler) stats() *AutoscaleStats {
	return &AutoscaleStats{
		ScaleUps:    as.scaleUps,
		ScaleDowns:  as.scaleDowns,
		DrainedApps: as.drainedApps,
		FinalOnline: as.o.f.OnlineCount(),
		PeakOnline:  as.peak,
		Events:      as.events,
	}
}
