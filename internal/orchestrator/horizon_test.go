package orchestrator_test

import (
	"testing"

	"versaslot/internal/cluster"
	"versaslot/internal/orchestrator"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// TestTickHorizonAutoscale pins the orchestrator's share of the
// sharded executor's lookahead bound: before Start nothing is armed;
// after Start the autoscaler's first evaluation tick is the horizon,
// and the coordinator kernel's next event lies at or before it — the
// invariant that keeps shards from running past a control tick.
func TestTickHorizonAutoscale(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	o := mustOrchestrate(t, f, orchestrator.Config{
		Autoscale: &orchestrator.AutoscaleSpec{Max: 2, Every: sim.Second},
	})
	if _, armed := o.TickHorizon(); armed {
		t.Fatal("TickHorizon armed before Start")
	}
	o.Start()
	horizon, armed := o.TickHorizon()
	if !armed {
		t.Fatal("autoscale tick scheduled but TickHorizon reports none")
	}
	if want := f.K.Now() + sim.Time(sim.Second); horizon != want {
		t.Errorf("autoscale horizon %v, want %v", horizon, want)
	}
	if next, ok := f.K.NextAt(); !ok || next > horizon {
		t.Errorf("coordinator next event %v (pending=%v) past the orchestrator horizon %v", next, ok, horizon)
	}
}

// TestTickHorizonTracksAdmissionPump drives a quota-throttled run one
// kernel step at a time: whenever the admission pump (or an autoscale
// tick) is pending, the reported horizon must be visible on the
// coordinator kernel at or before that instant.
func TestTickHorizonTracksAdmissionPump(t *testing.T) {
	f := cluster.MustNewFarm(cluster.DefaultFarmConfig(2))
	o := mustOrchestrate(t, f, orchestrator.Config{
		Tenants:    []orchestrator.TenantSpec{{Name: "batch", Quota: 1}},
		AdmitEvery: 100 * sim.Millisecond,
	})
	if err := o.InjectTenants([]*workload.Sequence{tenantSeq(workload.Stress, 8, 7, "batch")}); err != nil {
		t.Fatal(err)
	}
	o.Start()
	sawPump := false
	for f.K.Step() {
		horizon, armed := o.TickHorizon()
		if !armed {
			continue
		}
		sawPump = true
		if horizon < f.K.Now() {
			t.Fatalf("horizon %v behind the clock %v", horizon, f.K.Now())
		}
		if next, ok := f.K.NextAt(); !ok || next > horizon {
			t.Fatalf("pump tick at %v invisible to the coordinator (next event %v, pending=%v)", horizon, next, ok)
		}
	}
	if !sawPump {
		t.Error("quota-1 tenant with 8 apps never armed the admission pump")
	}
}
