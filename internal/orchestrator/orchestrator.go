package orchestrator

import (
	"fmt"
	"sort"

	"versaslot/internal/appmodel"
	"versaslot/internal/cluster"
	"versaslot/internal/metrics"
	"versaslot/internal/migrate"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Over-quota policies.
const (
	// OverQuotaThrottle queues over-quota submissions until the
	// tenant's in-flight count drops below its quota (the default).
	OverQuotaThrottle = "throttle"
	// OverQuotaReject drops over-quota submissions; they never enter
	// the farm and are counted in the tenant's rejected ledger.
	OverQuotaReject = "reject"
)

// defaultAdmitEvery is the admission pump's cadence: how often queued
// (throttled) submissions are re-examined for release. Releases happen
// only at pump instants — never inline from a completion hook — so the
// admission control plane stays on the coordinator kernel and the run
// is byte-identical under the sharded farm executor.
const defaultAdmitEvery = 250 * sim.Millisecond

// TenantSpec declares one tenant of a multi-tenant farm: its share of
// the fleet (quota), its standing in the release order (priority), its
// own arrival process, and its service-level objective.
type TenantSpec struct {
	// Name identifies the tenant; must be unique within a scenario.
	// The tenant's workload seed derives from (scenario seed, name),
	// so adding or renaming one tenant never perturbs another's
	// arrivals.
	Name string `json:"name"`
	// Apps sizes the tenant's generated sequence; zero inherits the
	// scenario's app count.
	Apps int `json:"apps,omitempty"`
	// Quota is the tenant's maximum in-flight (admitted, unfinished)
	// application count; zero means unlimited. Admission enforces it
	// at every arrival and release instant.
	Quota int `json:"quota,omitempty"`
	// Priority orders throttle-queue releases when capacity frees up:
	// lower values release first; ties release in declaration order.
	Priority int `json:"priority,omitempty"`
	// OverQuota selects what happens to an over-quota submission:
	// "throttle" (default) queues it, "reject" drops it.
	OverQuota string `json:"over_quota,omitempty"`
	// SLO is the tenant's response-time objective; per-tenant SLO
	// attainment (fraction of finished apps with response <= SLO) is
	// reported when set.
	SLO sim.Duration `json:"slo,omitempty"`
	// Condition overrides the scenario's congestion regime for this
	// tenant's generated workload.
	Condition string `json:"condition,omitempty"`
	// Arrival selects the tenant's arrival process; nil keeps the
	// classic uniform generator under the tenant's condition.
	Arrival *workload.ArrivalSpec `json:"arrival,omitempty"`
}

// Validate checks the tenant-local invariants (the scenario layer
// additionally checks name uniqueness and the arrival spec against the
// resolved condition).
func (t TenantSpec) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("orchestrator: tenant with empty name")
	}
	if t.Apps < 0 {
		return fmt.Errorf("orchestrator: tenant %q: negative app count %d", t.Name, t.Apps)
	}
	if t.Quota < 0 {
		return fmt.Errorf("orchestrator: tenant %q: negative quota %d", t.Name, t.Quota)
	}
	if t.SLO < 0 {
		return fmt.Errorf("orchestrator: tenant %q: negative slo %v", t.Name, t.SLO)
	}
	switch t.OverQuota {
	case "", OverQuotaThrottle, OverQuotaReject:
	default:
		return fmt.Errorf("orchestrator: tenant %q: unknown over_quota policy %q (want throttle|reject)", t.Name, t.OverQuota)
	}
	return nil
}

// rejects reports whether over-quota submissions are dropped.
func (t TenantSpec) rejects() bool { return t.OverQuota == OverQuotaReject }

// TenantStat is one tenant's ledger and service outcome. The ledger
// always reconciles: Submitted == Admitted + Rejected + Queued, and
// Admitted == Finished + InFlight. A run that completed (horizon after
// the last completion) has Queued == InFlight == 0.
type TenantStat struct {
	// Tenant echoes the tenant name; Priority and Quota echo the spec.
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	Quota    int    `json:"quota,omitempty"`
	// Submitted counts the tenant's arrivals; Admitted the ones
	// dispatched into the farm; Rejected the over-quota drops;
	// Throttled the ones that waited in the admission queue at least
	// once (a throttled app is still admitted later, so Throttled
	// overlaps Admitted).
	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected,omitempty"`
	Throttled int `json:"throttled,omitempty"`
	// Finished counts completions; InFlight and Queued are the
	// end-of-run remainders (zero for a completed run).
	Finished int `json:"finished"`
	InFlight int `json:"in_flight,omitempty"`
	Queued   int `json:"queued,omitempty"`
	// MeanRT/P50/P99 summarize the tenant's response times (sketch-
	// derived, like the farm's streaming pipeline). Response time is
	// measured from submission, so throttle wait counts against it.
	MeanRT sim.Duration `json:"mean_rt,omitempty"`
	P50    sim.Duration `json:"p50,omitempty"`
	P99    sim.Duration `json:"p99,omitempty"`
	// SLO echoes the spec; SLOAttainment is the fraction of finished
	// apps within it (reported only when an SLO is set and at least
	// one app finished).
	SLO           sim.Duration `json:"slo,omitempty"`
	SLOAttainment float64      `json:"slo_attainment,omitempty"`
}

// Config parameterizes an orchestrator over one farm.
type Config struct {
	// Tenants declares the tenant set; empty means no admission
	// control (the autoscaler can still run over a plain workload).
	Tenants []TenantSpec
	// Autoscale enables the autoscaler; nil leaves the pair pool
	// fixed. When set, the farm must have been built with Max pairs
	// total and Max - initial online pairs in standby.
	Autoscale *AutoscaleSpec
	// AdmitEvery overrides the admission pump cadence (default 250ms
	// of virtual time).
	AdmitEvery sim.Duration
}

// Orchestrator is the control plane over one farm: per-tenant
// admission (quotas, priorities, reject/throttle) and the load-driven
// autoscaler. All of its events run on the farm's coordinator kernel —
// arrivals at sim.PriArrival, everything else (admission pump ticks,
// autoscale ticks, activations, drains) at sim.PriFarmControl — so an
// orchestrated run is byte-identical sequential, parallel-swept, and
// sharded.
type Orchestrator struct {
	f   *cluster.Farm
	cfg Config

	// Per-tenant ledgers. Every counter here is written only on the
	// coordinator (arrival and pump instants); completions are counted
	// in resp's per-(tenant, pair) lanes by the pair-local finish
	// hooks, so sharded workers never share a written cell.
	submitted []int
	admitted  []int
	rejected  []int
	throttled []int
	queues    [][]*appmodel.App

	// resp accumulates per-(tenant, pair) response sketches, counts,
	// and SLO hits; see metrics.GroupLanes for the writer discipline.
	resp *metrics.GroupLanes

	// firstID[i] is tenant i's first app ID; IDs are contiguous per
	// tenant, so tenantOf is a range scan.
	firstID []int

	// Merged arrival stream across tenants, walked by one chained
	// cursor event (the farm's own Inject cursor pattern).
	slots []arrSlot
	pos   int
	arrFn func()

	// order is the static release order (priority asc, ties in
	// declaration order) and pumpFn the pump's bound closure; both are
	// built once in New so a steady-state admission decision allocates
	// nothing.
	order     []int
	pumpFn    func()
	pumpArmed bool
	pumpID    sim.EventID
	as        *autoscaler

	// OnAdmit, when set, observes every admission with the tenant's
	// in-flight count after the admit — the hook the property tests
	// use to assert quotas are never exceeded at any instant.
	OnAdmit func(tenant, inflight int)
}

type arrSlot struct {
	app    *appmodel.App
	tenant int
}

// New builds an orchestrator over a farm. With tenants configured it
// chains per-pair completion hooks for the tenant ledgers; with
// autoscale configured it validates the farm was built to Max pairs.
func New(f *cluster.Farm, cfg Config) (*Orchestrator, error) {
	if cfg.AdmitEvery < 0 {
		return nil, fmt.Errorf("orchestrator: negative admit cadence %v", cfg.AdmitEvery)
	}
	if cfg.AdmitEvery == 0 {
		cfg.AdmitEvery = defaultAdmitEvery
	}
	names := make(map[string]bool, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if names[t.Name] {
			return nil, fmt.Errorf("orchestrator: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
	}
	o := &Orchestrator{f: f, cfg: cfg}
	if cfg.Autoscale != nil {
		spec := cfg.Autoscale.Defaulted()
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if spec.Max != len(f.Pairs) {
			return nil, fmt.Errorf("orchestrator: autoscale max %d but the farm was built with %d pairs (build the farm with Pairs=max, Standby=max-initial)",
				spec.Max, len(f.Pairs))
		}
		if f.OnlineCount() < spec.Min {
			return nil, fmt.Errorf("orchestrator: %d pairs online at start, below autoscale min %d", f.OnlineCount(), spec.Min)
		}
		o.as = newAutoscaler(o, spec)
	}
	if n := len(cfg.Tenants); n > 0 {
		o.submitted = make([]int, n)
		o.admitted = make([]int, n)
		o.rejected = make([]int, n)
		o.throttled = make([]int, n)
		o.queues = make([][]*appmodel.App, n)
		o.firstID = make([]int, n)
		o.resp = metrics.NewGroupLanes(n, len(f.Pairs), metrics.GlobalSketchBits)
		o.order = o.releaseOrder()
		o.chainFinishHooks()
	}
	o.pumpFn = o.pump
	return o, nil
}

// chainFinishHooks appends a per-tenant accounting hook to every
// engine's OnAppFinished: completions land in the (tenant, pair) lane
// owned by the pair's worker, the same single-writer pattern as the
// farm's finishedBy counters.
func (o *Orchestrator) chainFinishHooks() {
	for i, pair := range o.f.Pairs {
		lane := i
		for _, mode := range []migrate.Mode{migrate.Base, migrate.Boost} {
			e := pair.Engine(mode)
			prev := e.OnAppFinished
			e.OnAppFinished = func(a *appmodel.App) {
				if prev != nil {
					prev(a)
				}
				t := o.tenantOf(a.ID)
				if t < 0 {
					return
				}
				rt := int64(a.ResponseTime())
				o.resp.Observe(t, lane, rt, o.cfg.Tenants[t].SLO > 0 && rt <= int64(o.cfg.Tenants[t].SLO))
			}
		}
	}
}

// tenantOf maps an app ID to its tenant index via the contiguous
// per-tenant ID ranges (-1 for apps the orchestrator did not inject).
func (o *Orchestrator) tenantOf(id int) int {
	for i := len(o.firstID) - 1; i >= 0; i-- {
		if id >= o.firstID[i] {
			if id < o.firstID[i]+o.submitted[i] {
				return i
			}
			return -1
		}
	}
	return -1
}

// InjectTenants instantiates one sequence per tenant (same order as
// Config.Tenants), assigns each tenant a contiguous app-ID range, and
// schedules the merged arrival stream on the coordinator kernel. Every
// arrival passes through admission at its instant.
func (o *Orchestrator) InjectTenants(seqs []*workload.Sequence) error {
	if len(seqs) != len(o.cfg.Tenants) {
		return fmt.Errorf("orchestrator: %d sequences for %d tenants", len(seqs), len(o.cfg.Tenants))
	}
	base := 0
	for i, seq := range seqs {
		apps, err := seq.Instantiate(base)
		if err != nil {
			return err
		}
		for _, a := range apps {
			if !o.f.CanHostAnywhere(a) {
				return fmt.Errorf("orchestrator: tenant %q: app %v (%s) fits no slot class on any pair of the farm",
					o.cfg.Tenants[i].Name, a, a.Spec.Name)
			}
		}
		o.firstID[i] = base
		o.submitted[i] = len(apps)
		base += len(apps)
		for _, a := range apps {
			o.slots = append(o.slots, arrSlot{app: a, tenant: i})
		}
	}
	// Stable by arrival instant: same-instant submissions keep tenant
	// declaration order, then per-tenant ID order.
	sort.SliceStable(o.slots, func(i, j int) bool {
		return o.slots[i].app.Arrival < o.slots[j].app.Arrival
	})
	if len(o.slots) == 0 {
		return nil
	}
	o.arrFn = func() {
		s := o.slots[o.pos]
		o.pos++
		if o.pos < len(o.slots) {
			o.f.K.AtP(o.slots[o.pos].app.Arrival, sim.PriArrival, o.arrFn)
		}
		o.arrive(s)
	}
	o.f.K.AtP(o.slots[0].app.Arrival, sim.PriArrival, o.arrFn)
	return nil
}

// Start arms the autoscaler's first evaluation tick. Call after
// injection (tenant or plain), before Run.
func (o *Orchestrator) Start() {
	if o.as != nil {
		o.as.arm()
	}
}

// inFlight is tenant t's admitted-but-unfinished count. On the
// coordinator between phases this is exact in every execution mode.
func (o *Orchestrator) inFlight(t int) int {
	return o.admitted[t] - o.resp.Count(t)
}

// arrive is the admission decision at one submission instant.
func (o *Orchestrator) arrive(s arrSlot) {
	t := o.cfg.Tenants[s.tenant]
	overQuota := t.Quota > 0 && o.inFlight(s.tenant) >= t.Quota
	if overQuota && t.rejects() {
		o.rejected[s.tenant]++
		return
	}
	// Over quota (throttle policy), or schedulable capacity does not
	// exist yet (every hosting pair is in standby — the autoscaler
	// will commission one under queue pressure): hold the app.
	if overQuota || !o.f.CanDispatch(s.app) {
		o.queues[s.tenant] = append(o.queues[s.tenant], s.app)
		o.throttled[s.tenant]++
		o.armPump()
		return
	}
	o.admit(s.tenant, s.app)
}

// admit dispatches one application into the farm and bumps the ledger.
func (o *Orchestrator) admit(t int, a *appmodel.App) {
	o.admitted[t]++
	if o.OnAdmit != nil {
		o.OnAdmit(t, o.inFlight(t))
	}
	o.f.DispatchNow(a)
}

// armPump schedules the next admission pump tick if one is not
// already pending.
func (o *Orchestrator) armPump() {
	if o.pumpArmed {
		return
	}
	o.pumpArmed = true
	o.pumpID = o.f.K.ScheduleP(o.cfg.AdmitEvery, sim.PriFarmControl, o.pumpFn)
}

// TickHorizon returns the earliest control tick the orchestrator has
// pending on the coordinator kernel — the admission pump or the
// autoscaler's next evaluation — and false when neither is armed. The
// sharded executor's conservative-lookahead bound is the coordinator
// kernel's next event time; this accessor exposes the orchestrator's
// share of that horizon, so tests and diagnostics can verify that
// every orchestrator tick is visible to the coordinator before any
// shard is allowed to run past it.
func (o *Orchestrator) TickHorizon() (sim.Time, bool) {
	horizon, armed := sim.MaxTime, false
	if t, live := o.f.K.EventTime(o.pumpID); live && o.pumpArmed {
		horizon, armed = t, true
	}
	if o.as != nil {
		if t, live := o.f.K.EventTime(o.as.tickID); live && t < horizon {
			horizon, armed = t, true
		}
	}
	if !armed {
		return 0, false
	}
	return horizon, true
}

// pump re-examines the throttle queues: tenants release in priority
// order (lower first, ties in declaration order), each FIFO within the
// tenant, for as long as quota headroom and schedulable capacity
// exist. A blocked queue head blocks its tenant's queue — FIFO order
// is part of the fairness contract. The pump re-arms only while work
// remains queued, so it winds down with the workload.
func (o *Orchestrator) pump() {
	o.pumpArmed = false
	for _, t := range o.order {
		spec := o.cfg.Tenants[t]
		for len(o.queues[t]) > 0 {
			head := o.queues[t][0]
			if spec.Quota > 0 && o.inFlight(t) >= spec.Quota {
				break
			}
			if !o.f.CanDispatch(head) {
				break
			}
			copy(o.queues[t], o.queues[t][1:])
			o.queues[t] = o.queues[t][:len(o.queues[t])-1]
			o.admit(t, head)
		}
	}
	for _, q := range o.queues {
		if len(q) > 0 {
			o.armPump()
			return
		}
	}
}

// releaseOrder builds the tenant indices sorted by (priority, index);
// computed once in New, the tenant set being static for the run.
func (o *Orchestrator) releaseOrder() []int {
	order := make([]int, len(o.cfg.Tenants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return o.cfg.Tenants[order[a]].Priority < o.cfg.Tenants[order[b]].Priority
	})
	return order
}

// queuedTotal sums the throttle queues.
func (o *Orchestrator) queuedTotal() int {
	n := 0
	for _, q := range o.queues {
		n += len(q)
	}
	return n
}

// done reports whether the orchestrated run has fully wound down:
// every arrival fired, nothing queued, the farm quiescent, and no
// scale operation in flight. The autoscaler stops ticking on it.
func (o *Orchestrator) done() bool {
	if o.pos < len(o.slots) || o.queuedTotal() > 0 || !o.f.Quiescent() {
		return false
	}
	if o.as != nil && (o.as.pendingUp > 0 || o.f.DrainingCount() > 0) {
		return false
	}
	return true
}

// TenantStats summarizes the per-tenant ledgers and response
// distributions after Run. Nil when no tenants were configured.
func (o *Orchestrator) TenantStats() []TenantStat {
	if len(o.cfg.Tenants) == 0 {
		return nil
	}
	out := make([]TenantStat, len(o.cfg.Tenants))
	var sk *metrics.Sketch
	for i, t := range o.cfg.Tenants {
		finished := o.resp.Count(i)
		st := TenantStat{
			Tenant:    t.Name,
			Priority:  t.Priority,
			Quota:     t.Quota,
			Submitted: o.submitted[i],
			Admitted:  o.admitted[i],
			Rejected:  o.rejected[i],
			Throttled: o.throttled[i],
			Finished:  finished,
			InFlight:  o.inFlight(i),
			Queued:    len(o.queues[i]),
			SLO:       t.SLO,
		}
		if finished > 0 {
			sk = o.resp.MergeGroup(i, sk)
			st.MeanRT = sim.Duration(sk.Mean())
			st.P50 = sim.Duration(sk.Quantile(50))
			st.P99 = sim.Duration(sk.Quantile(99))
			if t.SLO > 0 {
				st.SLOAttainment = float64(o.resp.OKCount(i)) / float64(finished)
			}
		}
		out[i] = st
	}
	return out
}

// AutoscaleStats summarizes the autoscaler's activity after Run. Nil
// when autoscaling was not configured.
func (o *Orchestrator) AutoscaleStats() *AutoscaleStats {
	if o.as == nil {
		return nil
	}
	return o.as.stats()
}
