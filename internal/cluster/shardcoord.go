package cluster

import (
	"runtime"
	"sync/atomic"

	"versaslot/internal/sim"
)

// Sharded farm execution: conservative lookahead synchronization.
//
// The coordinator kernel f.K holds exactly the control plane: arrival
// dispatch (PriArrival), rebalance ticks, rack-link transfers,
// orchestrator pump/autoscale ticks and fault-injector chains
// (PriFarmControl). Pair-local events live on the per-pair kernels,
// and pair events never schedule onto f.K (completions only bump the
// farm's per-pair counters), so the coordinator's event queue is never
// extended from a worker.
//
// The next coordinator instant T is therefore the earliest possible
// cross-shard interaction: a control event at T may inject into any
// pair, strike any slot, or deliver a migration. Every pair is free to
// run ahead to T — conservative lookahead — and a pair whose earliest
// pending event lies at or past T needs no synchronization at all for
// this instant. The coordinator tracks each pair's horizon (pnext) and
// each worker's minimum over its pairs (wnext) so that an epoch costs:
//
//   - nothing per idle shard: wnext is a plain array read, no peek of
//     the pair kernel's heap and no clock write;
//   - a single RunTo per event-bearing pair, issued either inline on
//     the coordinator (one worker, at most inlinePairMax pairs — the
//     common one-dispatch epoch) or on the owning workers;
//   - one atomic post/acknowledge round per woken worker, with
//     spin-then-park waiting instead of per-epoch futex round-trips.
//
// Clocks advance lazily: a pair's clock is stamped to the coordinator
// instant only when a control event actually touches the pair
// (Farm.TouchPair — dispatch injection, migration delivery or requeue,
// fault strikes), not at every instant for every pair as the old
// barrier loop did. Horizons fold back in after each drained instant:
// touching a pair only ever adds events, so its horizon only moves
// earlier and the per-worker minimum updates in O(1).
//
// Determinism: control events at T execute on f.K in (time, priority,
// sequence) order exactly as sequentially; every pair event strictly
// before T has executed by then (workers with wnext < T are woken and
// awaited first); pair events at exactly T run under the next bound,
// which matches the sequential order because control priorities sort
// ahead of same-instant pair events. The merged run is byte-identical
// to the sequential one — enforced by TestShardedMatchesSequential and
// the orchestrated matrix under -race.

// Command sentinels posted in place of a run-ahead bound; event times
// are never negative.
const (
	drainCmd = sim.Time(-1) // run every remaining event (final drain)
	stopCmd  = sim.Time(-2) // exit the worker goroutine
)

// spinBudget is how many scheduler yields a worker burns waiting for
// its next command before parking on its wake channel. Control
// instants cluster (bursty arrivals, rebalance fan-out), so a short
// spin catches the next bound without a futex round-trip; a worker
// that stays idle parks and costs nothing until the coordinator
// unparks it.
const spinBudget = 128

// inlinePairMax bounds the coordinator's inline path: when one worker
// owns every event-bearing pair of an epoch and there are at most this
// many, the coordinator runs them itself instead of waking the worker.
const inlinePairMax = 2

// shardWorker is one persistent worker goroutine owning the contiguous
// pair range [lo, hi). The coordinator posts commands by storing bound
// and bumping epoch; the worker acknowledges by storing the epoch into
// done after executing. At most one command is ever outstanding, and
// the atomics carry the happens-before edges that make the shared
// pnext array and the pair kernels safe to hand back and forth.
type shardWorker struct {
	lo, hi int

	epoch  atomic.Uint64 // incremented per posted command
	bound  atomic.Int64  // command payload: run-ahead bound or sentinel
	done   atomic.Uint64 // last epoch acknowledged by the worker
	parked atomic.Bool   // worker is (about to be) blocked on wake
	wake   chan struct{} // unpark token, buffered for one command

	// next is the worker's published horizon: the minimum pending-event
	// time over its pairs after the last command. Written before the
	// done store, read after observing it.
	next sim.Time
}

// shardCoord drives one sharded run. All scratch is preallocated: a
// warm epoch with no cross-shard events allocates nothing (enforced by
// TestShardEpochZeroAlloc).
type shardCoord struct {
	f       *Farm
	workers []*shardWorker
	shardOf []int32    // pair -> owning worker
	pnext   []sim.Time // per-pair horizon (MaxTime = no pending events)
	wnext   []sim.Time // per-worker min horizon, coordinator's copy

	need        []int   // scratch: workers to wake this epoch
	inline      []int   // scratch: pair indices for the inline path
	touched     []int32 // pairs control events touched this instant
	touchedMark []bool
}

func (f *Farm) newShardCoord() *shardCoord {
	nw := f.shards
	n := len(f.pairK)
	c := &shardCoord{
		f:           f,
		workers:     make([]*shardWorker, nw),
		shardOf:     make([]int32, n),
		pnext:       make([]sim.Time, n),
		wnext:       make([]sim.Time, nw),
		need:        make([]int, 0, nw),
		inline:      make([]int, 0, inlinePairMax),
		touched:     make([]int32, 0, n),
		touchedMark: make([]bool, n),
	}
	for i, k := range f.pairK {
		c.pnext[i] = sim.MaxTime
		if nx, ok := k.NextAt(); ok {
			c.pnext[i] = nx
		}
	}
	for w := 0; w < nw; w++ {
		sw := &shardWorker{
			lo:   w * n / nw,
			hi:   (w + 1) * n / nw,
			wake: make(chan struct{}, 1),
		}
		min := sim.MaxTime
		for i := sw.lo; i < sw.hi; i++ {
			c.shardOf[i] = int32(w)
			if c.pnext[i] < min {
				min = c.pnext[i]
			}
		}
		c.wnext[w] = min
		c.workers[w] = sw
		go c.worker(sw)
	}
	f.coord = c
	return c
}

// post hands a command to a worker. The bound store is published by the
// epoch bump; the park flag hand-off guarantees exactly one wake token
// per parked worker (see worker for the other half of the protocol).
func (c *shardCoord) post(w *shardWorker, b sim.Time) {
	w.bound.Store(int64(b))
	w.epoch.Add(1)
	if w.parked.CompareAndSwap(true, false) {
		w.wake <- struct{}{}
	}
}

// wait spins until the worker acknowledges the last posted command.
// Worker phases are short (a few pair-event batches), so yielding
// beats blocking here — and on a single CPU the yield is what lets the
// worker run at all.
func (c *shardCoord) wait(w *shardWorker) {
	e := w.epoch.Load()
	for w.done.Load() != e {
		runtime.Gosched()
	}
}

// worker is the persistent per-shard loop: spin for the next command,
// park when none comes, execute, acknowledge. Only pairs whose horizon
// lies before the bound are visited — the pnext array makes skipping
// an idle pair a single load instead of a heap peek.
func (c *shardCoord) worker(w *shardWorker) {
	ks := c.f.pairK
	last := uint64(0)
	for {
		for w.epoch.Load() == last {
			for spun := 0; w.epoch.Load() == last && spun < spinBudget; spun++ {
				runtime.Gosched()
			}
			if w.epoch.Load() != last {
				break
			}
			w.parked.Store(true)
			if w.epoch.Load() != last {
				// A command raced the park: either the coordinator saw
				// the flag and a token is in flight, or we retract the
				// flag ourselves and proceed without one.
				if !w.parked.CompareAndSwap(true, false) {
					<-w.wake
				}
				break
			}
			<-w.wake
		}
		last = w.epoch.Load()
		b := sim.Time(w.bound.Load())
		switch b {
		case stopCmd:
			w.done.Store(last)
			return
		case drainCmd:
			for i := w.lo; i < w.hi; i++ {
				ks[i].Run()
				c.pnext[i] = sim.MaxTime
			}
			w.next = sim.MaxTime
		default:
			min := sim.MaxTime
			for i := w.lo; i < w.hi; i++ {
				nx := c.pnext[i]
				if nx < b {
					nx = ks[i].RunTo(b)
					c.pnext[i] = nx
				}
				if nx < min {
					min = nx
				}
			}
			w.next = min
		}
		w.done.Store(last)
	}
}

// tryInline runs a single worker's event-bearing pairs on the
// coordinator goroutine when there are at most inlinePairMax of them —
// the dominant epoch shape (one dispatched arrival wakes one pair).
// The worker stays parked; its published horizon is recomputed here.
// Returns false (having run nothing) when the epoch is too busy.
func (c *shardCoord) tryInline(wIdx int, t sim.Time) bool {
	w := c.workers[wIdx]
	c.inline = c.inline[:0]
	for i := w.lo; i < w.hi; i++ {
		if c.pnext[i] < t {
			if len(c.inline) == inlinePairMax {
				return false
			}
			c.inline = append(c.inline, i)
		}
	}
	for _, i := range c.inline {
		c.pnext[i] = c.f.pairK[i].RunTo(t)
	}
	min := sim.MaxTime
	for i := w.lo; i < w.hi; i++ {
		if c.pnext[i] < min {
			min = c.pnext[i]
		}
	}
	c.wnext[wIdx] = min
	return true
}

// step executes one coordinator instant: grant every shard the
// lookahead bound T = next control time (waking only the workers whose
// horizon lies before it), drain every control event at exactly T,
// then fold the pairs those events touched back into the horizons.
// Returns false once the control queue is empty.
func (c *shardCoord) step() bool {
	f := c.f
	t, ok := f.K.NextAt()
	if !ok {
		return false
	}
	c.need = c.need[:0]
	for w, nx := range c.wnext {
		if nx < t {
			c.need = append(c.need, w)
		}
	}
	if !(len(c.need) == 0 || (len(c.need) == 1 && c.tryInline(c.need[0], t))) {
		for _, w := range c.need {
			c.post(c.workers[w], t)
		}
		for _, w := range c.need {
			sw := c.workers[w]
			c.wait(sw)
			c.wnext[w] = sw.next
		}
	}
	for {
		f.K.Step()
		if next, ok := f.K.NextAt(); !ok || next > t {
			break
		}
	}
	// Control events only ever add pair events, so a touched pair's
	// horizon can only move earlier and the worker minimum updates
	// without a rescan.
	for _, p := range c.touched {
		c.touchedMark[p] = false
		if nx, ok := f.pairK[p].NextAt(); ok && nx < c.pnext[p] {
			c.pnext[p] = nx
			if w := c.shardOf[p]; nx < c.wnext[w] {
				c.wnext[w] = nx
			}
		}
	}
	c.touched = c.touched[:0]
	return true
}

// finish runs every pair kernel dry in parallel once the control queue
// has emptied, then advances all clocks to the global end time so
// residency and availability integrals flush against the same horizon
// a shared kernel would have had, and shuts the workers down.
func (c *shardCoord) finish() {
	f := c.f
	for _, w := range c.workers {
		c.post(w, drainCmd)
	}
	for _, w := range c.workers {
		c.wait(w)
	}
	endT := f.K.Now()
	for _, k := range f.pairK {
		if k.Now() > endT {
			endT = k.Now()
		}
	}
	f.K.AdvanceTo(endT)
	for _, k := range f.pairK {
		k.AdvanceTo(endT)
	}
	for _, w := range c.workers {
		c.post(w, stopCmd)
	}
	f.coord = nil
}

// runSharded executes the farm with one persistent goroutine per
// shard, synchronized by conservative lookahead (see the package
// comment at the top of this file). The merged run is byte-identical
// to the sequential one.
func (f *Farm) runSharded() {
	c := f.newShardCoord()
	for c.step() {
	}
	c.finish()
}

// TouchPair stamps pair i's clock to the current coordinator instant
// and records the touch so the pair's lookahead horizon is re-read
// after the instant drains. Every control-plane action that reaches
// into a pair — dispatch injection, migration delivery or requeue,
// fault strikes — must touch the pair first: the pair's clock lags at
// its last executed event until then, and an injection against the
// stale clock would land in the pair's past. No-op on the sequential
// path, where every pair shares the coordinator kernel.
func (f *Farm) TouchPair(i int) {
	c := f.coord
	if c == nil {
		return
	}
	f.pairK[i].AdvanceTo(f.K.Now())
	if !c.touchedMark[i] {
		c.touchedMark[i] = true
		c.touched = append(c.touched, int32(i))
	}
}
