package cluster

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/migrate"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func denseSequence(apps int, seed uint64) *workload.Sequence {
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = apps
	p.IntervalLo = 400 * sim.Millisecond
	p.IntervalHi = 600 * sim.Millisecond
	return workload.Generate(p, seed)
}

func TestClusterCompletesEverything(t *testing.T) {
	cl := New(DefaultConfig())
	seq := denseSequence(30, 5000)
	if err := cl.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := cl.Run()
	if sum.Apps != 30 {
		t.Fatalf("finished %d of 30", sum.Apps)
	}
	if sum.MeanRT <= 0 {
		t.Fatal("non-positive mean RT")
	}
}

func TestClusterSwitchesUnderContention(t *testing.T) {
	cl := New(DefaultConfig())
	seq := denseSequence(60, 5001)
	if err := cl.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := cl.Run()
	if sum.Switches == 0 {
		t.Fatal("dense workload triggered no cross-board switch")
	}
	// Every switch decision in the trace must coincide with a
	// threshold crossing of the smoothed D value.
	cfg := DefaultConfig()
	for i, p := range sum.Trace {
		if p.Decision == migrate.Switch {
			fromOL := p.Mode == migrate.Base
			if fromOL && p.D < cfg.ThresholdUp {
				t.Fatalf("trace %d: OL->BL switch below T1 (D=%v)", i, p.D)
			}
			if !fromOL && p.D > cfg.ThresholdDown {
				t.Fatalf("trace %d: BL->OL switch above T2 (D=%v)", i, p.D)
			}
		}
	}
	if sum.MeanSwitchTime <= 0 {
		t.Fatal("switch overhead not recorded")
	}
	// The paper reports ~1.13 ms; our payloads are the same order.
	if sum.MeanSwitchTime > 100*sim.Millisecond {
		t.Fatalf("switch overhead %v not remotely at the ms scale", sum.MeanSwitchTime)
	}
}

func TestClusterMigratedAppsKeepArrival(t *testing.T) {
	cl := New(DefaultConfig())
	seq := denseSequence(60, 5002)
	if err := cl.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := cl.Run()
	if sum.MigratedApps == 0 {
		t.Skip("no apps migrated in this seed")
	}
	// Response times are measured against original arrivals, so every
	// response must match finish-arrival for its app across boards.
	for _, e := range cl.engines {
		for _, a := range e.Apps {
			if a.Migrated > 0 && a.ResponseTime() != a.Finish.Sub(a.Arrival) {
				t.Fatal("migrated app response time inconsistent")
			}
		}
	}
}

func TestClusterBothEnginesQuiesce(t *testing.T) {
	cl := New(DefaultConfig())
	seq := denseSequence(40, 5003)
	if err := cl.Inject(seq); err != nil {
		t.Fatal(err)
	}
	cl.Run()
	for mode, e := range cl.engines {
		for _, s := range e.Board.Slots {
			if s.State() == fabric.SlotBusy || s.State() == fabric.SlotLoading {
				t.Fatalf("%v board slot %d still %v after drain", mode, s.ID, s.State())
			}
		}
	}
}

func TestClusterStartsOnConfiguredBoard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StartMode = migrate.Boost
	cl := New(cfg)
	if cl.ActiveMode() != migrate.Boost {
		t.Fatal("start mode ignored")
	}
	if cl.Engine(migrate.Base) == nil || cl.Engine(migrate.Boost) == nil {
		t.Fatal("boards missing")
	}
}

func TestClusterTraceMonotoneCompletions(t *testing.T) {
	cl := New(DefaultConfig())
	seq := denseSequence(40, 5004)
	if err := cl.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := cl.Run()
	prev := -1
	for _, p := range sum.Trace {
		if p.Completed < prev {
			t.Fatal("completed count went backwards in trace")
		}
		prev = p.Completed
		if p.D < 0 || p.D > 1 {
			t.Fatalf("D out of range: %v", p.D)
		}
	}
}
