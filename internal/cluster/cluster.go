package cluster

import (
	"fmt"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/bundle"
	"versaslot/internal/fabric"
	"versaslot/internal/hypervisor"
	"versaslot/internal/interlink"
	"versaslot/internal/metrics"
	"versaslot/internal/migrate"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// pairModes is the fixed mode iteration order that keeps pair
// bookkeeping and metric merging deterministic.
var pairModes = []migrate.Mode{migrate.Base, migrate.Boost}

// Config parameterizes a two-board switching cluster.
type Config struct {
	Params sched.Params
	// BasePlatform and BoostPlatform name the pair's two board
	// platforms in the registry: the base board serves steady load, the
	// boost board is what the D_switch trigger flips to under sustained
	// contention. Empty values select the paper's pair
	// (zcu216-only-little / zcu216-big-little).
	BasePlatform, BoostPlatform string
	// StartMode is the initially active configuration (paper: the base
	// Only.Little board).
	StartMode migrate.Mode
	// ThresholdUp/ThresholdDown are the Schmitt-trigger levels.
	ThresholdUp, ThresholdDown float64
	// WindowUpdates is n: D_switch recomputes every n candidate-queue
	// updates (Fig. 8 uses 4).
	WindowUpdates int
	// Smoothing is the EWMA factor applied to raw D_switch samples
	// before the trigger sees them (1 = no smoothing). Damps window
	// noise so the hysteresis loop reacts to sustained contention.
	Smoothing float64
	// Seed seeds the kernel RNG.
	Seed uint64
}

// DefaultConfig returns the paper's switching setup.
func DefaultConfig() Config {
	return Config{
		Params:        sched.DefaultParams(),
		StartMode:     migrate.Base,
		ThresholdUp:   migrate.DefaultThresholdUp,
		ThresholdDown: migrate.DefaultThresholdDown,
		WindowUpdates: 4,
		Smoothing:     0.3,
		Seed:          1,
	}
}

// platformFor resolves the configured platform of a mode, defaulting
// to the paper's pair.
func (c Config) platformFor(m migrate.Mode) (*fabric.Platform, error) {
	name := c.BasePlatform
	fallback := fabric.ZCU216OnlyLittle
	if m == migrate.Boost {
		name, fallback = c.BoostPlatform, fabric.ZCU216BigLittle
	}
	if name == "" {
		name = fallback
	}
	p, ok := fabric.LookupPlatform(name)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown platform %q (registered: %v)", name, fabric.PlatformNames())
	}
	if p.Virtual {
		return nil, fmt.Errorf("cluster: platform %q is the monolithic baseline template; switching pairs need DPR slots", p.Name)
	}
	return p, nil
}

// TracePoint is one D_switch evaluation (Fig. 8 left).
type TracePoint struct {
	At        sim.Time
	Completed int
	D         float64
	Mode      migrate.Mode
	Decision  migrate.Decision
}

// Cluster is a two-board switching pair: a base board, a boost board
// (by default the paper's Only.Little / Big.Little ZCU216 pair, but
// any registered DPR platforms), an Aurora link, and the switch
// controller.
type Cluster struct {
	K    *sim.Kernel
	Cfg  Config
	Link *interlink.Link

	engines   [2]*sched.Engine
	platforms [2]*fabric.Platform
	active    migrate.Mode
	trigger   *migrate.Trigger

	updates    int
	dSmoothed  float64
	migrating  bool
	finished   int
	totalApps  int
	Trace      []TracePoint
	Migrations []migrate.Migration

	// Arrival cursor: Inject walks a sorted sequence with one chained
	// event instead of a closure per app (see Engine.InjectSequence).
	arrQ   []*appmodel.App
	arrPos int
	arrFn  func()

	// candScratch is onQueueUpdate's reusable D_switch candidate
	// buffer; the gather is consumed synchronously each evaluation.
	candScratch []*appmodel.App

	// OnSwitch fires when a cross-board switch is initiated (streaming
	// observer hook).
	OnSwitch func(from, to migrate.Mode)

	// cost, when set, prices switches with checkpoint/restore
	// semantics (installed by the fault subsystem's checkpoint
	// injector); nil keeps the classic payload.
	cost *migrate.CostModel
}

// New builds the cluster with both boards pre-configured (the paper's
// point: the static regions are fixed at start-up; switching between
// them at runtime is what live migration buys).
func New(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewCluster builds the cluster, returning an error for unknown or
// unusable platform assignments.
func NewCluster(cfg Config) (*Cluster, error) {
	return buildCluster(sim.NewKernel(cfg.Seed), cfg, 0)
}

// buildCluster wires a switching pair onto an existing kernel; Farm
// places several pairs on one kernel.
func buildCluster(k *sim.Kernel, cfg Config, firstBoardID int) (*Cluster, error) {
	c := &Cluster{
		K:       k,
		Cfg:     cfg,
		Link:    interlink.NewDefault(k, fmt.Sprintf("aurora%d", firstBoardID/2)),
		active:  cfg.StartMode,
		trigger: migrate.NewTrigger(cfg.StartMode, cfg.ThresholdUp, cfg.ThresholdDown),
	}

	boardID := firstBoardID
	for _, mode := range pairModes {
		platform, err := cfg.platformFor(mode)
		if err != nil {
			return nil, err
		}
		// Boards share the process-wide immutable suite repository
		// whenever it covers the platform's slot classes: a farm of N
		// pairs no longer rebuilds 2N identical bitstream stores.
		board := fabric.NewBoard(boardID, platform)
		boardID++
		e := sched.NewEngine(k, cfg.Params, board, hypervisor.DualCore, bitstream.RepoFor(platform))
		var p sched.Policy
		if platform.Heterogeneous() {
			p = sched.NewVersaSlotBL()
		} else {
			p = sched.NewVersaSlotOL()
		}
		e.SetPolicy(p)
		e.OnQueueUpdate = c.onQueueUpdate
		e.OnAppFinished = c.onAppFinished
		c.engines[mode] = e
		c.platforms[mode] = platform
	}
	// The spare starts frozen: it only executes after a switch.
	c.spareEngine().SetFrozen(true)
	// Fault hook: an app crash-restarted on a frozen (draining) board
	// would otherwise queue there forever — no new placements happen
	// while frozen, and nothing unfreezes a drained board. Re-home it
	// to the active board with intra-pair migration bookkeeping.
	for _, mode := range pairModes {
		eng := c.engines[mode]
		eng.OnAppCrashed = func(a *appmodel.App) bool {
			if !eng.Frozen() || c.activeEngine() == eng {
				return false
			}
			eng.RemoveActive(a)
			c.activeEngine().InjectMigrated(a)
			return true
		}
	}
	return c, nil
}

// SetMigrationCost installs a checkpoint/restore cost model on the
// pair's switches; nil restores the classic payload.
func (c *Cluster) SetMigrationCost(m *migrate.CostModel) { c.cost = m }

// ActiveMode returns the currently active configuration.
func (c *Cluster) ActiveMode() migrate.Mode { return c.active }

// Engine returns the engine of a mode.
func (c *Cluster) Engine(mode migrate.Mode) *sched.Engine { return c.engines[mode] }

// Platform returns the platform assigned to a mode.
func (c *Cluster) Platform(mode migrate.Mode) *fabric.Platform { return c.platforms[mode] }

// CanHost reports whether the pair can execute an application spec on
// both of its platforms — the capacity test heterogeneous-farm
// dispatchers apply before routing (the pair may switch at any time,
// so the app must fit wherever it lands).
func (c *Cluster) CanHost(spec *appmodel.AppSpec) bool {
	return bundle.Hostable(spec, c.platforms[migrate.Base]) &&
		bundle.Hostable(spec, c.platforms[migrate.Boost])
}

func (c *Cluster) activeEngine() *sched.Engine { return c.engines[c.active] }

func (c *Cluster) spareEngine() *sched.Engine { return c.engines[c.active.Other()] }

// Inject schedules the workload sequence: each arrival routes to
// whichever board is active at its arrival instant.
func (c *Cluster) Inject(seq *workload.Sequence) error {
	apps, err := seq.Instantiate(c.totalApps)
	if err != nil {
		return err
	}
	for _, a := range apps {
		if !c.CanHost(a.Spec) {
			return fmt.Errorf("cluster: app %v (%s) fits no slot class of the pair's platforms (%s/%s)",
				a, a.Spec.Name, c.platforms[migrate.Base].Name, c.platforms[migrate.Boost].Name)
		}
	}
	c.totalApps += len(apps)
	c.scheduleArrivals(apps)
	return nil
}

// scheduleArrivals walks a sorted arrival sequence with one chained
// cursor event (at sim.PriArrival, like the engine's InjectSequence)
// instead of one closure per app; unsorted sequences — or a second
// Inject while a cursor is mid-walk — fall back to per-app events.
func (c *Cluster) scheduleArrivals(apps []*appmodel.App) {
	sorted := true
	for i := 1; i < len(apps); i++ {
		if apps[i].Arrival < apps[i-1].Arrival {
			sorted = false
			break
		}
	}
	if !sorted || c.arrPos < len(c.arrQ) {
		for _, a := range apps {
			a := a
			c.K.AtP(a.Arrival, sim.PriArrival, func() { c.activeEngine().InjectNow(a) })
		}
		return
	}
	c.arrQ, c.arrPos = apps, 0
	if c.arrFn == nil {
		c.arrFn = func() {
			a := c.arrQ[c.arrPos]
			c.arrPos++
			if c.arrPos < len(c.arrQ) {
				c.K.AtP(c.arrQ[c.arrPos].Arrival, sim.PriArrival, c.arrFn)
			}
			c.activeEngine().InjectNow(a)
		}
	}
	c.K.AtP(apps[0].Arrival, sim.PriArrival, c.arrFn)
}

// Run executes to completion and returns the merged summary.
func (c *Cluster) Run() Summary {
	c.K.Run()
	for _, mode := range pairModes {
		e := c.engines[mode]
		e.FlushResidency()
		e.CheckQuiescent()
	}
	return c.summarize()
}

func (c *Cluster) onAppFinished(*appmodel.App) {
	c.finished++
}

// Quiescent reports whether every injected application has finished.
// Fault-injector chains gate on it so they stop firing once the
// workload drains instead of keeping the kernel alive forever.
func (c *Cluster) Quiescent() bool { return c.finished >= c.totalApps }

// onQueueUpdate implements the paper's cadence: every WindowUpdates
// changes of the candidate queue, re-evaluate D_switch and act.
func (c *Cluster) onQueueUpdate() {
	c.updates++
	if c.updates%c.Cfg.WindowUpdates != 0 {
		return
	}
	var blocked uint64
	for _, mode := range pairModes {
		b, _ := c.engines[mode].ResetWindow()
		blocked += b
	}
	// N_PR is the stock of PR tasks owned by completed and running
	// applications (R_c and R_s in Eq. 1): it grows as the run
	// progresses, which is what makes the Fig. 8 trace decay toward
	// the lower threshold once contention subsides.
	var prTasks uint64
	candidates := c.candScratch[:0]
	for _, mode := range pairModes {
		e := c.engines[mode]
		candidates = append(candidates, e.Active...)
		for _, a := range e.Apps {
			if a.State == appmodel.StateFinished || a.Started {
				prTasks += uint64(len(a.Spec.Tasks))
			}
		}
	}
	c.candScratch = candidates
	nApps, nBatch := migrate.GatherCandidates(candidates)
	raw := migrate.DSwitch(migrate.DSwitchInputs{
		BlockedTasks: blocked,
		PRTasks:      prTasks,
		Apps:         nApps,
		TotalBatch:   nBatch,
	})
	alpha := c.Cfg.Smoothing
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	c.dSmoothed = alpha*raw + (1-alpha)*c.dSmoothed
	d := c.dSmoothed
	decision := c.trigger.Observe(d)
	c.Trace = append(c.Trace, TracePoint{
		At:        c.K.Now(),
		Completed: c.finished,
		D:         d,
		Mode:      c.active,
		Decision:  decision,
	})
	switch decision {
	case migrate.Prewarm:
		c.prewarm()
	case migrate.Switch:
		c.doSwitch()
	}
}

// prewarm stages the bitstreams current candidates would need on the
// spare board's DDR cache (background SD reads on the idle board), so
// a subsequent switch pays no storage misses.
func (c *Cluster) prewarm() {
	spare := c.spareEngine()
	target := c.platforms[c.active.Other()]
	for _, a := range c.activeEngine().Active {
		warmNamesFor(spare, target, a)
	}
}

func warmNamesFor(e *sched.Engine, target *fabric.Platform, a *appmodel.App) {
	for _, name := range stageBitstreams(target, a) {
		if _, err := e.Repo.Get(name); err == nil {
			e.Cache.Warm(name)
		}
	}
}

// doSwitch performs the cross-board switch: freeze the old board (its
// executing apps drain to completion there), migrate every ready app
// over the link, and point new arrivals at the new board.
func (c *Cluster) doSwitch() {
	if c.migrating {
		// A transfer is already in flight; the trigger's hysteresis
		// will re-fire if the condition persists.
		return
	}
	old := c.activeEngine()
	// Flip first: "the new FPGA resumes task execution and processes
	// upcoming new workloads".
	from := c.active
	c.active = c.trigger.Mode()
	next := c.activeEngine()
	if old == next {
		panic("cluster: switch to the already-active board")
	}
	if c.OnSwitch != nil {
		c.OnSwitch(from, c.active)
	}
	old.SetFrozen(true)
	next.SetFrozen(false)
	moved := old.Policy().ExtractMigratable()
	for _, a := range moved {
		old.RemoveActive(a)
	}
	if len(moved) == 0 {
		return
	}
	c.migrating = true
	c.prewarm()
	migrate.ExecuteModel(c.K, c.Link, moved, c.cost, func(apps []*appmodel.App) {
		c.migrating = false
		for _, a := range apps {
			next.InjectMigrated(a)
		}
	}, func(m migrate.Migration) {
		c.Migrations = append(c.Migrations, m)
	})
}

// Summary merges a switching system's results: both boards of a pair,
// or every pair of a farm. Farm-only fields (cross-pair migration
// counts, per-pair breakdowns) are zero for a single pair.
type Summary struct {
	Apps           int
	MeanRT         sim.Duration
	P50, P95, P99  sim.Duration
	Switches       int
	MeanSwitchTime sim.Duration
	MigratedApps   int
	Trace          []TracePoint

	// CrossSwitches counts rebalancer-driven pair-to-pair transfers
	// (farm only); CrossMigratedApps and MeanCrossTime price them.
	CrossSwitches     int
	CrossMigratedApps int
	MeanCrossTime     sim.Duration
	// PairStats breaks the run down per switching pair (farm only).
	PairStats []PairStat
}

func (c *Cluster) summarize() Summary {
	if c.Streaming() {
		return c.summarizeStream()
	}
	var samples []metrics.ResponseSample
	for _, mode := range pairModes {
		samples = append(samples, c.engines[mode].Col.Responses...)
	}
	s := Summary{Apps: len(samples), Switches: len(c.Migrations), Trace: c.Trace}
	if len(samples) > 0 {
		s.MeanRT = metrics.MeanResponse(samples)
		vals := metrics.SortedResponseValues(samples, nil)
		p50, p95, p99 := metrics.TailPercentiles(vals)
		s.P50 = sim.Duration(p50)
		s.P95 = sim.Duration(p95)
		s.P99 = sim.Duration(p99)
	}
	var total sim.Duration
	for _, m := range c.Migrations {
		total += m.Duration
		s.MigratedApps += m.Apps
	}
	if len(c.Migrations) > 0 {
		s.MeanSwitchTime = total / sim.Duration(len(c.Migrations))
	}
	return s
}

// Streaming reports whether the pair's collectors run in stream mode
// (samples folded into sketches on arrival, never retained).
func (c *Cluster) Streaming() bool {
	return c.engines[pairModes[0]].Col.Streaming()
}

// summarizeStream is summarize's stream-mode twin: the pair's
// response-time distribution comes from merging both boards' sketches
// — bucket counts add exactly, so the merged percentiles match what a
// shared collector would have sketched.
func (c *Cluster) summarizeStream() Summary {
	g := metrics.NewSketch(metrics.GlobalSketchBits)
	for _, mode := range pairModes {
		g.Merge(c.engines[mode].Col.GlobalSketch())
	}
	s := Summary{Apps: int(g.Count()), Switches: len(c.Migrations), Trace: c.Trace}
	if g.Count() > 0 {
		s.MeanRT = sim.Duration(g.Mean())
		s.P50 = sim.Duration(g.Quantile(50))
		s.P95 = sim.Duration(g.Quantile(95))
		s.P99 = sim.Duration(g.Quantile(99))
	}
	var total sim.Duration
	for _, m := range c.Migrations {
		total += m.Duration
		s.MigratedApps += m.Apps
	}
	if len(c.Migrations) > 0 {
		s.MeanSwitchTime = total / sim.Duration(len(c.Migrations))
	}
	return s
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("apps=%d meanRT=%v p95=%v p99=%v switches=%d meanSwitch=%v migrated=%d",
		s.Apps, s.MeanRT, s.P95, s.P99, s.Switches, s.MeanSwitchTime, s.MigratedApps)
}
