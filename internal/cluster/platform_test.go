package cluster

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/migrate"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// pynqFarm builds a two-pair farm whose pair 0 is PYNQ-class (2 Small
// slots) and pair 1 the paper's ZCU216 pair.
func pynqFarm(t *testing.T, dispatcher string) *Farm {
	t.Helper()
	cfg := DefaultFarmConfig(2)
	cfg.Dispatcher = dispatcher
	cfg.PairPlatforms = []PairPlatforms{
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
		{}, // paper default
	}
	return MustNewFarm(cfg)
}

// bigOnlySequence builds a sequence of applications whose tasks exceed
// a Small slot (LeNet's partitioning targets nearly full Little slots).
func bigOnlySequence(n int) *workload.Sequence {
	seq := &workload.Sequence{Name: "lenet-only", Condition: "Stress", Seed: 1}
	at := sim.Duration(0)
	for i := 0; i < n; i++ {
		seq.Arrivals = append(seq.Arrivals, workload.Arrival{Spec: "LeNet", Batch: 5, At: at})
		at += 150 * sim.Millisecond
	}
	return seq
}

// TestCapacityAwareDispatchRoutesAwayFromSmallPair is the acceptance
// bar for capacity-aware dispatch: every application that fits no slot
// class of the PYNQ pair must route to the ZCU216 pair, even though
// least-loaded dispatch would otherwise have picked the idle PYNQ pair
// for roughly half of them.
func TestCapacityAwareDispatchRoutesAwayFromSmallPair(t *testing.T) {
	for _, dispatcher := range []string{DispatchLeastLoaded, DispatchRoundRobin, DispatchPowerOfTwo, DispatchAffinity} {
		t.Run(dispatcher, func(t *testing.T) {
			f := pynqFarm(t, dispatcher)
			if err := f.Inject(bigOnlySequence(8)); err != nil {
				t.Fatal(err)
			}
			f.Run()
			routed := f.Routed()
			if routed[0] != 0 {
				t.Fatalf("%s routed %d unhostable apps to the PYNQ pair", dispatcher, routed[0])
			}
			if routed[1] != 8 {
				t.Fatalf("%s routed %d apps to the ZCU216 pair, want all 8", dispatcher, routed[1])
			}
		})
	}
}

// TestCapacityAwareDispatchStillUsesSmallPair: applications that do
// fit the PYNQ pair keep flowing to it (the filter narrows choice, it
// does not blacklist the pair).
func TestCapacityAwareDispatchStillUsesSmallPair(t *testing.T) {
	f := pynqFarm(t, DispatchRoundRobin)
	seq := &workload.Sequence{Name: "ic-only", Condition: "Stress", Seed: 1}
	at := sim.Duration(0)
	for i := 0; i < 6; i++ {
		// IC's heaviest task uses 0.57 of a Little slot — it fits Small.
		seq.Arrivals = append(seq.Arrivals, workload.Arrival{Spec: "IC", Batch: 5, At: at})
		at += 200 * sim.Millisecond
	}
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if f.Routed()[0] == 0 {
		t.Fatal("hostable apps never reached the PYNQ pair")
	}
	if sum.Apps != 6 {
		t.Fatalf("finished %d apps, want 6", sum.Apps)
	}
}

// TestFarmRejectsGloballyUnhostableApp: a workload no pair can host
// errors at Inject instead of deadlocking mid-run.
func TestFarmRejectsGloballyUnhostableApp(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.PairPlatforms = []PairPlatforms{
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
	}
	f := MustNewFarm(cfg)
	if err := f.Inject(bigOnlySequence(1)); err == nil {
		t.Fatal("globally unhostable app accepted")
	}
}

// TestRebalancerValidatesDestinationCompatibility: cross-pair
// migration must not move an application onto a pair whose slot
// classes cannot hold it — queued LeNets stay on the ZCU216 pair even
// when the PYNQ pair is idle.
func TestRebalancerValidatesDestinationCompatibility(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.PairPlatforms = []PairPlatforms{
		{}, // ZCU216 pair (gets swamped)
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
	}
	cfg.RebalanceEvery = 500 * sim.Millisecond
	cfg.RebalanceGap = 1
	f := MustNewFarm(cfg)
	if err := f.Inject(bigOnlySequence(10)); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if got := f.Routed()[1] + f.crossIn[1]; got != 0 {
		t.Fatalf("%d unhostable apps reached the PYNQ pair (routed %d, migrated in %d)",
			got, f.Routed()[1], f.crossIn[1])
	}
	if sum.CrossMigratedApps != 0 {
		t.Fatalf("rebalancer migrated %d apps onto an incompatible pair", sum.CrossMigratedApps)
	}
	if sum.Apps != 10 {
		t.Fatalf("finished %d apps, want 10", sum.Apps)
	}
}

// TestClusterPairPlatformAssignment: a pair built on uniform U250
// platforms runs the Only.Little-style policy on Large slots and
// completes a workload.
func TestClusterPairPlatformAssignment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BasePlatform = fabric.U250Quad
	cfg.BoostPlatform = fabric.U250Quad
	cl := New(cfg)
	if cl.Platform(migrate.Base).Name != fabric.U250Quad {
		t.Fatal("base platform assignment ignored")
	}
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = 6
	if err := cl.Inject(workload.Generate(p, 9)); err != nil {
		t.Fatal(err)
	}
	sum := cl.Run()
	if sum.Apps != 6 {
		t.Fatalf("finished %d apps, want 6", sum.Apps)
	}
}

// TestClusterRejectsVirtualPairPlatform: the monolithic baseline
// template has no DPR slots and cannot form a switching pair.
func TestClusterRejectsVirtualPairPlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BoostPlatform = fabric.ZCU216Monolithic
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("virtual platform accepted into a switching pair")
	}
}
