package cluster

import (
	"fmt"

	"versaslot/internal/appmodel"
	"versaslot/internal/bitstream"
	"versaslot/internal/fabric"
	"versaslot/internal/registry"
	"versaslot/internal/sched"
)

// Dispatcher decides which switching pair an arriving application
// joins. One instance is bound to one farm (Init runs before any
// arrival); Pick runs at each arrival instant on the simulation
// kernel. Implementations must be deterministic: any randomness must
// come from the farm kernel's RNG, never from global state, so that
// parallel sweeps reproduce sequential runs byte for byte.
//
// Dispatchers must be capacity- and availability-aware: on
// heterogeneous farms, Farm.DispatchEligible(a) returns the pair
// indices whose platforms can host the application, minus pairs
// degraded by an open board outage, and Pick must choose among them
// (an application that fits no slot of a small-board pair has to
// route elsewhere; the farm panics on a class-incompatible pick). A
// nil eligible set means every pair qualifies.
type Dispatcher interface {
	// Name identifies the dispatcher in results ("least-loaded").
	Name() string
	// Init binds the dispatcher to its farm before any arrivals.
	Init(f *Farm)
	// Pick returns the index of the pair app a joins.
	Pick(a *appmodel.App) int
}

// PoolAware is an optional Dispatcher extension: PoolChanged fires
// whenever the commissioned pair pool changes mid-run (a standby pair
// activates, a pair starts or finishes draining). Dispatchers that
// memoize anything derived from the pair set must drop those memos
// here — the farm's own eligibility cache is invalidated on the same
// transitions. Dispatchers without pool-derived state can ignore it.
type PoolAware interface {
	PoolChanged(f *Farm)
}

// DispatcherReg declares one farm dispatcher: canonical config/CLI
// name, display title, and a factory producing fresh instances (a
// dispatcher may carry per-run state, e.g. a round-robin cursor).
type DispatcherReg struct {
	// Name is the canonical lower-case lookup key ("least-loaded").
	Name string
	// Aliases are alternate lookup keys ("p2c").
	Aliases []string
	// Title is the display name ("Least loaded").
	Title string
	// Factory builds a fresh dispatcher instance per farm.
	Factory func() Dispatcher
}

// dispatchers mirrors the sched policy registry: the same generic
// string-keyed helper, keyed by dispatcher name.
var dispatchers = registry.New[*DispatcherReg]("dispatch")

// RegisterDispatcher adds a dispatcher to the farm registry. The name
// (and every alias) must be non-empty and not already taken; the
// factory must be non-nil.
func RegisterDispatcher(r DispatcherReg) error {
	if r.Name == "" {
		return fmt.Errorf("dispatch: register: empty dispatcher name")
	}
	if r.Factory == nil {
		return fmt.Errorf("dispatch: register %q: nil factory", r.Name)
	}
	if r.Title == "" {
		r.Title = r.Name
	}
	reg := r
	return dispatchers.Register(r.Name, &reg, r.Aliases...)
}

// MustRegisterDispatcher is RegisterDispatcher, panicking on error.
func MustRegisterDispatcher(r DispatcherReg) {
	if err := RegisterDispatcher(r); err != nil {
		panic(err)
	}
}

// LookupDispatcher resolves a dispatcher by name or alias
// (case-insensitive).
func LookupDispatcher(name string) (*DispatcherReg, bool) {
	return dispatchers.Lookup(name)
}

// DispatcherNames lists canonical dispatcher names in registration
// order (built-ins first).
func DispatcherNames() []string { return dispatchers.Names() }

// NewDispatcher builds a fresh instance of a registered dispatcher.
func NewDispatcher(name string) (Dispatcher, error) {
	r, ok := dispatchers.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("dispatch: unknown dispatcher %q (registered: %v)", name, DispatcherNames())
	}
	return r.Factory(), nil
}

// Built-in dispatcher names.
const (
	// DispatchLeastLoaded routes each arrival to the pair with the
	// fewest unfinished applications (the farm's default).
	DispatchLeastLoaded = "least-loaded"
	// DispatchRoundRobin cycles arrivals across pairs regardless of
	// load.
	DispatchRoundRobin = "round-robin"
	// DispatchPowerOfTwo samples two pairs uniformly and routes to the
	// less loaded of the two (the classic load-balancing result: most
	// of least-loaded's benefit at O(1) cost).
	DispatchPowerOfTwo = "power-of-two"
	// DispatchAffinity prefers pairs whose active board's bitstream
	// cache already holds the app's stages (skipping SD-card streaming
	// on PR), breaking ties toward the less loaded pair.
	DispatchAffinity = "affinity"
)

func init() {
	MustRegisterDispatcher(DispatcherReg{
		Name: DispatchLeastLoaded, Title: "Least loaded",
		Factory: func() Dispatcher { return &leastLoadedDispatch{} },
	})
	MustRegisterDispatcher(DispatcherReg{
		Name: DispatchRoundRobin, Aliases: []string{"rr"}, Title: "Round robin",
		Factory: func() Dispatcher { return &roundRobinDispatch{} },
	})
	MustRegisterDispatcher(DispatcherReg{
		Name: DispatchPowerOfTwo, Aliases: []string{"p2c", "power-of-two-choices"},
		Title:   "Power of two choices",
		Factory: func() Dispatcher { return &powerOfTwoDispatch{} },
	})
	MustRegisterDispatcher(DispatcherReg{
		Name: DispatchAffinity, Aliases: []string{"bitstream-affinity"},
		Title:   "Bitstream affinity",
		Factory: func() Dispatcher { return &affinityDispatch{} },
	})
}

// leastLoadedDispatch picks the pair with the fewest unfinished apps,
// reading the farm's incrementally-maintained load counters (O(pairs)
// per arrival instead of the former O(pairs x engines) queue scan).
// On heterogeneous farms the scan is restricted to eligible pairs.
type leastLoadedDispatch struct{ f *Farm }

func (d *leastLoadedDispatch) Name() string { return DispatchLeastLoaded }
func (d *leastLoadedDispatch) Init(f *Farm) { d.f = f }
func (d *leastLoadedDispatch) Pick(a *appmodel.App) int {
	if elig := d.f.DispatchEligible(a); elig != nil {
		best := elig[0]
		for _, i := range elig[1:] {
			if d.f.load[i] < d.f.load[best] {
				best = i
			}
		}
		return best
	}
	best := 0
	for i, load := range d.f.load {
		if load < d.f.load[best] {
			best = i
		}
	}
	return best
}

// roundRobinDispatch cycles arrivals across pairs, skipping pairs that
// cannot host the arriving application.
type roundRobinDispatch struct {
	f    *Farm
	next int
}

func (d *roundRobinDispatch) Name() string { return DispatchRoundRobin }
func (d *roundRobinDispatch) Init(f *Farm) { d.f = f }
func (d *roundRobinDispatch) Pick(a *appmodel.App) int {
	n := len(d.f.Pairs)
	if elig := d.f.DispatchEligible(a); elig != nil {
		// Advance the cursor past ineligible pairs; the cursor still
		// rotates over the full pair set so eligible apps keep cycling.
		for tries := 0; tries < n; tries++ {
			idx := d.next
			d.next = (d.next + 1) % n
			if containsPair(elig, idx) {
				return idx
			}
		}
		return elig[0]
	}
	idx := d.next
	d.next = (d.next + 1) % n
	return idx
}

// powerOfTwoDispatch samples two distinct pairs from the farm kernel's
// RNG and routes to the less loaded one (ties to the first sample).
// With one pair it degenerates to that pair. On heterogeneous farms
// the two samples are drawn from the eligible pair set.
type powerOfTwoDispatch struct{ f *Farm }

func (d *powerOfTwoDispatch) Name() string { return DispatchPowerOfTwo }
func (d *powerOfTwoDispatch) Init(f *Farm) { d.f = f }
func (d *powerOfTwoDispatch) Pick(a *appmodel.App) int {
	if elig := d.f.DispatchEligible(a); elig != nil {
		n := len(elig)
		if n == 1 {
			return elig[0]
		}
		rng := d.f.K.RNG()
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		if d.f.load[elig[j]] < d.f.load[elig[i]] {
			return elig[j]
		}
		return elig[i]
	}
	n := len(d.f.Pairs)
	if n == 1 {
		return 0
	}
	rng := d.f.K.RNG()
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if d.f.load[j] < d.f.load[i] {
		return j
	}
	return i
}

// affinityDispatch scores each pair by how many of the app's stage
// bitstreams its active board already caches (pre-warmed by earlier
// runs of the same spec, so PR pays no SD-card streaming), and picks
// the warmest eligible pair; load breaks ties, then pair index.
type affinityDispatch struct {
	f *Farm
	// names memoizes stageBitstreams per (platform, spec): the list
	// depends on nothing else, farms mix a handful of platforms and
	// workloads a handful of specs, so after warm-up the dispatch hot
	// path allocates nothing.
	names map[affinityKey][]string
}

type affinityKey struct {
	p    *fabric.Platform
	spec *appmodel.AppSpec
}

func (d *affinityDispatch) Name() string { return DispatchAffinity }
func (d *affinityDispatch) Init(f *Farm) {
	d.f = f
	d.names = make(map[affinityKey][]string)
}

// PoolChanged drops the bitstream-name memo when the commissioned
// pair pool changes: entries are keyed by (platform, spec) and a
// lifecycle transition can bring a platform into (or out of) play
// whose cached name lists would otherwise outlive the pool that
// produced them.
func (d *affinityDispatch) PoolChanged(*Farm) {
	for k := range d.names {
		delete(d.names, k)
	}
}

func (d *affinityDispatch) namesFor(p *fabric.Platform, a *appmodel.App) []string {
	key := affinityKey{p, a.Spec}
	if names, ok := d.names[key]; ok {
		return names
	}
	names := stageBitstreams(p, a)
	d.names[key] = names
	return names
}
func (d *affinityDispatch) Pick(a *appmodel.App) int {
	elig := d.f.DispatchEligible(a)
	best, bestScore := -1, -1
	for i, p := range d.f.Pairs {
		if elig != nil && !containsPair(elig, i) {
			continue
		}
		score := cacheAffinity(p.activeEngine(), d.namesFor(p.Platform(p.ActiveMode()), a))
		better := best < 0 || score > bestScore ||
			(score == bestScore && d.f.load[i] < d.f.load[best])
		if better {
			best, bestScore = i, score
		}
	}
	return best
}

// cacheAffinity counts how many of the named bitstreams are already
// resident in e's DDR cache. Contains does not touch LRU order, so
// scoring leaves the cache unperturbed.
func cacheAffinity(e *sched.Engine, names []string) int {
	score := 0
	for _, name := range names {
		if e.Cache.Contains(name) {
			score++
		}
	}
	return score
}

// stageBitstreams lists the bitstream names an app would use on a
// platform — the same name set the pre-warm step stages ahead of a
// switch: per-task partials for the base class, plus (on heterogeneous
// platforms) the bundle partials for the big-role class.
func stageBitstreams(target *fabric.Platform, a *appmodel.App) []string {
	var names []string
	if target.Heterogeneous() {
		big := target.Largest().Name
		if n := len(a.Spec.Tasks) / 3; n > 0 {
			for b := 0; b < n; b++ {
				for _, mode := range []string{"par", "ser"} {
					names = append(names, bitstream.BundleName(a.Spec.Name, b, mode, big))
				}
			}
		}
	}
	base := target.Smallest().Name
	for _, t := range a.Spec.Tasks {
		names = append(names, bitstream.TaskName(a.Spec.Name, t.Name, base))
	}
	return names
}
