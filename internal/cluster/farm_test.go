package cluster

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func TestFarmCompletesAndBalances(t *testing.T) {
	f := MustNewFarm(DefaultFarmConfig(3))
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 30
	seq := workload.Generate(p, 9000)
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if sum.Apps != 30 {
		t.Fatalf("finished %d of 30", sum.Apps)
	}
	if f.UnfinishedCount() != 0 {
		t.Fatal("unfinished apps remain")
	}
	routed := f.Routed()
	total := 0
	for i, n := range routed {
		total += n
		if n == 0 {
			t.Errorf("pair %d received no arrivals — dispatcher not balancing", i)
		}
	}
	if total != 30 {
		t.Fatalf("routed %d arrivals, want 30", total)
	}
}

func TestFarmBeatsSinglePairUnderLoad(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 40
	seq := workload.Generate(p, 9001)

	one := New(DefaultConfig())
	if err := one.Inject(seq); err != nil {
		t.Fatal(err)
	}
	soloSum := one.Run()

	f := MustNewFarm(DefaultFarmConfig(3))
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	farmSum := f.Run()

	if farmSum.MeanRT >= soloSum.MeanRT {
		t.Fatalf("3-pair farm (%v) not faster than one pair (%v) under stress",
			farmSum.MeanRT, soloSum.MeanRT)
	}
}

func TestFarmValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-pair farm did not panic")
		}
	}()
	MustNewFarm(DefaultFarmConfig(0))
}

func TestFarmSwitchOverheadScale(t *testing.T) {
	f := MustNewFarm(DefaultFarmConfig(2))
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = 50
	p.IntervalLo, p.IntervalHi = 300*sim.Millisecond, 400*sim.Millisecond
	seq := workload.Generate(p, 9002)
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if sum.Switches > 0 && sum.MeanSwitchTime > 100*sim.Millisecond {
		t.Fatalf("farm switch overhead %v beyond the ms scale", sum.MeanSwitchTime)
	}
}

// TestFarmDisarmRebalancer: canceling the pending tick through its
// event handle stops cross-pair migration entirely; a skewed workload
// that otherwise rebalances (see TestFarmRebalance*) stays put.
func TestFarmDisarmRebalancer(t *testing.T) {
	build := func() *Farm {
		// Round-robin dispatch on a skewed stress workload diverges
		// the pair queues, so the armed rebalancer provably migrates
		// (same shape as TestRebalancerMigratesAcrossPairs).
		cfg := DefaultFarmConfig(3)
		cfg.Dispatcher = DispatchRoundRobin
		cfg.RebalanceEvery = 2 * sim.Second
		return MustNewFarm(cfg)
	}
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 60
	seq := workload.Generate(p, 23)

	armed := build()
	if err := armed.Inject(seq); err != nil {
		t.Fatal(err)
	}
	armedSum := armed.Run()
	if armedSum.CrossSwitches < 1 {
		t.Fatalf("armed control did not migrate (%d cross switches); the disarm assertion would be vacuous",
			armedSum.CrossSwitches)
	}

	disarmed := build()
	if err := disarmed.Inject(seq); err != nil {
		t.Fatal(err)
	}
	disarmed.DisarmRebalancer()
	disarmedSum := disarmed.Run()

	if disarmedSum.CrossSwitches != 0 {
		t.Fatalf("disarmed farm still migrated %d times across pairs", disarmedSum.CrossSwitches)
	}
	if disarmedSum.Apps != p.Apps || armedSum.Apps != p.Apps {
		t.Fatalf("apps finished: armed=%d disarmed=%d want %d", armedSum.Apps, disarmedSum.Apps, p.Apps)
	}
}

// TestRebalancerCountsRequeued is the regression test for the
// rebalancer silently dropping its re-queue bookkeeping: on a
// heterogeneous farm whose idle pair cannot host the loaded pair's
// applications, extraction must return every candidate to the source
// queue AND count it, surfacing the wasted extractions in PairStat.
func TestRebalancerCountsRequeued(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.PairPlatforms = []PairPlatforms{
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
		{}, // paper default ZCU216 pair
	}
	cfg.RebalanceEvery = 500 * sim.Millisecond
	cfg.RebalanceGap = 2
	f := MustNewFarm(cfg)

	// Every application exceeds a Small slot, so all arrivals route to
	// the ZCU216 pair; the rebalancer keeps seeing the idle PYNQ pair
	// as the least-loaded destination and keeps extracting candidates
	// it must re-queue.
	if err := f.Inject(bigOnlySequence(16)); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if sum.Apps != 16 {
		t.Fatalf("finished %d of 16", sum.Apps)
	}
	if sum.CrossMigratedApps != 0 {
		t.Fatalf("%d apps migrated to a pair that cannot host them", sum.CrossMigratedApps)
	}
	if got := sum.PairStats[1].Requeued; got == 0 {
		t.Fatal("rebalancer re-queued extractions went uncounted")
	}
	if got := sum.PairStats[0].Requeued; got != 0 {
		t.Fatalf("idle PYNQ pair shows %d re-queued apps", got)
	}
}
