package cluster

import (
	"versaslot/internal/metrics"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// Farm scales the paper's two-board switching unit to a rack: K
// independent Only.Little/Big.Little pairs behind a least-loaded
// dispatcher. Each pair runs its own D_switch loop; the dispatcher
// only chooses which pair an arriving application joins. This is the
// natural datacenter deployment of the paper's design ("a single
// available FPGA can enable cross-board switching for the entire
// system" — a farm amortizes the spare across pairs of tenants).
type Farm struct {
	K     *sim.Kernel
	Pairs []*Cluster

	totalApps int
	routed    []int // arrivals dispatched per pair
}

// NewFarm builds a farm of n switching pairs sharing one kernel.
func NewFarm(cfg Config, n int) *Farm {
	if n <= 0 {
		panic("cluster: farm needs at least one pair")
	}
	f := &Farm{K: sim.NewKernel(cfg.Seed), routed: make([]int, n)}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		pair := buildCluster(f.K, c, i*2)
		f.Pairs = append(f.Pairs, pair)
	}
	return f
}

// Inject schedules the workload, dispatching each arrival to the
// least-loaded pair (fewest unfinished applications) at its arrival
// instant.
func (f *Farm) Inject(seq *workload.Sequence) error {
	apps, err := seq.Instantiate(f.totalApps)
	if err != nil {
		return err
	}
	f.totalApps += len(apps)
	for _, a := range apps {
		a := a
		f.K.At(a.Arrival, func() {
			idx := f.leastLoaded()
			f.routed[idx]++
			f.Pairs[idx].activeEngine().InjectNow(a)
		})
	}
	return nil
}

func (f *Farm) leastLoaded() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i, p := range f.Pairs {
		load := 0
		for _, e := range p.engines {
			load += len(e.Active)
		}
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// Routed returns how many arrivals each pair received.
func (f *Farm) Routed() []int {
	out := make([]int, len(f.routed))
	copy(out, f.routed)
	return out
}

// Run executes to completion and merges every pair's results.
func (f *Farm) Run() Summary {
	f.K.Run()
	var samples []metrics.ResponseSample
	s := Summary{}
	for _, p := range f.Pairs {
		for _, e := range p.engines {
			e.FlushResidency()
			e.CheckQuiescent()
			samples = append(samples, e.Col.Responses...)
		}
		s.Switches += len(p.Migrations)
		for _, m := range p.Migrations {
			s.MigratedApps += m.Apps
			s.MeanSwitchTime += m.Duration
		}
		s.Trace = append(s.Trace, p.Trace...)
	}
	s.Apps = len(samples)
	if len(samples) > 0 {
		s.MeanRT = metrics.MeanResponse(samples)
		vals := make([]float64, len(samples))
		for i, r := range samples {
			vals[i] = float64(r.Response)
		}
		s.P95 = sim.Duration(metrics.PercentileOf(vals, 95))
		s.P99 = sim.Duration(metrics.PercentileOf(vals, 99))
	}
	if s.Switches > 0 {
		s.MeanSwitchTime /= sim.Duration(s.Switches)
	}
	return s
}

// UnfinishedCount sums unfinished apps across the farm (diagnostics).
func (f *Farm) UnfinishedCount() int {
	n := 0
	for _, p := range f.Pairs {
		for _, e := range p.engines {
			n += e.UnfinishedCount()
		}
	}
	return n
}
