package cluster

import (
	"fmt"
	"runtime"

	"versaslot/internal/appmodel"
	"versaslot/internal/interlink"
	"versaslot/internal/metrics"
	"versaslot/internal/migrate"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// PairPlatforms assigns the two board platforms of one switching pair.
// Empty fields fall back to the farm's pair defaults (and ultimately
// to the paper's zcu216-only-little / zcu216-big-little pair).
type PairPlatforms struct {
	Base  string `json:"base,omitempty"`
	Boost string `json:"boost,omitempty"`
}

// FarmConfig parameterizes a farm: the per-pair switching setup, the
// farm size, the arrival dispatcher, and the cross-pair rebalancer.
type FarmConfig struct {
	// Pair is the configuration every switching pair runs.
	Pair Config
	// Pairs is the farm size (number of switching pairs).
	Pairs int
	// PairPlatforms assigns platforms per pair: entry i configures pair
	// i; missing entries (or empty fields) inherit Pair's platforms. A
	// farm can therefore mix board types — e.g. ZCU216 Big.Little pairs
	// next to U250 quad-slot pairs — and the dispatcher routes each
	// application only to pairs whose slot classes can hold it.
	PairPlatforms []PairPlatforms
	// Dispatcher is a registered dispatcher name; empty means
	// least-loaded (the farm's historical default).
	Dispatcher string
	// RebalanceEvery, when positive, runs the rebalancer on that
	// virtual-time cadence: sustained load imbalance between the most-
	// and least-loaded pairs live-migrates queued applications across
	// pairs over the rack-level Aurora link. Zero disables rebalancing.
	RebalanceEvery sim.Duration
	// RebalanceGap is the minimum load gap (unfinished applications)
	// that triggers a cross-pair migration. Zero (unset) means the
	// default of 2; a configured gap of 1 is honored but can ping-pong
	// a single queued app between two otherwise balanced pairs.
	RebalanceGap int
	// Shards, when greater than one, runs the farm's pairs on that many
	// worker goroutines: each pair advances its own event stream under
	// conservative lookahead synchronization (shards run ahead to the
	// next farm-control instant — arrival dispatch, rebalance tick,
	// rack-link completion, fault strike — and only shards that can
	// interact synchronize) so the merged result is byte-identical to
	// the sequential run. Zero selects the shard count automatically
	// from the online-pair count and GOMAXPROCS — sequential when the
	// farm is too small or the host too narrow for sharding to win,
	// never slower than sequential by construction. One forces
	// sequential execution. Values above the pair count are clamped.
	// An explicit Shards > 1 is incompatible with a non-zero
	// Pair.Params.PRFailureRate, whose CRC re-stream draws would come
	// from per-pair RNGs instead of the shared kernel stream; the
	// automatic path quietly stays sequential there.
	Shards int
	// Standby decommissions the last Standby pairs at construction:
	// they are built (kernels, engines, platforms) but start in
	// PairStandby and receive no dispatches until ActivatePair brings
	// them online — the autoscaler's spare capacity. Must be less than
	// Pairs (at least one pair starts online).
	Standby int
}

// PairState is a pair's position in the commissioning lifecycle. It is
// orthogonal to the fault axis: an online pair with an open outage is
// degraded (dispatch routes around it until recovery) while a draining
// pair is leaving the fleet on purpose (its queue has been migrated
// away and it only finishes what is already executing).
type PairState int

const (
	// PairOnline pairs receive dispatches and rebalancer traffic.
	PairOnline PairState = iota
	// PairStandby pairs are built but decommissioned: no dispatches,
	// no rebalancer traffic, until ActivatePair.
	PairStandby
	// PairDraining pairs are scaling down: excluded from new
	// dispatches, their ready queue migrated to online pairs; they
	// finish executing work, then FinishDrain returns them to standby.
	PairDraining
)

func (s PairState) String() string {
	switch s {
	case PairOnline:
		return "online"
	case PairStandby:
		return "standby"
	case PairDraining:
		return "draining"
	default:
		return fmt.Sprintf("PairState(%d)", int(s))
	}
}

// DefaultFarmConfig returns an n-pair farm of the paper's switching
// setup with the default dispatcher and no rebalancing.
func DefaultFarmConfig(n int) FarmConfig {
	return FarmConfig{Pair: DefaultConfig(), Pairs: n}
}

// Automatic shard selection (FarmConfig.Shards == 0). The floors come
// from the BENCH_8 scaling wall: below ~64 online pairs the whole run
// is too short for worker wakeups to amortize (at 128 pairs, 8 shards
// measured *slower* than sequential), and past ~32 pairs per shard the
// extra workers only add synchronization without adding parallel work
// (8 shards were no faster than 4 at 1,024 pairs under the barrier
// loop). The cap keeps wide hosts from splintering the fleet into
// slivers a single control tick can stall.
const (
	autoShardMinPairs      = 64
	autoShardPairsPerShard = 32
	autoShardMax           = 8
)

// autoShards picks the worker count for an auto-sharded farm from the
// online-pair count and the host's GOMAXPROCS. It returns 1 —
// sequential, the inline fallback — whenever sharding cannot win by
// construction: a single-slot scheduler, or too few active pairs.
func autoShards(onlinePairs, procs int) int {
	if procs < 2 || onlinePairs < autoShardMinPairs {
		return 1
	}
	s := procs
	if s > autoShardMax {
		s = autoShardMax
	}
	for s > 1 && onlinePairs/s < autoShardPairsPerShard {
		s--
	}
	return s
}

func (c FarmConfig) gap() int {
	if c.RebalanceGap <= 0 {
		return 2
	}
	return c.RebalanceGap
}

// pairConfig returns the cluster Config of pair i with its platform
// assignment applied.
func (c FarmConfig) pairConfig(i int) Config {
	pc := c.Pair
	pc.Seed = c.Pair.Seed + uint64(i)
	if i < len(c.PairPlatforms) {
		if p := c.PairPlatforms[i].Base; p != "" {
			pc.BasePlatform = p
		}
		if p := c.PairPlatforms[i].Boost; p != "" {
			pc.BoostPlatform = p
		}
	}
	return pc
}

// Farm scales the paper's two-board switching unit to a rack: K
// switching pairs — possibly of different board platforms — behind a
// pluggable, capacity-aware dispatcher. Each pair runs its own
// D_switch loop; the dispatcher chooses which pair an arriving
// application joins (among the pairs whose slot classes can hold it),
// and the optional rebalancer live-migrates queued applications
// between compatible pairs when their loads diverge — generalizing the
// paper's board-to-board migration ("a single available FPGA can
// enable cross-board switching for the entire system") to
// pair-to-pair transfers over a rack link.
type Farm struct {
	K     *sim.Kernel
	Pairs []*Cluster
	Cfg   FarmConfig

	// Rack is the rack-level Aurora link cross-pair migrations travel
	// over; transfers serialize on it like any interlink channel.
	Rack *interlink.Link

	// CrossMigrations records every rebalancer-driven pair-to-pair
	// transfer.
	CrossMigrations []migrate.Migration

	dispatcher Dispatcher
	totalApps  int
	routed     []int // arrivals dispatched per pair
	load       []int // unfinished apps per pair, maintained incrementally
	crossIn    []int // apps received via rebalancing, per pair
	crossOut   []int // apps sent away via rebalancing, per pair
	requeued   []int // apps the rebalancer extracted but returned, per pair
	outages    []int // open board outages per pair (>0 = degraded)
	unhealthy  int   // pairs with outages > 0
	cost       *migrate.CostModel

	// finishedBy counts completions per pair. Sharded workers write
	// only their own pairs' elements, so the slice is race-free without
	// atomics; finishedCount sums it on the coordinator.
	finishedBy []int

	// pairK holds each pair's private kernel when the farm is sharded;
	// nil on the sequential path, where every pair shares f.K. shards
	// is the resolved worker count (auto-selected when Cfg.Shards is
	// zero), and coord is the live lookahead coordinator while a
	// sharded Run is in progress (TouchPair's hand-off point).
	pairK  []*sim.Kernel
	shards int
	coord  *shardCoord

	// Arrival cursor: Inject walks a sorted sequence with one chained
	// event instead of a closure per app (see Engine.InjectSequence).
	arrQ   []*appmodel.App
	arrPos int
	arrFn  func()

	// poolScratch is DispatchEligible's reusable outage-filter buffer:
	// the result is consumed synchronously by the dispatcher's Pick.
	poolScratch []int

	// uniform is true when every pair runs identical platforms — the
	// homogeneous fast path where per-pair eligibility filtering is
	// skipped (dispatch stays byte-identical to the pre-platform farm);
	// hostability is then all-or-nothing per spec and checked at
	// Inject.
	uniform bool
	// hostBySpec caches farm-wide hostability capability per spec:
	// whether ANY pair — online, standby, or draining — could host it.
	// Pool-independent, so it never invalidates.
	hostBySpec map[*appmodel.AppSpec]bool
	// eligibleBySpec caches, per application spec, the commissioned
	// (non-standby) pair indices whose platforms can host it (nil on
	// the all-online uniform fast path). The cache depends on the pair
	// pool: every ActivatePair/StartDrain/FinishDrain transition
	// invalidates it — see invalidatePools.
	eligibleBySpec map[*appmodel.AppSpec][]int

	// status is each pair's commissioning state; nonOnline counts
	// pairs not currently PairOnline (standby + draining) and draining
	// counts PairDraining pairs, so the all-online fast paths stay a
	// single compare.
	status    []PairState
	nonOnline int
	draining  int

	rebalanceArmed bool        // the periodic tick has been scheduled
	rebalancing    bool        // a cross-pair transfer is in flight
	nextTick       sim.EventID // handle of the pending rebalance tick
}

// NewFarm builds a farm from its configuration. It panics if the
// configuration asks for no pairs (a structural impossibility, like
// the two-board cluster without boards) and returns an error for an
// unknown dispatcher or platform name.
func NewFarm(cfg FarmConfig) (*Farm, error) {
	if cfg.Pairs <= 0 {
		panic("cluster: farm needs at least one pair")
	}
	name := cfg.Dispatcher
	if name == "" {
		name = DispatchLeastLoaded
	}
	d, err := NewDispatcher(name)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = autoShards(cfg.Pairs-cfg.Standby, runtime.GOMAXPROCS(0))
		if cfg.Pair.Params.PRFailureRate > 0 {
			shards = 1
		}
	}
	if shards > cfg.Pairs {
		shards = cfg.Pairs
	}
	if shards < 1 {
		shards = 1
	}
	if shards > 1 && cfg.Pair.Params.PRFailureRate > 0 {
		return nil, fmt.Errorf("cluster: sharded farm execution is incompatible with pr_failure_rate > 0 (CRC re-stream draws would leave the shared kernel stream)")
	}
	if cfg.Standby < 0 || cfg.Standby >= cfg.Pairs {
		return nil, fmt.Errorf("cluster: standby count %d out of range (need 0 <= standby < %d pairs)", cfg.Standby, cfg.Pairs)
	}
	f := &Farm{
		Cfg:        cfg,
		K:          sim.NewKernel(cfg.Pair.Seed),
		dispatcher: d,
		shards:     shards,
		routed:     make([]int, cfg.Pairs),
		load:       make([]int, cfg.Pairs),
		finishedBy: make([]int, cfg.Pairs),
		crossIn:    make([]int, cfg.Pairs),
		crossOut:   make([]int, cfg.Pairs),
		requeued:   make([]int, cfg.Pairs),
		outages:    make([]int, cfg.Pairs),
		status:     make([]PairState, cfg.Pairs),
	}
	for i := cfg.Pairs - cfg.Standby; i < cfg.Pairs; i++ {
		f.status[i] = PairStandby
		f.nonOnline++
	}
	f.Rack = interlink.NewDefault(f.K, "rack")
	// Farm-control events (rack transfers, rebalance ticks, fault
	// chains) run at PriFarmControl and arrivals at PriArrival in both
	// execution modes, so same-instant ordering — control plane first,
	// then pair-local events — is identical whether the pairs share f.K
	// or advance their own kernels.
	f.Rack.SetPriority(sim.PriFarmControl)
	for i := 0; i < cfg.Pairs; i++ {
		pk := f.K
		if shards > 1 {
			// Each pair gets a private kernel seeded exactly like the
			// pair config seeds the sequential build, so pair-local
			// evolution is deterministic and independent of its
			// neighbors between synchronization instants.
			pk = sim.NewKernel(cfg.pairConfig(i).Seed)
			f.pairK = append(f.pairK, pk)
		}
		pair, err := buildCluster(pk, cfg.pairConfig(i), i*2)
		if err != nil {
			return nil, err
		}
		f.Pairs = append(f.Pairs, pair)
		// Maintain the per-pair load counter incrementally: arrivals
		// increment it at dispatch; completions on either board of the
		// pair decrement it here. Chaining preserves the pair's own
		// D_switch bookkeeping hook.
		i := i
		for _, mode := range pairModes {
			e := pair.Engine(mode)
			prev := e.OnAppFinished
			e.OnAppFinished = func(a *appmodel.App) {
				if prev != nil {
					prev(a)
				}
				f.load[i]--
				f.finishedBy[i]++
			}
		}
	}
	f.uniform = true
	for _, p := range f.Pairs[1:] {
		if p.Platform(migrate.Base) != f.Pairs[0].Platform(migrate.Base) ||
			p.Platform(migrate.Boost) != f.Pairs[0].Platform(migrate.Boost) {
			f.uniform = false
			break
		}
	}
	f.hostBySpec = make(map[*appmodel.AppSpec]bool)
	// Even uniform farms need the eligibility cache once pairs leave
	// the online pool (the nil fast path stands for "all pairs").
	f.eligibleBySpec = make(map[*appmodel.AppSpec][]int)
	d.Init(f)
	return f, nil
}

// MustNewFarm is NewFarm, panicking on error; for tests and examples
// with known-good configurations.
func MustNewFarm(cfg FarmConfig) *Farm {
	f, err := NewFarm(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Dispatcher returns the canonical name of the farm's dispatcher.
func (f *Farm) Dispatcher() string { return f.dispatcher.Name() }

// ShardCount returns the resolved worker count the farm executes with:
// Cfg.Shards clamped to the pair count, or the automatic selection
// when Cfg.Shards is zero. One means sequential execution.
func (f *Farm) ShardCount() int { return f.shards }

// Load returns a copy of the current unfinished-app count per pair
// (the dispatcher's view). Hot paths use LoadView.
func (f *Farm) Load() []int {
	out := make([]int, len(f.load))
	copy(out, f.load)
	return out
}

// LoadView returns the farm's internal per-pair load slice without
// copying. It is only valid until the next dispatched arrival or
// completion; callers (dispatchers, the rebalancer) must read, not
// retain or mutate.
func (f *Farm) LoadView() []int { return f.load }

// Eligible returns the commissioned (online or draining) pair indices
// whose platforms can host the application, or nil when every pair can
// (the all-online homogeneous fast path). Dispatchers must restrict
// their choice to these pairs: an application that fits no slot of a
// PYNQ-class pair has to route to a bigger board, and no application
// routes to a standby pair. The per-spec result is cached; the cache
// is invalidated whenever a pair joins or leaves the commissioned pool
// (invalidatePools), so mid-run scale-up/scale-down is never served a
// stale pair set.
func (f *Farm) Eligible(a *appmodel.App) []int {
	if f.uniform && f.nonOnline == 0 {
		return nil
	}
	if elig, ok := f.eligibleBySpec[a.Spec]; ok {
		return elig
	}
	elig := make([]int, 0, len(f.Pairs))
	for i, p := range f.Pairs {
		if f.status[i] != PairStandby && p.CanHost(a.Spec) {
			elig = append(elig, i)
		}
	}
	f.eligibleBySpec[a.Spec] = elig
	return elig
}

// invalidatePools drops every pool-dependent cache after a pair
// lifecycle transition: the per-spec eligibility lists (their pair
// sets just changed) and, via PoolAware, any dispatcher-internal memo.
// This is the fix for the stale-pool bug the autoscaler exposed: the
// eligibility cache predates pair add/drain and was computed once per
// spec for the run's lifetime, so a newly activated pair never
// received traffic and a draining pair kept receiving it.
func (f *Farm) invalidatePools() {
	for k := range f.eligibleBySpec {
		delete(f.eligibleBySpec, k)
	}
	if pa, ok := f.dispatcher.(PoolAware); ok {
		pa.PoolChanged(f)
	}
}

// CanHostAnywhere reports whether any pair of the farm — regardless of
// commissioning state — could host the application: the capability
// check admission control and Inject run up front. A standby pair
// counts: it can be activated later.
func (f *Farm) CanHostAnywhere(a *appmodel.App) bool {
	h, ok := f.hostBySpec[a.Spec]
	if !ok {
		if f.uniform {
			h = f.Pairs[0].CanHost(a.Spec)
		} else {
			for _, p := range f.Pairs {
				if p.CanHost(a.Spec) {
					h = true
					break
				}
			}
		}
		f.hostBySpec[a.Spec] = h
	}
	return h
}

// CanDispatch reports whether the application could be dispatched
// right now: some commissioned pair can host it. False means the
// capacity exists only on standby pairs (or not at all) — the
// orchestrator holds such arrivals until scale-up commissions one.
func (f *Farm) CanDispatch(a *appmodel.App) bool {
	elig := f.Eligible(a)
	return elig == nil || len(elig) > 0
}

// PairStateOf returns pair i's commissioning state.
func (f *Farm) PairStateOf(i int) PairState { return f.status[i] }

// OnlineCount returns the number of PairOnline pairs.
func (f *Farm) OnlineCount() int { return len(f.Pairs) - f.nonOnline }

// DrainingCount returns the number of PairDraining pairs.
func (f *Farm) DrainingCount() int { return f.draining }

// ActivatePair commissions a standby pair: it joins the dispatch pool
// at the current instant (the scale-up latency has already elapsed —
// the autoscaler schedules the activation, not the decision, at
// decision time + up_latency). The eligibility caches are invalidated
// so the next arrival can route to it.
func (f *Farm) ActivatePair(i int) error {
	if i < 0 || i >= len(f.Pairs) {
		return fmt.Errorf("cluster: activate pair %d of %d", i, len(f.Pairs))
	}
	if f.status[i] != PairStandby {
		return fmt.Errorf("cluster: activate pair %d: state %v, want standby", i, f.status[i])
	}
	f.status[i] = PairOnline
	f.nonOnline--
	f.invalidatePools()
	return nil
}

// StartDrain begins decommissioning an online pair: it leaves the
// dispatch pool immediately, and its ready (not yet executing) queue
// live-migrates to the least-loaded online pairs that can host each
// application, over the rack link — the same extract/transfer/
// re-inject mechanics as the rebalancer, so no application is ever
// lost. Apps no online pair can host are re-queued at the source
// (counted as requeued) and finish there. Executing work always stays,
// exactly as in Section III-D. Returns the number of apps migrated
// away. Draining the last online pair is refused.
func (f *Farm) StartDrain(i int) (int, error) {
	if i < 0 || i >= len(f.Pairs) {
		return 0, fmt.Errorf("cluster: drain pair %d of %d", i, len(f.Pairs))
	}
	if f.status[i] != PairOnline {
		return 0, fmt.Errorf("cluster: drain pair %d: state %v, want online", i, f.status[i])
	}
	if f.OnlineCount() <= 1 {
		return 0, fmt.Errorf("cluster: drain pair %d: it is the last online pair", i)
	}
	f.status[i] = PairDraining
	f.nonOnline++
	f.draining++
	f.invalidatePools()
	return f.drainCross(i), nil
}

// FinishDrain returns a fully drained pair to standby. It is the
// autoscaler's completion check: legal only once the pair has no
// unfinished applications left.
func (f *Farm) FinishDrain(i int) error {
	if i < 0 || i >= len(f.Pairs) {
		return fmt.Errorf("cluster: finish drain of pair %d of %d", i, len(f.Pairs))
	}
	if f.status[i] != PairDraining {
		return fmt.Errorf("cluster: finish drain of pair %d: state %v, want draining", i, f.status[i])
	}
	if f.load[i] != 0 {
		return fmt.Errorf("cluster: finish drain of pair %d: %d apps still unfinished", i, f.load[i])
	}
	f.status[i] = PairStandby
	f.draining--
	f.invalidatePools()
	return nil
}

// drainCross moves every ready application off pair src: each app goes
// to the least-loaded healthy online pair that can host it (ties to
// the lowest index, loads updated as apps are assigned), grouped into
// one rack-link transfer per destination. Unhostable apps re-queue at
// src. Same ledger bookkeeping as migrateCross.
func (f *Farm) drainCross(src int) int {
	// Extraction, requeue, and Forget all reach into the source pair's
	// engines at the current control instant.
	f.TouchPair(src)
	eng := f.Pairs[src].activeEngine()
	all := eng.Policy().ExtractMigratable()
	if len(all) == 0 {
		return 0
	}
	groups := make([][]*appmodel.App, len(f.Pairs))
	var unfit []*appmodel.App
	for _, a := range all {
		dst := -1
		for j := range f.Pairs {
			if j == src || f.status[j] != PairOnline || f.outages[j] > 0 {
				continue
			}
			if !f.uniform && !f.Pairs[j].CanHost(a.Spec) {
				continue
			}
			if dst < 0 || f.load[j] < f.load[dst] {
				dst = j
			}
		}
		if dst < 0 {
			// Fall back to degraded online pairs before giving up: a
			// degraded pair still queues work for recovery.
			for j := range f.Pairs {
				if j == src || f.status[j] != PairOnline {
					continue
				}
				if !f.uniform && !f.Pairs[j].CanHost(a.Spec) {
					continue
				}
				if dst < 0 || f.load[j] < f.load[dst] {
					dst = j
				}
			}
		}
		if dst < 0 {
			unfit = append(unfit, a)
			continue
		}
		groups[dst] = append(groups[dst], a)
		f.load[src]--
		f.load[dst]++
	}
	if len(unfit) > 0 {
		f.requeued[src] += len(unfit)
		eng.Policy().AcceptMigrated(unfit)
	}
	moved := 0
	for dst, apps := range groups {
		if len(apps) == 0 {
			continue
		}
		moved += len(apps)
		for _, a := range apps {
			for _, mode := range pairModes {
				f.Pairs[src].Engine(mode).Forget(a)
			}
		}
		f.crossOut[src] += len(apps)
		f.crossIn[dst] += len(apps)
		target := f.Pairs[dst]
		dstIdx := dst
		migrate.ExecuteModel(f.K, f.Rack, apps, f.cost, func(apps []*appmodel.App) {
			f.TouchPair(dstIdx)
			next := target.activeEngine()
			for _, a := range apps {
				warmNamesFor(next, target.Platform(target.ActiveMode()), a)
				next.InjectMigrated(a)
			}
		}, func(m migrate.Migration) {
			f.CrossMigrations = append(f.CrossMigrations, m)
		})
	}
	return moved
}

// PairOutage marks one of pair i's boards as failed: the pair is
// degraded — dispatchers route around it and the rebalancer drains it —
// until a matching PairRestored. Outages nest (both boards of a pair
// can be down at once); the board-fail injector drives these. Also used
// as the availability hint for the checkpoint injector's health model.
func (f *Farm) PairOutage(i int) {
	if f.outages[i] == 0 {
		f.unhealthy++
	}
	f.outages[i]++
}

// PairRestored closes one outage on pair i; the pair rejoins dispatch
// once every outage is restored. Restoring a healthy pair is a no-op so
// injector chains cannot drive the count negative.
func (f *Farm) PairRestored(i int) {
	if f.outages[i] == 0 {
		return
	}
	f.outages[i]--
	if f.outages[i] == 0 {
		f.unhealthy--
	}
}

// PairHealthy reports whether pair i currently has no open outage.
func (f *Farm) PairHealthy(i int) bool { return f.outages[i] == 0 }

// SetMigrationCost installs a checkpoint/restore cost model on every
// migration in the farm: cross-pair rebalancer transfers and each
// pair's internal switches.
func (f *Farm) SetMigrationCost(m *migrate.CostModel) {
	f.cost = m
	for _, p := range f.Pairs {
		p.SetMigrationCost(m)
	}
}

// DispatchEligible is the dispatcher's view of Eligible: compatible
// pairs with open outages are filtered out, so arrivals route around
// degraded pairs, and draining pairs are filtered out, so scale-down
// stops receiving new work the instant it is decided. If every
// compatible pair is degraded or draining the full compatible set is
// returned — an arrival must land somewhere, and a degraded pair still
// queues work for when its board recovers. With no open outages and no
// draining pair this is exactly Eligible (the fault-free fast path
// draws nothing and allocates nothing extra).
func (f *Farm) DispatchEligible(a *appmodel.App) []int {
	elig := f.Eligible(a)
	if f.unhealthy == 0 && f.draining == 0 {
		return elig
	}
	// The filtered pool lives in a per-farm scratch buffer: Pick
	// consumes it synchronously, and the next arrival overwrites it.
	pool := f.poolScratch[:0]
	if elig == nil {
		for i := range f.Pairs {
			if f.outages[i] == 0 {
				pool = append(pool, i)
			}
		}
	} else {
		for _, i := range elig {
			if f.outages[i] == 0 && f.status[i] != PairDraining {
				pool = append(pool, i)
			}
		}
	}
	f.poolScratch = pool
	if len(pool) == 0 {
		return elig
	}
	return pool
}

// Inject schedules the workload, dispatching each arrival through the
// farm's dispatcher at its arrival instant. It errors up front for
// applications no pair in the farm can host.
func (f *Farm) Inject(seq *workload.Sequence) error {
	apps, err := seq.Instantiate(f.totalApps)
	if err != nil {
		return err
	}
	for _, a := range apps {
		if !f.CanHostAnywhere(a) {
			return fmt.Errorf("cluster: app %v (%s) fits no slot class on any pair of the farm", a, a.Spec.Name)
		}
	}
	f.totalApps += len(apps)
	f.scheduleArrivals(apps)
	f.armRebalancer()
	return nil
}

// DispatchNow routes one application through the dispatcher at the
// current kernel instant: the orchestrator's admission-time injection
// path (arrivals reach the farm only once admitted, so the farm's
// ledger counts admitted apps, never rejected ones). Callers validate
// hostability (CanHostAnywhere) and schedulability (CanDispatch)
// first.
func (f *Farm) DispatchNow(a *appmodel.App) {
	f.totalApps++
	f.dispatchOne(a)
	f.armRebalancer()
}

// scheduleArrivals walks a sorted arrival sequence with one chained
// cursor event instead of a closure per app; out-of-order sequences
// (or a second Inject while a cursor is mid-walk) fall back to one
// event per app. Arrivals carry sim.PriArrival so dispatch decisions
// fire ahead of every same-instant simulation event.
func (f *Farm) scheduleArrivals(apps []*appmodel.App) {
	sorted := true
	for i := 1; i < len(apps); i++ {
		if apps[i].Arrival < apps[i-1].Arrival {
			sorted = false
			break
		}
	}
	if !sorted || f.arrPos < len(f.arrQ) {
		for _, a := range apps {
			a := a
			f.K.AtP(a.Arrival, sim.PriArrival, func() { f.dispatchOne(a) })
		}
		return
	}
	f.arrQ, f.arrPos = apps, 0
	if f.arrFn == nil {
		f.arrFn = func() {
			a := f.arrQ[f.arrPos]
			f.arrPos++
			if f.arrPos < len(f.arrQ) {
				f.K.AtP(f.arrQ[f.arrPos].Arrival, sim.PriArrival, f.arrFn)
			}
			f.dispatchOne(a)
		}
	}
	f.K.AtP(apps[0].Arrival, sim.PriArrival, f.arrFn)
}

// dispatchOne routes one arrival through the dispatcher at its arrival
// instant.
func (f *Farm) dispatchOne(a *appmodel.App) {
	idx := f.dispatcher.Pick(a)
	if idx < 0 || idx >= len(f.Pairs) {
		panic(fmt.Sprintf("cluster: dispatcher %q picked pair %d of %d",
			f.dispatcher.Name(), idx, len(f.Pairs)))
	}
	if elig := f.Eligible(a); elig != nil && !containsPair(elig, idx) {
		panic(fmt.Sprintf("cluster: dispatcher %q routed %s to pair %d, whose platforms cannot host it",
			f.dispatcher.Name(), a.Spec.Name, idx))
	}
	f.routed[idx]++
	f.load[idx]++
	// Sharded runs advance pair clocks lazily; the pair must reach the
	// dispatch instant before the injection lands on its kernel.
	f.TouchPair(idx)
	f.Pairs[idx].activeEngine().InjectNow(a)
}

func containsPair(elig []int, idx int) bool {
	for _, i := range elig {
		if i == idx {
			return true
		}
	}
	return false
}

// Routed returns a copy of how many arrivals each pair received.
func (f *Farm) Routed() []int {
	out := make([]int, len(f.routed))
	copy(out, f.routed)
	return out
}

// RoutedView is Routed without the copy; same read-only, read-now
// contract as LoadView.
func (f *Farm) RoutedView() []int { return f.routed }

// armRebalancer schedules the first rebalance tick; the tick
// re-schedules itself while unfinished applications remain, so the
// loop winds down with the workload instead of keeping the kernel
// alive forever.
func (f *Farm) armRebalancer() {
	if f.Cfg.RebalanceEvery <= 0 || f.rebalanceArmed {
		return
	}
	f.rebalanceArmed = true
	f.nextTick = f.K.ScheduleP(f.Cfg.RebalanceEvery, sim.PriFarmControl, f.rebalanceTick)
}

// finishedCount sums per-pair completions; see finishedBy.
func (f *Farm) finishedCount() int {
	n := 0
	for _, c := range f.finishedBy {
		n += c
	}
	return n
}

// DisarmRebalancer cancels the pending rebalance tick (via its event
// handle), e.g. to freeze placement while draining a farm. Injecting
// another sequence re-arms it.
func (f *Farm) DisarmRebalancer() {
	f.K.Cancel(f.nextTick)
	f.nextTick = sim.NoEvent
	f.rebalanceArmed = false
}

func (f *Farm) rebalanceTick() {
	if f.finishedCount() >= f.totalApps {
		f.rebalanceArmed = false
		f.nextTick = sim.NoEvent
		return
	}
	f.nextTick = f.K.ScheduleP(f.Cfg.RebalanceEvery, sim.PriFarmControl, f.rebalanceTick)
	if f.rebalancing || len(f.Pairs) < 2 {
		// One transfer at a time on the rack link; the next tick
		// re-evaluates.
		return
	}
	// Degraded pairs are treated as infinitely hot: a pair with an open
	// outage is always the preferred drain source and never a
	// destination. With no open outages the scan reduces to the classic
	// first-argmax/first-argmin over load, byte-identical to the
	// fault-free rebalancer. Standby and draining pairs are outside the
	// pool entirely: standby pairs hold no work, and a draining pair's
	// queue was already migrated by StartDrain — with every pair online
	// the check never fires.
	src, dst := -1, -1
	for i, l := range f.load {
		if f.status[i] != PairOnline {
			continue
		}
		if f.outages[i] > 0 {
			if src < 0 || f.outages[src] == 0 || l > f.load[src] {
				src = i
			}
			continue
		}
		if src < 0 || (f.outages[src] == 0 && l > f.load[src]) {
			src = i
		}
		if dst < 0 || l < f.load[dst] {
			dst = i
		}
	}
	if src < 0 || dst < 0 || src == dst {
		return
	}
	if f.outages[src] > 0 {
		// Drain the degraded pair regardless of the gap threshold: its
		// queue has nowhere to run until recovery.
		if f.load[src] <= 0 {
			return
		}
		f.migrateCross(src, dst, f.load[src])
		return
	}
	gap := f.load[src] - f.load[dst]
	if gap < f.Cfg.gap() {
		return
	}
	move := gap / 2
	if move == 0 {
		move = 1 // a configured gap of 1 still moves one app
	}
	f.migrateCross(src, dst, move)
}

// migrateCross moves up to max queued applications from pair src to
// pair dst over the rack link: the same extract/transfer/re-inject
// mechanics as the pair-internal switch, generalized beyond a pair's
// two boards. Only ready (not yet executing) applications move;
// executing work stays on its board, exactly as in Section III-D. On
// heterogeneous farms the destination's slot classes are validated per
// application: apps the destination cannot host are re-queued at the
// source instead of transferred.
func (f *Farm) migrateCross(src, dst, max int) {
	// Extraction, requeue, and Forget all reach into the source pair's
	// engines at the current control instant.
	f.TouchPair(src)
	eng := f.Pairs[src].activeEngine()
	var moved []*appmodel.App
	if lim, ok := eng.Policy().(sched.MigrationLimiter); ok {
		// The policy can extract a bounded set without dissolving
		// scheduling state for apps that stay.
		moved = lim.ExtractMigratableUpTo(max)
	} else {
		// Lossless-drain policies: extract everything, move the most
		// recently arrived apps (furthest from being scheduled
		// locally), and re-queue the remainder.
		all := eng.Policy().ExtractMigratable()
		n := max
		if n > len(all) {
			n = len(all)
		}
		moved = all[len(all)-n:]
		if rest := all[:len(all)-n]; len(rest) > 0 {
			eng.Policy().AcceptMigrated(rest)
		}
	}
	// Destination slot-class compatibility: on heterogeneous farms the
	// globally least-loaded pair may be unable to host any extracted
	// app (a small-board pair is often the idlest precisely because
	// heavy apps route around it), so re-pick the least-loaded healthy
	// pair that can host at least one candidate, then keep only the
	// apps it can hold; the rest return to the source queue and are
	// counted as re-queued.
	if !f.uniform {
		dst = -1
		for i := range f.Pairs {
			if i == src || f.outages[i] > 0 || f.status[i] != PairOnline {
				continue
			}
			hostsAny := false
			for _, a := range moved {
				if containsPair(f.Eligible(a), i) {
					hostsAny = true
					break
				}
			}
			if hostsAny && (dst < 0 || f.load[i] < f.load[dst]) {
				dst = i
			}
		}
		if dst < 0 {
			if len(moved) > 0 {
				f.requeued[src] += len(moved)
				eng.Policy().AcceptMigrated(moved)
			}
			return
		}
		kept := moved[:0]
		var unfit []*appmodel.App
		for _, a := range moved {
			if containsPair(f.Eligible(a), dst) {
				kept = append(kept, a)
			} else {
				unfit = append(unfit, a)
			}
		}
		moved = kept
		if len(unfit) > 0 {
			f.requeued[src] += len(unfit)
			eng.Policy().AcceptMigrated(unfit)
		}
	}
	target := f.Pairs[dst]
	if len(moved) == 0 {
		return
	}
	n := len(moved)
	for _, a := range moved {
		// Forget on both of the source pair's boards, not just the
		// active one: an earlier intra-pair switch may have listed the
		// app on the spare board too, and the pair's D_switch
		// accounting must stop counting apps another pair now hosts.
		for _, mode := range pairModes {
			f.Pairs[src].Engine(mode).Forget(a)
		}
	}
	f.load[src] -= n
	f.load[dst] += n
	f.crossOut[src] += n
	f.crossIn[dst] += n
	f.rebalancing = true
	dstIdx := dst
	migrate.ExecuteModel(f.K, f.Rack, moved, f.cost, func(apps []*appmodel.App) {
		f.rebalancing = false
		// Resolve the destination board at delivery (the pair may have
		// switched mid-flight) and stage the migrated apps' bitstreams
		// in its DDR cache — they travelled with the transfer — so the
		// first PR pays no SD-card streaming.
		f.TouchPair(dstIdx)
		next := target.activeEngine()
		for _, a := range apps {
			warmNamesFor(next, target.Platform(target.ActiveMode()), a)
			next.InjectMigrated(a)
		}
	}, func(m migrate.Migration) {
		f.CrossMigrations = append(f.CrossMigrations, m)
	})
}

// PairStat is one pair's contribution to a farm run.
type PairStat struct {
	// Pair is the pair index.
	Pair int `json:"pair"`
	// Routed is how many arrivals the dispatcher sent to the pair.
	Routed int `json:"routed"`
	// Apps is how many applications finished on the pair.
	Apps int `json:"apps"`
	// MeanRT and P50 summarize the pair's response times.
	MeanRT sim.Duration `json:"mean_rt"`
	P50    sim.Duration `json:"p50"`
	// UtilLUT/UtilFF are the pair's resource utilizations, weighted
	// across its two boards by completed apps.
	UtilLUT float64 `json:"util_lut"`
	UtilFF  float64 `json:"util_ff"`
	// Switches counts the pair's internal cross-board switches.
	Switches int `json:"switches"`
	// MigratedIn/MigratedOut count applications the rebalancer moved
	// into and out of the pair.
	MigratedIn  int `json:"migrated_in"`
	MigratedOut int `json:"migrated_out"`
	// Requeued counts applications the rebalancer extracted from the
	// pair but returned to its queue because no compatible (or healthy)
	// destination existed at that tick.
	Requeued int `json:"requeued,omitempty"`
}

// Run executes to completion and merges every pair's results.
func (f *Farm) Run() Summary {
	if f.shards > 1 {
		f.runSharded()
	} else {
		f.K.Run()
	}
	if len(f.Pairs) > 0 && f.Pairs[0].Streaming() {
		return f.summarizeStream()
	}
	var samples []metrics.ResponseSample
	var scratch []float64 // one percentile buffer reused across pairs
	s := Summary{}
	for i, p := range f.Pairs {
		// Per-pair samples are a sub-slice of the farm-wide buffer, not
		// a second copy: engines append directly into samples and the
		// pair's view is the region grown this iteration.
		pairStart := len(samples)
		var utilLUT, utilFF, weight float64
		for _, mode := range pairModes {
			e := p.Engine(mode)
			e.FlushResidency()
			e.CheckQuiescent()
			samples = append(samples, e.Col.Responses...)
			// Utilization() reads the residency integrals directly —
			// no need for Summarize's full percentile pass here.
			lut, ff := e.Col.Utilization()
			apps := float64(len(e.Col.Responses))
			utilLUT += lut * apps
			utilFF += ff * apps
			weight += apps
		}
		pairSamples := samples[pairStart:]
		ps := PairStat{
			Pair:        i,
			Routed:      f.routed[i],
			Apps:        len(pairSamples),
			Switches:    len(p.Migrations),
			MigratedIn:  f.crossIn[i],
			MigratedOut: f.crossOut[i],
			Requeued:    f.requeued[i],
		}
		if len(pairSamples) > 0 {
			ps.MeanRT = metrics.MeanResponse(pairSamples)
			scratch = metrics.SortedResponseValues(pairSamples, scratch)
			ps.P50 = sim.Duration(metrics.Percentile(scratch, 50))
		}
		if weight > 0 {
			ps.UtilLUT = utilLUT / weight
			ps.UtilFF = utilFF / weight
		}
		s.PairStats = append(s.PairStats, ps)
		s.Switches += len(p.Migrations)
		for _, m := range p.Migrations {
			s.MigratedApps += m.Apps
			s.MeanSwitchTime += m.Duration
		}
		s.Trace = append(s.Trace, p.Trace...)
	}
	s.Apps = len(samples)
	if len(samples) > 0 {
		s.MeanRT = metrics.MeanResponse(samples)
		vals := metrics.SortedResponseValues(samples, scratch)
		p50, p95, p99 := metrics.TailPercentiles(vals)
		s.P50 = sim.Duration(p50)
		s.P95 = sim.Duration(p95)
		s.P99 = sim.Duration(p99)
	}
	if s.Switches > 0 {
		s.MeanSwitchTime /= sim.Duration(s.Switches)
	}
	s.CrossSwitches = len(f.CrossMigrations)
	for _, m := range f.CrossMigrations {
		s.CrossMigratedApps += m.Apps
		s.MeanCrossTime += m.Duration
	}
	if s.CrossSwitches > 0 {
		s.MeanCrossTime /= sim.Duration(s.CrossSwitches)
	}
	return s
}

// summarizeStream is Run's stream-mode merge: no sample buffer ever
// exists. Each pair's two board sketches merge into a reusable pair
// sketch (its mean/P50 feed the PairStat), and pair sketches merge
// into the fleet sketch for the farm-wide percentiles — the exact
// associativity of bucket-count addition is what makes this identical
// whether pairs ran sequentially or sharded.
func (f *Farm) summarizeStream() Summary {
	s := Summary{}
	fleet := metrics.NewSketch(metrics.GlobalSketchBits)
	pair := metrics.NewSketch(metrics.GlobalSketchBits)
	for i, p := range f.Pairs {
		pair.Reset()
		var utilLUT, utilFF, weight float64
		for _, mode := range pairModes {
			e := p.Engine(mode)
			e.FlushResidency()
			e.CheckQuiescent()
			g := e.Col.GlobalSketch()
			pair.Merge(g)
			lut, ff := e.Col.Utilization()
			apps := float64(g.Count())
			utilLUT += lut * apps
			utilFF += ff * apps
			weight += apps
		}
		fleet.Merge(pair)
		ps := PairStat{
			Pair:        i,
			Routed:      f.routed[i],
			Apps:        int(pair.Count()),
			Switches:    len(p.Migrations),
			MigratedIn:  f.crossIn[i],
			MigratedOut: f.crossOut[i],
			Requeued:    f.requeued[i],
		}
		if pair.Count() > 0 {
			ps.MeanRT = sim.Duration(pair.Mean())
			ps.P50 = sim.Duration(pair.Quantile(50))
		}
		if weight > 0 {
			ps.UtilLUT = utilLUT / weight
			ps.UtilFF = utilFF / weight
		}
		s.PairStats = append(s.PairStats, ps)
		s.Switches += len(p.Migrations)
		for _, m := range p.Migrations {
			s.MigratedApps += m.Apps
			s.MeanSwitchTime += m.Duration
		}
		s.Trace = append(s.Trace, p.Trace...)
	}
	s.Apps = int(fleet.Count())
	if fleet.Count() > 0 {
		s.MeanRT = sim.Duration(fleet.Mean())
		s.P50 = sim.Duration(fleet.Quantile(50))
		s.P95 = sim.Duration(fleet.Quantile(95))
		s.P99 = sim.Duration(fleet.Quantile(99))
	}
	if s.Switches > 0 {
		s.MeanSwitchTime /= sim.Duration(s.Switches)
	}
	s.CrossSwitches = len(f.CrossMigrations)
	for _, m := range f.CrossMigrations {
		s.CrossMigratedApps += m.Apps
		s.MeanCrossTime += m.Duration
	}
	if s.CrossSwitches > 0 {
		s.MeanCrossTime /= sim.Duration(s.CrossSwitches)
	}
	return s
}

// Quiescent reports whether every injected application has finished
// (fault-injector chains gate on it; see Cluster.Quiescent).
func (f *Farm) Quiescent() bool { return f.finishedCount() >= f.totalApps }

// UnfinishedCount sums unfinished apps across the farm (diagnostics).
func (f *Farm) UnfinishedCount() int {
	n := 0
	for _, p := range f.Pairs {
		for _, mode := range pairModes {
			n += p.Engine(mode).UnfinishedCount()
		}
	}
	return n
}
