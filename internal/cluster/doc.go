// Package cluster orchestrates multiple FPGA boards at two scales.
//
// A Cluster is the paper's switching pair (Section III-D, Figs. 4 and
// 8): it routes arriving applications to the active board, evaluates
// D_switch on the paper's cadence, drives the Schmitt-trigger
// switching loop, pre-warms the spare board inside the buffer zone,
// and performs live migration over the Aurora interlink.
//
// A Farm is K switching pairs behind a pluggable arrival dispatcher
// (least-loaded, round-robin, power-of-two, bitstream-affinity, or a
// third-party RegisterDispatcher registration). Pairs take per-pair
// platform assignments (FarmConfig.PairPlatforms), so a farm can mix
// board types — ZCU216 Big.Little pairs next to U250 quads and
// PYNQ-class edge boards. Dispatchers are capacity-aware: an
// application routes only to pairs whose slot classes can hold it,
// and cross-pair rebalancing validates destination compatibility the
// same way. Per-pair load is maintained incrementally from engine
// lifecycle hooks, so dispatch is O(pairs) per arrival; an optional
// rebalancer generalizes the pair-internal live migration to
// pair-to-pair transfers over a rack-level link.
//
// All boards of a farm run in one simulation kernel, so farm runs
// keep the kernel's determinism guarantee: same configuration and
// seed, byte-identical results.
package cluster
