package cluster

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// heteroPlatforms cycles ZCU216 (default) / U250 quad / PYNQ dual over
// the farm's pairs, matching the mixed-platform benchmark.
func heteroPlatforms(pairs int) []PairPlatforms {
	platforms := make([]PairPlatforms, pairs)
	for i := range platforms {
		switch i % 3 {
		case 1:
			platforms[i] = PairPlatforms{Base: fabric.U250Quad, Boost: fabric.U250Quad}
		case 2:
			platforms[i] = PairPlatforms{Base: fabric.PYNQDual, Boost: fabric.PYNQDual}
		}
	}
	return platforms
}

func runShardFarm(t *testing.T, cfg FarmConfig, apps int, seed uint64) Summary {
	t.Helper()
	f := MustNewFarm(cfg)
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = apps
	if err := f.Inject(workload.Generate(p, seed)); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if f.UnfinishedCount() != 0 {
		t.Fatal("unfinished apps remain")
	}
	return sum
}

// TestShardedMatchesSequential is the sharded executor's acceptance
// bar: for every dispatcher, on uniform and heterogeneous farms, at
// 4 and 8 shards, a sharded run must produce a Summary deeply equal to
// the sequential run — same response samples, same rebalancer
// migrations, same D_switch traces. Run under -race this also
// exercises the lookahead coordinator's happens-before edges.
func TestShardedMatchesSequential(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		for _, name := range []string{DispatchLeastLoaded, DispatchRoundRobin, DispatchPowerOfTwo, DispatchAffinity} {
			label := name
			if hetero {
				label += "/hetero"
			}
			t.Run(label, func(t *testing.T) {
				cfg := DefaultFarmConfig(6)
				cfg.Dispatcher = name
				cfg.RebalanceEvery = 2 * sim.Second
				if hetero {
					cfg.PairPlatforms = heteroPlatforms(cfg.Pairs)
				}
				seqSum := runShardFarm(t, cfg, 48, 4242)
				for _, shards := range []int{4, 8} {
					cfg.Shards = shards
					shSum := runShardFarm(t, cfg, 48, 4242)
					if !reflect.DeepEqual(seqSum, shSum) {
						t.Errorf("%d-shard summary diverged from sequential:\nsequential: apps=%d meanRT=%v p99=%v cross=%d switches=%d\nsharded:    apps=%d meanRT=%v p99=%v cross=%d switches=%d",
							shards,
							seqSum.Apps, seqSum.MeanRT, seqSum.P99, seqSum.CrossSwitches, seqSum.Switches,
							shSum.Apps, shSum.MeanRT, shSum.P99, shSum.CrossSwitches, shSum.Switches)
					}
				}
			})
		}
	}
}

// TestShardedShardCounts sweeps shard counts (including clamping past
// the pair count): every width must reproduce the sequential result.
func TestShardedShardCounts(t *testing.T) {
	cfg := DefaultFarmConfig(5)
	cfg.RebalanceEvery = 2 * sim.Second
	want := runShardFarm(t, cfg, 30, 99)
	for _, shards := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := cfg
			c.Shards = shards
			if got := runShardFarm(t, c, 30, 99); !reflect.DeepEqual(want, got) {
				t.Errorf("shards=%d diverged from sequential (apps %d vs %d, meanRT %v vs %v)",
					shards, got.Apps, want.Apps, got.MeanRT, want.MeanRT)
			}
		})
	}
}

// TestShardEpochZeroAlloc pins the lookahead coordinator's steady
// state: with the workers parked and no pair holding events before the
// next control instant, executing a coordinator instant allocates
// nothing — the need/inline/touched scratch is preallocated and idle
// shards cost a single horizon-array read each.
func TestShardEpochZeroAlloc(t *testing.T) {
	cfg := DefaultFarmConfig(8)
	cfg.Shards = 4
	f := MustNewFarm(cfg)
	const instants = 400
	for i := 1; i <= instants; i++ {
		f.K.AtP(sim.Time(i)*sim.Time(sim.Millisecond), sim.PriFarmControl, func() {})
	}
	c := f.newShardCoord()
	// Warm: let the workers burn their spin budgets and park, and the
	// kernel freelist reach steady state.
	for i := 0; i < 100; i++ {
		if !c.step() {
			t.Fatal("control queue drained during warmup")
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !c.step() {
			t.Fatal("control queue drained mid-measurement")
		}
	})
	for c.step() {
	}
	c.finish()
	if allocs != 0 {
		t.Errorf("warm lookahead epoch allocates %.1f objects, want 0", allocs)
	}
}

// TestAutoShards pins the shard auto-selection table, including the
// clamp that keeps the measured pairs=128/shards=8 regression out of
// auto mode and the sequential fallback for small farms and single-CPU
// hosts.
func TestAutoShards(t *testing.T) {
	cases := []struct {
		pairs, procs, want int
	}{
		{1024, 8, 8},  // big farm, enough CPUs: full width
		{1024, 16, 8}, // width capped at autoShardMax
		{128, 8, 4},   // 128/8 = 16 pairs per shard is too thin: back off
		{128, 4, 4},   // 128/4 = 32 pairs per shard is exactly enough
		{64, 8, 2},    // backs off until pairs/shards >= 32
		{63, 8, 1},    // below the minimum farm size: sequential
		{1024, 1, 1},  // single CPU: sequential
		{0, 8, 1},     // degenerate
	}
	for _, tc := range cases {
		if got := autoShards(tc.pairs, tc.procs); got != tc.want {
			t.Errorf("autoShards(%d pairs, %d procs) = %d, want %d", tc.pairs, tc.procs, got, tc.want)
		}
	}
}

// TestAutoShardResolution covers Shards == 0 end to end: small farms
// resolve to the sequential executor, large farms to the same width
// the selection table picks for this host, and a PR failure rate
// quietly forces sequential instead of erroring (only an explicit
// shard request conflicts with the shared-RNG re-stream path).
func TestAutoShardResolution(t *testing.T) {
	small := MustNewFarm(DefaultFarmConfig(4))
	if got := small.ShardCount(); got != 1 {
		t.Errorf("4-pair auto farm resolved to %d shards, want 1", got)
	}

	big := MustNewFarm(DefaultFarmConfig(128))
	if want := autoShards(128, runtime.GOMAXPROCS(0)); big.ShardCount() != want {
		t.Errorf("128-pair auto farm resolved to %d shards, want %d", big.ShardCount(), want)
	}

	flaky := DefaultFarmConfig(128)
	flaky.Pair.Params.PRFailureRate = 0.01
	f, err := NewFarm(flaky)
	if err != nil {
		t.Fatalf("auto shards with PRFailureRate should fall back to sequential, got error: %v", err)
	}
	if got := f.ShardCount(); got != 1 {
		t.Errorf("auto farm with PRFailureRate resolved to %d shards, want 1", got)
	}
}

// TestShardedRejectsPRFailureRate pins the documented incompatibility:
// the CRC re-stream path draws from the shared kernel RNG, which
// per-pair kernels cannot reproduce.
func TestShardedRejectsPRFailureRate(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.Shards = 2
	cfg.Pair.Params.PRFailureRate = 0.01
	if _, err := NewFarm(cfg); err == nil {
		t.Error("NewFarm accepted shards > 1 with a non-zero PRFailureRate")
	}
}

// TestDispatchSteadyStateZeroAlloc pins the tentpole: once eligibility
// and affinity caches are warm, routing an arrival allocates nothing —
// on uniform and heterogeneous farms, for every registered dispatcher.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 8
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, hetero := range []bool{false, true} {
		for _, name := range DispatcherNames() {
			label := name
			if hetero {
				label += "/hetero"
			}
			t.Run(label, func(t *testing.T) {
				cfg := DefaultFarmConfig(6)
				cfg.Dispatcher = name
				if hetero {
					cfg.PairPlatforms = heteroPlatforms(cfg.Pairs)
				}
				f := MustNewFarm(cfg)
				for _, a := range apps { // warm per-spec caches
					f.dispatcher.Pick(a)
				}
				i := 0
				allocs := testing.AllocsPerRun(200, func() {
					f.dispatcher.Pick(apps[i%len(apps)])
					i++
				})
				if allocs != 0 {
					t.Errorf("steady-state Pick allocates %.1f objects per arrival, want 0", allocs)
				}
			})
		}
	}
}

// TestDispatchEligibleOutageZeroAlloc covers the degraded path: with an
// open outage the availability filter runs per arrival, and its pool
// must come from the farm's scratch buffer, not a fresh slice.
func TestDispatchEligibleOutageZeroAlloc(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 4
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNewFarm(DefaultFarmConfig(4))
	f.PairOutage(2)
	for _, a := range apps {
		f.DispatchEligible(a)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		f.DispatchEligible(apps[i%len(apps)])
		i++
	})
	if allocs != 0 {
		t.Errorf("DispatchEligible allocates %.1f objects per arrival under an outage, want 0", allocs)
	}
}
