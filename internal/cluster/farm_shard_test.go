package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// heteroPlatforms cycles ZCU216 (default) / U250 quad / PYNQ dual over
// the farm's pairs, matching the mixed-platform benchmark.
func heteroPlatforms(pairs int) []PairPlatforms {
	platforms := make([]PairPlatforms, pairs)
	for i := range platforms {
		switch i % 3 {
		case 1:
			platforms[i] = PairPlatforms{Base: fabric.U250Quad, Boost: fabric.U250Quad}
		case 2:
			platforms[i] = PairPlatforms{Base: fabric.PYNQDual, Boost: fabric.PYNQDual}
		}
	}
	return platforms
}

func runShardFarm(t *testing.T, cfg FarmConfig, apps int, seed uint64) Summary {
	t.Helper()
	f := MustNewFarm(cfg)
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = apps
	if err := f.Inject(workload.Generate(p, seed)); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if f.UnfinishedCount() != 0 {
		t.Fatal("unfinished apps remain")
	}
	return sum
}

// TestShardedMatchesSequential is the sharded executor's acceptance
// bar: for every dispatcher, on uniform and heterogeneous farms, a
// 4-shard run must produce a Summary deeply equal to the sequential
// run — same response samples, same rebalancer migrations, same
// D_switch traces. Run under -race this also exercises the epoch
// barrier's happens-before edges.
func TestShardedMatchesSequential(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		for _, name := range []string{DispatchLeastLoaded, DispatchRoundRobin, DispatchPowerOfTwo, DispatchAffinity} {
			label := name
			if hetero {
				label += "/hetero"
			}
			t.Run(label, func(t *testing.T) {
				cfg := DefaultFarmConfig(6)
				cfg.Dispatcher = name
				cfg.RebalanceEvery = 2 * sim.Second
				if hetero {
					cfg.PairPlatforms = heteroPlatforms(cfg.Pairs)
				}
				seqSum := runShardFarm(t, cfg, 48, 4242)
				cfg.Shards = 4
				shSum := runShardFarm(t, cfg, 48, 4242)
				if !reflect.DeepEqual(seqSum, shSum) {
					t.Errorf("sharded summary diverged from sequential:\nsequential: apps=%d meanRT=%v p99=%v cross=%d switches=%d\nsharded:    apps=%d meanRT=%v p99=%v cross=%d switches=%d",
						seqSum.Apps, seqSum.MeanRT, seqSum.P99, seqSum.CrossSwitches, seqSum.Switches,
						shSum.Apps, shSum.MeanRT, shSum.P99, shSum.CrossSwitches, shSum.Switches)
				}
			})
		}
	}
}

// TestShardedShardCounts sweeps shard counts (including clamping past
// the pair count): every width must reproduce the sequential result.
func TestShardedShardCounts(t *testing.T) {
	cfg := DefaultFarmConfig(5)
	cfg.RebalanceEvery = 2 * sim.Second
	want := runShardFarm(t, cfg, 30, 99)
	for _, shards := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := cfg
			c.Shards = shards
			if got := runShardFarm(t, c, 30, 99); !reflect.DeepEqual(want, got) {
				t.Errorf("shards=%d diverged from sequential (apps %d vs %d, meanRT %v vs %v)",
					shards, got.Apps, want.Apps, got.MeanRT, want.MeanRT)
			}
		})
	}
}

// TestShardedRejectsPRFailureRate pins the documented incompatibility:
// the CRC re-stream path draws from the shared kernel RNG, which
// per-pair kernels cannot reproduce.
func TestShardedRejectsPRFailureRate(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.Shards = 2
	cfg.Pair.Params.PRFailureRate = 0.01
	if _, err := NewFarm(cfg); err == nil {
		t.Error("NewFarm accepted shards > 1 with a non-zero PRFailureRate")
	}
}

// TestDispatchSteadyStateZeroAlloc pins the tentpole: once eligibility
// and affinity caches are warm, routing an arrival allocates nothing —
// on uniform and heterogeneous farms, for every registered dispatcher.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 8
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, hetero := range []bool{false, true} {
		for _, name := range DispatcherNames() {
			label := name
			if hetero {
				label += "/hetero"
			}
			t.Run(label, func(t *testing.T) {
				cfg := DefaultFarmConfig(6)
				cfg.Dispatcher = name
				if hetero {
					cfg.PairPlatforms = heteroPlatforms(cfg.Pairs)
				}
				f := MustNewFarm(cfg)
				for _, a := range apps { // warm per-spec caches
					f.dispatcher.Pick(a)
				}
				i := 0
				allocs := testing.AllocsPerRun(200, func() {
					f.dispatcher.Pick(apps[i%len(apps)])
					i++
				})
				if allocs != 0 {
					t.Errorf("steady-state Pick allocates %.1f objects per arrival, want 0", allocs)
				}
			})
		}
	}
}

// TestDispatchEligibleOutageZeroAlloc covers the degraded path: with an
// open outage the availability filter runs per arrival, and its pool
// must come from the farm's scratch buffer, not a fresh slice.
func TestDispatchEligibleOutageZeroAlloc(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 4
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNewFarm(DefaultFarmConfig(4))
	f.PairOutage(2)
	for _, a := range apps {
		f.DispatchEligible(a)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		f.DispatchEligible(apps[i%len(apps)])
		i++
	})
	if allocs != 0 {
		t.Errorf("DispatchEligible allocates %.1f objects per arrival under an outage, want 0", allocs)
	}
}
