package cluster

import (
	"strings"
	"testing"

	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func TestDispatcherRegistryBuiltins(t *testing.T) {
	names := DispatcherNames()
	want := []string{DispatchLeastLoaded, DispatchRoundRobin, DispatchPowerOfTwo, DispatchAffinity}
	if len(names) < len(want) {
		t.Fatalf("DispatcherNames() = %v, want at least %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Errorf("DispatcherNames()[%d] = %q, want %q", i, names[i], name)
		}
	}
	for _, name := range want {
		r, ok := LookupDispatcher(name)
		if !ok {
			t.Fatalf("LookupDispatcher(%q) failed", name)
		}
		d := r.Factory()
		if d == nil || d.Name() != name {
			t.Errorf("factory for %q built %v", name, d)
		}
	}
	// Aliases resolve to the same registration.
	if r, ok := LookupDispatcher("p2c"); !ok || r.Name != DispatchPowerOfTwo {
		t.Error("alias p2c did not resolve to power-of-two")
	}
}

func TestDispatcherRegisterValidation(t *testing.T) {
	if err := RegisterDispatcher(DispatcherReg{Name: "", Factory: func() Dispatcher { return &roundRobinDispatch{} }}); err == nil {
		t.Error("RegisterDispatcher with empty name succeeded")
	}
	if err := RegisterDispatcher(DispatcherReg{Name: "nil-factory"}); err == nil {
		t.Error("RegisterDispatcher with nil factory succeeded")
	}
	// Duplicate canonical name.
	err := RegisterDispatcher(DispatcherReg{Name: DispatchRoundRobin,
		Factory: func() Dispatcher { return &roundRobinDispatch{} }})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate RegisterDispatcher error = %v, want 'already registered'", err)
	}
	// Duplicate via alias.
	err = RegisterDispatcher(DispatcherReg{Name: "fresh-dispatch", Aliases: []string{"p2c"},
		Factory: func() Dispatcher { return &roundRobinDispatch{} }})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("alias-duplicate error = %v, want 'already registered'", err)
	}
	if _, ok := LookupDispatcher("fresh-dispatch"); ok {
		t.Error("failed registration leaked its canonical name into the registry")
	}
}

func TestNewFarmUnknownDispatcher(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.Dispatcher = "no-such-dispatcher"
	if _, err := NewFarm(cfg); err == nil {
		t.Error("NewFarm with unknown dispatcher succeeded")
	}
}

// TestDispatchersComplete runs every registered dispatcher over the
// same workload: all apps must finish and the incremental load
// counters must drain to zero.
func TestDispatchersComplete(t *testing.T) {
	for _, name := range DispatcherNames() {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultFarmConfig(3)
			cfg.Dispatcher = name
			f := MustNewFarm(cfg)
			p := workload.DefaultGenParams(workload.Stress)
			p.Apps = 30
			seq := workload.Generate(p, 9000)
			if err := f.Inject(seq); err != nil {
				t.Fatal(err)
			}
			sum := f.Run()
			if sum.Apps != 30 {
				t.Fatalf("finished %d of 30", sum.Apps)
			}
			if f.UnfinishedCount() != 0 {
				t.Fatal("unfinished apps remain")
			}
			for i, l := range f.Load() {
				t.Logf("pair %d routed %d", i, f.routed[i])
				if l != 0 {
					t.Errorf("pair %d load counter ended at %d, want 0", i, l)
				}
			}
			routed := 0
			for _, n := range f.Routed() {
				routed += n
			}
			if routed != 30 {
				t.Fatalf("routed %d arrivals, want 30", routed)
			}
		})
	}
}

// TestAffinityPrefersWarmPair pins the affinity scoring: with pair 1's
// active board pre-warmed for an app's bitstreams and loads equal, the
// dispatcher must pick pair 1.
func TestAffinityPrefersWarmPair(t *testing.T) {
	f := MustNewFarm(FarmConfig{Pair: DefaultConfig(), Pairs: 3, Dispatcher: DispatchAffinity})
	p := workload.DefaultGenParams(workload.Standard)
	p.Apps = 1
	apps, err := workload.Generate(p, 7).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	a := apps[0]
	warm := f.Pairs[1].activeEngine()
	warmNamesFor(warm, warm.Board.Platform, a)
	if idx := f.dispatcher.Pick(a); idx != 1 {
		t.Errorf("affinity picked pair %d, want the pre-warmed pair 1", idx)
	}
}

// TestRebalancerMigratesAcrossPairs drives a skewed farm: round-robin
// dispatch ignores load, so pair queues diverge as service times do,
// and the rebalancer must repair the imbalance with at least one
// cross-pair live migration — the acceptance bar for the farm being a
// real rack-scale orchestrator rather than K isolated pairs.
func TestRebalancerMigratesAcrossPairs(t *testing.T) {
	cfg := DefaultFarmConfig(3)
	cfg.Dispatcher = DispatchRoundRobin
	cfg.RebalanceEvery = 2 * sim.Second
	f := MustNewFarm(cfg)
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 60
	seq := workload.Generate(p, 23)
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if sum.Apps != 60 {
		t.Fatalf("finished %d of 60", sum.Apps)
	}
	if sum.CrossSwitches < 1 {
		t.Fatalf("rebalancer performed %d cross-pair migrations, want >= 1", sum.CrossSwitches)
	}
	if sum.CrossMigratedApps < sum.CrossSwitches {
		t.Errorf("cross-pair migrations %d moved only %d apps", sum.CrossSwitches, sum.CrossMigratedApps)
	}
	if sum.MeanCrossTime <= 0 || sum.MeanCrossTime > 100*sim.Millisecond {
		t.Errorf("mean cross-pair overhead %v outside the ms scale", sum.MeanCrossTime)
	}
	var in, out int
	for _, ps := range sum.PairStats {
		in += ps.MigratedIn
		out += ps.MigratedOut
	}
	if in != out || in != sum.CrossMigratedApps {
		t.Errorf("pair migration ledger in=%d out=%d, want both = %d", in, out, sum.CrossMigratedApps)
	}
	if f.UnfinishedCount() != 0 {
		t.Fatal("unfinished apps remain after rebalancing")
	}
}

// TestFarmPairStats checks the per-pair breakdown: counts reconcile
// with the merged summary and utilizations are sane.
func TestFarmPairStats(t *testing.T) {
	f := MustNewFarm(DefaultFarmConfig(3))
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 30
	seq := workload.Generate(p, 9000)
	if err := f.Inject(seq); err != nil {
		t.Fatal(err)
	}
	sum := f.Run()
	if len(sum.PairStats) != 3 {
		t.Fatalf("got %d pair stats, want 3", len(sum.PairStats))
	}
	if sum.P50 <= 0 || sum.P50 > sum.P95 || sum.P95 > sum.P99 {
		t.Errorf("percentile ordering violated: P50=%v P95=%v P99=%v", sum.P50, sum.P95, sum.P99)
	}
	apps, routed, switches := 0, 0, 0
	for _, ps := range sum.PairStats {
		apps += ps.Apps
		routed += ps.Routed
		switches += ps.Switches
		if ps.Apps > 0 && ps.MeanRT <= 0 {
			t.Errorf("pair %d finished %d apps with mean RT %v", ps.Pair, ps.Apps, ps.MeanRT)
		}
		if ps.UtilLUT < 0 || ps.UtilLUT > 1 || ps.UtilFF < 0 || ps.UtilFF > 1 {
			t.Errorf("pair %d utilization out of range: LUT=%v FF=%v", ps.Pair, ps.UtilLUT, ps.UtilFF)
		}
	}
	if apps != sum.Apps {
		t.Errorf("pair apps sum to %d, summary has %d", apps, sum.Apps)
	}
	if routed != 30 {
		t.Errorf("pair routed sum to %d, want 30", routed)
	}
	if switches != sum.Switches {
		t.Errorf("pair switches sum to %d, summary has %d", switches, sum.Switches)
	}
}
