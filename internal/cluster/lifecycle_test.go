package cluster

import (
	"testing"

	"versaslot/internal/fabric"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// heteroLifecycleFarm builds the lifecycle test fixture: a PYNQ pair
// (hosts nothing big), an online ZCU216 pair, and a standby ZCU216
// pair.
func heteroLifecycleFarm(t *testing.T, dispatcher string) *Farm {
	t.Helper()
	cfg := DefaultFarmConfig(3)
	cfg.Standby = 1
	cfg.PairPlatforms = []PairPlatforms{
		{Base: fabric.PYNQDual, Boost: fabric.PYNQDual},
		{}, // paper default ZCU216 pair
		{}, // paper default ZCU216 pair, starts standby
	}
	if dispatcher != "" {
		cfg.Dispatcher = dispatcher
	}
	return MustNewFarm(cfg)
}

// TestEligibleTracksPairLifecycle is the regression test for the
// per-spec eligibility cache surviving a pool change: the cached pair
// set must be invalidated on every activate/drain transition, or a
// newly commissioned pair stays invisible to dispatch (and a drained
// pair keeps receiving arrivals) for the rest of the run.
func TestEligibleTracksPairLifecycle(t *testing.T) {
	f := heteroLifecycleFarm(t, "")
	app, err := bigOnlySequence(1).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	a := app[0]

	want := func(label string, want ...int) {
		t.Helper()
		got := f.Eligible(a)
		if len(got) != len(want) {
			t.Fatalf("%s: eligible = %v, want %v", label, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: eligible = %v, want %v", label, got, want)
			}
		}
	}

	// Prime the cache, then transition the pool under it.
	want("initial (pair 2 standby)", 1)
	want("cached", 1)

	if err := f.ActivatePair(2); err != nil {
		t.Fatal(err)
	}
	want("after activate", 1, 2)

	if _, err := f.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	// A draining pair stays commissioned (its queue is mid-migration)
	// but stops taking new arrivals.
	want("during drain", 1, 2)
	if got := f.DispatchEligible(a); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dispatch pool during drain = %v, want [2]", got)
	}

	if err := f.FinishDrain(1); err != nil {
		t.Fatal(err)
	}
	want("after drain", 2)

	if f.OnlineCount() != 2 || f.DrainingCount() != 0 {
		t.Fatalf("online %d draining %d, want 2/0", f.OnlineCount(), f.DrainingCount())
	}
}

// TestUniformFarmStandbyEligibility: the homogeneous nil fast path
// ("every pair qualifies") must switch off while any pair is outside
// the online pool, and back on once the fleet is fully online.
func TestUniformFarmStandbyEligibility(t *testing.T) {
	cfg := DefaultFarmConfig(3)
	cfg.Standby = 1
	f := MustNewFarm(cfg)
	apps, err := denseSequence(1, 5).Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	a := apps[0]
	if got := f.Eligible(a); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("eligible with standby pair = %v, want [0 1]", got)
	}
	if err := f.ActivatePair(2); err != nil {
		t.Fatal(err)
	}
	if got := f.Eligible(a); got != nil {
		t.Fatalf("fully-online uniform farm must take the nil fast path, got %v", got)
	}
}

// TestPairLifecycleErrors: transitions reject out-of-range indices and
// invalid state changes.
func TestPairLifecycleErrors(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.Standby = 1
	f := MustNewFarm(cfg)
	if err := f.ActivatePair(0); err == nil {
		t.Error("activated an already-online pair")
	}
	if err := f.ActivatePair(9); err == nil {
		t.Error("activated an out-of-range pair")
	}
	if _, err := f.StartDrain(1); err == nil {
		t.Error("drained a standby pair")
	}
	if _, err := f.StartDrain(0); err == nil {
		t.Error("drained the last online pair")
	}
	if err := f.FinishDrain(0); err == nil {
		t.Error("finish-drained a pair that was not draining")
	}
	cfg = DefaultFarmConfig(2)
	cfg.Standby = 2
	if _, err := NewFarm(cfg); err == nil {
		t.Error("built a farm with every pair standby")
	}
}

// TestMidRunActivationRoutesToNewPair drives the cache-invalidation
// regression end to end for both a plain and a memoizing (affinity)
// dispatcher: a standby ZCU216 pair activates mid-run, and later
// arrivals — hostable only on ZCU216-class pairs — must start routing
// to it. With a stale eligibility cache (or a stale affinity memo) the
// new pair finishes the run with zero routed arrivals.
func TestMidRunActivationRoutesToNewPair(t *testing.T) {
	f := heteroLifecycleFarm(t, DispatchLeastLoaded)
	if err := f.Inject(bigOnlySequence(16)); err != nil {
		t.Fatal(err)
	}
	f.K.AtP(sim.Time(400*sim.Millisecond), sim.PriFarmControl, func() {
		if err := f.ActivatePair(2); err != nil {
			t.Error(err)
		}
	})
	sum := f.Run()
	if sum.Apps != 16 {
		t.Fatalf("finished %d of 16", sum.Apps)
	}
	routed := f.Routed()
	if routed[0] != 0 {
		t.Fatalf("%d unhostable apps routed to the PYNQ pair", routed[0])
	}
	if routed[2] == 0 {
		t.Fatal("no arrivals routed to the pair activated mid-run (stale eligibility pool)")
	}
}

// TestAffinityMemoSurvivesActivation is the memoizing-dispatcher half
// of the regression: the affinity dispatcher's pool-derived state must
// be dropped when a standby pair activates. A LeNet wave warms and
// loads pair 0 while pair 1 sleeps; pair 1 activates; a second wave of
// a different spec (cold on both pairs, so cache score ties and load
// breaks the tie) must route to the idle new pair.
func TestAffinityMemoSurvivesActivation(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	cfg.Standby = 1
	cfg.Dispatcher = DispatchAffinity
	f := MustNewFarm(cfg)
	if err := f.Inject(bigOnlySequence(12)); err != nil {
		t.Fatal(err)
	}
	second := &workload.Sequence{Name: "cold-spec", Condition: "Stress", Seed: 1}
	at := 600 * sim.Millisecond
	for i := 0; i < 6; i++ {
		second.Arrivals = append(second.Arrivals, workload.Arrival{Spec: "3DR", Batch: 5, At: at})
		at += 100 * sim.Millisecond
	}
	if err := f.Inject(second); err != nil {
		t.Fatal(err)
	}
	f.K.AtP(sim.Time(400*sim.Millisecond), sim.PriFarmControl, func() {
		if err := f.ActivatePair(1); err != nil {
			t.Error(err)
		}
	})
	sum := f.Run()
	if sum.Apps != 18 {
		t.Fatalf("finished %d of 18", sum.Apps)
	}
	if routed := f.Routed(); routed[1] == 0 {
		t.Fatal("affinity dispatcher never routed to the pair activated mid-run (stale pool memo)")
	}
}

// TestDrainMigratesQueuedApps: draining a loaded pair moves its ready
// queue to the remaining online pair over the rack link; every app
// still finishes, and the farm counts the transfers.
func TestDrainMigratesQueuedApps(t *testing.T) {
	cfg := DefaultFarmConfig(2)
	f := MustNewFarm(cfg)
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 24
	if err := f.Inject(workload.Generate(p, 41)); err != nil {
		t.Fatal(err)
	}
	drained := -1
	f.K.AtP(sim.Time(1*sim.Second), sim.PriFarmControl, func() {
		moved, err := f.StartDrain(1)
		if err != nil {
			t.Error(err)
			return
		}
		drained = moved
	})
	sum := f.Run()
	if sum.Apps != 24 {
		t.Fatalf("finished %d of 24 after drain", sum.Apps)
	}
	if drained < 0 {
		t.Fatal("drain never ran")
	}
	if f.PairStateOf(1) != PairDraining {
		t.Fatalf("pair 1 in state %v, want draining (no one called FinishDrain)", f.PairStateOf(1))
	}
	if drained > 0 && sum.CrossMigratedApps == 0 && f.requeued[1] == 0 {
		t.Fatalf("%d apps extracted by the drain but neither migrated nor requeued", drained)
	}
}
