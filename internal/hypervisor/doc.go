// Package hypervisor models the bare-metal control plane running on
// the PS-side ARM cores: the scheduler core, the (optional) PR-server
// core, and the OCM mailbox between them.
//
// The paper's key architectural point lives here: prior systems run
// scheduling, task launching, and partial reconfiguration on ONE
// core, so every PCAP load (which suspends the issuing CPU) blocks
// launches — the "task execution blocking problem". VersaSlot
// dedicates a second core to a PR server and posts asynchronous
// requests through on-chip memory, so the scheduler core never stalls
// on configuration I/O.
package hypervisor
