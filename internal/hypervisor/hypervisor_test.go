package hypervisor

import (
	"testing"

	"versaslot/internal/sim"
)

func TestSingleCoreSharesServer(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCores(k, SingleCore, 0)
	if c.Sched != c.PR {
		t.Fatal("single-core model must run PR on the scheduler core")
	}
}

func TestDualCoreSeparatesServers(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCores(k, DualCore, 0)
	if c.Sched == c.PR {
		t.Fatal("dual-core model must dedicate a PR core")
	}
	if c.Sched.Name() == c.PR.Name() {
		t.Fatal("cores share a name")
	}
}

// TestDualCoreParallelism is the paper's core claim in miniature: on a
// single core a PR load delays a launch; on dual cores they overlap.
func TestDualCoreParallelism(t *testing.T) {
	run := func(model CoreModel) sim.Time {
		k := sim.NewKernel(1)
		c := NewCores(k, model, 0)
		var launchDone sim.Time
		c.PR.SubmitFunc("pr", "pr", 30*sim.Millisecond, nil)
		c.Sched.SubmitFunc("launch", "launch", 1*sim.Millisecond, func() {
			launchDone = k.Now()
		})
		k.Run()
		return launchDone
	}
	single := run(SingleCore)
	dual := run(DualCore)
	if single != sim.Time(31*sim.Millisecond) {
		t.Fatalf("single-core launch at %v, want 31ms (blocked by PR)", single)
	}
	if dual != sim.Time(1*sim.Millisecond) {
		t.Fatalf("dual-core launch at %v, want 1ms (PR on other core)", dual)
	}
}

func TestOCMCounters(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCores(k, DualCore, 3)
	c.PostPRRequest()
	c.PostPRRequest()
	c.PostPRStatus()
	if c.OCM.PRRequests != 2 || c.OCM.PRStatus != 1 {
		t.Fatalf("OCM counters %+v", c.OCM)
	}
}

func TestCoreNames(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCores(k, DualCore, 7)
	if c.Sched.Name() != "board7/core0" {
		t.Fatalf("sched core name %q", c.Sched.Name())
	}
	if c.PR.Name() != "board7/core1" {
		t.Fatalf("PR core name %q", c.PR.Name())
	}
}

func TestCoreModelString(t *testing.T) {
	if SingleCore.String() != "single-core" || DualCore.String() != "dual-core" {
		t.Fatal("CoreModel strings")
	}
}
