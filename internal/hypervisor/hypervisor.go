package hypervisor

import (
	"versaslot/internal/sim"
)

// CoreModel selects the control-plane topology.
type CoreModel int

const (
	// SingleCore runs scheduling, launches and PR on one ARM core
	// (Nimblock/DML-style; the PCAP load blocks everything).
	SingleCore CoreModel = iota
	// DualCore dedicates a second core to the PR server (VersaSlot).
	DualCore
)

func (m CoreModel) String() string {
	if m == DualCore {
		return "dual-core"
	}
	return "single-core"
}

// Cores is the PS control plane of one board.
type Cores struct {
	Model CoreModel
	// Sched executes scheduler passes and batch launches.
	Sched *sim.Server
	// PR executes bitstream loads. In SingleCore mode PR == Sched:
	// loads compete with launches for the same core.
	PR *sim.Server
	// OCM counts mailbox traffic between the two cores (status
	// messages and asynchronous PR requests).
	OCM MailboxStats
}

// MailboxStats counts OCM mailbox messages.
type MailboxStats struct {
	PRRequests uint64 // scheduler -> PR server
	PRStatus   uint64 // PR server -> scheduler
}

// NewCores builds the control plane for a board.
func NewCores(k *sim.Kernel, model CoreModel, boardID int) *Cores {
	c := &Cores{Model: model}
	c.Sched = sim.NewServer(k, coreName(boardID, 0))
	if model == DualCore {
		c.PR = sim.NewServer(k, coreName(boardID, 1))
	} else {
		c.PR = c.Sched
	}
	return c
}

func coreName(board, core int) string {
	return "board" + itoa(board) + "/core" + itoa(core)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// PostPRRequest accounts an async scheduler->PR-server message.
func (c *Cores) PostPRRequest() { c.OCM.PRRequests++ }

// PostPRStatus accounts a PR-server->scheduler completion message.
func (c *Cores) PostPRStatus() { c.OCM.PRStatus++ }
