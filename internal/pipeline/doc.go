// Package pipeline computes execution-plan quality for task
// pipelines: the makespan of a k-stage pipeline executed on s slots
// with slot reuse, and the ILP-equivalent optimal slot count O_Ai the
// paper's allocation algorithm consumes (derived "through integer
// linear programming as in [14], [15]").
//
// Slot counts are tiny (<= 8), so instead of an ILP solver we
// evaluate the exact makespan for every candidate count and minimize
// the resource-time product s*makespan(s) — the standard efficiency
// objective those papers encode. The resulting counts are "usually
// lower than the task count", matching the paper's observation.
package pipeline
