package pipeline

import (
	"versaslot/internal/sim"
)

// Plan describes a pipeline to evaluate: per-stage item times plus the
// per-stage reconfiguration cost paid when a slot (re)loads a stage.
type Plan struct {
	// StageTimes is the steady-state per-item time of each stage.
	StageTimes []sim.Duration
	// FirstItemExtra is the additional latency of each stage's first
	// item (parallel 3-in-1 bundles pay their internal fill here).
	FirstItemExtra []sim.Duration
	// Batch is the number of items flowing through the pipeline.
	Batch int
	// LoadTime is the PR cost to place one stage into a slot.
	LoadTime sim.Duration
}

// Eval amortizes Makespan's scratch buffers across calls: the slot
// allocators probe every candidate count for every arriving application,
// so per-call buffer allocation dominated their cost. The zero value is
// ready to use; an Eval is not safe for concurrent use.
type Eval struct {
	prev, cur, slotFree []sim.Duration
}

func (ev *Eval) buffers(batch, slots int) (prev, cur, slotFree []sim.Duration) {
	if cap(ev.prev) < batch {
		ev.prev = make([]sim.Duration, batch)
		ev.cur = make([]sim.Duration, batch)
	}
	if cap(ev.slotFree) < slots {
		ev.slotFree = make([]sim.Duration, slots)
	}
	prev, cur, slotFree = ev.prev[:batch], ev.cur[:batch], ev.slotFree[:slots]
	for i := range prev {
		prev[i], cur[i] = 0, 0
	}
	for i := range slotFree {
		slotFree[i] = 0
	}
	return prev, cur, slotFree
}

// Makespan returns the end-to-end time to push Batch items through the
// pipeline using exactly slots slots, under the greedy reuse policy the
// schedulers implement: stage i initially occupies slot i%slots; a slot
// reloads the next unassigned stage as soon as its current stage
// completes the batch. Item b of stage i starts when (a) the stage is
// loaded, (b) item b-1 of stage i finished (one item in flight per
// slot), and (c) item b of stage i-1 finished.
//
// The returned value excludes PCAP queueing and CPU scheduling costs —
// it is the contention-free lower bound the allocator optimizes.
func (p Plan) Makespan(slots int) sim.Duration {
	var ev Eval
	return p.MakespanIn(&ev, slots)
}

// MakespanIn is Makespan drawing its scratch from ev.
func (p Plan) MakespanIn(ev *Eval, slots int) sim.Duration {
	k := len(p.StageTimes)
	if k == 0 || p.Batch <= 0 {
		return 0
	}
	if slots <= 0 {
		panic("pipeline: non-positive slot count")
	}
	if slots > k {
		slots = k
	}
	// finish[i] tracks the completion time of stage i's latest item;
	// slotFree[j] the time slot j finished its previous stage's batch.
	prev, cur, slotFree := ev.buffers(p.Batch, slots)
	for i := 0; i < k; i++ {
		j := i % slots
		loaded := slotFree[j] + p.LoadTime
		var last sim.Duration
		for b := 0; b < p.Batch; b++ {
			start := loaded
			if b > 0 && last > start {
				start = last
			}
			if i > 0 && prev[b] > start {
				start = prev[b]
			}
			t := p.StageTimes[i]
			if b == 0 && i < len(p.FirstItemExtra) {
				t += p.FirstItemExtra[i]
			}
			last = start + t
			cur[b] = last
		}
		slotFree[j] = last
		prev, cur = cur, prev
	}
	var max sim.Duration
	for b := 0; b < p.Batch; b++ {
		if prev[b] > max {
			max = prev[b]
		}
	}
	return max
}

// kneeTolerance defines "efficient": the optimal count is the smallest
// one whose makespan is within this factor of the best achievable.
// Adding slots past the knee buys almost nothing (the bottleneck stage
// limits throughput) but starves other applications — which is why the
// ILP of [14], [15] lands below the task count.
const kneeTolerance = 1.15

// OptimalSlots returns the O_Ai of Algorithm 1: the smallest slot count
// in [1, maxSlots] whose makespan is within kneeTolerance of the best
// achievable with maxSlots. Note the naive resource-time product
// s*Makespan(s) is degenerate here — pipeline speedup is never
// superlinear, so that product is always minimized at s=1; the knee
// rule is what captures "the most efficient slot configuration for
// pipeline execution".
func (p Plan) OptimalSlots(maxSlots int) int {
	var ev Eval
	return p.OptimalSlotsIn(&ev, maxSlots)
}

// OptimalSlotsIn is OptimalSlots drawing its scratch from ev.
func (p Plan) OptimalSlotsIn(ev *Eval, maxSlots int) int {
	k := len(p.StageTimes)
	if k == 0 {
		return 0
	}
	if maxSlots > k {
		maxSlots = k
	}
	if maxSlots < 1 {
		maxSlots = 1
	}
	best := p.MakespanIn(ev, maxSlots)
	limit := sim.Duration(float64(best) * kneeTolerance)
	for s := 1; s < maxSlots; s++ {
		if p.MakespanIn(ev, s) <= limit {
			return s
		}
	}
	return maxSlots
}

// MaxUsefulSlots returns the smallest slot count achieving the best
// makespan available within maxSlots — the "maximum needed slots" the
// redistribution step of Algorithm 1 tops applications up to.
func (p Plan) MaxUsefulSlots(maxSlots int) int {
	var ev Eval
	return p.MaxUsefulSlotsIn(&ev, maxSlots)
}

// MaxUsefulSlotsIn is MaxUsefulSlots drawing its scratch from ev.
func (p Plan) MaxUsefulSlotsIn(ev *Eval, maxSlots int) int {
	k := len(p.StageTimes)
	if k == 0 {
		return 0
	}
	if maxSlots > k {
		maxSlots = k
	}
	if maxSlots < 1 {
		maxSlots = 1
	}
	best := maxSlots
	bestSpan := p.MakespanIn(ev, maxSlots)
	for s := maxSlots - 1; s >= 1; s-- {
		if p.MakespanIn(ev, s) <= bestSpan {
			best = s
		}
	}
	return best
}
