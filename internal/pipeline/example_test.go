package pipeline_test

import (
	"fmt"

	"versaslot/internal/pipeline"
	"versaslot/internal/sim"
)

// A bottleneck-dominated pipeline needs far fewer slots than stages:
// the ILP-equivalent optimum finds the knee.
func ExamplePlan_OptimalSlots() {
	plan := pipeline.Plan{
		StageTimes: []sim.Duration{
			100 * sim.Millisecond, // dominant stage
			5 * sim.Millisecond,
			5 * sim.Millisecond,
			5 * sim.Millisecond,
			5 * sim.Millisecond,
			5 * sim.Millisecond,
		},
		Batch:    20,
		LoadTime: 2 * sim.Millisecond,
	}
	fmt.Println("optimal slots:", plan.OptimalSlots(8))
	// Output:
	// optimal slots: 2
}

func ExamplePlan_Makespan() {
	plan := pipeline.Plan{
		StageTimes: []sim.Duration{10 * sim.Millisecond, 10 * sim.Millisecond},
		Batch:      4,
	}
	// Fully parallel two-stage pipeline: (batch + stages - 1) * T.
	fmt.Println(plan.Makespan(2))
	// Output:
	// 50ms
}
