package pipeline

import (
	"testing"
	"testing/quick"

	"versaslot/internal/sim"
)

func ms(v int) sim.Duration { return sim.Duration(v) * sim.Millisecond }

func TestMakespanSingleStage(t *testing.T) {
	p := Plan{StageTimes: []sim.Duration{ms(10)}, Batch: 5, LoadTime: ms(3)}
	// load + 5 items.
	if got := p.Makespan(1); got != ms(53) {
		t.Fatalf("makespan %v, want 53ms", got)
	}
}

func TestMakespanPipelineFormula(t *testing.T) {
	// Uniform two-stage pipeline with enough slots: load + (B+k-1)*T.
	p := Plan{StageTimes: []sim.Duration{ms(10), ms(10)}, Batch: 4, LoadTime: 0}
	if got := p.Makespan(2); got != ms(50) {
		t.Fatalf("makespan %v, want (4+1)*10=50ms", got)
	}
}

func TestMakespanBottleneckDominates(t *testing.T) {
	p := Plan{StageTimes: []sim.Duration{ms(5), ms(20), ms(5)}, Batch: 10, LoadTime: 0}
	got := p.Makespan(3)
	// Bottleneck: first item takes 5+20+5, then 9 more at 20.
	want := ms(30 + 9*20)
	if got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

func TestMakespanSlotReuse(t *testing.T) {
	// Two equal stages on one slot: the slot runs stage 0's whole
	// batch, reloads, then stage 1's batch.
	p := Plan{StageTimes: []sim.Duration{ms(10), ms(10)}, Batch: 3, LoadTime: ms(2)}
	got := p.Makespan(1)
	want := ms(2 + 30 + 2 + 30)
	if got != want {
		t.Fatalf("1-slot makespan %v, want %v", got, want)
	}
}

func TestMakespanFirstItemExtra(t *testing.T) {
	p := Plan{
		StageTimes:     []sim.Duration{ms(10)},
		FirstItemExtra: []sim.Duration{ms(20)},
		Batch:          3,
		LoadTime:       0,
	}
	if got := p.Makespan(1); got != ms(50) {
		t.Fatalf("with fill: %v, want 20+10*3=50ms", got)
	}
}

func TestMakespanEdgeCases(t *testing.T) {
	if (Plan{}).Makespan(1) != 0 {
		t.Fatal("empty plan")
	}
	p := Plan{StageTimes: []sim.Duration{ms(10)}, Batch: 0}
	if p.Makespan(1) != 0 {
		t.Fatal("zero batch")
	}
	// More slots than stages clamps.
	p2 := Plan{StageTimes: []sim.Duration{ms(10)}, Batch: 2}
	if p2.Makespan(5) != p2.Makespan(1) {
		t.Fatal("slot clamp")
	}
}

func TestMakespanPanicsOnZeroSlots(t *testing.T) {
	p := Plan{StageTimes: []sim.Duration{ms(10)}, Batch: 1}
	defer func() {
		if recover() == nil {
			t.Error("zero slots did not panic")
		}
	}()
	p.Makespan(0)
}

// Property: makespan never increases with more slots. Every stage loads
// exactly once regardless of slot count, so extra slots only remove
// wave serialization.
func TestMakespanMonotone(t *testing.T) {
	f := func(raw []uint8, batch uint8, load uint8) bool {
		if len(raw) == 0 || len(raw) > 9 {
			return true
		}
		times := make([]sim.Duration, len(raw))
		for i, v := range raw {
			times[i] = sim.Duration(v%60+1) * sim.Millisecond
		}
		p := Plan{
			StageTimes: times,
			Batch:      int(batch%29) + 1,
			LoadTime:   sim.Duration(load%40) * sim.Millisecond,
		}
		prev := p.Makespan(1)
		for s := 2; s <= len(times); s++ {
			cur := p.Makespan(s)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalSlotsKnee(t *testing.T) {
	// One dominant bottleneck stage plus five cheap ones, batch 20:
	// the cheap stages can time-share a single slot in the bottleneck's
	// shadow, so the knee sits far below the task count — the paper's
	// "usually lower than the task count".
	p := Plan{
		StageTimes: []sim.Duration{ms(100), ms(4), ms(4), ms(4), ms(4), ms(4)},
		Batch:      20,
		LoadTime:   ms(2),
	}
	o := p.OptimalSlots(8)
	if o < 1 || o > 3 {
		t.Fatalf("optimal slots %d, expected the knee in [1,3]", o)
	}
}

func TestOptimalSlotsUniformNeedsAll(t *testing.T) {
	// Uniform stages have no shadow to hide reuse in: any reuse wave
	// appends a serial batch, so the optimum is the full task count.
	p := Plan{
		StageTimes: []sim.Duration{ms(10), ms(10), ms(10), ms(10), ms(10), ms(10)},
		Batch:      20,
		LoadTime:   ms(2),
	}
	if o := p.OptimalSlots(8); o != 6 {
		t.Fatalf("uniform pipeline optimal %d, want 6", o)
	}
}

func TestOptimalSlotsWithinTolerance(t *testing.T) {
	f := func(raw []uint8, batch uint8) bool {
		if len(raw) == 0 || len(raw) > 9 {
			return true
		}
		times := make([]sim.Duration, len(raw))
		for i, v := range raw {
			times[i] = sim.Duration(v%60+1) * sim.Millisecond
		}
		p := Plan{StageTimes: times, Batch: int(batch%29) + 1, LoadTime: ms(4)}
		max := len(times)
		o := p.OptimalSlots(max)
		if o < 1 || o > max {
			return false
		}
		best := p.Makespan(max)
		limit := sim.Duration(float64(best) * kneeTolerance)
		return p.Makespan(o) <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUsefulSlots(t *testing.T) {
	// A pipeline whose bottleneck dominates: beyond a point extra
	// slots do nothing.
	p := Plan{
		StageTimes: []sim.Duration{ms(50), ms(5), ms(5), ms(5)},
		Batch:      30,
		LoadTime:   0,
	}
	mu := p.MaxUsefulSlots(4)
	if got := p.Makespan(mu); got != p.Makespan(4) {
		t.Fatalf("MaxUsefulSlots(%d) does not reach best makespan", mu)
	}
	// Every count below mu must be strictly worse.
	for s := 1; s < mu; s++ {
		if p.Makespan(s) <= p.Makespan(4) {
			t.Fatalf("slot count %d already reaches the best makespan; mu=%d not minimal", s, mu)
		}
	}
}

func TestOptimalLeqMaxUseful(t *testing.T) {
	f := func(raw []uint8, batch uint8) bool {
		if len(raw) == 0 || len(raw) > 9 {
			return true
		}
		times := make([]sim.Duration, len(raw))
		for i, v := range raw {
			times[i] = sim.Duration(v%60+1) * sim.Millisecond
		}
		p := Plan{StageTimes: times, Batch: int(batch%29) + 1, LoadTime: ms(4)}
		return p.OptimalSlots(8) <= p.MaxUsefulSlots(8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStagePlans(t *testing.T) {
	p := Plan{}
	if p.OptimalSlots(4) != 0 || p.MaxUsefulSlots(4) != 0 {
		t.Fatal("empty plan slot counts")
	}
}
