package versaslot_test

import (
	"bytes"
	"sync/atomic"
	"testing"

	"versaslot"
)

func sweepScenarios() []versaslot.Scenario {
	return versaslot.Sweep{
		Base:       versaslot.Scenario{Apps: 8},
		Policies:   []string{"nimblock", "versaslot-bl"},
		Conditions: []string{"loose", "stress"},
		Seeds:      []uint64{1, 2},
	}.Scenarios()
}

func TestSweepScenariosCrossProduct(t *testing.T) {
	scenarios := sweepScenarios()
	if len(scenarios) != 8 {
		t.Fatalf("Sweep expanded to %d scenarios, want 8 (2 seeds x 2 conditions x 2 policies)", len(scenarios))
	}
	seen := make(map[string]bool)
	for _, s := range scenarios {
		if seen[s.Name] {
			t.Errorf("duplicate sweep scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.Apps != 8 {
			t.Errorf("%s: base field Apps not carried through (got %d)", s.Name, s.Apps)
		}
	}
	if !seen["nimblock/loose/seed1"] || !seen["versaslot-bl/stress/seed2"] {
		t.Errorf("missing expected sweep names; got %v", seen)
	}
}

// TestRunManyMatchesSequential: a worker pool must not change results —
// 8 workers and 1 worker produce byte-identical output for the same
// seeds (the acceptance bar for parallel sweep execution).
func TestRunManyMatchesSequential(t *testing.T) {
	scenarios := sweepScenarios()
	parallel, err := versaslot.RunMany(scenarios, 8)
	if err != nil {
		t.Fatalf("parallel RunMany: %v", err)
	}
	sequential, err := versaslot.RunMany(scenarios, 1)
	if err != nil {
		t.Fatalf("sequential RunMany: %v", err)
	}
	if len(parallel) != len(scenarios) || len(sequential) != len(scenarios) {
		t.Fatalf("result counts: parallel=%d sequential=%d want %d",
			len(parallel), len(sequential), len(scenarios))
	}
	for i := range scenarios {
		a, b := resultJSON(t, parallel[i]), resultJSON(t, sequential[i])
		if !bytes.Equal(a, b) {
			t.Errorf("scenario %d (%s): parallel and sequential results differ", i, scenarios[i].Name)
		}
	}
}

// TestRunManyObserverRace exercises the serialized observer under
// concurrent runs; run with -race to verify the synchronization.
func TestRunManyObserverRace(t *testing.T) {
	var events atomic.Int64
	// Guarded by the runner's observer mutex.
	var finishes int
	perScenario := make(map[string]int)
	runner := versaslot.NewRunner(versaslot.WithObserver(func(ev versaslot.Event) {
		events.Add(1)
		if ev.Kind == "finish" {
			finishes++
			perScenario[ev.Scenario]++
		}
	}))
	scenarios := sweepScenarios()
	results, err := runner.RunMany(scenarios, 8)
	if err != nil {
		t.Fatal(err)
	}
	var apps int
	for i, r := range results {
		apps += r.Summary.Apps
		if got := perScenario[scenarios[i].Name]; got != r.Summary.Apps {
			t.Errorf("scenario %q: observer attributed %d finishes, result has %d apps",
				scenarios[i].Name, got, r.Summary.Apps)
		}
	}
	if finishes != apps {
		t.Errorf("observer saw %d finishes, results report %d apps", finishes, apps)
	}
	if events.Load() < int64(2*apps) {
		t.Errorf("observer saw %d events, want at least %d (arrival+finish per app)", events.Load(), 2*apps)
	}
}

func TestRunManyPartialErrors(t *testing.T) {
	scenarios := []versaslot.Scenario{
		{Policy: "fcfs", Condition: "loose", Apps: 4, Seed: 1},
		{Policy: "does-not-exist"},
		{Policy: "rr", Condition: "loose", Apps: 4, Seed: 1},
	}
	results, err := versaslot.RunMany(scenarios, 2)
	if err == nil {
		t.Fatal("RunMany with a bad scenario returned nil error")
	}
	if results[0] == nil || results[2] == nil {
		t.Error("good scenarios did not produce results alongside the failing one")
	}
	if results[1] != nil {
		t.Error("failing scenario produced a result")
	}
}

// TestRunManySharedWorkloadIdentical: the sequence cache must be
// invisible in results — a RunMany over scenarios sharing (condition,
// seed) matches the same scenarios executed one by one through Run
// (which takes the uncached path) byte for byte.
func TestRunManySharedWorkloadIdentical(t *testing.T) {
	grid := versaslot.Sweep{
		Base:     versaslot.Scenario{Apps: 6, Condition: "stress", Seed: 7},
		Policies: []string{"fcfs", "rr", "nimblock", "versaslot-bl"},
	}.Scenarios()
	cached, err := versaslot.RunMany(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range grid {
		solo, err := versaslot.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !bytes.Equal(resultJSON(t, cached[i]), resultJSON(t, solo)) {
			t.Errorf("%s: cached-sequence result differs from solo run", s.Name)
		}
	}
}
