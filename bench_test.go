// Package versaslot_test is the benchmark harness: one benchmark per
// table/figure of the paper's evaluation (Section IV), plus ablation
// benches for the design decisions DESIGN.md calls out and
// micro-benchmarks of the simulation substrate.
//
// Figure benches report their headline quantities via b.ReportMetric:
//
//	go test -bench=Fig -benchmem
//
// reproduces every figure; EXPERIMENTS.md records paper-vs-measured.
package versaslot_test

import (
	"fmt"
	"testing"

	"versaslot"
	"versaslot/internal/bitstream"
	"versaslot/internal/cluster"
	"versaslot/internal/core"
	"versaslot/internal/experiments"
	"versaslot/internal/fabric"
	"versaslot/internal/fault"
	"versaslot/internal/hypervisor"
	"versaslot/internal/metrics"
	"versaslot/internal/orchestrator"
	"versaslot/internal/pipeline"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// benchConfig keeps figure benches affordable per iteration while
// preserving the paper's workload shape.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Sequences = 4
	return cfg
}

// BenchmarkFig5ResponseTime regenerates Fig. 5: average relative
// response-time reduction per system, normalized to the Baseline, under
// each congestion condition. Reported metrics are the x-factors (e.g.
// BL_Standard_x; paper: 13.66).
func BenchmarkFig5ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchConfig())
		for _, cond := range workload.Conditions() {
			for _, kind := range sched.Kinds() {
				if kind == sched.KindBaseline {
					continue
				}
				cell := r.Lookup(cond, kind)
				b.ReportMetric(cell.Reduction, metricName(kind)+"_"+condName(cond)+"_x")
			}
		}
	}
}

// BenchmarkFig6TailLatency regenerates Fig. 6: P95/P99 tail response
// times normalized to the Baseline (lower is better).
func BenchmarkFig6TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(benchConfig())
		for _, g := range experiments.Fig6Groups() {
			bl := r.Lookup(g, sched.KindVersaSlotBL).Relative
			nim := r.Lookup(g, sched.KindNimblock).Relative
			b.ReportMetric(bl, "BL_"+g)
			b.ReportMetric(nim, "Nimblock_"+g)
		}
	}
}

// BenchmarkFig7Utilization regenerates Fig. 7: the LUT/FF utilization
// increase of 3-in-1 bundles (paper averages: +35% LUT, +29% FF; the
// per-app bars reproduce exactly).
func BenchmarkFig7Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7()
		for _, g := range r.Gains {
			b.ReportMetric(g.LUTPct, g.App+"_LUT_pct")
			b.ReportMetric(g.FFPct, g.App+"_FF_pct")
		}
		b.ReportMetric(r.AvgLUTPct, "avg_LUT_pct")
		b.ReportMetric(r.AvgFFPct, "avg_FF_pct")
	}
}

// BenchmarkFig8Switching regenerates Fig. 8: cross-board switching with
// live migration versus static Only.Little / Big.Little (paper: 2.98x
// and 6.65x vs Only.Little; 1.13 ms mean switch overhead).
func BenchmarkFig8Switching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig8()
		cfg.Workloads = 2
		r := experiments.Fig8(cfg)
		b.ReportMetric(r.SwitchingReduction, "switching_x")
		b.ReportMetric(r.BigLittleReduction, "bigLittle_x")
		b.ReportMetric(float64(r.Switches), "switches")
		b.ReportMetric(float64(r.MeanSwitchTime)/1e6, "switch_ms")
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationDualCore isolates the dual-core PR server: the same
// allocation policy (Nimblock's) on the same Only.Little board, single
// core versus dedicated PR core.
func BenchmarkAblationDualCore(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 77)
	for i := 0; i < b.N; i++ {
		single := runCustom(b, seq, fabric.ZCU216OnlyLittle, hypervisor.SingleCore, sched.KindNimblock)
		dual := runCustom(b, seq, fabric.ZCU216OnlyLittle, hypervisor.DualCore, sched.KindNimblock)
		b.ReportMetric(single.Seconds(), "singleCore_meanRT_s")
		b.ReportMetric(dual.Seconds(), "dualCore_meanRT_s")
		b.ReportMetric(single.Seconds()/dual.Seconds(), "speedup_x")
	}
}

// BenchmarkAblationBundling isolates the Big.Little architecture: both
// systems run dual-core VersaSlot scheduling; only the board differs.
func BenchmarkAblationBundling(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 78)
	for i := 0; i < b.N; i++ {
		ol, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 1}, seq)
		if err != nil {
			b.Fatal(err)
		}
		bl, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 1}, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.Time(ol.Summary.MeanRT).Seconds(), "onlyLittle_meanRT_s")
		b.ReportMetric(sim.Time(bl.Summary.MeanRT).Seconds(), "bigLittle_meanRT_s")
		b.ReportMetric(float64(ol.Summary.PRLoads)/float64(bl.Summary.PRLoads), "PR_reduction_x")
	}
}

// BenchmarkAblationBitstreamCache isolates the DDR bitstream cache:
// Nimblock with and without cached partials.
func BenchmarkAblationBitstreamCache(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 79)
	for i := 0; i < b.N; i++ {
		cached := runCustom(b, seq, fabric.ZCU216OnlyLittle, hypervisor.SingleCore, sched.KindNimblock)
		uncached := runCustomNoCache(b, seq)
		b.ReportMetric(cached.Seconds(), "cached_meanRT_s")
		b.ReportMetric(uncached.Seconds(), "uncached_meanRT_s")
	}
}

// BenchmarkAblationRedistribution isolates Algorithm 1's leftover-slot
// redistribution: VersaSlot OL (redistributes) versus the identical
// dual-core engine running Nimblock's allocator (does not).
func BenchmarkAblationRedistribution(b *testing.B) {
	p := workload.DefaultGenParams(workload.Standard)
	seq := workload.Generate(p, 80)
	for i := 0; i < b.N; i++ {
		with, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 1}, seq)
		if err != nil {
			b.Fatal(err)
		}
		without := runCustom(b, seq, fabric.ZCU216OnlyLittle, hypervisor.DualCore, sched.KindNimblock)
		b.ReportMetric(sim.Time(with.Summary.MeanRT).Seconds(), "with_meanRT_s")
		b.ReportMetric(without.Seconds(), "without_meanRT_s")
	}
}

// BenchmarkAblationHostControl isolates the control-plane placement:
// the embedded ARM hypervisor versus a host CPU driving the board over
// PCIe (Section III-A's "For FPGA boards without a dedicated CPU").
func BenchmarkAblationHostControl(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 81)
	for i := 0; i < b.N; i++ {
		embedded, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 1}, seq)
		if err != nil {
			b.Fatal(err)
		}
		params := sched.DefaultParams()
		params.HostControl = true
		host, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 1, Params: &params}, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.Time(embedded.Summary.MeanRT).Seconds(), "embedded_meanRT_s")
		b.ReportMetric(sim.Time(host.Summary.MeanRT).Seconds(), "hostPCIe_meanRT_s")
	}
}

// BenchmarkAblationPreemption isolates the aging preemption: VersaSlot
// OL with the default 2s preemption age versus preemption disabled
// (infinite age).
func BenchmarkAblationPreemption(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 82)
	for i := 0; i < b.N; i++ {
		on, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 1}, seq)
		if err != nil {
			b.Fatal(err)
		}
		params := sched.DefaultParams()
		params.PreemptAge = 1 << 40 // effectively never
		off, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotOL, Seed: 1, Params: &params}, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.Time(on.Summary.MeanRT).Seconds(), "preempt_meanRT_s")
		b.ReportMetric(sim.Time(off.Summary.MeanRT).Seconds(), "noPreempt_meanRT_s")
		b.ReportMetric(float64(on.Summary.Preemptions), "preemptions")
	}
}

// BenchmarkFailureInjection measures scheduling resilience to PCAP CRC
// failures: 20%% of loads re-stream.
func BenchmarkFailureInjection(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 83)
	for i := 0; i < b.N; i++ {
		params := sched.DefaultParams()
		params.PRFailureRate = 0.2
		res, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 1, Params: &params}, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.Time(res.Summary.MeanRT).Seconds(), "meanRT_s")
		b.ReportMetric(float64(res.Summary.PRRetries), "retries")
	}
}

// BenchmarkFarmDispatch compares the registered farm dispatchers at
// 8/32/128 pairs on a stress workload scaled to the farm size. The
// incremental load counters keep dispatch O(pairs) per arrival (the
// former implementation re-scanned every engine's queue), so the gap
// between dispatchers at 128 pairs is policy cost, not bookkeeping.
func BenchmarkFarmDispatch(b *testing.B) {
	for _, pairs := range []int{8, 32, 128} {
		p := workload.DefaultGenParams(workload.Stress)
		p.Apps = pairs * 3
		seq := workload.Generate(p, 4242)
		for _, name := range cluster.DispatcherNames() {
			b.Run(fmt.Sprintf("%s/pairs=%d", name, pairs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := cluster.DefaultFarmConfig(pairs)
					cfg.Dispatcher = name
					cfg.RebalanceEvery = 2 * sim.Second
					f := cluster.MustNewFarm(cfg)
					if err := f.Inject(seq); err != nil {
						b.Fatal(err)
					}
					sum := f.Run()
					if sum.Apps != p.Apps {
						b.Fatalf("finished %d of %d apps", sum.Apps, p.Apps)
					}
					b.ReportMetric(float64(sum.CrossSwitches), "crossMigrations")
				}
			})
		}
	}
}

// BenchmarkFarmDispatchSharded prices the sharded single-run executor
// against its sequential twin: the same least-loaded farm at fleet
// scale, run once with shards=1 and once sharded across worker
// goroutines. The two runs produce byte-identical summaries (pinned by
// TestShardedMatchesSequential); only wall-clock differs. Farm
// construction and injection run under StopTimer so the measurement
// isolates the executor the shards parallelize; cmd/benchgate gates
// the pairs=128 pair with a speedup floor on multi-core hosts.
func BenchmarkFarmDispatchSharded(b *testing.B) {
	for _, pairs := range []int{128, 1024} {
		p := workload.DefaultGenParams(workload.Stress)
		p.Apps = pairs * 3
		seq := workload.Generate(p, 4242)
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("pairs=%d/shards=%d", pairs, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := cluster.DefaultFarmConfig(pairs)
					cfg.RebalanceEvery = 2 * sim.Second
					cfg.Shards = shards
					f := cluster.MustNewFarm(cfg)
					if err := f.Inject(seq); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					sum := f.Run()
					if sum.Apps != p.Apps {
						b.Fatalf("finished %d of %d apps", sum.Apps, p.Apps)
					}
				}
			})
		}
	}
}

// BenchmarkFarmDispatchHetero prices capacity-aware dispatch on a
// mixed-platform farm: pairs cycle ZCU216 Big.Little / U250 quad /
// PYNQ dual, so every arrival filters pairs through the per-spec
// eligibility cache before the dispatcher ranks them. Gated by
// cmd/benchgate against BENCH_6.json.
func BenchmarkFarmDispatchHetero(b *testing.B) {
	for _, pairs := range []int{8, 32} {
		p := workload.DefaultGenParams(workload.Stress)
		p.Apps = pairs * 3
		seq := workload.Generate(p, 4242)
		platforms := make([]cluster.PairPlatforms, pairs)
		for i := range platforms {
			switch i % 3 {
			case 1:
				platforms[i] = cluster.PairPlatforms{Base: fabric.U250Quad, Boost: fabric.U250Quad}
			case 2:
				platforms[i] = cluster.PairPlatforms{Base: fabric.PYNQDual, Boost: fabric.PYNQDual}
			}
		}
		b.Run(fmt.Sprintf("least-loaded/pairs=%d", pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultFarmConfig(pairs)
				cfg.PairPlatforms = platforms
				cfg.RebalanceEvery = 2 * sim.Second
				f := cluster.MustNewFarm(cfg)
				if err := f.Inject(seq); err != nil {
					b.Fatal(err)
				}
				sum := f.Run()
				if sum.Apps != p.Apps {
					b.Fatalf("finished %d of %d apps", sum.Apps, p.Apps)
				}
				b.ReportMetric(float64(sum.CrossSwitches), "crossMigrations")
			}
		})
	}
}

// --- Substrate micro-benchmarks --------------------------------------

func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(sim.Microsecond, func() {})
		k.Step()
	}
}

func BenchmarkServerJobs(b *testing.B) {
	k := sim.NewKernel(1)
	s := sim.NewServer(k, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SubmitFunc("job", "bench", sim.Microsecond, nil)
		for k.Step() {
		}
	}
}

func BenchmarkPipelineMakespan(b *testing.B) {
	plan := pipeline.Plan{
		StageTimes: []sim.Duration{31, 28, 36, 42, 36, 31, 42, 36, 48},
		Batch:      30,
		LoadTime:   21 * sim.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for s := 1; s <= 8; s++ {
			_ = plan.Makespan(s)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	p := workload.DefaultGenParams(workload.Standard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = workload.Generate(p, uint64(i))
	}
}

// BenchmarkEndToEndStress measures the simulator itself: one full
// 20-app stress run per iteration.
func BenchmarkEndToEndStress(b *testing.B) {
	p := workload.DefaultGenParams(workload.Stress)
	seq := workload.Generate(p, 99)
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.SystemConfig{Policy: sched.KindVersaSlotBL, Seed: 1}, seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaosFaults prices the fault-injection path end to end: a
// stress run on a cluster with every built-in injector layered on —
// fail/recover chains, crash-restart teardowns, PR retries, straggle
// episodes, checkpointed resume. Paired with BenchmarkEndToEndStress
// it bounds the chaos subsystem's overhead; benchgate pins both.
func BenchmarkChaosFaults(b *testing.B) {
	sc := versaslot.Scenario{
		Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 20, Seed: 7,
		Faults: &fault.Spec{Injectors: []fault.InjectorSpec{
			{Kind: fault.KindSlotFail, MTBF: 25 * sim.Second, MTTR: 2 * sim.Second},
			{Kind: fault.KindBoardFail, MTBF: 40 * sim.Second, MTTR: 2 * sim.Second},
			{Kind: fault.KindPRFlaky, Rate: 0.2, MaxRetries: 3, Backoff: sim.Millisecond, BackoffFactor: 2},
			{Kind: fault.KindStraggler, MTBF: 20 * sim.Second, MTTR: 2 * sim.Second, Factor: 2.0},
			{Kind: fault.KindCheckpoint, CheckpointBytes: 64, RestoreDelay: sim.Millisecond},
		}},
	}
	for i := 0; i < b.N; i++ {
		res, err := versaslot.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Apps != sc.Apps {
			b.Fatalf("finished %d of %d apps", res.Summary.Apps, sc.Apps)
		}
	}
}

// BenchmarkAutoscaleChurn prices the fleet control plane under churn:
// two quota'd tenants submit MMPP bursts through admission while the
// autoscaler rides the load signal through repeated scale-up / drain
// cycles on a 1..4-pair farm. Each iteration is one full orchestrated
// run — admission decisions, pump releases, activation latencies, and
// drain migrations all on the coordinator kernel. Paired with
// BenchmarkEndToEndStress it bounds the orchestrator's overhead;
// benchgate pins it via BENCH_8.json.
func BenchmarkAutoscaleChurn(b *testing.B) {
	mmpp := &workload.ArrivalSpec{Process: "mmpp"}
	sc := versaslot.Scenario{
		Topology: versaslot.TopologyFarm, Condition: "stress", Pairs: 1, Seed: 31,
		Tenants: []orchestrator.TenantSpec{
			{Name: "batch", Apps: 40, Quota: 6, Priority: 5, Arrival: mmpp},
			{Name: "interactive", Apps: 20, Quota: 4, Priority: 1, SLO: 6 * sim.Second, Arrival: mmpp},
		},
		Autoscale: &orchestrator.AutoscaleSpec{
			Min: 1, Max: 4, Every: 500 * sim.Millisecond, Window: 2,
			UpLatency: 500 * sim.Millisecond, UpLoad: 4, DownLoad: 1,
		},
	}
	for i := 0; i < b.N; i++ {
		res, err := versaslot.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Autoscale == nil || res.Autoscale.ScaleUps == 0 {
			b.Fatal("the churn bench did not scale up: the load signal never crossed the up threshold")
		}
		b.ReportMetric(float64(res.Autoscale.ScaleUps+res.Autoscale.ScaleDowns), "scaleOps")
	}
}

// BenchmarkStreamingHorizon prices the bounded-memory metrics pipeline
// at long horizons: each iteration builds a streaming collector (global
// sketch + rolling window ring), folds n synthetic response samples
// through it — cycling the ring through many rollovers — and
// summarizes. bytes/op is the pipeline's entire per-run allocation, so
// it must stay flat as n grows 10x (exact mode retains 64+ bytes per
// sample and would scale linearly); benchgate pins bytes/op and
// allocs/op tightly at both sizes.
func BenchmarkStreamingHorizon(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := metrics.NewCollector(fabric.ResVec{LUT: 100, FF: 200})
				c.EnableStreaming(metrics.StreamConfig{Window: 10 * sim.Second, MaxWindows: 64})
				r := sim.NewRNG(42)
				for j := 0; j < n; j++ {
					rt := sim.Duration(1e6 + r.Float64()*8e8)
					fin := sim.Time(j) * sim.Time(50*sim.Millisecond)
					c.RecordResponse(metrics.ResponseSample{
						AppID: j, Spec: "AN", Batch: 4,
						Arrival: fin - sim.Time(rt), Finish: fin,
						Response: rt, QueueDelay: rt / 8,
					})
				}
				if s := c.Summarize(); s.Apps != n {
					b.Fatalf("summarized %d of %d samples", s.Apps, n)
				}
			}
		})
	}
}

// --- helpers ----------------------------------------------------------

func runCustom(b *testing.B, seq *workload.Sequence, platform string, model hypervisor.CoreModel, kind sched.Kind) sim.Time {
	b.Helper()
	k := sim.NewKernel(1)
	e := sched.NewEngine(k, sched.DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(platform)), model, bitstream.SuiteRepo())
	e.SetPolicy(sched.New(kind))
	apps, err := seq.Instantiate(0)
	if err != nil {
		b.Fatal(err)
	}
	e.InjectSequence(apps)
	k.Run()
	e.CheckQuiescent()
	var sum float64
	for _, r := range e.Col.Responses {
		sum += float64(r.Response)
	}
	return sim.Time(sum / float64(len(e.Col.Responses)))
}

func runCustomNoCache(b *testing.B, seq *workload.Sequence) sim.Time {
	b.Helper()
	k := sim.NewKernel(1)
	e := sched.NewEngine(k, sched.DefaultParams(), fabric.NewBoard(0, fabric.MustPlatform(fabric.ZCU216OnlyLittle)), hypervisor.SingleCore, bitstream.SuiteRepo())
	e.SetPolicy(sched.New(sched.KindNimblock))
	e.DisableBitstreamCache()
	apps, err := seq.Instantiate(0)
	if err != nil {
		b.Fatal(err)
	}
	e.InjectSequence(apps)
	k.Run()
	e.CheckQuiescent()
	var sum float64
	for _, r := range e.Col.Responses {
		sum += float64(r.Response)
	}
	return sim.Time(sum / float64(len(e.Col.Responses)))
}

func metricName(k sched.Kind) string {
	switch k {
	case sched.KindFCFS:
		return "FCFS"
	case sched.KindRR:
		return "RR"
	case sched.KindNimblock:
		return "Nimblock"
	case sched.KindVersaSlotOL:
		return "OL"
	case sched.KindVersaSlotBL:
		return "BL"
	default:
		return "Baseline"
	}
}

func condName(c workload.Condition) string {
	switch c {
	case workload.Loose:
		return "Loose"
	case workload.Standard:
		return "Std"
	case workload.Stress:
		return "Stress"
	default:
		return "RT"
	}
}
