package versaslot_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"versaslot"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	p := workload.DefaultGenParams(workload.Stress)
	p.Apps = 5
	orig := versaslot.Scenario{
		Name:          "round-trip",
		Topology:      versaslot.TopologyCluster,
		Condition:     "stress",
		Apps:          30,
		Seed:          99,
		Workload:      workload.Generate(p, 4),
		IntervalLo:    100 * sim.Millisecond,
		IntervalHi:    200 * sim.Millisecond,
		WindowUpdates: 8,
		Smoothing:     0.5,
		ThresholdUp:   0.2,
		ThresholdDown: 0.02,
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := versaslot.ReadScenario(&buf)
	if err != nil {
		t.Fatalf("ReadScenario: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\n orig: %+v\n got:  %+v", orig, got)
	}
}

func TestScenarioFarmFieldsRoundTrip(t *testing.T) {
	orig := versaslot.Scenario{
		Name:           "farm-round-trip",
		Topology:       versaslot.TopologyFarm,
		Condition:      "stress",
		Apps:           12,
		Seed:           7,
		Pairs:          4,
		Dispatcher:     "power-of-two",
		RebalanceEvery: 2 * sim.Second,
		RebalanceGap:   3,
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := versaslot.ReadScenario(&buf)
	if err != nil {
		t.Fatalf("ReadScenario: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("farm fields round trip mismatch:\n orig: %+v\n got:  %+v", orig, got)
	}
}

func TestScenarioParamsRoundTrip(t *testing.T) {
	params := sched.DefaultParams()
	params.PRFailureRate = 0.01
	params.HostControl = true
	orig := versaslot.Scenario{Policy: "fcfs", Params: &params}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := versaslot.ReadScenario(&buf)
	if err != nil {
		t.Fatalf("ReadScenario: %v", err)
	}
	if got.Params == nil || !reflect.DeepEqual(*orig.Params, *got.Params) {
		t.Errorf("params round trip mismatch: %+v vs %+v", orig.Params, got.Params)
	}
}

func TestReadScenarioRejectsUnknownFields(t *testing.T) {
	_, err := versaslot.ReadScenario(strings.NewReader(`{"polcy": "fcfs"}`))
	if err == nil {
		t.Error("ReadScenario accepted a misspelled field")
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    versaslot.Scenario
		want string // substring of the expected error; "" = valid
	}{
		{"zero value defaults", versaslot.Scenario{}, ""},
		{"unknown policy", versaslot.Scenario{Policy: "nope"}, "unknown policy"},
		{"unknown topology", versaslot.Scenario{Topology: "ring"}, "unknown topology"},
		{"unknown condition", versaslot.Scenario{Condition: "chill"}, "unknown condition"},
		{"custom mix ok", versaslot.Scenario{BigSlots: 1, LittleSlots: 6}, ""},
		{"custom mix on cluster", versaslot.Scenario{Topology: versaslot.TopologyCluster, BigSlots: 1}, "single-topology"},
		{"custom mix with explicit policy", versaslot.Scenario{Policy: "fcfs", BigSlots: 2, LittleSlots: 4}, "conflicts with a custom slot mix"},
		{"custom mix big only", versaslot.Scenario{BigSlots: 2}, "no Little slots"},
		{"custom mix oversized", versaslot.Scenario{BigSlots: 4, LittleSlots: 4}, "the fabric holds 8"},
		{"interval hi only", versaslot.Scenario{IntervalHi: 2 * sim.Second}, "invalid interval override"},
		{"interval hi below lo", versaslot.Scenario{IntervalLo: 2 * sim.Second, IntervalHi: sim.Second}, "invalid interval override"},
		{"interval ok", versaslot.Scenario{IntervalLo: sim.Second, IntervalHi: 2 * sim.Second}, ""},
		{"policy alias", versaslot.Scenario{Policy: "versaslot"}, ""},
		{"farm dispatcher ok", versaslot.Scenario{Topology: versaslot.TopologyFarm, Dispatcher: "affinity"}, ""},
		{"dispatcher alias ok", versaslot.Scenario{Topology: versaslot.TopologyFarm, Dispatcher: "p2c"}, ""},
		{"unknown dispatcher", versaslot.Scenario{Topology: versaslot.TopologyFarm, Dispatcher: "random"}, "unknown dispatcher"},
		{"dispatcher on single", versaslot.Scenario{Dispatcher: "least-loaded"}, "farm-topology only"},
		{"rebalance on cluster", versaslot.Scenario{Topology: versaslot.TopologyCluster, RebalanceEvery: sim.Second}, "farm-topology only"},
		{"rebalance ok", versaslot.Scenario{Topology: versaslot.TopologyFarm, RebalanceEvery: sim.Second, RebalanceGap: 4}, ""},
		{"negative rebalance gap", versaslot.Scenario{Topology: versaslot.TopologyFarm, RebalanceGap: -1}, "negative rebalance gap"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if c.want == "" && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", c.name, err)
		}
		if c.want != "" && (err == nil || !strings.Contains(err.Error(), c.want)) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}
