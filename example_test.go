package versaslot_test

import (
	"fmt"

	"versaslot"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// ExampleRun is the quickstart: one board, the VersaSlot Big.Little
// policy, the paper's standard workload. The simulator is
// deterministic, so the printed metrics are stable for a fixed seed.
func ExampleRun() {
	res, err := versaslot.Run(versaslot.Scenario{
		Policy:    "versaslot-bl", // any registered policy name
		Condition: "standard",     // loose | standard | stress | real-time
		Apps:      20,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	s := res.Summary
	fmt.Printf("apps: %d\n", s.Apps)
	fmt.Printf("mean RT: %.3f s\n", sim.Time(s.MeanRT).Seconds())
	fmt.Printf("P99: %.3f s\n", sim.Time(s.P99).Seconds())
	// Output:
	// apps: 20
	// mean RT: 0.900 s
	// P99: 1.560 s
}

// ExampleRunSweep sweeps a 3-pair farm across two congestion
// conditions on a worker pool. Each run owns its simulation kernel,
// so parallel results are identical to sequential execution.
func ExampleRunSweep() {
	results, err := versaslot.RunSweep(versaslot.Sweep{
		Base: versaslot.Scenario{
			Topology:   versaslot.TopologyFarm,
			Pairs:      3,
			Dispatcher: "least-loaded",
			Apps:       24,
		},
		Conditions: []string{"standard", "stress"},
		Seeds:      []uint64{1, 2},
	}, 4)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%-16s mean RT %.3f s, %d cross-board switches\n",
			r.Condition, sim.Time(r.Summary.MeanRT).Seconds(), r.Switches)
	}
	// Output:
	// Standard         mean RT 1.760 s, 0 cross-board switches
	// Stress           mean RT 3.706 s, 1 cross-board switches
	// Standard         mean RT 1.629 s, 0 cross-board switches
	// Stress           mean RT 3.087 s, 1 cross-board switches
}

// Example_customArrivalProcess registers a third-party arrival
// process — a fixed metronome — and drives a scenario with it by
// name, exactly like the built-in uniform/poisson/mmpp/diurnal/
// phased/closed-loop/trace processes.
func Example_customArrivalProcess() {
	workload.MustRegisterArrival(workload.ArrivalReg{
		Name:  "metronome",
		Title: "Fixed cadence from the spec's mean",
		Build: func(spec workload.ArrivalSpec) (workload.ArrivalProcess, error) {
			if spec.Mean <= 0 {
				return nil, fmt.Errorf("metronome needs mean > 0")
			}
			return metronome{gap: spec.Mean}, nil
		},
	})

	res, err := versaslot.Run(versaslot.Scenario{
		Policy:    "versaslot-bl",
		Condition: "standard",
		Apps:      10,
		Seed:      7,
		Arrival:   &workload.ArrivalSpec{Process: "metronome", Mean: 2 * sim.Second},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("apps: %d, makespan %.3f s\n", res.Summary.Apps, res.Makespan.Seconds())
	// Output:
	// apps: 10, makespan 18.589 s
}

// metronome emits one arrival every gap, starting at 0.
type metronome struct{ gap sim.Duration }

func (m metronome) Times(_ *sim.RNG, n int) ([]sim.Duration, error) {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = sim.Duration(i) * m.gap
	}
	return out, nil
}
