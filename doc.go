// Package versaslot is the public facade of the VersaSlot
// reproduction: one declarative Scenario description, one Runner, one
// unified Result, across every topology the paper evaluates — a single
// board ("single"), the two-board Schmitt-trigger switching cluster
// ("cluster"), and the multi-pair board farm ("farm").
//
// A minimal run:
//
//	res, err := versaslot.Run(versaslot.Scenario{
//		Policy:    "versaslot-bl",
//		Condition: "standard",
//		Apps:      20,
//		Seed:      42,
//	})
//
// Scenarios round-trip through JSON, so any run is reproducible from a
// config artifact:
//
//	sc, err := versaslot.LoadScenario("scenario.json")
//	res, err := versaslot.Run(sc)
//
// # Extension points
//
// Three registries extend the facade without touching any enum, all
// backed by internal/registry (case-insensitive names and aliases,
// duplicate rejection, registration-order listing):
//
//   - scheduling policies — sched.Register, selected by Scenario.Policy
//     (see Policies)
//   - farm dispatchers — cluster.RegisterDispatcher, selected by
//     Scenario.Dispatcher (see Dispatchers)
//   - arrival processes — workload.RegisterArrival, selected by the
//     Scenario.Arrival block (see ArrivalProcesses)
//
// # Workloads and arrival processes
//
// A scenario's workload is resolved in precedence order: an inline
// Workload sequence, a WorkloadFile, or generation from the congestion
// Condition. Generation follows the paper's classic uniform/Poisson
// draws unless the Arrival block names a registered arrival process
// (mmpp bursts, diurnal rate, phased schedules, closed-loop clients,
// trace replay, ...) — then the arrival instants come from that
// process while the application/batch stream stays a function of the
// seed alone.
//
// # Determinism
//
// Every run is a single-goroutine discrete-event simulation: the same
// Scenario and seed produce byte-identical Results, RunMany/Sweep on a
// worker pool match sequential execution exactly, and the shared
// sequence cache keys on every generation-relevant field (including
// the serialized arrival spec), so caching is invisible in results.
package versaslot
