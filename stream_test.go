package versaslot

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"versaslot/internal/sim"
)

// streamScenario is the shared stream-mode scenario the determinism
// tests run: enough apps for meaningful percentiles, windows sized so
// the time-series has several entries.
func streamScenario() Scenario {
	return Scenario{
		Name:      "stream-determinism",
		Condition: "stress",
		Apps:      120,
		Seed:      7,
		Metrics:   &MetricsSpec{Mode: "stream", Window: 5 * sim.Second, MaxWindows: 32},
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStreamRunManyDeterministic pins that a stream-mode run is byte-
// identical whether executed solo or inside a concurrent RunMany
// batch: sketches and windows fold per-engine and merge in fixed
// engine order, so worker scheduling cannot perturb the output.
func TestStreamRunManyDeterministic(t *testing.T) {
	solo, err := Run(streamScenario())
	if err != nil {
		t.Fatal(err)
	}
	batch := []Scenario{streamScenario(), streamScenario(), streamScenario()}
	many, err := RunMany(batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, solo)
	for i, r := range many {
		if got := mustJSON(t, r); got != want {
			t.Errorf("RunMany result %d differs from the solo run", i)
		}
	}
}

// TestStreamFarmShardedDeterministic pins the sketch-merge guarantee
// at fleet scale: a stream-mode farm produces byte-identical results
// sequentially and under the sharded executor (run with -race in CI).
func TestStreamFarmShardedDeterministic(t *testing.T) {
	base := Scenario{
		Name:           "stream-farm",
		Topology:       TopologyFarm,
		Pairs:          6,
		Condition:      "stress",
		Apps:           90,
		Seed:           11,
		RebalanceEvery: 5 * sim.Second,
		Metrics:        &MetricsSpec{Mode: "stream", Window: 5 * sim.Second, MaxWindows: 16},
	}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, seq)
	for _, shards := range []int{2, 4} {
		s := base
		s.Shards = shards
		got, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, got) != want {
			t.Errorf("shards=%d stream farm differs from the sequential run", shards)
		}
	}
	if len(seq.TimeSeries) == 0 {
		t.Error("stream farm produced no time-series windows")
	}
	if len(seq.Samples) != 0 {
		t.Errorf("stream farm retained %d samples; stream mode must retain none", len(seq.Samples))
	}
}

// TestStreamMatchesExact runs the same seed in both metrics modes and
// pins stream mode to its documented contract: mean/min/max/queue and
// utilization match the exact run bit-for-bit (they are tracked
// exactly), and each reported percentile lands within 1% rank error
// of the exact sample distribution.
func TestStreamMatchesExact(t *testing.T) {
	ex := streamScenario()
	ex.Metrics = nil
	exact, err := Run(ex)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Run(streamScenario())
	if err != nil {
		t.Fatal(err)
	}
	es, ss := exact.Summary, stream.Summary
	if es.Apps != ss.Apps || es.MeanRT != ss.MeanRT || es.MinRT != ss.MinRT ||
		es.MaxRT != ss.MaxRT || es.MeanQueue != ss.MeanQueue ||
		es.UtilLUT != ss.UtilLUT || es.UtilFF != ss.UtilFF {
		t.Errorf("exactly-tracked stats diverged:\nexact  %+v\nstream %+v", es, ss)
	}
	if exact.Makespan != stream.Makespan {
		t.Errorf("makespan diverged: exact %v stream %v", exact.Makespan, stream.Makespan)
	}
	sorted := make([]float64, len(exact.Samples))
	for i, s := range exact.Samples {
		sorted[i] = float64(s.Response)
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for _, q := range []struct {
		p   float64
		got sim.Duration
	}{{50, ss.P50}, {95, ss.P95}, {99, ss.P99}} {
		v := float64(q.got)
		// Fractional ranks of the estimate in the exact distribution,
		// tie-aware: [share strictly below, share at or below].
		lo := float64(sort.SearchFloat64s(sorted, v)) / n
		hi := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })) / n
		target := q.p / 100
		if target < lo-0.01 || target > hi+0.01 {
			t.Errorf("P%.0f=%v has exact rank [%.4f, %.4f]; target %.2f is outside the 1%% bound",
				q.p, q.got, lo, hi, target)
		}
		// And the estimate stays within the sketch's relative value
		// band of the exact percentile, widened by the local
		// inter-sample gap interpolation can span at this n.
		exactV := exact.Percentile(q.p)
		if exactV > 0 {
			rel := math.Abs(v-float64(exactV)) / float64(exactV)
			if rel > 0.05 {
				t.Errorf("P%.0f: stream %v vs exact %v (relative error %.4f)", q.p, q.got, exactV, rel)
			}
		}
	}
	if len(stream.TimeSeries) == 0 {
		t.Fatal("stream run produced no time-series")
	}
	apps := 0
	for _, w := range stream.TimeSeries {
		apps += w.Apps
	}
	if apps != ss.Apps {
		t.Errorf("time-series windows account for %d apps, summary has %d", apps, ss.Apps)
	}
	if stream.MetricsMode != "stream" {
		t.Errorf("metrics_mode %q, want \"stream\"", stream.MetricsMode)
	}
	if exact.MetricsMode != "" || len(exact.TimeSeries) != 0 {
		t.Errorf("exact run leaked stream fields: mode %q, %d windows", exact.MetricsMode, len(exact.TimeSeries))
	}
}

// TestStreamClusterRuns smoke-tests the switching-pair topology in
// stream mode: both boards' sketches merge into the pair summary.
func TestStreamClusterRuns(t *testing.T) {
	r, err := Run(Scenario{
		Topology:  TopologyCluster,
		Condition: "stress",
		Apps:      40,
		Seed:      3,
		Metrics:   &MetricsSpec{Mode: "stream"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Apps != 40 {
		t.Errorf("cluster stream run finished %d apps, want 40", r.Summary.Apps)
	}
	if len(r.Samples) != 0 {
		t.Errorf("stream cluster retained %d samples", len(r.Samples))
	}
	if len(r.TimeSeries) == 0 {
		t.Error("stream cluster produced no time-series")
	}
}

// TestMetricsSpecValidation pins the metrics block's validation rules.
func TestMetricsSpecValidation(t *testing.T) {
	bad := []Scenario{
		{Metrics: &MetricsSpec{Mode: "sketchy"}},
		{Metrics: &MetricsSpec{Mode: "exact", Window: sim.Second}},
		{Metrics: &MetricsSpec{Mode: "exact", MaxWindows: 4}},
		{Metrics: &MetricsSpec{Mode: "stream", Window: -sim.Second}},
		{Metrics: &MetricsSpec{Mode: "stream", MaxWindows: -1}},
		{Metrics: &MetricsSpec{Mode: "stream", MaxWindows: 1 << 20}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %d: metrics block %+v validated; want an error", i, *s.Metrics)
		}
	}
	ok := Scenario{Metrics: &MetricsSpec{Mode: "stream", Window: 60 * sim.Second, MaxWindows: 128}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid stream block rejected: %v", err)
	}
}
