package versaslot_test

import (
	"bytes"
	"testing"

	"versaslot"
	"versaslot/internal/cluster"
	"versaslot/internal/fabric"
	"versaslot/internal/orchestrator"
	"versaslot/internal/sim"
)

// matrixTenants builds the shared tenant block for the orchestrated
// determinism matrix (multi-tenant admission plus autoscaling over
// several dispatchers and one heterogeneous platform mix; CI runs
// this file under -race).
func matrixTenants() []orchestrator.TenantSpec {
	return []orchestrator.TenantSpec{
		{Name: "batch", Apps: 18, Quota: 4, Priority: 5, SLO: 80 * sim.Second},
		{Name: "interactive", Apps: 12, Quota: 3, Priority: 1, SLO: 40 * sim.Second},
		{Name: "spiky", Apps: 10, Quota: 2, OverQuota: orchestrator.OverQuotaReject},
	}
}

func orchestratedScenarios() []versaslot.Scenario {
	autoscale := &orchestrator.AutoscaleSpec{
		Min: 1, Max: 3,
		Every:  500 * sim.Millisecond,
		Window: 2,
		UpLoad: 4, DownLoad: 1,
	}
	base := versaslot.Scenario{
		Topology:  versaslot.TopologyFarm,
		Condition: "stress",
		Pairs:     1,
		Seed:      13,
		Tenants:   matrixTenants(),
		Autoscale: autoscale,
	}
	leastLoaded := base
	leastLoaded.Name = "tenants-least-loaded"
	leastLoaded.Dispatcher = "least-loaded"
	affinity := base
	affinity.Name = "tenants-affinity"
	affinity.Dispatcher = "affinity"
	p2c := base
	p2c.Name = "tenants-p2c"
	p2c.Dispatcher = "power-of-two"
	hetero := base
	hetero.Name = "tenants-hetero"
	hetero.Dispatcher = "least-loaded"
	hetero.Pairs = 2
	hetero.PairPlatforms = []cluster.PairPlatforms{
		{},
		{Base: fabric.U250Quad, Boost: fabric.U250Quad},
		{Base: fabric.U250Quad, Boost: fabric.U250Quad},
	}
	return []versaslot.Scenario{leastLoaded, affinity, p2c, hetero}
}

// TestOrchestratedDeterminismMatrix: every orchestrated scenario must
// produce byte-identical results across the three execution modes —
// sequential, sharded (worker kernels with barrier synchronization),
// and a RunMany worker pool. Admission, throttle releases, and every
// autoscale action ride the farm-control priority, so no mode may
// reorder them.
func TestOrchestratedDeterminismMatrix(t *testing.T) {
	scenarios := orchestratedScenarios()
	sequential := make([][]byte, len(scenarios))
	for i, sc := range scenarios {
		res, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("sequential %s: %v", sc.Name, err)
		}
		sequential[i] = resultJSON(t, res)
		checkTenantLedger(t, sc.Name+"/sequential", res)
	}
	for i, sc := range scenarios {
		sc.Shards = 4
		res, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("sharded %s: %v", sc.Name, err)
		}
		if got := resultJSON(t, res); !bytes.Equal(sequential[i], got) {
			t.Errorf("%s: sharded result differs from sequential:\n%s\n%s", sc.Name, sequential[i], got)
		}
	}
	parallel, err := versaslot.RunMany(scenarios, 4)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i, res := range parallel {
		if got := resultJSON(t, res); !bytes.Equal(sequential[i], got) {
			t.Errorf("%s: RunMany result differs from sequential:\n%s\n%s", scenarios[i].Name, sequential[i], got)
		}
	}
}

// checkTenantLedger asserts the facade-level invariants on a
// completed orchestrated result: the per-tenant ledger reconciles to
// zero remainder and the autoscaler left no pair mid-drain.
func checkTenantLedger(t *testing.T, label string, res *versaslot.Result) {
	t.Helper()
	if len(res.Tenants) == 0 {
		t.Fatalf("%s: no tenant stats", label)
	}
	finished := 0
	for _, st := range res.Tenants {
		if st.Submitted != st.Admitted+st.Rejected+st.Queued {
			t.Errorf("%s: tenant %s: submitted %d != admitted %d + rejected %d + queued %d",
				label, st.Tenant, st.Submitted, st.Admitted, st.Rejected, st.Queued)
		}
		if st.Admitted != st.Finished+st.InFlight {
			t.Errorf("%s: tenant %s: admitted %d != finished %d + in-flight %d",
				label, st.Tenant, st.Admitted, st.Finished, st.InFlight)
		}
		if st.Queued != 0 || st.InFlight != 0 {
			t.Errorf("%s: tenant %s: completed run left %d queued, %d in flight",
				label, st.Tenant, st.Queued, st.InFlight)
		}
		if st.SLO > 0 && st.Finished > 0 && (st.SLOAttainment < 0 || st.SLOAttainment > 1) {
			t.Errorf("%s: tenant %s: SLO attainment %f outside [0, 1]", label, st.Tenant, st.SLOAttainment)
		}
		finished += st.Finished
	}
	if finished != res.Summary.Apps {
		t.Errorf("%s: tenants finished %d, farm summary reports %d", label, finished, res.Summary.Apps)
	}
	if res.Autoscale == nil {
		t.Fatalf("%s: no autoscale stats", label)
	}
}

// TestTenantSeedIsolation: renaming one tenant must not perturb
// another tenant's arrivals — per-tenant workloads are keyed by
// (scenario seed, tenant name), not by position.
func TestTenantSeedIsolation(t *testing.T) {
	base := versaslot.Scenario{
		Name:      "seed-isolation",
		Topology:  versaslot.TopologyFarm,
		Condition: "stress",
		Pairs:     2,
		Seed:      31,
		Tenants: []orchestrator.TenantSpec{
			{Name: "stable", Apps: 10},
			{Name: "other", Apps: 10},
		},
	}
	first, err := versaslot.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	renamed := base
	renamed.Tenants = []orchestrator.TenantSpec{
		{Name: "stable", Apps: 10},
		{Name: "renamed", Apps: 10},
	}
	second, err := versaslot.Run(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tenants[0].MeanRT == 0 || second.Tenants[0].MeanRT == 0 {
		t.Fatal("stable tenant finished nothing")
	}
	// The farms interleave differently (the other tenant's arrivals
	// changed), so response times may shift; but the stable tenant's
	// submission count and the renamed tenant's divergence must hold.
	if first.Tenants[0].Submitted != second.Tenants[0].Submitted {
		t.Errorf("stable tenant submitted %d then %d", first.Tenants[0].Submitted, second.Tenants[0].Submitted)
	}
	if first.Tenants[1].Tenant == second.Tenants[1].Tenant {
		t.Error("rename did not take")
	}
}

// TestTenantValidation: the scenario surface rejects tenant/autoscale
// misuses before anything runs.
func TestTenantValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   versaslot.Scenario
	}{
		{"tenants on cluster", versaslot.Scenario{
			Topology: versaslot.TopologyCluster,
			Tenants:  []orchestrator.TenantSpec{{Name: "a"}},
		}},
		{"autoscale on single", versaslot.Scenario{
			Autoscale: &orchestrator.AutoscaleSpec{Max: 2},
		}},
		{"tenants with workload file", versaslot.Scenario{
			Topology:     versaslot.TopologyFarm,
			WorkloadFile: "x.json",
			Tenants:      []orchestrator.TenantSpec{{Name: "a"}},
		}},
		{"tenants with poisson", versaslot.Scenario{
			Topology: versaslot.TopologyFarm,
			Poisson:  true,
			Tenants:  []orchestrator.TenantSpec{{Name: "a"}},
		}},
		{"duplicate tenants", versaslot.Scenario{
			Topology: versaslot.TopologyFarm,
			Tenants:  []orchestrator.TenantSpec{{Name: "a"}, {Name: "a"}},
		}},
		{"pairs above autoscale max", versaslot.Scenario{
			Topology:  versaslot.TopologyFarm,
			Pairs:     4,
			Autoscale: &orchestrator.AutoscaleSpec{Max: 3},
		}},
		{"pairs below autoscale min", versaslot.Scenario{
			Topology:  versaslot.TopologyFarm,
			Pairs:     1,
			Autoscale: &orchestrator.AutoscaleSpec{Min: 2, Max: 3},
		}},
		{"bad tenant condition", versaslot.Scenario{
			Topology: versaslot.TopologyFarm,
			Tenants:  []orchestrator.TenantSpec{{Name: "a", Condition: "nope"}},
		}},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
