package versaslot_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"versaslot"
)

// goldenScenarios are legacy (pre-platform-model) scenario shapes whose
// Results are pinned byte-for-byte by testdata/golden/*.json. The
// goldens were captured before the declarative platform refactor, so
// this test proves the refactor preserved every sample, counter and
// switch decision of the enum-era Big.Little/Only.Little substrate.
//
// Regenerate (only after an intentional behavior change, never to make
// a refactor pass): VERSASLOT_UPDATE_GOLDEN=1 go test -run Golden .
var goldenScenarios = []versaslot.Scenario{
	{Name: "single-bl-standard", Policy: "versaslot-bl", Condition: "standard", Apps: 20, Seed: 1},
	{Name: "single-ol-stress", Policy: "versaslot-ol", Condition: "stress", Apps: 16, Seed: 3},
	{Name: "single-nimblock-standard", Policy: "nimblock", Condition: "standard", Apps: 12, Seed: 2},
	{Name: "single-rr-loose", Policy: "rr", Condition: "loose", Apps: 10, Seed: 4},
	{Name: "single-fcfs-standard", Policy: "fcfs", Condition: "standard", Apps: 10, Seed: 6},
	{Name: "single-baseline-loose", Policy: "baseline", Condition: "loose", Apps: 8, Seed: 5},
	{Name: "custom-mix-1b5l", BigSlots: 1, LittleSlots: 5, Condition: "stress", Apps: 12, Seed: 7},
	{Name: "cluster-standard", Topology: versaslot.TopologyCluster, Condition: "standard", Apps: 30, Seed: 1},
	{Name: "cluster-stress", Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 24, Seed: 9},
	{Name: "farm-least-loaded", Topology: versaslot.TopologyFarm, Pairs: 3, Condition: "stress", Apps: 24, Seed: 2},
	{Name: "farm-p2c-rebalance", Topology: versaslot.TopologyFarm, Pairs: 4, Dispatcher: "power-of-two",
		Condition: "stress", Apps: 32, Seed: 8, RebalanceEvery: 2_000_000_000, RebalanceGap: 2},
	{Name: "farm-affinity", Topology: versaslot.TopologyFarm, Pairs: 2, Dispatcher: "affinity",
		Condition: "standard", Apps: 18, Seed: 11},
	{Name: "farm-round-robin", Topology: versaslot.TopologyFarm, Pairs: 3, Dispatcher: "round-robin",
		Condition: "stress", Apps: 21, Seed: 12},
}

// canonicalGolden renders a Result as indented JSON with sorted keys,
// after stripping fields the platform refactor added (they carry new
// information, not changed behavior): the goldens predate them.
func canonicalGolden(t *testing.T, res *versaslot.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	// Post-refactor additions, absent from the pre-refactor goldens.
	delete(m, "platform")
	delete(m, "pair_platforms")
	if sum, ok := m["summary"].(map[string]any); ok {
		delete(sum, "UtilDSP")
		delete(sum, "UtilBRAM")
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("remarshal result: %v", err)
	}
	return append(out, '\n')
}

// TestGoldenLegacyScenarios pins legacy scenario Results byte-for-byte
// against goldens captured before the platform-model refactor.
func TestGoldenLegacyScenarios(t *testing.T) {
	update := os.Getenv("VERSASLOT_UPDATE_GOLDEN") != ""
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := canonicalGolden(t, res)
			path := filepath.Join("testdata", "golden", sc.Name+".json")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with VERSASLOT_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("result diverged from pre-refactor golden %s\n%s", path, firstDiff(string(want), string(got)))
			}
		})
	}
}

// catalogGoldenScenarios are heterogeneous-platform catalog entries
// whose Results are pinned in full (no field stripping — they postdate
// the platform refactor): the mixed and edge-cloud farms exercise
// per-pair platform assignment, u250-quad the four-big single board.
// Loading through LoadScenario pins the JSON decode path too.
var catalogGoldenScenarios = []string{
	"hetero-farm-mixed",
	"hetero-farm-edge-cloud",
	"u250-quad-single",
	// Orchestrator catalog entries: multi-tenant admission under quota
	// pressure, and the autoscaler breathing with a diurnal arrival
	// process. Their goldens pin the full per-tenant ledger and the
	// timestamped scale-event log.
	"tenants-quota-burst",
	"autoscale-diurnal",
}

// TestGoldenCatalogScenarios pins heterogeneous catalog scenarios
// byte-for-byte. Regenerate only after an intentional behavior change:
// VERSASLOT_UPDATE_GOLDEN=1 go test -run Golden .
func TestGoldenCatalogScenarios(t *testing.T) {
	update := os.Getenv("VERSASLOT_UPDATE_GOLDEN") != ""
	for _, name := range catalogGoldenScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, err := versaslot.LoadScenario(filepath.Join("scenarios", name+".json"))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			raw, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatalf("marshal result: %v", err)
			}
			got := append(raw, '\n')
			path := filepath.Join("testdata", "golden", "catalog-"+name+".json")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with VERSASLOT_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("result diverged from golden %s\n%s", path, firstDiff(string(want), string(got)))
			}
		})
	}
}

// firstDiff locates the first byte where two JSON dumps diverge and
// returns a context window around it.
func firstDiff(want, got string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	hiW, hiG := i+120, i+120
	if hiW > len(want) {
		hiW = len(want)
	}
	if hiG > len(got) {
		hiG = len(got)
	}
	return fmt.Sprintf("first divergence at byte %d\nwant ...%s...\ngot  ...%s...", i, want[lo:hiW], got[lo:hiG])
}
