package versaslot

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// RunMany executes scenarios on a worker pool with the default runner
// and returns results in input order. workers <= 0 uses NumCPU. Each
// run owns its simulation kernel, so sweeps parallelize trivially;
// results are identical to sequential execution for the same seeds.
func RunMany(scenarios []Scenario, workers int) ([]*Result, error) {
	return NewRunner().RunMany(scenarios, workers)
}

// RunMany executes scenarios on a worker pool. Observer callbacks are
// serialized; trace and recorder options are skipped (concurrent runs
// would interleave their output). The first scenario error does not
// stop the remaining runs; all errors are joined.
func (r *Runner) RunMany(scenarios []Scenario, workers int) ([]*Result, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	jobs := make(chan int)
	// Scenarios sharing (condition, seed, ...) reuse one generated
	// sequence: the paper's 6-policy grid instantiates each workload
	// once instead of six times.
	cache := newSequenceCache()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := r.run(scenarios[i], true, cache)
				if err != nil {
					errs[i] = fmt.Errorf("versaslot: scenario %d (%s): %w", i, scenarios[i].Name, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Sweep enumerates the cross product seeds x conditions x policies
// over a base scenario — the paper's evaluation grid (six systems,
// four congestion conditions, ten sequences) is one Sweep.
type Sweep struct {
	// Base supplies every field the sweep axes do not override.
	Base Scenario
	// Policies are registered policy names; empty means Base.Policy.
	Policies []string
	// Conditions are congestion-condition names; empty means
	// Base.Condition.
	Conditions []string
	// Seeds seed workload generation and the kernel; empty means
	// Base.Seed.
	Seeds []uint64
}

// Scenarios expands the sweep into concrete scenarios, ordered seed-
// major, then condition, then policy, with names stamped
// "policy/condition/seedN".
func (sw Sweep) Scenarios() []Scenario {
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{sw.Base.Policy}
	}
	conditions := sw.Conditions
	if len(conditions) == 0 {
		conditions = []string{sw.Base.Condition}
	}
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{sw.Base.Seed}
	}
	out := make([]Scenario, 0, len(seeds)*len(conditions)*len(policies))
	for _, seed := range seeds {
		for _, cond := range conditions {
			for _, pol := range policies {
				s := sw.Base
				s.Policy = pol
				s.Condition = cond
				s.Seed = seed
				s.Name = fmt.Sprintf("%s/%s/seed%d", pol, cond, seed)
				out = append(out, s)
			}
		}
	}
	return out
}

// RunSweep expands and executes a sweep on a worker pool.
func RunSweep(sw Sweep, workers int) ([]*Result, error) {
	return RunMany(sw.Scenarios(), workers)
}
