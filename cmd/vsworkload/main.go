// Command vsworkload generates, inspects, and validates workload
// sequence files for the simulator.
//
// Usage:
//
//	vsworkload gen  [-condition standard] [-apps 20] [-seed 1]
//	                [-arrival poisson] [-arrival-json '{...}'] [-o file.json]
//	vsworkload show file.json
package main

import (
	"flag"
	"fmt"
	"os"

	"versaslot/internal/report"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "show":
		show(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vsworkload gen  [-condition standard] [-apps 20] [-seed 1]
                  [-arrival poisson] [-arrival-json '{...}'] [-o file.json]
  vsworkload show file.json`)
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	condition := fs.String("condition", "standard", "loose|standard|stress|real-time")
	apps := fs.Int("apps", 20, "applications in the sequence")
	seed := fs.Uint64("seed", 1, "generator seed")
	arrival := fs.String("arrival", "", "registered arrival process (rates default from -condition)")
	arrivalJSON := fs.String("arrival-json", "", "inline arrival-spec JSON (overrides -arrival)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	cond, err := workload.ParseCondition(*condition)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsworkload:", err)
		os.Exit(2)
	}
	p := workload.DefaultGenParams(cond)
	p.Apps = *apps
	var spec *workload.ArrivalSpec
	switch {
	case *arrivalJSON != "":
		s, err := workload.ParseArrivalSpec(*arrivalJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsworkload: -arrival-json:", err)
			os.Exit(2)
		}
		spec = &s
	case *arrival != "":
		spec = &workload.ArrivalSpec{Process: *arrival}
	}
	var seq *workload.Sequence
	if spec != nil {
		seq, err = workload.GenerateArrival(p, spec.WithCondition(cond), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsworkload:", err)
			os.Exit(2)
		}
	} else {
		seq = workload.Generate(p, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsworkload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := seq.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "vsworkload:", err)
		os.Exit(1)
	}
}

func show(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsworkload:", err)
		os.Exit(1)
	}
	defer f.Close()
	seq, err := workload.ReadJSON(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsworkload:", err)
		os.Exit(1)
	}
	t := report.NewTable(
		fmt.Sprintf("%s (%s, seed %d, %d apps)", seq.Name, seq.Condition, seq.Seed, len(seq.Arrivals)),
		"#", "Spec", "Tasks", "Batch", "Arrival (s)")
	for i, a := range seq.Arrivals {
		spec := workload.SpecByName(a.Spec)
		t.AddRow(i, a.Spec, spec.TaskCount(), a.Batch, sim.Time(a.At).Seconds())
	}
	t.Render(os.Stdout)
}
