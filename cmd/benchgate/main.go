// Command benchgate is the bench-regression gate: it runs the
// simulation-substrate micro-benchmarks plus the end-to-end stress,
// chaos-fault, farm-dispatch, streaming-metrics and autoscale-churn
// benchmarks, writes
// the measured ns/op, B/op and allocs/op to a JSON report, and (given
// a committed baseline) fails when a benchmark regresses past the
// tolerance.
//
// Write the committed baseline after an intentional performance change:
//
//	go run ./cmd/benchgate -write -out BENCH_9.json
//
// Gate a change against it (what CI runs):
//
//	go run ./cmd/benchgate -baseline BENCH_9.json -out /tmp/bench.json
//
// Allocation counts and heap bytes are machine-independent and gated
// tightly (25% and 50% + rounding slack — a zero baseline admits
// exactly zero). The B/op gate is what pins the streaming metrics
// pipeline's bounded-memory claim: BenchmarkStreamingHorizon allocates
// the same few hundred KiB whether it folds 100k or 1M samples, and a
// return to per-sample retention fails the gate at the million-sample
// size. Raw ns/op varies across hosts, so its default tolerance is
// deliberately loose (4x) — the gate catches order-of-magnitude
// regressions like an accidental return to per-event heap allocation,
// not 10% jitter.
//
// On multi-core hosts the gate additionally requires the sharded farm
// runs to beat their sequential twins: 4 shards at pairs=128 by the
// -shard-speedup factor (hosts with at least 4 CPUs), and 8 shards at
// pairs=1024 by the -shard-speedup-wide factor (hosts with at least
// 8 CPUs — below that the floors are skipped with a note). These are
// baseline-free properties of the measured run itself, so a change
// that quietly serializes the sharded executor fails CI even if
// absolute timings stay within tolerance.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one benchmark's measured result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the JSON artifact benchgate reads and writes.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	Benchmarks []Bench `json:"benchmarks"`
}

const schema = "versaslot-bench/v1"

// suites are the gated benchmark runs: the substrate micro-benches and
// end-to-end stress get real benchtime for stable numbers; the farm
// dispatch benches pin the least-loaded configuration at 32 and 128
// pairs, once on the homogeneous ZCU216 farm and once on the
// mixed-platform (ZCU216/U250/PYNQ) farm that exercises capacity-aware
// dispatch; the sharded benches pin the parallel executor against its
// sequential twin at fleet scale (128 and 1,024 pairs); the chaos
// bench pins the fault-injection path (fail/recover chains,
// crash-restart teardown, PR retries) against its fault-free twin; the
// autoscale-churn bench pins the fleet control plane (tenant
// admission, quota pump, scale-up/drain cycles).
var suites = []struct {
	bench     string
	benchtime string
}{
	{`^(BenchmarkKernelEvents|BenchmarkServerJobs|BenchmarkPipelineMakespan|BenchmarkWorkloadGeneration)$`, "0.5s"},
	{`^BenchmarkEndToEndStress$`, "2x"},
	{`^BenchmarkChaosFaults$`, "2x"},
	{`^BenchmarkFarmDispatch$/^least-loaded$/^pairs=(32|128)$`, "2x"},
	{`^BenchmarkFarmDispatchHetero$/^least-loaded$/^pairs=32$`, "2x"},
	{`^BenchmarkFarmDispatchSharded$`, "2x"},
	{`^BenchmarkStreamingHorizon$`, "2x"},
	{`^BenchmarkAutoscaleChurn$`, "4x"},
}

// shardFloor is one sharded-speedup floor: the named parallel bench
// must beat its sequential twin by factor on hosts with at least
// minCPU CPUs; below that a parallel win is impossible and the check
// is skipped with a note.
type shardFloor struct {
	seq, par string
	minCPU   int
	factor   float64
}

func main() {
	var (
		out         = flag.String("out", "BENCH_9.json", "path to write the measured report")
		baseline    = flag.String("baseline", "", "committed baseline to gate against (empty: no gate)")
		write       = flag.Bool("write", false, "only write the report (alias for -baseline '')")
		nsTol       = flag.Float64("ns-tolerance", 4.0, "fail when ns/op exceeds baseline by this factor")
		allocTol    = flag.Float64("allocs-tolerance", 1.25, "fail when allocs/op exceeds baseline by this factor (plus rounding slack)")
		bytesTol    = flag.Float64("bytes-tolerance", 1.5, "fail when B/op exceeds baseline by this factor (plus rounding slack)")
		speedup     = flag.Float64("shard-speedup", 2.0, "fail when the 4-shard pairs=128 farm run is not this much faster than sequential (skipped below 4 CPUs)")
		speedupWide = flag.Float64("shard-speedup-wide", 3.0, "fail when the 8-shard pairs=1024 farm run is not this much faster than sequential (skipped below 8 CPUs)")
		pkg         = flag.String("pkg", ".", "package holding the benchmarks")
	)
	flag.Parse()

	var results []Bench
	for _, s := range suites {
		bs, err := runSuite(*pkg, s.bench, s.benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		results = append(results, bs...)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results parsed")
		os.Exit(1)
	}
	report := Report{Schema: schema, GoVersion: runtime.Version(), Benchmarks: results}
	if err := writeReport(*out, report); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: wrote %d benchmark results to %s\n", len(results), *out)

	floors := []shardFloor{
		{seq: "FarmDispatchSharded/pairs=128/shards=1", par: "FarmDispatchSharded/pairs=128/shards=4", minCPU: 4, factor: *speedup},
		{seq: "FarmDispatchSharded/pairs=1024/shards=1", par: "FarmDispatchSharded/pairs=1024/shards=8", minCPU: 8, factor: *speedupWide},
	}
	if failures := checkShardSpeedup(report, floors); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: %s\n", f)
		}
		os.Exit(1)
	}

	if *write || *baseline == "" {
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(1)
	}
	if failures := gate(base, report, *nsTol, *allocTol, *bytesTol); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance of %s\n", len(results), *baseline)
}

// checkShardSpeedup enforces the sharded executor's speedup floors on
// multi-core hosts: each measured parallel farm run must beat its
// sequential twin by the floor's factor. On hosts below a floor's CPU
// requirement a parallel win is impossible, so that floor is skipped
// with a note. Unlike the baseline gate this is a property of the
// measured run alone, and it applies in -write mode too: a baseline
// must never be published with a serialized sharded executor.
func checkShardSpeedup(r Report, floors []shardFloor) []string {
	by := make(map[string]Bench, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		by[b.Name] = b
	}
	var failures []string
	cpus := runtime.NumCPU()
	for _, fl := range floors {
		if fl.factor <= 0 {
			continue
		}
		if cpus < fl.minCPU {
			fmt.Printf("benchgate: %d CPU(s), skipping the x%.1f speedup floor on %s (needs %d)\n",
				cpus, fl.factor, fl.par, fl.minCPU)
			continue
		}
		seq, okSeq := by[fl.seq]
		par, okPar := by[fl.par]
		if !okSeq || !okPar {
			failures = append(failures, fmt.Sprintf("speedup check: %s or %s missing from the measured report", fl.seq, fl.par))
			continue
		}
		if got := seq.NsPerOp / par.NsPerOp; got < fl.factor {
			failures = append(failures, fmt.Sprintf("SPEEDUP %s: x%.2f over sequential, below the x%.1f floor", fl.par, got, fl.factor))
		}
	}
	return failures
}

// runSuite executes one `go test -bench` invocation and parses its
// output.
func runSuite(pkg, bench, benchtime string) ([]Bench, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime, pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.String())
	}
	return parseBenchOutput(&buf)
}

// parseBenchOutput extracts Bench entries from `go test -bench` text.
func parseBenchOutput(r *bytes.Buffer) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Bench{Name: strings.TrimPrefix(name, "Benchmark")}
		// Remaining fields come in (value, unit) pairs after the
		// iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp > 0 {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// gate compares measured results against the baseline and returns one
// message per regression. Benchmarks missing from either side fail the
// gate: a silently dropped benchmark must not pass.
func gate(base, got Report, nsTol, allocTol, bytesTol float64) []string {
	var failures []string
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	seen := make(map[string]bool)
	for _, g := range got.Benchmarks {
		b, ok := baseBy[g.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not in baseline (add it with -write)", g.Name))
			continue
		}
		seen[g.Name] = true
		if limit := b.NsPerOp * nsTol; g.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op exceeds baseline %.1f ns/op x%.1f tolerance",
				g.Name, g.NsPerOp, b.NsPerOp, nsTol))
		}
		// Rounding slack of 0.5 makes a zero-alloc baseline admit
		// exactly zero allocs while integer baselines tolerate the
		// percentage headroom.
		if limit := b.AllocsPerOp*allocTol + 0.5; g.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op exceeds baseline %.1f allocs/op x%.2f tolerance",
				g.Name, g.AllocsPerOp, b.AllocsPerOp, allocTol))
		}
		// Heap bytes are machine-independent like allocation counts, so
		// they gate tightly too — this is what keeps the streaming
		// pipeline's O(1)-memory claim honest: a change that silently
		// reverts to per-sample retention blows the B/op budget at the
		// million-sample horizon long before ns/op notices.
		if limit := b.BytesPerOp*bytesTol + 0.5; g.BytesPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f B/op exceeds baseline %.0f B/op x%.2f tolerance",
				g.Name, g.BytesPerOp, b.BytesPerOp, bytesTol))
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", b.Name))
		}
	}
	return failures
}

func writeReport(path string, r Report) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schema {
		return Report{}, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, schema)
	}
	return r, nil
}
