// Command vsbench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	vsbench [-quick] [-fig 5|6|7|8|all] [-seqs N] [-apps N] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"versaslot/internal/experiments"
	"versaslot/internal/report"
	"versaslot/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale (3 sequences x 10 apps)")
	fig := flag.String("fig", "all", "which figure to regenerate: 2, 5, 6, 7, 8, sweep, util, or all")
	seqs := flag.Int("seqs", 0, "override sequences per condition")
	apps := flag.Int("apps", 0, "override apps per sequence")
	csvDir := flag.String("csv", "", "also write tables as CSV into this directory")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seqs > 0 {
		cfg.Sequences = *seqs
	}
	if *apps > 0 {
		cfg.Apps = *apps
	}

	var tables []*report.Table
	run := func(name string) bool { return *fig == "all" || *fig == name }

	if run("2") {
		fmt.Println("Running Fig. 2 (PR contention mechanism)...")
		r := experiments.Fig2()
		r.Write(os.Stdout)
		fmt.Println()
		tables = append(tables, r.Table())
	}
	if run("5") {
		fmt.Println("Running Fig. 5 (response time reduction)...")
		r := experiments.Fig5(cfg)
		r.Write(os.Stdout)
		fmt.Println()
		tables = append(tables, r.Table())
	}
	if run("6") {
		fmt.Println("Running Fig. 6 (tail latency)...")
		r := experiments.Fig6(cfg)
		r.Write(os.Stdout)
		fmt.Println()
		tables = append(tables, r.Table())
	}
	if run("7") {
		fmt.Println("Running Fig. 7 (3-in-1 utilization)...")
		r := experiments.Fig7()
		r.Write(os.Stdout)
		fmt.Printf("  Average increase: LUT %.1f%%  FF %.1f%%  (paper: ~35%% / ~29%%)\n",
			r.AvgLUTPct, r.AvgFFPct)
		fmt.Printf("  Not bundleable (absent from Fig. 7): %v\n\n", r.NotBundleable)
		tables = append(tables, r.Table(), r.DetailTable())
	}
	if run("8") {
		fmt.Println("Running Fig. 8 (cross-board switching)...")
		f8 := experiments.DefaultFig8()
		if *quick {
			f8 = experiments.QuickFig8()
		}
		r := experiments.Fig8(f8)
		r.Write(os.Stdout)
		fmt.Println()
		tables = append(tables, r.Table(), r.TraceTable())
	}

	if run("util") {
		fmt.Println("Running dynamic utilization measurement...")
		r := experiments.MeasureUtilization(cfg)
		r.Write(os.Stdout)
		lut, ff := r.Gain()
		fmt.Printf("  Big.Little vs Only.Little during execution: LUT %+.1f%%  FF %+.1f%%\n\n", lut, ff)
		tables = append(tables, r.Table())
	}
	if run("sweep") {
		fmt.Println("Running slot-configuration sweep (extension)...")
		r := experiments.SlotSweep(cfg, workload.Stress)
		experiments.WriteSweep(os.Stdout, r, workload.Stress)
		fmt.Println()
		tables = append(tables, experiments.SweepTable(r, workload.Stress))
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vsbench:", err)
			os.Exit(1)
		}
		for i, t := range tables {
			path := filepath.Join(*csvDir, fmt.Sprintf("table%02d.csv", i))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vsbench:", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "vsbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vsbench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("CSV tables written to %s\n", *csvDir)
	}
}
