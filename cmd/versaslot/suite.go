package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"versaslot"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

// runSuite executes every scenario JSON in a catalog directory on a
// worker pool and emits one markdown report table. Catalog order is
// the sorted file-name order and every run is seeded, so the report
// is byte-identical across invocations — CI runs it twice and diffs.
func runSuite(args []string) {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	dir := fs.String("dir", "scenarios", "catalog directory of scenario JSON files")
	out := fs.String("out", "", "write the markdown report here (default stdout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	appsCap := fs.Int("apps-cap", 0, "cap every scenario's app count (CI smoke; 0 = run as written)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: versaslot suite [-dir scenarios] [-out report.md] [-workers N] [-apps-cap N]

Runs the whole scenario catalog deterministically and emits a markdown
report table (mean RT, P50/P99, utilization, migrations per scenario).`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	paths, err := filepath.Glob(filepath.Join(*dir, "*.json"))
	if err != nil {
		fatalf("suite: %v", err)
	}
	if len(paths) == 0 {
		fatalf("suite: no scenario files in %s", *dir)
	}
	sort.Strings(paths)

	scenarios := make([]versaslot.Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := versaslot.LoadScenario(p)
		if err != nil {
			fatalf("suite: %s: %v", p, err)
		}
		if sc.Name == "" {
			sc.Name = strings.TrimSuffix(filepath.Base(p), ".json")
		}
		if *appsCap > 0 {
			if err := capApps(&sc, *appsCap); err != nil {
				fatalf("suite: %s: %v", p, err)
			}
		}
		scenarios = append(scenarios, sc)
	}

	results, err := versaslot.RunMany(scenarios, *workers)
	if err != nil {
		fatalf("suite: %v", err)
	}

	// Render in memory, then write with errors checked: a failed -out
	// write must not exit 0 with a truncated report (CI diffs it).
	var buf bytes.Buffer
	writeSuiteReport(&buf, *dir, scenarios, results)
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fatalf("suite: %v", err)
		}
		return
	}
	if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
		fatalf("suite: %v", err)
	}
}

// capApps bounds a scenario's application count for CI smoke runs.
// Generated workloads cap through Apps; an inline or file workload
// (where Apps is ignored) is truncated to its first cap arrivals and
// inlined, so the cap is honest on every resolution path.
func capApps(sc *versaslot.Scenario, limit int) error {
	if sc.WorkloadFile != "" {
		f, err := os.Open(sc.WorkloadFile)
		if err != nil {
			return err
		}
		seq, err := workload.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		sc.Workload, sc.WorkloadFile = seq, ""
	}
	if sc.Workload != nil {
		if len(sc.Workload.Arrivals) > limit {
			trimmed := *sc.Workload
			trimmed.Arrivals = trimmed.Arrivals[:limit]
			sc.Workload = &trimmed
		}
		return nil
	}
	if sc.Apps == 0 || sc.Apps > limit {
		sc.Apps = limit
	}
	// Tenant workloads size through each tenant's own app count (zero
	// inherits the scenario's, which the cap above already bounds).
	for i := range sc.Tenants {
		if sc.Tenants[i].Apps > limit {
			sc.Tenants[i].Apps = limit
		}
	}
	return nil
}

// writeSuiteReport renders the catalog results as a markdown table.
func writeSuiteReport(w io.Writer, dir string, scenarios []versaslot.Scenario, results []*versaslot.Result) {
	fmt.Fprintf(w, "# VersaSlot scenario suite\n\n")
	fmt.Fprintf(w, "%d scenarios from `%s/`.\n\n", len(results), filepath.ToSlash(filepath.Clean(dir)))
	fmt.Fprintln(w, "| Scenario | Topology | Platforms | Arrival | Apps | Mean RT (s) | P50 (s) | P99 (s) | LUT util | DSP util | Switches | Migrated | Requeued | Avail | Failed | Tenants | SLO att | Scale | Metrics | Windows |")
	fmt.Fprintln(w, "|---|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|---|---|---:|")
	for i, res := range results {
		s := res.Summary
		migrated := res.MigratedApps + res.CrossMigratedApps
		requeued := 0
		for _, ps := range res.PairStats {
			requeued += ps.Requeued
		}
		// Fault columns stay "-" for fault-free scenarios so their rows
		// are untouched by the chaos additions.
		avail, failed := "-", "-"
		if scenarios[i].Faults != nil && scenarios[i].Faults.Enabled() {
			avail = fmt.Sprintf("%.4f", s.Availability)
			failed = fmt.Sprintf("%d", s.FailedApps)
		}
		// Metrics columns stay "-"/exact for the default pipeline so
		// existing rows are untouched by the streaming additions.
		mode, windows := "exact", "-"
		if res.MetricsMode != "" {
			mode = res.MetricsMode
			windows = fmt.Sprintf("%d", len(res.TimeSeries))
		}
		// Orchestrator columns stay "-" for legacy rows. SLO attainment
		// lists each SLO-bearing tenant in declaration order.
		tenants, sloAtt, scale := "-", "-", "-"
		if len(res.Tenants) > 0 {
			tenants = fmt.Sprintf("%d", len(res.Tenants))
			var atts []string
			for _, st := range res.Tenants {
				if st.SLO > 0 && st.Finished > 0 {
					atts = append(atts, fmt.Sprintf("%s %.2f", st.Tenant, st.SLOAttainment))
				}
			}
			if len(atts) > 0 {
				sloAtt = strings.Join(atts, ", ")
			}
		}
		if res.Autoscale != nil {
			scale = fmt.Sprintf("+%d/-%d", res.Autoscale.ScaleUps, res.Autoscale.ScaleDowns)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %d | %.3f | %.3f | %.3f | %.1f%% | %.1f%% | %d | %d | %d | %s | %s | %s | %s | %s | %s | %s |\n",
			res.Scenario, res.Topology, platformLabel(res), arrivalLabel(scenarios[i]), s.Apps,
			sim.Time(s.MeanRT).Seconds(), sim.Time(s.P50).Seconds(), sim.Time(s.P99).Seconds(),
			s.UtilLUT*100, s.UtilDSP*100, res.Switches, migrated, requeued, avail, failed,
			tenants, sloAtt, scale, mode, windows)
	}
}

// platformLabel condenses a result's platform assignment: the single
// board's platform, or the distinct boost-board platforms of a
// cluster/farm (the boost board is the pair's distinguishing half;
// repeated assignments collapse to one entry).
func platformLabel(res *versaslot.Result) string {
	if res.Platform != "" {
		return res.Platform
	}
	var parts []string
	seen := map[string]bool{}
	for _, pp := range res.PairPlatforms {
		label := pp.Boost
		if pp.Base != pp.Boost {
			label = pp.Base + "/" + pp.Boost
		}
		if !seen[label] {
			seen[label] = true
			parts = append(parts, label)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

// arrivalLabel names the scenario's arrival axis for the report: the
// registered process, or the classic generator's regime label.
func arrivalLabel(sc versaslot.Scenario) string {
	if len(sc.Tenants) > 0 {
		return "per-tenant"
	}
	if sc.Arrival != nil {
		return sc.Arrival.Process
	}
	if sc.Poisson {
		return "poisson (legacy)"
	}
	return "uniform"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "versaslot: "+format+"\n", args...)
	os.Exit(1)
}
