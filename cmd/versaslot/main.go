// Command versaslot runs one scheduling simulation: a policy, a
// congestion condition (or a workload file), and a seed, printing the
// run summary the paper's metrics are built from.
//
// Usage:
//
//	versaslot [-policy versaslot-bl] [-condition standard] [-apps 20]
//	          [-seed 1] [-workload file.json] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"versaslot/internal/core"
	"versaslot/internal/report"
	"versaslot/internal/sched"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

var policyNames = map[string]sched.Kind{
	"baseline":     sched.KindBaseline,
	"fcfs":         sched.KindFCFS,
	"rr":           sched.KindRR,
	"nimblock":     sched.KindNimblock,
	"versaslot-ol": sched.KindVersaSlotOL,
	"versaslot-bl": sched.KindVersaSlotBL,
}

var conditionNames = map[string]workload.Condition{
	"loose":     workload.Loose,
	"standard":  workload.Standard,
	"stress":    workload.Stress,
	"real-time": workload.Realtime,
	"realtime":  workload.Realtime,
}

func main() {
	policy := flag.String("policy", "versaslot-bl",
		"scheduling system: baseline|fcfs|rr|nimblock|versaslot-ol|versaslot-bl")
	condition := flag.String("condition", "standard",
		"congestion condition: loose|standard|stress|real-time")
	apps := flag.Int("apps", 20, "applications in the generated sequence")
	seed := flag.Uint64("seed", 1, "workload and simulation seed")
	file := flag.String("workload", "", "JSON workload file (overrides -condition/-apps)")
	verbose := flag.Bool("v", false, "print per-application response times")
	flag.Parse()

	kind, ok := policyNames[strings.ToLower(*policy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "versaslot: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	var seq *workload.Sequence
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot:", err)
			os.Exit(1)
		}
		seq, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot:", err)
			os.Exit(1)
		}
	} else {
		cond, ok := conditionNames[strings.ToLower(*condition)]
		if !ok {
			fmt.Fprintf(os.Stderr, "versaslot: unknown condition %q\n", *condition)
			os.Exit(2)
		}
		p := workload.DefaultGenParams(cond)
		p.Apps = *apps
		seq = workload.Generate(p, *seed)
	}

	res, err := core.Run(core.SystemConfig{Policy: kind, Seed: *seed}, seq)
	if err != nil {
		fmt.Fprintln(os.Stderr, "versaslot:", err)
		os.Exit(1)
	}

	s := res.Summary
	t := report.NewTable(fmt.Sprintf("%s on %s (%d apps)", kind, seq.Condition, s.Apps),
		"Metric", "Value")
	t.AddRow("mean response", sim.Time(s.MeanRT).Seconds())
	t.AddRow("p50", sim.Time(s.P50).Seconds())
	t.AddRow("p95", sim.Time(s.P95).Seconds())
	t.AddRow("p99", sim.Time(s.P99).Seconds())
	t.AddRow("mean queue delay", sim.Time(s.MeanQueue).Seconds())
	t.AddRow("max", sim.Time(s.MaxRT).Seconds())
	t.AddRow("LUT utilization", s.UtilLUT)
	t.AddRow("FF utilization", s.UtilFF)
	t.AddRow("PR loads", s.PRLoads)
	t.AddRow("PR blocked", s.PRBlocked)
	t.AddRow("PR wait total", s.PRWait.String())
	t.AddRow("preemptions", s.Preemptions)
	t.AddRow("cache hit/miss", fmt.Sprintf("%d/%d", res.CacheHits, res.CacheMisses))
	t.Render(os.Stdout)

	if *verbose {
		bt := report.NewTable("Per-application-type breakdown",
			"Spec", "Count", "Mean RT (s)", "Max RT (s)")
		for _, b := range res.BySpec {
			bt.AddRow(b.Spec, b.Count, sim.Time(b.MeanRT).Seconds(), sim.Time(b.MaxRT).Seconds())
		}
		bt.Render(os.Stdout)

		vt := report.NewTable("Per-application response times",
			"App", "Spec", "Batch", "Arrival (s)", "Response (s)")
		for _, r := range res.Samples {
			vt.AddRow(r.AppID, r.Spec, r.Batch, r.Arrival.Seconds(), sim.Time(r.Response).Seconds())
		}
		vt.Render(os.Stdout)
	}
}
