// Command versaslot runs one scheduling scenario: a topology, a
// policy, a congestion condition (or a workload file), an arrival
// process, and a seed, printing the run summary the paper's metrics
// are built from. Any run is reproducible from a JSON scenario
// artifact, and the suite subcommand runs a whole catalog of them.
//
// Usage:
//
//	versaslot [-scenario file.json] [-topology single|cluster|farm]
//	          [-policy versaslot-bl] [-platform u250-quad]
//	          [-condition standard] [-apps 20]
//	          [-seed 1] [-workload file.json] [-arrival mmpp]
//	          [-arrival-json '{"process":"mmpp",...}'] [-pairs 2]
//	          [-pair-platforms base:boost,base:boost,...]
//	          [-dispatcher least-loaded] [-rebalance-every 2s]
//	          [-rebalance-gap 2] [-shards 4]
//	          [-tenants '[{"name":"batch","quota":4},...]']
//	          [-autoscale '{"min":1,"max":4}'] [-fault slot-fail]
//	          [-fault-json '{"injectors":[...]}']
//	          [-stream] [-window 10s] [-max-windows 64]
//	          [-timeseries-csv windows.csv]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//	          [-blockprofile block.out] [-mutexprofile mutex.out]
//	          [-dump-scenario file.json] [-v]
//	versaslot suite [-dir scenarios] [-out report.md] [-apps-cap N]
//	versaslot -policy list
//	versaslot -platform list
//	versaslot -dispatcher list
//	versaslot -arrival list
//	versaslot -fault list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"versaslot"
	"versaslot/internal/cluster"
	"versaslot/internal/fabric"
	"versaslot/internal/fault"
	"versaslot/internal/metrics"
	"versaslot/internal/orchestrator"
	"versaslot/internal/report"
	"versaslot/internal/sim"
	"versaslot/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "suite" {
		runSuite(os.Args[2:])
		return
	}
	scenarioFile := flag.String("scenario", "", "JSON scenario file (overrides all other flags)")
	topology := flag.String("topology", "single", "system shape: single|cluster|farm")
	policy := flag.String("policy", "versaslot-bl", "registered policy name, or 'list' to print the registry")
	condition := flag.String("condition", "standard", "congestion condition: loose|standard|stress|real-time")
	apps := flag.Int("apps", 20, "applications in the generated sequence")
	seed := flag.Uint64("seed", 1, "workload and simulation seed")
	file := flag.String("workload", "", "JSON workload file (overrides -condition/-apps)")
	arrival := flag.String("arrival", "", "registered arrival process (rates default from -condition), or 'list' to print the registry")
	arrivalJSON := flag.String("arrival-json", "", "inline arrival-spec JSON (overrides -arrival)")
	platform := flag.String("platform", "", "registered board platform (single topology; default: the policy's), or 'list' to print the registry")
	pairPlatforms := flag.String("pair-platforms", "", "per-pair platform assignments base:boost[,base:boost...] (cluster/farm topology)")
	pairs := flag.Int("pairs", 2, "switching pairs (farm topology)")
	dispatcher := flag.String("dispatcher", "", "farm arrival dispatcher (default least-loaded), or 'list' to print the registry")
	rebalanceEvery := flag.Duration("rebalance-every", 0, "farm rebalancer cadence in virtual time (0 disables)")
	rebalanceGap := flag.Int("rebalance-gap", 0, "min unfinished-app gap between pairs that triggers a cross-pair migration (default 2)")
	shards := flag.Int("shards", 0, "run a farm's pairs across this many parallel shards (0 = auto from pair count and GOMAXPROCS, 1 = sequential); results are byte-identical at any width")
	tenantsJSON := flag.String("tenants", "", "inline tenant-spec JSON array (farm topology): per-tenant arrival process, quota, priority, over-quota policy, SLO")
	autoscaleJSON := flag.String("autoscale", "", "inline autoscale-spec JSON (farm topology): {\"min\":1,\"max\":4,...}; -pairs is the initial online count")
	faultKind := flag.String("fault", "", "attach one fault injector by kind with default parameters, or 'list' to print the registry")
	faultJSON := flag.String("fault-json", "", "inline fault-spec JSON (overrides -fault)")
	stream := flag.Bool("stream", false, "use the bounded-memory streaming metrics pipeline (sketch percentiles + windowed time-series)")
	window := flag.Duration("window", 0, "streaming time-series window length in virtual time (implies -stream; 0 = 10s default)")
	maxWindows := flag.Int("max-windows", 0, "streaming time-series ring size before rollover (implies -stream; 0 = 64 default)")
	timeseriesCSV := flag.String("timeseries-csv", "", "write the streaming time-series as CSV to this file (implies -stream)")
	dump := flag.String("dump-scenario", "", "also write the effective scenario JSON to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file (diagnoses sharded-executor stalls)")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file")
	verbose := flag.Bool("v", false, "print per-application response times")
	flag.Parse()

	if *policy == "list" {
		fmt.Println("registered policies:")
		for _, name := range versaslot.Policies() {
			fmt.Printf("  %-14s %s\n", name, versaslot.PolicyTitle(name))
		}
		return
	}
	if *dispatcher == "list" {
		fmt.Println("registered dispatchers:")
		for _, name := range versaslot.Dispatchers() {
			fmt.Printf("  %-14s %s\n", name, versaslot.DispatcherTitle(name))
		}
		return
	}
	if *arrival == "list" {
		fmt.Println("registered arrival processes:")
		for _, name := range versaslot.ArrivalProcesses() {
			fmt.Printf("  %-14s %s\n", name, versaslot.ArrivalProcessTitle(name))
		}
		return
	}
	if *faultKind == "list" {
		fmt.Println("registered fault injectors:")
		for _, name := range versaslot.FaultInjectors() {
			fmt.Printf("  %-14s %s\n", name, versaslot.FaultInjectorTitle(name))
		}
		return
	}
	if *platform == "list" {
		fmt.Println("registered platforms:")
		for _, name := range versaslot.Platforms() {
			p, _ := fabric.LookupPlatform(name)
			var classes []string
			for i, c := range p.Classes {
				classes = append(classes, fmt.Sprintf("%dx %s (%d LUT)", p.Counts[i], c.Name, c.Cap.LUT))
			}
			kind := ""
			if p.Virtual {
				kind = " [virtual]"
			}
			fmt.Printf("  %-20s %-12s %s%s\n", name, p.Title, strings.Join(classes, " + "), kind)
		}
		return
	}

	var sc versaslot.Scenario
	if *scenarioFile != "" {
		var err error
		sc, err = versaslot.LoadScenario(*scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot:", err)
			os.Exit(1)
		}
	} else {
		sc = versaslot.Scenario{
			Topology:       versaslot.Topology(*topology),
			Policy:         *policy,
			Condition:      *condition,
			Apps:           *apps,
			Seed:           *seed,
			WorkloadFile:   *file,
			Arrival:        parseArrivalFlags(*arrival, *arrivalJSON),
			Pairs:          *pairs,
			PairPlatforms:  parsePairPlatforms(*pairPlatforms),
			Dispatcher:     *dispatcher,
			RebalanceEvery: *rebalanceEvery,
			RebalanceGap:   *rebalanceGap,
			Shards:         *shards,
			Tenants:        parseTenantsFlag(*tenantsJSON),
			Autoscale:      parseAutoscaleFlag(*autoscaleJSON),
			Faults:         parseFaultFlags(*faultKind, *faultJSON),
			Metrics:        parseMetricsFlags(*stream, *window, *maxWindows, *timeseriesCSV != ""),
		}
		if *platform != "" {
			sc.Platform = &fabric.PlatformSpec{Ref: *platform}
			policySet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "policy" {
					policySet = true
				}
			})
			if sc.Topology == versaslot.TopologySingle && !policySet {
				// -policy was left at its versaslot-bl default; let the
				// platform shape pick the matching policy. An explicit
				// -policy stands (and fails validation if incompatible).
				sc.Policy = ""
			}
		}
		if err := sc.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "versaslot:", err)
			os.Exit(2)
		}
	}

	if *dump != "" {
		if err := versaslot.SaveScenario(*dump, sc); err != nil {
			fmt.Fprintln(os.Stderr, "versaslot:", err)
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
	}

	res, err := versaslot.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "versaslot:", err)
		os.Exit(1)
	}

	if *blockprofile != "" {
		writeRuntimeProfile("block", *blockprofile)
	}
	if *mutexprofile != "" {
		writeRuntimeProfile("mutex", *mutexprofile)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -memprofile:", err)
			os.Exit(1)
		}
	}

	s := res.Summary
	t := report.NewTable(fmt.Sprintf("%s on %s (%s, %d apps)",
		res.PolicyTitle, res.Condition, res.Topology, s.Apps),
		"Metric", "Value")
	t.AddRow("mean response", sim.Time(s.MeanRT).Seconds())
	t.AddRow("p50", sim.Time(s.P50).Seconds())
	t.AddRow("p95", sim.Time(s.P95).Seconds())
	t.AddRow("p99", sim.Time(s.P99).Seconds())
	t.AddRow("mean queue delay", sim.Time(s.MeanQueue).Seconds())
	t.AddRow("max", sim.Time(s.MaxRT).Seconds())
	t.AddRow("LUT utilization", s.UtilLUT)
	t.AddRow("FF utilization", s.UtilFF)
	t.AddRow("DSP utilization", s.UtilDSP)
	t.AddRow("BRAM utilization", s.UtilBRAM)
	t.AddRow("PR loads", s.PRLoads)
	t.AddRow("PR blocked", s.PRBlocked)
	t.AddRow("PR wait total", s.PRWait.String())
	t.AddRow("preemptions", s.Preemptions)
	t.AddRow("cache hit/miss", fmt.Sprintf("%d/%d", res.CacheHits, res.CacheMisses))
	if res.MetricsMode != "" {
		t.AddRow("metrics mode", res.MetricsMode)
	}
	if sc.Faults != nil && sc.Faults.Enabled() {
		t.AddRow("availability", s.Availability)
		t.AddRow("downtime", s.Downtime.String())
		t.AddRow("fault events", s.FaultEvents)
		t.AddRow("crash-restarted apps", s.FailedApps)
		t.AddRow("PR-retried apps", s.RetriedApps)
	}
	if res.Topology != versaslot.TopologySingle {
		t.AddRow("cross-board switches", res.Switches)
		t.AddRow("mean switch overhead", res.MeanSwitchTime.String())
		t.AddRow("migrated apps", res.MigratedApps)
	}
	if res.Topology == versaslot.TopologyFarm {
		t.AddRow("dispatcher", res.Dispatcher)
		t.AddRow("arrivals per pair", fmt.Sprintf("%v", res.Routed))
		t.AddRow("cross-pair migrations", res.CrossMigrations)
		t.AddRow("cross-pair migrated apps", res.CrossMigratedApps)
		t.AddRow("mean cross-pair overhead", res.MeanCrossTime.String())
	}
	t.Render(os.Stdout)

	if len(res.PairStats) > 0 {
		pt := report.NewTable("Per-pair breakdown",
			"Pair", "Routed", "Apps", "Mean RT (s)", "P50 (s)", "LUT util", "Switches", "In", "Out")
		for _, ps := range res.PairStats {
			pt.AddRow(ps.Pair, ps.Routed, ps.Apps,
				sim.Time(ps.MeanRT).Seconds(), sim.Time(ps.P50).Seconds(),
				ps.UtilLUT, ps.Switches, ps.MigratedIn, ps.MigratedOut)
		}
		pt.Render(os.Stdout)
	}

	if len(res.Tenants) > 0 {
		tt := report.NewTable("Per-tenant admission and SLO attainment",
			"Tenant", "Quota", "Submitted", "Admitted", "Rejected", "Throttled", "Finished", "Mean RT (s)", "P99 (s)", "SLO att")
		for _, st := range res.Tenants {
			slo := "-"
			if st.SLO > 0 && st.Finished > 0 {
				slo = fmt.Sprintf("%.3f", st.SLOAttainment)
			}
			tt.AddRow(st.Tenant, st.Quota, st.Submitted, st.Admitted, st.Rejected, st.Throttled,
				st.Finished, sim.Time(st.MeanRT).Seconds(), sim.Time(st.P99).Seconds(), slo)
		}
		tt.Render(os.Stdout)
	}

	if res.Autoscale != nil {
		at := report.NewTable("Autoscaler", "Metric", "Value")
		at.AddRow("scale-ups", res.Autoscale.ScaleUps)
		at.AddRow("scale-downs", res.Autoscale.ScaleDowns)
		at.AddRow("drain-migrated apps", res.Autoscale.DrainedApps)
		at.AddRow("peak online pairs", res.Autoscale.PeakOnline)
		at.AddRow("final online pairs", res.Autoscale.FinalOnline)
		at.Render(os.Stdout)
	}

	if len(res.TimeSeries) > 0 {
		ts := report.NewTable(fmt.Sprintf("Streaming time-series (%d windows retained)", len(res.TimeSeries)),
			"Window", "Start (s)", "Apps", "Mean RT (s)", "P50 (s)", "P99 (s)", "LUT util", "Migrated", "Faults")
		for _, w := range res.TimeSeries {
			ts.AddRow(w.Index, w.Start.Seconds(), w.Apps,
				sim.Time(w.MeanRT).Seconds(), sim.Time(w.P50).Seconds(), sim.Time(w.P99).Seconds(),
				w.UtilLUT, w.Migrated, w.FaultEvents)
		}
		ts.Render(os.Stdout)
	}
	if *timeseriesCSV != "" {
		if err := writeTimeSeriesCSV(*timeseriesCSV, res.TimeSeries); err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -timeseries-csv:", err)
			os.Exit(1)
		}
	}

	if sc.Arrival != nil {
		fmt.Printf("arrival process: %s (%s)\n", sc.Arrival.Process,
			versaslot.ArrivalProcessTitle(sc.Arrival.Process))
	}

	if *verbose {
		bt := report.NewTable("Per-application-type breakdown",
			"Spec", "Count", "Mean RT (s)", "Max RT (s)")
		for _, b := range res.BySpec {
			bt.AddRow(b.Spec, b.Count, sim.Time(b.MeanRT).Seconds(), sim.Time(b.MaxRT).Seconds())
		}
		bt.Render(os.Stdout)

		vt := report.NewTable("Per-application response times",
			"App", "Spec", "Batch", "Arrival (s)", "Response (s)")
		for _, r := range res.Samples {
			vt.AddRow(r.AppID, r.Spec, r.Batch, r.Arrival.Seconds(), sim.Time(r.Response).Seconds())
		}
		vt.Render(os.Stdout)
	}
}

// writeRuntimeProfile dumps one named runtime profile ("block",
// "mutex") collected over the run.
func writeRuntimeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "versaslot: -%sprofile: %v\n", name, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "versaslot: -%sprofile: %v\n", name, err)
		os.Exit(1)
	}
}

// parsePairPlatforms parses "base:boost,base:boost,..." (either side
// may be empty to keep the default) into per-pair assignments.
func parsePairPlatforms(s string) []cluster.PairPlatforms {
	if s == "" {
		return nil
	}
	var out []cluster.PairPlatforms
	for _, entry := range strings.Split(s, ",") {
		base, boost, found := strings.Cut(entry, ":")
		if !found {
			// A bare name assigns the same platform to both boards.
			boost = base
		}
		out = append(out, cluster.PairPlatforms{
			Base:  strings.TrimSpace(base),
			Boost: strings.TrimSpace(boost),
		})
	}
	return out
}

// faultDefaults gives each built-in injector kind a usable parameter
// set for the bare -fault flag; anything more specific goes through
// -fault-json or a scenario file.
var faultDefaults = map[string]fault.InjectorSpec{
	fault.KindSlotFail:   {Kind: fault.KindSlotFail, MTBF: 30 * sim.Second, MTTR: 2 * sim.Second},
	fault.KindBoardFail:  {Kind: fault.KindBoardFail, MTBF: 60 * sim.Second, MTTR: 3 * sim.Second},
	fault.KindPRFlaky:    {Kind: fault.KindPRFlaky, Rate: 0.2},
	fault.KindStraggler:  {Kind: fault.KindStraggler, MTBF: 30 * sim.Second, MTTR: 3 * sim.Second, Factor: 2.5},
	fault.KindCheckpoint: {Kind: fault.KindCheckpoint, CheckpointBytes: 64, RestoreDelay: sim.Millisecond},
}

// parseFaultFlags builds the scenario's faults block from the
// -fault/-fault-json flags: nil when neither is set, a single
// default-parameter injector for -fault, or the full inline spec for
// -fault-json.
func parseFaultFlags(kind, inline string) *fault.Spec {
	if inline != "" {
		spec, err := fault.ParseSpec(inline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -fault-json:", err)
			os.Exit(2)
		}
		return &spec
	}
	if kind == "" {
		return nil
	}
	reg, ok := fault.Lookup(kind)
	if !ok {
		fmt.Fprintf(os.Stderr, "versaslot: -fault: unknown injector %q (registered: %v)\n", kind, fault.Names())
		os.Exit(2)
	}
	inj := faultDefaults[reg.Name]
	return &fault.Spec{Injectors: []fault.InjectorSpec{inj}}
}

// parseMetricsFlags builds the scenario's metrics block: nil (the
// exact default) unless any streaming flag asked for the bounded-
// memory pipeline. Zero window/ring values stay zero so the library
// defaults apply.
func parseMetricsFlags(stream bool, window sim.Duration, maxWindows int, wantCSV bool) *versaslot.MetricsSpec {
	if !stream && window == 0 && maxWindows == 0 && !wantCSV {
		return nil
	}
	return &versaslot.MetricsSpec{Mode: "stream", Window: window, MaxWindows: maxWindows}
}

// writeTimeSeriesCSV dumps the streaming time-series windows as CSV,
// one row per retained window, times in seconds.
func writeTimeSeriesCSV(path string, ts []metrics.WindowStat) error {
	var b strings.Builder
	b.WriteString("window,start_s,end_s,apps,mean_rt_s,p50_s,p99_s,mean_queue_s,util_lut,util_ff,migrated,fault_events,failed_apps\n")
	for _, w := range ts {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d\n",
			w.Index, w.Start.Seconds(), w.End.Seconds(), w.Apps,
			sim.Time(w.MeanRT).Seconds(), sim.Time(w.P50).Seconds(), sim.Time(w.P99).Seconds(),
			sim.Time(w.MeanQueue).Seconds(), w.UtilLUT, w.UtilFF,
			w.Migrated, w.FaultEvents, w.FailedApps)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// parseTenantsFlag decodes the -tenants inline JSON array; validation
// happens with the rest of the scenario.
func parseTenantsFlag(inline string) []orchestrator.TenantSpec {
	if inline == "" {
		return nil
	}
	var tenants []orchestrator.TenantSpec
	if err := json.Unmarshal([]byte(inline), &tenants); err != nil {
		fmt.Fprintln(os.Stderr, "versaslot: -tenants:", err)
		os.Exit(2)
	}
	return tenants
}

// parseAutoscaleFlag decodes the -autoscale inline JSON spec.
func parseAutoscaleFlag(inline string) *orchestrator.AutoscaleSpec {
	if inline == "" {
		return nil
	}
	var spec orchestrator.AutoscaleSpec
	if err := json.Unmarshal([]byte(inline), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "versaslot: -autoscale:", err)
		os.Exit(2)
	}
	return &spec
}

// parseArrivalFlags builds the scenario's arrival block from the
// -arrival/-arrival-json flags: nil when neither is set (the classic
// generator), a bare named spec for -arrival (rates default from the
// condition), or the full inline spec for -arrival-json.
func parseArrivalFlags(name, inline string) *workload.ArrivalSpec {
	if inline != "" {
		spec, err := workload.ParseArrivalSpec(inline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "versaslot: -arrival-json:", err)
			os.Exit(2)
		}
		return &spec
	}
	if name != "" {
		return &workload.ArrivalSpec{Process: name}
	}
	return nil
}
