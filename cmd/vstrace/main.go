// Command vstrace runs a small simulation with full event tracing,
// printing a time-ordered log of partial reconfigurations, item
// executions, and application lifecycle events — the quickest way to
// see a policy's behaviour (e.g. the PR contention of Fig. 2).
//
// Usage:
//
//	vstrace [-policy nimblock] [-condition stress] [-apps 4] [-seed 1] [-max 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"versaslot/internal/core"
	"versaslot/internal/sched"
	"versaslot/internal/trace"
	"versaslot/internal/workload"
)

func main() {
	policy := flag.String("policy", "versaslot-bl",
		"baseline|fcfs|rr|nimblock|versaslot-ol|versaslot-bl")
	condition := flag.String("condition", "stress", "loose|standard|stress|real-time")
	apps := flag.Int("apps", 4, "applications in the generated sequence")
	seed := flag.Uint64("seed", 1, "workload and simulation seed")
	max := flag.Int("max", 200, "maximum trace lines (0 = unlimited)")
	timeline := flag.Bool("timeline", false, "render a per-slot Gantt timeline instead of the event log")
	flag.Parse()

	kinds := map[string]sched.Kind{
		"baseline": sched.KindBaseline, "fcfs": sched.KindFCFS, "rr": sched.KindRR,
		"nimblock": sched.KindNimblock, "versaslot-ol": sched.KindVersaSlotOL,
		"versaslot-bl": sched.KindVersaSlotBL,
	}
	kind, ok := kinds[strings.ToLower(*policy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "vstrace: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	conds := map[string]workload.Condition{
		"loose": workload.Loose, "standard": workload.Standard,
		"stress": workload.Stress, "real-time": workload.Realtime, "realtime": workload.Realtime,
	}
	cond, ok := conds[strings.ToLower(*condition)]
	if !ok {
		fmt.Fprintf(os.Stderr, "vstrace: unknown condition %q\n", *condition)
		os.Exit(2)
	}

	p := workload.DefaultGenParams(cond)
	p.Apps = *apps
	seq := workload.Generate(p, *seed)

	sys := core.NewSystem(core.SystemConfig{Policy: kind, Seed: *seed})
	if *timeline {
		sys.Engine.Recorder = trace.NewRecorder(0)
	} else {
		lines := 0
		sys.Engine.Trace = func(format string, args ...any) {
			if *max > 0 && lines >= *max {
				return
			}
			lines++
			fmt.Printf(format+"\n", args...)
		}
	}
	appsList, err := seq.Instantiate(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vstrace:", err)
		os.Exit(1)
	}
	res, err := sys.Execute(seq.Condition, appsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vstrace:", err)
		os.Exit(1)
	}
	if *timeline {
		trace.Timeline{Buckets: 110}.Render(os.Stdout, sys.Engine.Recorder)
		sys.Engine.Recorder.Summarize(os.Stdout)
	}
	fmt.Printf("--- %s on %s: %d apps, meanRT=%v, PR loads=%d, PR blocked=%d\n",
		kind, seq.Condition, res.Summary.Apps, res.Summary.MeanRT,
		res.Summary.PRLoads, res.Summary.PRBlocked)
}
