// Command vstrace runs a small simulation with full event tracing,
// printing a time-ordered log of partial reconfigurations, item
// executions, and application lifecycle events — the quickest way to
// see a policy's behaviour (e.g. the PR contention of Fig. 2).
//
// Usage:
//
//	vstrace [-policy nimblock] [-condition stress] [-apps 4] [-seed 1] [-max 200]
//	vstrace -policy list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"versaslot"
	"versaslot/internal/trace"
)

func main() {
	policy := flag.String("policy", "versaslot-bl",
		"registered policy name, or 'list' to print the registry")
	condition := flag.String("condition", "stress", "loose|standard|stress|real-time")
	apps := flag.Int("apps", 4, "applications in the generated sequence")
	seed := flag.Uint64("seed", 1, "workload and simulation seed")
	max := flag.Int("max", 200, "maximum trace lines (0 = unlimited)")
	timeline := flag.Bool("timeline", false, "render a per-slot Gantt timeline instead of the event log")
	flag.Parse()

	if *policy == "list" {
		fmt.Println("registered policies:", strings.Join(versaslot.Policies(), " "))
		return
	}

	sc := versaslot.Scenario{
		Policy:    *policy,
		Condition: *condition,
		Apps:      *apps,
		Seed:      *seed,
	}
	if err := sc.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "vstrace:", err)
		os.Exit(2)
	}

	var opts []versaslot.Option
	var rec *trace.Recorder
	if *timeline {
		rec = trace.NewRecorder(0)
		opts = append(opts, versaslot.WithRecorder(rec))
	} else {
		lines := 0
		opts = append(opts, versaslot.WithTrace(func(format string, args ...any) {
			if *max > 0 && lines >= *max {
				return
			}
			lines++
			fmt.Printf(format+"\n", args...)
		}))
	}

	res, err := versaslot.NewRunner(opts...).Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vstrace:", err)
		os.Exit(1)
	}
	if *timeline {
		trace.Timeline{Buckets: 110}.Render(os.Stdout, rec)
		rec.Summarize(os.Stdout)
	}
	fmt.Printf("--- %s on %s: %d apps, meanRT=%v, PR loads=%d, PR blocked=%d\n",
		res.PolicyTitle, res.Condition, res.Summary.Apps, res.Summary.MeanRT,
		res.Summary.PRLoads, res.Summary.PRBlocked)
}
