package versaslot_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"versaslot"
	"versaslot/internal/trace"
)

func resultJSON(t *testing.T, r *versaslot.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestDeterminism: the same Scenario plus seed must produce
// byte-identical Results, on every topology.
func TestDeterminism(t *testing.T) {
	scenarios := []versaslot.Scenario{
		{Name: "single", Policy: "versaslot-bl", Condition: "stress", Apps: 10, Seed: 5},
		{Name: "cluster", Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 16, Seed: 5},
		{Name: "farm", Topology: versaslot.TopologyFarm, Pairs: 2, Condition: "stress", Apps: 16, Seed: 5},
		{Name: "custom", BigSlots: 1, LittleSlots: 6, Condition: "stress", Apps: 10, Seed: 5},
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			first, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := versaslot.Run(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			a, b := resultJSON(t, first), resultJSON(t, second)
			if !bytes.Equal(a, b) {
				t.Errorf("results differ between identical runs:\n%s\n%s", a, b)
			}
			if first.Summary.Apps == 0 {
				t.Error("run completed zero apps")
			}
		})
	}
}

func TestRunnerObserver(t *testing.T) {
	var arrivals, finishes int
	runner := versaslot.NewRunner(versaslot.WithObserver(func(ev versaslot.Event) {
		switch ev.Kind {
		case "arrival":
			arrivals++
		case "finish":
			finishes++
		}
	}))
	res, err := runner.Run(versaslot.Scenario{Policy: "fcfs", Condition: "loose", Apps: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if arrivals != 6 || finishes != 6 {
		t.Errorf("observer saw %d arrivals / %d finishes, want 6/6", arrivals, finishes)
	}
	if res.Summary.Apps != 6 {
		t.Errorf("Summary.Apps = %d, want 6", res.Summary.Apps)
	}
}

func TestRunnerObserverCluster(t *testing.T) {
	var finishes, switches int
	runner := versaslot.NewRunner(versaslot.WithObserver(func(ev versaslot.Event) {
		switch ev.Kind {
		case "finish":
			finishes++
		case "switch":
			switches++
		}
	}))
	res, err := runner.Run(versaslot.Scenario{
		Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if finishes != res.Summary.Apps {
		t.Errorf("observer saw %d finishes, summary has %d apps", finishes, res.Summary.Apps)
	}
	if switches != res.Switches {
		t.Errorf("observer saw %d switches, result has %d", switches, res.Switches)
	}
}

func TestRunnerTraceAndRecorder(t *testing.T) {
	var lines int
	rec := trace.NewRecorder(0)
	runner := versaslot.NewRunner(
		versaslot.WithTrace(func(format string, args ...any) { lines++ }),
		versaslot.WithRecorder(rec),
	)
	if _, err := runner.Run(versaslot.Scenario{Policy: "nimblock", Condition: "loose", Apps: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("WithTrace produced no lines")
	}
	if rec.Len() == 0 {
		t.Error("WithRecorder recorded no events")
	}
}

func TestWorkloadFileScenario(t *testing.T) {
	dir := t.TempDir()
	seqPath := dir + "/wl.json"
	seqJSON := `{"name":"wl","condition":"Stress","seed":9,"arrivals":[
		{"spec":"3DR","batch":3,"at":0},
		{"spec":"IC","batch":2,"at":1000000000}]}`
	if err := writeFile(seqPath, seqJSON); err != nil {
		t.Fatal(err)
	}
	res, err := versaslot.Run(versaslot.Scenario{Policy: "versaslot-bl", WorkloadFile: seqPath, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Apps != 2 {
		t.Errorf("Summary.Apps = %d, want 2", res.Summary.Apps)
	}
	if res.Condition != "Stress" {
		t.Errorf("Condition = %q, want Stress (from workload file)", res.Condition)
	}
}

func TestRunUnknownPolicyFails(t *testing.T) {
	if _, err := versaslot.Run(versaslot.Scenario{Policy: "bogus"}); err == nil {
		t.Error("Run with unknown policy succeeded")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
