package versaslot_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"versaslot"
	"versaslot/internal/fault"
	"versaslot/internal/sim"
)

// resultBytes canonicalizes a Result for byte-level comparison.
func resultBytes(t *testing.T, res *versaslot.Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(raw)
}

// TestEmptyFaultsByteIdentical proves the chaos subsystem's core
// invariant: a scenario with no faults block, an empty faults block, or
// a faults block carrying only a seed produces byte-identical Results —
// attaching nothing draws nothing and schedules nothing.
func TestEmptyFaultsByteIdentical(t *testing.T) {
	base := versaslot.Scenario{
		Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 16, Seed: 9,
	}
	ref, err := versaslot.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, ref)
	for name, faults := range map[string]*fault.Spec{
		"empty-spec": {},
		"seed-only":  {Seed: 123},
	} {
		sc := base
		sc.Faults = faults
		res, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := resultBytes(t, res); got != want {
			t.Errorf("%s: result diverged from fault-free run", name)
		}
	}
}

// TestChaosDeterministic runs every chaos catalog scenario twice
// sequentially and once through the RunMany worker pool: all three
// Results must be byte-identical — fault schedules live on the
// topology's own kernel and forked streams, so parallel sweeps cannot
// perturb them.
func TestChaosDeterministic(t *testing.T) {
	names := []string{"chaos-slot-storm", "chaos-flaky-pr", "chaos-farm-outage"}
	scenarios := make([]versaslot.Scenario, len(names))
	for i, name := range names {
		sc, err := versaslot.LoadScenario(filepath.Join("scenarios", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		scenarios[i] = sc
	}
	pooled, err := versaslot.RunMany(scenarios, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scenarios {
		first, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		second, err := versaslot.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		a, b, c := resultBytes(t, first), resultBytes(t, second), resultBytes(t, pooled[i])
		if a != b {
			t.Errorf("%s: sequential reruns diverge", sc.Name)
		}
		if a != c {
			t.Errorf("%s: RunMany result diverges from sequential", sc.Name)
		}
	}
}

// TestChaosImpact checks the chaos scenarios actually perturb their
// runs: fail/recover chains cost availability and crash-restart apps,
// flaky reconfiguration forces retries, and every run still drains.
func TestChaosImpact(t *testing.T) {
	storm, err := versaslot.LoadScenario(filepath.Join("scenarios", "chaos-slot-storm.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := versaslot.Run(storm)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Apps != storm.Apps {
		t.Errorf("slot-storm: finished %d of %d apps", s.Apps, storm.Apps)
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		t.Errorf("slot-storm: availability = %v, want in (0,1)", s.Availability)
	}
	if s.Downtime <= 0 {
		t.Errorf("slot-storm: downtime = %v, want > 0", s.Downtime)
	}
	if s.FaultEvents == 0 {
		t.Error("slot-storm: no fault events recorded")
	}
	if s.FailedApps == 0 {
		t.Error("slot-storm: no crash-restarted apps")
	}

	flaky, err := versaslot.LoadScenario(filepath.Join("scenarios", "chaos-flaky-pr.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err = versaslot.Run(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.RetriedApps == 0 {
		t.Error("flaky-pr: no applications needed fault-injected PR retries")
	}
	if res.Summary.Apps != flaky.Apps {
		t.Errorf("flaky-pr: finished %d of %d apps", res.Summary.Apps, flaky.Apps)
	}
}

// TestChaosAllInjectorsDrain layers every built-in injector on every
// topology and checks the workload still drains deterministically —
// the convergence guard for injector interactions (a crash during a
// board outage, a straggle episode on a failed slot, checkpointed
// restarts paying migration costs).
func TestChaosAllInjectorsDrain(t *testing.T) {
	full := &fault.Spec{Injectors: []fault.InjectorSpec{
		{Kind: "slot-fail", MTBF: 25 * sim.Second, MTTR: 2 * sim.Second},
		{Kind: "board-fail", MTBF: 40 * sim.Second, MTTR: 2 * sim.Second},
		{Kind: "pr-flaky", Rate: 0.2},
		{Kind: "straggler", MTBF: 20 * sim.Second, MTTR: 2 * sim.Second, Factor: 2.0},
		{Kind: "checkpoint", CheckpointBytes: 64, RestoreDelay: sim.Millisecond},
	}}
	for _, tc := range []versaslot.Scenario{
		{Topology: versaslot.TopologySingle, Condition: "stress", Apps: 20, Seed: 7, Faults: full},
		{Topology: versaslot.TopologyCluster, Condition: "stress", Apps: 20, Seed: 7, Faults: full},
		{Topology: versaslot.TopologyFarm, Pairs: 2, Condition: "stress", Apps: 20, Seed: 7,
			RebalanceEvery: 2 * sim.Second, RebalanceGap: 2, Faults: full},
	} {
		tc := tc
		t.Run(string(tc.Topology), func(t *testing.T) {
			t.Parallel()
			first, err := versaslot.Run(tc)
			if err != nil {
				t.Fatal(err)
			}
			if first.Summary.Apps != tc.Apps {
				t.Fatalf("finished %d of %d apps", first.Summary.Apps, tc.Apps)
			}
			second, err := versaslot.Run(tc)
			if err != nil {
				t.Fatal(err)
			}
			if resultBytes(t, first) != resultBytes(t, second) {
				t.Error("rerun diverged")
			}
		})
	}
}
